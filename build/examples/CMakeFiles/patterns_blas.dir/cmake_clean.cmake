file(REMOVE_RECURSE
  "CMakeFiles/patterns_blas.dir/patterns_blas.cpp.o"
  "CMakeFiles/patterns_blas.dir/patterns_blas.cpp.o.d"
  "patterns_blas"
  "patterns_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
