# Empty dependencies file for patterns_blas.
# This may be replaced when dependencies are built.
