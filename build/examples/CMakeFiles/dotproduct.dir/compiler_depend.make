# Empty compiler generated dependencies file for dotproduct.
# This may be replaced when dependencies are built.
