# Empty compiler generated dependencies file for spmv_csr.
# This may be replaced when dependencies are built.
