# Empty compiler generated dependencies file for floyd_warshall.
# This may be replaced when dependencies are built.
