file(REMOVE_RECURSE
  "CMakeFiles/floyd_warshall.dir/floyd_warshall.cpp.o"
  "CMakeFiles/floyd_warshall.dir/floyd_warshall.cpp.o.d"
  "floyd_warshall"
  "floyd_warshall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floyd_warshall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
