file(REMOVE_RECURSE
  "CMakeFiles/integration_benchmark_correctness_test.dir/benchmark_correctness_test.cpp.o"
  "CMakeFiles/integration_benchmark_correctness_test.dir/benchmark_correctness_test.cpp.o.d"
  "integration_benchmark_correctness_test"
  "integration_benchmark_correctness_test.pdb"
  "integration_benchmark_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_benchmark_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
