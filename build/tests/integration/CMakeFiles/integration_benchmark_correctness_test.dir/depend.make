# Empty dependencies file for integration_benchmark_correctness_test.
# This may be replaced when dependencies are built.
