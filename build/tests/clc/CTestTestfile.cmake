# CMake generated Testfile for 
# Source directory: /root/repo/tests/clc
# Build directory: /root/repo/build/tests/clc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/clc/clc_vm_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/clc/clc_diagnostics_test[1]_include.cmake")
include("/root/repo/build/tests/clc/clc_preprocessor_test[1]_include.cmake")
include("/root/repo/build/tests/clc/clc_arith_property_test[1]_include.cmake")
include("/root/repo/build/tests/clc/clc_lexer_parser_test[1]_include.cmake")
include("/root/repo/build/tests/clc/clc_builtins_exec_test[1]_include.cmake")
include("/root/repo/build/tests/clc/clc_conversion_property_test[1]_include.cmake")
include("/root/repo/build/tests/clc/clc_types_test[1]_include.cmake")
include("/root/repo/build/tests/clc/clc_bytecode_test[1]_include.cmake")
