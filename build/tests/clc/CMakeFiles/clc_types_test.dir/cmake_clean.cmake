file(REMOVE_RECURSE
  "CMakeFiles/clc_types_test.dir/types_test.cpp.o"
  "CMakeFiles/clc_types_test.dir/types_test.cpp.o.d"
  "clc_types_test"
  "clc_types_test.pdb"
  "clc_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
