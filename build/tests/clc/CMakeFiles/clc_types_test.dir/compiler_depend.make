# Empty compiler generated dependencies file for clc_types_test.
# This may be replaced when dependencies are built.
