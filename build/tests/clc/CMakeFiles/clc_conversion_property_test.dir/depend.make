# Empty dependencies file for clc_conversion_property_test.
# This may be replaced when dependencies are built.
