file(REMOVE_RECURSE
  "CMakeFiles/clc_conversion_property_test.dir/conversion_property_test.cpp.o"
  "CMakeFiles/clc_conversion_property_test.dir/conversion_property_test.cpp.o.d"
  "clc_conversion_property_test"
  "clc_conversion_property_test.pdb"
  "clc_conversion_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_conversion_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
