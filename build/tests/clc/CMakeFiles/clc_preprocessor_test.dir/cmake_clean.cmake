file(REMOVE_RECURSE
  "CMakeFiles/clc_preprocessor_test.dir/preprocessor_test.cpp.o"
  "CMakeFiles/clc_preprocessor_test.dir/preprocessor_test.cpp.o.d"
  "clc_preprocessor_test"
  "clc_preprocessor_test.pdb"
  "clc_preprocessor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_preprocessor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
