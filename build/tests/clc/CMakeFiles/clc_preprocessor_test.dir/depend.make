# Empty dependencies file for clc_preprocessor_test.
# This may be replaced when dependencies are built.
