# Empty compiler generated dependencies file for clc_diagnostics_test.
# This may be replaced when dependencies are built.
