file(REMOVE_RECURSE
  "CMakeFiles/clc_diagnostics_test.dir/diagnostics_test.cpp.o"
  "CMakeFiles/clc_diagnostics_test.dir/diagnostics_test.cpp.o.d"
  "clc_diagnostics_test"
  "clc_diagnostics_test.pdb"
  "clc_diagnostics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_diagnostics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
