# Empty compiler generated dependencies file for clc_builtins_exec_test.
# This may be replaced when dependencies are built.
