file(REMOVE_RECURSE
  "CMakeFiles/clc_builtins_exec_test.dir/builtins_exec_test.cpp.o"
  "CMakeFiles/clc_builtins_exec_test.dir/builtins_exec_test.cpp.o.d"
  "clc_builtins_exec_test"
  "clc_builtins_exec_test.pdb"
  "clc_builtins_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_builtins_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
