file(REMOVE_RECURSE
  "CMakeFiles/clc_arith_property_test.dir/arith_property_test.cpp.o"
  "CMakeFiles/clc_arith_property_test.dir/arith_property_test.cpp.o.d"
  "clc_arith_property_test"
  "clc_arith_property_test.pdb"
  "clc_arith_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_arith_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
