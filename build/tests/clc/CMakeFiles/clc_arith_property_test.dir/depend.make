# Empty dependencies file for clc_arith_property_test.
# This may be replaced when dependencies are built.
