# Empty dependencies file for clc_lexer_parser_test.
# This may be replaced when dependencies are built.
