file(REMOVE_RECURSE
  "CMakeFiles/clc_lexer_parser_test.dir/lexer_parser_test.cpp.o"
  "CMakeFiles/clc_lexer_parser_test.dir/lexer_parser_test.cpp.o.d"
  "clc_lexer_parser_test"
  "clc_lexer_parser_test.pdb"
  "clc_lexer_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_lexer_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
