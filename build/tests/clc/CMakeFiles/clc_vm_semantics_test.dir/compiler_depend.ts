# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for clc_vm_semantics_test.
