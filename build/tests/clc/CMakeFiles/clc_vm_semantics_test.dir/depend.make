# Empty dependencies file for clc_vm_semantics_test.
# This may be replaced when dependencies are built.
