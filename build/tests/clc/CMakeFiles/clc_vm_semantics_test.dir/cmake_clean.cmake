file(REMOVE_RECURSE
  "CMakeFiles/clc_vm_semantics_test.dir/vm_semantics_test.cpp.o"
  "CMakeFiles/clc_vm_semantics_test.dir/vm_semantics_test.cpp.o.d"
  "clc_vm_semantics_test"
  "clc_vm_semantics_test.pdb"
  "clc_vm_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_vm_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
