# Empty dependencies file for clc_bytecode_test.
# This may be replaced when dependencies are built.
