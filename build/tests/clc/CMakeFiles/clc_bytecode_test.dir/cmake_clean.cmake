file(REMOVE_RECURSE
  "CMakeFiles/clc_bytecode_test.dir/bytecode_test.cpp.o"
  "CMakeFiles/clc_bytecode_test.dir/bytecode_test.cpp.o.d"
  "clc_bytecode_test"
  "clc_bytecode_test.pdb"
  "clc_bytecode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_bytecode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
