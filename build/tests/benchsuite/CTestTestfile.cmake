# CMake generated Testfile for 
# Source directory: /root/repo/tests/benchsuite
# Build directory: /root/repo/build/tests/benchsuite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/benchsuite/benchsuite_sloc_test[1]_include.cmake")
