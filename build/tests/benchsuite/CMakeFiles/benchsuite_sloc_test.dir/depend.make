# Empty dependencies file for benchsuite_sloc_test.
# This may be replaced when dependencies are built.
