file(REMOVE_RECURSE
  "CMakeFiles/benchsuite_sloc_test.dir/sloc_test.cpp.o"
  "CMakeFiles/benchsuite_sloc_test.dir/sloc_test.cpp.o.d"
  "benchsuite_sloc_test"
  "benchsuite_sloc_test.pdb"
  "benchsuite_sloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchsuite_sloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
