# CMake generated Testfile for 
# Source directory: /root/repo/tests/hpl
# Build directory: /root/repo/build/tests/hpl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hpl/hpl_paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/hpl/hpl_codegen_test[1]_include.cmake")
include("/root/repo/build/tests/hpl/hpl_coherence_test[1]_include.cmake")
include("/root/repo/build/tests/hpl/hpl_eval_api_test[1]_include.cmake")
include("/root/repo/build/tests/hpl/hpl_patterns_test[1]_include.cmake")
include("/root/repo/build/tests/hpl/hpl_expr_and_array_test[1]_include.cmake")
include("/root/repo/build/tests/hpl/hpl_builder_test[1]_include.cmake")
