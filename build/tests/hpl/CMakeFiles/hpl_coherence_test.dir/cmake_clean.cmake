file(REMOVE_RECURSE
  "CMakeFiles/hpl_coherence_test.dir/coherence_test.cpp.o"
  "CMakeFiles/hpl_coherence_test.dir/coherence_test.cpp.o.d"
  "hpl_coherence_test"
  "hpl_coherence_test.pdb"
  "hpl_coherence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_coherence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
