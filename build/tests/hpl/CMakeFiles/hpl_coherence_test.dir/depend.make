# Empty dependencies file for hpl_coherence_test.
# This may be replaced when dependencies are built.
