file(REMOVE_RECURSE
  "CMakeFiles/hpl_eval_api_test.dir/eval_api_test.cpp.o"
  "CMakeFiles/hpl_eval_api_test.dir/eval_api_test.cpp.o.d"
  "hpl_eval_api_test"
  "hpl_eval_api_test.pdb"
  "hpl_eval_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_eval_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
