# Empty compiler generated dependencies file for hpl_eval_api_test.
# This may be replaced when dependencies are built.
