# Empty dependencies file for hpl_paper_examples_test.
# This may be replaced when dependencies are built.
