file(REMOVE_RECURSE
  "CMakeFiles/hpl_paper_examples_test.dir/paper_examples_test.cpp.o"
  "CMakeFiles/hpl_paper_examples_test.dir/paper_examples_test.cpp.o.d"
  "hpl_paper_examples_test"
  "hpl_paper_examples_test.pdb"
  "hpl_paper_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_paper_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
