# Empty compiler generated dependencies file for hpl_expr_and_array_test.
# This may be replaced when dependencies are built.
