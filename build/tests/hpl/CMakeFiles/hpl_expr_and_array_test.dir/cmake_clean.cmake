file(REMOVE_RECURSE
  "CMakeFiles/hpl_expr_and_array_test.dir/expr_and_array_test.cpp.o"
  "CMakeFiles/hpl_expr_and_array_test.dir/expr_and_array_test.cpp.o.d"
  "hpl_expr_and_array_test"
  "hpl_expr_and_array_test.pdb"
  "hpl_expr_and_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_expr_and_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
