# Empty compiler generated dependencies file for hpl_patterns_test.
# This may be replaced when dependencies are built.
