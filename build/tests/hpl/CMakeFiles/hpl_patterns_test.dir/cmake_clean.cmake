file(REMOVE_RECURSE
  "CMakeFiles/hpl_patterns_test.dir/patterns_test.cpp.o"
  "CMakeFiles/hpl_patterns_test.dir/patterns_test.cpp.o.d"
  "hpl_patterns_test"
  "hpl_patterns_test.pdb"
  "hpl_patterns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
