file(REMOVE_RECURSE
  "CMakeFiles/hpl_builder_test.dir/builder_test.cpp.o"
  "CMakeFiles/hpl_builder_test.dir/builder_test.cpp.o.d"
  "hpl_builder_test"
  "hpl_builder_test.pdb"
  "hpl_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
