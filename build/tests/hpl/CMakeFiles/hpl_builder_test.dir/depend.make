# Empty dependencies file for hpl_builder_test.
# This may be replaced when dependencies are built.
