# Empty compiler generated dependencies file for hpl_codegen_test.
# This may be replaced when dependencies are built.
