file(REMOVE_RECURSE
  "CMakeFiles/hpl_codegen_test.dir/codegen_test.cpp.o"
  "CMakeFiles/hpl_codegen_test.dir/codegen_test.cpp.o.d"
  "hpl_codegen_test"
  "hpl_codegen_test.pdb"
  "hpl_codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
