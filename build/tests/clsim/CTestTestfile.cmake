# CMake generated Testfile for 
# Source directory: /root/repo/tests/clsim
# Build directory: /root/repo/build/tests/clsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/clsim/clsim_runtime_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/clsim/clsim_coalescing_test[1]_include.cmake")
include("/root/repo/build/tests/clsim/clsim_timing_test[1]_include.cmake")
include("/root/repo/build/tests/clsim/clsim_executor_test[1]_include.cmake")
include("/root/repo/build/tests/clsim/clsim_cl_api_test[1]_include.cmake")
include("/root/repo/build/tests/clsim/clsim_local_args_test[1]_include.cmake")
