# Empty dependencies file for clsim_runtime_smoke_test.
# This may be replaced when dependencies are built.
