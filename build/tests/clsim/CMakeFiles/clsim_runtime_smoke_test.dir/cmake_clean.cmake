file(REMOVE_RECURSE
  "CMakeFiles/clsim_runtime_smoke_test.dir/runtime_smoke_test.cpp.o"
  "CMakeFiles/clsim_runtime_smoke_test.dir/runtime_smoke_test.cpp.o.d"
  "clsim_runtime_smoke_test"
  "clsim_runtime_smoke_test.pdb"
  "clsim_runtime_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsim_runtime_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
