file(REMOVE_RECURSE
  "CMakeFiles/clsim_local_args_test.dir/local_args_test.cpp.o"
  "CMakeFiles/clsim_local_args_test.dir/local_args_test.cpp.o.d"
  "clsim_local_args_test"
  "clsim_local_args_test.pdb"
  "clsim_local_args_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsim_local_args_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
