# Empty dependencies file for clsim_local_args_test.
# This may be replaced when dependencies are built.
