file(REMOVE_RECURSE
  "CMakeFiles/clsim_coalescing_test.dir/coalescing_test.cpp.o"
  "CMakeFiles/clsim_coalescing_test.dir/coalescing_test.cpp.o.d"
  "clsim_coalescing_test"
  "clsim_coalescing_test.pdb"
  "clsim_coalescing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsim_coalescing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
