# Empty compiler generated dependencies file for clsim_coalescing_test.
# This may be replaced when dependencies are built.
