# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for clsim_cl_api_test.
