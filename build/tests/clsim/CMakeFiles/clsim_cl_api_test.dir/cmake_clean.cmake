file(REMOVE_RECURSE
  "CMakeFiles/clsim_cl_api_test.dir/cl_api_test.cpp.o"
  "CMakeFiles/clsim_cl_api_test.dir/cl_api_test.cpp.o.d"
  "clsim_cl_api_test"
  "clsim_cl_api_test.pdb"
  "clsim_cl_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsim_cl_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
