# Empty compiler generated dependencies file for clsim_cl_api_test.
# This may be replaced when dependencies are built.
