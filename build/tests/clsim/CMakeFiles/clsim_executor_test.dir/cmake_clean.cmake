file(REMOVE_RECURSE
  "CMakeFiles/clsim_executor_test.dir/executor_test.cpp.o"
  "CMakeFiles/clsim_executor_test.dir/executor_test.cpp.o.d"
  "clsim_executor_test"
  "clsim_executor_test.pdb"
  "clsim_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsim_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
