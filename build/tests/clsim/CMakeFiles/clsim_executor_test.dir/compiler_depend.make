# Empty compiler generated dependencies file for clsim_executor_test.
# This may be replaced when dependencies are built.
