# Empty dependencies file for clsim_timing_test.
# This may be replaced when dependencies are built.
