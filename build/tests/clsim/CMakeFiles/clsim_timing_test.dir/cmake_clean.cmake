file(REMOVE_RECURSE
  "CMakeFiles/clsim_timing_test.dir/timing_test.cpp.o"
  "CMakeFiles/clsim_timing_test.dir/timing_test.cpp.o.d"
  "clsim_timing_test"
  "clsim_timing_test.pdb"
  "clsim_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsim_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
