file(REMOVE_RECURSE
  "CMakeFiles/hpl_support.dir/strings.cpp.o"
  "CMakeFiles/hpl_support.dir/strings.cpp.o.d"
  "CMakeFiles/hpl_support.dir/table.cpp.o"
  "CMakeFiles/hpl_support.dir/table.cpp.o.d"
  "CMakeFiles/hpl_support.dir/thread_pool.cpp.o"
  "CMakeFiles/hpl_support.dir/thread_pool.cpp.o.d"
  "libhpl_support.a"
  "libhpl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
