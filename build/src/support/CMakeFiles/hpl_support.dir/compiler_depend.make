# Empty compiler generated dependencies file for hpl_support.
# This may be replaced when dependencies are built.
