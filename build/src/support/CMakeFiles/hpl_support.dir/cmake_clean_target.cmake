file(REMOVE_RECURSE
  "libhpl_support.a"
)
