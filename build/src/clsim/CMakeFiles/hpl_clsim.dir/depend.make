# Empty dependencies file for hpl_clsim.
# This may be replaced when dependencies are built.
