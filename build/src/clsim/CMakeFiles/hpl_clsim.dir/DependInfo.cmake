
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clsim/cl_api.cpp" "src/clsim/CMakeFiles/hpl_clsim.dir/cl_api.cpp.o" "gcc" "src/clsim/CMakeFiles/hpl_clsim.dir/cl_api.cpp.o.d"
  "/root/repo/src/clsim/coalescing.cpp" "src/clsim/CMakeFiles/hpl_clsim.dir/coalescing.cpp.o" "gcc" "src/clsim/CMakeFiles/hpl_clsim.dir/coalescing.cpp.o.d"
  "/root/repo/src/clsim/device.cpp" "src/clsim/CMakeFiles/hpl_clsim.dir/device.cpp.o" "gcc" "src/clsim/CMakeFiles/hpl_clsim.dir/device.cpp.o.d"
  "/root/repo/src/clsim/executor.cpp" "src/clsim/CMakeFiles/hpl_clsim.dir/executor.cpp.o" "gcc" "src/clsim/CMakeFiles/hpl_clsim.dir/executor.cpp.o.d"
  "/root/repo/src/clsim/runtime.cpp" "src/clsim/CMakeFiles/hpl_clsim.dir/runtime.cpp.o" "gcc" "src/clsim/CMakeFiles/hpl_clsim.dir/runtime.cpp.o.d"
  "/root/repo/src/clsim/timing.cpp" "src/clsim/CMakeFiles/hpl_clsim.dir/timing.cpp.o" "gcc" "src/clsim/CMakeFiles/hpl_clsim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clc/CMakeFiles/hpl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
