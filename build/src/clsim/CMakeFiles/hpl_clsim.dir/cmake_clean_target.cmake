file(REMOVE_RECURSE
  "libhpl_clsim.a"
)
