file(REMOVE_RECURSE
  "CMakeFiles/hpl_clsim.dir/cl_api.cpp.o"
  "CMakeFiles/hpl_clsim.dir/cl_api.cpp.o.d"
  "CMakeFiles/hpl_clsim.dir/coalescing.cpp.o"
  "CMakeFiles/hpl_clsim.dir/coalescing.cpp.o.d"
  "CMakeFiles/hpl_clsim.dir/device.cpp.o"
  "CMakeFiles/hpl_clsim.dir/device.cpp.o.d"
  "CMakeFiles/hpl_clsim.dir/executor.cpp.o"
  "CMakeFiles/hpl_clsim.dir/executor.cpp.o.d"
  "CMakeFiles/hpl_clsim.dir/runtime.cpp.o"
  "CMakeFiles/hpl_clsim.dir/runtime.cpp.o.d"
  "CMakeFiles/hpl_clsim.dir/timing.cpp.o"
  "CMakeFiles/hpl_clsim.dir/timing.cpp.o.d"
  "libhpl_clsim.a"
  "libhpl_clsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_clsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
