file(REMOVE_RECURSE
  "CMakeFiles/hpl_hpl.dir/array.cpp.o"
  "CMakeFiles/hpl_hpl.dir/array.cpp.o.d"
  "CMakeFiles/hpl_hpl.dir/builder.cpp.o"
  "CMakeFiles/hpl_hpl.dir/builder.cpp.o.d"
  "CMakeFiles/hpl_hpl.dir/codegen.cpp.o"
  "CMakeFiles/hpl_hpl.dir/codegen.cpp.o.d"
  "CMakeFiles/hpl_hpl.dir/keywords.cpp.o"
  "CMakeFiles/hpl_hpl.dir/keywords.cpp.o.d"
  "CMakeFiles/hpl_hpl.dir/runtime.cpp.o"
  "CMakeFiles/hpl_hpl.dir/runtime.cpp.o.d"
  "libhpl_hpl.a"
  "libhpl_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
