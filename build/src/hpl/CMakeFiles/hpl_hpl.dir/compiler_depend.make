# Empty compiler generated dependencies file for hpl_hpl.
# This may be replaced when dependencies are built.
