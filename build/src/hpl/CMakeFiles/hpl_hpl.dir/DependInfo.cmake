
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpl/array.cpp" "src/hpl/CMakeFiles/hpl_hpl.dir/array.cpp.o" "gcc" "src/hpl/CMakeFiles/hpl_hpl.dir/array.cpp.o.d"
  "/root/repo/src/hpl/builder.cpp" "src/hpl/CMakeFiles/hpl_hpl.dir/builder.cpp.o" "gcc" "src/hpl/CMakeFiles/hpl_hpl.dir/builder.cpp.o.d"
  "/root/repo/src/hpl/codegen.cpp" "src/hpl/CMakeFiles/hpl_hpl.dir/codegen.cpp.o" "gcc" "src/hpl/CMakeFiles/hpl_hpl.dir/codegen.cpp.o.d"
  "/root/repo/src/hpl/keywords.cpp" "src/hpl/CMakeFiles/hpl_hpl.dir/keywords.cpp.o" "gcc" "src/hpl/CMakeFiles/hpl_hpl.dir/keywords.cpp.o.d"
  "/root/repo/src/hpl/runtime.cpp" "src/hpl/CMakeFiles/hpl_hpl.dir/runtime.cpp.o" "gcc" "src/hpl/CMakeFiles/hpl_hpl.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clsim/CMakeFiles/hpl_clsim.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/hpl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
