file(REMOVE_RECURSE
  "libhpl_hpl.a"
)
