file(REMOVE_RECURSE
  "CMakeFiles/hpl_clc.dir/builtins.cpp.o"
  "CMakeFiles/hpl_clc.dir/builtins.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/bytecode.cpp.o"
  "CMakeFiles/hpl_clc.dir/bytecode.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/codegen.cpp.o"
  "CMakeFiles/hpl_clc.dir/codegen.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/compile.cpp.o"
  "CMakeFiles/hpl_clc.dir/compile.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/diagnostics.cpp.o"
  "CMakeFiles/hpl_clc.dir/diagnostics.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/lexer.cpp.o"
  "CMakeFiles/hpl_clc.dir/lexer.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/parser.cpp.o"
  "CMakeFiles/hpl_clc.dir/parser.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/preprocessor.cpp.o"
  "CMakeFiles/hpl_clc.dir/preprocessor.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/sema.cpp.o"
  "CMakeFiles/hpl_clc.dir/sema.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/types.cpp.o"
  "CMakeFiles/hpl_clc.dir/types.cpp.o.d"
  "CMakeFiles/hpl_clc.dir/vm.cpp.o"
  "CMakeFiles/hpl_clc.dir/vm.cpp.o.d"
  "libhpl_clc.a"
  "libhpl_clc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_clc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
