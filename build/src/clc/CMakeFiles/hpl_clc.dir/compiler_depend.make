# Empty compiler generated dependencies file for hpl_clc.
# This may be replaced when dependencies are built.
