file(REMOVE_RECURSE
  "libhpl_clc.a"
)
