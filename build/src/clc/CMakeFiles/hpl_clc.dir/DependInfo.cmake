
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clc/builtins.cpp" "src/clc/CMakeFiles/hpl_clc.dir/builtins.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/builtins.cpp.o.d"
  "/root/repo/src/clc/bytecode.cpp" "src/clc/CMakeFiles/hpl_clc.dir/bytecode.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/bytecode.cpp.o.d"
  "/root/repo/src/clc/codegen.cpp" "src/clc/CMakeFiles/hpl_clc.dir/codegen.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/codegen.cpp.o.d"
  "/root/repo/src/clc/compile.cpp" "src/clc/CMakeFiles/hpl_clc.dir/compile.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/compile.cpp.o.d"
  "/root/repo/src/clc/diagnostics.cpp" "src/clc/CMakeFiles/hpl_clc.dir/diagnostics.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/diagnostics.cpp.o.d"
  "/root/repo/src/clc/lexer.cpp" "src/clc/CMakeFiles/hpl_clc.dir/lexer.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/lexer.cpp.o.d"
  "/root/repo/src/clc/parser.cpp" "src/clc/CMakeFiles/hpl_clc.dir/parser.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/parser.cpp.o.d"
  "/root/repo/src/clc/preprocessor.cpp" "src/clc/CMakeFiles/hpl_clc.dir/preprocessor.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/preprocessor.cpp.o.d"
  "/root/repo/src/clc/sema.cpp" "src/clc/CMakeFiles/hpl_clc.dir/sema.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/sema.cpp.o.d"
  "/root/repo/src/clc/types.cpp" "src/clc/CMakeFiles/hpl_clc.dir/types.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/types.cpp.o.d"
  "/root/repo/src/clc/vm.cpp" "src/clc/CMakeFiles/hpl_clc.dir/vm.cpp.o" "gcc" "src/clc/CMakeFiles/hpl_clc.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hpl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
