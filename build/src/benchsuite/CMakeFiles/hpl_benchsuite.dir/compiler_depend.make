# Empty compiler generated dependencies file for hpl_benchsuite.
# This may be replaced when dependencies are built.
