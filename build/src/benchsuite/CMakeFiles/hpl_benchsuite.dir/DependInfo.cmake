
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchsuite/ep_hpl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/ep_hpl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/ep_hpl.cpp.o.d"
  "/root/repo/src/benchsuite/ep_opencl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/ep_opencl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/ep_opencl.cpp.o.d"
  "/root/repo/src/benchsuite/ep_serial.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/ep_serial.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/ep_serial.cpp.o.d"
  "/root/repo/src/benchsuite/floyd_hpl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/floyd_hpl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/floyd_hpl.cpp.o.d"
  "/root/repo/src/benchsuite/floyd_opencl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/floyd_opencl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/floyd_opencl.cpp.o.d"
  "/root/repo/src/benchsuite/floyd_serial.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/floyd_serial.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/floyd_serial.cpp.o.d"
  "/root/repo/src/benchsuite/reduction_hpl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/reduction_hpl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/reduction_hpl.cpp.o.d"
  "/root/repo/src/benchsuite/reduction_opencl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/reduction_opencl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/reduction_opencl.cpp.o.d"
  "/root/repo/src/benchsuite/reduction_serial.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/reduction_serial.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/reduction_serial.cpp.o.d"
  "/root/repo/src/benchsuite/sloc.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/sloc.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/sloc.cpp.o.d"
  "/root/repo/src/benchsuite/spmv_hpl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/spmv_hpl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/spmv_hpl.cpp.o.d"
  "/root/repo/src/benchsuite/spmv_opencl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/spmv_opencl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/spmv_opencl.cpp.o.d"
  "/root/repo/src/benchsuite/spmv_serial.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/spmv_serial.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/spmv_serial.cpp.o.d"
  "/root/repo/src/benchsuite/transpose_hpl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/transpose_hpl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/transpose_hpl.cpp.o.d"
  "/root/repo/src/benchsuite/transpose_opencl.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/transpose_opencl.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/transpose_opencl.cpp.o.d"
  "/root/repo/src/benchsuite/transpose_serial.cpp" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/transpose_serial.cpp.o" "gcc" "src/benchsuite/CMakeFiles/hpl_benchsuite.dir/transpose_serial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpl/CMakeFiles/hpl_hpl.dir/DependInfo.cmake"
  "/root/repo/build/src/clsim/CMakeFiles/hpl_clsim.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/hpl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
