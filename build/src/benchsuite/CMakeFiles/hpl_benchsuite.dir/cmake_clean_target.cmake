file(REMOVE_RECURSE
  "libhpl_benchsuite.a"
)
