# Empty compiler generated dependencies file for table1_sloc.
# This may be replaced when dependencies are built.
