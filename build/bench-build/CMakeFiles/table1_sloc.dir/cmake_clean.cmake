file(REMOVE_RECURSE
  "../bench/table1_sloc"
  "../bench/table1_sloc.pdb"
  "CMakeFiles/table1_sloc.dir/table1_sloc.cpp.o"
  "CMakeFiles/table1_sloc.dir/table1_sloc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
