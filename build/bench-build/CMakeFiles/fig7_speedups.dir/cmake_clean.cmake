file(REMOVE_RECURSE
  "../bench/fig7_speedups"
  "../bench/fig7_speedups.pdb"
  "CMakeFiles/fig7_speedups.dir/fig7_speedups.cpp.o"
  "CMakeFiles/fig7_speedups.dir/fig7_speedups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
