# Empty dependencies file for fig7_speedups.
# This may be replaced when dependencies are built.
