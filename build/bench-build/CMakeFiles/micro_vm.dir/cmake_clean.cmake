file(REMOVE_RECURSE
  "../bench/micro_vm"
  "../bench/micro_vm.pdb"
  "CMakeFiles/micro_vm.dir/micro_vm.cpp.o"
  "CMakeFiles/micro_vm.dir/micro_vm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
