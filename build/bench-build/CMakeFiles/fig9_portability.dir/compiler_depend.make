# Empty compiler generated dependencies file for fig9_portability.
# This may be replaced when dependencies are built.
