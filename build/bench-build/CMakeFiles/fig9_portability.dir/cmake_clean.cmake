file(REMOVE_RECURSE
  "../bench/fig9_portability"
  "../bench/fig9_portability.pdb"
  "CMakeFiles/fig9_portability.dir/fig9_portability.cpp.o"
  "CMakeFiles/fig9_portability.dir/fig9_portability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
