# Empty dependencies file for ablation_transfers.
# This may be replaced when dependencies are built.
