file(REMOVE_RECURSE
  "../bench/ablation_transfers"
  "../bench/ablation_transfers.pdb"
  "CMakeFiles/ablation_transfers.dir/ablation_transfers.cpp.o"
  "CMakeFiles/ablation_transfers.dir/ablation_transfers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
