file(REMOVE_RECURSE
  "../bench/fig6_ep_problem_sizes"
  "../bench/fig6_ep_problem_sizes.pdb"
  "CMakeFiles/fig6_ep_problem_sizes.dir/fig6_ep_problem_sizes.cpp.o"
  "CMakeFiles/fig6_ep_problem_sizes.dir/fig6_ep_problem_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ep_problem_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
