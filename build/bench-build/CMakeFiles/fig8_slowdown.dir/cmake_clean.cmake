file(REMOVE_RECURSE
  "../bench/fig8_slowdown"
  "../bench/fig8_slowdown.pdb"
  "CMakeFiles/fig8_slowdown.dir/fig8_slowdown.cpp.o"
  "CMakeFiles/fig8_slowdown.dir/fig8_slowdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
