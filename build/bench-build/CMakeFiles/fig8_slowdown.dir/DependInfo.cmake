
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_slowdown.cpp" "bench-build/CMakeFiles/fig8_slowdown.dir/fig8_slowdown.cpp.o" "gcc" "bench-build/CMakeFiles/fig8_slowdown.dir/fig8_slowdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchsuite/CMakeFiles/hpl_benchsuite.dir/DependInfo.cmake"
  "/root/repo/build/src/hpl/CMakeFiles/hpl_hpl.dir/DependInfo.cmake"
  "/root/repo/build/src/clsim/CMakeFiles/hpl_clsim.dir/DependInfo.cmake"
  "/root/repo/build/src/clc/CMakeFiles/hpl_clc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
