file(REMOVE_RECURSE
  "../bench/ablation_kernel_cache"
  "../bench/ablation_kernel_cache.pdb"
  "CMakeFiles/ablation_kernel_cache.dir/ablation_kernel_cache.cpp.o"
  "CMakeFiles/ablation_kernel_cache.dir/ablation_kernel_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
