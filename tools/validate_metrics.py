#!/usr/bin/env python3
"""Validate an hplrepro-metrics-v1 JSON document.

Usage:
  validate_metrics.py <metrics.json>
  validate_metrics.py --run <scenario_sweep-binary> <metrics.json>

With --run, the scenario sweep is executed first (reduced matrix, metrics
enabled) so the document under test is freshly produced by the binary being
shipped; the sweep's own stdout is suppressed.

Checks (each failure is reported, exit status 1 if any):
  * schema tag, and name-sorted unique counters/gauges/histograms;
  * every histogram: bucket counts sum to the sample count, quantiles are
    monotone (p50 <= p90 <= p99 <= p99.9) and bounded by the recorded max
    up to one log-bucket of slack, no negative or non-finite numbers;
  * eval accounting reconciles: the hpl.eval.latency_ns sample count, the
    hpl.eval.launches counter and critical_path.evals all agree;
  * every critical-path entry partitions its eval exactly: the four
    segments are non-negative and sum to total_us within tolerance, and
    the running totals do too;
  * a clean run must not have tripped the flight recorder.
"""

import json
import subprocess
import sys

SUB_BITS = 5  # mirrors metrics::Histogram::kSubBits
REL_TOL = 1e-6
ABS_TOL_US = 1e-3

errors = []


def check(ok, message):
    if not ok:
        errors.append(message)


def bucket_slack(value):
    """One log-bucket of width at `value` (quantiles are bucket midpoints)."""
    return max(1.0, float(value) / (1 << SUB_BITS))


def validate_histogram(h):
    name = h["name"]
    bucket_sum = sum(b["count"] for b in h["buckets"])
    check(bucket_sum == h["count"],
          f"{name}: bucket counts sum to {bucket_sum}, not count {h['count']}")
    check(all(b["count"] > 0 for b in h["buckets"]),
          f"{name}: empty buckets must be omitted")
    lows = [b["lo"] for b in h["buckets"]]
    check(lows == sorted(lows), f"{name}: bucket lower bounds not ascending")

    qs = [h["p50"], h["p90"], h["p99"], h["p999"]]
    check(all(q >= 0 for q in qs), f"{name}: negative quantile in {qs}")
    check(qs == sorted(qs), f"{name}: quantiles not monotone: {qs}")
    if h["count"] == 0:
        check(all(q == 0 for q in qs) and h["mean"] == 0,
              f"{name}: empty histogram must report zero quantiles/mean")
    else:
        check(qs[-1] <= h["max"] + bucket_slack(h["max"]),
              f"{name}: p999 {qs[-1]} exceeds max {h['max']} by more than "
              "one bucket")
        check(h["min"] <= h["max"], f"{name}: min {h['min']} > max {h['max']}")
        check(0 <= h["mean"] <= h["max"] + bucket_slack(h["max"]),
              f"{name}: mean {h['mean']} outside [0, max]")


def validate_critical_entry(p, where):
    segments = [p["host_prep_us"], p["queue_wait_us"], p["transfer_us"],
                p["kernel_us"]]
    check(all(s >= -ABS_TOL_US for s in segments),
          f"{where}: negative segment in {segments}")
    total = p["total_us"]
    tol = ABS_TOL_US + REL_TOL * abs(total)
    check(abs(sum(segments) - total) <= tol,
          f"{where}: segments sum to {sum(segments)}, total is {total}")


def validate(doc):
    check(doc.get("schema") == "hplrepro-metrics-v1",
          f"bad schema tag: {doc.get('schema')!r}")

    for section in ("counters", "gauges", "histograms"):
        names = [entry["name"] for entry in doc[section]]
        check(names == sorted(names), f"{section} not sorted by name")
        check(len(names) == len(set(names)), f"duplicate names in {section}")

    for h in doc["histograms"]:
        validate_histogram(h)

    counters = {c["name"]: c["value"] for c in doc["counters"]}
    latency = next((h for h in doc["histograms"]
                    if h["name"] == "hpl.eval.latency_ns"), None)
    check(latency is not None, "hpl.eval.latency_ns histogram missing")

    cp = doc["critical_path"]
    evals = cp["evals"]
    check(evals > 0, "critical_path.evals is zero: nothing was attributed")
    check(counters.get("hpl.eval.launches") == evals,
          f"hpl.eval.launches {counters.get('hpl.eval.launches')} != "
          f"critical_path.evals {evals}")
    if latency is not None:
        check(latency["count"] == evals,
              f"latency sample count {latency['count']} != evals {evals}")

    validate_critical_entry(cp["totals"], "critical_path.totals")
    for i, entry in enumerate(cp["recent"]):
        validate_critical_entry(entry, f"critical_path.recent[{i}]"
                                f" ({entry['kernel']}@{entry['device']})")

    hits = counters.get("hpl.cache.hit", 0)
    misses = counters.get("hpl.cache.miss", 0)
    check(hits + misses == evals,
          f"cache hits {hits} + misses {misses} != evals {evals}")

    # Work-group loop accounting (vm.wg_* are emitted alongside vm.launches
    # whenever the executor runs): a wg-mode launch contributes exactly one
    # loop trip per work-item, and at least one region entry per trip.
    if "vm.wg_launches" in counters:
        wg_launches = counters["vm.wg_launches"]
        wg_trips = counters.get("vm.wg_loop_trips", 0)
        wg_regions = counters.get("vm.regions", 0)
        launches = counters.get("vm.launches", 0)
        items = counters.get("vm.items", 0)
        check(wg_launches <= launches,
              f"vm.wg_launches {wg_launches} > vm.launches {launches}")
        check(wg_trips <= items,
              f"vm.wg_loop_trips {wg_trips} > vm.items {items}")
        check(wg_regions >= wg_trips,
              f"vm.regions {wg_regions} < vm.wg_loop_trips {wg_trips}")
        if wg_launches == launches and launches > 0:
            check(wg_trips == items,
                  f"all launches ran in wg mode but vm.wg_loop_trips "
                  f"{wg_trips} != vm.items {items}")

    # Co-execution accounting: every coexec eval fans out into >= 2 chunks,
    # each chunk is a full mini-eval (so it is already inside
    # hpl.eval.launches), and every chunk was produced by exactly one
    # scheduling policy.
    if "coexec.chunks" in counters:
        co_evals = counters.get("coexec.evals", 0)
        co_chunks = counters["coexec.chunks"]
        check(co_evals > 0,
              "coexec.chunks present but coexec.evals is zero")
        check(co_chunks >= 2 * co_evals,
              f"coexec.chunks {co_chunks} < 2 * coexec.evals {co_evals}: "
              "a co-executed NDRange must split into at least two chunks")
        check(co_chunks <= evals,
              f"coexec.chunks {co_chunks} > hpl.eval.launches {evals}: "
              "chunks are mini-evals and cannot outnumber launches")
        by_policy = sum(counters.get(f"coexec.chunks.{p}", 0)
                        for p in ("static", "dynamic", "guided"))
        check(by_policy == co_chunks,
              f"per-policy chunk counters sum to {by_policy}, "
              f"not coexec.chunks {co_chunks}")

    # Fusion accounting: every flush launches actual <= unfused kernels and
    # the saved/rule/traffic counters reconcile exactly with that delta.
    if "fusion.dag_flushes" in counters:
        fu_unfused = counters.get("fusion.unfused_launches", 0)
        fu_actual = counters.get("fusion.actual_launches", 0)
        fu_saved = counters.get("fusion.launches_saved", 0)
        fu_rules = counters.get("fusion.rules_applied", 0)
        fu_bytes = counters.get("fusion.bytes_traffic_saved", 0)
        check(fu_actual <= fu_unfused,
              f"fusion.actual_launches {fu_actual} > "
              f"fusion.unfused_launches {fu_unfused}")
        check(fu_saved == fu_unfused - fu_actual,
              f"fusion.launches_saved {fu_saved} != unfused {fu_unfused} - "
              f"actual {fu_actual}")
        check(fu_actual <= evals,
              f"fusion.actual_launches {fu_actual} > hpl.eval.launches "
              f"{evals}: flushed launches are a subset of all launches")
        if fu_saved > 0:
            check(fu_rules > 0,
                  f"fusion saved {fu_saved} launches with zero "
                  "fusion.rules_applied")
        if fu_rules == 0:
            check(fu_saved == 0 and fu_bytes == 0,
                  "no rewrite rules fired but fusion reports "
                  f"saved={fu_saved} bytes={fu_bytes}")

    check(doc["flight_recorder"]["dumped"] is False,
          "flight recorder dumped during a clean run")


def main(argv):
    if len(argv) >= 3 and argv[1] == "--run":
        binary = argv[2]
        path = argv[3] if len(argv) > 3 else "metrics_validate.json"
        result = subprocess.run(
            [binary, "--reduced", "--metrics", path],
            stdout=subprocess.DEVNULL, timeout=280)
        if result.returncode != 0:
            print(f"FAIL: {binary} exited with {result.returncode}")
            return 1
    elif len(argv) == 2:
        path = argv[1]
    else:
        print(__doc__)
        return 2

    with open(path) as f:
        doc = json.load(f)
    validate(doc)

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print(f"OK: {path} satisfies hplrepro-metrics-v1 "
          f"({doc['critical_path']['evals']} evals, "
          f"{len(doc['histograms'])} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
