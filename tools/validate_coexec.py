#!/usr/bin/env python3
"""Validate an hplrepro-coexec-v1 JSON document (from `bench/coexec --json`).

Usage:
  validate_coexec.py <BENCH_coexec.json>

Checks (each failure is reported, exit status 1 if any):
  * schema tag, >= 2 devices, >= 3 workloads;
  * every workload reports one result per policy (static/dynamic/guided),
    a positive per-device roofline for every device in the set, and an
    ideal time no larger than the fastest single device;
  * every policy result: positive makespan, fraction == ideal/makespan
    (within tolerance), fraction in (0, 1.05], >= 2 chunks, and the
    co-executed result bit-identical to the single-device run;
  * acceptance: on at least two workloads an adaptive policy (dynamic or
    guided) achieves >= 70% of the summed per-device roofline while the
    static split is at least 20 points worse.
"""

import json
import sys

POLICIES = ("static", "dynamic", "guided")
REL_TOL = 1e-6

errors = []


def check(ok, message):
    if not ok:
        errors.append(message)


def validate(doc):
    check(doc.get("schema") == "hplrepro-coexec-v1",
          f"bad schema tag: {doc.get('schema')!r}")
    devices = doc.get("devices", [])
    check(len(devices) >= 2, f"need >= 2 devices, got {devices}")
    workloads = doc.get("workloads", [])
    check(len(workloads) >= 3, f"need >= 3 workloads, got {len(workloads)}")

    accepted = 0
    for wl in workloads:
        name = wl.get("name", "?")
        singles = wl.get("single_device_seconds", {})
        check(set(singles) == set(devices),
              f"{name}: single-device rooflines {sorted(singles)} don't "
              f"match the device set")
        check(all(t > 0 for t in singles.values()),
              f"{name}: non-positive single-device time")
        ideal = wl.get("ideal_seconds", 0)
        check(ideal > 0, f"{name}: non-positive ideal_seconds")
        if singles and all(t > 0 for t in singles.values()):
            fastest = min(singles.values())
            check(ideal <= fastest * (1 + REL_TOL),
                  f"{name}: ideal {ideal} exceeds fastest device {fastest}")

        by_policy = {}
        for pol in wl.get("policies", []):
            pname = pol.get("policy", "?")
            by_policy[pname] = pol
            makespan = pol.get("makespan_seconds", 0)
            fraction = pol.get("fraction_of_roofline", 0)
            check(makespan > 0, f"{name}/{pname}: non-positive makespan")
            if makespan > 0 and ideal > 0:
                expect = ideal / makespan
                check(abs(fraction - expect) <= REL_TOL * max(1, expect),
                      f"{name}/{pname}: fraction {fraction} != "
                      f"ideal/makespan {expect}")
            check(0 < fraction <= 1.05,
                  f"{name}/{pname}: fraction {fraction} outside (0, 1.05]")
            check(pol.get("chunks", 0) >= 2,
                  f"{name}/{pname}: a co-executed NDRange must split into "
                  f">= 2 chunks, got {pol.get('chunks')}")
            check(pol.get("bit_identical") is True,
                  f"{name}/{pname}: result not bit-identical to the "
                  f"single-device run")
        check(sorted(by_policy) == sorted(POLICIES),
              f"{name}: policies {sorted(by_policy)} != {sorted(POLICIES)}")

        if sorted(by_policy) == sorted(POLICIES):
            static_f = by_policy["static"]["fraction_of_roofline"]
            best_adaptive = max(by_policy[p]["fraction_of_roofline"]
                                for p in ("dynamic", "guided"))
            if best_adaptive >= 0.70 and static_f <= best_adaptive - 0.20:
                accepted += 1

    check(accepted >= 2,
          f"acceptance: an adaptive policy must reach >= 70% of the summed "
          f"roofline (with static >= 20 points worse) on >= 2 workloads; "
          f"only {accepted} qualified")
    return accepted


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        doc = json.load(f)
    accepted = validate(doc)

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print(f"OK: {argv[1]} satisfies hplrepro-coexec-v1 "
          f"({len(doc['workloads'])} workloads, {accepted} meet the "
          f"adaptive-policy acceptance bar)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
