#!/usr/bin/env python3
"""Validate an hplrepro-fusion-v1 JSON document
(from `bench/ablation_transfers --fusion-json`).

Usage:
  validate_fusion.py <BENCH_fusion.json>

Checks (each failure is reported, exit status 1 if any):
  * schema tag, >= 4 programs including >= 1 fusion-ineligible control;
  * every program: fused_launches <= unfused_launches, launches_saved is
    exactly the delta, bit_identical, and status == "pass";
  * every chained program saves >= 1 launch and moves strictly fewer
    global-memory bytes fused than unfused;
  * every control program is untouched (same launches, same bytes);
  * the summary totals reconcile with the per-program rows;
  * acceptance: the chained corpus launch reduction is >= 25%.

Prints a greppable "FUSION GATE" line with the measured reduction.
"""

import json
import sys

GATE = 0.25

errors = []


def check(ok, message):
    if not ok:
        errors.append(message)


def validate(doc):
    check(doc.get("schema") == "hplrepro-fusion-v1",
          f"bad schema tag: {doc.get('schema')!r}")
    programs = doc.get("programs", [])
    check(len(programs) >= 4, f"need >= 4 programs, got {len(programs)}")
    controls = [p for p in programs if not p.get("chained", True)]
    chained = [p for p in programs if p.get("chained", True)]
    check(len(controls) >= 1, "need >= 1 fusion-ineligible control program")

    for p in programs:
        name = p.get("name", "?")
        unfused = p.get("unfused_launches", 0)
        fused = p.get("fused_launches", 0)
        check(unfused >= 1, f"{name}: unfused run launched nothing")
        check(fused <= unfused,
              f"{name}: fused run launched MORE kernels ({fused} > {unfused})")
        check(p.get("launches_saved") == unfused - fused,
              f"{name}: launches_saved {p.get('launches_saved')} != "
              f"{unfused} - {fused}")
        check(p.get("bit_identical") is True,
              f"{name}: fused output not bit-identical to the unfused run")
        check(p.get("status") == "pass",
              f"{name}: status {p.get('status')!r}")
        if p.get("chained", True):
            check(unfused - fused >= 1,
                  f"{name}: chained program saved no launches")
            check(p.get("fused_bytes", 0) < p.get("unfused_bytes", 0),
                  f"{name}: fused traffic {p.get('fused_bytes')} B not below "
                  f"unfused {p.get('unfused_bytes')} B")
        else:
            check(fused == unfused,
                  f"{name}: rewriter changed a control program's launches")
            check(p.get("fused_bytes") == p.get("unfused_bytes"),
                  f"{name}: rewriter changed a control program's traffic")

    summary = doc.get("summary", {})
    total_unfused = sum(p.get("unfused_launches", 0) for p in chained)
    total_fused = sum(p.get("fused_launches", 0) for p in chained)
    check(summary.get("chained_unfused_launches") == total_unfused,
          f"summary chained_unfused_launches "
          f"{summary.get('chained_unfused_launches')} != row sum "
          f"{total_unfused}")
    check(summary.get("chained_fused_launches") == total_fused,
          f"summary chained_fused_launches "
          f"{summary.get('chained_fused_launches')} != row sum {total_fused}")
    check(summary.get("failed") == 0,
          f"summary reports {summary.get('failed')} failed programs")
    check(summary.get("ok") is True, "summary.ok is not true")

    reduction = (1.0 - total_fused / total_unfused) if total_unfused else 0.0
    rep = summary.get("launch_reduction", -1)
    # The writer prints 6 significant digits.
    check(abs(rep - reduction) <= 1e-5,
          f"summary launch_reduction {rep} != recomputed {reduction}")
    check(reduction >= GATE,
          f"acceptance: chained-corpus launch reduction "
          f"{reduction:.1%} below the {GATE:.0%} gate")
    return reduction


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        doc = json.load(f)
    reduction = validate(doc)

    print(f"FUSION GATE: chained launch reduction {reduction:.1%} "
          f"(>= {GATE:.0%} required)")
    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print(f"OK: {argv[1]} satisfies hplrepro-fusion-v1 "
          f"({len(doc['programs'])} programs)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
