// Quickstart: SAXPY with HPL — the paper's Figure 3, annotated.
//
// Build & run:  ./examples/quickstart
//
// The kernel `saxpy` is an ordinary C++ function written with HPL
// datatypes. The first eval() captures it, generates OpenCL C, compiles it
// with the (simulated) device compiler and runs it on the default device
// (the first accelerator). No buffers, transfers or compilation appear in
// user code.

#include <cstdio>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

// The kernel: one work-item per vector element (idx is the global id).
void saxpy(Array<double, 1> y, Array<double, 1> x, Double a) {
  y[idx] = a * x[idx] + y[idx];
}

}  // namespace

int main() {
  constexpr std::size_t n = 1000;

  // `myvector` shows the user-managed-storage constructor from the paper.
  static double myvector[n];
  for (std::size_t i = 0; i < n; ++i) myvector[i] = 1.0;

  Array<double, 1> x(n), y(n, myvector);
  for (std::size_t i = 0; i < n; ++i) x(i) = static_cast<double>(i);

  Double a;
  a = 2.0;

  // Evaluate in parallel on the default device. The global domain defaults
  // to the dimensions of the first argument (n work-items).
  eval(saxpy)(y, x, a);

  // Host access with (): HPL syncs the data back automatically.
  std::printf("y[0]   = %.1f (expect 1.0)\n", y(0));
  std::printf("y[1]   = %.1f (expect 3.0)\n", y(1));
  std::printf("y[999] = %.1f (expect 1999.0)\n", y(999));

  const ProfileSnapshot prof = profile();
  std::printf("\nkernels built: %llu, launches: %llu\n",
              static_cast<unsigned long long>(prof.kernels_built),
              static_cast<unsigned long long>(prof.kernel_launches));
  std::printf("simulated device time: %.3f us on %s\n",
              prof.kernel_sim_seconds * 1e6,
              Device::default_device().name().c_str());
  return 0;
}
