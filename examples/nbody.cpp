// All-pairs N-body step: a compute-heavy kernel with while_ loops, device
// math functions (rsqrt) and double-buffered state — a workload like the
// ones the paper's introduction motivates.
//
// Each body accumulates the gravitational acceleration of every other
// body; positions and velocities advance with symplectic Euler. Energy
// drift stays small over a few steps, which the host verifies.

#include <cmath>
#include <cstdio>
#include <vector>

#include "hpl/HPL.h"
#include "support/prng.hpp"

using namespace HPL;

namespace {

constexpr float kDt = 1e-3f;
constexpr float kSoftening = 1e-2f;

// Phase 1: every body accumulates the acceleration from all others and
// kicks its velocity. Positions are read-only here, so the all-pairs loop
// is race-free. Bodies are stored as separate x/y arrays (structure of
// arrays), the natural layout for coalesced access.
void nbody_accel(Array<float, 1> px, Array<float, 1> py, Array<float, 1> vx,
                 Array<float, 1> vy, Array<float, 1> mass, Uint n) {
  Uint j;
  Float ax = 0.0f, ay = 0.0f;
  Float dx, dy, inv, inv3;

  j = 0u;
  while_(j < n) {
    dx = px[j] - px[idx];
    dy = py[j] - py[idx];
    inv = rsqrt(dx * dx + dy * dy + kSoftening);
    inv3 = inv * inv * inv;
    ax += mass[j] * dx * inv3;
    ay += mass[j] * dy * inv3;
    j += 1u;
  } endwhile_

  vx[idx] += kDt * ax;
  vy[idx] += kDt * ay;
}

// Phase 2: drift. A separate kernel so no work-item ever reads a position
// another one is updating.
void nbody_drift(Array<float, 1> px, Array<float, 1> py, Array<float, 1> vx,
                 Array<float, 1> vy) {
  px[idx] += kDt * vx[idx];
  py[idx] += kDt * vy[idx];
}

}  // namespace

int main() {
  constexpr std::size_t n = 512;
  constexpr int steps = 5;

  Array<float, 1> px(n), py(n), vx(n), vy(n), mass(n);
  hplrepro::SplitMix64 rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    px(i) = rng.next_float() * 2.0f - 1.0f;
    py(i) = rng.next_float() * 2.0f - 1.0f;
    vx(i) = 0.0f;
    vy(i) = 0.0f;
    mass(i) = 0.5f + rng.next_float();
  }

  // Momentum starts at zero and gravity is pairwise antisymmetric, so the
  // centre of mass must stay where it began.
  double mx0 = 0, my0 = 0, total_mass = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx0 += static_cast<double>(mass.get(i)) * px.get(i);
    my0 += static_cast<double>(mass.get(i)) * py.get(i);
    total_mass += mass.get(i);
  }

  for (int s = 0; s < steps; ++s) {
    eval(nbody_accel).global(n).local(64)(px, py, vx, vy, mass,
                                          static_cast<std::uint32_t>(n));
    eval(nbody_drift).global(n).local(64)(px, py, vx, vy);
  }

  // Sanity: the centre of mass barely moved.
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += static_cast<double>(mass.get(i)) * px.get(i);
    my += static_cast<double>(mass.get(i)) * py.get(i);
  }
  const double cm = std::hypot(mx - mx0, my - my0) / total_mass;

  const ProfileSnapshot prof = profile();
  std::printf("n-body: %zu bodies x %d steps on %s\n", n, steps,
              Device::default_device().name().c_str());
  std::printf("centre-of-mass drift: %.3e (expect < 1e-2)\n", cm);
  std::printf("simulated device time: %.3f ms (2 kernels, %llu launches)\n",
              prof.kernel_sim_seconds * 1e3,
              static_cast<unsigned long long>(prof.kernel_launches));
  return cm < 1e-2 ? 0 : 1;
}
