// Task parallelism across devices (paper §II: "Task parallelism can be
// provided by requesting the parallel evaluation of different kernels on
// different devices") and the portability story of §V-C: the same HPL
// kernel runs unchanged on every device of the platform, and the runtime
// refuses (cleanly) to run double-precision work on a device without
// double support — the reason Fig. 9 omits EP on the Quadro FX 380.

#include <cstdio>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

void scale_f(Array<float, 1> data, Float factor) {
  data[idx] = data[idx] * factor;
}

void scale_d(Array<double, 1> data, Double factor) {
  data[idx] = data[idx] * factor;
}

}  // namespace

int main() {
  constexpr std::size_t n = 4096;

  // Run the same single-precision kernel on every device in the platform.
  for (const Device& device : Device::all()) {
    Array<float, 1> data(n);
    for (std::size_t i = 0; i < n; ++i) data(i) = 1.0f;

    Float factor;
    factor = 3.0f;
    eval(scale_f).device(device)(data, factor);

    std::printf("%-26s -> data[7] = %.1f %s\n", device.name().c_str(),
                data(7), data(7) == 3.0f ? "(ok)" : "(WRONG)");
  }

  // Double precision: supported devices run it, the Quadro rejects it.
  for (const Device& device : Device::all()) {
    Array<double, 1> data(n);
    for (std::size_t i = 0; i < n; ++i) data(i) = 0.5;
    Double factor;
    factor = 4.0;
    try {
      eval(scale_d).device(device)(data, factor);
      std::printf("%-26s -> double kernel ran, data[0] = %.1f\n",
                  device.name().c_str(), data(0));
    } catch (const hplrepro::Error& e) {
      std::printf("%-26s -> rejected double kernel (as the real FX 380 "
                  "would)\n",
                  device.name().c_str());
    }
  }
  return 0;
}
