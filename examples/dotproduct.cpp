// Dot product with local memory and a barrier — the paper's Figure 4.
//
// Demonstrates: Local arrays, barrier(LOCAL), the for_/endfor_ and
// if_/endif_ kernel control constructs, explicit global/local domains, and
// the two-stage (device + host) reduction pattern.

#include <cstdio>

#include "hpl/HPL.h"

#define N 256
#define M 32
#define nGroup (N / M)

using namespace HPL;

namespace {

void dotp(Array<float, 1> v1, Array<float, 1> v2, Array<float, 1> pSums) {
  Int i;
  Array<float, 1, Local> sharedM(M);

  // Each thread multiplies one pair into the group's scratchpad.
  sharedM[lidx] = v1[idx] * v2[idx];

  barrier(LOCAL);

  // The first thread of each group accumulates the group's partial sum.
  if_(lidx == 0) {
    for_(i = 0, i < M, i++) {
      pSums[gidx] += sharedM[i];
    } endfor_
  } endif_
}

}  // namespace

int main() {
  Array<float, 1> v1(N), v2(N), pSums(nGroup);
  for (int i = 0; i < N; ++i) {
    v1(i) = static_cast<float>(i % 10);
    v2(i) = 0.5f;
  }

  // N threads in groups of M: gidx in [0, nGroup).
  eval(dotp).global(N).local(M)(v1, v2, pSums);

  float result = 0.0f;
  for (int i = 0; i < nGroup; ++i) result += pSums(i);

  float expected = 0.0f;
  for (int i = 0; i < N; ++i) expected += static_cast<float>(i % 10) * 0.5f;

  std::printf("Dot = %.1f (expect %.1f)\n", result, expected);
  return result == expected ? 0 : 1;
}
