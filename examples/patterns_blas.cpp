// The computation-pattern library (paper §VII future work, implemented
// here): BLAS-1-style building blocks that hide even the kernel
// definitions. A small conjugate-gradient-flavoured computation written
// entirely with patterns — no kernel function appears in this file.

#include <cstdio>

#include "hpl/HPL.h"

using namespace HPL;

int main() {
  constexpr std::size_t n = 1 << 15;

  // Solve the trivially diagonal system A x = b, A = 4I, with a couple of
  // Richardson iterations x <- x + w (b - A x). Everything stays on the
  // device across the whole loop.
  Array<float, 1> x(n), b(n), r(n), ax(n);
  fill(b, 8.0f);
  fill(x, 0.0f);

  const float w = 0.2f;
  for (int iteration = 0; iteration < 25; ++iteration) {
    // ax = 4 * x
    fill(ax, 0.0f);
    axpy(ax, x, 4.0f);
    // r = b - ax
    sub(r, b, ax);
    // x += w * r
    axpy(x, r, w);
  }

  // x should converge to b / 4 = 2.
  Array<float, 1> err(n);
  sub(err, x, b);      // err = x - b
  axpy(err, b, 0.75f); // err = x - b + 0.75 b = x - 0.25 b
  mul(err, err, err);  // squared error
  const float sse = reduce_sum(err);

  const ProfileSnapshot prof = profile();
  std::printf("Richardson solve of 4I x = 8 over %zu unknowns\n", n);
  std::printf("x[0] = %.4f (expect 2.0), sum of squared errors = %.3e\n",
              x.get(0), sse);
  std::printf("%llu pattern kernels compiled, %llu launches, "
              "%.1f KB uploaded in total\n",
              static_cast<unsigned long long>(prof.kernels_built),
              static_cast<unsigned long long>(prof.kernel_launches),
              static_cast<double>(prof.bytes_to_device) / 1024.0);
  return sse < 1e-3f ? 0 : 1;
}
