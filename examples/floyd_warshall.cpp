// Floyd-Warshall all-pairs shortest paths.
//
// Demonstrates: a host-side loop launching the same kernel many times with
// a changing scalar argument. HPL's kernel cache compiles once and its
// coherence layer keeps the matrix resident on the device for all n
// launches — no transfer happens between iterations.

#include <cstdio>
#include <vector>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

void floyd_pass(Array<float, 2> dist, Uint k) {
  Float alternative;
  alternative = dist[idx][k] + dist[k][idy];
  if_(alternative < dist[idx][idy]) {
    dist[idx][idy] = alternative;
  } endif_
}

}  // namespace

int main() {
  constexpr std::size_t n = 64;

  // A ring graph: consecutive nodes at distance 1, everything else "far".
  Array<float, 2> dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dist(i, j) = i == j ? 0.0f : 1e9f;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    dist(i, (i + 1) % n) = 1.0f;
    dist((i + 1) % n, i) = 1.0f;
  }

  for (std::size_t k = 0; k < n; ++k) {
    eval(floyd_pass).global(n, n).local(16, 16)(
        dist, static_cast<std::uint32_t>(k));
  }

  // On a bidirectional ring the shortest path is the ring distance.
  int errors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t direct = i > j ? i - j : j - i;
      const float expected = static_cast<float>(std::min(direct, n - direct));
      if (dist(i, j) != expected) ++errors;
    }
  }

  const ProfileSnapshot prof = profile();
  std::printf("floyd-warshall on a %zu-node ring: %s\n", n,
              errors == 0 ? "PASSED" : "FAILED");
  std::printf("%llu launches, %llu kernel built, %llu bytes uploaded "
              "(matrix stays on the device between launches)\n",
              static_cast<unsigned long long>(prof.kernel_launches),
              static_cast<unsigned long long>(prof.kernels_built),
              static_cast<unsigned long long>(prof.bytes_to_device));
  return errors == 0 ? 0 : 1;
}
