// Sparse matrix-vector product on CSR storage — the paper's Figure 5.
//
// Demonstrates heterogeneous cooperation: the CPU builds the CSR format
// sequentially (it is better at irregular pointer chasing), then the
// naturally parallel multiply runs on the device, with a group of M
// threads cooperating on each row through local memory.

#include <cstdio>
#include <vector>

#include "hpl/HPL.h"

#define nRows 1024
#define M 8

using namespace HPL;

namespace {

void spmv(Array<float, 1> A, Array<float, 1> vec, Array<int, 1> cols,
          Array<int, 1> rowptr, Array<float, 1> out) {
  Int j;
  Float mySum = 0;

  // Lane `lidx` of the group handling row `gidx` strides over the row.
  for_(j = rowptr[gidx] + lidx, j < rowptr[gidx + 1], j += M) {
    mySum += A[j] * vec[cols[j]];
  } endfor_

  Array<float, 1, Local> sdata(M);
  sdata[lidx] = mySum;
  barrier(LOCAL);

  // Reduce sdata (binary tree, unrolled for M = 8 as in the paper).
  if_(lidx < 4) {
    sdata[lidx] += sdata[lidx + 4];
  } endif_
  barrier(LOCAL);
  if_(lidx < 2) {
    sdata[lidx] += sdata[lidx + 2];
  } endif_
  barrier(LOCAL);
  if_(lidx == 0) {
    out[gidx] = sdata[0] + sdata[1];
  } endif_
}

}  // namespace

int main() {
  // The CPU works sequentially to make the CSR format (paper §IV-C): a
  // banded matrix with 4 nonzeroes per row.
  const int per_row = 4;
  const int nz = nRows * per_row;

  Array<float, 1> A(nz), vec(nRows), out(nRows);
  Array<int, 1> cols(nz), rowptr(nRows + 1);

  for (int r = 0; r <= nRows; ++r) rowptr(r) = r * per_row;
  for (int r = 0; r < nRows; ++r) {
    for (int k = 0; k < per_row; ++k) {
      cols(r * per_row + k) = (r + k) % nRows;
      A(r * per_row + k) = 1.0f + static_cast<float>(k);
    }
  }
  for (int r = 0; r < nRows; ++r) vec(r) = static_cast<float>(r % 3);

  eval(spmv).global(nRows * M).local(M)(A, vec, cols, rowptr, out);

  // Verify against a serial computation.
  int errors = 0;
  for (int r = 0; r < nRows; ++r) {
    float expected = 0.0f;
    for (int k = 0; k < per_row; ++k) {
      expected += (1.0f + static_cast<float>(k)) *
                  static_cast<float>(((r + k) % nRows) % 3);
    }
    if (out(r) != expected) ++errors;
  }
  std::printf("spmv on %d rows: %s\n", nRows,
              errors == 0 ? "PASSED" : "FAILED");
  return errors == 0 ? 0 : 1;
}
