// Matrix transpose, naive and tiled — the paper's Figure 10(b) plus the
// optimised variant used in its evaluation.
//
// Demonstrates: 2-D arrays with natural multi-dimensional indexing (no
// manual linearisation, unlike EPGPU in Fig. 10(a)), 2-D local arrays, and
// how the same data moves between two kernels without extra transfers.

#include <cstdio>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

constexpr std::size_t kTile = 16;

// Naive version: one global read + one (uncoalesced) global write each.
// (The paper's Fig. 10(b) writes dest[idy][idx] = src[idx][idy], which
// assumes a square matrix; this is the rectangular-safe equivalent.)
void naive_transpose(Array<float, 2> dest, Array<float, 2> src) {
  dest[idx][idy] = src[idy][idx];
}

// Tiled version: stage a kTile x kTile tile in local memory (padded by one
// column to avoid bank conflicts) so reads and writes stay contiguous.
void tiled_transpose(Array<float, 2> dest, Array<float, 2> src) {
  Array<float, 2, Local> tile(kTile, kTile + 1);

  tile[lidy][lidx] = src[idy][idx];
  barrier(LOCAL);
  dest[gidx * kTile + lidy][gidy * kTile + lidx] = tile[lidx][lidy];
}

}  // namespace

int main() {
  constexpr std::size_t h = 256, w = 128;

  Array<float, 2> src(h, w), dst_naive(w, h), dst_tiled(w, h);
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      src(r, c) = static_cast<float>(r * 1000 + c);
    }
  }

  eval(naive_transpose).global(w, h)(dst_naive, src);
  eval(tiled_transpose).global(w, h).local(kTile, kTile)(dst_tiled, src);

  int errors = 0;
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      if (dst_naive(c, r) != src(r, c)) ++errors;
      if (dst_tiled(c, r) != src(r, c)) ++errors;
    }
  }
  std::printf("transpose %zux%zu: %s\n", h, w,
              errors == 0 ? "PASSED" : "FAILED");

  const ProfileSnapshot prof = profile();
  std::printf("2 kernels built, %llu launches, %.1f KB moved to device\n",
              static_cast<unsigned long long>(prof.kernel_launches),
              static_cast<double>(prof.bytes_to_device) / 1024.0);
  return errors == 0 ? 0 : 1;
}
