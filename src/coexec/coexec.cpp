#include "coexec/coexec.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <optional>

#include "support/error.hpp"
#include "support/metrics.hpp"

namespace hplrepro::coexec {

namespace {

std::mutex g_last_mu;
DispatchResult g_last;

void record_metrics(const DispatchResult& result) {
  if (!metrics::enabled()) return;
  static auto& evals = metrics::counter("coexec.evals");
  static auto& chunks = metrics::counter("coexec.chunks");
  static auto& chunks_static = metrics::counter("coexec.chunks.static");
  static auto& chunks_dynamic = metrics::counter("coexec.chunks.dynamic");
  static auto& chunks_guided = metrics::counter("coexec.chunks.guided");
  evals.add_always(1);
  chunks.add_always(result.chunks.size());
  switch (result.policy) {
    case Policy::Static:
      chunks_static.add_always(result.chunks.size());
      break;
    case Policy::Dynamic:
      chunks_dynamic.add_always(result.chunks.size());
      break;
    case Policy::Guided:
      chunks_guided.add_always(result.chunks.size());
      break;
  }
}

}  // namespace

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::Static:
      return "static";
    case Policy::Dynamic:
      return "dynamic";
    case Policy::Guided:
      return "guided";
  }
  return "?";
}

double DispatchResult::makespan() const {
  double best = 0;
  for (const double s : slot_seconds) best = std::max(best, s);
  return best;
}

DispatchResult dispatch(Policy policy, std::size_t total, int n_slots,
                        const LaunchFn& launch,
                        const std::vector<double>& weights) {
  if (total == 0) {
    throw InvalidArgument("coexec: nothing to distribute (total == 0)");
  }
  if (n_slots < 1) {
    throw InvalidArgument("coexec: need at least one slot");
  }
  const auto n = static_cast<std::size_t>(n_slots);
  if (!weights.empty() && weights.size() != n) {
    throw InvalidArgument("coexec: weight vector size != slot count");
  }
  std::vector<double> w(n, 1.0);
  if (!weights.empty()) {
    for (const double v : weights) {
      if (!(v > 0)) {
        throw InvalidArgument("coexec: slot weights must be positive");
      }
    }
    w = weights;
  }
  double w_sum = 0;
  for (const double v : w) w_sum += v;

  DispatchResult result;
  result.policy = policy;
  result.total = total;
  result.slot_seconds.assign(n, 0.0);

  if (policy == Policy::Static || n == 1) {
    // One contiguous chunk per slot; launch all, then resolve all (the
    // queues run concurrently either way).
    std::vector<std::function<double()>> resolvers;
    std::vector<int> slots;
    const std::size_t base = total / n;
    const std::size_t rem = total % n;
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t count = base + (s < rem ? 1 : 0);
      if (count == 0) continue;
      Chunk chunk{static_cast<int>(s), cursor, count};
      cursor += count;
      result.chunks.push_back(chunk);
      resolvers.push_back(launch(chunk));
      slots.push_back(chunk.slot);
    }
    for (std::size_t i = 0; i < resolvers.size(); ++i) {
      result.slot_seconds[static_cast<std::size_t>(slots[i])] +=
          resolvers[i]();
    }
  } else {
    // Dynamic / Guided: keep one chunk in flight per slot; each next
    // chunk goes to the slot whose simulated clock frees up first.
    const std::size_t dyn_chunk =
        std::max<std::size_t>(1, total / (16 * n));
    std::vector<std::function<double()>> pending(n);
    std::vector<std::optional<double>> pending_dur(n);
    std::vector<char> in_flight(n, 0);
    std::size_t next = 0;

    auto issue = [&](std::size_t s) {
      const std::size_t remaining = total - next;
      std::size_t count;
      if (policy == Policy::Dynamic) {
        count = dyn_chunk;
      } else {
        // HGuided: a slot's chunk is proportional to its share of the
        // device set's computing power, halved to leave a tail. The
        // weighted floor (an eighth of the slot's proportional share of
        // the whole range) stops the tail from degenerating into
        // one-group chunks whose per-launch overhead swamps the compute.
        const double share_w = w[s] / w_sum;
        const auto floor_s = std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<double>(total) *
                                        share_w / 8.0));
        const double share = static_cast<double>(remaining) * share_w / 2.0;
        count = std::max(
            floor_s, static_cast<std::size_t>(std::ceil(share)));
      }
      count = std::min(count, remaining);
      Chunk chunk{static_cast<int>(s), next, count};
      next += count;
      result.chunks.push_back(chunk);
      pending[s] = launch(chunk);
      pending_dur[s].reset();
      in_flight[s] = 1;
    };

    for (std::size_t s = 0; s < n && next < total; ++s) issue(s);

    while (next < total) {
      // Finish-first slot on the SIMULATED timeline. Resolving a pending
      // duration blocks the host until that chunk completes, but the
      // simulated clocks — and therefore the chunk plan — are unaffected
      // by how long that takes in wall time.
      std::size_t best = 0;
      double best_t = 0;
      bool found = false;
      for (std::size_t s = 0; s < n; ++s) {
        if (!in_flight[s]) continue;
        if (!pending_dur[s].has_value()) pending_dur[s] = pending[s]();
        const double t = result.slot_seconds[s] + *pending_dur[s];
        if (!found || t < best_t) {  // strict <: lower slot wins ties
          best = s;
          best_t = t;
          found = true;
        }
      }
      result.slot_seconds[best] += *pending_dur[best];
      in_flight[best] = 0;
      issue(best);
    }

    for (std::size_t s = 0; s < n; ++s) {
      if (!in_flight[s]) continue;
      if (!pending_dur[s].has_value()) pending_dur[s] = pending[s]();
      result.slot_seconds[s] += *pending_dur[s];
    }
  }

  record_metrics(result);
  {
    std::lock_guard<std::mutex> lock(g_last_mu);
    g_last = result;
  }
  return result;
}

DispatchResult last_dispatch() {
  std::lock_guard<std::mutex> lock(g_last_mu);
  return g_last;
}

}  // namespace hplrepro::coexec
