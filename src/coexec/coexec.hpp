#ifndef HPLREPRO_COEXEC_COEXEC_HPP
#define HPLREPRO_COEXEC_COEXEC_HPP

/// \file coexec.hpp
/// Co-execution chunk scheduler: partitions a 1-D range of work-groups
/// (the outermost NDRange dimension of an eval) across N "slots" — one
/// per selected device — under a static, dynamic-chunk or guided policy,
/// EngineCL-style.
///
/// The scheduler is deliberately decoupled from HPL: a slot is just an
/// integer, and launching a chunk is a callback that returns a *resolver*
/// — a closure that blocks until the chunk completes and returns its
/// SIMULATED duration in seconds. All load-balancing decisions are made
/// on per-slot simulated clocks built from those durations, never on
/// host wall time, so a given (policy, total, slot-speeds) input always
/// produces the same chunk plan regardless of host scheduling — which is
/// what lets the differential tests demand bit-identical results and
/// exact launch counts.

#include <cstddef>
#include <functional>
#include <vector>

namespace hplrepro::coexec {

enum class Policy {
  /// One contiguous chunk per slot, equal group counts (the naive split;
  /// a slow device straggles and bounds the makespan).
  Static,
  /// Fixed-size chunks (total / (16 * slots), at least 1) handed to
  /// whichever slot's simulated clock finishes first. Fine chunks keep a
  /// slow slot from ever holding more than one small piece of the tail.
  Dynamic,
  /// Decaying chunks sized by slot computing power (EngineCL's HGuided):
  /// slot s gets remaining * w_s / (2 * sum(w)), at least 1, where w is
  /// the caller-provided weight vector (uniform when omitted). Large
  /// early chunks amortize per-launch overhead, small late ones
  /// re-balance the tail, and weighting keeps a 40x-slower device from
  /// being primed with a 40x-too-big chunk.
  Guided,
};

const char* policy_name(Policy policy);

/// A contiguous run of `count` work-groups starting at `begin`, assigned
/// to `slot`.
struct Chunk {
  int slot = 0;
  std::size_t begin = 0;
  std::size_t count = 0;
};

/// Launches one chunk asynchronously and returns its resolver: a closure
/// that blocks until the chunk completes and returns its simulated
/// duration in seconds.
using LaunchFn = std::function<std::function<double()>(const Chunk&)>;

/// The chunk plan a dispatch produced, for profile reconciliation.
struct DispatchResult {
  Policy policy = Policy::Static;
  std::size_t total = 0;                // groups distributed
  std::vector<Chunk> chunks;            // in issue order
  std::vector<double> slot_seconds;     // simulated busy seconds per slot
  /// Simulated makespan: the busiest slot's clock. With every chunk
  /// launched through an otherwise-idle queue this is the modeled
  /// completion time of the co-executed eval.
  double makespan() const;
};

/// Distributes `total` groups over `n_slots` slots under `policy`,
/// launching every chunk through `launch`. Blocks until all chunks have
/// completed. `weights` (optional) gives each slot's relative computing
/// power; only the guided policy consults it. Throws InvalidArgument for
/// total == 0, n_slots < 1, or a weight vector whose size is not n_slots
/// or that contains a non-positive entry.
DispatchResult dispatch(Policy policy, std::size_t total, int n_slots,
                        const LaunchFn& launch,
                        const std::vector<double>& weights = {});

/// Copy of the most recent dispatch's plan (any thread). The differential
/// tests and the scenario grader reconcile profile counters against it.
DispatchResult last_dispatch();

}  // namespace hplrepro::coexec

#endif  // HPLREPRO_COEXEC_COEXEC_HPP
