#include "hpl/codegen.hpp"

#include "support/strings.hpp"

namespace HPL {
namespace detail {

std::string generate_kernel_source(const std::string& name,
                                   const std::vector<ParamSig>& params,
                                   const std::string& body) {
  return generate_kernel_source(name, params, body, {});
}

std::string generate_kernel_source(
    const std::string& name, const std::vector<ParamSig>& params,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& predefined) {
  std::vector<std::string> decls;
  for (const auto& p : params) {
    if (p.ndim == 0) {
      decls.push_back(p.type_name + " " + p.name);
      continue;
    }
    std::string decl = space_qualifier(p.flag);
    decl += " ";
    if (!p.access.written && p.flag != Constant) decl += "const ";
    decl += p.type_name + "* " + p.name;
    decls.push_back(std::move(decl));
  }
  // Hidden dimension-size arguments, in parameter order.
  for (const auto& p : params) {
    for (int d = 1; d < p.ndim; ++d) {
      decls.push_back("uint " + p.name + "_d" + std::to_string(d));
    }
  }

  std::string source = "__kernel void " + name + "(";
  source += hplrepro::join(decls, ",\n    ");
  source += ")\n{\n";
  for (const auto& [var, init] : predefined) {
    source += "  const size_t " + var + " = " + init + ";\n";
  }
  source += body;
  source += "}\n";
  return source;
}

}  // namespace detail
}  // namespace HPL
