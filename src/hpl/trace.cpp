#include "hpl/trace.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

#include "hpl/runtime.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace HPL {

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::pair<std::string, std::string>, KernelProfile> kernels;
  std::map<std::string, TransferProfile> transfers;
};

Registry& registry() {
  // Intentionally leaked: queue workers record launches until the Runtime
  // singleton (and its queues) is torn down at exit, which may happen
  // after any function-local static here would have been destroyed.
  static Registry* instance = new Registry();
  return *instance;
}

std::string fmt_ms(double seconds) {
  return hplrepro::format_double(seconds * 1e3, 4);
}

std::string fmt_pct(double fraction) {
  return hplrepro::format_double(fraction * 100.0, 3) + "%";
}

std::string fmt_bytes(std::uint64_t bytes) {
  if (bytes >= 10ull * 1024 * 1024) {
    return hplrepro::format_double(
               static_cast<double>(bytes) / (1024.0 * 1024.0), 3) +
           " MiB";
  }
  if (bytes >= 10ull * 1024) {
    return hplrepro::format_double(static_cast<double>(bytes) / 1024.0, 3) +
           " KiB";
  }
  return std::to_string(bytes) + " B";
}

}  // namespace

std::vector<KernelProfile> kernel_profiles() {
  // Quiesce the queues: launch records land from on_complete callbacks on
  // the queue workers, so a snapshot is only consistent once they drain.
  detail::Runtime::get().finish_all();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<KernelProfile> out;
  out.reserve(reg.kernels.size());
  for (const auto& [key, profile] : reg.kernels) out.push_back(profile);
  return out;  // map order == sorted by (kernel, device)
}

std::vector<TransferProfile> transfer_profiles() {
  detail::Runtime::get().finish_all();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<TransferProfile> out;
  out.reserve(reg.transfers.size());
  for (const auto& [key, profile] : reg.transfers) out.push_back(profile);
  return out;
}

std::string profiler_report() {
  const ProfileSnapshot snap = profile();
  const std::vector<KernelProfile> kernels = kernel_profiles();
  const std::vector<TransferProfile> transfers = transfer_profiles();

  std::ostringstream os;
  os << "=== HPL profiler report ===\n\n";

  // Fig. 7-style decomposition: where did the modeled time go?
  {
    const double total = snap.total_seconds();
    auto share = [&](double part) {
      return total > 0 ? fmt_pct(part / total) : "-";
    };
    hplrepro::Table table({"phase", "time (ms)", "share"});
    table.add_row({"host (capture+codegen+build+marshal)",
                   fmt_ms(snap.host_seconds), share(snap.host_seconds)});
    table.add_row({"device kernels (simulated)",
                   fmt_ms(snap.kernel_sim_seconds),
                   share(snap.kernel_sim_seconds)});
    table.add_row({"transfers (simulated)",
                   fmt_ms(snap.transfer_sim_seconds),
                   share(snap.transfer_sim_seconds)});
    table.add_row({"total", fmt_ms(total), total > 0 ? "100%" : "-"});
    table.print(os);
  }

  os << "\nLaunches: " << snap.kernel_launches
     << "  cache hits: " << snap.kernel_cache_hits
     << "  misses: " << snap.kernel_cache_misses
     << "  builds: " << snap.kernels_built << "\n";

  if (!kernels.empty()) {
    os << "\nPer kernel, per device (simulated ms by timing component):\n";
    hplrepro::Table table({"kernel", "device", "launches", "hits", "builds",
                           "compute", "gmem", "lmem", "barrier", "launch",
                           "total", "traffic", "fused"});
    for (const auto& k : kernels) {
      table.add_row({k.kernel, k.device, std::to_string(k.launches),
                     std::to_string(k.cache_hits), std::to_string(k.builds),
                     fmt_ms(k.sim.compute_s), fmt_ms(k.sim.global_mem_s),
                     fmt_ms(k.sim.local_mem_s), fmt_ms(k.sim.barrier_s),
                     fmt_ms(k.sim.launch_s), fmt_ms(k.sim.total_s),
                     fmt_bytes(k.global_bytes), fmt_pct(k.fused_ratio())});
    }
    table.print(os);
  }

  if (!transfers.empty()) {
    os << "\nCoherence transfers per device:\n";
    hplrepro::Table table({"device", "h->d", "h->d bytes", "d->h",
                           "d->h bytes", "sim (ms)"});
    for (const auto& t : transfers) {
      table.add_row({t.device, std::to_string(t.to_device_count),
                     fmt_bytes(t.to_device_bytes),
                     std::to_string(t.to_host_count),
                     fmt_bytes(t.to_host_bytes), fmt_ms(t.sim_seconds)});
    }
    table.print(os);
  }

  return os.str();
}

void trace_to(const std::string& path) { hplrepro::trace::trace_to(path); }

void metrics_to(const std::string& path) {
  hplrepro::metrics::metrics_to(path);
}

std::string metrics_report() {
  // Quiesce so in-flight completion callbacks (latency, critical path)
  // have landed before the shards are merged.
  detail::Runtime::get().finish_all();
  return hplrepro::metrics::report(hplrepro::metrics::snapshot());
}

bool metrics_write(const std::string& path) {
  detail::Runtime::get().finish_all();
  return hplrepro::metrics::write_json(path);
}

namespace detail {

void profiler_record_launch(const std::string& kernel,
                            const std::string& device, bool cache_hit,
                            const hplrepro::clsim::Event& event) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  KernelProfile& p = reg.kernels[{kernel, device}];
  if (p.launches == 0) {
    p.kernel = kernel;
    p.device = device;
  }
  p.launches += 1;
  if (cache_hit) p.cache_hits += 1;
  p.sim += event.timing();
  p.ops += event.stats().total_ops();
  p.fused_ops += event.stats().fused_ops;
  p.global_bytes +=
      event.stats().global_load_bytes + event.stats().global_store_bytes;
}

void profiler_record_failed_launch(const std::string& kernel,
                                   const std::string& device,
                                   bool cache_hit) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  KernelProfile& p = reg.kernels[{kernel, device}];
  if (p.launches == 0) {
    p.kernel = kernel;
    p.device = device;
  }
  p.launches += 1;
  if (cache_hit) p.cache_hits += 1;
}

void profiler_record_build(const std::string& kernel,
                           const std::string& device) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  KernelProfile& p = reg.kernels[{kernel, device}];
  if (p.builds == 0 && p.launches == 0) {
    p.kernel = kernel;
    p.device = device;
  }
  p.builds += 1;
}

void profiler_record_transfer(const std::string& device, bool to_device,
                              std::uint64_t bytes, double sim_seconds) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  TransferProfile& t = reg.transfers[device];
  if (t.to_device_count == 0 && t.to_host_count == 0) t.device = device;
  if (to_device) {
    t.to_device_count += 1;
    t.to_device_bytes += bytes;
  } else {
    t.to_host_count += 1;
    t.to_host_bytes += bytes;
  }
  t.sim_seconds += sim_seconds;
}

void profiler_record_copy(const std::string& dst_device,
                          std::uint64_t bytes, double sim_seconds) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  TransferProfile& t = reg.transfers[dst_device];
  t.device = dst_device;
  t.d2d_count += 1;
  t.d2d_bytes += bytes;
  t.sim_seconds += sim_seconds;
}

void profiler_reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.kernels.clear();
  reg.transfers.clear();
}

}  // namespace detail
}  // namespace HPL
