#ifndef HPLREPRO_HPL_EVAL_HPP
#define HPLREPRO_HPL_EVAL_HPP

/// \file eval.hpp
/// Kernel invocation (paper §III-C):
///
///   eval(kernel).global(...).local(...).device(...)(arg1, arg2, ...)
///
/// The first invocation of a kernel function captures it (runs it under a
/// KernelBuilder with formal-parameter arrays), generates OpenCL C,
/// and builds it with the device compiler; the binary is cached so later
/// invocations only marshal arguments and launch (paper §V-B).
///
/// Defaults: the device is the first non-CPU device; the global domain is
/// the dimensions of the first array argument; the local domain is chosen
/// by the library.

#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "clsim/executor.hpp"
#include "hpl/array.hpp"
#include "hpl/codegen.hpp"
#include "hpl/runtime.hpp"
#include "hpl/trace.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace HPL {
namespace detail {

template <typename P>
struct IsHplArray : std::false_type {};
template <typename T, int N, MemFlag F>
struct IsHplArray<Array<T, N, F>> : std::true_type {};

template <typename P>
struct HplArrayTraits;
template <typename T, int N, MemFlag F>
struct HplArrayTraits<Array<T, N, F>> {
  using elem = T;
  static constexpr int ndim = N;
  static constexpr MemFlag flag = F;
};

/// Typed scalar argument setter; widens narrow integers for the clsim API
/// (the runtime re-normalises to the kernel parameter's declared type).
template <typename T>
void set_scalar_arg(hplrepro::clsim::Kernel& kernel, unsigned index, T value) {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    kernel.set_arg(index, value);
  } else if constexpr (std::is_signed_v<T>) {
    kernel.set_arg(index, static_cast<std::int64_t>(value));
  } else {
    kernel.set_arg(index, static_cast<std::uint64_t>(value));
  }
}

struct BoundArray {
  ArrayImplPtr impl;
  bool written = false;
  int ndim = 0;
};

}  // namespace detail

template <typename... Params>
class Evaluator {
  static constexpr std::size_t kNumParams = sizeof...(Params);

public:
  explicit Evaluator(void (*fn)(Params...)) : fn_(fn) {}

  Evaluator& global(std::size_t x) {
    global_ = hplrepro::clsim::NDRange(x);
    return *this;
  }
  Evaluator& global(std::size_t x, std::size_t y) {
    global_ = hplrepro::clsim::NDRange(x, y);
    return *this;
  }
  Evaluator& global(std::size_t x, std::size_t y, std::size_t z) {
    global_ = hplrepro::clsim::NDRange(x, y, z);
    return *this;
  }

  Evaluator& local(std::size_t x) {
    local_ = hplrepro::clsim::NDRange(x);
    return *this;
  }
  Evaluator& local(std::size_t x, std::size_t y) {
    local_ = hplrepro::clsim::NDRange(x, y);
    return *this;
  }
  Evaluator& local(std::size_t x, std::size_t y, std::size_t z) {
    local_ = hplrepro::clsim::NDRange(x, y, z);
    return *this;
  }

  Evaluator& device(Device d) {
    device_ = d;
    return *this;
  }

  template <typename... Actuals>
  void operator()(Actuals&&... actuals) {
    static_assert(sizeof...(Actuals) == kNumParams,
                  "eval: wrong number of kernel arguments");
    run(std::index_sequence_for<Params...>{},
        std::forward<Actuals>(actuals)...);
  }

private:
  template <std::size_t... Is, typename... Actuals>
  void run(std::index_sequence<Is...>, Actuals&&... actuals) {
    namespace clsim = hplrepro::clsim;
    using detail::CachedKernel;
    using detail::Runtime;

    if (detail::KernelBuilder::current() != nullptr) {
      throw hplrepro::Error(
          "HPL: eval can only be used in host code (paper §III-C)");
    }

    Runtime& rt = Runtime::get();
    hplrepro::Stopwatch host_watch;
    // Sampled once: decides every metrics-only clock read below, so a
    // metrics-off eval pays nothing beyond this relaxed load.
    const bool metrics_on = hplrepro::metrics::enabled();
    // Host trace-clock instant eval() entered: the start of the latency
    // window the critical-path analyzer partitions.
    const double eval_start_us = metrics_on ? hplrepro::trace::now_us() : 0.0;
    double capture_us = 0, codegen_us = 0;

    // --- Capture + code generation (first invocation only) ---
    const void* key = reinterpret_cast<const void*>(fn_);
    CachedKernel* cached = rt.find_kernel(key);
    if (cached == nullptr) {
      detail::KernelBuilder builder;
      {
        hplrepro::trace::Span span("capture", "hpl");
        hplrepro::Stopwatch watch;
        detail::CaptureScope scope(builder);
        // Braced initialisation evaluates left to right, so parameter
        // indices are assigned positionally.
        std::tuple<Params...> formals{
            Params(detail::FormalTag{}, static_cast<int>(Is))...};
        std::apply(fn_, formals);
        builder.check_balanced();
        capture_us = watch.seconds() * 1e6;
      }
      CachedKernel fresh;
      fresh.name = rt.next_kernel_name();
      fresh.params = builder.params();
      {
        hplrepro::trace::Span span("codegen", "hpl");
        hplrepro::Stopwatch watch;
        fresh.source = detail::generate_kernel_source(
            fresh.name, fresh.params, builder.body(), builder.predefined());
        span.arg("kernel", fresh.name)
            .arg("source_bytes",
                 static_cast<std::uint64_t>(fresh.source.size()));
        codegen_us = watch.seconds() * 1e6;
      }
      cached = &rt.insert_kernel(key, std::move(fresh));
    }

    // --- Build for the target device (cached per device) ---
    detail::DeviceEntry& dev = rt.entry(device_);
    bool cache_hit = false;
    double build_us = 0;
    detail::BuiltKernel* built_slot;
    if (metrics_on) {
      hplrepro::Stopwatch build_watch;
      built_slot = &rt.build_for(*cached, dev, &cache_hit);
      if (!cache_hit) build_us = build_watch.seconds() * 1e6;
    } else {
      built_slot = &rt.build_for(*cached, dev, &cache_hit);
    }
    detail::BuiltKernel& built = *built_slot;

    // --- Bind arguments; minimal transfers ---
    std::vector<detail::BoundArray> arrays;
    std::optional<clsim::NDRange> default_global;
    // Collects the coherence transfers this eval enqueues, so completion
    // can attribute their execution windows to this launch.
    detail::TransferCapture transfer_capture;
    double marshal_us = 0;
    {
      hplrepro::trace::Span span("marshal", "hpl");
      std::optional<hplrepro::Stopwatch> watch;
      if (metrics_on) watch.emplace();
      span.arg("kernel", cached->name);
      (bind_arg<Params>(static_cast<unsigned>(Is), actuals, *cached, dev,
                        *built.kernel, arrays, default_global),
       ...);
      if (watch.has_value()) marshal_us = watch->seconds() * 1e6;
    }

    // Hidden dimension-size arguments (rank >= 2), in parameter order.
    unsigned hidden = static_cast<unsigned>(kNumParams);
    for (const auto& bound : arrays) {
      for (int d = 1; d < bound.ndim; ++d) {
        built.kernel->set_arg(
            hidden++,
            static_cast<std::uint32_t>(
                bound.impl->dims[static_cast<std::size_t>(d)]));
      }
    }

    // --- Domains ---
    clsim::NDRange global_range;
    if (global_.has_value()) {
      global_range = *global_;
    } else if (default_global.has_value()) {
      global_range = *default_global;  // dims of the first array argument
    } else {
      throw hplrepro::InvalidArgument(
          "HPL: no global domain: specify .global(...) or pass an array "
          "first argument");
    }

    // --- Launch (non-blocking: the queue worker runs the kernel) ---
    clsim::Event event;
    {
      hplrepro::trace::Span span("launch", "hpl");
      try {
        event = dev.queue->enqueue_ndrange_kernel(*built.kernel, global_range,
                                                  local_);
      } catch (const hplrepro::clc::TrapError&) {
        // Synchronous mode (HPL_SYNC=1) surfaces the deferred execution
        // error at the enqueue; async mode stores it on the event. The
        // launch still happened, so account it exactly like an async
        // failed launch — keeping hits + misses == kernel_launches and
        // profiler_report reconciled with profile() — then rethrow.
        rt.with_prof([&](ProfileSnapshot& p) { p.kernel_launches += 1; });
        detail::profiler_record_failed_launch(cached->name,
                                              dev.device.name(), cache_hit);
        throw;
      }
      if (span.active()) {
        // Only enqueue-time facts here: reading ExecStats/TimingBreakdown
        // would block on the launch. The clsim device track carries the
        // full per-launch picture (with queued/submitted/started/ended).
        span.arg("kernel", cached->name)
            .arg("device", dev.device.name())
            .arg("cache_hit", static_cast<std::uint64_t>(cache_hit))
            .arg("opt_report", built.program->opt_report().summary());
      }
    }

    for (const auto& bound : arrays) {
      if (bound.written) rt.mark_device_written(*bound.impl, dev);
    }

    // Enqueue done: the host-prep segment of the critical path ends here.
    // (In sync mode the kernel already ran inside the enqueue; attribution
    // clips the host window to the completion instant.)
    const double enqueue_us = metrics_on ? hplrepro::trace::now_us() : 0.0;

    // Completion-side accounting, run on the queue worker (or inline in
    // sync mode): simulated seconds and the per-kernel profiler registry.
    // Registered via on_settled so a launch that traps still lands in the
    // registry — keeping profiler_report reconciled with profile() — even
    // though it has no profiling data to contribute.
    event.on_settled([&rt, name = cached->name,
                      dev_name = dev.device.name(), cache_hit, metrics_on,
                      transfers = transfer_capture.take(), eval_start_us,
                      enqueue_us, capture_us, codegen_us, build_us,
                      marshal_us](const clsim::Event& e, bool failed) {
      if (failed) {
        detail::profiler_record_failed_launch(name, dev_name, cache_hit);
        return;
      }
      rt.with_prof([&](ProfileSnapshot& p) {
        p.kernel_sim_seconds += e.sim_seconds();
        p.sim_wall_seconds += e.wall_seconds();
      });
      detail::profiler_record_launch(name, dev_name, cache_hit, e);
      // Gated on the *enqueue-time* decision so the launch counter, the
      // latency histogram and the critical-path log always agree even if
      // metrics are toggled while commands are in flight.
      if (metrics_on) {
        namespace metrics = hplrepro::metrics;
        // All of this eval's commands completed at or before the kernel
        // (transfers are ordered ahead of it), so the profiling accessors
        // below never block.
        const double done_us = e.host_ended_us();
        static auto& latency = metrics::histogram("hpl.eval.latency_ns");
        const double latency_us = done_us - eval_start_us;
        latency.record_always(
            latency_us > 0 ? static_cast<std::uint64_t>(latency_us * 1e3)
                           : 0);
        metrics::CriticalPathInput input;
        input.kernel = name;
        input.device = dev_name;
        input.start_us = eval_start_us;
        input.enqueue_us = enqueue_us;
        input.done_us = done_us;
        input.kernel_start_us = e.host_started_us();
        input.kernel_end_us = done_us;
        for (const auto& t : transfers) {
          input.transfer_windows.emplace_back(t.host_started_us(),
                                              t.host_ended_us());
        }
        input.capture_us = capture_us;
        input.codegen_us = codegen_us;
        input.build_us = build_us;
        input.marshal_us = marshal_us;
        metrics::record_critical_path(input);
      }
    });

    // In sync mode the simulator consumed host wall-clock inside this call;
    // subtract it so host_seconds keeps meaning "eval overhead". In async
    // mode the simulation runs on the worker and costs this thread nothing.
    const double sim_wall =
        clsim::async_enabled() ? 0.0 : event.wall_seconds();
    rt.with_prof([&](ProfileSnapshot& p) {
      p.kernel_launches += 1;
      p.host_seconds += host_watch.seconds() - sim_wall;
    });
    if (metrics_on) {
      static auto& launches = hplrepro::metrics::counter("hpl.eval.launches");
      static auto& host_ns = hplrepro::metrics::histogram("hpl.eval.host_ns");
      launches.add_always(1);
      const double host_s = host_watch.seconds() - sim_wall;
      host_ns.record_always(
          host_s > 0 ? static_cast<std::uint64_t>(host_s * 1e9) : 0);
    }
  }

  /// Binds actual argument `actual` to parameter `i`.
  template <typename Param, typename Actual>
  void bind_arg(unsigned i, Actual& actual, detail::CachedKernel& cached,
                detail::DeviceEntry& dev, hplrepro::clsim::Kernel& kernel,
                std::vector<detail::BoundArray>& arrays,
                std::optional<hplrepro::clsim::NDRange>& default_global) {
    namespace clsim = hplrepro::clsim;
    using detail::Runtime;
    using ActualD = std::decay_t<Actual>;

    if constexpr (detail::IsHplArray<Param>::value &&
                  detail::HplArrayTraits<Param>::ndim >= 1) {
      static_assert(detail::IsHplArray<ActualD>::value,
                    "eval: array parameter requires an HPL Array argument");
      using PT = detail::HplArrayTraits<Param>;
      using AT = detail::HplArrayTraits<ActualD>;
      static_assert(std::is_same_v<typename PT::elem, typename AT::elem>,
                    "eval: array element type mismatch");
      static_assert(PT::ndim == AT::ndim, "eval: array rank mismatch");

      Runtime& rt = Runtime::get();
      detail::ArrayImplPtr impl = actual.impl();
      const detail::ParamAccess access = cached.params[i].access;
      if (access.read) {
        rt.ensure_on_device(*impl, dev);
      }
      auto& copy = rt.device_copy(*impl, dev);
      kernel.set_arg(i, *copy.buffer);

      arrays.push_back({impl, access.written, PT::ndim});
      if (!default_global.has_value()) {
        clsim::NDRange range;
        range.dims = static_cast<int>(impl->dims.size());
        for (std::size_t d = 0; d < impl->dims.size(); ++d) {
          range.sizes[d] = impl->dims[d];
        }
        default_global = range;
      }
    } else {
      // Scalar parameter: accept an HPL scalar or a plain arithmetic value.
      using T = typename detail::HplArrayTraits<Param>::elem;
      if constexpr (detail::IsHplArray<ActualD>::value) {
        static_assert(detail::HplArrayTraits<ActualD>::ndim == 0,
                      "eval: scalar parameter requires a scalar argument");
        detail::set_scalar_arg<T>(kernel, i,
                                  static_cast<T>(actual.value()));
      } else {
        static_assert(std::is_arithmetic_v<ActualD>,
                      "eval: scalar parameter requires an arithmetic value");
        detail::set_scalar_arg<T>(kernel, i, static_cast<T>(actual));
      }
    }
  }

  void (*fn_)(Params...);
  std::optional<hplrepro::clsim::NDRange> global_;
  std::optional<hplrepro::clsim::NDRange> local_;
  Device device_{};
};

/// Requests the parallel evaluation of `kernel` (paper §III-C):
/// `eval(kernelfunction)(arg1, arg2, ...)`.
template <typename... Params>
Evaluator<Params...> eval(void (*kernel)(Params...)) {
  return Evaluator<Params...>(kernel);
}

}  // namespace HPL

#endif  // HPLREPRO_HPL_EVAL_HPP
