#ifndef HPLREPRO_HPL_EVAL_HPP
#define HPLREPRO_HPL_EVAL_HPP

/// \file eval.hpp
/// Kernel invocation (paper §III-C):
///
///   eval(kernel).global(...).local(...).device(...)(arg1, arg2, ...)
///
/// The first invocation of a kernel function captures it (runs it under a
/// KernelBuilder with formal-parameter arrays), generates OpenCL C,
/// and builds it with the device compiler; the binary is cached so later
/// invocations only marshal arguments and launch (paper §V-B).
///
/// Defaults: the device is the first non-CPU device; the global domain is
/// the dimensions of the first array argument; the local domain is chosen
/// by the library.

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "clsim/executor.hpp"
#include "coexec/coexec.hpp"
#include "hpl/array.hpp"
#include "hpl/codegen.hpp"
#include "hpl/fusion.hpp"
#include "hpl/runtime.hpp"
#include "hpl/trace.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace HPL {

/// Chunk-distribution policy for co-executed evals
/// (eval(...).devices({...}).policy(...)).
using CoexecPolicy = hplrepro::coexec::Policy;

namespace detail {

template <typename P>
struct IsHplArray : std::false_type {};
template <typename T, int N, MemFlag F>
struct IsHplArray<Array<T, N, F>> : std::true_type {};

template <typename P>
struct HplArrayTraits;
template <typename T, int N, MemFlag F>
struct HplArrayTraits<Array<T, N, F>> {
  using elem = T;
  static constexpr int ndim = N;
  static constexpr MemFlag flag = F;
};

/// Typed scalar argument setter; widens narrow integers for the clsim API
/// (the runtime re-normalises to the kernel parameter's declared type).
template <typename T>
void set_scalar_arg(hplrepro::clsim::Kernel& kernel, unsigned index, T value) {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    kernel.set_arg(index, value);
  } else if constexpr (std::is_signed_v<T>) {
    kernel.set_arg(index, static_cast<std::int64_t>(value));
  } else {
    kernel.set_arg(index, static_cast<std::uint64_t>(value));
  }
}

struct BoundArray {
  ArrayImplPtr impl;
  bool written = false;
  int ndim = 0;
  /// The device copy the argument was bound to (stable address: the
  /// copies map never invalidates references). Used to thread event
  /// dependencies between the launch and cross-queue copies.
  ArrayImpl::DeviceCopy* copy = nullptr;
};

/// How an array's outermost dimension maps onto the split NDRange
/// dimension of a co-executed launch.
enum class SplitMap {
  None,      // does not map; reads stay whole-array, writes forbid a split
  PerGroup,  // dims[0] == num_groups[split]: one row per work-group
  PerItem,   // dims[0] in (sizes[split]-local[split], sizes[split]]:
             // one row per work-item, guard-clamped at the tail
};

/// Byte range of the outermost-dimension rows a chunk of `group_count`
/// work-groups starting at `group_begin` touches, under `map`.
/// `local_split` is the local size along the split dimension; `halo`
/// widens the range by that many rows on each side (reads of stencil
/// neighbourhoods), clamped to the array.
inline ByteRange chunk_row_range(const ArrayImpl& impl, SplitMap map,
                                 std::size_t group_begin,
                                 std::size_t group_count,
                                 std::size_t local_split, std::size_t halo) {
  const std::size_t d0 = impl.dims[0];
  const std::size_t row_bytes = impl.bytes() / d0;
  std::size_t row_begin, row_end;
  if (map == SplitMap::PerGroup) {
    row_begin = group_begin;
    row_end = group_begin + group_count;
  } else {
    row_begin = group_begin * local_split;
    row_end = std::min((group_begin + group_count) * local_split, d0);
  }
  if (halo != 0) {
    row_begin = row_begin > halo ? row_begin - halo : 0;
    row_end = std::min(row_end + halo, d0);
  }
  return ByteRange{row_begin * row_bytes, row_end * row_bytes};
}

/// One array argument of a co-executed eval: its access pattern and how
/// its outermost dimension maps onto the split NDRange dimension.
struct CoexecArray {
  ArrayImplPtr impl;
  bool read = false;
  bool written = false;
  int ndim = 0;
  SplitMap map = SplitMap::None;
};

/// Per-chunk binding context threaded through the pre-built parameter
/// binder closures (one per kernel parameter, in parameter order).
struct CoexecBindCtx {
  DeviceEntry* dev = nullptr;
  hplrepro::clsim::Kernel* kernel = nullptr;
  const hplrepro::coexec::Chunk* chunk = nullptr;
  std::vector<BoundArray>* bound = nullptr;
  std::vector<hplrepro::clsim::Event>* deps = nullptr;
  const std::vector<CoexecArray>* plan = nullptr;
  std::size_t local_split = 1;
  /// Narrow mapped-array reads to the chunk's rows (.halo(n) was given)?
  /// Without it reads stay whole-array: mapping only says which rows a
  /// chunk WRITES — a transposed or strided read of the same array can
  /// touch rows far outside them.
  bool narrow_reads = false;
  std::size_t halo = 0;
};

using CoexecBinder = std::function<void(CoexecBindCtx&)>;

/// Completion-side accounting for one launch (or one co-execution chunk):
/// simulated seconds, the per-kernel profiler registry, and — when metrics
/// were on at enqueue — the latency histogram and critical-path record.
/// Shared by the single-device eval path and every coexec chunk so the
/// metrics invariants (launches == latency count == critical-path evals)
/// hold chunk-for-chunk.
inline void account_launch_settled(
    Runtime& rt, hplrepro::clsim::Event& event, const std::string& name,
    const std::string& dev_name, bool cache_hit, bool metrics_on,
    std::vector<hplrepro::clsim::Event> transfers, double eval_start_us,
    double enqueue_us, double capture_us, double codegen_us,
    double build_us, double marshal_us) {
  namespace clsim = hplrepro::clsim;
  event.on_settled([&rt, name, dev_name, cache_hit, metrics_on,
                    transfers = std::move(transfers), eval_start_us,
                    enqueue_us, capture_us, codegen_us, build_us,
                    marshal_us](const clsim::Event& e, bool failed) {
    if (failed) {
      profiler_record_failed_launch(name, dev_name, cache_hit);
      return;
    }
    rt.with_prof([&](ProfileSnapshot& p) {
      p.kernel_sim_seconds += e.sim_seconds();
      p.sim_wall_seconds += e.wall_seconds();
    });
    profiler_record_launch(name, dev_name, cache_hit, e);
    // Gated on the *enqueue-time* decision so the launch counter, the
    // latency histogram and the critical-path log always agree even if
    // metrics are toggled while commands are in flight.
    if (metrics_on) {
      namespace metrics = hplrepro::metrics;
      // All of this eval's commands completed at or before the kernel
      // (transfers are ordered ahead of it), so the profiling accessors
      // below never block.
      const double done_us = e.host_ended_us();
      static auto& latency = metrics::histogram("hpl.eval.latency_ns");
      const double latency_us = done_us - eval_start_us;
      latency.record_always(
          latency_us > 0 ? static_cast<std::uint64_t>(latency_us * 1e3)
                         : 0);
      metrics::CriticalPathInput input;
      input.kernel = name;
      input.device = dev_name;
      input.start_us = eval_start_us;
      input.enqueue_us = enqueue_us;
      input.done_us = done_us;
      input.kernel_start_us = e.host_started_us();
      input.kernel_end_us = done_us;
      for (const auto& t : transfers) {
        input.transfer_windows.emplace_back(t.host_started_us(),
                                            t.host_ended_us());
      }
      input.capture_us = capture_us;
      input.codegen_us = codegen_us;
      input.build_us = build_us;
      input.marshal_us = marshal_us;
      metrics::record_critical_path(input);
    }
  });
}

}  // namespace detail

template <typename... Params>
class Evaluator {
  static constexpr std::size_t kNumParams = sizeof...(Params);

public:
  explicit Evaluator(void (*fn)(Params...)) : fn_(fn) {}

  Evaluator& global(std::size_t x) {
    global_ = hplrepro::clsim::NDRange(x);
    return *this;
  }
  Evaluator& global(std::size_t x, std::size_t y) {
    global_ = hplrepro::clsim::NDRange(x, y);
    return *this;
  }
  Evaluator& global(std::size_t x, std::size_t y, std::size_t z) {
    global_ = hplrepro::clsim::NDRange(x, y, z);
    return *this;
  }

  Evaluator& local(std::size_t x) {
    local_ = hplrepro::clsim::NDRange(x);
    return *this;
  }
  Evaluator& local(std::size_t x, std::size_t y) {
    local_ = hplrepro::clsim::NDRange(x, y);
    return *this;
  }
  Evaluator& local(std::size_t x, std::size_t y, std::size_t z) {
    local_ = hplrepro::clsim::NDRange(x, y, z);
    return *this;
  }

  Evaluator& device(Device d) {
    device_ = d;
    return *this;
  }

  /// Co-executes the kernel across `ds`, partitioning the NDRange along
  /// one dimension (inferred, or forced with split_dim). A single-entry
  /// list degenerates to .device(ds[0]).
  Evaluator& devices(std::vector<Device> ds) {
    devices_ = std::move(ds);
    return *this;
  }
  Evaluator& devices(std::initializer_list<Device> ds) {
    devices_.assign(ds.begin(), ds.end());
    return *this;
  }

  /// Chunk-distribution policy for a co-executed eval (default Static).
  Evaluator& policy(CoexecPolicy p) {
    policy_ = p;
    return *this;
  }

  /// Forces the NDRange dimension a co-executed eval is split along
  /// (default: the first dimension every written array maps onto).
  Evaluator& split_dim(int d) {
    split_dim_ = d;
    return *this;
  }

  /// Narrows per-chunk reads of arrays that map onto the split dimension
  /// to the chunk's own rows plus `rows` halo rows on each side (stencil
  /// neighbourhoods). Arrays that do not map keep whole-array reads.
  Evaluator& halo(std::size_t rows) {
    halo_rows_ = rows;
    return *this;
  }

  template <typename... Actuals>
  void operator()(Actuals&&... actuals) {
    static_assert(sizeof...(Actuals) == kNumParams,
                  "eval: wrong number of kernel arguments");
    if (devices_.size() == 1) device_ = devices_[0];
    if (devices_.size() >= 2) {
      run_coexec(std::index_sequence_for<Params...>{},
                 std::forward<Actuals>(actuals)...);
    } else {
      run(std::index_sequence_for<Params...>{},
          std::forward<Actuals>(actuals)...);
    }
  }

private:
  template <std::size_t... Is, typename... Actuals>
  void run(std::index_sequence<Is...>, Actuals&&... actuals) {
    namespace clsim = hplrepro::clsim;
    using detail::CachedKernel;
    using detail::Runtime;

    if (detail::KernelBuilder::current() != nullptr) {
      throw hplrepro::Error(
          "HPL: eval can only be used in host code (paper §III-C)");
    }

    Runtime& rt = Runtime::get();
    hplrepro::Stopwatch host_watch;
    // Sampled once: decides every metrics-only clock read below, so a
    // metrics-off eval pays nothing beyond this relaxed load. Stored on
    // the node, so a deferred launch keeps the enqueue-time decision.
    const bool metrics_on = hplrepro::metrics::enabled();
    // Host trace-clock instant eval() entered: the start of the latency
    // window the critical-path analyzer partitions.
    const double eval_start_us = metrics_on ? hplrepro::trace::now_us() : 0.0;
    double capture_us = 0, codegen_us = 0;

    // --- Capture + code generation (first invocation only) ---
    CachedKernel* cached = capture_kernel(
        rt, std::index_sequence<Is...>{}, capture_us, codegen_us);

    // --- Record the invocation as a DAG node ---
    // Everything the launch needs is resolved here (device entry, global
    // range, snapshotted scalar values), so eval() keeps its error
    // contract and later host mutations cannot change what was asked.
    detail::DagNode node;
    node.cached = cached;
    node.dev = &rt.entry(device_);
    node.metrics_on = metrics_on;
    node.eval_start_us = eval_start_us;
    node.capture_us = capture_us;
    node.codegen_us = codegen_us;
    std::optional<clsim::NDRange> default_global;
    (record_arg<Params>(actuals, *cached, node, default_global), ...);

    if (global_.has_value()) {
      node.global = *global_;
    } else if (default_global.has_value()) {
      node.global = *default_global;  // dims of the first array argument
    } else {
      throw hplrepro::InvalidArgument(
          "HPL: no global domain: specify .global(...) or pass an array "
          "first argument");
    }
    node.local = local_;

    // Front-end overhead (capture/codegen/marshal of the record) counts
    // as eval host time in both modes; launch_node accounts its own
    // window, so the two sum to the full per-launch overhead.
    rt.with_prof([&](ProfileSnapshot& p) {
      p.host_seconds += host_watch.seconds();
    });

    if (detail::fusion_active()) {
      // Deferred: launches at the next forcing point, possibly fused.
      detail::record_node(std::move(node));
    } else {
      // Eager (HPL_NO_FUSION=1 / -cl-fusion=off): the exact pre-DAG
      // launch sequence, through the same launch path a flush uses.
      detail::launch_node(rt, node);
    }
  }

  /// Capture + code generation (first invocation only); returns the cache
  /// entry. Concurrent first invocations may both capture; insert_kernel
  /// keeps the winner and the loser's work is discarded.
  template <std::size_t... Is>
  detail::CachedKernel* capture_kernel(detail::Runtime& rt,
                                       std::index_sequence<Is...>,
                                       double& capture_us,
                                       double& codegen_us) {
    using detail::CachedKernel;
    const void* key = reinterpret_cast<const void*>(fn_);
    CachedKernel* cached = rt.find_kernel(key);
    if (cached == nullptr) {
      detail::KernelBuilder builder;
      {
        hplrepro::trace::Span span("capture", "hpl");
        hplrepro::Stopwatch watch;
        detail::CaptureScope scope(builder);
        // Braced initialisation evaluates left to right, so parameter
        // indices are assigned positionally.
        std::tuple<Params...> formals{
            Params(detail::FormalTag{}, static_cast<int>(Is))...};
        std::apply(fn_, formals);
        builder.check_balanced();
        capture_us = watch.seconds() * 1e6;
      }
      CachedKernel fresh;
      fresh.name = rt.next_kernel_name();
      fresh.params = builder.params();
      // Kept for the fusion rewriter (fusion.cpp), which splices captured
      // bodies into synthesized kernels.
      fresh.body = builder.body();
      fresh.predefined = builder.predefined();
      {
        hplrepro::trace::Span span("codegen", "hpl");
        hplrepro::Stopwatch watch;
        fresh.source = detail::generate_kernel_source(
            fresh.name, fresh.params, builder.body(), builder.predefined());
        span.arg("kernel", fresh.name)
            .arg("source_bytes",
                 static_cast<std::uint64_t>(fresh.source.size()));
        codegen_us = watch.seconds() * 1e6;
      }
      cached = &rt.insert_kernel(key, std::move(fresh));
    }
    return cached;
  }

  /// Co-executed eval (two or more devices): the NDRange is partitioned
  /// into runs of work-groups along one dimension, each run launched as a
  /// LaunchSlice on one device, with chunk distribution driven by the
  /// coexec dispatcher under `policy_`. Per-chunk transfers and write
  /// marks are region-granular, so the devices end the eval holding
  /// disjoint valid ranges; the next consumer merges them lazily (d2d)
  /// through ensure_on_device / make_host_current_async.
  ///
  /// Every chunk is a full mini-eval for accounting purposes — its own
  /// launch counter tick, cache hit/miss, latency-histogram sample and
  /// critical-path record — so the metrics invariants hold chunk-for-chunk.
  template <std::size_t... Is, typename... Actuals>
  void run_coexec(std::index_sequence<Is...>, Actuals&&... actuals) {
    namespace clsim = hplrepro::clsim;
    namespace coexec = hplrepro::coexec;
    using detail::CachedKernel;
    using detail::Runtime;
    using detail::SplitMap;

    if (detail::KernelBuilder::current() != nullptr) {
      throw hplrepro::Error(
          "HPL: eval can only be used in host code (paper §III-C)");
    }

    // A co-executed eval is a forcing point: deferred producers must land
    // before the NDRange is split across devices (the per-chunk coherence
    // logic reasons about materialised arrays, not pending rewrites).
    detail::flush_dag();

    Runtime& rt = Runtime::get();
    const bool metrics_on = hplrepro::metrics::enabled();
    const double eval_start_us = metrics_on ? hplrepro::trace::now_us() : 0.0;
    double capture_us = 0, codegen_us = 0;

    CachedKernel* cached = capture_kernel(
        rt, std::index_sequence<Is...>{}, capture_us, codegen_us);

    // Device entries, in dispatcher-slot order.
    std::vector<detail::DeviceEntry*> entries;
    entries.reserve(devices_.size());
    for (const Device& d : devices_) entries.push_back(&rt.entry(d));

    // Collect array roles and pre-build one binder closure per parameter.
    std::vector<detail::CoexecArray> infos;
    std::vector<detail::CoexecBinder> binders;
    std::optional<clsim::NDRange> default_global;
    (make_coexec_binder<Params>(static_cast<unsigned>(Is), actuals, *cached,
                                infos, binders, default_global),
     ...);

    // --- Domains ---
    clsim::NDRange global_range;
    if (global_.has_value()) {
      global_range = *global_;
    } else if (default_global.has_value()) {
      global_range = *default_global;
    } else {
      throw hplrepro::InvalidArgument(
          "HPL: no global domain: specify .global(...) or pass an array "
          "first argument");
    }
    // The split plan needs the concrete work-group geometry, so resolve
    // the local range now (identically for every device) instead of
    // letting each enqueue pick one.
    const clsim::NDRange local_used =
        local_.has_value() ? *local_ : clsim::choose_local_range(global_range);
    for (int d = 0; d < global_range.dims; ++d) {
      if (local_used.sizes[d] == 0 ||
          global_range.sizes[d] % local_used.sizes[d] != 0) {
        throw hplrepro::InvalidArgument(
            "HPL coexec: global size must be a multiple of the local size "
            "in every dimension");
      }
    }

    // --- Split dimension and per-array row mapping ---
    auto map_at = [&](const detail::ArrayImpl& impl, int d) {
      const std::size_t g = global_range.sizes[d];
      const std::size_t l = local_used.sizes[d];
      const std::size_t groups = g / l;
      const std::size_t d0 = impl.dims[0];
      if (d0 == groups) return SplitMap::PerGroup;
      if (d0 <= g && d0 + l > g) return SplitMap::PerItem;
      return SplitMap::None;
    };

    int split_d = -1;
    if (split_dim_.has_value()) {
      split_d = *split_dim_;
      if (split_d < 0 || split_d >= global_range.dims) {
        throw hplrepro::InvalidArgument(
            "HPL coexec: split_dim is not a dimension of the global range");
      }
    } else {
      bool any_written = false;
      for (const auto& a : infos) any_written = any_written || a.written;
      if (!any_written) {
        split_d = 0;
      } else {
        for (int d = 0; d < global_range.dims && split_d < 0; ++d) {
          bool ok = true;
          for (const auto& a : infos) {
            if (a.written && map_at(*a.impl, d) == SplitMap::None) ok = false;
          }
          if (ok) split_d = d;
        }
        if (split_d < 0) {
          throw hplrepro::InvalidArgument(
              "HPL coexec: cannot infer a split dimension (no NDRange "
              "dimension maps onto the outermost dimension of every written "
              "array); force one with .split_dim(d)");
        }
      }
    }

    for (auto& a : infos) {
      a.map = map_at(*a.impl, split_d);
      if (a.written && a.map == SplitMap::None) {
        throw hplrepro::InvalidArgument(
            "HPL coexec: a written array does not map onto the split "
            "dimension; its writes cannot be partitioned across devices");
      }
    }

    const std::size_t local_split = local_used.sizes[split_d];
    const std::size_t total_groups =
        global_range.sizes[split_d] / local_split;
    const std::size_t halo = halo_rows_.value_or(0);

    // --- Per-chunk launch: a full mini-eval on the chunk's device ---
    bool first_chunk = true;
    coexec::LaunchFn launch_fn =
        [&](const coexec::Chunk& chunk) -> std::function<double()> {
      hplrepro::Stopwatch host_watch;
      // The one-time capture/codegen belongs to the first chunk's latency
      // window, exactly like a cold single-device eval. The dispatcher
      // calls us from one thread, so no synchronisation is needed here.
      double chunk_capture_us = 0, chunk_codegen_us = 0, chunk_start_us;
      if (first_chunk) {
        chunk_capture_us = capture_us;
        chunk_codegen_us = codegen_us;
        chunk_start_us = eval_start_us;
        first_chunk = false;
      } else {
        chunk_start_us = metrics_on ? hplrepro::trace::now_us() : 0.0;
      }

      detail::DeviceEntry& dev =
          *entries[static_cast<std::size_t>(chunk.slot)];
      bool cache_hit = false;
      double build_us = 0;
      detail::BuiltKernel* built_slot;
      if (metrics_on) {
        hplrepro::Stopwatch build_watch;
        built_slot = &rt.build_for(*cached, dev, &cache_hit);
        if (!cache_hit) build_us = build_watch.seconds() * 1e6;
      } else {
        built_slot = &rt.build_for(*cached, dev, &cache_hit);
      }
      detail::BuiltKernel& built = *built_slot;

      detail::TransferCapture transfer_capture;
      std::vector<detail::BoundArray> bound;
      std::vector<clsim::Event> deps;
      double marshal_us = 0;
      clsim::Event event;
      {
        std::lock_guard<std::mutex> launch_lock(*built.launch_mutex);
        {
          hplrepro::trace::Span span("marshal", "hpl");
          std::optional<hplrepro::Stopwatch> watch;
          if (metrics_on) watch.emplace();
          span.arg("kernel", cached->name);
          detail::CoexecBindCtx ctx;
          ctx.dev = &dev;
          ctx.kernel = built.kernel.get();
          ctx.chunk = &chunk;
          ctx.bound = &bound;
          ctx.deps = &deps;
          ctx.plan = &infos;
          ctx.local_split = local_split;
          ctx.narrow_reads = halo_rows_.has_value();
          ctx.halo = halo;
          for (auto& binder : binders) binder(ctx);
          if (watch.has_value()) marshal_us = watch->seconds() * 1e6;
        }

        unsigned hidden = static_cast<unsigned>(kNumParams);
        for (const auto& b : bound) {
          for (int d = 1; d < b.ndim; ++d) {
            built.kernel->set_arg(
                hidden++,
                static_cast<std::uint32_t>(
                    b.impl->dims[static_cast<std::size_t>(d)]));
          }
        }

        clsim::LaunchSlice slice;
        slice.dim = split_d;
        slice.group_begin = chunk.begin;
        slice.group_count = chunk.count;
        hplrepro::trace::Span span("launch", "hpl");
        try {
          event = dev.queue->enqueue_ndrange_kernel(
              *built.kernel, global_range, local_used, std::move(deps),
              slice);
        } catch (const hplrepro::clc::TrapError&) {
          rt.with_prof([&](ProfileSnapshot& p) { p.kernel_launches += 1; });
          detail::profiler_record_failed_launch(cached->name,
                                                dev.device.name(), cache_hit);
          throw;
        }
        if (span.active()) {
          span.arg("kernel", cached->name)
              .arg("device", dev.device.name())
              .arg("cache_hit", static_cast<std::uint64_t>(cache_hit))
              .arg("slice_begin", static_cast<std::uint64_t>(chunk.begin))
              .arg("slice_count", static_cast<std::uint64_t>(chunk.count));
        }
      }

      // bound[k] corresponds to infos[k]: binders push arrays in
      // parameter order, the same order infos was collected in.
      for (std::size_t k = 0; k < bound.size(); ++k) {
        if (infos[k].written) {
          rt.mark_device_written(
              *bound[k].impl, dev,
              detail::chunk_row_range(*bound[k].impl, infos[k].map,
                                      chunk.begin, chunk.count, local_split,
                                      0));
        }
        bound[k].copy->last_event = event;
      }

      const double enqueue_us =
          metrics_on ? hplrepro::trace::now_us() : 0.0;
      detail::account_launch_settled(
          rt, event, cached->name, dev.device.name(), cache_hit, metrics_on,
          transfer_capture.take(), chunk_start_us, enqueue_us,
          chunk_capture_us, chunk_codegen_us, build_us, marshal_us);

      const double sim_wall =
          clsim::async_enabled() ? 0.0 : event.wall_seconds();
      rt.with_prof([&](ProfileSnapshot& p) {
        p.kernel_launches += 1;
        p.host_seconds += host_watch.seconds() - sim_wall;
      });
      if (metrics_on) {
        static auto& launches =
            hplrepro::metrics::counter("hpl.eval.launches");
        static auto& host_ns =
            hplrepro::metrics::histogram("hpl.eval.host_ns");
        launches.add_always(1);
        const double host_s = host_watch.seconds() - sim_wall;
        host_ns.record_always(
            host_s > 0 ? static_cast<std::uint64_t>(host_s * 1e9) : 0);
      }
      return [event]() mutable { return event.sim_seconds(); };
    };

    // Guided chunks are sized by relative computing power (compute units
    // x clock): the Quadro must not be primed with a Tesla-sized chunk.
    std::vector<double> weights;
    weights.reserve(entries.size());
    for (const detail::DeviceEntry* e : entries) {
      const auto& spec = e->device.spec();
      weights.push_back(static_cast<double>(spec.compute_units) *
                        spec.clock_ghz);
    }
    coexec::dispatch(policy_, total_groups,
                     static_cast<int>(entries.size()), launch_fn, weights);
  }

  /// Collects the array role and builds the per-chunk binder closure for
  /// parameter `i` of a co-executed eval. Scalar actuals are snapshotted
  /// here, once, so every chunk binds the same value.
  template <typename Param, typename Actual>
  void make_coexec_binder(
      unsigned i, Actual& actual, detail::CachedKernel& cached,
      std::vector<detail::CoexecArray>& infos,
      std::vector<detail::CoexecBinder>& binders,
      std::optional<hplrepro::clsim::NDRange>& default_global) {
    namespace clsim = hplrepro::clsim;
    using ActualD = std::decay_t<Actual>;

    if constexpr (detail::IsHplArray<Param>::value &&
                  detail::HplArrayTraits<Param>::ndim >= 1) {
      static_assert(detail::IsHplArray<ActualD>::value,
                    "eval: array parameter requires an HPL Array argument");
      using PT = detail::HplArrayTraits<Param>;
      using AT = detail::HplArrayTraits<ActualD>;
      static_assert(std::is_same_v<typename PT::elem, typename AT::elem>,
                    "eval: array element type mismatch");
      static_assert(PT::ndim == AT::ndim, "eval: array rank mismatch");

      detail::ArrayImplPtr impl = actual.impl();
      const detail::ParamAccess access = cached.params[i].access;
      const std::size_t arr_idx = infos.size();
      infos.push_back(
          {impl, access.read, access.written, PT::ndim,
           detail::SplitMap::None});
      if (!default_global.has_value()) {
        clsim::NDRange range;
        range.dims = static_cast<int>(impl->dims.size());
        for (std::size_t d = 0; d < impl->dims.size(); ++d) {
          range.sizes[d] = impl->dims[d];
        }
        default_global = range;
      }
      binders.push_back([i, arr_idx](detail::CoexecBindCtx& ctx) {
        detail::Runtime& rt = detail::Runtime::get();
        const detail::CoexecArray& info = (*ctx.plan)[arr_idx];
        detail::ArrayImpl& impl_ref = *info.impl;
        if (info.read) {
          if (info.map == detail::SplitMap::None || !ctx.narrow_reads) {
            rt.ensure_on_device(impl_ref, *ctx.dev);
          } else {
            rt.ensure_on_device(
                impl_ref, *ctx.dev,
                detail::chunk_row_range(impl_ref, info.map,
                                        ctx.chunk->begin, ctx.chunk->count,
                                        ctx.local_split, ctx.halo));
          }
        }
        auto& copy = rt.device_copy(impl_ref, *ctx.dev);
        ctx.kernel->set_arg(i, *copy.buffer);
        // Cross-queue writes into this buffer (pending d2d merges) are
        // not serialized by this queue; carry them in the wait-list.
        for (const auto& e : copy.pending_d2d) {
          if (!e.complete()) ctx.deps->push_back(e);
        }
        copy.pending_d2d.clear();
        ctx.bound->push_back({info.impl, info.written, info.ndim, &copy});
      });
    } else {
      using T = typename detail::HplArrayTraits<Param>::elem;
      T value;
      if constexpr (detail::IsHplArray<ActualD>::value) {
        static_assert(detail::HplArrayTraits<ActualD>::ndim == 0,
                      "eval: scalar parameter requires a scalar argument");
        value = static_cast<T>(actual.value());
      } else {
        static_assert(std::is_arithmetic_v<ActualD>,
                      "eval: scalar parameter requires an arithmetic value");
        value = static_cast<T>(actual);
      }
      binders.push_back([i, value](detail::CoexecBindCtx& ctx) {
        detail::set_scalar_arg<T>(*ctx.kernel, i, value);
      });
    }
  }

  /// Collects actual argument `actual` into the DAG node (array impls are
  /// retained; scalar values snapshotted). Transfers and kernel-argument
  /// binding happen later, in launch_node.
  template <typename Param, typename Actual>
  void record_arg(Actual& actual, detail::CachedKernel& cached,
                  detail::DagNode& node,
                  std::optional<hplrepro::clsim::NDRange>& default_global) {
    namespace clsim = hplrepro::clsim;
    using ActualD = std::decay_t<Actual>;
    (void)cached;

    if constexpr (detail::IsHplArray<Param>::value &&
                  detail::HplArrayTraits<Param>::ndim >= 1) {
      static_assert(detail::IsHplArray<ActualD>::value,
                    "eval: array parameter requires an HPL Array argument");
      using PT = detail::HplArrayTraits<Param>;
      using AT = detail::HplArrayTraits<ActualD>;
      static_assert(std::is_same_v<typename PT::elem, typename AT::elem>,
                    "eval: array element type mismatch");
      static_assert(PT::ndim == AT::ndim, "eval: array rank mismatch");

      detail::ArrayImplPtr impl = actual.impl();
      if (!default_global.has_value()) {
        clsim::NDRange range;
        range.dims = static_cast<int>(impl->dims.size());
        for (std::size_t d = 0; d < impl->dims.size(); ++d) {
          range.sizes[d] = impl->dims[d];
        }
        default_global = range;
      }
      detail::NodeArg arg;
      arg.impl = std::move(impl);
      arg.ndim = PT::ndim;
      node.args.push_back(std::move(arg));
    } else {
      // Scalar parameter: accept an HPL scalar or a plain arithmetic value.
      using T = typename detail::HplArrayTraits<Param>::elem;
      T value;
      if constexpr (detail::IsHplArray<ActualD>::value) {
        static_assert(detail::HplArrayTraits<ActualD>::ndim == 0,
                      "eval: scalar parameter requires a scalar argument");
        value = static_cast<T>(actual.value());
      } else {
        static_assert(std::is_arithmetic_v<ActualD>,
                      "eval: scalar parameter requires an arithmetic value");
        value = static_cast<T>(actual);
      }
      detail::NodeArg arg;
      arg.ndim = 0;
      arg.scalar = detail::make_scalar_value<T>(value);
      node.args.push_back(std::move(arg));
    }
  }

  void (*fn_)(Params...);
  std::optional<hplrepro::clsim::NDRange> global_;
  std::optional<hplrepro::clsim::NDRange> local_;
  Device device_{};
  std::vector<Device> devices_;
  CoexecPolicy policy_ = CoexecPolicy::Static;
  std::optional<int> split_dim_;
  std::optional<std::size_t> halo_rows_;
};

/// Requests the parallel evaluation of `kernel` (paper §III-C):
/// `eval(kernelfunction)(arg1, arg2, ...)`.
template <typename... Params>
Evaluator<Params...> eval(void (*kernel)(Params...)) {
  return Evaluator<Params...>(kernel);
}

}  // namespace HPL

#endif  // HPLREPRO_HPL_EVAL_HPP
