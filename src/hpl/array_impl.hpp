#ifndef HPLREPRO_HPL_ARRAY_IMPL_HPP
#define HPLREPRO_HPL_ARRAY_IMPL_HPP

/// \file array_impl.hpp
/// Type-erased backing object shared by all Array<T,N,Flag> handles.
///
/// An ArrayImpl owns (or wraps, when the user supplied a host pointer) the
/// host copy of the data and tracks which copies — host and per-device
/// buffers — are currently valid. The HPL runtime consults this state to
/// transfer only what a kernel execution actually needs (paper §V-B:
/// "analyze them to decide which data transfers ... will be needed").

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "clsim/runtime.hpp"
#include "hpl/ranges.hpp"
#include "hpl/types.hpp"

namespace HPL {
namespace detail {

struct ArrayImpl {
  // --- Static description ---
  std::string type_name;       // OpenCL C element type spelling
  std::size_t elem_size = 0;
  std::vector<std::size_t> dims;  // empty for scalars
  MemFlag flag = Global;

  // --- Host copy ---
  std::vector<std::byte> owned_storage;  // used when the user gave no pointer
  void* host_ptr = nullptr;
  /// Byte ranges of the host copy that are current. Region-granular so a
  /// co-executed kernel can leave disjoint written ranges on different
  /// devices without any copy being wholly valid or wholly stale.
  RangeSet host_valid;

  // --- Lazy synchronization (async command pipeline) ---
  // Commands that touch `host_ptr` run on queue worker threads, so host
  // access must be ordered against them:
  //  * `host_pending` are in-flight d2h reads filling (sub-ranges of) the
  //    host copy; host reads wait them all out. Possibly on several
  //    queues at once when a gather pulls disjoint regions from
  //    different devices.
  //  * `host_readers` are in-flight h2d uploads still reading `host_ptr`;
  //    host writes — and any later d2h — must wait them out.
  std::vector<hplrepro::clsim::Event> host_pending;
  std::vector<hplrepro::clsim::Event> host_readers;

  // --- Device copies (key: identity of the clsim device spec) ---
  struct DeviceCopy {
    std::shared_ptr<hplrepro::clsim::Buffer> buffer;
    /// Byte ranges of the buffer that are current.
    RangeSet valid;
    /// In-flight device-to-device copies writing this buffer. They run on
    /// the SOURCE device's queue, so this buffer's own in-order queue does
    /// not serialize them; the next command touching the buffer (on any
    /// queue) must carry them in its wait-list.
    std::vector<hplrepro::clsim::Event> pending_d2d;
    /// Most recent command enqueued on the buffer's own queue that touches
    /// it (launch, h2d, d2h, outgoing d2d). That queue is in-order, so an
    /// incoming d2d from a peer queue only needs to wait this one event to
    /// be ordered after every prior access.
    hplrepro::clsim::Event last_event;
  };
  std::unordered_map<const hplrepro::clsim::DeviceSpec*, DeviceCopy> copies;

  ~ArrayImpl();  // waits out in-flight commands that touch host_ptr

  // --- Capture roles ---
  int param_index = -1;        // >=0 while acting as a formal parameter
  bool is_kernel_local = false;  // declared inside a kernel during capture
  std::string var_name;        // generated name (formals and kernel-locals)
  /// Per-dimension size spellings used to linearise multi-dim indexing:
  /// hidden argument names for formals, literals for kernel-local arrays.
  std::vector<std::string> dim_names;

  std::size_t total_elems() const {
    std::size_t n = 1;
    for (const std::size_t d : dims) n *= d;
    return n;
  }
  std::size_t bytes() const { return total_elems() * elem_size; }

  std::byte* host_bytes() { return static_cast<std::byte*>(host_ptr); }
  const std::byte* host_bytes() const {
    return static_cast<const std::byte*>(host_ptr);
  }
};

using ArrayImplPtr = std::shared_ptr<ArrayImpl>;

/// Creates an impl with library-owned storage.
ArrayImplPtr make_array_impl(const char* type_name, std::size_t elem_size,
                             std::vector<std::size_t> dims, MemFlag flag);

/// Creates an impl wrapping caller-owned storage (paper: `Array y(n, ptr)`;
/// the user remains responsible for deallocation).
ArrayImplPtr make_array_impl_wrapping(const char* type_name,
                                      std::size_t elem_size,
                                      std::vector<std::size_t> dims,
                                      MemFlag flag, void* host_ptr);

/// Makes the host copy current (reads back from a device if necessary).
void sync_to_host(ArrayImpl& impl);

/// sync_to_host + invalidates all device copies (host will be written).
void prepare_host_write(ArrayImpl& impl);

}  // namespace detail
}  // namespace HPL

#endif  // HPLREPRO_HPL_ARRAY_IMPL_HPP
