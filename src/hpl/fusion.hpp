#ifndef HPLREPRO_HPL_FUSION_HPP
#define HPLREPRO_HPL_FUSION_HPP

/// \file fusion.hpp
/// Lazy evaluation DAG + rewrite-rule kernel fusion (ROADMAP item 3,
/// following Steuwer et al., "Patterns and Rewrite Rules for Systematic
/// Code Generation").
///
/// With fusion enabled (the default), eval() no longer enqueues a kernel:
/// it records a DagNode (kernel, resolved NDRange, argument bindings) on a
/// process-wide deferred list. Nodes flush at any *forcing point* — a host
/// read or write of an array (the lazy-sync hooks in runtime.cpp),
/// profile()/reset_profile(), metrics/trace snapshots and every other
/// Runtime::finish_all() caller, a co-executed eval, runtime teardown, or
/// an explicit HPL::flush(). Before launching, a rewrite engine pattern-
/// matches producer->consumer chains over the recorded nodes and
/// synthesizes fused kernels through the regular clc codegen/build path:
///
///   - map-map fusion          adjacent single-statement maps over the same
///                             NDRange merge into one kernel; a consumer's
///                             load of a producer's store site is replaced
///                             by the producer's scalar temporary
///   - transpose sinking       a consumer reading a produced array at the
///                             idx/idy-swapped site recomputes the producer
///                             expression at the swapped coordinates
///                             instead of loading the intermediate
///   - map-reduce fusion       idx-pure maps feeding a grid-stride
///                             reduction are inlined into the reduction
///                             loop (one pass over the data)
///   - dead-temp elimination   a map whose output is fully overwritten by
///                             the next map without being read is dropped
///
/// Every rewrite keeps the producer's store, so fused and unfused runs are
/// bit-identical and RangeSet coherence marks are applied exactly as the
/// unfused sequence would. `HPL_NO_FUSION=1`, `-cl-fusion=off` (build
/// options) or set_fusion_enabled(false) restore the exact eager launch
/// sequence: the same launch_node() path runs either way, fusion merely
/// decides *when* and on *what* it runs.

#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "clsim/runtime.hpp"
#include "hpl/array_impl.hpp"
#include "hpl/runtime.hpp"

namespace HPL {

/// Launches every deferred eval recorded on the DAG (after rewriting).
/// Does not wait for the launched kernels; use profile()/array reads/
/// finish to quiesce. No-op when nothing is pending.
void flush();

/// Runtime fusion toggle (also settable via the "-cl-fusion=off" build
/// option). Turning fusion off flushes the DAG first, so the switch is a
/// clean seam: everything recorded before it may fuse, everything after
/// it launches eagerly. The HPL_NO_FUSION=1 environment variable wins
/// over this flag (it pins fusion off for the whole process).
void set_fusion_enabled(bool enabled);
bool fusion_enabled();

/// RAII fusion-off scope for code that asserts exact eager launch counts.
class ScopedFusionDisable {
 public:
  ScopedFusionDisable() : prev_(fusion_enabled()) { set_fusion_enabled(false); }
  ~ScopedFusionDisable() { set_fusion_enabled(prev_); }
  ScopedFusionDisable(const ScopedFusionDisable&) = delete;
  ScopedFusionDisable& operator=(const ScopedFusionDisable&) = delete;

 private:
  bool prev_;
};

namespace detail {

/// A scalar kernel argument captured at record time (eval's actuals may
/// die before the flush, so the value is snapshotted).
struct ScalarValue {
  enum class Kind : std::uint8_t { F32, F64, I64, U64 };
  Kind kind = Kind::F32;
  double f = 0;
  std::int64_t i = 0;
  std::uint64_t u = 0;
};

template <typename T>
ScalarValue make_scalar_value(T value) {
  ScalarValue s;
  if constexpr (std::is_same_v<T, float>) {
    s.kind = ScalarValue::Kind::F32;
    s.f = static_cast<double>(value);
  } else if constexpr (std::is_same_v<T, double>) {
    s.kind = ScalarValue::Kind::F64;
    s.f = static_cast<double>(value);
  } else if constexpr (std::is_signed_v<T>) {
    s.kind = ScalarValue::Kind::I64;
    s.i = static_cast<std::int64_t>(value);
  } else {
    s.kind = ScalarValue::Kind::U64;
    s.u = static_cast<std::uint64_t>(value);
  }
  return s;
}

/// One bound argument of a recorded eval, in parameter order. Array
/// arguments hold the impl (shared: the node keeps the array alive until
/// it launches); scalars hold the snapshotted value.
struct NodeArg {
  ArrayImplPtr impl;  // null => scalar
  int ndim = 0;
  ScalarValue scalar{};
};

/// A deferred eval: everything launch_node() needs to run it later,
/// resolved at record time (device, global range) so eval() keeps its
/// error contract for malformed invocations.
struct DagNode {
  CachedKernel* cached = nullptr;
  DeviceEntry* dev = nullptr;
  hplrepro::clsim::NDRange global;
  std::optional<hplrepro::clsim::NDRange> local;
  std::vector<NodeArg> args;
  // Metrics context captured at eval() entry, threaded through to the
  // launch so latency windows and critical-path records keep the
  // user-perceived start instant.
  bool metrics_on = false;
  double eval_start_us = 0;
  double capture_us = 0;
  double codegen_us = 0;
};

/// True when eval() should record instead of launching: the runtime flag
/// is on AND the process was not started with HPL_NO_FUSION=1.
bool fusion_active();

/// Records a deferred eval on the DAG.
void record_node(DagNode node);

/// Rewrites + launches all pending nodes. Safe to call from any thread;
/// whole flushes are serialized so the launch order of a batch is never
/// interleaved with another thread's batch. Rethrows the first launch
/// error after draining the batch (matching async error semantics, where
/// every eval enqueues and the first error surfaces at the quiesce).
void flush_dag();

/// Launches one node now: build (per-device cache), bind arguments with
/// coherence transfers, hidden dim args, enqueue, RangeSet write marks and
/// completion-side accounting. This is the single launch path — the eager
/// (fusion-off) eval and the flush both go through it, so profile() and
/// metrics invariants hold identically in both modes.
void launch_node(Runtime& rt, DagNode& node);

/// Applies the `-cl-fusion` build option (Runtime::set_build_options).
void apply_fusion_build_option(bool enabled);

/// Test hook: deliberately mis-synthesize map-map fusion (off-by-one on
/// the fused temporary) so the differential suite can prove it catches a
/// wrong rewrite. Never set outside tests.
void set_fusion_sabotage_for_test(bool on);

}  // namespace detail
}  // namespace HPL

#endif  // HPLREPRO_HPL_FUSION_HPP
