#ifndef HPLREPRO_HPL_ARRAY_HPP
#define HPLREPRO_HPL_ARRAY_HPP

/// \file array.hpp
/// The HPL datatypes (paper §III-A): Array<type, ndim [, memoryFlag]> and
/// the scalar convenience aliases (Int, Uint, Float, Double, ...).
///
/// The same object works in both worlds:
///  * in host code, `a(i, j)` accesses the host copy (with lazy read-back
///    from whichever device last wrote the array);
///  * inside kernels (i.e. while a KernelBuilder is capturing), `a[i][j]`
///    records an OpenCL C access — reads convert to Expr, assignments emit
///    statements and mark the parameter as written.
///
/// Coherence is tracked at whole-array granularity: an array a kernel
/// writes is treated as entirely overwritten on the device, so elements
/// the kernel did not actually store are undefined afterwards (the same
/// contract a write-only OpenCL buffer has).

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "hpl/array_impl.hpp"
#include "hpl/builder.hpp"
#include "hpl/expr.hpp"
#include "hpl/types.hpp"
#include "support/error.hpp"

namespace HPL {

namespace detail {

struct FormalTag {};

/// Registers a formal parameter with the active builder and returns the
/// prepared impl (var_name = pN, dim name table for hidden size args).
ArrayImplPtr make_formal_impl(const char* type_name, std::size_t elem_size,
                              int ndim, MemFlag flag);

/// Creates the impl for an array declared inside a kernel (paper: e.g.
/// `Array<float,1,Local> sharedM(M)` in the dot-product kernel).
ArrayImplPtr make_kernel_local_impl(const char* type_name,
                                    std::size_t elem_size,
                                    std::vector<std::size_t> dims,
                                    MemFlag flag);

/// Expression text for element access `name[linearised(indices)]`.
std::string element_code(const ArrayImpl& impl,
                         const std::vector<std::string>& indices);

/// Statement emission for proxy assignments; handles read/write notes.
void emit_element_assign(ArrayImpl& impl, const std::string& element,
                         const char* op, const Expr& rhs);

/// Expr for reading an element; notes the read.
Expr element_read(ArrayImpl& impl, const std::string& element);

[[noreturn]] void host_bracket_error();
[[noreturn]] void kernel_paren_error();

/// Accumulates `[i][j]...` applications during capture until the array's
/// rank is reached, at which point it is usable as a value (converts to
/// Expr) or as an assignment target.
class Indexer {
public:
  Indexer(ArrayImplPtr impl, int ndim) : impl_(std::move(impl)), ndim_(ndim) {}

  // Copying is used internally while accumulating indices; the assignment
  // operators below deliberately emit kernel statements instead of copying.
  Indexer(const Indexer&) = default;

  Indexer operator[](const Expr& index) const {
    if (static_cast<int>(indices_.size()) >= ndim_) {
      throw hplrepro::InvalidArgument(
          "HPL: too many [] applications for array rank");
    }
    Indexer next = *this;
    next.indices_.push_back(index.code());
    return next;
  }

  operator Expr() const {
    return element_read(*impl_, element());
  }

  // Assignment operators complete a statement. They are usable on
  // temporaries (`a[i] = x`), which is the normal pattern.
  const Indexer& operator=(const Expr& rhs) const {
    emit_element_assign(*impl_, element(), "=", rhs);
    return *this;
  }
  const Indexer& operator+=(const Expr& rhs) const {
    emit_element_assign(*impl_, element(), "+=", rhs);
    return *this;
  }
  const Indexer& operator-=(const Expr& rhs) const {
    emit_element_assign(*impl_, element(), "-=", rhs);
    return *this;
  }
  const Indexer& operator*=(const Expr& rhs) const {
    emit_element_assign(*impl_, element(), "*=", rhs);
    return *this;
  }
  const Indexer& operator/=(const Expr& rhs) const {
    emit_element_assign(*impl_, element(), "/=", rhs);
    return *this;
  }
  const Indexer& operator=(const Indexer& rhs) const {
    return *this = static_cast<Expr>(rhs);
  }

private:
  std::string element() const {
    if (static_cast<int>(indices_.size()) != ndim_) {
      throw hplrepro::InvalidArgument(
          "HPL: array indexed with fewer [] than its rank");
    }
    return element_code(*impl_, indices_);
  }

  ArrayImplPtr impl_;
  int ndim_;
  std::vector<std::string> indices_;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Array<T, NDIM, FLAG>  (NDIM >= 1)
// ---------------------------------------------------------------------------

template <typename T, int NDIM, MemFlag FLAG = Global>
class Array {
  static_assert(NDIM >= 1 && NDIM <= 3, "HPL arrays support 1 to 3 dims");
  using Traits = detail::TypeTraits<T>;

public:
  using value_type = T;
  static constexpr int ndim = NDIM;
  static constexpr MemFlag mem_flag = FLAG;

  /// 1-D constructor; optionally wraps caller-owned storage.
  explicit Array(std::size_t n, T* data = nullptr)
    requires(NDIM == 1)
      : impl_(make(std::vector<std::size_t>{n}, data)) {}

  Array(std::size_t d0, std::size_t d1, T* data = nullptr)
    requires(NDIM == 2)
      : impl_(make(std::vector<std::size_t>{d0, d1}, data)) {}

  Array(std::size_t d0, std::size_t d1, std::size_t d2, T* data = nullptr)
    requires(NDIM == 3)
      : impl_(make(std::vector<std::size_t>{d0, d1, d2}, data)) {}

  /// Formal-parameter constructor used during kernel capture (internal).
  Array(detail::FormalTag, int /*index*/)
      : impl_(detail::make_formal_impl(Traits::name, Traits::size, NDIM,
                                       FLAG)) {}

  // --- Kernel-side indexing: brackets (paper §III-A) ---
  detail::Indexer operator[](const Expr& index) const {
    if (detail::KernelBuilder::current() == nullptr) {
      detail::host_bracket_error();
    }
    return detail::Indexer(impl_, NDIM)[index];
  }

  // --- Host-side indexing: parentheses (paper §III-A) ---
  T& operator()(std::size_t i)
    requires(NDIM == 1)
  {
    return host_at(i);
  }
  T& operator()(std::size_t i, std::size_t j)
    requires(NDIM == 2)
  {
    return host_at(i * impl_->dims[1] + j);
  }
  T& operator()(std::size_t i, std::size_t j, std::size_t k)
    requires(NDIM == 3)
  {
    return host_at((i * impl_->dims[1] + j) * impl_->dims[2] + k);
  }

  /// Read-only host access that leaves device copies valid.
  T get(std::size_t i) const
    requires(NDIM == 1)
  {
    detail::sync_to_host(*impl_);
    return reinterpret_cast<const T*>(impl_->host_bytes())[i];
  }

  /// Native pointer to the host copy (paper: method data()). The caller
  /// may read and write through it, so device copies are invalidated.
  T* data() {
    detail::prepare_host_write(*impl_);
    return reinterpret_cast<T*>(impl_->host_bytes());
  }

  std::size_t size(int dim = 0) const {
    return impl_->dims[static_cast<std::size_t>(dim)];
  }
  std::size_t length() const { return impl_->total_elems(); }

  detail::ArrayImplPtr impl() const { return impl_; }

private:
  static detail::ArrayImplPtr make(std::vector<std::size_t> dims, T* data) {
    if (detail::KernelBuilder::current() != nullptr) {
      // Declared inside a kernel: a private (or __local) array.
      return detail::make_kernel_local_impl(Traits::name, Traits::size,
                                            std::move(dims), FLAG);
    }
    if (data != nullptr) {
      return detail::make_array_impl_wrapping(Traits::name, Traits::size,
                                              std::move(dims), FLAG, data);
    }
    return detail::make_array_impl(Traits::name, Traits::size,
                                   std::move(dims), FLAG);
  }

  T& host_at(std::size_t linear) {
    if (detail::KernelBuilder::current() != nullptr) {
      detail::kernel_paren_error();
    }
    detail::prepare_host_write(*impl_);
    return reinterpret_cast<T*>(impl_->host_bytes())[linear];
  }

  detail::ArrayImplPtr impl_;
};

// ---------------------------------------------------------------------------
// Array<T, 0>: scalars
// ---------------------------------------------------------------------------

template <typename T, MemFlag FLAG>
class Array<T, 0, FLAG> {
  using Traits = detail::TypeTraits<T>;

public:
  using value_type = T;
  static constexpr int ndim = 0;

  /// Host scalar (value 0) or, under capture, a kernel variable decl.
  Array() : impl_(make(nullptr)) {}

  /// Host scalar with value, or kernel variable with initializer.
  Array(T v) {
    if (detail::KernelBuilder::current() != nullptr) {
      const Expr init(v);
      impl_ = make(&init);
    } else {
      impl_ = make(nullptr);
      store(v);
    }
  }

  Array(detail::FormalTag, int /*index*/)
      : impl_(detail::make_formal_impl(Traits::name, Traits::size, 0,
                                       Global)) {}

  // Copy shares the impl (reference semantics, like all HPL arrays).
  Array(const Array&) = default;

  // --- Capture-side use ---
  operator Expr() const {
    detail::KernelBuilder* builder = detail::KernelBuilder::current();
    if (builder == nullptr) {
      return Expr(load());  // literal from the current host value
    }
    if (impl_->param_index >= 0) {
      builder->note_read(impl_->param_index);
      return Expr(impl_->var_name);
    }
    if (impl_->is_kernel_local) return Expr(impl_->var_name);
    // A host scalar referenced inside a kernel: capture its current value
    // (HPL "captures variables and macros defined outside" kernels).
    return Expr(load());
  }

  Array& operator=(T v) {
    if (emit_if_capturing("=", Expr(v))) return *this;
    store(v);
    return *this;
  }
  Array& operator=(const Expr& e) {
    require_capture("assign an expression to");
    emit("=", e);
    return *this;
  }
  Array& operator=(const Array& other) {
    if (detail::KernelBuilder::current() != nullptr) {
      emit("=", static_cast<Expr>(other));
    } else {
      store(other.load());
    }
    return *this;
  }

#define HPL_SCALAR_COMPOUND(OP)                             \
  Array& operator OP(T v) {                                 \
    if (emit_if_capturing(#OP, Expr(v))) return *this;      \
    T current = load();                                     \
    current OP v;                                           \
    store(current);                                         \
    return *this;                                           \
  }                                                         \
  Array& operator OP(const Expr& e) {                       \
    require_capture("apply " #OP " to");                    \
    emit(#OP, e);                                           \
    return *this;                                           \
  }
  HPL_SCALAR_COMPOUND(+=)
  HPL_SCALAR_COMPOUND(-=)
  HPL_SCALAR_COMPOUND(*=)
  HPL_SCALAR_COMPOUND(/=)
#undef HPL_SCALAR_COMPOUND

  Array& operator++() { return increment("++"); }
  Array& operator++(int) { return increment("++"); }
  Array& operator--() { return increment("--"); }
  Array& operator--(int) { return increment("--"); }

  // --- Host-side use ---
  T value() const {
    if (detail::KernelBuilder::current() != nullptr) {
      detail::kernel_paren_error();
    }
    return load();
  }

  detail::ArrayImplPtr impl() const { return impl_; }

private:
  detail::ArrayImplPtr make(const Expr* init) {
    if (detail::KernelBuilder::current() != nullptr) {
      auto impl = detail::make_kernel_local_impl(Traits::name, Traits::size,
                                                 {}, Private);
      impl->var_name = detail::KernelBuilder::current()->declare_scalar(
          Traits::name, init);
      impl->is_kernel_local = true;
      return impl;
    }
    return detail::make_array_impl(Traits::name, Traits::size, {}, Global);
  }

  T load() const {
    T v;
    std::memcpy(&v, impl_->host_ptr, sizeof(T));
    return v;
  }
  void store(T v) { std::memcpy(impl_->host_ptr, &v, sizeof(T)); }

  void require_capture(const char* what) const {
    if (detail::KernelBuilder::current() == nullptr) {
      throw hplrepro::Error(std::string("HPL: cannot ") + what +
                            " a scalar outside kernel capture");
    }
  }

  /// Emits `var <op> expr;` if capturing and this scalar is a kernel
  /// variable. Returns true when the statement was emitted.
  bool emit_if_capturing(const char* op, const Expr& rhs) {
    detail::KernelBuilder* builder = detail::KernelBuilder::current();
    if (builder == nullptr) return false;
    emit_with(builder, op, rhs);
    return true;
  }

  void emit(const char* op, const Expr& rhs) {
    emit_with(detail::KernelBuilder::current(), op, rhs);
  }

  void emit_with(detail::KernelBuilder* builder, const char* op,
                 const Expr& rhs) {
    if (impl_->param_index >= 0) {
      throw hplrepro::Error(
          "HPL: scalar kernel parameters are read-only (passed by value)");
    }
    if (!impl_->is_kernel_local) {
      throw hplrepro::Error(
          "HPL: cannot write a host variable from inside a kernel; kernels "
          "communicate with the host only through their arguments");
    }
    builder->emit_statement(impl_->var_name + " " + op + " " + rhs.code() +
                            ";");
  }

  Array& increment(const char* tok) {
    detail::KernelBuilder* builder = detail::KernelBuilder::current();
    if (builder == nullptr) {
      T v = load();
      v = tok[0] == '+' ? static_cast<T>(v + 1) : static_cast<T>(v - 1);
      store(v);
      return *this;
    }
    if (!impl_->is_kernel_local) {
      throw hplrepro::Error("HPL: ++/-- on a non-kernel variable in capture");
    }
    builder->emit_statement(impl_->var_name + tok + ";");
    return *this;
  }

  detail::ArrayImplPtr impl_;
};

// ---------------------------------------------------------------------------
// Scalar aliases (paper §III-A)
// ---------------------------------------------------------------------------

using Int = Array<std::int32_t, 0>;
using Uint = Array<std::uint32_t, 0>;
using Long = Array<std::int64_t, 0>;
using Ulong = Array<std::uint64_t, 0>;
using Float = Array<float, 0>;
using Double = Array<double, 0>;
using Char = Array<std::int8_t, 0>;
using Uchar = Array<std::uint8_t, 0>;
using Short = Array<std::int16_t, 0>;
using Ushort = Array<std::uint16_t, 0>;

}  // namespace HPL

#endif  // HPLREPRO_HPL_ARRAY_HPP
