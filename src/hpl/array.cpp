#include "hpl/array.hpp"

namespace HPL {
namespace detail {

ArrayImplPtr make_formal_impl(const char* type_name, std::size_t elem_size,
                              int ndim, MemFlag flag) {
  KernelBuilder* builder = KernelBuilder::current();
  if (builder == nullptr) {
    throw hplrepro::InternalError(
        "formal parameter constructed outside capture");
  }
  auto impl = std::make_shared<ArrayImpl>();
  impl->type_name = type_name;
  impl->elem_size = elem_size;
  impl->flag = flag;
  impl->param_index = static_cast<int>(builder->params().size());
  impl->var_name = builder->add_param(type_name, ndim, flag);
  // Hidden dimension-size argument names for rank >= 2 (row-major
  // linearisation, paper §III-A "arrays of any number of dimensions").
  impl->dims.assign(static_cast<std::size_t>(ndim), 0);
  impl->dim_names.resize(static_cast<std::size_t>(ndim));
  for (int d = 1; d < ndim; ++d) {
    impl->dim_names[static_cast<std::size_t>(d)] =
        impl->var_name + "_d" + std::to_string(d);
  }
  return impl;
}

ArrayImplPtr make_kernel_local_impl(const char* type_name,
                                    std::size_t elem_size,
                                    std::vector<std::size_t> dims,
                                    MemFlag flag) {
  KernelBuilder* builder = KernelBuilder::current();
  if (builder == nullptr) {
    throw hplrepro::InternalError(
        "kernel-local array constructed outside capture");
  }
  if (flag == Constant) {
    throw hplrepro::InvalidArgument(
        "HPL: constant-memory arrays must be kernel arguments, not "
        "kernel-local variables");
  }
  auto impl = std::make_shared<ArrayImpl>();
  impl->type_name = type_name;
  impl->elem_size = elem_size;
  impl->flag = flag == Local ? Local : Private;
  impl->is_kernel_local = true;
  impl->dims = std::move(dims);
  impl->dim_names.resize(impl->dims.size());
  for (std::size_t d = 1; d < impl->dims.size(); ++d) {
    impl->dim_names[d] = std::to_string(impl->dims[d]);
  }
  if (!impl->dims.empty()) {
    impl->var_name =
        builder->declare_array(type_name, impl->dims, impl->flag);
  }
  return impl;
}

std::string element_code(const ArrayImpl& impl,
                         const std::vector<std::string>& indices) {
  std::string linear = indices[0];
  for (std::size_t d = 1; d < indices.size(); ++d) {
    linear = "(" + linear + ") * " + impl.dim_names[d] + " + (" +
             indices[d] + ")";
  }
  return impl.var_name + "[" + linear + "]";
}

Expr element_read(ArrayImpl& impl, const std::string& element) {
  KernelBuilder* builder = KernelBuilder::current();
  if (builder != nullptr && impl.param_index >= 0) {
    builder->note_read(impl.param_index);
  }
  return Expr(element);
}

void emit_element_assign(ArrayImpl& impl, const std::string& element,
                         const char* op, const Expr& rhs) {
  KernelBuilder* builder = KernelBuilder::current();
  if (builder == nullptr) {
    throw hplrepro::Error(
        "HPL: [] assignment is only valid inside kernels; use () in host "
        "code");
  }
  if (impl.flag == Constant) {
    throw hplrepro::Error(
        "HPL: arrays in constant memory are read-only inside kernels");
  }
  if (impl.param_index >= 0) {
    builder->note_write(impl.param_index);
    if (op[0] != '=') builder->note_read(impl.param_index);
  }
  builder->emit_statement(element + " " + op + " " + rhs.code() + ";");
}

void host_bracket_error() {
  throw hplrepro::Error(
      "HPL: [] indexing is only valid inside kernels; host code must use "
      "() (paper §III-A)");
}

void kernel_paren_error() {
  throw hplrepro::Error(
      "HPL: host-style access inside a kernel; use [] indexing in kernels");
}

}  // namespace detail
}  // namespace HPL
