#ifndef HPLREPRO_HPL_EXPR_HPP
#define HPLREPRO_HPL_EXPR_HPP

/// \file expr.hpp
/// Expression capture. When a kernel function runs under a KernelBuilder,
/// operations on HPL datatypes do not compute — they build OpenCL C source
/// text. `Expr` is the captured fragment. All C++ operators that OpenCL C
/// supports are overloaded on Expr; HPL array/scalar types convert to Expr
/// implicitly, so mixed expressions like `a * x[idx] + 1.0` compose
/// naturally (paper §III-B).
///
/// Type checking of the captured program is deliberately left to the clc
/// compiler, which parses the generated source from scratch — mirroring
/// how the real HPL relies on the vendor OpenCL compiler.

#include <string>
#include <utility>

#include "hpl/types.hpp"
#include "support/strings.hpp"

namespace HPL {

class Expr {
public:
  Expr() = default;
  explicit Expr(std::string code) : code_(std::move(code)) {}

  // Literal conversions (non-template on purpose: keeps the implicit
  // conversion from HPL scalar types viable in overload resolution).
  Expr(int v) : code_(std::to_string(v)) {}
  Expr(unsigned v) : code_(std::to_string(v) + "u") {}
  Expr(long v) : code_(std::to_string(v) + "l") {}
  Expr(unsigned long v) : code_(std::to_string(v) + "ul") {}
  Expr(long long v) : code_(std::to_string(v) + "l") {}
  Expr(unsigned long long v) : code_(std::to_string(v) + "ul") {}
  Expr(float v) : code_(hplrepro::float_literal(v)) {}
  Expr(double v) : code_(hplrepro::double_literal(v)) {}

  const std::string& code() const { return code_; }
  bool empty() const { return code_.empty(); }

private:
  std::string code_;
};

namespace detail {

inline Expr binary(const Expr& a, const char* op, const Expr& b) {
  return Expr("(" + a.code() + " " + op + " " + b.code() + ")");
}

inline Expr unary(const char* op, const Expr& a) {
  return Expr("(" + std::string(op) + a.code() + ")");
}

}  // namespace detail

// Arithmetic
inline Expr operator+(const Expr& a, const Expr& b) { return detail::binary(a, "+", b); }
inline Expr operator-(const Expr& a, const Expr& b) { return detail::binary(a, "-", b); }
inline Expr operator*(const Expr& a, const Expr& b) { return detail::binary(a, "*", b); }
inline Expr operator/(const Expr& a, const Expr& b) { return detail::binary(a, "/", b); }
inline Expr operator%(const Expr& a, const Expr& b) { return detail::binary(a, "%", b); }
inline Expr operator-(const Expr& a) { return detail::unary("-", a); }
inline Expr operator+(const Expr& a) { return a; }

// Comparison
inline Expr operator<(const Expr& a, const Expr& b) { return detail::binary(a, "<", b); }
inline Expr operator<=(const Expr& a, const Expr& b) { return detail::binary(a, "<=", b); }
inline Expr operator>(const Expr& a, const Expr& b) { return detail::binary(a, ">", b); }
inline Expr operator>=(const Expr& a, const Expr& b) { return detail::binary(a, ">=", b); }
inline Expr operator==(const Expr& a, const Expr& b) { return detail::binary(a, "==", b); }
inline Expr operator!=(const Expr& a, const Expr& b) { return detail::binary(a, "!=", b); }

// Logical
inline Expr operator&&(const Expr& a, const Expr& b) { return detail::binary(a, "&&", b); }
inline Expr operator||(const Expr& a, const Expr& b) { return detail::binary(a, "||", b); }
inline Expr operator!(const Expr& a) { return detail::unary("!", a); }

// Bitwise
inline Expr operator&(const Expr& a, const Expr& b) { return detail::binary(a, "&", b); }
inline Expr operator|(const Expr& a, const Expr& b) { return detail::binary(a, "|", b); }
inline Expr operator^(const Expr& a, const Expr& b) { return detail::binary(a, "^", b); }
inline Expr operator<<(const Expr& a, const Expr& b) { return detail::binary(a, "<<", b); }
inline Expr operator>>(const Expr& a, const Expr& b) { return detail::binary(a, ">>", b); }
inline Expr operator~(const Expr& a) { return detail::unary("~", a); }

// Device math functions usable inside kernels (subset mirroring clc's
// builtin registry; the generated calls are resolved by the clc compiler).
#define HPL_DEFINE_UNARY_FN(NAME)                          \
  inline Expr NAME(const Expr& a) {                        \
    return Expr(#NAME "(" + a.code() + ")");               \
  }
#define HPL_DEFINE_BINARY_FN(NAME)                         \
  inline Expr NAME(const Expr& a, const Expr& b) {         \
    return Expr(#NAME "(" + a.code() + ", " + b.code() + ")"); \
  }
#define HPL_DEFINE_TERNARY_FN(NAME)                        \
  inline Expr NAME(const Expr& a, const Expr& b, const Expr& c) { \
    return Expr(#NAME "(" + a.code() + ", " + b.code() + ", " +   \
                c.code() + ")");                            \
  }

HPL_DEFINE_UNARY_FN(sqrt)
HPL_DEFINE_UNARY_FN(rsqrt)
HPL_DEFINE_UNARY_FN(fabs)
HPL_DEFINE_UNARY_FN(exp)
HPL_DEFINE_UNARY_FN(exp2)
HPL_DEFINE_UNARY_FN(log)
HPL_DEFINE_UNARY_FN(log2)
HPL_DEFINE_UNARY_FN(log10)
HPL_DEFINE_UNARY_FN(sin)
HPL_DEFINE_UNARY_FN(cos)
HPL_DEFINE_UNARY_FN(tan)
HPL_DEFINE_UNARY_FN(asin)
HPL_DEFINE_UNARY_FN(acos)
HPL_DEFINE_UNARY_FN(atan)
HPL_DEFINE_UNARY_FN(floor)
HPL_DEFINE_UNARY_FN(ceil)
HPL_DEFINE_UNARY_FN(trunc)
HPL_DEFINE_UNARY_FN(round)
HPL_DEFINE_UNARY_FN(abs)
HPL_DEFINE_BINARY_FN(pow)
HPL_DEFINE_BINARY_FN(atan2)
HPL_DEFINE_BINARY_FN(fmod)
HPL_DEFINE_BINARY_FN(fmin)
HPL_DEFINE_BINARY_FN(fmax)
HPL_DEFINE_BINARY_FN(hypot)
HPL_DEFINE_BINARY_FN(min)
HPL_DEFINE_BINARY_FN(max)
HPL_DEFINE_TERNARY_FN(fma)
HPL_DEFINE_TERNARY_FN(mad)
HPL_DEFINE_TERNARY_FN(clamp)

#undef HPL_DEFINE_UNARY_FN
#undef HPL_DEFINE_BINARY_FN
#undef HPL_DEFINE_TERNARY_FN

/// Explicit cast in kernel code, e.g. cast<float>(i).
template <typename T>
Expr cast(const Expr& a) {
  return Expr("((" + std::string(detail::TypeTraits<T>::name) + ")" +
              a.code() + ")");
}

}  // namespace HPL

#endif  // HPLREPRO_HPL_EXPR_HPP
