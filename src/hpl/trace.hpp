#ifndef HPLREPRO_HPL_TRACE_HPP
#define HPLREPRO_HPL_TRACE_HPP

/// \file trace.hpp
/// HPL-facing observability (paper §V context: show *where* eval's time
/// goes). Two pieces:
///
///   * a per-kernel / per-device profile registry, always on, fed by every
///     eval: launch counts, cache hits, builds, simulated time split by
///     timing-model component, kernel memory traffic, fused-op ratio —
///     plus per-device transfer totals;
///   * `profiler_report()`, a human-readable decomposition (host vs kernel
///     vs transfer, then per kernel per device) rendered with
///     support/table.
///
/// Span-level tracing (Chrome trace JSON) lives in support/trace.hpp;
/// `HPL::trace_to(path)` is the library-level switch, equivalent to
/// running with HPL_TRACE=<path>.

#include <cstdint>
#include <string>
#include <vector>

#include "clsim/runtime.hpp"
#include "clsim/timing.hpp"

namespace HPL {

/// Aggregated statistics for one kernel on one device.
struct KernelProfile {
  std::string kernel;  // generated kernel name (hpl_kernel_N)
  std::string device;  // device name
  std::uint64_t launches = 0;
  std::uint64_t cache_hits = 0;  // launches served fully from the cache
  std::uint64_t builds = 0;      // capture/codegen/build events
  hplrepro::clsim::TimingBreakdown sim;  // summed over launches
  std::uint64_t ops = 0;
  std::uint64_t fused_ops = 0;
  std::uint64_t global_bytes = 0;  // kernel global loads + stores

  double fused_ratio() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(fused_ops) /
                          static_cast<double>(ops);
  }
};

/// Aggregated host<->device transfer statistics for one device.
struct TransferProfile {
  std::string device;
  std::uint64_t to_device_bytes = 0;
  std::uint64_t to_host_bytes = 0;
  std::uint64_t to_device_count = 0;
  std::uint64_t to_host_count = 0;
  /// Direct device-to-device copies INTO this device (coexec merges).
  std::uint64_t d2d_bytes = 0;
  std::uint64_t d2d_count = 0;
  double sim_seconds = 0;
};

/// Snapshot of the registry (kernel rows sorted by kernel then device).
std::vector<KernelProfile> kernel_profiles();
std::vector<TransferProfile> transfer_profiles();

/// Renders the Fig. 7-style decomposition: totals (host / kernel /
/// transfer with shares), then the per-kernel and per-device tables.
std::string profiler_report();

/// Enables span tracing and writes Chrome trace JSON to `path` at process
/// exit (same as running with HPL_TRACE=<path>). Open the file in
/// chrome://tracing or https://ui.perfetto.dev.
void trace_to(const std::string& path);

/// Enables the quantitative metrics layer (support/metrics.hpp) and
/// arranges for the "hplrepro-metrics-v1" JSON to be written to `path` at
/// process exit (same as running with HPL_METRICS=<path>).
void metrics_to(const std::string& path);

/// Quiesces every queue, then renders the metrics registry — counters,
/// gauges, latency-histogram quantiles (p50/p90/p99/p99.9) and the
/// critical-path decomposition — as human-readable tables. Free of
/// nan/inf even when nothing ran.
std::string metrics_report();

/// Quiesces every queue, then writes the metrics JSON to `path` now.
/// Returns false (without throwing) if the file cannot be opened.
bool metrics_write(const std::string& path);

namespace detail {

/// Called by eval for every launch.
void profiler_record_launch(const std::string& kernel,
                            const std::string& device, bool cache_hit,
                            const hplrepro::clsim::Event& event);

/// Called by eval for launches whose command failed (VM trap). The launch
/// still counts — keeping registry sums reconciled with the ProfileSnapshot
/// counters — but contributes no simulated time or kernel statistics
/// (a failed event's profiling accessors rethrow its error).
void profiler_record_failed_launch(const std::string& kernel,
                                   const std::string& device, bool cache_hit);

/// Called when a kernel is (re)built for a device.
void profiler_record_build(const std::string& kernel,
                           const std::string& device);

/// Called for every coherence transfer.
void profiler_record_transfer(const std::string& device, bool to_device,
                              std::uint64_t bytes, double sim_seconds);

/// Called for every direct device-to-device copy; attributed to the
/// destination device's row.
void profiler_record_copy(const std::string& dst_device,
                          std::uint64_t bytes, double sim_seconds);

/// Clears the registry (reset_profile does this so report sums always
/// match the ProfileSnapshot counters).
void profiler_reset();

}  // namespace detail
}  // namespace HPL

#endif  // HPLREPRO_HPL_TRACE_HPP
