#include "hpl/builder.hpp"

#include "support/strings.hpp"

namespace HPL {
namespace detail {

namespace {
thread_local KernelBuilder* g_current_builder = nullptr;
}

KernelBuilder::KernelBuilder() = default;
KernelBuilder::~KernelBuilder() = default;

KernelBuilder* KernelBuilder::current() { return g_current_builder; }

CaptureScope::CaptureScope(KernelBuilder& builder) {
  if (g_current_builder != nullptr) {
    throw hplrepro::Error(
        "HPL: nested kernel capture (eval of a kernel from inside a kernel "
        "is not allowed; kernels may only be invoked from host code)");
  }
  g_current_builder = &builder;
}

CaptureScope::~CaptureScope() { g_current_builder = nullptr; }

std::string KernelBuilder::add_param(const std::string& type_name, int ndim,
                                     MemFlag flag) {
  ParamSig sig;
  sig.name = "p" + std::to_string(params_.size());
  sig.type_name = type_name;
  sig.ndim = ndim;
  sig.flag = flag;
  params_.push_back(sig);
  return params_.back().name;
}

void KernelBuilder::note_read(int param_index) {
  if (param_index >= 0 &&
      param_index < static_cast<int>(params_.size())) {
    params_[static_cast<std::size_t>(param_index)].access.read = true;
  }
}

void KernelBuilder::note_write(int param_index) {
  if (param_index >= 0 &&
      param_index < static_cast<int>(params_.size())) {
    params_[static_cast<std::size_t>(param_index)].access.written = true;
  }
}

std::string KernelBuilder::use_predefined(const char* name,
                                           const char* init) {
  for (const auto& [existing, unused] : predefined_) {
    if (existing == name) return existing;
  }
  predefined_.emplace_back(name, init);
  return name;
}

std::string KernelBuilder::declare_scalar(const std::string& type_name,
                                          const Expr* init) {
  const std::string name = "v" + std::to_string(next_var_++);
  std::string decl = type_name + " " + name;
  if (init != nullptr) decl += " = " + init->code();
  decl += ";";
  emit_statement(decl);
  return name;
}

std::string KernelBuilder::declare_array(const std::string& type_name,
                                         const std::vector<std::size_t>& dims,
                                         MemFlag flag) {
  const std::string name = "v" + std::to_string(next_var_++);
  std::size_t total = 1;
  for (const std::size_t d : dims) total *= d;
  std::string decl;
  if (flag == Local) decl += "__local ";
  decl += type_name + " " + name + "[" + std::to_string(total) + "];";
  // Array declarations always go to the body even inside for_ headers.
  indent_line(decl);
  return name;
}

void KernelBuilder::indent_line(const std::string& text) {
  lines_.push_back(std::string(static_cast<std::size_t>(indent_) * 2, ' ') +
                   text);
}

void KernelBuilder::emit_statement(const std::string& text) {
  switch (mode_) {
    case Mode::Body:
      indent_line(text);
      return;
    case Mode::ForInit: {
      // Strip the trailing ';' — parts are joined with commas in the header.
      std::string part = text;
      if (!part.empty() && part.back() == ';') part.pop_back();
      for_init_.push_back(part);
      return;
    }
    case Mode::ForUpdate: {
      std::string part = text;
      if (!part.empty() && part.back() == ';') part.pop_back();
      for_update_.push_back(part);
      return;
    }
  }
}

void KernelBuilder::begin_if(const Expr& condition) {
  indent_line("if (" + condition.code() + ") {");
  ++indent_;
  blocks_.push_back(BlockKind::If);
}

void KernelBuilder::begin_else() {
  if (blocks_.empty() || blocks_.back() != BlockKind::If) {
    throw hplrepro::Error("HPL: else_ without a matching if_");
  }
  blocks_.back() = BlockKind::Else;
  --indent_;
  indent_line("} else {");
  ++indent_;
}

void KernelBuilder::end_if() {
  if (blocks_.empty() ||
      (blocks_.back() != BlockKind::If && blocks_.back() != BlockKind::Else)) {
    throw hplrepro::Error("HPL: endif_ without a matching if_");
  }
  blocks_.pop_back();
  --indent_;
  indent_line("}");
}

void KernelBuilder::begin_while(const Expr& condition) {
  indent_line("while (" + condition.code() + ") {");
  ++indent_;
  blocks_.push_back(BlockKind::While);
}

void KernelBuilder::end_while() {
  if (blocks_.empty() || blocks_.back() != BlockKind::While) {
    throw hplrepro::Error("HPL: endwhile_ without a matching while_");
  }
  blocks_.pop_back();
  --indent_;
  indent_line("}");
}

void KernelBuilder::for_init_section() {
  if (mode_ != Mode::Body) {
    throw hplrepro::Error("HPL: for_ inside another for_'s header");
  }
  for_init_.clear();
  for_cond_.clear();
  for_update_.clear();
  mode_ = Mode::ForInit;
}

void KernelBuilder::for_cond_section(const Expr& condition) {
  for_cond_ = condition.code();
  mode_ = Mode::ForUpdate;
}

void KernelBuilder::for_body_section() {
  mode_ = Mode::Body;
  indent_line("for (" + hplrepro::join(for_init_, ", ") + "; " + for_cond_ +
              "; " + hplrepro::join(for_update_, ", ") + ") {");
  ++indent_;
  blocks_.push_back(BlockKind::For);
}

void KernelBuilder::end_for() {
  if (blocks_.empty() || blocks_.back() != BlockKind::For) {
    throw hplrepro::Error("HPL: endfor_ without a matching for_");
  }
  blocks_.pop_back();
  --indent_;
  indent_line("}");
}

std::string KernelBuilder::body() const {
  std::string out;
  for (const auto& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

void KernelBuilder::check_balanced() const {
  if (!blocks_.empty()) {
    throw hplrepro::Error(
        "HPL: kernel ended with an unclosed if_/for_/while_ block (missing "
        "endif_/endfor_/endwhile_?)");
  }
  if (mode_ != Mode::Body) {
    throw hplrepro::Error("HPL: kernel ended inside a for_ header");
  }
}

}  // namespace detail
}  // namespace HPL
