#ifndef HPLREPRO_HPL_KEYWORDS_HPP
#define HPLREPRO_HPL_KEYWORDS_HPP

/// \file keywords.hpp
/// The HPL kernel keywords (paper §III-B): control flow constructs whose
/// names end in an underscore (`if_`, `for_`, ...), the predefined
/// work-item identification variables (`idx`, `lidx`, `gidx`, sizes), and
/// the `barrier` synchronisation function.
///
/// Control constructs are macros so that (a) `if_(c) { ... } endif_` parses
/// as plain C++ and (b) `for_`'s three comma-separated header parts are
/// evaluated in a defined order and routed into the generated loop header.

#include "hpl/builder.hpp"
#include "hpl/expr.hpp"

namespace HPL {
namespace detail {

KernelBuilder& active_builder(const char* keyword);

void begin_if_(const Expr& condition);
void begin_else_();
void end_if_();
void begin_while_(const Expr& condition);
void end_while_();
void for_init_();
void for_cond_(const Expr& condition);
void for_body_();
void end_for_();

/// A variable with a predefined meaning inside kernels (idx, lidx, ...).
/// Inside a capture the variable is declared once at kernel entry (HPL
/// caches the work-item function result in a local, like hand-written
/// OpenCL kernels do) and referenced by name afterwards.
struct PredefinedVar {
  const char* name;
  const char* init;
  operator Expr() const {
    if (KernelBuilder* builder = KernelBuilder::current()) {
      return Expr(builder->use_predefined(name, init));
    }
    return Expr(init);
  }
};

/// `idx + 1` etc. work through PredefinedVar -> Expr conversion on the
/// free Expr operators.

}  // namespace detail

// --- Predefined work-item variables (paper §III-B) ---------------------------

/// Global ids in dimensions 0, 1, 2 of the global domain.
inline constexpr detail::PredefinedVar idx{"idx", "get_global_id(0)"};
inline constexpr detail::PredefinedVar idy{"idy", "get_global_id(1)"};
inline constexpr detail::PredefinedVar idz{"idz", "get_global_id(2)"};

/// Local ids within the thread's group.
inline constexpr detail::PredefinedVar lidx{"lidx", "get_local_id(0)"};
inline constexpr detail::PredefinedVar lidy{"lidy", "get_local_id(1)"};
inline constexpr detail::PredefinedVar lidz{"lidz", "get_local_id(2)"};

/// Group ids.
inline constexpr detail::PredefinedVar gidx{"gidx", "get_group_id(0)"};
inline constexpr detail::PredefinedVar gidy{"gidy", "get_group_id(1)"};
inline constexpr detail::PredefinedVar gidz{"gidz", "get_group_id(2)"};

/// Global domain sizes.
inline constexpr detail::PredefinedVar szx{"szx", "get_global_size(0)"};
inline constexpr detail::PredefinedVar szy{"szy", "get_global_size(1)"};
inline constexpr detail::PredefinedVar szz{"szz", "get_global_size(2)"};

/// Local domain sizes.
inline constexpr detail::PredefinedVar lszx{"lszx", "get_local_size(0)"};
inline constexpr detail::PredefinedVar lszy{"lszy", "get_local_size(1)"};
inline constexpr detail::PredefinedVar lszz{"lszz", "get_local_size(2)"};

/// Numbers of groups per dimension.
inline constexpr detail::PredefinedVar ngroupsx{"ngroupsx", "get_num_groups(0)"};
inline constexpr detail::PredefinedVar ngroupsy{"ngroupsy", "get_num_groups(1)"};
inline constexpr detail::PredefinedVar ngroupsz{"ngroupsz", "get_num_groups(2)"};

// --- barrier (paper §III-B) ---------------------------------------------------

/// Memory-consistency scope flags for barrier(). LOCAL and GLOBAL can be
/// OR-ed (`LOCAL | GLOBAL`).
enum SyncFlag : unsigned { LOCAL = 1u, GLOBAL = 2u };

inline constexpr unsigned operator|(SyncFlag a, SyncFlag b) {
  return static_cast<unsigned>(a) | static_cast<unsigned>(b);
}

/// Barrier synchronisation across the threads of a group.
void barrier(unsigned flags = LOCAL | GLOBAL);

}  // namespace HPL

// --- Control-flow keywords ------------------------------------------------------

#define if_(...) ::HPL::detail::begin_if_(::HPL::Expr(__VA_ARGS__));
#define else_ ::HPL::detail::begin_else_();
#define endif_ ::HPL::detail::end_if_();

#define while_(...) ::HPL::detail::begin_while_(::HPL::Expr(__VA_ARGS__));
#define endwhile_ ::HPL::detail::end_while_();

#define for_(INIT, COND, UPDATE)              \
  ::HPL::detail::for_init_();                 \
  (void)(INIT);                               \
  ::HPL::detail::for_cond_(::HPL::Expr(COND)); \
  (void)(UPDATE);                             \
  ::HPL::detail::for_body_();
#define endfor_ ::HPL::detail::end_for_();

#endif  // HPLREPRO_HPL_KEYWORDS_HPP
