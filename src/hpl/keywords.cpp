#include "hpl/keywords.hpp"

#include "support/error.hpp"

namespace HPL {
namespace detail {

KernelBuilder& active_builder(const char* keyword) {
  KernelBuilder* builder = KernelBuilder::current();
  if (builder == nullptr) {
    throw hplrepro::Error(std::string("HPL: '") + keyword +
                          "' used outside a kernel");
  }
  return *builder;
}

void begin_if_(const Expr& condition) {
  active_builder("if_").begin_if(condition);
}
void begin_else_() { active_builder("else_").begin_else(); }
void end_if_() { active_builder("endif_").end_if(); }

void begin_while_(const Expr& condition) {
  active_builder("while_").begin_while(condition);
}
void end_while_() { active_builder("endwhile_").end_while(); }

void for_init_() { active_builder("for_").for_init_section(); }
void for_cond_(const Expr& condition) {
  active_builder("for_").for_cond_section(condition);
}
void for_body_() { active_builder("for_").for_body_section(); }
void end_for_() { active_builder("endfor_").end_for(); }

}  // namespace detail

void barrier(unsigned flags) {
  detail::KernelBuilder& builder = detail::active_builder("barrier");
  std::string arg;
  if (flags & LOCAL) arg = "CLK_LOCAL_MEM_FENCE";
  if (flags & GLOBAL) {
    if (!arg.empty()) arg += " | ";
    arg += "CLK_GLOBAL_MEM_FENCE";
  }
  if (arg.empty()) arg = "0";
  builder.emit_statement("barrier(" + arg + ");");
}

}  // namespace HPL
