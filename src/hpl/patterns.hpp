#ifndef HPLREPRO_HPL_PATTERNS_HPP
#define HPLREPRO_HPL_PATTERNS_HPP

/// \file patterns.hpp
/// Functions for typical patterns of computation — the extension the paper
/// announces as future work (§VII: "We are working to add new features to
/// HPL in order to improve further the programmability by providing
/// functions for typical patterns of computation").
///
/// Every pattern is an ordinary HPL kernel under the hood, so it inherits
/// the whole machinery: one capture + compile per element type (the kernel
/// cache keys on the instantiated function's address), device-resident
/// data, minimal transfers, and portability across devices.
///
///   fill(a, 3.0f);                    // a[i] = 3
///   iota(a);                          // a[i] = i
///   axpy(y, x, 2.0);                  // y += 2x
///   add(c, a, b); sub/mul/div(...);   // elementwise
///   scale(a, 0.5f);                   // a *= 0.5
///   float s = reduce_sum(a);          // tree reduction on the device
///   float d = dot(a, b);              // fused multiply + reduction
///
/// All functions take an optional Device as the last argument (default:
/// the platform's default accelerator).

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "hpl/array.hpp"
#include "hpl/eval.hpp"
#include "hpl/keywords.hpp"

namespace HPL {
namespace patterns_detail {

inline constexpr std::size_t kReduceGroups = 64;
inline constexpr std::size_t kReduceLocal = 128;

/// Per-element-type pool of partial-sum scratch arrays. reduce_sum/dot used
/// to construct a fresh kReduceGroups-element Array on every call — a host
/// allocation plus a fresh device buffer per reduction. The pool hands the
/// same scratch arrays back out, so steady-state reductions reuse a
/// device-resident buffer. Leaked singleton: leases may be released during
/// static destruction, after a function-local static pool would be gone.
template <typename T>
class PartialsPool {
public:
  /// RAII lease: acquire on construction, return to the pool on scope exit.
  class Lease {
  public:
    explicit Lease(PartialsPool& pool)
        : pool_(pool), array_(pool.acquire()) {}
    ~Lease() { pool_.release(std::move(array_)); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Array<T, 1>& array() { return *array_; }

  private:
    PartialsPool& pool_;
    std::unique_ptr<Array<T, 1>> array_;
  };

  static PartialsPool& get() {
    static PartialsPool* pool = new PartialsPool;
    return *pool;
  }

private:
  std::unique_ptr<Array<T, 1>> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        auto out = std::move(free_.back());
        free_.pop_back();
        return out;
      }
    }
    return std::make_unique<Array<T, 1>>(kReduceGroups);
  }

  void release(std::unique_ptr<Array<T, 1>> array) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(array));
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<Array<T, 1>>> free_;
};

template <typename T>
void fill_kernel(Array<T, 1> out, Array<T, 0> value) {
  out[idx] = value;
}

template <typename T>
void iota_kernel(Array<T, 1> out) {
  out[idx] = cast<T>(idx);
}

template <typename T>
void axpy_kernel(Array<T, 1> y, Array<T, 1> x, Array<T, 0> a) {
  y[idx] = a * x[idx] + y[idx];
}

template <typename T>
void scale_kernel(Array<T, 1> data, Array<T, 0> factor) {
  data[idx] = data[idx] * factor;
}

template <typename T>
void add_kernel(Array<T, 1> out, Array<T, 1> a, Array<T, 1> b) {
  out[idx] = a[idx] + b[idx];
}

template <typename T>
void sub_kernel(Array<T, 1> out, Array<T, 1> a, Array<T, 1> b) {
  out[idx] = a[idx] - b[idx];
}

template <typename T>
void mul_kernel(Array<T, 1> out, Array<T, 1> a, Array<T, 1> b) {
  out[idx] = a[idx] * b[idx];
}

template <typename T>
void div_kernel(Array<T, 1> out, Array<T, 1> a, Array<T, 1> b) {
  out[idx] = a[idx] / b[idx];
}

/// Grid-stride partial sum into one slot per group (SHOC-style).
template <typename T>
void reduce_kernel(Array<T, 1> in, Array<T, 1> partials, Uint n) {
  Array<T, 1, Local> sdata(kReduceLocal);
  Uint i, s;
  Array<T, 0> sum = T{};

  for_(i = cast<std::uint32_t>(idx), i < n, i += cast<std::uint32_t>(szx)) {
    sum += in[i];
  } endfor_
  sdata[lidx] = sum;
  barrier(LOCAL);
  for_(s = cast<std::uint32_t>(lszx) >> 1, s > 0u, s = s >> 1) {
    if_(lidx < s) {
      sdata[lidx] += sdata[lidx + s];
    } endif_
    barrier(LOCAL);
  } endfor_
  if_(lidx == 0) {
    partials[gidx] = sdata[0];
  } endif_
}

/// Fused elementwise product + partial reduction for dot().
template <typename T>
void dot_kernel(Array<T, 1> a, Array<T, 1> b, Array<T, 1> partials, Uint n) {
  Array<T, 1, Local> sdata(kReduceLocal);
  Uint i, s;
  Array<T, 0> sum = T{};

  for_(i = cast<std::uint32_t>(idx), i < n, i += cast<std::uint32_t>(szx)) {
    sum += a[i] * b[i];
  } endfor_
  sdata[lidx] = sum;
  barrier(LOCAL);
  for_(s = cast<std::uint32_t>(lszx) >> 1, s > 0u, s = s >> 1) {
    if_(lidx < s) {
      sdata[lidx] += sdata[lidx + s];
    } endif_
    barrier(LOCAL);
  } endfor_
  if_(lidx == 0) {
    partials[gidx] = sdata[0];
  } endif_
}

template <typename T>
T finish_reduction(Array<T, 1>& partials) {
  T total{};
  for (std::size_t g = 0; g < kReduceGroups; ++g) total += partials.get(g);
  return total;
}

}  // namespace patterns_detail

// --- Public patterns ----------------------------------------------------------

/// out[i] = value for every element.
template <typename T>
void fill(Array<T, 1>& out, T value, Device device = Device()) {
  Array<T, 0> v(value);
  eval(patterns_detail::fill_kernel<T>).device(device)(out, v);
}

/// out[i] = i.
template <typename T>
void iota(Array<T, 1>& out, Device device = Device()) {
  eval(patterns_detail::iota_kernel<T>).device(device)(out);
}

/// y[i] += a * x[i] — the paper's SAXPY as a one-liner.
template <typename T>
void axpy(Array<T, 1>& y, Array<T, 1>& x, T a, Device device = Device()) {
  Array<T, 0> av(a);
  eval(patterns_detail::axpy_kernel<T>).device(device)(y, x, av);
}

/// data[i] *= factor.
template <typename T>
void scale(Array<T, 1>& data, T factor, Device device = Device()) {
  Array<T, 0> fv(factor);
  eval(patterns_detail::scale_kernel<T>).device(device)(data, fv);
}

/// Elementwise out = a (+|-|*|/) b.
template <typename T>
void add(Array<T, 1>& out, Array<T, 1>& a, Array<T, 1>& b,
         Device device = Device()) {
  eval(patterns_detail::add_kernel<T>).device(device)(out, a, b);
}
template <typename T>
void sub(Array<T, 1>& out, Array<T, 1>& a, Array<T, 1>& b,
         Device device = Device()) {
  eval(patterns_detail::sub_kernel<T>).device(device)(out, a, b);
}
template <typename T>
void mul(Array<T, 1>& out, Array<T, 1>& a, Array<T, 1>& b,
         Device device = Device()) {
  eval(patterns_detail::mul_kernel<T>).device(device)(out, a, b);
}
template <typename T>
void div(Array<T, 1>& out, Array<T, 1>& a, Array<T, 1>& b,
         Device device = Device()) {
  eval(patterns_detail::div_kernel<T>).device(device)(out, a, b);
}

/// Sum of all elements: device-side tree reduction, host finish.
template <typename T>
T reduce_sum(Array<T, 1>& in, Device device = Device()) {
  using namespace patterns_detail;
  typename PartialsPool<T>::Lease lease(PartialsPool<T>::get());
  Array<T, 1>& partials = lease.array();
  eval(reduce_kernel<T>)
      .global(kReduceGroups * kReduceLocal)
      .local(kReduceLocal)
      .device(device)(in, partials,
                      static_cast<std::uint32_t>(in.length()));
  return finish_reduction(partials);
}

/// Dot product of two vectors.
template <typename T>
T dot(Array<T, 1>& a, Array<T, 1>& b, Device device = Device()) {
  using namespace patterns_detail;
  typename PartialsPool<T>::Lease lease(PartialsPool<T>::get());
  Array<T, 1>& partials = lease.array();
  eval(dot_kernel<T>)
      .global(kReduceGroups * kReduceLocal)
      .local(kReduceLocal)
      .device(device)(a, b, partials,
                      static_cast<std::uint32_t>(a.length()));
  return finish_reduction(partials);
}

}  // namespace HPL

#endif  // HPLREPRO_HPL_PATTERNS_HPP
