/// \file fusion.cpp
/// The lazy eval DAG and the rewrite-rule fusion engine (see fusion.hpp).
///
/// The engine works on the *generated text* of captured kernels: a
/// "simple map" is a kernel whose body is exactly one statement of the
/// form `pW[SUB] = RHS;`, and a reduction consumer is recognised by its
/// canonical grid-stride loop header. Working at this level means every
/// rule's legality condition is checked against what will actually
/// execute, and the synthesized kernel goes through the same
/// codegen -> clc compile -> cache pipeline as any captured kernel.

#include "hpl/fusion.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <mutex>
#include <regex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hpl/codegen.hpp"
#include "hpl/eval.hpp"
#include "support/metrics.hpp"

namespace HPL {
namespace detail {
namespace {

namespace clsim = hplrepro::clsim;

// --- Toggles -------------------------------------------------------------------

bool env_no_fusion() {
  static const bool pinned = [] {
    const char* e = std::getenv("HPL_NO_FUSION");
    return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
  }();
  return pinned;
}

std::atomic<bool>& runtime_enabled() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

std::atomic<bool>& sabotage_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

// --- The DAG -------------------------------------------------------------------

struct Dag {
  std::mutex mutex;  // guards `nodes`
  std::vector<DagNode> nodes;
  /// Outermost: serializes whole flushes so one batch's launch order is
  /// never interleaved with another thread's batch.
  std::mutex flush_mutex;
  std::atomic<std::size_t> pending{0};
};

Dag& dag() {
  // Leaked: flushes can run during static destruction (~Runtime).
  static Dag* d = new Dag;
  return *d;
}

thread_local bool tl_in_flush = false;

// --- Text utilities ------------------------------------------------------------

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

/// Raw body lines (original indentation kept), trailing empties dropped.
std::vector<std::string> split_lines(const std::string& body) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(body.substr(pos));
      break;
    }
    lines.push_back(body.substr(pos, nl - pos));
    pos = nl + 1;
  }
  while (!lines.empty() && trim(lines.back()).empty()) lines.pop_back();
  return lines;
}

/// Position of the ']' matching the '[' at `open`, or npos.
std::size_t match_bracket(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '[') ++depth;
    if (text[i] == ']' && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Rewrites every identifier through `rn`. Hidden dim-size arguments
/// (`p3_d1`) follow their array parameter's mapping.
std::string rename_idents(const std::string& text,
                          const std::map<std::string, std::string>& rn) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (!ident_start(text[i])) {
      out += text[i++];
      continue;
    }
    std::size_t j = i + 1;
    while (j < text.size() && ident_char(text[j])) ++j;
    const std::string id = text.substr(i, j - i);
    auto it = rn.find(id);
    if (it != rn.end()) {
      out += it->second;
    } else {
      bool mapped = false;
      const std::size_t dpos = id.rfind("_d");
      if (dpos != std::string::npos && dpos > 0 &&
          dpos + 2 < id.size()) {
        bool digits = true;
        for (std::size_t k = dpos + 2; k < id.size(); ++k) {
          digits = digits &&
                   std::isdigit(static_cast<unsigned char>(id[k])) != 0;
        }
        if (digits) {
          auto it2 = rn.find(id.substr(0, dpos));
          if (it2 != rn.end()) {
            out += it2->second + id.substr(dpos);
            mapped = true;
          }
        }
      }
      if (!mapped) out += id;
    }
    i = j;
  }
  return out;
}

/// Swaps the idx and idy identifiers (transpose sinking's sigma).
std::string swap_xy(const std::string& text) {
  static const std::map<std::string, std::string> sigma = {{"idx", "idy"},
                                                           {"idy", "idx"}};
  return rename_idents(text, sigma);
}

/// Parses a fused-namespace identifier "f<k>" to its slot, or -1.
int fused_slot(const std::string& id) {
  if (id.size() < 2 || id[0] != 'f') return -1;
  for (std::size_t k = 1; k < id.size(); ++k) {
    if (std::isdigit(static_cast<unsigned char>(id[k])) == 0) return -1;
  }
  return std::atoi(id.c_str() + 1);
}

/// Parses a capture-namespace identifier "p<k>" to its index, or -1.
int param_index_of(const std::string& id) {
  if (id.size() < 2 || id[0] != 'p') return -1;
  for (std::size_t k = 1; k < id.size(); ++k) {
    if (std::isdigit(static_cast<unsigned char>(id[k])) == 0) return -1;
  }
  return std::atoi(id.c_str() + 1);
}

/// One array-element access `name[sub]` found in a text fragment.
struct ElemAccess {
  std::size_t pos = 0;  // start of the identifier
  std::size_t end = 0;  // one past the closing ']'
  int slot = -1;        // parsed from the identifier
  std::string sub;      // subscript text
};

/// All `prefix<digits>[...]` accesses in `text`, left to right.
/// `prefix` is 'f' (fused namespace) or 'p' (capture namespace).
std::vector<ElemAccess> find_accesses(const std::string& text, char prefix) {
  std::vector<ElemAccess> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (!ident_start(text[i])) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < text.size() && ident_char(text[j])) ++j;
    const std::string id = text.substr(i, j - i);
    const int slot = prefix == 'f' ? fused_slot(id) : param_index_of(id);
    if (slot >= 0 && j < text.size() && text[j] == '[') {
      const std::size_t close = match_bracket(text, j);
      if (close != std::string::npos) {
        out.push_back({i, close + 1, slot,
                       text.substr(j + 1, close - j - 1)});
        i = j + 1;  // allow nested accesses inside the subscript
        continue;
      }
    }
    i = j;
  }
  return out;
}

bool ranges_equal(const clsim::NDRange& a, const clsim::NDRange& b) {
  if (a.dims != b.dims) return false;
  for (int d = 0; d < a.dims; ++d) {
    if (a.sizes[d] != b.sizes[d]) return false;
  }
  return true;
}

bool locals_equal(const std::optional<clsim::NDRange>& a,
                  const std::optional<clsim::NDRange>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a.has_value() || ranges_equal(*a, *b);
}

std::size_t range_total(const clsim::NDRange& r) {
  std::size_t total = 1;
  for (int d = 0; d < r.dims; ++d) total *= r.sizes[d];
  return total;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

// --- Pattern matchers ----------------------------------------------------------

/// A "simple map": a kernel whose whole body is `pW[SUB] = RHS;`.
struct MapStmt {
  int lhs_param = -1;
  std::string sub;  // subscript text, capture (p*) namespace
  std::string rhs;  // right-hand side, capture (p*) namespace
};

std::optional<MapStmt> parse_simple_map(const DagNode& node) {
  const CachedKernel& ck = *node.cached;
  if (ck.body.empty() || ck.params.size() != node.args.size()) {
    return std::nullopt;
  }
  std::vector<std::string> stmts;
  for (const auto& raw : split_lines(ck.body)) {
    std::string t = trim(raw);
    if (!t.empty()) stmts.push_back(std::move(t));
  }
  if (stmts.size() != 1) return std::nullopt;
  const std::string& line = stmts[0];
  if (line.back() != ';' || line.find('{') != std::string::npos ||
      line.find('}') != std::string::npos) {
    return std::nullopt;
  }
  // LHS: p<digits>[
  std::size_t j = 0;
  if (line[j] != 'p') return std::nullopt;
  std::size_t k = j + 1;
  while (k < line.size() && std::isdigit(static_cast<unsigned char>(line[k]))) {
    ++k;
  }
  if (k == j + 1 || k >= line.size() || line[k] != '[') return std::nullopt;
  const int lhs = std::atoi(line.c_str() + 1);
  const std::size_t close = match_bracket(line, k);
  if (close == std::string::npos) return std::nullopt;
  if (line.compare(close + 1, 3, " = ") != 0) return std::nullopt;
  MapStmt ms;
  ms.lhs_param = lhs;
  ms.sub = line.substr(k + 1, close - k - 1);
  ms.rhs = line.substr(close + 4, line.size() - close - 5);
  if (ms.rhs.find(';') != std::string::npos) return std::nullopt;
  // Sanity: the LHS is a written array parameter, and nothing else is
  // written (a one-statement map cannot write more, but the access flags
  // are the authoritative record).
  if (lhs < 0 || static_cast<std::size_t>(lhs) >= ck.params.size()) {
    return std::nullopt;
  }
  if (ck.params[static_cast<std::size_t>(lhs)].ndim < 1 ||
      node.args[static_cast<std::size_t>(lhs)].impl == nullptr ||
      !ck.params[static_cast<std::size_t>(lhs)].access.written) {
    return std::nullopt;
  }
  for (std::size_t p = 0; p < ck.params.size(); ++p) {
    if (p != static_cast<std::size_t>(lhs) && ck.params[p].access.written) {
      return std::nullopt;
    }
  }
  return ms;
}

/// The canonical grid-stride reduction consumer (patterns.hpp reduce/dot):
///   for (vN = ((uint)idx); (vN < pK); vN += ((uint)szx)) {
struct ReduceShape {
  std::vector<std::string> raw_lines;
  std::size_t loop_line = 0;
  std::size_t loop_end = 0;  // line index of the matching '}'
  std::string sub_var;       // vN
  int n_param = -1;          // pK: the element-count scalar
};

std::optional<ReduceShape> parse_reduce(const DagNode& node) {
  const CachedKernel& ck = *node.cached;
  if (ck.body.empty() || ck.params.size() != node.args.size()) {
    return std::nullopt;
  }
  static const std::regex loop_re(
      R"(^for \((v\d+) = \(\(uint\)idx\); \(\1 < (p\d+)\); \1 \+= \(\(uint\)szx\)\) \{$)");
  ReduceShape rs;
  rs.raw_lines = split_lines(ck.body);
  bool found = false;
  for (std::size_t i = 0; i < rs.raw_lines.size(); ++i) {
    std::smatch m;
    const std::string t = trim(rs.raw_lines[i]);
    if (std::regex_match(t, m, loop_re)) {
      if (found) return std::nullopt;  // two grid-stride loops: leave it be
      found = true;
      rs.loop_line = i;
      rs.sub_var = m[1].str();
      rs.n_param = param_index_of(m[2].str());
    }
  }
  if (!found || rs.n_param < 0 ||
      static_cast<std::size_t>(rs.n_param) >= ck.params.size()) {
    return std::nullopt;
  }
  // The loop bound must be a scalar parameter.
  if (ck.params[static_cast<std::size_t>(rs.n_param)].ndim != 0 ||
      node.args[static_cast<std::size_t>(rs.n_param)].impl != nullptr) {
    return std::nullopt;
  }
  // Find the matching close brace by depth counting over trimmed lines.
  int depth = 1;
  for (std::size_t i = rs.loop_line + 1; i < rs.raw_lines.size(); ++i) {
    const std::string t = trim(rs.raw_lines[i]);
    if (!t.empty() && t.back() == '{') ++depth;
    if (t == "}" && --depth == 0) {
      rs.loop_end = i;
      return rs;
    }
  }
  return std::nullopt;
}

// --- Group synthesis (map-map fusion + transpose sinking) ----------------------

/// What the group knows about an array it has (so far) written.
struct GroupWrite {
  std::string sub;   // store subscript, fused (f*) namespace
  std::string temp;  // the scalar temporary holding the stored value
  std::string rhs;   // producer RHS, fused namespace, pre-substitution
  bool recompute_ok = false;  // sigma-swap recompute is legal
};

struct Group {
  std::vector<std::size_t> members;  // indices into the flush batch
  DeviceEntry* dev = nullptr;
  clsim::NDRange global{};
  std::optional<clsim::NDRange> local;
  std::vector<ParamSig> params;  // fused params, names f<slot>
  std::vector<NodeArg> args;     // parallel to params
  std::map<const ArrayImpl*, std::size_t> slot;
  std::map<const ArrayImpl*, GroupWrite> writes;
  std::map<const ArrayImpl*, std::set<std::string>> reads;  // kept loads
  std::vector<std::string> stmts;  // fused body statements (trimmed)
  std::vector<std::pair<std::string, std::string>> predefined;
  int next_temp = 0;
  std::uint64_t bytes_saved = 0;
  std::uint64_t rules = 0;
  bool metrics_on = false;
  double eval_start_us = 0;
  double capture_us = 0;
  double codegen_us = 0;
};

struct RewriteTotals {
  std::uint64_t rules = 0;
  std::uint64_t bytes = 0;
};

void merge_predefined(
    std::vector<std::pair<std::string, std::string>>& into,
    const std::vector<std::pair<std::string, std::string>>& from) {
  for (const auto& pv : from) {
    bool present = false;
    for (const auto& have : into) present = present || have.first == pv.first;
    if (!present) into.push_back(pv);
  }
}

/// Injective canonical 2-D linearised subscript `(A) * fK_d1 + (B)` with
/// {A,B} == {idx,idy}; the only store shape transpose sinking accepts.
bool canonical_2d_sub(const std::string& sub) {
  static const std::regex re(
      R"(^\((idx|idy)\) \* f\d+_d1 \+ \((idx|idy)\)$)");
  std::smatch m;
  if (!std::regex_match(sub, m, re)) return false;
  return m[1].str() != m[2].str();
}

/// For recompute (transpose sinking), the producer RHS must only mention
/// fused parameters, idx/idy, and type names (cast spellings).
bool recompute_pure(const std::string& rhs, const std::vector<ParamSig>& params) {
  static const std::set<std::string> whitelist = {
      "idx",   "idy",  "uint",  "int",   "float", "double", "long",
      "ulong", "char", "uchar", "short", "ushort", "size_t"};
  std::size_t i = 0;
  while (i < rhs.size()) {
    if (!ident_start(rhs[i])) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < rhs.size() && ident_char(rhs[j])) ++j;
    const std::string id = rhs.substr(i, j - i);
    i = j;
    if (whitelist.count(id) != 0) continue;
    const int slot = fused_slot(id);
    if (slot >= 0 && static_cast<std::size_t>(slot) < params.size()) continue;
    // hidden dim of a fused param?
    const std::size_t dpos = id.rfind("_d");
    if (dpos != std::string::npos &&
        fused_slot(id.substr(0, dpos)) >= 0) {
      continue;
    }
    return false;
  }
  return true;
}

/// Tries to merge `node` (a simple map) into the group. Transactional: on
/// failure the group is untouched and the caller closes it. An empty
/// group adopts the node's geometry and always succeeds.
bool try_append(Group& g, std::size_t node_idx, const DagNode& node,
                const MapStmt& ms) {
  const CachedKernel& ck = *node.cached;
  if (g.members.empty()) {
    g.dev = node.dev;
    g.global = node.global;
    g.local = node.local;
    g.metrics_on = node.metrics_on;
    g.eval_start_us = node.eval_start_us;
    g.capture_us = node.capture_us;
    g.codegen_us = node.codegen_us;
  } else if (node.dev != g.dev || !ranges_equal(node.global, g.global) ||
             !locals_equal(node.local, g.local)) {
    return false;
  }

  // Tentative fused parameter table + rename map for this node.
  auto params = g.params;
  auto args = g.args;
  auto slot = g.slot;
  std::map<std::string, std::string> rn;
  for (std::size_t j = 0; j < ck.params.size(); ++j) {
    std::size_t s;
    if (node.args[j].impl != nullptr) {
      const ArrayImpl* key = node.args[j].impl.get();
      auto it = slot.find(key);
      if (it != slot.end()) {
        s = it->second;
        if (params[s].type_name != ck.params[j].type_name ||
            params[s].ndim != ck.params[j].ndim) {
          return false;  // same impl at incompatible signatures
        }
        params[s].access.written =
            params[s].access.written || ck.params[j].access.written;
      } else {
        s = params.size();
        ParamSig ps = ck.params[j];
        ps.name = "f" + std::to_string(s);
        params.push_back(std::move(ps));
        args.push_back(node.args[j]);
        slot.emplace(key, s);
      }
    } else {
      s = params.size();
      ParamSig ps = ck.params[j];
      ps.name = "f" + std::to_string(s);
      params.push_back(std::move(ps));
      args.push_back(node.args[j]);
    }
    rn["p" + std::to_string(j)] = params[s].name;
  }

  const ArrayImpl* W =
      node.args[static_cast<std::size_t>(ms.lhs_param)].impl.get();
  const std::string lhs_name =
      rn.at("p" + std::to_string(ms.lhs_param));
  std::string sub = rename_idents(ms.sub, rn);
  std::string rhs = rename_idents(ms.rhs, rn);

  // The store subscript must not read any group-written array (keep the
  // rules simple: a scatter through a produced index stays unfused).
  for (const auto& acc : find_accesses(sub, 'f')) {
    const ArrayImpl* impl = args[static_cast<std::size_t>(acc.slot)].impl.get();
    if (impl != nullptr && g.writes.count(impl) != 0) return false;
  }

  // WAR/WAW hazards on the written array: earlier group statements may
  // only have touched W at this exact per-item site.
  {
    auto rit = g.reads.find(W);
    if (rit != g.reads.end() &&
        (rit->second.size() != 1 || rit->second.count(sub) == 0)) {
      return false;
    }
    auto wit = g.writes.find(W);
    if (wit != g.writes.end() && wit->second.sub != sub) return false;
  }

  // Fold group-written loads in the RHS into their temporaries (map-map
  // fusion) or sigma-swapped recomputes (transpose sinking). Repeat until
  // a full scan replaces nothing, so nested/introduced accesses settle.
  std::uint64_t delta_bytes = 0;
  std::uint64_t delta_rules = 0;
  bool replaced_any = false;
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& acc : find_accesses(rhs, 'f')) {
      if (static_cast<std::size_t>(acc.slot) >= args.size()) continue;
      const ArrayImpl* impl =
          args[static_cast<std::size_t>(acc.slot)].impl.get();
      if (impl == nullptr) continue;
      auto wit = g.writes.find(impl);
      if (wit == g.writes.end()) continue;
      const GroupWrite& w = wit->second;
      std::string repl;
      if (acc.sub == w.sub) {
        repl = w.temp;
      } else if (w.recompute_ok && swap_xy(w.sub) == acc.sub) {
        repl = "(" + swap_xy(w.rhs) + ")";
        delta_rules += 1;  // transpose sinking
      } else {
        return false;  // unmatched load of a produced array
      }
      delta_bytes += range_total(g.global) * impl->elem_size;
      rhs = rhs.substr(0, acc.pos) + repl + rhs.substr(acc.end);
      replaced_any = true;
      changed = true;
      break;  // rescan: positions shifted
    }
  }

  // Remaining loads stay in the fused kernel; record them (hazard state
  // for later appends) after checking the new write against them.
  std::map<const ArrayImpl*, std::set<std::string>> new_reads;
  for (const auto& acc : find_accesses(rhs, 'f')) {
    if (static_cast<std::size_t>(acc.slot) >= args.size()) continue;
    const ArrayImpl* impl = args[static_cast<std::size_t>(acc.slot)].impl.get();
    if (impl != nullptr) new_reads[impl].insert(acc.sub);
  }
  for (const auto& acc : find_accesses(sub, 'f')) {
    if (static_cast<std::size_t>(acc.slot) >= args.size()) continue;
    const ArrayImpl* impl = args[static_cast<std::size_t>(acc.slot)].impl.get();
    if (impl != nullptr) new_reads[impl].insert(acc.sub);
  }
  {
    auto it = new_reads.find(W);
    if (it != new_reads.end() &&
        (it->second.size() != 1 || it->second.count(sub) == 0)) {
      return false;  // this statement reads W at a site it doesn't rewrite
    }
  }

  // Transpose sinking legality for *future* consumers of this store: a
  // square 2-D range, the canonical injective store site, and an RHS free
  // of produced-array loads (so recomputing it elsewhere is pure).
  bool recompute_ok = false;
  if (!replaced_any && g.global.dims == 2 &&
      g.global.sizes[0] == g.global.sizes[1] && canonical_2d_sub(sub) &&
      recompute_pure(rhs, params)) {
    recompute_ok = true;
  }

  // Commit.
  g.params = std::move(params);
  g.args = std::move(args);
  g.slot = std::move(slot);
  for (auto& [impl, subs] : new_reads) {
    g.reads[impl].insert(subs.begin(), subs.end());
  }
  const std::string temp = "ft" + std::to_string(g.next_temp++);
  const std::string& type =
      g.params[g.slot.at(W)].type_name;
  std::string stored = rhs;
  if (sabotage_flag().load(std::memory_order_relaxed)) {
    // Deliberately wrong rewrite (differential self-test): off-by-one.
    stored = "(" + rhs + ") + ((" + type + ")1)";
  }
  g.stmts.push_back(type + " " + temp + " = " + stored + ";");
  g.stmts.push_back(lhs_name + "[" + sub + "] = " + temp + ";");
  g.writes[W] = GroupWrite{sub, temp, rhs, recompute_ok};
  merge_predefined(g.predefined, ck.predefined);
  g.members.push_back(node_idx);
  if (g.members.size() >= 2) delta_rules += 1;  // the map-map merge itself
  g.bytes_saved += delta_bytes;
  g.rules += delta_rules;
  return true;
}

/// Post-pass: recompute each array parameter's `read` flag from the final
/// body (a load folded into a temporary is no longer a read; the store
/// itself is not a read). Scalars keep read=true.
void finalize_read_flags(std::vector<ParamSig>& params,
                         const std::string& body) {
  for (auto& p : params) {
    if (p.ndim >= 1) p.access.read = false;
  }
  for (const auto& raw : split_lines(body)) {
    const std::string line = trim(raw);
    // Identify a store's base identifier so it is not counted as a read.
    std::size_t store_base_pos = std::string::npos;
    if (!line.empty() && ident_start(line[0])) {
      std::size_t j = 0;
      while (j < line.size() && ident_char(line[j])) ++j;
      if (j < line.size() && line[j] == '[') {
        const std::size_t close = match_bracket(line, j);
        if (close != std::string::npos &&
            line.compare(close + 1, 3, " = ") == 0) {
          store_base_pos = 0;
        }
      }
    }
    std::size_t i = 0;
    while (i < line.size()) {
      if (!ident_start(line[i])) {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < line.size() && ident_char(line[j])) ++j;
      const std::string id = line.substr(i, j - i);
      const int slot = fused_slot(id);
      if (slot >= 0 && static_cast<std::size_t>(slot) < params.size() &&
          params[static_cast<std::size_t>(slot)].ndim >= 1 &&
          i != store_base_pos) {
        params[static_cast<std::size_t>(slot)].access.read = true;
      }
      i = j;
    }
  }
}

std::string fused_cache_key(
    const std::vector<ParamSig>& params, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& predefined) {
  std::string key;
  for (const auto& p : params) {
    key += p.name + ":" + p.type_name + ":" + std::to_string(p.ndim) + ":" +
           std::to_string(static_cast<int>(p.flag)) + ":" +
           (p.access.read ? "r" : "-") + (p.access.written ? "w" : "-") + ";";
  }
  key += "|" + body + "|";
  for (const auto& pv : predefined) key += pv.first + "=" + pv.second + ";";
  return key;
}

CachedKernel* intern_fused(Runtime& rt, std::vector<ParamSig> params,
                           const std::string& body,
                           std::vector<std::pair<std::string, std::string>>
                               predefined) {
  finalize_read_flags(params, body);
  const std::string key = fused_cache_key(params, body, predefined);
  CachedKernel* ck = rt.find_fused_kernel(key);
  if (ck != nullptr) return ck;
  CachedKernel fresh;
  fresh.name = "hpl_fused_" + hex16(fnv1a(key));
  fresh.params = std::move(params);
  fresh.body = body;
  fresh.predefined = std::move(predefined);
  fresh.source = generate_kernel_source(fresh.name, fresh.params, fresh.body,
                                        fresh.predefined);
  return &rt.insert_fused_kernel(key, std::move(fresh));
}

/// Closes a group: one member passes through unchanged; two or more
/// become a single fused kernel.
void close_group(Runtime& rt, Group& g, std::vector<DagNode>& batch,
                 std::vector<DagNode>& out, RewriteTotals& totals) {
  if (g.members.empty()) return;
  if (g.members.size() == 1) {
    out.push_back(std::move(batch[g.members[0]]));
    g = Group{};
    return;
  }
  std::string body;
  for (const auto& s : g.stmts) body += "  " + s + "\n";
  CachedKernel* ck = intern_fused(rt, g.params, body, g.predefined);
  DagNode fused;
  fused.cached = ck;
  fused.dev = g.dev;
  fused.global = g.global;
  fused.local = g.local;
  fused.args = std::move(g.args);
  fused.metrics_on = g.metrics_on;
  fused.eval_start_us = g.eval_start_us;
  fused.capture_us = g.capture_us;
  fused.codegen_us = g.codegen_us;
  out.push_back(std::move(fused));
  totals.rules += g.rules;
  totals.bytes += g.bytes_saved;
  g = Group{};
}

// --- Map-reduce fusion ---------------------------------------------------------

/// Tries to inline the whole group into `node`'s grid-stride loop. On
/// success `out_node` is the fused replacement for group+consumer and the
/// group is consumed; on failure everything is untouched.
bool try_fuse_reduce(Runtime& rt, Group& g, const DagNode& node,
                     const ReduceShape& rs, DagNode& out_node,
                     RewriteTotals& totals) {
  const CachedKernel& ck = *node.cached;
  if (node.dev != g.dev) return false;

  // The group must be idx-pure 1-D over exactly the reduction's domain.
  if (g.global.dims != 1) return false;
  for (const auto& [impl, w] : g.writes) {
    (void)impl;
    if (w.sub != "idx") return false;
  }
  for (const auto& pv : g.predefined) {
    if (pv.first != "idx") return false;
  }
  const ScalarValue& n_arg =
      node.args[static_cast<std::size_t>(rs.n_param)].scalar;
  const std::uint64_t n_value = n_arg.kind == ScalarValue::Kind::I64
                                    ? static_cast<std::uint64_t>(n_arg.i)
                                    : n_arg.u;
  if (n_value == 0 || range_total(g.global) != n_value) return false;

  // Classify the consumer's array parameters against the group.
  for (std::size_t j = 0; j < ck.params.size(); ++j) {
    const ArrayImpl* impl = node.args[j].impl.get();
    if (impl == nullptr) continue;
    const bool in_group = g.slot.count(impl) != 0;
    const bool group_written = g.writes.count(impl) != 0;
    if (ck.params[j].access.written && in_group) return false;
    if (!group_written) continue;
    // Every mention of this parameter must be a `pj[SUB]` load inside the
    // grid-stride loop (exactly the per-element consumption the group's
    // in-loop store precedes).
    const std::string pname = "p" + std::to_string(j);
    for (std::size_t li = 0; li < rs.raw_lines.size(); ++li) {
      const std::string& line = rs.raw_lines[li];
      std::size_t i = 0;
      while (i < line.size()) {
        if (!ident_start(line[i])) {
          ++i;
          continue;
        }
        std::size_t e = i + 1;
        while (e < line.size() && ident_char(line[e])) ++e;
        if (line.compare(i, e - i, pname) == 0) {
          if (li <= rs.loop_line || li >= rs.loop_end) return false;
          if (e >= line.size() || line[e] != '[') return false;
          const std::size_t close = match_bracket(line, e);
          if (close == std::string::npos ||
              line.substr(e + 1, close - e - 1) != rs.sub_var) {
            return false;
          }
          i = close + 1;
          continue;
        }
        i = e;
      }
    }
  }

  // Merge the consumer's parameters into the fused table.
  auto params = g.params;
  auto args = g.args;
  auto slot = g.slot;
  std::map<std::string, std::string> rn;
  for (std::size_t j = 0; j < ck.params.size(); ++j) {
    std::size_t s;
    if (node.args[j].impl != nullptr) {
      const ArrayImpl* key = node.args[j].impl.get();
      auto it = slot.find(key);
      if (it != slot.end()) {
        s = it->second;
        if (params[s].type_name != ck.params[j].type_name ||
            params[s].ndim != ck.params[j].ndim) {
          return false;
        }
        params[s].access.written =
            params[s].access.written || ck.params[j].access.written;
      } else {
        s = params.size();
        ParamSig ps = ck.params[j];
        ps.name = "f" + std::to_string(s);
        params.push_back(std::move(ps));
        args.push_back(node.args[j]);
        slot.emplace(key, s);
      }
    } else {
      s = params.size();
      ParamSig ps = ck.params[j];
      ps.name = "f" + std::to_string(s);
      params.push_back(std::move(ps));
      args.push_back(node.args[j]);
    }
    rn["p" + std::to_string(j)] = params[s].name;
  }

  // Rename the consumer body, splice the group's statements into the
  // loop (idx -> the loop's stride variable), and fold the now-local
  // loads into the group temporaries.
  std::map<std::string, std::string> group_temps;  // fused name -> temp
  for (const auto& [impl, w] : g.writes) {
    group_temps["f" + std::to_string(g.slot.at(impl))] = w.temp;
  }
  std::uint64_t reduce_bytes = 0;
  std::vector<std::string> lines;
  lines.reserve(rs.raw_lines.size() + g.stmts.size());
  const std::string loop_indent_s =
      rs.raw_lines[rs.loop_line].substr(
          0, rs.raw_lines[rs.loop_line].find_first_not_of(' '));
  for (std::size_t li = 0; li < rs.raw_lines.size(); ++li) {
    std::string line = rename_idents(rs.raw_lines[li], rn);
    if (li > rs.loop_line && li < rs.loop_end) {
      // Fold loads of group-written arrays at [SUB] into the temporaries.
      for (bool changed = true; changed;) {
        changed = false;
        for (const auto& acc : find_accesses(line, 'f')) {
          const std::string base = "f" + std::to_string(acc.slot);
          auto it = group_temps.find(base);
          if (it == group_temps.end() || acc.sub != rs.sub_var) continue;
          const ArrayImpl* impl = args[static_cast<std::size_t>(acc.slot)]
                                      .impl.get();
          reduce_bytes += n_value * impl->elem_size;
          line = line.substr(0, acc.pos) + it->second + line.substr(acc.end);
          changed = true;
          break;
        }
      }
    }
    lines.push_back(std::move(line));
    if (li == rs.loop_line) {
      std::map<std::string, std::string> to_sub{{"idx", rs.sub_var}};
      for (const auto& s : g.stmts) {
        lines.push_back(loop_indent_s + "  " + rename_idents(s, to_sub));
      }
    }
  }
  std::string body;
  for (const auto& l : lines) body += l + "\n";

  auto predefined = ck.predefined;
  merge_predefined(predefined, g.predefined);
  CachedKernel* fused_ck =
      intern_fused(rt, std::move(params), body, std::move(predefined));

  out_node = DagNode{};
  out_node.cached = fused_ck;
  out_node.dev = node.dev;
  out_node.global = node.global;
  out_node.local = node.local;
  out_node.args = std::move(args);
  out_node.metrics_on = g.metrics_on || node.metrics_on;
  out_node.eval_start_us = g.eval_start_us;
  out_node.capture_us = g.capture_us;
  out_node.codegen_us = g.codegen_us;
  totals.rules += g.rules + g.members.size();  // one rule per map inlined
  totals.bytes += g.bytes_saved + reduce_bytes;
  g = Group{};
  return true;
}

// --- Dead-temporary elimination ------------------------------------------------

/// Store subscript normalised across capture namespaces: the LHS param
/// becomes "@W"; any other parameter mention disqualifies (its name would
/// not be comparable between producer and consumer).
std::optional<std::string> normalize_own_sub(const std::string& sub,
                                             int lhs_param) {
  const std::string own = "p" + std::to_string(lhs_param);
  std::string out;
  std::size_t i = 0;
  while (i < sub.size()) {
    if (!ident_start(sub[i])) {
      out += sub[i++];
      continue;
    }
    std::size_t j = i + 1;
    while (j < sub.size() && ident_char(sub[j])) ++j;
    const std::string id = sub.substr(i, j - i);
    if (id == own) {
      out += "@W";
    } else if (id.compare(0, own.size(), own) == 0 &&
               id.size() > own.size() && id[own.size()] == '_') {
      out += "@W" + id.substr(own.size());
    } else if (param_index_of(id) >= 0 ||
               (id[0] == 'p' && id.find("_d") != std::string::npos)) {
      return std::nullopt;  // foreign parameter: not comparable
    } else {
      out += id;  // predefined variable (idx, idy, ...)
    }
    i = j;
  }
  return out;
}

/// Does the consumer statement read `W` anywhere (RHS or subscript)?
bool stmt_reads_impl(const DagNode& node, const MapStmt& ms,
                     const ArrayImpl* W) {
  const std::string text = ms.sub + " " + ms.rhs;
  for (const auto& acc : find_accesses(text, 'p')) {
    if (static_cast<std::size_t>(acc.slot) < node.args.size() &&
        node.args[static_cast<std::size_t>(acc.slot)].impl.get() == W) {
      return true;
    }
  }
  // A bare mention (no subscript) cannot read elements, but be
  // conservative: any identifier bound to W counts.
  std::size_t i = 0;
  while (i < text.size()) {
    if (!ident_start(text[i])) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < text.size() && ident_char(text[j])) ++j;
    const int idx = param_index_of(text.substr(i, j - i));
    if (idx >= 0 && static_cast<std::size_t>(idx) < node.args.size() &&
        node.args[static_cast<std::size_t>(idx)].impl.get() == W) {
      return true;
    }
    i = j;
  }
  return false;
}

std::uint64_t map_traffic_bytes(const DagNode& node, const MapStmt& ms) {
  const std::size_t total = range_total(node.global);
  const ArrayImpl* W =
      node.args[static_cast<std::size_t>(ms.lhs_param)].impl.get();
  std::uint64_t bytes = total * W->elem_size;  // the store
  for (const auto& acc : find_accesses(ms.rhs, 'p')) {
    if (static_cast<std::size_t>(acc.slot) >= node.args.size()) continue;
    const ArrayImpl* impl =
        node.args[static_cast<std::size_t>(acc.slot)].impl.get();
    if (impl != nullptr) bytes += total * impl->elem_size;
  }
  return bytes;
}

/// Drops maps whose output the immediately-following map fully overwrites
/// (same array, same store site, same range) without reading it.
void dead_temp_pass(std::vector<DagNode>& batch, RewriteTotals& totals) {
  std::size_t i = 0;
  while (i + 1 < batch.size()) {
    const auto mp = parse_simple_map(batch[i]);
    const auto mc = parse_simple_map(batch[i + 1]);
    bool drop = false;
    if (mp.has_value() && mc.has_value()) {
      const DagNode& P = batch[i];
      const DagNode& C = batch[i + 1];
      const ArrayImpl* W =
          P.args[static_cast<std::size_t>(mp->lhs_param)].impl.get();
      if (C.args[static_cast<std::size_t>(mc->lhs_param)].impl.get() == W &&
          P.dev == C.dev && ranges_equal(P.global, C.global)) {
        const auto sp = normalize_own_sub(mp->sub, mp->lhs_param);
        const auto sc = normalize_own_sub(mc->sub, mc->lhs_param);
        if (sp.has_value() && sc.has_value() && *sp == *sc &&
            !stmt_reads_impl(C, *mc, W)) {
          drop = true;
        }
      }
    }
    if (drop) {
      totals.rules += 1;
      totals.bytes += map_traffic_bytes(batch[i], *mp);
      batch.erase(batch.begin() +
                  static_cast<std::vector<DagNode>::difference_type>(i));
      if (i > 0) --i;  // the drop may have created a new adjacency behind
    } else {
      ++i;
    }
  }
}

// --- The rewrite driver --------------------------------------------------------

void rewrite_batch(Runtime& rt, std::vector<DagNode>& batch,
                   std::vector<DagNode>& out, RewriteTotals& totals) {
  dead_temp_pass(batch, totals);
  Group g;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    DagNode& node = batch[i];
    const auto ms = parse_simple_map(node);
    if (ms.has_value()) {
      if (try_append(g, i, node, *ms)) continue;
      close_group(rt, g, batch, out, totals);
      if (!try_append(g, i, node, *ms)) {
        out.push_back(std::move(node));  // cannot even self-start (paranoia)
      }
      continue;
    }
    if (!g.members.empty()) {
      const auto rs = parse_reduce(node);
      if (rs.has_value()) {
        DagNode fused;
        if (try_fuse_reduce(rt, g, node, *rs, fused, totals)) {
          out.push_back(std::move(fused));
          continue;
        }
      }
    }
    close_group(rt, g, batch, out, totals);
    out.push_back(std::move(node));
  }
  close_group(rt, g, batch, out, totals);
}

}  // namespace

// --- Public/driver entry points ------------------------------------------------

bool fusion_active() {
  return !env_no_fusion() &&
         runtime_enabled().load(std::memory_order_relaxed);
}

void record_node(DagNode node) {
  Dag& d = dag();
  std::lock_guard<std::mutex> lock(d.mutex);
  d.nodes.push_back(std::move(node));
  d.pending.store(d.nodes.size(), std::memory_order_release);
}

void flush_dag() {
  Dag& d = dag();
  if (d.pending.load(std::memory_order_acquire) == 0) return;
  if (tl_in_flush) return;  // forcing point reached from inside a launch
  std::lock_guard<std::mutex> flush_lock(d.flush_mutex);
  std::vector<DagNode> batch;
  {
    std::lock_guard<std::mutex> lock(d.mutex);
    batch.swap(d.nodes);
    d.pending.store(0, std::memory_order_release);
  }
  if (batch.empty()) return;
  tl_in_flush = true;
  struct FlushGuard {
    ~FlushGuard() { tl_in_flush = false; }
  } guard;

  Runtime& rt = Runtime::get();
  const std::size_t unfused = batch.size();
  RewriteTotals totals;
  std::vector<DagNode> final_nodes;
  final_nodes.reserve(batch.size());
  rewrite_batch(rt, batch, final_nodes, totals);

  {
    namespace metrics = hplrepro::metrics;
    static auto& flushes = metrics::counter("fusion.dag_flushes");
    static auto& unfused_c = metrics::counter("fusion.unfused_launches");
    static auto& actual_c = metrics::counter("fusion.actual_launches");
    static auto& saved_c = metrics::counter("fusion.launches_saved");
    static auto& rules_c = metrics::counter("fusion.rules_applied");
    static auto& bytes_c = metrics::counter("fusion.bytes_traffic_saved");
    flushes.add(1);
    unfused_c.add(unfused);
    actual_c.add(final_nodes.size());
    saved_c.add(unfused - final_nodes.size());
    rules_c.add(totals.rules);
    bytes_c.add(totals.bytes);
  }

  // Launch everything; like the async queue, the first error surfaces
  // after the whole batch has been submitted (the user-side effects of
  // the later evals already happened when they were recorded).
  std::exception_ptr first_error;
  for (auto& node : final_nodes) {
    try {
      launch_node(rt, node);
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void launch_node(Runtime& rt, DagNode& node) {
  hplrepro::Stopwatch host_watch;
  const bool metrics_on = node.metrics_on;
  DeviceEntry& dev = *node.dev;
  CachedKernel& cached = *node.cached;

  bool cache_hit = false;
  double build_us = 0;
  BuiltKernel* built_slot;
  if (metrics_on) {
    hplrepro::Stopwatch build_watch;
    built_slot = &rt.build_for(cached, dev, &cache_hit);
    if (!cache_hit) build_us = build_watch.seconds() * 1e6;
  } else {
    built_slot = &rt.build_for(cached, dev, &cache_hit);
  }
  BuiltKernel& built = *built_slot;

  std::vector<BoundArray> arrays;
  TransferCapture transfer_capture;
  double marshal_us = 0;
  clsim::Event event;
  {
    std::lock_guard<std::mutex> launch_lock(*built.launch_mutex);
    {
      hplrepro::trace::Span span("marshal", "hpl");
      std::optional<hplrepro::Stopwatch> watch;
      if (metrics_on) watch.emplace();
      span.arg("kernel", cached.name);
      for (std::size_t i = 0; i < node.args.size(); ++i) {
        const NodeArg& a = node.args[i];
        const unsigned ui = static_cast<unsigned>(i);
        if (a.impl != nullptr) {
          const ParamAccess access = cached.params[i].access;
          if (access.read) rt.ensure_on_device(*a.impl, dev);
          auto& copy = rt.device_copy(*a.impl, dev);
          built.kernel->set_arg(ui, *copy.buffer);
          arrays.push_back({a.impl, access.written, a.ndim, &copy});
        } else {
          switch (a.scalar.kind) {
            case ScalarValue::Kind::F32:
              built.kernel->set_arg(ui, static_cast<float>(a.scalar.f));
              break;
            case ScalarValue::Kind::F64:
              built.kernel->set_arg(ui, a.scalar.f);
              break;
            case ScalarValue::Kind::I64:
              built.kernel->set_arg(ui, a.scalar.i);
              break;
            case ScalarValue::Kind::U64:
              built.kernel->set_arg(ui, a.scalar.u);
              break;
          }
        }
      }
      if (watch.has_value()) marshal_us = watch->seconds() * 1e6;
    }

    // Hidden dimension-size arguments (rank >= 2), in parameter order.
    unsigned hidden = static_cast<unsigned>(node.args.size());
    for (const auto& bound : arrays) {
      for (int d = 1; d < bound.ndim; ++d) {
        built.kernel->set_arg(
            hidden++,
            static_cast<std::uint32_t>(
                bound.impl->dims[static_cast<std::size_t>(d)]));
      }
    }

    // Cross-queue writes into any bound buffer (pending d2d merges) are
    // not serialized by this queue; carry them in the wait-list.
    std::vector<clsim::Event> deps;
    for (const auto& bound : arrays) {
      for (const auto& e : bound.copy->pending_d2d) {
        if (!e.complete()) deps.push_back(e);
      }
      bound.copy->pending_d2d.clear();
    }

    hplrepro::trace::Span span("launch", "hpl");
    try {
      event = dev.queue->enqueue_ndrange_kernel(*built.kernel, node.global,
                                                node.local, std::move(deps));
    } catch (const hplrepro::clc::TrapError&) {
      // Sync mode surfaces the deferred execution error at the enqueue;
      // account it exactly like an async failed launch, then rethrow.
      rt.with_prof([&](ProfileSnapshot& p) { p.kernel_launches += 1; });
      profiler_record_failed_launch(cached.name, dev.device.name(),
                                    cache_hit);
      throw;
    }
    if (span.active()) {
      span.arg("kernel", cached.name)
          .arg("device", dev.device.name())
          .arg("cache_hit", static_cast<std::uint64_t>(cache_hit))
          .arg("opt_report", built.program->opt_report().summary());
    }
  }

  for (const auto& bound : arrays) {
    if (bound.written) rt.mark_device_written(*bound.impl, dev);
    bound.copy->last_event = event;  // incoming d2d must order after us
  }

  const double enqueue_us = metrics_on ? hplrepro::trace::now_us() : 0.0;
  account_launch_settled(rt, event, cached.name, dev.device.name(),
                         cache_hit, metrics_on, transfer_capture.take(),
                         node.eval_start_us, enqueue_us, node.capture_us,
                         node.codegen_us, build_us, marshal_us);

  const double sim_wall =
      clsim::async_enabled() ? 0.0 : event.wall_seconds();
  rt.with_prof([&](ProfileSnapshot& p) {
    p.kernel_launches += 1;
    p.host_seconds += host_watch.seconds() - sim_wall;
  });
  if (metrics_on) {
    static auto& launches = hplrepro::metrics::counter("hpl.eval.launches");
    static auto& host_ns = hplrepro::metrics::histogram("hpl.eval.host_ns");
    launches.add_always(1);
    const double host_s = host_watch.seconds() - sim_wall;
    host_ns.record_always(
        host_s > 0 ? static_cast<std::uint64_t>(host_s * 1e9) : 0);
  }
}

void apply_fusion_build_option(bool enabled) { set_fusion_enabled(enabled); }

void set_fusion_sabotage_for_test(bool on) {
  sabotage_flag().store(on, std::memory_order_relaxed);
}

}  // namespace detail

void flush() { detail::flush_dag(); }

void set_fusion_enabled(bool enabled) {
  // Flush first so the toggle is a clean seam: nodes recorded before it
  // fuse (or not) under the old setting; later evals see the new one.
  detail::flush_dag();
  detail::runtime_enabled().store(enabled, std::memory_order_relaxed);
}

bool fusion_enabled() { return detail::fusion_active(); }

}  // namespace HPL
