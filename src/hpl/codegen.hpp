#ifndef HPLREPRO_HPL_CODEGEN_HPP
#define HPLREPRO_HPL_CODEGEN_HPP

/// \file codegen.hpp
/// Generates the complete OpenCL C kernel source from a captured body and
/// the formal-parameter signatures.

#include <string>
#include <utility>
#include <vector>

#include "hpl/builder.hpp"

namespace HPL {
namespace detail {

/// Builds: `__kernel void <name>(<params>, <hidden dim args>) { <body> }`.
/// Array parameters become address-space-qualified pointers; parameters the
/// kernel never writes become const pointers. Every rank>=2 array parameter
/// contributes hidden `uint <p>_d<k>` size arguments (k = 1..ndim-1) used
/// by the row-major index linearisation.
std::string generate_kernel_source(const std::string& name,
                                   const std::vector<ParamSig>& params,
                                   const std::string& body);

/// As above, with a prologue declaring the predefined work-item variables
/// the kernel used (`const size_t idx = get_global_id(0);` ...).
std::string generate_kernel_source(
    const std::string& name, const std::vector<ParamSig>& params,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& predefined);

}  // namespace detail
}  // namespace HPL

#endif  // HPLREPRO_HPL_CODEGEN_HPP
