#ifndef HPLREPRO_HPL_RUNTIME_HPP
#define HPLREPRO_HPL_RUNTIME_HPP

/// \file runtime.hpp
/// The HPL runtime: device table (one context + queue per simulated
/// device), the kernel cache, coherent transfers, and profiling counters.
/// All of this is machinery the user never sees — the paper's point is
/// precisely that eval() hides it.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "clsim/runtime.hpp"
#include "hpl/array_impl.hpp"
#include "hpl/builder.hpp"

namespace HPL {

namespace detail {
class Runtime;
}

/// Handle to a computing device usable with eval(...).device(d).
class Device {
public:
  Device() = default;

  const std::string& name() const;
  bool supports_double() const;
  bool is_cpu() const;

  /// All devices of the platform, in discovery order.
  static std::vector<Device> all();
  /// The default device: the first one that is not a general-purpose CPU
  /// (paper §III-C); falls back to the CPU if there is no accelerator.
  static Device default_device();
  /// First device whose name contains `needle` (e.g. "Tesla", "Quadro").
  static std::optional<Device> by_name(const std::string& needle);
  /// The simulated host CPU device (used as the serial baseline).
  static Device cpu_device();

  int index() const { return index_; }
  bool operator==(const Device& o) const { return index_ == o.index_; }

private:
  friend class detail::Runtime;
  explicit Device(int index) : index_(index) {}
  int index_ = -1;  // -1 = default device
};

/// Aggregated profiling counters for HPL activity. Simulated seconds come
/// from the device timing model; host seconds are real wall-clock spent in
/// eval (capture, code generation, builds, argument marshalling) excluding
/// the wall time used to *simulate* the device.
struct ProfileSnapshot {
  double host_seconds = 0;           // eval overhead (real)
  double kernel_sim_seconds = 0;     // simulated device execution
  double transfer_sim_seconds = 0;   // simulated host<->device transfers
  std::uint64_t kernel_launches = 0;
  std::uint64_t kernels_built = 0;   // capture+codegen+build events
  /// Launches whose kernel was already captured AND built for the target
  /// device (no capture, codegen or compiler work). hits + misses ==
  /// kernel_launches.
  std::uint64_t kernel_cache_hits = 0;
  std::uint64_t kernel_cache_misses = 0;
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_to_host = 0;
  /// Direct device-to-device reconciliation copies (co-execution merge
  /// steps that avoid a host round-trip).
  std::uint64_t bytes_device_to_device = 0;
  /// Host wall-clock consumed *simulating* device work (an artifact of the
  /// simulator, excluded from modeled time).
  double sim_wall_seconds = 0;

  /// Modeled time including transfers.
  double total_seconds() const {
    return host_seconds + kernel_sim_seconds + transfer_sim_seconds;
  }
  /// Modeled time excluding transfers (the paper's Figs. 6-8 convention).
  double total_seconds_no_transfer() const {
    return host_seconds + kernel_sim_seconds;
  }
};

ProfileSnapshot profile();
void reset_profile();

/// Drops all cached kernels (captured sources and built binaries). Used by
/// the benchmark harness to measure cold first-invocation behaviour.
void purge_kernel_cache();

/// Sets the clBuildProgram-style options used for every subsequent kernel
/// build (e.g. "-cl-opt-disable" to run generated kernels unoptimized).
/// Purges the kernel cache so already-built kernels are rebuilt with the
/// new options — unless the options are unchanged, in which case it is a
/// no-op (sweeps re-assert options per cell and must not lose the cache).
/// Throws InvalidArgument on an unrecognised option.
void set_kernel_build_options(const std::string& options);

/// The options set by set_kernel_build_options (default: "", which builds
/// at the driver default, -O2).
const std::string& kernel_build_options();

namespace detail {

/// Per-device runtime state.
struct DeviceEntry {
  hplrepro::clsim::Device device;
  std::unique_ptr<hplrepro::clsim::Context> context;
  std::unique_ptr<hplrepro::clsim::CommandQueue> queue;
};

/// A kernel built for one device.
struct BuiltKernel {
  std::unique_ptr<hplrepro::clsim::Program> program;
  std::unique_ptr<hplrepro::clsim::Kernel> kernel;
  /// Serializes bind-args + enqueue on this binary: clsim::Kernel arg
  /// slots are sticky (clSetKernelArg semantics), so two host threads
  /// launching the same built kernel must not interleave their set_arg
  /// sequences. unique_ptr keeps BuiltKernel movable.
  std::unique_ptr<std::mutex> launch_mutex =
      std::make_unique<std::mutex>();
};

/// A captured kernel: generated source plus per-device binaries. Cached by
/// kernel function address so repeat invocations skip capture, codegen and
/// compilation (paper §V-B). `body` and `predefined` keep the pre-codegen
/// pieces around so the fusion pass (fusion.hpp) can splice kernel bodies
/// together and re-run codegen on the result.
struct CachedKernel {
  std::string name;
  std::string source;
  std::vector<ParamSig> params;
  /// Captured statement lines (as emitted by KernelBuilder::body()).
  std::string body;
  /// Predefined work-item variables the body uses (idx, lidx, ...).
  std::vector<std::pair<std::string, std::string>> predefined;
  std::map<const hplrepro::clsim::DeviceSpec*, BuiltKernel> built;
};

/// While alive on a thread, collects every coherence-transfer event the
/// Runtime enqueues from that thread. eval() opens one around argument
/// marshalling so a launch knows exactly which transfers it caused —
/// their host execution windows feed the critical-path attribution.
/// Scopes nest (the inner one captures); cheap no-op when none is open.
class TransferCapture {
public:
  TransferCapture();
  ~TransferCapture();
  TransferCapture(const TransferCapture&) = delete;
  TransferCapture& operator=(const TransferCapture&) = delete;

  std::vector<hplrepro::clsim::Event> take() { return std::move(events_); }

  /// Called by the Runtime when it enqueues a transfer on this thread.
  static void note(const hplrepro::clsim::Event& event);

private:
  std::vector<hplrepro::clsim::Event> events_;
  TransferCapture* prev_ = nullptr;
};

class Runtime {
public:
  static Runtime& get();

  DeviceEntry& entry(const Device& device);
  DeviceEntry& default_entry();
  int device_count() const { return static_cast<int>(devices_.size()); }
  DeviceEntry& entry_at(int index);

  /// Cache lookup by kernel function address; nullptr on miss.
  CachedKernel* find_kernel(const void* fn);
  CachedKernel& insert_kernel(const void* fn, CachedKernel kernel);

  /// Fused-kernel cache, keyed by a content hash of the synthesized
  /// source (fusion.cpp): the same producer->consumer chain flushed again
  /// reuses the previously synthesized (and built) kernel. Same
  /// first-insert-wins contract as insert_kernel.
  CachedKernel* find_fused_kernel(const std::string& key);
  CachedKernel& insert_fused_kernel(const std::string& key,
                                    CachedKernel kernel);

  /// Ensures `cached` is built for `dev` and returns the binary. When
  /// `cache_hit` is non-null it is set to whether the binary was already
  /// built (no capture/codegen/compiler work happened).
  BuiltKernel& build_for(CachedKernel& cached, DeviceEntry& dev,
                         bool* cache_hit = nullptr);

  /// Ensures the array has a buffer on `dev` sized to its current dims.
  /// If an old, size-mismatched buffer holds the only valid copy of some
  /// region, its contents are rescued to the host before it is dropped.
  ArrayImpl::DeviceCopy& device_copy(ArrayImpl& impl, DeviceEntry& dev);

  /// Makes `range` of the device copy valid, transferring only the
  /// missing sub-ranges — from the host where it covers them, directly
  /// from a peer device copy (no host round-trip) otherwise. Transfers
  /// are enqueued asynchronously; ordering against other commands
  /// touching the array is carried by event wait-lists.
  void ensure_on_device(ArrayImpl& impl, DeviceEntry& dev,
                        ByteRange range);
  /// Whole-array convenience overload.
  void ensure_on_device(ArrayImpl& impl, DeviceEntry& dev);

  /// Records that a kernel wrote `range` of the device copy: the range
  /// becomes valid there and stale everywhere else. Other regions keep
  /// their validity, so co-executed chunks on different devices
  /// accumulate disjoint valid ranges instead of clobbering each other.
  void mark_device_written(ArrayImpl& impl, DeviceEntry& dev,
                           ByteRange range);
  /// Whole-array convenience overload.
  void mark_device_written(ArrayImpl& impl, DeviceEntry& dev);

  /// Enqueues the d2h reads that make `range` of the host copy current
  /// (gathering from every device holding a missing piece) without
  /// blocking; `impl.host_pending` tracks their completion.
  void make_host_current_async(ArrayImpl& impl, ByteRange range);
  void make_host_current_async(ArrayImpl& impl);

  /// make_host_current_async + blocks until the host copy is readable.
  void sync_to_host(ArrayImpl& impl);

  /// Runs `fn(prof)` with the profile counters under their lock. Counters
  /// are updated both from host threads (launch/build bookkeeping) and
  /// from queue workers (simulated seconds, via Event completion
  /// callbacks).
  template <typename F>
  void with_prof(F&& fn) {
    std::lock_guard<std::mutex> lock(prof_mutex_);
    fn(prof_);
  }

  /// Quiesces every queue (so all in-flight counter updates land) and
  /// returns a consistent copy of the counters.
  ProfileSnapshot profile_snapshot();
  void reset_profile_counters();

  /// Blocks until every enqueued command on every device has completed;
  /// rethrows the first deferred execution error, if any.
  void finish_all();

  /// Generates a fresh kernel name.
  std::string next_kernel_name();

  void clear_kernel_cache();

  /// Build options applied by build_for (see HPL::set_kernel_build_options).
  void set_build_options(std::string options);
  const std::string& build_options() const { return build_options_; }

private:
  Runtime();
  /// Quiesces every queue before member destruction begins: members are
  /// destroyed in reverse declaration order, so prof_mutex_/prof_ would die
  /// before devices_ — whose ~CommandQueue drains in-flight commands whose
  /// completion callbacks land in with_prof().
  ~Runtime();

  /// Enqueues one sub-range h2d upload and records its accounting.
  void upload_range(ArrayImpl& impl, DeviceEntry& dev,
                    ArrayImpl::DeviceCopy& copy, ByteRange range);

  std::vector<DeviceEntry> devices_;
  /// Guards kernel_cache_, next_kernel_id_ and build_options_ (concurrent
  /// eval()s race on all three). Lock order: kernel_mutex_ before
  /// prof_mutex_; never the reverse.
  std::mutex kernel_mutex_;
  std::map<const void*, CachedKernel> kernel_cache_;
  std::map<std::string, CachedKernel> fused_cache_;
  std::mutex prof_mutex_;
  ProfileSnapshot prof_;
  std::string build_options_;
  int next_kernel_id_ = 0;
};

}  // namespace detail
}  // namespace HPL

#endif  // HPLREPRO_HPL_RUNTIME_HPP
