#ifndef HPLREPRO_HPL_HPL_H
#define HPLREPRO_HPL_HPL_H

/// \file HPL.h
/// Umbrella header of the Heterogeneous Programming Library (HPL), the
/// system presented in:
///
///   Z. Bozkus and B. B. Fraguela, "A Portable High-Productivity Approach
///   to Program Heterogeneous Systems", IPDPS Workshops 2012.
///
/// Including this single header provides (paper §III):
///   * Array<type, ndim [, memoryFlag]> and the scalar types Int, Uint,
///     Float, Double, ... usable in host code and in kernels;
///   * the kernel control keywords if_/else_/endif_, for_/endfor_,
///     while_/endwhile_ and the barrier() function;
///   * the predefined variables idx/idy/idz, lidx/lidy/lidz,
///     gidx/gidy/gidz plus global/local size and group-count variables;
///   * eval(f).global(...).local(...).device(...)(args...) to request the
///     parallel evaluation of a kernel on a device.
///
/// Everything lives in namespace HPL.

#include "hpl/array.hpp"     // IWYU pragma: export
#include "hpl/eval.hpp"      // IWYU pragma: export
#include "hpl/expr.hpp"      // IWYU pragma: export
#include "hpl/fusion.hpp"    // IWYU pragma: export
#include "hpl/keywords.hpp"  // IWYU pragma: export
#include "hpl/patterns.hpp"  // IWYU pragma: export
#include "hpl/runtime.hpp"   // IWYU pragma: export
#include "hpl/trace.hpp"     // IWYU pragma: export
#include "hpl/types.hpp"     // IWYU pragma: export

#endif  // HPLREPRO_HPL_HPL_H
