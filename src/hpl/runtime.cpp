#include "hpl/runtime.hpp"

#include <cstring>

#include "hpl/trace.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace HPL {

namespace clsim = hplrepro::clsim;
namespace clc = hplrepro::clc;

// --- Device handle -------------------------------------------------------------

const std::string& Device::name() const {
  return detail::Runtime::get().entry(*this).device.name();
}

bool Device::supports_double() const {
  return detail::Runtime::get().entry(*this).device.supports_double();
}

bool Device::is_cpu() const {
  return detail::Runtime::get().entry(*this).device.type() ==
         clsim::DeviceType::Cpu;
}

std::vector<Device> Device::all() {
  auto& rt = detail::Runtime::get();
  std::vector<Device> out;
  for (int i = 0; i < rt.device_count(); ++i) out.push_back(Device(i));
  return out;
}

Device Device::default_device() {
  auto& rt = detail::Runtime::get();
  for (int i = 0; i < rt.device_count(); ++i) {
    if (rt.entry_at(i).device.type() != clsim::DeviceType::Cpu) {
      return Device(i);
    }
  }
  return Device(0);
}

std::optional<Device> Device::by_name(const std::string& needle) {
  auto& rt = detail::Runtime::get();
  for (int i = 0; i < rt.device_count(); ++i) {
    if (rt.entry_at(i).device.name().find(needle) != std::string::npos) {
      return Device(i);
    }
  }
  return std::nullopt;
}

Device Device::cpu_device() {
  auto& rt = detail::Runtime::get();
  for (int i = 0; i < rt.device_count(); ++i) {
    if (rt.entry_at(i).device.type() == clsim::DeviceType::Cpu) {
      return Device(i);
    }
  }
  return Device(0);
}

ProfileSnapshot profile() { return detail::Runtime::get().profile_snapshot(); }
void reset_profile() {
  detail::Runtime::get().reset_profile_counters();
  // Keep the per-kernel registry in step with the counters so
  // profiler_report sums always reconcile with the snapshot.
  detail::profiler_reset();
}
void purge_kernel_cache() { detail::Runtime::get().clear_kernel_cache(); }

void set_kernel_build_options(const std::string& options) {
  detail::Runtime::get().set_build_options(options);
}

const std::string& kernel_build_options() {
  return detail::Runtime::get().build_options();
}

namespace detail {

// --- TransferCapture -----------------------------------------------------------

namespace {
thread_local TransferCapture* tl_transfer_capture = nullptr;
}  // namespace

TransferCapture::TransferCapture() : prev_(tl_transfer_capture) {
  tl_transfer_capture = this;
}

TransferCapture::~TransferCapture() { tl_transfer_capture = prev_; }

void TransferCapture::note(const hplrepro::clsim::Event& event) {
  if (tl_transfer_capture != nullptr) {
    tl_transfer_capture->events_.push_back(event);
  }
}

// --- Runtime -------------------------------------------------------------------

Runtime::Runtime() {
  for (const auto& dev : clsim::Platform::get().devices()) {
    DeviceEntry entry{dev, nullptr, nullptr};
    entry.context = std::make_unique<clsim::Context>(dev);
    entry.queue = std::make_unique<clsim::CommandQueue>(*entry.context);
    devices_.push_back(std::move(entry));
  }
}

Runtime::~Runtime() {
  // Commands may still be pending at process exit (an eval whose result
  // was never read). Drain every queue while prof_mutex_/prof_ and the
  // profiler registry are still alive, so no completion callback runs
  // during member destruction. Deferred errors have nowhere to go from a
  // destructor; swallow them.
  for (auto& dev : devices_) {
    try {
      dev.queue->finish();
    } catch (...) {
    }
  }
}

Runtime& Runtime::get() {
  static Runtime instance;
  return instance;
}

DeviceEntry& Runtime::entry(const Device& device) {
  const int index = device.index();
  if (index < 0) return default_entry();
  return entry_at(index);
}

DeviceEntry& Runtime::default_entry() {
  return entry(Device::default_device());
}

DeviceEntry& Runtime::entry_at(int index) {
  if (index < 0 || index >= device_count()) {
    throw hplrepro::InvalidArgument("HPL: bad device index");
  }
  return devices_[static_cast<std::size_t>(index)];
}

CachedKernel* Runtime::find_kernel(const void* fn) {
  auto it = kernel_cache_.find(fn);
  return it == kernel_cache_.end() ? nullptr : &it->second;
}

CachedKernel& Runtime::insert_kernel(const void* fn, CachedKernel kernel) {
  return kernel_cache_[fn] = std::move(kernel);
}

void Runtime::clear_kernel_cache() {
  // In-flight launches retain what they captured, but quiescing first keeps
  // "purge then measure cold behaviour" deterministic.
  finish_all();
  kernel_cache_.clear();
}

void Runtime::set_build_options(std::string options) {
  clc::CompileOptions parsed;
  std::string error;
  if (!clc::parse_build_options(options, parsed, error)) {
    throw hplrepro::InvalidArgument("HPL: " + error);
  }
  build_options_ = std::move(options);
  // Cached binaries were built with the old options; force rebuilds.
  clear_kernel_cache();
}

void Runtime::finish_all() {
  for (auto& dev : devices_) dev.queue->finish();
}

ProfileSnapshot Runtime::profile_snapshot() {
  // Quiesce so every pending on_complete counter update has landed.
  finish_all();
  std::lock_guard<std::mutex> lock(prof_mutex_);
  return prof_;
}

void Runtime::reset_profile_counters() {
  finish_all();
  std::lock_guard<std::mutex> lock(prof_mutex_);
  prof_ = ProfileSnapshot{};
}

BuiltKernel& Runtime::build_for(CachedKernel& cached, DeviceEntry& dev,
                                bool* cache_hit) {
  const auto* key = &dev.device.spec();
  auto it = cached.built.find(key);
  if (cache_hit != nullptr) *cache_hit = it != cached.built.end();
  if (it != cached.built.end()) {
    with_prof([](ProfileSnapshot& p) { ++p.kernel_cache_hits; });
    static auto& hit_counter = hplrepro::metrics::counter("hpl.cache.hit");
    hit_counter.add();
    return it->second;
  }
  with_prof([](ProfileSnapshot& p) { ++p.kernel_cache_misses; });
  static auto& miss_counter = hplrepro::metrics::counter("hpl.cache.miss");
  miss_counter.add();

  hplrepro::trace::Span span("build", "hpl");
  span.arg("kernel", cached.name).arg("device", dev.device.name());
  BuiltKernel built;
  built.program =
      std::make_unique<clsim::Program>(*dev.context, cached.source);
  built.program->build(build_options_);
  built.kernel =
      std::make_unique<clsim::Kernel>(*built.program, cached.name);
  with_prof([](ProfileSnapshot& p) { ++p.kernels_built; });
  profiler_record_build(cached.name, dev.device.name());
  return cached.built[key] = std::move(built);
}

std::string Runtime::next_kernel_name() {
  return "hpl_kernel_" + std::to_string(next_kernel_id_++);
}

// --- Coherence ------------------------------------------------------------------

ArrayImpl::DeviceCopy& Runtime::device_copy(ArrayImpl& impl,
                                            DeviceEntry& dev) {
  const auto* key = &dev.device.spec();
  auto it = impl.copies.find(key);
  if (it != impl.copies.end() &&
      it->second.buffer->size() == impl.bytes()) {
    return it->second;
  }
  ArrayImpl::DeviceCopy copy;
  copy.buffer = std::make_shared<clsim::Buffer>(*dev.context, impl.bytes());
  copy.valid = false;
  return impl.copies[key] = std::move(copy);
}

void Runtime::ensure_on_device(ArrayImpl& impl, DeviceEntry& dev) {
  ArrayImpl::DeviceCopy& copy = device_copy(impl, dev);
  if (copy.valid) return;
  // If the current bits live on another device, chain d2h -> h2d through
  // events instead of blocking the host: the upload's wait-list carries the
  // dependency, so the host thread keeps going.
  if (!impl.host_valid) make_host_current_async(impl);
  hplrepro::trace::Span span("transfer:h2d", "hpl");
  const std::size_t nbytes = impl.bytes();
  std::vector<clsim::Event> deps;
  if (!impl.host_ready.complete()) deps.push_back(impl.host_ready);
  clsim::Event event = dev.queue->enqueue_write_buffer(
      *copy.buffer, impl.host_ptr, nbytes, /*offset=*/0, std::move(deps));
  span.arg("bytes", static_cast<std::uint64_t>(nbytes))
      .arg("device", dev.device.name());
  event.on_complete(
      [this, nbytes, name = dev.device.name()](const clsim::Event& e) {
        with_prof([&](ProfileSnapshot& p) {
          p.transfer_sim_seconds += e.sim_seconds();
          p.sim_wall_seconds += e.wall_seconds();
          p.bytes_to_device += nbytes;
        });
        profiler_record_transfer(name, /*to_device=*/true, nbytes,
                                 e.sim_seconds());
      });
  TransferCapture::note(event);
  impl.host_readers.push_back(event);  // upload reads host_ptr in flight
  copy.valid = true;
}

void Runtime::mark_device_written(ArrayImpl& impl, DeviceEntry& dev) {
  const auto* key = &dev.device.spec();
  for (auto& [other, copy] : impl.copies) copy.valid = (other == key);
  impl.host_valid = false;
}

void Runtime::make_host_current_async(ArrayImpl& impl) {
  if (impl.host_valid) return;
  // Find any valid device copy and read it back through its owning queue.
  for (int i = 0; i < device_count(); ++i) {
    DeviceEntry& dev = entry_at(i);
    auto it = impl.copies.find(&dev.device.spec());
    if (it != impl.copies.end() && it->second.valid) {
      hplrepro::trace::Span span("transfer:d2h", "hpl");
      const std::size_t nbytes = impl.bytes();
      // The read writes host_ptr: wait out uploads still reading it, and
      // any earlier read still filling it.
      std::vector<clsim::Event> deps = impl.host_readers;
      if (!impl.host_ready.complete()) deps.push_back(impl.host_ready);
      clsim::Event event = dev.queue->enqueue_read_buffer(
          *it->second.buffer, impl.host_ptr, nbytes, /*offset=*/0,
          std::move(deps));
      span.arg("bytes", static_cast<std::uint64_t>(nbytes))
          .arg("device", dev.device.name());
      event.on_complete(
          [this, nbytes, name = dev.device.name()](const clsim::Event& e) {
            with_prof([&](ProfileSnapshot& p) {
              p.transfer_sim_seconds += e.sim_seconds();
              p.sim_wall_seconds += e.wall_seconds();
              p.bytes_to_host += nbytes;
            });
            profiler_record_transfer(name, /*to_device=*/false, nbytes,
                                     e.sim_seconds());
          });
      TransferCapture::note(event);
      impl.host_ready = event;
      impl.host_readers.clear();
      impl.host_valid = true;
      return;
    }
  }
  // No valid copy anywhere: the array was never written; treat the host
  // copy as the (zero-initialised) truth.
  impl.host_valid = true;
}

void Runtime::sync_to_host(ArrayImpl& impl) {
  make_host_current_async(impl);
  // The lazy synchronization point: the host blocks only here, when it
  // actually dereferences the data (or is about to overwrite it).
  if (hplrepro::metrics::enabled() && !impl.host_ready.complete()) {
    static auto& stalls = hplrepro::metrics::counter("hpl.sync.stalls");
    static auto& stall_ns =
        hplrepro::metrics::histogram("hpl.sync.stall_ns");
    hplrepro::Stopwatch watch;
    impl.host_ready.wait();
    stalls.add_always(1);
    stall_ns.record_always(
        static_cast<std::uint64_t>(watch.seconds() * 1e9));
    return;
  }
  impl.host_ready.wait();
}

// --- ArrayImpl helpers ------------------------------------------------------------

ArrayImpl::~ArrayImpl() {
  // Commands in flight may still dereference host_ptr (which can be
  // caller-owned, or about to be freed with this object). Wait them out;
  // deferred execution errors have nowhere to go from a destructor.
  for (auto& e : host_readers) {
    try {
      e.wait();
    } catch (...) {
    }
  }
  try {
    host_ready.wait();
  } catch (...) {
  }
}

ArrayImplPtr make_array_impl(const char* type_name, std::size_t elem_size,
                             std::vector<std::size_t> dims, MemFlag flag) {
  auto impl = std::make_shared<ArrayImpl>();
  impl->type_name = type_name;
  impl->elem_size = elem_size;
  impl->dims = std::move(dims);
  impl->flag = flag;
  impl->owned_storage.assign(impl->bytes(), std::byte{0});
  impl->host_ptr = impl->owned_storage.data();
  return impl;
}

ArrayImplPtr make_array_impl_wrapping(const char* type_name,
                                      std::size_t elem_size,
                                      std::vector<std::size_t> dims,
                                      MemFlag flag, void* host_ptr) {
  auto impl = std::make_shared<ArrayImpl>();
  impl->type_name = type_name;
  impl->elem_size = elem_size;
  impl->dims = std::move(dims);
  impl->flag = flag;
  impl->host_ptr = host_ptr;
  return impl;
}

void sync_to_host(ArrayImpl& impl) { Runtime::get().sync_to_host(impl); }

void prepare_host_write(ArrayImpl& impl) {
  Runtime::get().sync_to_host(impl);
  // The host is about to scribble on host_ptr: in-flight uploads still
  // reading it must finish first.
  for (auto& e : impl.host_readers) e.wait();
  impl.host_readers.clear();
  for (auto& [key, copy] : impl.copies) copy.valid = false;
}

}  // namespace detail
}  // namespace HPL
