#include "hpl/runtime.hpp"

#include <algorithm>
#include <cstring>

#include "hpl/fusion.hpp"
#include "hpl/trace.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace HPL {

namespace clsim = hplrepro::clsim;
namespace clc = hplrepro::clc;

// --- Device handle -------------------------------------------------------------

const std::string& Device::name() const {
  return detail::Runtime::get().entry(*this).device.name();
}

bool Device::supports_double() const {
  return detail::Runtime::get().entry(*this).device.supports_double();
}

bool Device::is_cpu() const {
  return detail::Runtime::get().entry(*this).device.type() ==
         clsim::DeviceType::Cpu;
}

std::vector<Device> Device::all() {
  auto& rt = detail::Runtime::get();
  std::vector<Device> out;
  for (int i = 0; i < rt.device_count(); ++i) out.push_back(Device(i));
  return out;
}

Device Device::default_device() {
  auto& rt = detail::Runtime::get();
  for (int i = 0; i < rt.device_count(); ++i) {
    if (rt.entry_at(i).device.type() != clsim::DeviceType::Cpu) {
      return Device(i);
    }
  }
  return Device(0);
}

std::optional<Device> Device::by_name(const std::string& needle) {
  auto& rt = detail::Runtime::get();
  for (int i = 0; i < rt.device_count(); ++i) {
    if (rt.entry_at(i).device.name().find(needle) != std::string::npos) {
      return Device(i);
    }
  }
  return std::nullopt;
}

Device Device::cpu_device() {
  auto& rt = detail::Runtime::get();
  for (int i = 0; i < rt.device_count(); ++i) {
    if (rt.entry_at(i).device.type() == clsim::DeviceType::Cpu) {
      return Device(i);
    }
  }
  return Device(0);
}

ProfileSnapshot profile() { return detail::Runtime::get().profile_snapshot(); }
void reset_profile() {
  detail::Runtime::get().reset_profile_counters();
  // Keep the per-kernel registry in step with the counters so
  // profiler_report sums always reconcile with the snapshot.
  detail::profiler_reset();
}
void purge_kernel_cache() { detail::Runtime::get().clear_kernel_cache(); }

void set_kernel_build_options(const std::string& options) {
  detail::Runtime::get().set_build_options(options);
}

const std::string& kernel_build_options() {
  return detail::Runtime::get().build_options();
}

namespace detail {

// --- TransferCapture -----------------------------------------------------------

namespace {
thread_local TransferCapture* tl_transfer_capture = nullptr;
}  // namespace

TransferCapture::TransferCapture() : prev_(tl_transfer_capture) {
  tl_transfer_capture = this;
}

TransferCapture::~TransferCapture() { tl_transfer_capture = prev_; }

void TransferCapture::note(const hplrepro::clsim::Event& event) {
  if (tl_transfer_capture != nullptr) {
    tl_transfer_capture->events_.push_back(event);
  }
}

// --- Runtime -------------------------------------------------------------------

Runtime::Runtime() {
  for (const auto& dev : clsim::Platform::get().devices()) {
    DeviceEntry entry{dev, nullptr, nullptr};
    entry.context = std::make_unique<clsim::Context>(dev);
    entry.queue = std::make_unique<clsim::CommandQueue>(*entry.context);
    devices_.push_back(std::move(entry));
  }
}

Runtime::~Runtime() {
  // Commands may still be pending at process exit (an eval whose result
  // was never read). Deferred DAG nodes launch first (they reference the
  // caches this destructor is about to tear down), then every queue is
  // drained while prof_mutex_/prof_ and the profiler registry are still
  // alive, so no completion callback runs during member destruction.
  // Deferred errors have nowhere to go from a destructor; swallow them.
  try {
    detail::flush_dag();
  } catch (...) {
  }
  for (auto& dev : devices_) {
    try {
      dev.queue->finish();
    } catch (...) {
    }
  }
}

Runtime& Runtime::get() {
  static Runtime instance;
  return instance;
}

DeviceEntry& Runtime::entry(const Device& device) {
  const int index = device.index();
  if (index < 0) return default_entry();
  return entry_at(index);
}

DeviceEntry& Runtime::default_entry() {
  return entry(Device::default_device());
}

DeviceEntry& Runtime::entry_at(int index) {
  if (index < 0 || index >= device_count()) {
    throw hplrepro::InvalidArgument("HPL: bad device index");
  }
  return devices_[static_cast<std::size_t>(index)];
}

CachedKernel* Runtime::find_kernel(const void* fn) {
  std::lock_guard<std::mutex> lock(kernel_mutex_);
  auto it = kernel_cache_.find(fn);
  return it == kernel_cache_.end() ? nullptr : &it->second;
}

CachedKernel& Runtime::insert_kernel(const void* fn, CachedKernel kernel) {
  std::lock_guard<std::mutex> lock(kernel_mutex_);
  // First insert wins: two threads may have captured the same kernel
  // concurrently, and the loser's copy must not destroy the CachedKernel
  // a concurrent eval is already building against.
  return kernel_cache_.try_emplace(fn, std::move(kernel)).first->second;
}

CachedKernel* Runtime::find_fused_kernel(const std::string& key) {
  std::lock_guard<std::mutex> lock(kernel_mutex_);
  auto it = fused_cache_.find(key);
  return it == fused_cache_.end() ? nullptr : &it->second;
}

CachedKernel& Runtime::insert_fused_kernel(const std::string& key,
                                           CachedKernel kernel) {
  std::lock_guard<std::mutex> lock(kernel_mutex_);
  return fused_cache_.try_emplace(key, std::move(kernel)).first->second;
}

void Runtime::clear_kernel_cache() {
  // In-flight launches retain what they captured, but quiescing first keeps
  // "purge then measure cold behaviour" deterministic. finish_all also
  // flushes the eval DAG, so no deferred node is left holding a pointer
  // into the caches cleared below.
  finish_all();
  std::lock_guard<std::mutex> lock(kernel_mutex_);
  kernel_cache_.clear();
  fused_cache_.clear();
}

void Runtime::set_build_options(std::string options) {
  clc::CompileOptions parsed;
  std::string error;
  if (!clc::parse_build_options(options, parsed, error)) {
    throw hplrepro::InvalidArgument("HPL: " + error);
  }
  // Everything recorded under the old options must also launch (and
  // build) under them; flush before the swap.
  detail::flush_dag();
  // A "-cl-fusion" token drives the runtime fusion toggle; its absence
  // leaves the toggle alone (parsed.fusion merely holds the default then).
  const bool has_fusion_token =
      options.find("-cl-fusion") != std::string::npos;
  bool unchanged = false;
  {
    std::lock_guard<std::mutex> lock(kernel_mutex_);
    unchanged = options == build_options_;
    if (!unchanged) build_options_ = std::move(options);
  }
  if (unchanged) {  // keep the cache; the fusion token still applies
    if (has_fusion_token) apply_fusion_build_option(parsed.fusion);
    return;
  }
  // Cached binaries were built with the old options; force rebuilds.
  clear_kernel_cache();
  if (has_fusion_token) apply_fusion_build_option(parsed.fusion);
}

void Runtime::finish_all() {
  // Forcing point: "every command has completed" includes evals still
  // deferred on the DAG. Reentrancy-safe (flush_dag no-ops inside a flush).
  detail::flush_dag();
  for (auto& dev : devices_) dev.queue->finish();
}

ProfileSnapshot Runtime::profile_snapshot() {
  // Quiesce so every pending on_complete counter update has landed.
  finish_all();
  std::lock_guard<std::mutex> lock(prof_mutex_);
  return prof_;
}

void Runtime::reset_profile_counters() {
  finish_all();
  std::lock_guard<std::mutex> lock(prof_mutex_);
  prof_ = ProfileSnapshot{};
}

BuiltKernel& Runtime::build_for(CachedKernel& cached, DeviceEntry& dev,
                                bool* cache_hit) {
  // Held across lookup AND build so a concurrent eval of the same kernel
  // on the same device sees either "not built yet" (and serializes behind
  // the build) or the finished binary — never a half-constructed entry.
  std::lock_guard<std::mutex> cache_lock(kernel_mutex_);
  const auto* key = &dev.device.spec();
  auto it = cached.built.find(key);
  if (cache_hit != nullptr) *cache_hit = it != cached.built.end();
  if (it != cached.built.end()) {
    with_prof([](ProfileSnapshot& p) { ++p.kernel_cache_hits; });
    static auto& hit_counter = hplrepro::metrics::counter("hpl.cache.hit");
    hit_counter.add();
    return it->second;
  }
  with_prof([](ProfileSnapshot& p) { ++p.kernel_cache_misses; });
  static auto& miss_counter = hplrepro::metrics::counter("hpl.cache.miss");
  miss_counter.add();

  hplrepro::trace::Span span("build", "hpl");
  span.arg("kernel", cached.name).arg("device", dev.device.name());
  BuiltKernel built;
  built.program =
      std::make_unique<clsim::Program>(*dev.context, cached.source);
  built.program->build(build_options_);
  built.kernel =
      std::make_unique<clsim::Kernel>(*built.program, cached.name);
  with_prof([](ProfileSnapshot& p) { ++p.kernels_built; });
  profiler_record_build(cached.name, dev.device.name());
  return cached.built[key] = std::move(built);
}

std::string Runtime::next_kernel_name() {
  std::lock_guard<std::mutex> lock(kernel_mutex_);
  return "hpl_kernel_" + std::to_string(next_kernel_id_++);
}

// --- Coherence ------------------------------------------------------------------
//
// Region-granular protocol: every copy (host and per-device) carries a
// RangeSet of currently-valid byte ranges. Writes invalidate only the
// written range on sibling copies, so co-executed chunks on different
// devices accumulate disjoint valid regions; reads transfer only the
// missing sub-ranges, preferring a direct device-to-device copy over a
// host round-trip.

namespace {

void append_incomplete(std::vector<clsim::Event>& deps,
                       const std::vector<clsim::Event>& events) {
  for (const auto& e : events) {
    if (!e.complete()) deps.push_back(e);
  }
}

void prune_complete(std::vector<clsim::Event>& events) {
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const clsim::Event& e) {
                                return e.complete();
                              }),
               events.end());
}

}  // namespace

ArrayImpl::DeviceCopy& Runtime::device_copy(ArrayImpl& impl,
                                            DeviceEntry& dev) {
  const auto* key = &dev.device.spec();
  auto it = impl.copies.find(key);
  if (it != impl.copies.end() &&
      it->second.buffer->size() == impl.bytes()) {
    return it->second;
  }
  if (it != impl.copies.end() && !it->second.valid.empty()) {
    // The old, size-mismatched buffer may hold the only valid copy of
    // some region (the array was resized while its data lived on the
    // device). Rescue those bytes to the host before dropping it —
    // clamped to the new extent, since bytes past it have no host
    // location anymore.
    ArrayImpl::DeviceCopy& old = it->second;
    const std::size_t limit =
        std::min(old.buffer->size(), impl.bytes());
    for (const ByteRange& run : old.valid.runs()) {
      const ByteRange clamped{run.begin, std::min(run.end, limit)};
      if (clamped.empty()) continue;
      for (const ByteRange& piece : impl.host_valid.missing(clamped)) {
        std::vector<clsim::Event> deps = impl.host_readers;
        append_incomplete(deps, impl.host_pending);
        append_incomplete(deps, old.pending_d2d);
        clsim::Event event = dev.queue->enqueue_read_buffer(
            *old.buffer, impl.host_bytes() + piece.begin, piece.size(),
            /*offset=*/piece.begin, std::move(deps));
        event.wait();  // blocking: the buffer dies when we recreate it
        const std::size_t nbytes = piece.size();
        with_prof([&](ProfileSnapshot& p) {
          p.transfer_sim_seconds += event.sim_seconds();
          p.sim_wall_seconds += event.wall_seconds();
          p.bytes_to_host += nbytes;
        });
        profiler_record_transfer(dev.device.name(), /*to_device=*/false,
                                 nbytes, event.sim_seconds());
        impl.host_valid.add(piece);
      }
    }
  }
  ArrayImpl::DeviceCopy copy;
  copy.buffer = std::make_shared<clsim::Buffer>(*dev.context, impl.bytes());
  return impl.copies[key] = std::move(copy);
}

void Runtime::upload_range(ArrayImpl& impl, DeviceEntry& dev,
                           ArrayImpl::DeviceCopy& copy, ByteRange range) {
  hplrepro::trace::Span span("transfer:h2d", "hpl");
  const std::size_t nbytes = range.size();
  std::vector<clsim::Event> deps;
  append_incomplete(deps, impl.host_pending);  // d2h still filling host_ptr
  append_incomplete(deps, copy.pending_d2d);   // peer copies still writing
  copy.pending_d2d.clear();  // this upload now transitively orders them
  clsim::Event event = dev.queue->enqueue_write_buffer(
      *copy.buffer, impl.host_bytes() + range.begin, nbytes,
      /*offset=*/range.begin, std::move(deps));
  span.arg("bytes", static_cast<std::uint64_t>(nbytes))
      .arg("device", dev.device.name());
  event.on_complete(
      [this, nbytes, name = dev.device.name()](const clsim::Event& e) {
        with_prof([&](ProfileSnapshot& p) {
          p.transfer_sim_seconds += e.sim_seconds();
          p.sim_wall_seconds += e.wall_seconds();
          p.bytes_to_device += nbytes;
        });
        profiler_record_transfer(name, /*to_device=*/true, nbytes,
                                 e.sim_seconds());
      });
  TransferCapture::note(event);
  impl.host_readers.push_back(event);  // upload reads host_ptr in flight
  copy.valid.add(range);
  copy.last_event = event;
}

void Runtime::ensure_on_device(ArrayImpl& impl, DeviceEntry& dev,
                               ByteRange range) {
  ArrayImpl::DeviceCopy& copy = device_copy(impl, dev);
  if (copy.valid.covers(range)) return;
  prune_complete(impl.host_readers);

  RangeSet need;
  for (const ByteRange& piece : copy.valid.missing(range)) need.add(piece);

  // 1. Pieces the host already covers: direct sub-range h2d.
  {
    std::vector<ByteRange> from_host;
    for (const ByteRange& piece : need.runs()) {
      for (const ByteRange& sub : impl.host_valid.intersect(piece)) {
        from_host.push_back(sub);
      }
    }
    for (const ByteRange& sub : from_host) {
      upload_range(impl, dev, copy, sub);
      need.subtract(sub);
    }
  }

  // 2. Pieces valid on a peer device: direct d2d on the peer's queue, no
  //    host round-trip. The copy waits out the destination buffer's
  //    in-order history (last_event) plus any pending cross-queue writes
  //    on either side.
  for (int i = 0; i < device_count() && !need.empty(); ++i) {
    DeviceEntry& peer = entry_at(i);
    if (&peer == &dev) continue;
    auto it = impl.copies.find(&peer.device.spec());
    if (it == impl.copies.end() || it->second.valid.empty()) continue;
    ArrayImpl::DeviceCopy& src = it->second;
    std::vector<ByteRange> from_peer;
    for (const ByteRange& piece : need.runs()) {
      for (const ByteRange& sub : src.valid.intersect(piece)) {
        from_peer.push_back(sub);
      }
    }
    for (const ByteRange& sub : from_peer) {
      hplrepro::trace::Span span("transfer:d2d", "hpl");
      const std::size_t nbytes = sub.size();
      std::vector<clsim::Event> deps;
      append_incomplete(deps, copy.pending_d2d);
      copy.pending_d2d.clear();
      if (!copy.last_event.complete()) deps.push_back(copy.last_event);
      append_incomplete(deps, src.pending_d2d);
      clsim::Event event = peer.queue->enqueue_copy_buffer(
          *src.buffer, *copy.buffer, nbytes, /*src_offset=*/sub.begin,
          /*dst_offset=*/sub.begin, std::move(deps));
      span.arg("bytes", static_cast<std::uint64_t>(nbytes))
          .arg("from", peer.device.name())
          .arg("to", dev.device.name());
      event.on_complete(
          [this, nbytes, name = dev.device.name()](const clsim::Event& e) {
            with_prof([&](ProfileSnapshot& p) {
              p.transfer_sim_seconds += e.sim_seconds();
              p.sim_wall_seconds += e.wall_seconds();
              p.bytes_device_to_device += nbytes;
            });
            profiler_record_copy(name, nbytes, e.sim_seconds());
          });
      TransferCapture::note(event);
      src.last_event = event;           // outgoing copy reads src in-order
      copy.pending_d2d.push_back(event);  // cross-queue write into dst
      copy.valid.add(sub);
      need.subtract(sub);
    }
  }

  // 3. Regions never written anywhere: the host's (zero-initialised)
  //    storage is the truth; make it formally valid and upload.
  for (const ByteRange& piece : need.runs()) {
    make_host_current_async(impl, piece);
    upload_range(impl, dev, copy, piece);
  }
}

void Runtime::ensure_on_device(ArrayImpl& impl, DeviceEntry& dev) {
  ensure_on_device(impl, dev, ByteRange{0, impl.bytes()});
}

void Runtime::mark_device_written(ArrayImpl& impl, DeviceEntry& dev,
                                  ByteRange range) {
  const auto* key = &dev.device.spec();
  for (auto& [other, copy] : impl.copies) {
    if (other == key) {
      copy.valid.add(range);
    } else {
      copy.valid.subtract(range);
    }
  }
  impl.host_valid.subtract(range);
}

void Runtime::mark_device_written(ArrayImpl& impl, DeviceEntry& dev) {
  mark_device_written(impl, dev, ByteRange{0, impl.bytes()});
}

void Runtime::make_host_current_async(ArrayImpl& impl, ByteRange range) {
  if (impl.host_valid.covers(range)) return;
  prune_complete(impl.host_readers);
  // Gather every missing piece from whichever device copies cover it.
  // Pieces are disjoint, so reads enqueued on different queues may fill
  // host_ptr concurrently without conflict.
  for (const ByteRange& gap : impl.host_valid.missing(range)) {
    RangeSet need;
    need.add(gap);
    for (int i = 0; i < device_count() && !need.empty(); ++i) {
      DeviceEntry& dev = entry_at(i);
      auto it = impl.copies.find(&dev.device.spec());
      if (it == impl.copies.end() || it->second.valid.empty()) continue;
      ArrayImpl::DeviceCopy& src = it->second;
      std::vector<ByteRange> from_dev;
      for (const ByteRange& piece : need.runs()) {
        for (const ByteRange& sub : src.valid.intersect(piece)) {
          from_dev.push_back(sub);
        }
      }
      for (const ByteRange& sub : from_dev) {
        hplrepro::trace::Span span("transfer:d2h", "hpl");
        const std::size_t nbytes = sub.size();
        // The read writes host_ptr: wait out uploads still reading it,
        // earlier reads still filling it, and cross-queue writes to the
        // source buffer.
        std::vector<clsim::Event> deps = impl.host_readers;
        append_incomplete(deps, impl.host_pending);
        append_incomplete(deps, src.pending_d2d);
        clsim::Event event = dev.queue->enqueue_read_buffer(
            *src.buffer, impl.host_bytes() + sub.begin, nbytes,
            /*offset=*/sub.begin, std::move(deps));
        span.arg("bytes", static_cast<std::uint64_t>(nbytes))
            .arg("device", dev.device.name());
        event.on_complete(
            [this, nbytes,
             name = dev.device.name()](const clsim::Event& e) {
              with_prof([&](ProfileSnapshot& p) {
                p.transfer_sim_seconds += e.sim_seconds();
                p.sim_wall_seconds += e.wall_seconds();
                p.bytes_to_host += nbytes;
              });
              profiler_record_transfer(name, /*to_device=*/false, nbytes,
                                       e.sim_seconds());
            });
        TransferCapture::note(event);
        impl.host_pending.push_back(event);
        src.last_event = event;
        impl.host_valid.add(sub);
        need.subtract(sub);
      }
    }
    // Leftovers were never written anywhere: the host copy (typically
    // zero-initialised library storage) is the truth.
    for (const ByteRange& piece : need.runs()) {
      impl.host_valid.add(piece);
    }
  }
}

void Runtime::make_host_current_async(ArrayImpl& impl) {
  make_host_current_async(impl, ByteRange{0, impl.bytes()});
}

void Runtime::sync_to_host(ArrayImpl& impl) {
  make_host_current_async(impl);
  // The lazy synchronization point: the host blocks only here, when it
  // actually dereferences the data (or is about to overwrite it).
  bool stalled = false;
  hplrepro::Stopwatch watch;
  for (auto& e : impl.host_pending) {
    if (!e.complete()) stalled = true;
    e.wait();
  }
  impl.host_pending.clear();
  if (hplrepro::metrics::enabled() && stalled) {
    static auto& stalls = hplrepro::metrics::counter("hpl.sync.stalls");
    static auto& stall_ns =
        hplrepro::metrics::histogram("hpl.sync.stall_ns");
    stalls.add_always(1);
    stall_ns.record_always(
        static_cast<std::uint64_t>(watch.seconds() * 1e9));
  }
}

// --- ArrayImpl helpers ------------------------------------------------------------

ArrayImpl::~ArrayImpl() {
  // Commands in flight may still dereference host_ptr (which can be
  // caller-owned, or about to be freed with this object). Wait them out;
  // deferred execution errors have nowhere to go from a destructor.
  for (auto& e : host_readers) {
    try {
      e.wait();
    } catch (...) {
    }
  }
  for (auto& e : host_pending) {
    try {
      e.wait();
    } catch (...) {
    }
  }
}

ArrayImplPtr make_array_impl(const char* type_name, std::size_t elem_size,
                             std::vector<std::size_t> dims, MemFlag flag) {
  auto impl = std::make_shared<ArrayImpl>();
  impl->type_name = type_name;
  impl->elem_size = elem_size;
  impl->dims = std::move(dims);
  impl->flag = flag;
  impl->owned_storage.assign(impl->bytes(), std::byte{0});
  impl->host_ptr = impl->owned_storage.data();
  impl->host_valid = RangeSet::whole(impl->bytes());
  return impl;
}

ArrayImplPtr make_array_impl_wrapping(const char* type_name,
                                      std::size_t elem_size,
                                      std::vector<std::size_t> dims,
                                      MemFlag flag, void* host_ptr) {
  auto impl = std::make_shared<ArrayImpl>();
  impl->type_name = type_name;
  impl->elem_size = elem_size;
  impl->dims = std::move(dims);
  impl->flag = flag;
  impl->host_ptr = host_ptr;
  impl->host_valid = RangeSet::whole(impl->bytes());
  return impl;
}

void sync_to_host(ArrayImpl& impl) {
  // Host read of an array: the canonical forcing point. Pending producers
  // (of this array or any other — the DAG is flushed whole to preserve
  // program order) launch before the d2h sync.
  flush_dag();
  Runtime::get().sync_to_host(impl);
}

void prepare_host_write(ArrayImpl& impl) {
  flush_dag();
  Runtime::get().sync_to_host(impl);
  // The host is about to scribble on host_ptr: in-flight uploads still
  // reading it must finish first, as must cross-queue writes into any
  // device copy (they will be invalidated below, and a pending copy must
  // not resurrect stale bytes after that).
  for (auto& e : impl.host_readers) e.wait();
  impl.host_readers.clear();
  for (auto& [key, copy] : impl.copies) {
    for (auto& e : copy.pending_d2d) e.wait();
    copy.pending_d2d.clear();
    copy.valid.clear();
  }
  impl.host_valid = RangeSet::whole(impl.bytes());
}

}  // namespace detail
}  // namespace HPL
