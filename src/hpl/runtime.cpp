#include "hpl/runtime.hpp"

#include <cstring>

#include "hpl/trace.hpp"
#include "support/trace.hpp"

namespace HPL {

namespace clsim = hplrepro::clsim;
namespace clc = hplrepro::clc;

// --- Device handle -------------------------------------------------------------

const std::string& Device::name() const {
  return detail::Runtime::get().entry(*this).device.name();
}

bool Device::supports_double() const {
  return detail::Runtime::get().entry(*this).device.supports_double();
}

bool Device::is_cpu() const {
  return detail::Runtime::get().entry(*this).device.type() ==
         clsim::DeviceType::Cpu;
}

std::vector<Device> Device::all() {
  auto& rt = detail::Runtime::get();
  std::vector<Device> out;
  for (int i = 0; i < rt.device_count(); ++i) out.push_back(Device(i));
  return out;
}

Device Device::default_device() {
  auto& rt = detail::Runtime::get();
  for (int i = 0; i < rt.device_count(); ++i) {
    if (rt.entry_at(i).device.type() != clsim::DeviceType::Cpu) {
      return Device(i);
    }
  }
  return Device(0);
}

std::optional<Device> Device::by_name(const std::string& needle) {
  auto& rt = detail::Runtime::get();
  for (int i = 0; i < rt.device_count(); ++i) {
    if (rt.entry_at(i).device.name().find(needle) != std::string::npos) {
      return Device(i);
    }
  }
  return std::nullopt;
}

Device Device::cpu_device() {
  auto& rt = detail::Runtime::get();
  for (int i = 0; i < rt.device_count(); ++i) {
    if (rt.entry_at(i).device.type() == clsim::DeviceType::Cpu) {
      return Device(i);
    }
  }
  return Device(0);
}

ProfileSnapshot profile() { return detail::Runtime::get().prof(); }
void reset_profile() {
  detail::Runtime::get().prof() = ProfileSnapshot{};
  // Keep the per-kernel registry in step with the counters so
  // profiler_report sums always reconcile with the snapshot.
  detail::profiler_reset();
}
void purge_kernel_cache() { detail::Runtime::get().clear_kernel_cache(); }

void set_kernel_build_options(const std::string& options) {
  detail::Runtime::get().set_build_options(options);
}

const std::string& kernel_build_options() {
  return detail::Runtime::get().build_options();
}

namespace detail {

// --- Runtime -------------------------------------------------------------------

Runtime::Runtime() {
  for (const auto& dev : clsim::Platform::get().devices()) {
    DeviceEntry entry{dev, nullptr, nullptr};
    entry.context = std::make_unique<clsim::Context>(dev);
    entry.queue = std::make_unique<clsim::CommandQueue>(*entry.context);
    devices_.push_back(std::move(entry));
  }
}

Runtime& Runtime::get() {
  static Runtime instance;
  return instance;
}

DeviceEntry& Runtime::entry(const Device& device) {
  const int index = device.index();
  if (index < 0) return default_entry();
  return entry_at(index);
}

DeviceEntry& Runtime::default_entry() {
  return entry(Device::default_device());
}

DeviceEntry& Runtime::entry_at(int index) {
  if (index < 0 || index >= device_count()) {
    throw hplrepro::InvalidArgument("HPL: bad device index");
  }
  return devices_[static_cast<std::size_t>(index)];
}

CachedKernel* Runtime::find_kernel(const void* fn) {
  auto it = kernel_cache_.find(fn);
  return it == kernel_cache_.end() ? nullptr : &it->second;
}

CachedKernel& Runtime::insert_kernel(const void* fn, CachedKernel kernel) {
  return kernel_cache_[fn] = std::move(kernel);
}

void Runtime::clear_kernel_cache() { kernel_cache_.clear(); }

void Runtime::set_build_options(std::string options) {
  clc::CompileOptions parsed;
  std::string error;
  if (!clc::parse_build_options(options, parsed, error)) {
    throw hplrepro::InvalidArgument("HPL: " + error);
  }
  build_options_ = std::move(options);
  // Cached binaries were built with the old options; force rebuilds.
  clear_kernel_cache();
}

BuiltKernel& Runtime::build_for(CachedKernel& cached, DeviceEntry& dev) {
  const auto* key = &dev.device.spec();
  auto it = cached.built.find(key);
  if (it != cached.built.end()) {
    ++prof_.kernel_cache_hits;
    return it->second;
  }
  ++prof_.kernel_cache_misses;

  hplrepro::trace::Span span("build", "hpl");
  span.arg("kernel", cached.name).arg("device", dev.device.name());
  BuiltKernel built;
  built.program =
      std::make_unique<clsim::Program>(*dev.context, cached.source);
  built.program->build(build_options_);
  built.kernel =
      std::make_unique<clsim::Kernel>(*built.program, cached.name);
  ++prof_.kernels_built;
  profiler_record_build(cached.name, dev.device.name());
  return cached.built[key] = std::move(built);
}

std::string Runtime::next_kernel_name() {
  return "hpl_kernel_" + std::to_string(next_kernel_id_++);
}

// --- Coherence ------------------------------------------------------------------

ArrayImpl::DeviceCopy& Runtime::device_copy(ArrayImpl& impl,
                                            DeviceEntry& dev) {
  const auto* key = &dev.device.spec();
  auto it = impl.copies.find(key);
  if (it != impl.copies.end() &&
      it->second.buffer->size() == impl.bytes()) {
    return it->second;
  }
  ArrayImpl::DeviceCopy copy;
  copy.buffer = std::make_shared<clsim::Buffer>(*dev.context, impl.bytes());
  copy.valid = false;
  return impl.copies[key] = std::move(copy);
}

void Runtime::ensure_on_device(ArrayImpl& impl, DeviceEntry& dev) {
  ArrayImpl::DeviceCopy& copy = device_copy(impl, dev);
  if (copy.valid) return;
  if (!impl.host_valid) sync_to_host(impl);
  hplrepro::trace::Span span("transfer:h2d", "hpl");
  clsim::Event event = dev.queue->enqueue_write_buffer(
      *copy.buffer, impl.host_ptr, impl.bytes());
  span.arg("bytes", static_cast<std::uint64_t>(impl.bytes()))
      .arg("device", dev.device.name())
      .arg("sim_ms", event.sim_seconds() * 1e3);
  prof_.transfer_sim_seconds += event.sim_seconds();
  prof_.sim_wall_seconds += event.wall_seconds();
  prof_.bytes_to_device += impl.bytes();
  profiler_record_transfer(dev.device.name(), /*to_device=*/true,
                           impl.bytes(), event.sim_seconds());
  copy.valid = true;
}

void Runtime::mark_device_written(ArrayImpl& impl, DeviceEntry& dev) {
  const auto* key = &dev.device.spec();
  for (auto& [other, copy] : impl.copies) copy.valid = (other == key);
  impl.host_valid = false;
}

void Runtime::sync_to_host(ArrayImpl& impl) {
  if (impl.host_valid) return;
  // Find any valid device copy and read it back through its owning queue.
  for (int i = 0; i < device_count(); ++i) {
    DeviceEntry& dev = entry_at(i);
    auto it = impl.copies.find(&dev.device.spec());
    if (it != impl.copies.end() && it->second.valid) {
      hplrepro::trace::Span span("transfer:d2h", "hpl");
      clsim::Event event = dev.queue->enqueue_read_buffer(
          *it->second.buffer, impl.host_ptr, impl.bytes());
      span.arg("bytes", static_cast<std::uint64_t>(impl.bytes()))
          .arg("device", dev.device.name())
          .arg("sim_ms", event.sim_seconds() * 1e3);
      prof_.transfer_sim_seconds += event.sim_seconds();
      prof_.sim_wall_seconds += event.wall_seconds();
      prof_.bytes_to_host += impl.bytes();
      profiler_record_transfer(dev.device.name(), /*to_device=*/false,
                               impl.bytes(), event.sim_seconds());
      impl.host_valid = true;
      return;
    }
  }
  // No valid copy anywhere: the array was never written; treat the host
  // copy as the (zero-initialised) truth.
  impl.host_valid = true;
}

// --- ArrayImpl helpers ------------------------------------------------------------

ArrayImplPtr make_array_impl(const char* type_name, std::size_t elem_size,
                             std::vector<std::size_t> dims, MemFlag flag) {
  auto impl = std::make_shared<ArrayImpl>();
  impl->type_name = type_name;
  impl->elem_size = elem_size;
  impl->dims = std::move(dims);
  impl->flag = flag;
  impl->owned_storage.assign(impl->bytes(), std::byte{0});
  impl->host_ptr = impl->owned_storage.data();
  return impl;
}

ArrayImplPtr make_array_impl_wrapping(const char* type_name,
                                      std::size_t elem_size,
                                      std::vector<std::size_t> dims,
                                      MemFlag flag, void* host_ptr) {
  auto impl = std::make_shared<ArrayImpl>();
  impl->type_name = type_name;
  impl->elem_size = elem_size;
  impl->dims = std::move(dims);
  impl->flag = flag;
  impl->host_ptr = host_ptr;
  return impl;
}

void sync_to_host(ArrayImpl& impl) { Runtime::get().sync_to_host(impl); }

void prepare_host_write(ArrayImpl& impl) {
  Runtime::get().sync_to_host(impl);
  for (auto& [key, copy] : impl.copies) copy.valid = false;
}

}  // namespace detail
}  // namespace HPL
