#ifndef HPLREPRO_HPL_BUILDER_HPP
#define HPLREPRO_HPL_BUILDER_HPP

/// \file builder.hpp
/// The kernel capture context. While a KernelBuilder is active (installed
/// as the thread-current builder by eval's first invocation of a kernel
/// function), HPL datatypes and control keywords record OpenCL C source
/// text and parameter access information into it instead of computing.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hpl/expr.hpp"
#include "hpl/types.hpp"
#include "support/error.hpp"

namespace HPL {
namespace detail {

/// Access pattern of one kernel parameter, discovered during capture.
/// Drives the runtime's transfer minimisation (paper §V-B / §VI).
struct ParamAccess {
  bool read = false;
  bool written = false;
};

/// Metadata for one formal kernel parameter.
struct ParamSig {
  std::string name;        // p0, p1, ...
  std::string type_name;   // element type (OpenCL C spelling)
  int ndim = 0;            // 0 = scalar passed by value
  MemFlag flag = Global;
  ParamAccess access;
};

class KernelBuilder {
public:
  KernelBuilder();
  ~KernelBuilder();

  KernelBuilder(const KernelBuilder&) = delete;
  KernelBuilder& operator=(const KernelBuilder&) = delete;

  /// The builder currently capturing on this thread, or nullptr.
  static KernelBuilder* current();

  // --- Parameters -------------------------------------------------------------

  /// Registers a formal parameter; returns its generated name.
  std::string add_param(const std::string& type_name, int ndim, MemFlag flag);

  void note_read(int param_index);
  void note_write(int param_index);

  const std::vector<ParamSig>& params() const { return params_; }

  // --- Variables --------------------------------------------------------------

  /// Declares a kernel-local scalar; returns its generated name.
  std::string declare_scalar(const std::string& type_name, const Expr* init);

  /// Declares a kernel-local array (private or __local); returns its name.
  std::string declare_array(const std::string& type_name,
                            const std::vector<std::size_t>& dims,
                            MemFlag flag);

  // --- Statements -------------------------------------------------------------

  /// Appends a complete statement (no trailing newline needed). In a for_
  /// header section the statement is routed into the header instead.
  void emit_statement(const std::string& text);

  /// Records use of a predefined variable (idx, lidx, ...) so codegen can
  /// declare it once at kernel entry; returns the spelling to use.
  std::string use_predefined(const char* name, const char* init);

  /// Declarations for every predefined variable the kernel used.
  const std::vector<std::pair<std::string, std::string>>& predefined() const {
    return predefined_;
  }

  // --- Control flow -----------------------------------------------------------

  void begin_if(const Expr& condition);
  void begin_else();
  void end_if();

  void begin_while(const Expr& condition);
  void end_while();

  void for_init_section();
  void for_cond_section(const Expr& condition);
  void for_body_section();
  void end_for();

  // --- Result -----------------------------------------------------------------

  /// The captured kernel body (statements only, without the signature).
  std::string body() const;

  /// True when every control construct was properly closed.
  void check_balanced() const;

private:
  enum class Mode { Body, ForInit, ForUpdate };
  enum class BlockKind { If, Else, While, For };

  void indent_line(const std::string& text);

  std::vector<ParamSig> params_;
  std::vector<std::string> lines_;
  std::vector<BlockKind> blocks_;
  int indent_ = 1;
  int next_var_ = 0;

  std::vector<std::pair<std::string, std::string>> predefined_;

  Mode mode_ = Mode::Body;
  std::vector<std::string> for_init_;
  std::string for_cond_;
  std::vector<std::string> for_update_;

  KernelBuilder* previous_ = nullptr;
};

/// RAII activation of a builder as the thread-current capture context.
class CaptureScope {
public:
  explicit CaptureScope(KernelBuilder& builder);
  ~CaptureScope();

  CaptureScope(const CaptureScope&) = delete;
  CaptureScope& operator=(const CaptureScope&) = delete;
};

}  // namespace detail
}  // namespace HPL

#endif  // HPLREPRO_HPL_BUILDER_HPP
