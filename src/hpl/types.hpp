#ifndef HPLREPRO_HPL_TYPES_HPP
#define HPLREPRO_HPL_TYPES_HPP

/// \file types.hpp
/// Element-type traits and memory flags for HPL arrays (paper §III-A).

#include <cstddef>
#include <cstdint>
#include <string>

namespace HPL {

/// Kind of device memory an Array lives in (third Array template argument).
/// `Global` is the default; `Local` is the per-group scratchpad; `Constant`
/// is host-writable, kernel-read-only memory (paper §II).
enum MemFlag { Global, Local, Constant, Private };

namespace detail {

/// Maps a C++ element type to its OpenCL C spelling and size.
template <typename T>
struct TypeTraits;

#define HPL_DEFINE_TYPE_TRAITS(CTYPE, NAME)                    \
  template <>                                                  \
  struct TypeTraits<CTYPE> {                                   \
    static constexpr const char* name = NAME;                  \
    static constexpr std::size_t size = sizeof(CTYPE);         \
    static constexpr bool is_floating =                        \
        static_cast<CTYPE>(0.5) != static_cast<CTYPE>(0);      \
  }

HPL_DEFINE_TYPE_TRAITS(float, "float");
HPL_DEFINE_TYPE_TRAITS(double, "double");
HPL_DEFINE_TYPE_TRAITS(std::int32_t, "int");
HPL_DEFINE_TYPE_TRAITS(std::uint32_t, "uint");
HPL_DEFINE_TYPE_TRAITS(std::int64_t, "long");
HPL_DEFINE_TYPE_TRAITS(std::uint64_t, "ulong");
HPL_DEFINE_TYPE_TRAITS(std::int8_t, "char");
HPL_DEFINE_TYPE_TRAITS(std::uint8_t, "uchar");
HPL_DEFINE_TYPE_TRAITS(std::int16_t, "short");
HPL_DEFINE_TYPE_TRAITS(std::uint16_t, "ushort");

#undef HPL_DEFINE_TYPE_TRAITS

/// OpenCL C address-space qualifier for a memory flag (pointer params).
inline const char* space_qualifier(MemFlag flag) {
  switch (flag) {
    case Global: return "__global";
    case Local: return "__local";
    case Constant: return "__constant";
    case Private: return "__private";
  }
  return "__global";
}

}  // namespace detail
}  // namespace HPL

#endif  // HPLREPRO_HPL_TYPES_HPP
