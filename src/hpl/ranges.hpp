#ifndef HPLREPRO_HPL_RANGES_HPP
#define HPLREPRO_HPL_RANGES_HPP

/// \file ranges.hpp
/// Byte-range validity sets for the region-granular coherence protocol.
///
/// A RangeSet is a sorted list of disjoint half-open byte intervals
/// [begin, end). ArrayImpl tracks one per copy (host and each device), so
/// two devices can hold *disjoint* written regions of the same array at
/// once — the co-execution scheduler depends on this — and the runtime
/// transfers only the sub-ranges a consumer is actually missing.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace HPL {
namespace detail {

struct ByteRange {
  std::size_t begin = 0;
  std::size_t end = 0;  // half-open

  bool empty() const { return end <= begin; }
  std::size_t size() const { return empty() ? 0 : end - begin; }

  bool operator==(const ByteRange& o) const {
    return begin == o.begin && end == o.end;
  }
};

class RangeSet {
public:
  RangeSet() = default;

  static RangeSet whole(std::size_t bytes) {
    RangeSet set;
    set.add({0, bytes});
    return set;
  }

  bool empty() const { return runs_.empty(); }
  void clear() { runs_.clear(); }
  const std::vector<ByteRange>& runs() const { return runs_; }

  std::size_t total() const {
    std::size_t n = 0;
    for (const ByteRange& r : runs_) n += r.size();
    return n;
  }

  /// Adds [r.begin, r.end), coalescing with overlapping/adjacent runs.
  void add(ByteRange r) {
    if (r.empty()) return;
    std::vector<ByteRange> out;
    out.reserve(runs_.size() + 1);
    for (const ByteRange& run : runs_) {
      if (run.end < r.begin || run.begin > r.end) {
        out.push_back(run);  // disjoint and non-adjacent
      } else {
        r.begin = std::min(r.begin, run.begin);
        r.end = std::max(r.end, run.end);
      }
    }
    out.push_back(r);
    std::sort(out.begin(), out.end(),
              [](const ByteRange& a, const ByteRange& b) {
                return a.begin < b.begin;
              });
    runs_ = std::move(out);
  }

  /// Removes [r.begin, r.end) from the set (runs may be split).
  void subtract(const ByteRange& r) {
    if (r.empty()) return;
    std::vector<ByteRange> out;
    out.reserve(runs_.size() + 1);
    for (const ByteRange& run : runs_) {
      if (run.end <= r.begin || run.begin >= r.end) {
        out.push_back(run);
        continue;
      }
      if (run.begin < r.begin) out.push_back({run.begin, r.begin});
      if (run.end > r.end) out.push_back({r.end, run.end});
    }
    runs_ = std::move(out);
  }

  /// True iff every byte of `r` is covered.
  bool covers(const ByteRange& r) const {
    if (r.empty()) return true;
    for (const ByteRange& run : runs_) {
      if (run.begin <= r.begin && r.end <= run.end) return true;
    }
    return false;
  }

  bool intersects(const ByteRange& r) const {
    for (const ByteRange& run : runs_) {
      if (run.begin < r.end && r.begin < run.end) return true;
    }
    return false;
  }

  /// The covered pieces of `r`, in ascending order.
  std::vector<ByteRange> intersect(const ByteRange& r) const {
    std::vector<ByteRange> out;
    for (const ByteRange& run : runs_) {
      const std::size_t b = std::max(run.begin, r.begin);
      const std::size_t e = std::min(run.end, r.end);
      if (b < e) out.push_back({b, e});
    }
    return out;
  }

  /// The gaps of `r` not covered by the set, in ascending order.
  std::vector<ByteRange> missing(const ByteRange& r) const {
    std::vector<ByteRange> out;
    std::size_t cursor = r.begin;
    for (const ByteRange& run : runs_) {
      if (run.end <= cursor) continue;
      if (run.begin >= r.end) break;
      if (run.begin > cursor) out.push_back({cursor, run.begin});
      cursor = std::max(cursor, run.end);
    }
    if (cursor < r.end) out.push_back({cursor, r.end});
    return out;
  }

private:
  std::vector<ByteRange> runs_;  // sorted, disjoint, non-adjacent
};

}  // namespace detail
}  // namespace HPL

#endif  // HPLREPRO_HPL_RANGES_HPP
