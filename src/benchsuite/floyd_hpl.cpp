// HPL Floyd-Warshall: the kernel is three lines; the host loop passes the
// pivot as a scalar argument and HPL keeps the matrix resident on the
// device across the n launches (no redundant transfers).

#include "benchsuite/floyd.hpp"
#include "hpl/HPL.h"

namespace hplrepro::benchsuite {

namespace {

using namespace HPL;

void floyd_pass(Array<float, 2> dist, Uint k) {
  Float alternative;
  alternative = dist[idx][k] + dist[k][idy];
  if_(alternative < dist[idx][idy]) {
    dist[idx][idy] = alternative;
  } endif_
}

}  // namespace

FloydRun floyd_hpl(const FloydConfig& config, HPL::Device device) {
  const std::size_t n = config.nodes;
  std::vector<float> graph = floyd_make_graph(config);

  Array<float, 2> dist(n, n, graph.data());

  FloydRun run;
  const float* result = nullptr;
  run.timings = time_hpl_section([&] {
    for (int r = 0; r < config.repeats; ++r) {
      for (std::size_t k = 0; k < n; ++k) {
        eval(floyd_pass)
            .global(n, n)
            .local(config.tile, config.tile)
            .device(device)(dist, static_cast<std::uint32_t>(k));
      }
    }
    result = dist.data();  // syncs the matrix back to the host
  });
  run.distances.assign(result, result + n * n);

  return run;
}

}  // namespace hplrepro::benchsuite
