// OpenCL implementation of Floyd-Warshall in classic hand-written host
// style: explicit environment setup, buffer and program management with
// per-call error checks, and one NDRange launch per pivot.

#include <cstdio>
#include <cstdlib>

#include "benchsuite/floyd.hpp"
#include "clsim/cl_api.hpp"

namespace hplrepro::benchsuite {

namespace {

const char* kFloydKernelSource = R"CLC(
__kernel void floyd_pass(__global float* dist, uint n, uint k) {
  size_t i = get_global_id(0);
  size_t j = get_global_id(1);
  float current = dist[i * n + j];
  float alternative = dist[i * n + k] + dist[k * n + j];
  if (alternative < current) {
    dist[i * n + j] = alternative;
  }
}
)CLC";

void check(cl_int err, const char* what) {
  if (err != CL_SUCCESS) {
    std::fprintf(stderr, "Floyd OpenCL error %d at %s\n", err, what);
    std::exit(EXIT_FAILURE);
  }
}

}  // namespace

const char* floyd_kernel_source() { return kFloydKernelSource; }

FloydRun floyd_opencl(const FloydConfig& config,
                      const clsim::Device& device) {
  const std::size_t n = config.nodes;
  std::vector<float> graph = floyd_make_graph(config);
  cl_int err;

  FloydRun run;
  run.distances.resize(n * n);

  // Environment setup.
  cl_platform_id platform;
  err = clGetPlatformIDs(1, &platform, nullptr);
  check(err, "clGetPlatformIDs");

  cl_device_id dev = clsim::cl_api_device(device);

  cl_context context = clCreateContext(nullptr, 1, &dev, nullptr, nullptr,
                                       &err);
  check(err, "clCreateContext");

  cl_command_queue queue = clCreateCommandQueue(context, dev, 0, &err);
  check(err, "clCreateCommandQueue");

  cl_mem dist_buf = clCreateBuffer(context, CL_MEM_READ_WRITE,
                                   n * n * sizeof(float), nullptr, &err);
  check(err, "clCreateBuffer(dist)");

  run.timings = time_opencl_section(clsim::cl_api_queue(queue), [&] {
    err = clEnqueueWriteBuffer(queue, dist_buf, CL_TRUE, 0,
                               n * n * sizeof(float), graph.data(), 0,
                               nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(dist)");

    cl_program program = clCreateProgramWithSource(context, 1,
                                                   &kFloydKernelSource,
                                                   nullptr, &err);
    check(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &dev, nullptr, nullptr, nullptr);
    if (err != CL_SUCCESS) {
      char log[4096];
      clGetProgramBuildInfo(program, dev, CL_PROGRAM_BUILD_LOG, sizeof(log),
                            log, nullptr);
      std::fprintf(stderr, "Floyd build log:\n%s\n", log);
      check(err, "clBuildProgram");
    }

    cl_kernel kernel = clCreateKernel(program, "floyd_pass", &err);
    check(err, "clCreateKernel");

    const std::uint32_t n_arg = static_cast<std::uint32_t>(n);
    err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &dist_buf);
    check(err, "clSetKernelArg(0)");
    err = clSetKernelArg(kernel, 1, sizeof(std::uint32_t), &n_arg);
    check(err, "clSetKernelArg(1)");

    const std::size_t global[2] = {n, n};
    const std::size_t local[2] = {config.tile, config.tile};
    for (int r = 0; r < config.repeats; ++r) {
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t k_arg = static_cast<std::uint32_t>(k);
        err = clSetKernelArg(kernel, 2, sizeof(std::uint32_t), &k_arg);
        check(err, "clSetKernelArg(2)");
        err = clEnqueueNDRangeKernel(queue, kernel, 2, nullptr, global,
                                     local, 0, nullptr, nullptr);
        check(err, "clEnqueueNDRangeKernel");
      }
    }
    err = clFinish(queue);
    check(err, "clFinish");

    err = clEnqueueReadBuffer(queue, dist_buf, CL_TRUE, 0,
                              n * n * sizeof(float), run.distances.data(), 0,
                              nullptr, nullptr);
    check(err, "clEnqueueReadBuffer(dist)");

    clReleaseKernel(kernel);
    clReleaseProgram(program);
  });

  clReleaseMemObject(dist_buf);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);

  return run;
}

}  // namespace hplrepro::benchsuite
