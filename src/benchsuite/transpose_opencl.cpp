// OpenCL implementation of the tiled matrix transpose (AMD APP SDK
// scheme) in classic hand-written host style. Each group stages a 16x16
// tile in __local memory (padded to kill bank conflicts) so both the read
// and the write of global memory stay coalesced.

#include <cstdio>
#include <cstdlib>

#include "benchsuite/transpose.hpp"
#include "clsim/cl_api.hpp"

namespace hplrepro::benchsuite {

namespace {

const char* kTransposeKernelSource = R"CLC(
#define TILE 16
#define TILE_PAD 17

__kernel void transpose_tiled(__global float* out,
                              __global const float* in,
                              uint rows, uint cols) {
  __local float tile[272]; /* TILE * TILE_PAD */
  size_t gx = get_global_id(0);
  size_t gy = get_global_id(1);
  size_t lx = get_local_id(0);
  size_t ly = get_local_id(1);

  tile[ly * TILE_PAD + lx] = in[gy * cols + gx];
  barrier(CLK_LOCAL_MEM_FENCE);

  size_t ox = get_group_id(1) * TILE + lx;
  size_t oy = get_group_id(0) * TILE + ly;
  out[oy * rows + ox] = tile[lx * TILE_PAD + ly];
}
)CLC";

void check(cl_int err, const char* what) {
  if (err != CL_SUCCESS) {
    std::fprintf(stderr, "Transpose OpenCL error %d at %s\n", err, what);
    std::exit(EXIT_FAILURE);
  }
}

}  // namespace

const char* transpose_kernel_source() { return kTransposeKernelSource; }

TransposeRun transpose_opencl(const TransposeConfig& config,
                              const clsim::Device& device) {
  const std::size_t rows = config.rows, cols = config.cols;
  std::vector<float> input = transpose_make_input(config);
  cl_int err;

  TransposeRun run;
  run.output.resize(rows * cols);

  // Environment setup.
  cl_platform_id platform;
  err = clGetPlatformIDs(1, &platform, nullptr);
  check(err, "clGetPlatformIDs");

  cl_device_id dev = clsim::cl_api_device(device);

  cl_context context = clCreateContext(nullptr, 1, &dev, nullptr, nullptr,
                                       &err);
  check(err, "clCreateContext");

  cl_command_queue queue = clCreateCommandQueue(context, dev, 0, &err);
  check(err, "clCreateCommandQueue");

  cl_mem in_buf = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                 rows * cols * sizeof(float), nullptr, &err);
  check(err, "clCreateBuffer(in)");
  cl_mem out_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                  rows * cols * sizeof(float), nullptr,
                                  &err);
  check(err, "clCreateBuffer(out)");

  run.timings = time_opencl_section(clsim::cl_api_queue(queue), [&] {
    err = clEnqueueWriteBuffer(queue, in_buf, CL_TRUE, 0,
                               rows * cols * sizeof(float), input.data(), 0,
                               nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(in)");

    cl_program program = clCreateProgramWithSource(
        context, 1, &kTransposeKernelSource, nullptr, &err);
    check(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &dev, nullptr, nullptr, nullptr);
    if (err != CL_SUCCESS) {
      char log[4096];
      clGetProgramBuildInfo(program, dev, CL_PROGRAM_BUILD_LOG, sizeof(log),
                            log, nullptr);
      std::fprintf(stderr, "Transpose build log:\n%s\n", log);
      check(err, "clBuildProgram");
    }

    cl_kernel kernel = clCreateKernel(program, "transpose_tiled", &err);
    check(err, "clCreateKernel");

    const std::uint32_t rows_arg = static_cast<std::uint32_t>(rows);
    const std::uint32_t cols_arg = static_cast<std::uint32_t>(cols);
    err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &out_buf);
    check(err, "clSetKernelArg(0)");
    err = clSetKernelArg(kernel, 1, sizeof(cl_mem), &in_buf);
    check(err, "clSetKernelArg(1)");
    err = clSetKernelArg(kernel, 2, sizeof(std::uint32_t), &rows_arg);
    check(err, "clSetKernelArg(2)");
    err = clSetKernelArg(kernel, 3, sizeof(std::uint32_t), &cols_arg);
    check(err, "clSetKernelArg(3)");

    const std::size_t global[2] = {cols, rows};
    const std::size_t local[2] = {TransposeConfig::kTile,
                                  TransposeConfig::kTile};
    for (int r = 0; r < config.repeats; ++r) {
      err = clEnqueueNDRangeKernel(queue, kernel, 2, nullptr, global, local,
                                   0, nullptr, nullptr);
      check(err, "clEnqueueNDRangeKernel");
    }
    err = clFinish(queue);
    check(err, "clFinish");

    err = clEnqueueReadBuffer(queue, out_buf, CL_TRUE, 0,
                              rows * cols * sizeof(float),
                              run.output.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueReadBuffer(out)");

    clReleaseKernel(kernel);
    clReleaseProgram(program);
  });

  clReleaseMemObject(in_buf);
  clReleaseMemObject(out_buf);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);

  return run;
}

}  // namespace hplrepro::benchsuite
