// OpenCL implementation of the CSR sparse matrix-vector product (SHOC
// scheme) in classic hand-written host style: M threads cooperate on each
// row with a __local tree reduction; the host manages five buffers,
// program compilation and argument binding explicitly.

#include <cstdio>
#include <cstdlib>

#include "benchsuite/spmv.hpp"
#include "clsim/cl_api.hpp"

namespace hplrepro::benchsuite {

namespace {

const char* kSpmvKernelSource = R"CLC(
__kernel void spmv_csr(__global const float* values,
                       __global const float* vec,
                       __global const int* cols,
                       __global const int* rowptr,
                       __global float* out,
                       uint threads_per_row) {
  __local float sdata[64];
  size_t row = get_group_id(0);
  size_t lane = get_local_id(0);

  float sum = 0.0f;
  for (int j = rowptr[row] + (int)lane; j < rowptr[row + 1];
       j += (int)threads_per_row) {
    sum += values[j] * vec[cols[j]];
  }
  sdata[lane] = sum;
  barrier(CLK_LOCAL_MEM_FENCE);

  for (uint s = threads_per_row >> 1; s > 0; s >>= 1) {
    if (lane < s) {
      sdata[lane] += sdata[lane + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lane == 0) {
    out[row] = sdata[0];
  }
}
)CLC";

void check(cl_int err, const char* what) {
  if (err != CL_SUCCESS) {
    std::fprintf(stderr, "Spmv OpenCL error %d at %s\n", err, what);
    std::exit(EXIT_FAILURE);
  }
}

}  // namespace

const char* spmv_kernel_source() { return kSpmvKernelSource; }

SpmvRun spmv_opencl(const SpmvConfig& config, const clsim::Device& device) {
  const CsrProblem problem = spmv_make_problem(config);
  const std::size_t n = config.rows;
  const std::size_t nnz = problem.values.size();
  const std::size_t m = config.threads_per_row;
  cl_int err;

  SpmvRun run;
  run.output.resize(n);

  // Environment setup.
  cl_platform_id platform;
  err = clGetPlatformIDs(1, &platform, nullptr);
  check(err, "clGetPlatformIDs");

  cl_device_id dev = clsim::cl_api_device(device);

  cl_context context = clCreateContext(nullptr, 1, &dev, nullptr, nullptr,
                                       &err);
  check(err, "clCreateContext");

  cl_command_queue queue = clCreateCommandQueue(context, dev, 0, &err);
  check(err, "clCreateCommandQueue");

  cl_mem val_buf = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                  nnz * sizeof(float), nullptr, &err);
  check(err, "clCreateBuffer(values)");
  cl_mem vec_buf = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                  n * sizeof(float), nullptr, &err);
  check(err, "clCreateBuffer(vec)");
  cl_mem col_buf = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                  nnz * sizeof(std::int32_t), nullptr, &err);
  check(err, "clCreateBuffer(cols)");
  cl_mem row_buf = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                  (n + 1) * sizeof(std::int32_t), nullptr,
                                  &err);
  check(err, "clCreateBuffer(rowptr)");
  cl_mem out_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                  n * sizeof(float), nullptr, &err);
  check(err, "clCreateBuffer(out)");

  run.timings = time_opencl_section(clsim::cl_api_queue(queue), [&] {
    err = clEnqueueWriteBuffer(queue, val_buf, CL_TRUE, 0,
                               nnz * sizeof(float), problem.values.data(), 0,
                               nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(values)");
    err = clEnqueueWriteBuffer(queue, vec_buf, CL_TRUE, 0, n * sizeof(float),
                               problem.vec.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(vec)");
    err = clEnqueueWriteBuffer(queue, col_buf, CL_TRUE, 0,
                               nnz * sizeof(std::int32_t),
                               problem.cols.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(cols)");
    err = clEnqueueWriteBuffer(queue, row_buf, CL_TRUE, 0,
                               (n + 1) * sizeof(std::int32_t),
                               problem.rowptr.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(rowptr)");

    cl_program program = clCreateProgramWithSource(context, 1,
                                                   &kSpmvKernelSource,
                                                   nullptr, &err);
    check(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &dev, nullptr, nullptr, nullptr);
    if (err != CL_SUCCESS) {
      char log[4096];
      clGetProgramBuildInfo(program, dev, CL_PROGRAM_BUILD_LOG, sizeof(log),
                            log, nullptr);
      std::fprintf(stderr, "Spmv build log:\n%s\n", log);
      check(err, "clBuildProgram");
    }

    cl_kernel kernel = clCreateKernel(program, "spmv_csr", &err);
    check(err, "clCreateKernel");

    const std::uint32_t m_arg = static_cast<std::uint32_t>(m);
    err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &val_buf);
    check(err, "clSetKernelArg(0)");
    err = clSetKernelArg(kernel, 1, sizeof(cl_mem), &vec_buf);
    check(err, "clSetKernelArg(1)");
    err = clSetKernelArg(kernel, 2, sizeof(cl_mem), &col_buf);
    check(err, "clSetKernelArg(2)");
    err = clSetKernelArg(kernel, 3, sizeof(cl_mem), &row_buf);
    check(err, "clSetKernelArg(3)");
    err = clSetKernelArg(kernel, 4, sizeof(cl_mem), &out_buf);
    check(err, "clSetKernelArg(4)");
    err = clSetKernelArg(kernel, 5, sizeof(std::uint32_t), &m_arg);
    check(err, "clSetKernelArg(5)");

    const std::size_t global = n * m;
    const std::size_t local = m;
    for (int r = 0; r < config.repeats; ++r) {
      err = clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   &local, 0, nullptr, nullptr);
      check(err, "clEnqueueNDRangeKernel");
    }
    err = clFinish(queue);
    check(err, "clFinish");

    err = clEnqueueReadBuffer(queue, out_buf, CL_TRUE, 0, n * sizeof(float),
                              run.output.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueReadBuffer(out)");

    clReleaseKernel(kernel);
    clReleaseProgram(program);
  });

  clReleaseMemObject(val_buf);
  clReleaseMemObject(vec_buf);
  clReleaseMemObject(col_buf);
  clReleaseMemObject(row_buf);
  clReleaseMemObject(out_buf);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);

  return run;
}

}  // namespace hplrepro::benchsuite
