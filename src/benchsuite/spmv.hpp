#ifndef HPLREPRO_BENCHSUITE_SPMV_HPP
#define HPLREPRO_BENCHSUITE_SPMV_HPP

/// \file spmv.hpp
/// Sparse matrix-vector product on CSR storage (the SHOC benchmark the
/// paper uses, and the paper's own §IV-C example): one work-group of M
/// threads cooperates on each row, reducing partial products through
/// __local memory.

#include <cstdint>
#include <vector>

#include "benchsuite/common.hpp"
#include "hpl/runtime.hpp"

namespace hplrepro::benchsuite {

struct SpmvConfig {
  std::size_t rows = 1024;         // paper: 16K (Tesla) / 8K (Quadro)
  double density = 0.01;           // paper: 1% nonzeroes
  std::size_t threads_per_row = 8; // the paper's local domain M
  std::uint64_t seed = 0x5BA45EEDull;
  int repeats = 1;  // kernel launches per run (idempotent)
};

/// CSR matrix plus dense vector.
struct CsrProblem {
  std::vector<float> values;
  std::vector<std::int32_t> cols;
  std::vector<std::int32_t> rowptr;  // rows + 1 entries
  std::vector<float> vec;
};

CsrProblem spmv_make_problem(const SpmvConfig& config);

std::vector<float> spmv_serial(const SpmvConfig& config);

struct SpmvRun {
  std::vector<float> output;
  Timings timings;
};

/// The OpenCL C source of the spmv_csr kernel (shared with the
/// optimizer differential harness and the O0-vs-O2 microbench).
const char* spmv_kernel_source();

SpmvRun spmv_opencl(const SpmvConfig& config, const clsim::Device& device);
SpmvRun spmv_hpl(const SpmvConfig& config, HPL::Device device);

}  // namespace hplrepro::benchsuite

#endif  // HPLREPRO_BENCHSUITE_SPMV_HPP
