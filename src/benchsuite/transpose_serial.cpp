#include "benchsuite/transpose.hpp"

#include "support/prng.hpp"

namespace hplrepro::benchsuite {

std::vector<float> transpose_make_input(const TransposeConfig& config) {
  std::vector<float> in(config.rows * config.cols);
  SplitMix64 rng(config.seed);
  for (auto& v : in) v = rng.next_float() * 100.0f - 50.0f;
  return in;
}

std::vector<float> transpose_serial(const TransposeConfig& config) {
  const std::size_t rows = config.rows, cols = config.cols;
  const std::vector<float> in = transpose_make_input(config);
  std::vector<float> out(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[c * rows + r] = in[r * cols + c];
    }
  }
  return out;
}

}  // namespace hplrepro::benchsuite
