#include "benchsuite/floyd.hpp"

#include "support/prng.hpp"

namespace hplrepro::benchsuite {

std::vector<float> floyd_make_graph(const FloydConfig& config) {
  const std::size_t n = config.nodes;
  std::vector<float> d(n * n);
  SplitMix64 rng(config.seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Bounded positive weights; 0 on the diagonal. Dense graph keeps the
      // classic O(n^3) relaxation meaningful.
      d[i * n + j] = i == j ? 0.0f : 1.0f + rng.next_float() * 99.0f;
    }
  }
  return d;
}

std::vector<float> floyd_serial(const FloydConfig& config) {
  const std::size_t n = config.nodes;
  std::vector<float> d = floyd_make_graph(config);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const float dik = d[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        const float alt = dik + d[k * n + j];
        if (alt < d[i * n + j]) d[i * n + j] = alt;
      }
    }
  }
  return d;
}

}  // namespace hplrepro::benchsuite
