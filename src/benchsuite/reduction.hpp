#ifndef HPLREPRO_BENCHSUITE_REDUCTION_HPP
#define HPLREPRO_BENCHSUITE_REDUCTION_HPP

/// \file reduction.hpp
/// Sum reduction of a large float vector (the SHOC benchmark the paper
/// uses): a grid-stride kernel reduces the input into one partial sum per
/// work-group through __local memory; the host adds the partials.

#include <cstdint>
#include <vector>

#include "benchsuite/common.hpp"
#include "coexec/coexec.hpp"
#include "hpl/runtime.hpp"

namespace hplrepro::benchsuite {

struct ReductionConfig {
  std::size_t elements = 1 << 20;  // paper: 16M single-precision values
  std::size_t groups = 64;
  std::size_t local_size = 128;
  std::uint64_t seed = 0xADD5EEDull;
  int repeats = 1;  // kernel launches per run (idempotent)

  /// When non-empty, the HPL run co-executes each eval across these
  /// devices under `coexec_policy` (the `device` argument is ignored).
  std::vector<HPL::Device> coexec_devices;
  hplrepro::coexec::Policy coexec_policy = hplrepro::coexec::Policy::Static;

  std::size_t global_size() const { return groups * local_size; }
};

std::vector<float> reduction_make_input(const ReductionConfig& config);

double reduction_serial(const ReductionConfig& config);

struct ReductionRun {
  double sum = 0;
  Timings timings;
};

/// The OpenCL C source of the reduce_sum kernel (shared with the
/// optimizer differential harness and the O0-vs-O2 microbench).
const char* reduction_kernel_source();

ReductionRun reduction_opencl(const ReductionConfig& config,
                              const clsim::Device& device);
ReductionRun reduction_hpl(const ReductionConfig& config, HPL::Device device);

}  // namespace hplrepro::benchsuite

#endif  // HPLREPRO_BENCHSUITE_REDUCTION_HPP
