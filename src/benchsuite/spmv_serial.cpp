#include "benchsuite/spmv.hpp"

#include <algorithm>

#include "support/prng.hpp"

namespace hplrepro::benchsuite {

CsrProblem spmv_make_problem(const SpmvConfig& config) {
  const std::size_t n = config.rows;
  const auto per_row = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) * config.density));

  CsrProblem problem;
  problem.rowptr.resize(n + 1);
  problem.values.reserve(n * per_row);
  problem.cols.reserve(n * per_row);
  problem.vec.resize(n);

  SplitMix64 rng(config.seed);
  problem.rowptr[0] = 0;
  for (std::size_t r = 0; r < n; ++r) {
    // Random strictly-increasing column pattern per row (CSR convention).
    std::vector<std::int32_t> cols(per_row);
    for (auto& c : cols) {
      c = static_cast<std::int32_t>(rng.next_below(n));
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    for (const auto c : cols) {
      problem.cols.push_back(c);
      problem.values.push_back(rng.next_float() * 2.0f - 1.0f);
    }
    problem.rowptr[r + 1] = static_cast<std::int32_t>(problem.cols.size());
  }
  for (auto& v : problem.vec) v = rng.next_float() * 4.0f - 2.0f;
  return problem;
}

std::vector<float> spmv_serial(const SpmvConfig& config) {
  const CsrProblem problem = spmv_make_problem(config);
  const std::size_t n = config.rows;
  std::vector<float> out(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    float sum = 0.0f;
    for (std::int32_t j = problem.rowptr[i]; j < problem.rowptr[i + 1]; ++j) {
      sum += problem.values[static_cast<std::size_t>(j)] *
             problem.vec[static_cast<std::size_t>(problem.cols[j])];
    }
    out[i] = sum;
  }
  return out;
}

}  // namespace hplrepro::benchsuite
