// OpenCL implementation of NAS EP, written exactly the way a hand-coded
// OpenCL host program is: platform and device discovery, context, queue,
// buffer and program management through the C API, an error check after
// every call, explicit argument binding and explicit resource release.
// This is the baseline whose verbosity the paper's Table I measures.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchsuite/ep.hpp"
#include "clsim/cl_api.hpp"
#include "support/prng.hpp"

namespace hplrepro::benchsuite {

namespace {

const char* kEpKernelSource = R"CLC(
double randlc_next(double x, double a) {
  double t1, t2, t3, t4, a1, a2, x1, x2, z;
  t1 = 1.1920928955078125e-07 * a;
  a1 = (double)((long)t1);
  a2 = a - 8388608.0 * a1;
  t1 = 1.1920928955078125e-07 * x;
  x1 = (double)((long)t1);
  x2 = x - 8388608.0 * x1;
  t1 = a1 * x2 + a2 * x1;
  t2 = (double)((long)(1.1920928955078125e-07 * t1));
  z = t1 - 8388608.0 * t2;
  t3 = 8388608.0 * z + a2 * x2;
  t4 = (double)((long)(1.4210854715202004e-14 * t3));
  return t3 - 70368744177664.0 * t4;
}

__kernel void ep_kernel(__global const double* seeds,
                        __global double* sx_out,
                        __global double* sy_out,
                        __global int* q_out,
                        int chunk) {
  size_t tid = get_global_id(0);
  double a = 1220703125.0;
  double x = seeds[tid];
  double sx = 0.0;
  double sy = 0.0;
  int q[10];
  for (int i = 0; i < 10; i++) {
    q[i] = 0;
  }
  for (int k = 0; k < chunk; k++) {
    x = randlc_next(x, a);
    double u1 = 1.4210854715202004e-14 * x;
    x = randlc_next(x, a);
    double u2 = 1.4210854715202004e-14 * x;
    double xi = 2.0 * u1 - 1.0;
    double yi = 2.0 * u2 - 1.0;
    double t = xi * xi + yi * yi;
    if (t <= 1.0) {
      double f = sqrt(-2.0 * log(t) / t);
      double gx = xi * f;
      double gy = yi * f;
      int l = (int)fmax(fabs(gx), fabs(gy));
      q[l] = q[l] + 1;
      sx = sx + gx;
      sy = sy + gy;
    }
  }
  sx_out[tid] = sx;
  sy_out[tid] = sy;
  for (int i = 0; i < 10; i++) {
    q_out[tid * 10 + i] = q[i];
  }
}
)CLC";

void check(cl_int err, const char* what) {
  if (err != CL_SUCCESS) {
    std::fprintf(stderr, "EP OpenCL error %d at %s\n", err, what);
    std::exit(EXIT_FAILURE);
  }
}

}  // namespace

const char* ep_kernel_source() { return kEpKernelSource; }

EpRun ep_opencl(const EpConfig& config, const clsim::Device& device) {
  const std::size_t items = config.items();
  cl_int err;

  // Host-side setup: per-work-item starting seeds of the LCG stream.
  std::vector<double> seeds(items);
  for (std::size_t i = 0; i < items; ++i) {
    seeds[i] = NasLcg::skip_ahead(NasLcg::kDefaultSeed, 2 * config.chunk * i);
  }
  std::vector<double> sx(items), sy(items);
  std::vector<std::int32_t> q(items * 10);

  // Environment setup.
  cl_platform_id platform;
  cl_uint num_platforms;
  err = clGetPlatformIDs(1, &platform, &num_platforms);
  check(err, "clGetPlatformIDs");

  cl_device_id dev = clsim::cl_api_device(device);

  cl_context context = clCreateContext(nullptr, 1, &dev, nullptr, nullptr,
                                       &err);
  check(err, "clCreateContext");

  cl_command_queue queue = clCreateCommandQueue(context, dev, 0, &err);
  check(err, "clCreateCommandQueue");

  // Device buffers.
  cl_mem seeds_buf = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                    items * sizeof(double), nullptr, &err);
  check(err, "clCreateBuffer(seeds)");
  cl_mem sx_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                 items * sizeof(double), nullptr, &err);
  check(err, "clCreateBuffer(sx)");
  cl_mem sy_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                 items * sizeof(double), nullptr, &err);
  check(err, "clCreateBuffer(sy)");
  cl_mem q_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                items * 10 * sizeof(std::int32_t), nullptr,
                                &err);
  check(err, "clCreateBuffer(q)");

  EpRun run;
  // The timed section covers what the paper's measurements cover (§V-B):
  // kernel compilation, transfers and execution.
  run.timings = time_opencl_section(clsim::cl_api_queue(queue), [&] {
    err = clEnqueueWriteBuffer(queue, seeds_buf, CL_TRUE, 0,
                               items * sizeof(double), seeds.data(), 0,
                               nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(seeds)");

    // Program build.
    cl_program program = clCreateProgramWithSource(context, 1,
                                                   &kEpKernelSource, nullptr,
                                                   &err);
    check(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &dev, nullptr, nullptr, nullptr);
    if (err != CL_SUCCESS) {
      char log[4096];
      clGetProgramBuildInfo(program, dev, CL_PROGRAM_BUILD_LOG, sizeof(log),
                            log, nullptr);
      std::fprintf(stderr, "EP build log:\n%s\n", log);
      check(err, "clBuildProgram");
    }

    cl_kernel kernel = clCreateKernel(program, "ep_kernel", &err);
    check(err, "clCreateKernel");

    const std::int32_t chunk = static_cast<std::int32_t>(config.chunk);
    err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &seeds_buf);
    check(err, "clSetKernelArg(0)");
    err = clSetKernelArg(kernel, 1, sizeof(cl_mem), &sx_buf);
    check(err, "clSetKernelArg(1)");
    err = clSetKernelArg(kernel, 2, sizeof(cl_mem), &sy_buf);
    check(err, "clSetKernelArg(2)");
    err = clSetKernelArg(kernel, 3, sizeof(cl_mem), &q_buf);
    check(err, "clSetKernelArg(3)");
    err = clSetKernelArg(kernel, 4, sizeof(std::int32_t), &chunk);
    check(err, "clSetKernelArg(4)");

    const std::size_t global = items;
    const std::size_t local = config.local_size;
    for (int r = 0; r < config.repeats; ++r) {
      err = clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   &local, 0, nullptr, nullptr);
      check(err, "clEnqueueNDRangeKernel");
    }
    err = clFinish(queue);
    check(err, "clFinish");

    err = clEnqueueReadBuffer(queue, sx_buf, CL_TRUE, 0,
                              items * sizeof(double), sx.data(), 0, nullptr,
                              nullptr);
    check(err, "clEnqueueReadBuffer(sx)");
    err = clEnqueueReadBuffer(queue, sy_buf, CL_TRUE, 0,
                              items * sizeof(double), sy.data(), 0, nullptr,
                              nullptr);
    check(err, "clEnqueueReadBuffer(sy)");
    err = clEnqueueReadBuffer(queue, q_buf, CL_TRUE, 0,
                              items * 10 * sizeof(std::int32_t), q.data(), 0,
                              nullptr, nullptr);
    check(err, "clEnqueueReadBuffer(q)");

    clReleaseKernel(kernel);
    clReleaseProgram(program);
  });

  // Final host-side accumulation.
  for (std::size_t i = 0; i < items; ++i) {
    run.result.sx += sx[i];
    run.result.sy += sy[i];
    for (std::size_t l = 0; l < 10; ++l) {
      run.result.q[l] += static_cast<std::uint64_t>(q[i * 10 + l]);
    }
  }
  for (const auto count : run.result.q) run.result.accepted += count;

  clReleaseMemObject(seeds_buf);
  clReleaseMemObject(sx_buf);
  clReleaseMemObject(sy_buf);
  clReleaseMemObject(q_buf);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);

  return run;
}

}  // namespace hplrepro::benchsuite
