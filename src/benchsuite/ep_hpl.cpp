// HPL implementation of NAS EP. Note how little host code is left: the
// kernel is a C++ function, the LCG step is an ordinary C++ helper that
// composes statements into whatever kernel is being captured, and eval()
// takes care of buffers, transfers and compilation.

#include <cmath>
#include <vector>

#include "benchsuite/ep.hpp"
#include "hpl/HPL.h"
#include "support/prng.hpp"

namespace hplrepro::benchsuite {

namespace {

using namespace HPL;

constexpr double kR23 = 0x1.0p-23, kT23 = 0x1.0p23;
constexpr double kR46 = 0x1.0p-46, kT46 = 0x1.0p46;

// Emits `x = a*x mod 2^46` (the NAS LCG step) into the kernel being
// captured. Plain C++ helpers compose naturally with HPL kernels.
void randlc_step(Double& x, Double& t1, Double& t2, Double& x1, Double& x2,
                 Double& z, Double& t3, Double& t4) {
  const double a = NasLcg::kA;
  const double a1 = std::floor(kR23 * a);
  const double a2 = a - kT23 * a1;

  t1 = kR23 * x;
  x1 = trunc(t1);
  x2 = x - kT23 * x1;
  t1 = a1 * x2 + a2 * x1;
  t2 = trunc(kR23 * t1);
  z = t1 - kT23 * t2;
  t3 = kT23 * z + a2 * x2;
  t4 = trunc(kR46 * t3);
  x = t3 - kT46 * t4;
}

void ep_kernel(Array<double, 1> seeds, Array<double, 1> sx_out,
               Array<double, 1> sy_out, Array<int, 1> q_out, Int chunk) {
  Double x, sx, sy, t1, t2, x1, x2, z, t3, t4;
  Double u1, u2, xi, yi, t, f, gx, gy;
  Int i, k, l;
  Array<int, 1> q(10);

  x = seeds[idx];
  sx = 0.0;
  sy = 0.0;
  for_(i = 0, i < 10, i++) {
    q[i] = 0;
  } endfor_

  for_(k = 0, k < chunk, k++) {
    randlc_step(x, t1, t2, x1, x2, z, t3, t4);
    u1 = kR46 * x;
    randlc_step(x, t1, t2, x1, x2, z, t3, t4);
    u2 = kR46 * x;
    xi = 2.0 * u1 - 1.0;
    yi = 2.0 * u2 - 1.0;
    t = xi * xi + yi * yi;
    if_(t <= 1.0) {
      f = sqrt(-2.0 * log(t) / t);
      gx = xi * f;
      gy = yi * f;
      l = cast<std::int32_t>(fmax(fabs(gx), fabs(gy)));
      q[l] += 1;
      sx += gx;
      sy += gy;
    } endif_
  } endfor_

  sx_out[idx] = sx;
  sy_out[idx] = sy;
  for_(i = 0, i < 10, i++) {
    q_out[idx * 10 + i] = q[i];
  } endfor_
}

}  // namespace

EpRun ep_hpl(const EpConfig& config, HPL::Device device) {
  const std::size_t items = config.items();

  Array<double, 1> seeds(items), sx_out(items), sy_out(items);
  Array<int, 1> q_out(items * 10);
  for (std::size_t i = 0; i < items; ++i) {
    seeds(i) = NasLcg::skip_ahead(NasLcg::kDefaultSeed, 2 * config.chunk * i);
  }

  EpRun run;
  const double* sx_host = nullptr;
  const double* sy_host = nullptr;
  const int* q_host = nullptr;
  // The timed section covers capture + code generation + build + transfers
  // + execution, matching what the paper's measurements cover (§V-B).
  run.timings = time_hpl_section([&] {
    for (int r = 0; r < config.repeats; ++r) {
      eval(ep_kernel)
          .global(items)
          .local(config.local_size)
          .device(device)(seeds, sx_out, sy_out, q_out,
                          static_cast<std::int32_t>(config.chunk));
    }
    sx_host = sx_out.data();  // data() syncs the results back to the host
    sy_host = sy_out.data();
    q_host = q_out.data();
  });

  for (std::size_t i = 0; i < items; ++i) {
    run.result.sx += sx_host[i];
    run.result.sy += sy_host[i];
    for (std::size_t l = 0; l < 10; ++l) {
      run.result.q[l] += static_cast<std::uint64_t>(q_host[i * 10 + l]);
    }
  }
  for (const auto count : run.result.q) run.result.accepted += count;

  return run;
}

}  // namespace hplrepro::benchsuite
