#ifndef HPLREPRO_BENCHSUITE_TRANSPOSE_HPP
#define HPLREPRO_BENCHSUITE_TRANSPOSE_HPP

/// \file transpose.hpp
/// Matrix transpose (the AMD APP SDK benchmark the paper uses): the
/// optimised variant reads coalesced tiles into __local memory and writes
/// them back transposed, so both global accesses stay contiguous
/// (see the paper's footnote 1).

#include <cstdint>
#include <vector>

#include "benchsuite/common.hpp"
#include "coexec/coexec.hpp"
#include "hpl/runtime.hpp"

namespace hplrepro::benchsuite {

struct TransposeConfig {
  std::size_t rows = 512;    // paper: 16K (Tesla) / 5K (Quadro)
  std::size_t cols = 512;
  std::uint64_t seed = 0x7A05E5EEDull;
  int repeats = 1;  // kernel launches per run (idempotent)

  /// When non-empty, the HPL run co-executes each eval across these
  /// devices under `coexec_policy` (the `device` argument is ignored).
  std::vector<HPL::Device> coexec_devices;
  hplrepro::coexec::Policy coexec_policy = hplrepro::coexec::Policy::Static;

  static constexpr std::size_t kTile = 16;  // fixed tile edge
};

std::vector<float> transpose_make_input(const TransposeConfig& config);

/// Serial reference: out[c][r] = in[r][c].
std::vector<float> transpose_serial(const TransposeConfig& config);

struct TransposeRun {
  std::vector<float> output;  // cols x rows
  Timings timings;
};

/// The OpenCL C source of the transpose_tiled kernel (shared with the
/// optimizer differential harness and the O0-vs-O2 microbench).
const char* transpose_kernel_source();

TransposeRun transpose_opencl(const TransposeConfig& config,
                              const clsim::Device& device);
TransposeRun transpose_hpl(const TransposeConfig& config, HPL::Device device);

}  // namespace hplrepro::benchsuite

#endif  // HPLREPRO_BENCHSUITE_TRANSPOSE_HPP
