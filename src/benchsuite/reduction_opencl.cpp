// OpenCL implementation of the sum reduction (SHOC scheme) in classic
// hand-written host style: grid-stride accumulation into a __local tree
// reduction, one partial per group, final sum on the host.

#include <cstdio>
#include <cstdlib>

#include "benchsuite/reduction.hpp"
#include "clsim/cl_api.hpp"

namespace hplrepro::benchsuite {

namespace {

const char* kReductionKernelSource = R"CLC(
__kernel void reduce_sum(__global const float* in,
                         __global float* partials,
                         uint n) {
  __local float sdata[128];
  size_t tid = get_local_id(0);
  size_t gid = get_global_id(0);
  size_t stride = get_global_size(0);

  float sum = 0.0f;
  for (size_t i = gid; i < n; i += stride) {
    sum += in[i];
  }
  sdata[tid] = sum;
  barrier(CLK_LOCAL_MEM_FENCE);

  for (uint s = (uint)get_local_size(0) >> 1; s > 0u; s >>= 1) {
    if (tid < s) {
      sdata[tid] += sdata[tid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (tid == 0) {
    partials[get_group_id(0)] = sdata[0];
  }
}

/* The flat local-tiled form: every item publishes one element to the
 * tile, one barrier, then item 0 serially folds the tile into the
 * group's partial. Two barrier regions whose bodies amortize to O(1)
 * work per item (the fold costs one add per published element), so with
 * large groups the per-item activation state — one VM, register file
 * and resume bookkeeping per item — dominates: the shape work-group
 * loops are built for. */
__kernel void reduce_sum_flat(__global const float* in,
                              __global float* partials,
                              uint n) {
  __local float sdata[1024];
  uint tid = (uint)get_local_id(0);
  uint gid = (uint)get_global_id(0);

  sdata[tid] = gid < n ? in[gid] : 0.0f;
  barrier(CLK_LOCAL_MEM_FENCE);

  if (tid == 0u) {
    uint m = (uint)get_local_size(0);
    float s0 = 0.0f;
    float s1 = 0.0f;
    float s2 = 0.0f;
    float s3 = 0.0f;
    for (uint i = 0u; i < m; i += 4u) {
      s0 += sdata[i];
      s1 += sdata[i + 1u];
      s2 += sdata[i + 2u];
      s3 += sdata[i + 3u];
    }
    partials[get_group_id(0)] = ((s0 + s1) + s2) + s3;
  }
}
)CLC";

void check(cl_int err, const char* what) {
  if (err != CL_SUCCESS) {
    std::fprintf(stderr, "Reduction OpenCL error %d at %s\n", err, what);
    std::exit(EXIT_FAILURE);
  }
}

}  // namespace

const char* reduction_kernel_source() { return kReductionKernelSource; }

ReductionRun reduction_opencl(const ReductionConfig& config,
                              const clsim::Device& device) {
  const std::vector<float> input = reduction_make_input(config);
  const std::size_t n = config.elements;
  cl_int err;

  ReductionRun run;
  std::vector<float> partials(config.groups);

  // Environment setup.
  cl_platform_id platform;
  err = clGetPlatformIDs(1, &platform, nullptr);
  check(err, "clGetPlatformIDs");

  cl_device_id dev = clsim::cl_api_device(device);

  cl_context context = clCreateContext(nullptr, 1, &dev, nullptr, nullptr,
                                       &err);
  check(err, "clCreateContext");

  cl_command_queue queue = clCreateCommandQueue(context, dev, 0, &err);
  check(err, "clCreateCommandQueue");

  cl_mem in_buf = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                 n * sizeof(float), nullptr, &err);
  check(err, "clCreateBuffer(in)");
  cl_mem partials_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                       config.groups * sizeof(float),
                                       nullptr, &err);
  check(err, "clCreateBuffer(partials)");

  run.timings = time_opencl_section(clsim::cl_api_queue(queue), [&] {
    err = clEnqueueWriteBuffer(queue, in_buf, CL_TRUE, 0, n * sizeof(float),
                               input.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(in)");

    cl_program program = clCreateProgramWithSource(
        context, 1, &kReductionKernelSource, nullptr, &err);
    check(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &dev, nullptr, nullptr, nullptr);
    if (err != CL_SUCCESS) {
      char log[4096];
      clGetProgramBuildInfo(program, dev, CL_PROGRAM_BUILD_LOG, sizeof(log),
                            log, nullptr);
      std::fprintf(stderr, "Reduction build log:\n%s\n", log);
      check(err, "clBuildProgram");
    }

    cl_kernel kernel = clCreateKernel(program, "reduce_sum", &err);
    check(err, "clCreateKernel");

    const std::uint32_t n_arg = static_cast<std::uint32_t>(n);
    err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &in_buf);
    check(err, "clSetKernelArg(0)");
    err = clSetKernelArg(kernel, 1, sizeof(cl_mem), &partials_buf);
    check(err, "clSetKernelArg(1)");
    err = clSetKernelArg(kernel, 2, sizeof(std::uint32_t), &n_arg);
    check(err, "clSetKernelArg(2)");

    const std::size_t global = config.global_size();
    const std::size_t local = config.local_size;
    for (int r = 0; r < config.repeats; ++r) {
      err = clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   &local, 0, nullptr, nullptr);
      check(err, "clEnqueueNDRangeKernel");
    }
    err = clFinish(queue);
    check(err, "clFinish");

    err = clEnqueueReadBuffer(queue, partials_buf, CL_TRUE, 0,
                              config.groups * sizeof(float), partials.data(),
                              0, nullptr, nullptr);
    check(err, "clEnqueueReadBuffer(partials)");

    clReleaseKernel(kernel);
    clReleaseProgram(program);
  });

  for (const float p : partials) run.sum += static_cast<double>(p);

  clReleaseMemObject(in_buf);
  clReleaseMemObject(partials_buf);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);

  return run;
}

}  // namespace hplrepro::benchsuite
