// HPL sum reduction: the grid-stride loop, the __local tree and the
// barriers translate one-to-one from the OpenCL scheme, but the host side
// shrinks to the eval call and a loop over the partials.

#include "benchsuite/reduction.hpp"
#include "hpl/HPL.h"

namespace hplrepro::benchsuite {

namespace {

using namespace HPL;

void reduce_sum(Array<float, 1> in, Array<float, 1> partials, Uint n) {
  Array<float, 1, Local> sdata(128);
  Uint i, s;
  Float sum = 0;

  for_(i = cast<std::uint32_t>(idx), i < n, i += cast<std::uint32_t>(szx)) {
    sum += in[i];
  } endfor_

  sdata[lidx] = sum;
  barrier(LOCAL);

  for_(s = cast<std::uint32_t>(lszx) >> 1, s > 0u, s = s >> 1) {
    if_(lidx < s) {
      sdata[lidx] += sdata[lidx + s];
    } endif_
    barrier(LOCAL);
  } endfor_

  if_(lidx == 0) {
    partials[gidx] = sdata[0];
  } endif_
}

}  // namespace

ReductionRun reduction_hpl(const ReductionConfig& config, HPL::Device device) {
  std::vector<float> input = reduction_make_input(config);
  const std::size_t n = config.elements;

  Array<float, 1> in(n, input.data());
  Array<float, 1> partials(config.groups);

  ReductionRun run;
  const float* partial_host = nullptr;
  run.timings = time_hpl_section([&] {
    for (int r = 0; r < config.repeats; ++r) {
      auto ev = eval(reduce_sum);
      ev.global(config.global_size()).local(config.local_size);
      if (config.coexec_devices.empty()) {
        ev.device(device);
      } else {
        // Split along the (only) dimension: partials maps one row per
        // work-group, the grid-stride input stays a whole-array read.
        ev.devices(config.coexec_devices).policy(config.coexec_policy);
      }
      ev(in, partials, static_cast<std::uint32_t>(n));
    }
    partial_host = partials.data();  // syncs the partials back to the host
  });
  for (std::size_t g = 0; g < config.groups; ++g) {
    run.sum += static_cast<double>(partial_host[g]);
  }

  return run;
}

}  // namespace hplrepro::benchsuite
