#ifndef HPLREPRO_BENCHSUITE_FLOYD_HPP
#define HPLREPRO_BENCHSUITE_FLOYD_HPP

/// \file floyd.hpp
/// Floyd-Warshall all-pairs shortest paths (the AMD APP SDK benchmark the
/// paper uses). The host iterates the pivot k; each step launches an
/// n x n kernel relaxing every (i, j) through k.

#include <cstdint>
#include <vector>

#include "benchsuite/common.hpp"
#include "hpl/runtime.hpp"

namespace hplrepro::benchsuite {

struct FloydConfig {
  std::size_t nodes = 128;          // paper: 1024 (Tesla), 512 (Quadro)
  std::size_t tile = 16;            // local domain edge
  std::uint64_t seed = 0x5EEDF10Dull;
  int repeats = 1;  // extra full pivot sweeps (idempotent once converged)
};

/// Random dense distance matrix (row-major n*n, no self loops).
std::vector<float> floyd_make_graph(const FloydConfig& config);

/// Serial C++ reference.
std::vector<float> floyd_serial(const FloydConfig& config);

struct FloydRun {
  std::vector<float> distances;
  Timings timings;
};

/// The OpenCL C source of the floyd_pass kernel (shared with the
/// optimizer differential harness and the O0-vs-O2 microbench).
const char* floyd_kernel_source();

FloydRun floyd_opencl(const FloydConfig& config, const clsim::Device& device);
FloydRun floyd_hpl(const FloydConfig& config, HPL::Device device);

}  // namespace hplrepro::benchsuite

#endif  // HPLREPRO_BENCHSUITE_FLOYD_HPP
