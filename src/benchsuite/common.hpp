#ifndef HPLREPRO_BENCHSUITE_COMMON_HPP
#define HPLREPRO_BENCHSUITE_COMMON_HPP

/// \file common.hpp
/// Shared infrastructure for the five paper benchmarks. Each benchmark is
/// implemented three times:
///   * `<name>_serial`  — plain C++ on the host (correctness oracle);
///   * `<name>_opencl`  — OpenCL style: clsim host API + kernel strings
///                        (stands in for the paper's hand-written OpenCL);
///   * `<name>_hpl`     — using the HPL library.
/// Device versions report Timings combining real host-side overhead with
/// simulated device time, the quantity whose ratios the paper reports.

#include <cstdint>

#include "clsim/runtime.hpp"
#include "hpl/runtime.hpp"
#include "support/stopwatch.hpp"

namespace hplrepro::benchsuite {

struct Timings {
  double host_seconds = 0;          // real wall-clock host overhead
  double kernel_sim_seconds = 0;    // simulated device kernel time
  double transfer_sim_seconds = 0;  // simulated host<->device transfers

  /// The paper's Figs. 6-8 convention: transfers excluded.
  double modeled_no_transfer() const {
    return host_seconds + kernel_sim_seconds;
  }
  double modeled_total() const {
    return host_seconds + kernel_sim_seconds + transfer_sim_seconds;
  }

  Timings& operator+=(const Timings& o) {
    host_seconds += o.host_seconds;
    kernel_sim_seconds += o.kernel_sim_seconds;
    transfer_sim_seconds += o.transfer_sim_seconds;
    return *this;
  }
};

/// Measures an OpenCL-style section: captures the queue's simulated and
/// wall times around `body` and converts them into Timings, where
/// host_seconds = (wall time of body) - (wall time spent simulating).
template <typename Body>
Timings time_opencl_section(clsim::CommandQueue& queue, Body&& body) {
  queue.finish();
  const double sim0 = queue.simulated_seconds();
  const double simk0 = queue.simulated_kernel_seconds();
  const double wall_sim0 = queue.wall_seconds();
  Stopwatch watch;
  body();
  queue.finish();  // the queue is asynchronous: wait out in-flight commands
  const double wall = watch.seconds();
  Timings t;
  t.kernel_sim_seconds = queue.simulated_kernel_seconds() - simk0;
  t.transfer_sim_seconds =
      (queue.simulated_seconds() - sim0) - t.kernel_sim_seconds;
  t.host_seconds = wall - (queue.wall_seconds() - wall_sim0);
  if (t.host_seconds < 0) t.host_seconds = 0;
  return t;
}

/// Measures an HPL section symmetrically to time_opencl_section:
/// host_seconds is the section's wall time minus the wall time HPL spent
/// simulating device work, so the two variants are directly comparable.
template <typename Body>
Timings time_hpl_section(Body&& body) {
  const HPL::ProfileSnapshot before = HPL::profile();
  Stopwatch watch;
  body();
  const double wall = watch.seconds();
  const HPL::ProfileSnapshot after = HPL::profile();
  Timings t;
  t.kernel_sim_seconds =
      after.kernel_sim_seconds - before.kernel_sim_seconds;
  t.transfer_sim_seconds =
      after.transfer_sim_seconds - before.transfer_sim_seconds;
  t.host_seconds =
      wall - (after.sim_wall_seconds - before.sim_wall_seconds);
  if (t.host_seconds < 0) t.host_seconds = 0;
  return t;
}

}  // namespace hplrepro::benchsuite

#endif  // HPLREPRO_BENCHSUITE_COMMON_HPP
