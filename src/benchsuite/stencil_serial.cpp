// Serial references for the stencil family. Each loop accumulates in
// exactly the order the kernels do, so device results match bit-for-bit
// (up to libm rounding in sobel's sqrt).

#include "benchsuite/stencil.hpp"

#include <cmath>

#include "support/prng.hpp"

namespace hplrepro::benchsuite {

namespace {

/// Resolves one stencil tap against the edge policy — the single source of
/// truth the kernels replicate (sample_edge in the OpenCL sources, the
/// if_/else_ chain in the HPL kernels).
float sample(const std::vector<float>& img, int x, int y, int w, int h,
             EdgePolicy edge) {
  switch (edge) {
    case EdgePolicy::Zero:
      if (x < 0 || x >= w || y < 0 || y >= h) return 0.0f;
      break;
    case EdgePolicy::Clamp:
      x = x < 0 ? 0 : (x >= w ? w - 1 : x);
      y = y < 0 ? 0 : (y >= h ? h - 1 : y);
      break;
    case EdgePolicy::Wrap:
      x = ((x % w) + w) % w;
      y = ((y % h) + h) % h;
      break;
  }
  return img[static_cast<std::size_t>(y) * static_cast<std::size_t>(w) + x];
}

}  // namespace

const char* edge_policy_name(EdgePolicy policy) {
  switch (policy) {
    case EdgePolicy::Zero: return "zero";
    case EdgePolicy::Clamp: return "clamp";
    case EdgePolicy::Wrap: return "wrap";
  }
  return "?";
}

std::vector<float> stencil_make_image(const StencilConfig& config) {
  std::vector<float> img(config.pixels());
  SplitMix64 rng(config.seed);
  for (auto& v : img) v = rng.next_float();
  return img;
}

const std::array<float, 9>& blur_weights() {
  static const std::array<float, 9> w = {
      1.0f / 16, 2.0f / 16, 1.0f / 16,  //
      2.0f / 16, 4.0f / 16, 2.0f / 16,  //
      1.0f / 16, 2.0f / 16, 1.0f / 16,
  };
  return w;
}

std::vector<float> blur_serial(const StencilConfig& config) {
  const int w = static_cast<int>(config.width);
  const int h = static_cast<int>(config.height);
  const std::vector<float> in = stencil_make_image(config);
  const std::array<float, 9>& w9 = blur_weights();
  std::vector<float> out(config.pixels());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          acc += sample(in, x + dx, y + dy, w, h, config.edge) *
                 w9[static_cast<std::size_t>((dy + 1) * 3 + (dx + 1))];
        }
      }
      out[static_cast<std::size_t>(y) * config.width + x] = acc;
    }
  }
  return out;
}

std::vector<float> sobel_serial(const StencilConfig& config) {
  const int w = static_cast<int>(config.width);
  const int h = static_cast<int>(config.height);
  const std::vector<float> in = stencil_make_image(config);
  std::vector<float> out(config.pixels());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float n[3][3];
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
          n[r][c] = sample(in, x + c - 1, y + r - 1, w, h, config.edge);
        }
      }
      const float gx = (n[0][2] - n[0][0]) + 2.0f * (n[1][2] - n[1][0]) +
                       (n[2][2] - n[2][0]);
      const float gy = (n[2][0] - n[0][0]) + 2.0f * (n[2][1] - n[0][1]) +
                       (n[2][2] - n[0][2]);
      out[static_cast<std::size_t>(y) * config.width + x] =
          std::sqrt(gx * gx + gy * gy);
    }
  }
  return out;
}

std::vector<float> jacobi_serial(const StencilConfig& config) {
  const int w = static_cast<int>(config.width);
  const int h = static_cast<int>(config.height);
  std::vector<float> cur = stencil_make_image(config);
  std::vector<float> next(config.pixels());
  for (int it = 0; it < config.iterations; ++it) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const float l = sample(cur, x - 1, y, w, h, config.edge);
        const float r = sample(cur, x + 1, y, w, h, config.edge);
        const float u = sample(cur, x, y - 1, w, h, config.edge);
        const float d = sample(cur, x, y + 1, w, h, config.edge);
        next[static_cast<std::size_t>(y) * config.width + x] =
            0.25f * (((l + r) + u) + d);
      }
    }
    cur.swap(next);
  }
  return cur;
}

}  // namespace hplrepro::benchsuite
