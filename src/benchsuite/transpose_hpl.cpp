// HPL tiled matrix transpose. The 2-D __local tile and the group/local
// predefined variables express the same AMD APP SDK scheme as the OpenCL
// version, without any buffer or program management.

#include "benchsuite/transpose.hpp"
#include "hpl/HPL.h"

namespace hplrepro::benchsuite {

namespace {

using namespace HPL;

constexpr std::size_t kTile = TransposeConfig::kTile;

void transpose_tiled(Array<float, 2> out, Array<float, 2> in) {
  Array<float, 2, Local> tile(kTile, kTile + 1);  // pad: no bank conflicts

  tile[lidy][lidx] = in[idy][idx];
  barrier(LOCAL);
  out[gidx * kTile + lidy][gidy * kTile + lidx] = tile[lidx][lidy];
}

}  // namespace

TransposeRun transpose_hpl(const TransposeConfig& config, HPL::Device device) {
  const std::size_t rows = config.rows, cols = config.cols;
  std::vector<float> input = transpose_make_input(config);

  Array<float, 2> in(rows, cols, input.data());
  Array<float, 2> out(cols, rows);

  TransposeRun run;
  const float* result = nullptr;
  run.timings = time_hpl_section([&] {
    for (int r = 0; r < config.repeats; ++r) {
      auto ev = eval(transpose_tiled);
      ev.global(cols, rows).local(kTile, kTile);
      if (config.coexec_devices.empty()) {
        ev.device(device);
      } else {
        // Split along dimension 0: each chunk writes a contiguous band of
        // out rows while reading a column stripe of in (whole-array read).
        ev.devices(config.coexec_devices).policy(config.coexec_policy);
      }
      ev(out, in);
    }
    result = out.data();  // syncs the result back to the host
  });
  run.output.assign(result, result + rows * cols);

  return run;
}

}  // namespace hplrepro::benchsuite
