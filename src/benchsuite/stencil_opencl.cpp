// OpenCL implementations of the stencil family in classic hand-written
// host style: explicit platform/context/queue/buffer/program management
// with per-call error checks. Every kernel source carries the same
// sample_edge helper — the boundary policy resolver whose behaviour the
// serial references define — and guards the ragged border of a global
// domain rounded up to tile multiples.

#include <cstdio>
#include <cstdlib>

#include "benchsuite/stencil.hpp"
#include "clsim/cl_api.hpp"

namespace hplrepro::benchsuite {

namespace {

// Shared boundary resolver, spliced into each program (clc programs are
// self-contained translation units, exactly like real OpenCL).
#define HPLREPRO_SAMPLE_EDGE_CLC                                          \
  "float sample_edge(__global const float* img, int x, int y,\n"          \
  "                  int w, int h, int edge) {\n"                         \
  "  if (edge == 0) {\n"                                                  \
  "    if (x < 0 || x >= w || y < 0 || y >= h) return 0.0f;\n"            \
  "    return img[y * w + x];\n"                                          \
  "  }\n"                                                                 \
  "  if (edge == 1) {\n"                                                  \
  "    x = min(max(x, 0), w - 1);\n"                                      \
  "    y = min(max(y, 0), h - 1);\n"                                      \
  "    return img[y * w + x];\n"                                          \
  "  }\n"                                                                 \
  "  x = ((x % w) + w) % w;\n"                                            \
  "  y = ((y % h) + h) % h;\n"                                            \
  "  return img[y * w + x];\n"                                            \
  "}\n"

const char* kBlurKernelSource =
    HPLREPRO_SAMPLE_EDGE_CLC
    R"CLC(
__kernel void blur3(__global float* out, __global const float* in,
                    __constant float* weights,
                    int width, int height, int edge) {
  int x = (int)get_global_id(0);
  int y = (int)get_global_id(1);
  if (x >= width || y >= height) return;
  float acc = 0.0f;
  for (int dy = -1; dy <= 1; dy++) {
    for (int dx = -1; dx <= 1; dx++) {
      acc += sample_edge(in, x + dx, y + dy, width, height, edge) *
             weights[(dy + 1) * 3 + (dx + 1)];
    }
  }
  out[y * width + x] = acc;
}
)CLC";

const char* kSobelKernelSource =
    HPLREPRO_SAMPLE_EDGE_CLC
    R"CLC(
__kernel void sobel(__global float* out, __global const float* in,
                    int width, int height, int edge) {
  int x = (int)get_global_id(0);
  int y = (int)get_global_id(1);
  if (x >= width || y >= height) return;
  float n00 = sample_edge(in, x - 1, y - 1, width, height, edge);
  float n01 = sample_edge(in, x,     y - 1, width, height, edge);
  float n02 = sample_edge(in, x + 1, y - 1, width, height, edge);
  float n10 = sample_edge(in, x - 1, y,     width, height, edge);
  float n12 = sample_edge(in, x + 1, y,     width, height, edge);
  float n20 = sample_edge(in, x - 1, y + 1, width, height, edge);
  float n21 = sample_edge(in, x,     y + 1, width, height, edge);
  float n22 = sample_edge(in, x + 1, y + 1, width, height, edge);
  float gx = (n02 - n00) + 2.0f * (n12 - n10) + (n22 - n20);
  float gy = (n20 - n00) + 2.0f * (n21 - n01) + (n22 - n02);
  out[y * width + x] = sqrt(gx * gx + gy * gy);
}
)CLC";

// One Jacobi sweep with the halo-exchange scheme: every work-group stages
// a (TILE+2)^2 block — centre cells plus a one-cell halo loaded by the
// group's border items — in __local memory, so each global cell is read
// once per group instead of up to four times.
const char* kJacobiKernelSource =
    HPLREPRO_SAMPLE_EDGE_CLC
    R"CLC(
#define TILE 8
#define TILE_H 10 /* TILE + 2 halo cells */

__kernel void jacobi_step(__global float* out, __global const float* in,
                          int width, int height, int edge) {
  __local float tile[100]; /* TILE_H * TILE_H */
  int x = (int)get_global_id(0);
  int y = (int)get_global_id(1);
  int lx = (int)get_local_id(0) + 1;
  int ly = (int)get_local_id(1) + 1;

  tile[ly * TILE_H + lx] = sample_edge(in, x, y, width, height, edge);
  if (lx == 1) {
    tile[ly * TILE_H] = sample_edge(in, x - 1, y, width, height, edge);
  }
  if (lx == TILE) {
    tile[ly * TILE_H + TILE + 1] =
        sample_edge(in, x + 1, y, width, height, edge);
  }
  if (ly == 1) {
    tile[lx] = sample_edge(in, x, y - 1, width, height, edge);
  }
  if (ly == TILE) {
    tile[(TILE + 1) * TILE_H + lx] =
        sample_edge(in, x, y + 1, width, height, edge);
  }
  barrier(CLK_LOCAL_MEM_FENCE);

  if (x < width && y < height) {
    float l = tile[ly * TILE_H + lx - 1];
    float r = tile[ly * TILE_H + lx + 1];
    float u = tile[(ly - 1) * TILE_H + lx];
    float d = tile[(ly + 1) * TILE_H + lx];
    out[y * width + x] = 0.25f * (((l + r) + u) + d);
  }
}

/* The barrier-exchange form of the sweep on a 1-D ring: each work-item
 * publishes its cell to the group's tile, synchronizes once, then relaxes
 * against its two tile neighbours (periodic within the tile, `mask` =
 * local_size - 1). Two barrier regions of O(1) work per item over large
 * groups — the geometry where the per-item activation cost that
 * work-group loops remove dominates the kernel. */
__kernel void jacobi_ring(__global float* out, __global const float* in,
                          uint mask) {
  __local float ring[1024];
  uint lid = (uint)get_local_id(0);
  uint gid = (uint)get_global_id(0);

  ring[lid] = in[gid];
  barrier(CLK_LOCAL_MEM_FENCE);

  float l = ring[(lid - 1u) & mask];
  float r = ring[(lid + 1u) & mask];
  out[gid] = (l + ring[lid] + r) * (1.0f / 3.0f);
}
)CLC";

#undef HPLREPRO_SAMPLE_EDGE_CLC

void check(cl_int err, const char* what) {
  if (err != CL_SUCCESS) {
    std::fprintf(stderr, "Stencil OpenCL error %d at %s\n", err, what);
    std::exit(EXIT_FAILURE);
  }
}

std::size_t round_up_tiles(std::size_t n) {
  const std::size_t tile = StencilConfig::kTile;
  return (n + tile - 1) / tile * tile;
}

// The shared host scaffolding: environment setup, program build, the
// rounded-up 2D launch geometry, timed run, teardown. Each workload
// supplies its buffers and argument binding through `body`.
struct StencilEnv {
  cl_device_id dev;
  cl_context context;
  cl_command_queue queue;
  cl_program program;
  cl_kernel kernel;

  StencilEnv(const clsim::Device& device, const char* source,
             const char* kernel_name) {
    cl_int err;
    cl_platform_id platform;
    err = clGetPlatformIDs(1, &platform, nullptr);
    check(err, "clGetPlatformIDs");
    dev = clsim::cl_api_device(device);
    context = clCreateContext(nullptr, 1, &dev, nullptr, nullptr, &err);
    check(err, "clCreateContext");
    queue = clCreateCommandQueue(context, dev, 0, &err);
    check(err, "clCreateCommandQueue");
    program = clCreateProgramWithSource(context, 1, &source, nullptr, &err);
    check(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &dev, nullptr, nullptr, nullptr);
    if (err != CL_SUCCESS) {
      char log[4096];
      clGetProgramBuildInfo(program, dev, CL_PROGRAM_BUILD_LOG, sizeof(log),
                            log, nullptr);
      std::fprintf(stderr, "Stencil build log:\n%s\n", log);
      check(err, "clBuildProgram");
    }
    kernel = clCreateKernel(program, kernel_name, &err);
    check(err, "clCreateKernel");
  }

  ~StencilEnv() {
    clReleaseKernel(kernel);
    clReleaseProgram(program);
    clReleaseCommandQueue(queue);
    clReleaseContext(context);
  }
};

}  // namespace

const char* blur_kernel_source() { return kBlurKernelSource; }
const char* sobel_kernel_source() { return kSobelKernelSource; }
const char* jacobi_kernel_source() { return kJacobiKernelSource; }

StencilRun blur_opencl(const StencilConfig& config,
                       const clsim::Device& device) {
  const std::size_t bytes = config.pixels() * sizeof(float);
  const std::vector<float> input = stencil_make_image(config);
  cl_int err;

  StencilRun run;
  run.output.resize(config.pixels());

  StencilEnv env(device, kBlurKernelSource, "blur3");
  cl_mem in_buf =
      clCreateBuffer(env.context, CL_MEM_READ_ONLY, bytes, nullptr, &err);
  check(err, "clCreateBuffer(in)");
  cl_mem out_buf =
      clCreateBuffer(env.context, CL_MEM_WRITE_ONLY, bytes, nullptr, &err);
  check(err, "clCreateBuffer(out)");
  cl_mem w_buf = clCreateBuffer(env.context, CL_MEM_READ_ONLY,
                                9 * sizeof(float), nullptr, &err);
  check(err, "clCreateBuffer(weights)");

  run.timings = time_opencl_section(clsim::cl_api_queue(env.queue), [&] {
    err = clEnqueueWriteBuffer(env.queue, in_buf, CL_TRUE, 0, bytes,
                               input.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(in)");
    err = clEnqueueWriteBuffer(env.queue, w_buf, CL_TRUE, 0,
                               9 * sizeof(float), blur_weights().data(), 0,
                               nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(weights)");

    const std::int32_t width = static_cast<std::int32_t>(config.width);
    const std::int32_t height = static_cast<std::int32_t>(config.height);
    const std::int32_t edge = static_cast<std::int32_t>(config.edge);
    err = clSetKernelArg(env.kernel, 0, sizeof(cl_mem), &out_buf);
    check(err, "clSetKernelArg(0)");
    err = clSetKernelArg(env.kernel, 1, sizeof(cl_mem), &in_buf);
    check(err, "clSetKernelArg(1)");
    err = clSetKernelArg(env.kernel, 2, sizeof(cl_mem), &w_buf);
    check(err, "clSetKernelArg(2)");
    err = clSetKernelArg(env.kernel, 3, sizeof(std::int32_t), &width);
    check(err, "clSetKernelArg(3)");
    err = clSetKernelArg(env.kernel, 4, sizeof(std::int32_t), &height);
    check(err, "clSetKernelArg(4)");
    err = clSetKernelArg(env.kernel, 5, sizeof(std::int32_t), &edge);
    check(err, "clSetKernelArg(5)");

    const std::size_t global[2] = {round_up_tiles(config.width),
                                   round_up_tiles(config.height)};
    const std::size_t local[2] = {StencilConfig::kTile, StencilConfig::kTile};
    for (int r = 0; r < config.repeats; ++r) {
      err = clEnqueueNDRangeKernel(env.queue, env.kernel, 2, nullptr, global,
                                   local, 0, nullptr, nullptr);
      check(err, "clEnqueueNDRangeKernel");
    }
    err = clFinish(env.queue);
    check(err, "clFinish");

    err = clEnqueueReadBuffer(env.queue, out_buf, CL_TRUE, 0, bytes,
                              run.output.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueReadBuffer(out)");
  });

  clReleaseMemObject(w_buf);
  clReleaseMemObject(out_buf);
  clReleaseMemObject(in_buf);
  return run;
}

StencilRun sobel_opencl(const StencilConfig& config,
                        const clsim::Device& device) {
  const std::size_t bytes = config.pixels() * sizeof(float);
  const std::vector<float> input = stencil_make_image(config);
  cl_int err;

  StencilRun run;
  run.output.resize(config.pixels());

  StencilEnv env(device, kSobelKernelSource, "sobel");
  cl_mem in_buf =
      clCreateBuffer(env.context, CL_MEM_READ_ONLY, bytes, nullptr, &err);
  check(err, "clCreateBuffer(in)");
  cl_mem out_buf =
      clCreateBuffer(env.context, CL_MEM_WRITE_ONLY, bytes, nullptr, &err);
  check(err, "clCreateBuffer(out)");

  run.timings = time_opencl_section(clsim::cl_api_queue(env.queue), [&] {
    err = clEnqueueWriteBuffer(env.queue, in_buf, CL_TRUE, 0, bytes,
                               input.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(in)");

    const std::int32_t width = static_cast<std::int32_t>(config.width);
    const std::int32_t height = static_cast<std::int32_t>(config.height);
    const std::int32_t edge = static_cast<std::int32_t>(config.edge);
    err = clSetKernelArg(env.kernel, 0, sizeof(cl_mem), &out_buf);
    check(err, "clSetKernelArg(0)");
    err = clSetKernelArg(env.kernel, 1, sizeof(cl_mem), &in_buf);
    check(err, "clSetKernelArg(1)");
    err = clSetKernelArg(env.kernel, 2, sizeof(std::int32_t), &width);
    check(err, "clSetKernelArg(2)");
    err = clSetKernelArg(env.kernel, 3, sizeof(std::int32_t), &height);
    check(err, "clSetKernelArg(3)");
    err = clSetKernelArg(env.kernel, 4, sizeof(std::int32_t), &edge);
    check(err, "clSetKernelArg(4)");

    const std::size_t global[2] = {round_up_tiles(config.width),
                                   round_up_tiles(config.height)};
    const std::size_t local[2] = {StencilConfig::kTile, StencilConfig::kTile};
    for (int r = 0; r < config.repeats; ++r) {
      err = clEnqueueNDRangeKernel(env.queue, env.kernel, 2, nullptr, global,
                                   local, 0, nullptr, nullptr);
      check(err, "clEnqueueNDRangeKernel");
    }
    err = clFinish(env.queue);
    check(err, "clFinish");

    err = clEnqueueReadBuffer(env.queue, out_buf, CL_TRUE, 0, bytes,
                              run.output.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueReadBuffer(out)");
  });

  clReleaseMemObject(out_buf);
  clReleaseMemObject(in_buf);
  return run;
}

StencilRun jacobi_opencl(const StencilConfig& config,
                         const clsim::Device& device) {
  const std::size_t bytes = config.pixels() * sizeof(float);
  const std::vector<float> input = stencil_make_image(config);
  cl_int err;

  StencilRun run;
  run.output.resize(config.pixels());

  StencilEnv env(device, kJacobiKernelSource, "jacobi_step");
  cl_mem ping =
      clCreateBuffer(env.context, CL_MEM_READ_WRITE, bytes, nullptr, &err);
  check(err, "clCreateBuffer(ping)");
  cl_mem pong =
      clCreateBuffer(env.context, CL_MEM_READ_WRITE, bytes, nullptr, &err);
  check(err, "clCreateBuffer(pong)");

  run.timings = time_opencl_section(clsim::cl_api_queue(env.queue), [&] {
    err = clEnqueueWriteBuffer(env.queue, ping, CL_TRUE, 0, bytes,
                               input.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueWriteBuffer(ping)");

    const std::int32_t width = static_cast<std::int32_t>(config.width);
    const std::int32_t height = static_cast<std::int32_t>(config.height);
    const std::int32_t edge = static_cast<std::int32_t>(config.edge);
    err = clSetKernelArg(env.kernel, 2, sizeof(std::int32_t), &width);
    check(err, "clSetKernelArg(2)");
    err = clSetKernelArg(env.kernel, 3, sizeof(std::int32_t), &height);
    check(err, "clSetKernelArg(3)");
    err = clSetKernelArg(env.kernel, 4, sizeof(std::int32_t), &edge);
    check(err, "clSetKernelArg(4)");

    const std::size_t global[2] = {round_up_tiles(config.width),
                                   round_up_tiles(config.height)};
    const std::size_t local[2] = {StencilConfig::kTile, StencilConfig::kTile};
    cl_mem src = ping;
    cl_mem dst = pong;
    for (int it = 0; it < config.iterations; ++it) {
      err = clSetKernelArg(env.kernel, 0, sizeof(cl_mem), &dst);
      check(err, "clSetKernelArg(0)");
      err = clSetKernelArg(env.kernel, 1, sizeof(cl_mem), &src);
      check(err, "clSetKernelArg(1)");
      err = clEnqueueNDRangeKernel(env.queue, env.kernel, 2, nullptr, global,
                                   local, 0, nullptr, nullptr);
      check(err, "clEnqueueNDRangeKernel");
      cl_mem t = src;
      src = dst;
      dst = t;
    }
    err = clFinish(env.queue);
    check(err, "clFinish");

    // After the swap, `src` holds the latest sweep's result.
    err = clEnqueueReadBuffer(env.queue, src, CL_TRUE, 0, bytes,
                              run.output.data(), 0, nullptr, nullptr);
    check(err, "clEnqueueReadBuffer(out)");
  });

  clReleaseMemObject(pong);
  clReleaseMemObject(ping);
  return run;
}

}  // namespace hplrepro::benchsuite
