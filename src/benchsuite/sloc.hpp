#ifndef HPLREPRO_BENCHSUITE_SLOC_HPP
#define HPLREPRO_BENCHSUITE_SLOC_HPP

/// \file sloc.hpp
/// Physical source-lines-of-code counter reproducing Sloccount's C/C++
/// definition (paper §V-A): a SLOC is a line containing at least one
/// character that is not whitespace and not part of a comment. Applied to
/// the checked-in benchmark sources to regenerate Table I.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hplrepro::benchsuite {

/// Counts SLOC in C/C++ source text (handles //, /* */ and string
/// literals so comment markers inside strings do not confuse it).
std::size_t count_sloc_text(std::string_view text);

/// Counts SLOC in a file. Throws on I/O failure.
std::size_t count_sloc_file(const std::string& path);

struct BenchmarkSources {
  std::string benchmark;               // e.g. "EP"
  std::vector<std::string> opencl;     // repo-relative paths
  std::vector<std::string> hpl;
};

/// The five paper benchmarks and the sources of their two variants.
const std::vector<BenchmarkSources>& table1_sources();

/// The stencil family (blur, sobel, jacobi — ROADMAP item 5). Kept
/// separate from Table I, which reproduces exactly the paper's five
/// benchmarks; the stencils share one source file per variant.
const std::vector<BenchmarkSources>& stencil_sources();

/// Absolute path of a repo-relative file (uses the build-time source dir).
std::string repo_path(const std::string& relative);

}  // namespace hplrepro::benchsuite

#endif  // HPLREPRO_BENCHSUITE_SLOC_HPP
