#include "benchsuite/kernel_corpus.hpp"

#include <cstring>
#include <optional>

#include "benchsuite/ep.hpp"
#include "benchsuite/floyd.hpp"
#include "benchsuite/reduction.hpp"
#include "benchsuite/spmv.hpp"
#include "benchsuite/stencil.hpp"
#include "benchsuite/transpose.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace hplrepro::benchsuite {

namespace {

// A small harness around the clsim C++ API: one context/queue/program,
// buffers written directly (transfer accounting is not what the corpus
// measures), stats and sim time accumulated per launch.
class CorpusHarness {
public:
  CorpusHarness(const clsim::Device& device, const char* source,
                const std::string& build_options, const char* kernel_name,
                CorpusRun& run)
      : context_(device),
        queue_(context_),
        program_(context_, source),
        run_(run) {
    program_.build(build_options);
    run_.opt_report = program_.opt_report();
    for (const auto& fn : program_.module().functions) {
      run_.static_instrs += fn.code.size();
    }
    kernel_.emplace(program_, kernel_name);
  }

  clsim::Kernel& kernel() { return *kernel_; }

  clsim::Buffer make_buffer(std::size_t bytes, const void* init = nullptr) {
    clsim::Buffer buf(context_, bytes);
    if (init != nullptr) {
      std::memcpy(buf.raw(), init, bytes);
    } else {
      buf.fill_zero();
    }
    return buf;
  }

  void launch(const clsim::NDRange& global, const clsim::NDRange& local) {
    clsim::Event e = queue_.enqueue_ndrange_kernel(*kernel_, global, local);
    e.wait();  // profiling accessors need the completed launch
    run_.stats += e.stats();
    run_.kernel_sim_seconds += e.sim_seconds();
    run_.kernel_wall_seconds += e.wall_seconds();
  }

  void read_output(const clsim::Buffer& buf) {
    queue_.finish();  // raw() bypasses the queue; quiesce it first
    std::vector<std::byte> bytes(buf.size());
    std::memcpy(bytes.data(), buf.raw(), bytes.size());
    run_.outputs.push_back(std::move(bytes));
  }

private:
  clsim::Context context_;
  clsim::CommandQueue queue_;
  clsim::Program program_;
  std::optional<clsim::Kernel> kernel_;
  CorpusRun& run_;
};

void run_ep(const clsim::Device& device, const std::string& options,
            CorpusRun& run) {
  EpConfig config;
  config.pairs = 1 << 12;
  config.chunk = 64;
  config.local_size = 64;
  const std::size_t items = config.items();

  std::vector<double> seeds(items);
  for (std::size_t i = 0; i < items; ++i) {
    seeds[i] = NasLcg::skip_ahead(NasLcg::kDefaultSeed, 2 * config.chunk * i);
  }

  CorpusHarness h(device, ep_kernel_source(), options, "ep_kernel", run);
  clsim::Buffer seeds_buf =
      h.make_buffer(items * sizeof(double), seeds.data());
  clsim::Buffer sx_buf = h.make_buffer(items * sizeof(double));
  clsim::Buffer sy_buf = h.make_buffer(items * sizeof(double));
  clsim::Buffer q_buf = h.make_buffer(items * 10 * sizeof(std::int32_t));

  h.kernel().set_arg(0, seeds_buf);
  h.kernel().set_arg(1, sx_buf);
  h.kernel().set_arg(2, sy_buf);
  h.kernel().set_arg(3, q_buf);
  h.kernel().set_arg(4, static_cast<std::int32_t>(config.chunk));
  h.launch(clsim::NDRange{items}, clsim::NDRange{config.local_size});

  h.read_output(sx_buf);
  h.read_output(sy_buf);
  h.read_output(q_buf);
}

void run_floyd(const clsim::Device& device, const std::string& options,
               CorpusRun& run) {
  FloydConfig config;
  config.nodes = 48;
  config.tile = 16;
  const std::size_t n = config.nodes;
  const std::vector<float> graph = floyd_make_graph(config);

  CorpusHarness h(device, floyd_kernel_source(), options, "floyd_pass", run);
  clsim::Buffer dist = h.make_buffer(n * n * sizeof(float), graph.data());

  h.kernel().set_arg(0, dist);
  h.kernel().set_arg(1, static_cast<std::uint32_t>(n));
  for (std::size_t k = 0; k < n; ++k) {
    h.kernel().set_arg(2, static_cast<std::uint32_t>(k));
    h.launch(clsim::NDRange{n, n}, clsim::NDRange{config.tile, config.tile});
  }
  h.read_output(dist);
}

void run_reduction(const clsim::Device& device, const std::string& options,
                   CorpusRun& run, const ReductionConfig& config,
                   const char* kernel = "reduce_sum") {
  const std::vector<float> input = reduction_make_input(config);

  CorpusHarness h(device, reduction_kernel_source(), options, kernel, run);
  clsim::Buffer in =
      h.make_buffer(input.size() * sizeof(float), input.data());
  clsim::Buffer partials = h.make_buffer(config.groups * sizeof(float));

  h.kernel().set_arg(0, in);
  h.kernel().set_arg(1, partials);
  h.kernel().set_arg(2, static_cast<std::uint32_t>(config.elements));
  h.launch(clsim::NDRange{config.global_size()},
           clsim::NDRange{config.local_size});
  h.read_output(partials);
}

void run_spmv(const clsim::Device& device, const std::string& options,
              CorpusRun& run) {
  SpmvConfig config;
  config.rows = 96;
  config.density = 0.05;
  config.threads_per_row = 8;
  const CsrProblem problem = spmv_make_problem(config);
  const std::size_t n = config.rows;
  const std::size_t m = config.threads_per_row;

  CorpusHarness h(device, spmv_kernel_source(), options, "spmv_csr", run);
  clsim::Buffer values = h.make_buffer(
      problem.values.size() * sizeof(float), problem.values.data());
  clsim::Buffer vec =
      h.make_buffer(problem.vec.size() * sizeof(float), problem.vec.data());
  clsim::Buffer cols = h.make_buffer(
      problem.cols.size() * sizeof(std::int32_t), problem.cols.data());
  clsim::Buffer rowptr = h.make_buffer(
      problem.rowptr.size() * sizeof(std::int32_t), problem.rowptr.data());
  clsim::Buffer out = h.make_buffer(n * sizeof(float));

  h.kernel().set_arg(0, values);
  h.kernel().set_arg(1, vec);
  h.kernel().set_arg(2, cols);
  h.kernel().set_arg(3, rowptr);
  h.kernel().set_arg(4, out);
  h.kernel().set_arg(5, static_cast<std::uint32_t>(m));
  h.launch(clsim::NDRange{n * m}, clsim::NDRange{m});
  h.read_output(out);
}

void run_transpose(const clsim::Device& device, const std::string& options,
                   CorpusRun& run) {
  TransposeConfig config;
  config.rows = 64;
  config.cols = 32;
  const std::vector<float> input = transpose_make_input(config);

  CorpusHarness h(device, transpose_kernel_source(), options,
                  "transpose_tiled", run);
  clsim::Buffer out =
      h.make_buffer(config.rows * config.cols * sizeof(float));
  clsim::Buffer in =
      h.make_buffer(input.size() * sizeof(float), input.data());

  h.kernel().set_arg(0, out);
  h.kernel().set_arg(1, in);
  h.kernel().set_arg(2, static_cast<std::uint32_t>(config.rows));
  h.kernel().set_arg(3, static_cast<std::uint32_t>(config.cols));
  h.launch(clsim::NDRange{config.cols, config.rows},
           clsim::NDRange{TransposeConfig::kTile, TransposeConfig::kTile});
  h.read_output(out);
}

// The three stencils share launch geometry (image rounded up to tile
// multiples) and the runtime edge-policy argument; corpus runs use Clamp.
std::size_t stencil_round_up(std::size_t n) {
  const std::size_t tile = StencilConfig::kTile;
  return (n + tile - 1) / tile * tile;
}

void run_blur(const clsim::Device& device, const std::string& options,
              CorpusRun& run) {
  StencilConfig config;
  config.width = 48;
  config.height = 36;
  const std::vector<float> input = stencil_make_image(config);

  CorpusHarness h(device, blur_kernel_source(), options, "blur3", run);
  clsim::Buffer out = h.make_buffer(config.pixels() * sizeof(float));
  clsim::Buffer in =
      h.make_buffer(input.size() * sizeof(float), input.data());
  clsim::Buffer weights =
      h.make_buffer(9 * sizeof(float), blur_weights().data());

  h.kernel().set_arg(0, out);
  h.kernel().set_arg(1, in);
  h.kernel().set_arg(2, weights);
  h.kernel().set_arg(3, static_cast<std::int32_t>(config.width));
  h.kernel().set_arg(4, static_cast<std::int32_t>(config.height));
  h.kernel().set_arg(5, static_cast<std::int32_t>(config.edge));
  h.launch(clsim::NDRange{stencil_round_up(config.width),
                          stencil_round_up(config.height)},
           clsim::NDRange{StencilConfig::kTile, StencilConfig::kTile});
  h.read_output(out);
}

void run_sobel(const clsim::Device& device, const std::string& options,
               CorpusRun& run) {
  StencilConfig config;
  config.width = 48;
  config.height = 36;
  const std::vector<float> input = stencil_make_image(config);

  CorpusHarness h(device, sobel_kernel_source(), options, "sobel", run);
  clsim::Buffer out = h.make_buffer(config.pixels() * sizeof(float));
  clsim::Buffer in =
      h.make_buffer(input.size() * sizeof(float), input.data());

  h.kernel().set_arg(0, out);
  h.kernel().set_arg(1, in);
  h.kernel().set_arg(2, static_cast<std::int32_t>(config.width));
  h.kernel().set_arg(3, static_cast<std::int32_t>(config.height));
  h.kernel().set_arg(4, static_cast<std::int32_t>(config.edge));
  h.launch(clsim::NDRange{stencil_round_up(config.width),
                          stencil_round_up(config.height)},
           clsim::NDRange{StencilConfig::kTile, StencilConfig::kTile});
  h.read_output(out);
}

void run_jacobi(const clsim::Device& device, const std::string& options,
                CorpusRun& run, const StencilConfig& config) {
  const std::vector<float> input = stencil_make_image(config);

  CorpusHarness h(device, jacobi_kernel_source(), options, "jacobi_step",
                  run);
  clsim::Buffer ping =
      h.make_buffer(config.pixels() * sizeof(float), input.data());
  clsim::Buffer pong = h.make_buffer(config.pixels() * sizeof(float));
  clsim::Buffer* src = &ping;
  clsim::Buffer* dst = &pong;

  h.kernel().set_arg(2, static_cast<std::int32_t>(config.width));
  h.kernel().set_arg(3, static_cast<std::int32_t>(config.height));
  h.kernel().set_arg(4, static_cast<std::int32_t>(config.edge));
  for (int it = 0; it < config.iterations; ++it) {
    h.kernel().set_arg(0, *dst);
    h.kernel().set_arg(1, *src);
    h.launch(clsim::NDRange{stencil_round_up(config.width),
                            stencil_round_up(config.height)},
             clsim::NDRange{StencilConfig::kTile, StencilConfig::kTile});
    std::swap(src, dst);
  }
  h.read_output(*src);
}

// The barrier-exchange form of the Jacobi sweep on a 1-D ring: publish
// one cell to the tile, one barrier, relax against the two tile
// neighbours (periodic within the tile). Ping-pongs the buffers for a
// few sweeps so the row has enough signal.
void run_jacobi_ring(const clsim::Device& device, const std::string& options,
                     CorpusRun& run) {
  constexpr std::size_t kGroups = 8;
  constexpr std::size_t kLocal = 1024;  // the kernel's __local ring size
  constexpr int kSweeps = 4;
  const std::size_t n = kGroups * kLocal;
  std::vector<float> input(n);
  for (std::size_t i = 0; i < n; ++i) {
    input[i] = static_cast<float>(i % 97) * 0.25f;
  }

  CorpusHarness h(device, jacobi_kernel_source(), options, "jacobi_ring",
                  run);
  clsim::Buffer a = h.make_buffer(n * sizeof(float), input.data());
  clsim::Buffer b = h.make_buffer(n * sizeof(float));
  clsim::Buffer* src = &a;
  clsim::Buffer* dst = &b;
  for (int s = 0; s < kSweeps; ++s) {
    h.kernel().set_arg(0, *dst);
    h.kernel().set_arg(1, *src);
    h.kernel().set_arg(2, static_cast<std::uint32_t>(kLocal - 1));
    h.launch(clsim::NDRange{n}, clsim::NDRange{kLocal});
    std::swap(src, dst);
  }
  h.read_output(*src);
}

// Geometries: the corpus sizes stay test-speed small; the _big variants
// give the barrier-heavy kernels enough items per group that group
// scheduling cost (what work-group compilation removes) dominates.
ReductionConfig reduction_corpus_config() {
  ReductionConfig config;
  config.elements = 1 << 12;
  config.groups = 8;
  config.local_size = 64;
  return config;
}

ReductionConfig reduction_big_config() {
  ReductionConfig config;
  // One element per item, 256-item groups, and the flat two-region
  // kernel (reduce_sum_flat): per-item work is O(1), so the per-item
  // activation cost that work-group loops remove dominates.
  config.groups = 8;
  config.local_size = 1024;  // reduce_sum_flat's __local tile size
  config.elements = config.groups * config.local_size;
  return config;
}

StencilConfig jacobi_corpus_config() {
  StencilConfig config;
  config.width = 48;
  config.height = 36;
  config.iterations = 3;
  return config;
}

}  // namespace

const std::vector<std::string>& corpus_kernel_names() {
  static const std::vector<std::string> names = {
      "ep",   "floyd", "reduction", "spmv",
      "blur", "sobel", "jacobi",    "transpose"};
  return names;
}

const std::vector<std::string>& barrier_kernel_names() {
  static const std::vector<std::string> names = {"reduction_big",
                                                 "jacobi_big"};
  return names;
}

CorpusRun run_corpus_kernel(const std::string& name,
                            const clsim::Device& device,
                            const std::string& build_options) {
  CorpusRun run;
  run.name = name;
  if (name == "ep") {
    run_ep(device, build_options, run);
  } else if (name == "floyd") {
    run_floyd(device, build_options, run);
  } else if (name == "reduction") {
    run_reduction(device, build_options, run, reduction_corpus_config());
  } else if (name == "reduction_big") {
    run_reduction(device, build_options, run, reduction_big_config(),
                  "reduce_sum_flat");
  } else if (name == "spmv") {
    run_spmv(device, build_options, run);
  } else if (name == "blur") {
    run_blur(device, build_options, run);
  } else if (name == "sobel") {
    run_sobel(device, build_options, run);
  } else if (name == "jacobi") {
    run_jacobi(device, build_options, run, jacobi_corpus_config());
  } else if (name == "jacobi_big") {
    run_jacobi_ring(device, build_options, run);
  } else if (name == "transpose") {
    run_transpose(device, build_options, run);
  } else {
    throw hplrepro::InvalidArgument("unknown corpus kernel '" + name + "'");
  }
  return run;
}

}  // namespace hplrepro::benchsuite
