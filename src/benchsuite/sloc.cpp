#include "benchsuite/sloc.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace hplrepro::benchsuite {

std::size_t count_sloc_text(std::string_view text) {
  enum class State { Code, LineComment, BlockComment, String, Char };
  State state = State::Code;
  bool line_has_code = false;
  std::size_t sloc = 0;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';

    if (c == '\n') {
      if (line_has_code) ++sloc;
      line_has_code = false;
      if (state == State::LineComment) state = State::Code;
      continue;
    }

    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          ++i;
        } else if (c == '"') {
          state = State::String;
          line_has_code = true;
        } else if (c == '\'') {
          state = State::Char;
          line_has_code = true;
        } else if (c != ' ' && c != '\t' && c != '\r') {
          line_has_code = true;
        }
        break;
      case State::LineComment:
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          state = State::Code;
          ++i;
        }
        break;
      case State::String:
        line_has_code = true;
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::Code;
        }
        break;
      case State::Char:
        line_has_code = true;
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::Code;
        }
        break;
    }
  }
  if (line_has_code) ++sloc;
  return sloc;
}

std::size_t count_sloc_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("count_sloc_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return count_sloc_text(buffer.str());
}

std::string repo_path(const std::string& relative) {
#ifdef HPLREPRO_SOURCE_DIR
  return std::string(HPLREPRO_SOURCE_DIR) + "/" + relative;
#else
  return relative;
#endif
}

const std::vector<BenchmarkSources>& table1_sources() {
  static const std::vector<BenchmarkSources> sources = {
      {"EP",
       {"src/benchsuite/ep_opencl.cpp"},
       {"src/benchsuite/ep_hpl.cpp"}},
      {"Floyd-Warshall",
       {"src/benchsuite/floyd_opencl.cpp"},
       {"src/benchsuite/floyd_hpl.cpp"}},
      {"Matrix transpose",
       {"src/benchsuite/transpose_opencl.cpp"},
       {"src/benchsuite/transpose_hpl.cpp"}},
      {"Spmv",
       {"src/benchsuite/spmv_opencl.cpp"},
       {"src/benchsuite/spmv_hpl.cpp"}},
      {"Reduction",
       {"src/benchsuite/reduction_opencl.cpp"},
       {"src/benchsuite/reduction_hpl.cpp"}},
  };
  return sources;
}

const std::vector<BenchmarkSources>& stencil_sources() {
  static const std::vector<BenchmarkSources> sources = {
      {"Stencils (blur/sobel/jacobi)",
       {"src/benchsuite/stencil_opencl.cpp"},
       {"src/benchsuite/stencil_hpl.cpp"}},
  };
  return sources;
}

}  // namespace hplrepro::benchsuite
