#ifndef HPLREPRO_BENCHSUITE_KERNEL_CORPUS_HPP
#define HPLREPRO_BENCHSUITE_KERNEL_CORPUS_HPP

/// \file kernel_corpus.hpp
/// Runs each benchsuite kernel at an arbitrary clBuildProgram options
/// string and reports everything a differential harness needs: the raw
/// output buffers, the dynamic execution statistics summed over every
/// launch, and the simulated kernel time. tests/clc/optimizer_diff_test.cpp
/// uses this to prove O0 and O2 builds bit-identical, and bench/micro_vm
/// uses it for the O0-vs-O2 table.
///
/// Problem sizes are fixed small (test-speed) but use the same input
/// generators and launch geometry as the real benchmark hosts.

#include <cstddef>
#include <string>
#include <vector>

#include "clc/stats.hpp"
#include "clsim/runtime.hpp"

namespace hplrepro::benchsuite {

/// One O0-or-O2 execution of a corpus kernel.
struct CorpusRun {
  std::string name;
  /// Raw bytes of each output buffer, in a fixed per-kernel order.
  std::vector<std::vector<std::byte>> outputs;
  /// Dynamic VM statistics summed over all launches.
  clc::ExecStats stats;
  /// Simulated kernel seconds summed over all launches.
  double kernel_sim_seconds = 0;
  /// Host wall-clock seconds spent inside the VM, summed over all
  /// launches — what bench/micro_vm compares across interpreters.
  double kernel_wall_seconds = 0;
  /// Static instruction count of the built module (all functions).
  std::size_t static_instrs = 0;
  /// What the optimizer reported for this build.
  clc::OptReport opt_report;
};

/// The corpus members: "ep", "floyd", "reduction", "spmv", "blur",
/// "sobel", "jacobi", "transpose".
const std::vector<std::string>& corpus_kernel_names();

/// Barrier-heavy extra rows for interpreter benchmarking: "reduction_big"
/// (the flat local-tiled reduce: publish to the tile, one barrier, item 0
/// folds the tile) and "jacobi_big" (the barrier-exchange Jacobi sweep on
/// a 1-D ring, periodic within the tile). Both are two barrier regions of
/// O(1) work per item over 256-item groups — the shape where the per-item
/// activation cost that work-group loops remove dominates; accepted by
/// run_corpus_kernel like any corpus name but NOT part of
/// corpus_kernel_names() (scenario cells and opt tables stay 8-wide).
const std::vector<std::string>& barrier_kernel_names();

/// Builds and runs corpus kernel `name` on `device` with the given
/// clBuildProgram-style options ("" = driver default, "-cl-opt-disable"
/// = unoptimized). Throws InvalidArgument for an unknown name.
CorpusRun run_corpus_kernel(const std::string& name,
                            const clsim::Device& device,
                            const std::string& build_options);

}  // namespace hplrepro::benchsuite

#endif  // HPLREPRO_BENCHSUITE_KERNEL_CORPUS_HPP
