// HPL implementations of the stencil family. The edge-policy resolver is
// an ordinary C++ helper that composes DSL statements into whatever kernel
// is being captured, so all three kernels share one boundary definition —
// the same shape as sample_edge in the OpenCL sources. The policy itself
// stays a runtime argument: one cached binary covers zero/clamp/wrap.

#include "benchsuite/stencil.hpp"
#include "hpl/HPL.h"

namespace hplrepro::benchsuite {

namespace {

using namespace HPL;

constexpr std::size_t kTile = StencilConfig::kTile;

std::size_t round_up_tiles(std::size_t n) {
  return (n + kTile - 1) / kTile * kTile;
}

// Points an eval at one device or, when the config asks for it, at a
// co-executed split along global dimension 1 (the image-row dimension —
// out[y][x] writes one row band per chunk). The 3x3 neighbourhood needs a
// one-row read halo; Wrap edges reach the opposite image border, so there
// the reads stay whole-array instead.
template <typename Ev>
void stencil_target(Ev& ev, const StencilConfig& config, HPL::Device device) {
  if (config.coexec_devices.empty()) {
    ev.device(device);
  } else {
    ev.devices(config.coexec_devices).policy(config.coexec_policy)
        .split_dim(1);
    if (config.edge != EdgePolicy::Wrap) ev.halo(1);
  }
}

// Emits the policy resolver into the kernel being captured: leaves the
// resolved tap img[y][x] in `dest`, using sx/sy as caller-provided scratch.
void sample_edge(Float& dest, Array<float, 2>& img, Int& sx, Int& sy,
                 const Expr& x, const Expr& y, Int& width, Int& height,
                 Int& edge) {
  sx = x;
  sy = y;
  if_(edge == 0 && (sx < 0 || sx >= width || sy < 0 || sy >= height)) {
    dest = 0.0f;
  } else_ {
    if_(edge == 1) {
      sx = min(max(sx, 0), width - 1);
      sy = min(max(sy, 0), height - 1);
    } endif_
    if_(edge == 2) {
      sx = ((sx % width) + width) % width;
      sy = ((sy % height) + height) % height;
    } endif_
    dest = img[sy][sx];
  } endif_
}

void blur_kernel(Array<float, 2> out, Array<float, 2> in,
                 Array<float, 1, Constant> weights, Int width, Int height,
                 Int edge) {
  Int x, y, sx, sy;
  Float acc, tap;

  x = idx;
  y = idy;
  if_(x < width && y < height) {
    acc = 0.0f;
    for (int dy = -1; dy <= 1; ++dy) {    // unrolled at capture time,
      for (int dx = -1; dx <= 1; ++dx) {  // same tap order as the serial ref
        sample_edge(tap, in, sx, sy, x + dx, y + dy, width, height, edge);
        acc += tap * weights[(dy + 1) * 3 + (dx + 1)];
      }
    }
    out[y][x] = acc;
  } endif_
}

void sobel_kernel(Array<float, 2> out, Array<float, 2> in, Int width,
                  Int height, Int edge) {
  Int x, y, sx, sy;
  Float n00, n01, n02, n10, n12, n20, n21, n22, gx, gy;

  x = idx;
  y = idy;
  if_(x < width && y < height) {
    sample_edge(n00, in, sx, sy, x - 1, y - 1, width, height, edge);
    sample_edge(n01, in, sx, sy, x, y - 1, width, height, edge);
    sample_edge(n02, in, sx, sy, x + 1, y - 1, width, height, edge);
    sample_edge(n10, in, sx, sy, x - 1, y, width, height, edge);
    sample_edge(n12, in, sx, sy, x + 1, y, width, height, edge);
    sample_edge(n20, in, sx, sy, x - 1, y + 1, width, height, edge);
    sample_edge(n21, in, sx, sy, x, y + 1, width, height, edge);
    sample_edge(n22, in, sx, sy, x + 1, y + 1, width, height, edge);
    gx = (n02 - n00) + 2.0f * (n12 - n10) + (n22 - n20);
    gy = (n20 - n00) + 2.0f * (n21 - n01) + (n22 - n02);
    out[y][x] = sqrt(gx * gx + gy * gy);
  } endif_
}

// One Jacobi sweep with the halo-exchange scheme of the OpenCL version:
// the group stages a (tile+2)^2 block in __local memory, border items load
// the halo, and every item reaches the barrier (the write alone is guarded
// so ragged launches cannot diverge at the barrier).
void jacobi_kernel(Array<float, 2> out, Array<float, 2> in, Int width,
                   Int height, Int edge) {
  Array<float, 2, Local> tile(kTile + 2, kTile + 2);
  Int x, y, lx, ly, sx, sy;
  Float v;

  x = idx;
  y = idy;
  lx = lidx + 1;
  ly = lidy + 1;

  sample_edge(v, in, sx, sy, x, y, width, height, edge);
  tile[ly][lx] = v;
  if_(lx == 1) {
    sample_edge(v, in, sx, sy, x - 1, y, width, height, edge);
    tile[ly][0] = v;
  } endif_
  if_(lx == static_cast<int>(kTile)) {
    sample_edge(v, in, sx, sy, x + 1, y, width, height, edge);
    tile[ly][kTile + 1] = v;
  } endif_
  if_(ly == 1) {
    sample_edge(v, in, sx, sy, x, y - 1, width, height, edge);
    tile[0][lx] = v;
  } endif_
  if_(ly == static_cast<int>(kTile)) {
    sample_edge(v, in, sx, sy, x, y + 1, width, height, edge);
    tile[kTile + 1][lx] = v;
  } endif_
  barrier(LOCAL);

  if_(x < width && y < height) {
    out[y][x] = 0.25f * (((tile[ly][lx - 1] + tile[ly][lx + 1]) +
                          tile[ly - 1][lx]) +
                         tile[ly + 1][lx]);
  } endif_
}

}  // namespace

StencilRun blur_hpl(const StencilConfig& config, HPL::Device device) {
  std::vector<float> input = stencil_make_image(config);
  std::array<float, 9> w9 = blur_weights();

  Array<float, 2> in(config.height, config.width, input.data());
  Array<float, 2> out(config.height, config.width);
  Array<float, 1, Constant> weights(9, w9.data());

  const std::int32_t width = static_cast<std::int32_t>(config.width);
  const std::int32_t height = static_cast<std::int32_t>(config.height);
  const std::int32_t edge = static_cast<std::int32_t>(config.edge);

  StencilRun run;
  const float* result = nullptr;
  run.timings = time_hpl_section([&] {
    for (int r = 0; r < config.repeats; ++r) {
      auto ev = eval(blur_kernel);
      ev.global(round_up_tiles(config.width), round_up_tiles(config.height))
          .local(kTile, kTile);
      stencil_target(ev, config, device);
      ev(out, in, weights, width, height, edge);
    }
    result = out.data();  // syncs the result back to the host
  });
  run.output.assign(result, result + config.pixels());

  return run;
}

StencilRun sobel_hpl(const StencilConfig& config, HPL::Device device) {
  std::vector<float> input = stencil_make_image(config);

  Array<float, 2> in(config.height, config.width, input.data());
  Array<float, 2> out(config.height, config.width);

  const std::int32_t width = static_cast<std::int32_t>(config.width);
  const std::int32_t height = static_cast<std::int32_t>(config.height);
  const std::int32_t edge = static_cast<std::int32_t>(config.edge);

  StencilRun run;
  const float* result = nullptr;
  run.timings = time_hpl_section([&] {
    for (int r = 0; r < config.repeats; ++r) {
      auto ev = eval(sobel_kernel);
      ev.global(round_up_tiles(config.width), round_up_tiles(config.height))
          .local(kTile, kTile);
      stencil_target(ev, config, device);
      ev(out, in, width, height, edge);
    }
    result = out.data();
  });
  run.output.assign(result, result + config.pixels());

  return run;
}

StencilRun jacobi_hpl(const StencilConfig& config, HPL::Device device) {
  std::vector<float> input = stencil_make_image(config);

  Array<float, 2> ping(config.height, config.width, input.data());
  Array<float, 2> pong(config.height, config.width);
  Array<float, 2>* src = &ping;
  Array<float, 2>* dst = &pong;

  const std::int32_t width = static_cast<std::int32_t>(config.width);
  const std::int32_t height = static_cast<std::int32_t>(config.height);
  const std::int32_t edge = static_cast<std::int32_t>(config.edge);

  StencilRun run;
  const float* result = nullptr;
  run.timings = time_hpl_section([&] {
    for (int it = 0; it < config.iterations; ++it) {
      auto ev = eval(jacobi_kernel);
      ev.global(round_up_tiles(config.width), round_up_tiles(config.height))
          .local(kTile, kTile);
      stencil_target(ev, config, device);
      ev(*dst, *src, width, height, edge);
      std::swap(src, dst);
    }
    result = src->data();  // after the swap, src holds the latest sweep
  });
  run.output.assign(result, result + config.pixels());

  return run;
}

}  // namespace hplrepro::benchsuite
