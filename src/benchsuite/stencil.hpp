#ifndef HPLREPRO_BENCHSUITE_STENCIL_HPP
#define HPLREPRO_BENCHSUITE_STENCIL_HPP

/// \file stencil.hpp
/// The image/stencil workload family (ROADMAP item 5; cf. ImageCL in
/// PAPERS.md): three kernels that stress exactly what the device model
/// simulates — local-memory tiling, coalescing, and boundary handling —
/// each implemented three times like the five paper benchmarks:
///
///   * `blur`   — 2D convolution with a 3x3 Gaussian kernel whose weights
///                arrive through __constant memory;
///   * `sobel`  — the Sobel edge operator (two fixed 3x3 filters plus a
///                gradient magnitude);
///   * `jacobi` — an iterative 5-point Jacobi stencil whose tiled variant
///                stages a (tile+2)^2 halo block in __local memory
///                (the classic halo-exchange scheme).
///
/// Every kernel takes the edge policy as a runtime argument so one binary
/// covers all three behaviours (and the scenario grader can deliberately
/// mismatch it in its self-test).

#include <array>
#include <cstdint>
#include <vector>

#include "benchsuite/common.hpp"
#include "coexec/coexec.hpp"
#include "hpl/runtime.hpp"

namespace hplrepro::benchsuite {

/// How a stencil samples cells outside the image. Encoded as an int kernel
/// argument: Zero=0, Clamp=1, Wrap=2.
enum class EdgePolicy : int { Zero = 0, Clamp = 1, Wrap = 2 };

const char* edge_policy_name(EdgePolicy policy);

struct StencilConfig {
  std::size_t width = 128;   // columns (x, global dimension 0)
  std::size_t height = 128;  // rows (y, global dimension 1)
  EdgePolicy edge = EdgePolicy::Clamp;
  int iterations = 4;  // Jacobi sweeps (blur/sobel run one pass)
  std::uint64_t seed = 0x57E2C115EEDull;
  int repeats = 1;  // relaunches per run for blur/sobel (idempotent)

  /// When non-empty, the HPL run co-executes each eval across these
  /// devices under `coexec_policy` (the `device` argument is ignored).
  /// Stencils split along global dimension 1 — the image-row dimension —
  /// with a one-row read halo.
  std::vector<HPL::Device> coexec_devices;
  hplrepro::coexec::Policy coexec_policy = hplrepro::coexec::Policy::Static;

  /// Local domain edge (both dimensions). The global domain is the image
  /// rounded up to tile multiples; kernels guard the ragged border.
  static constexpr std::size_t kTile = 8;

  std::size_t pixels() const { return width * height; }
};

/// The input image (deterministic pseudo-random floats in [0, 1)).
std::vector<float> stencil_make_image(const StencilConfig& config);

/// The 3x3 Gaussian blur weights (1 2 1 / 2 4 2 / 1 2 1, normalised),
/// row-major — what the hosts upload to __constant memory.
const std::array<float, 9>& blur_weights();

/// Serial C++ references (correctness oracles). Each accumulates in the
/// same order as the kernels so results match bit-for-bit up to libm
/// rounding (sobel's sqrt).
std::vector<float> blur_serial(const StencilConfig& config);
std::vector<float> sobel_serial(const StencilConfig& config);
std::vector<float> jacobi_serial(const StencilConfig& config);

struct StencilRun {
  std::vector<float> output;  // height x width, row-major
  Timings timings;
};

/// The OpenCL C sources (shared with the optimizer differential harness
/// via kernel_corpus and with the scenario grader).
const char* blur_kernel_source();
const char* sobel_kernel_source();
const char* jacobi_kernel_source();

StencilRun blur_opencl(const StencilConfig& config,
                       const clsim::Device& device);
StencilRun sobel_opencl(const StencilConfig& config,
                        const clsim::Device& device);
StencilRun jacobi_opencl(const StencilConfig& config,
                         const clsim::Device& device);

StencilRun blur_hpl(const StencilConfig& config, HPL::Device device);
StencilRun sobel_hpl(const StencilConfig& config, HPL::Device device);
StencilRun jacobi_hpl(const StencilConfig& config, HPL::Device device);

}  // namespace hplrepro::benchsuite

#endif  // HPLREPRO_BENCHSUITE_STENCIL_HPP
