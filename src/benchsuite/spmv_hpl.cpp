// HPL CSR sparse matrix-vector product, following the paper's own §IV-C
// example: the host builds the CSR structure, the device kernel does the
// heavy parallel work with a __local tree reduction per row.

#include "benchsuite/spmv.hpp"
#include "hpl/HPL.h"

namespace hplrepro::benchsuite {

namespace {

using namespace HPL;

void spmv_csr(Array<float, 1> values, Array<float, 1> vec,
              Array<int, 1> cols, Array<int, 1> rowptr, Array<float, 1> out,
              Uint threads_per_row) {
  Array<float, 1, Local> sdata(64);
  Int j;
  Uint s;
  Float mySum = 0;

  for_(j = rowptr[gidx] + lidx, j < rowptr[gidx + 1],
       j += cast<std::int32_t>(threads_per_row)) {
    mySum += values[j] * vec[cols[j]];
  } endfor_

  sdata[lidx] = mySum;
  barrier(LOCAL);

  for_(s = threads_per_row >> 1, s > 0u, s = s >> 1) {
    if_(lidx < s) {
      sdata[lidx] += sdata[lidx + s];
    } endif_
    barrier(LOCAL);
  } endfor_

  if_(lidx == 0) {
    out[gidx] = sdata[0];
  } endif_
}

}  // namespace

SpmvRun spmv_hpl(const SpmvConfig& config, HPL::Device device) {
  CsrProblem problem = spmv_make_problem(config);
  const std::size_t n = config.rows;
  const std::size_t m = config.threads_per_row;

  Array<float, 1> values(problem.values.size(), problem.values.data());
  Array<float, 1> vec(n, problem.vec.data());
  Array<int, 1> cols(problem.cols.size(), problem.cols.data());
  Array<int, 1> rowptr(n + 1, problem.rowptr.data());
  Array<float, 1> out(n);

  SpmvRun run;
  const float* result = nullptr;
  run.timings = time_hpl_section([&] {
    for (int r = 0; r < config.repeats; ++r) {
      eval(spmv_csr)
          .global(n * m)
          .local(m)
          .device(device)(values, vec, cols, rowptr, out,
                          static_cast<std::uint32_t>(m));
    }
    result = out.data();  // syncs the result back to the host
  });
  run.output.assign(result, result + n);

  return run;
}

}  // namespace hplrepro::benchsuite
