#ifndef HPLREPRO_BENCHSUITE_EP_HPP
#define HPLREPRO_BENCHSUITE_EP_HPP

/// \file ep.hpp
/// The NAS Parallel Benchmarks EP (Embarrassingly Parallel) kernel:
/// generate pairs of uniform deviates with the NAS LCG, transform the
/// accepted ones into Gaussian deviates (Marsaglia polar method as NPB
/// specifies), count them per annulus and sum them.
///
/// Problem classes follow NPB's W/A/B/C geometric progression, scaled down
/// uniformly because the device is a simulator (see EXPERIMENTS.md).

#include <array>
#include <cstdint>

#include "benchsuite/common.hpp"
#include "hpl/runtime.hpp"

namespace hplrepro::benchsuite {

struct EpConfig {
  std::uint64_t pairs = 1 << 16;   // number of (x, y) pairs
  std::uint64_t chunk = 64;        // pairs per work-item
  std::size_t local_size = 64;
  /// Kernel launches per run (kernels are typically invoked many times;
  /// paper §V-B). The computation is idempotent across repeats.
  int repeats = 1;

  std::uint64_t items() const { return pairs / chunk; }
};

/// Scaled NPB classes (paper Fig. 6 sweeps W, A, B, C).
EpConfig ep_class(char cls);

struct EpResult {
  double sx = 0;
  double sy = 0;
  std::array<std::uint64_t, 10> q{};
  std::uint64_t accepted = 0;
};

struct EpRun {
  EpResult result;
  Timings timings;
};

/// Serial C++ reference (correctness oracle).
EpResult ep_serial(const EpConfig& config);

/// The OpenCL C source of the ep_kernel kernel (shared with the
/// optimizer differential harness and the O0-vs-O2 microbench).
const char* ep_kernel_source();

/// OpenCL-style implementation against the clsim host API.
EpRun ep_opencl(const EpConfig& config, const clsim::Device& device);

/// HPL implementation.
EpRun ep_hpl(const EpConfig& config, HPL::Device device);

}  // namespace hplrepro::benchsuite

#endif  // HPLREPRO_BENCHSUITE_EP_HPP
