#include <cmath>

#include "benchsuite/ep.hpp"
#include "support/prng.hpp"

namespace hplrepro::benchsuite {

EpConfig ep_class(char cls) {
  // NPB classes are 2^25 (W), 2^28 (A), 2^30 (B), 2^32 (C) pairs. We scale
  // by 2^12 to fit simulator throughput while preserving the geometric
  // sweep the paper's Fig. 6 reports.
  EpConfig config;
  switch (cls) {
    case 'W': config.pairs = 1ull << 13; break;
    case 'A': config.pairs = 1ull << 16; break;
    case 'B': config.pairs = 1ull << 18; break;
    case 'C': config.pairs = 1ull << 20; break;
    default:
      throw InvalidArgument("ep_class: class must be one of W, A, B, C");
  }
  config.chunk = 64;
  config.local_size = 64;
  return config;
}

EpResult ep_serial(const EpConfig& config) {
  // Processes pairs in the same per-item chunking as the device versions
  // so the q[] counts match exactly and the sums match up to FP
  // reassociation of the final reduction.
  EpResult result;

  const std::uint64_t items = config.items();
  for (std::uint64_t item = 0; item < items; ++item) {
    double x = NasLcg::skip_ahead(NasLcg::kDefaultSeed,
                                  2 * config.chunk * item);
    double sx = 0, sy = 0;
    for (std::uint64_t k = 0; k < config.chunk; ++k) {
      const double u1 = NasLcg::randlc_step(x, NasLcg::kA);
      const double u2 = NasLcg::randlc_step(x, NasLcg::kA);
      const double xi = 2.0 * u1 - 1.0;
      const double yi = 2.0 * u2 - 1.0;
      const double t = xi * xi + yi * yi;
      if (t <= 1.0) {
        const double factor = std::sqrt(-2.0 * std::log(t) / t);
        const double gx = xi * factor;
        const double gy = yi * factor;
        const auto annulus = static_cast<std::size_t>(
            std::fmax(std::fabs(gx), std::fabs(gy)));
        result.q[annulus] += 1;
        sx += gx;
        sy += gy;
        result.accepted += 1;
      }
    }
    result.sx += sx;
    result.sy += sy;
  }
  return result;
}

}  // namespace hplrepro::benchsuite
