#include "benchsuite/reduction.hpp"

#include "support/prng.hpp"

namespace hplrepro::benchsuite {

std::vector<float> reduction_make_input(const ReductionConfig& config) {
  std::vector<float> in(config.elements);
  SplitMix64 rng(config.seed);
  // Values in [-1, 1): keeps the float sum well-conditioned at 16M terms.
  for (auto& v : in) v = rng.next_float() * 2.0f - 1.0f;
  return in;
}

double reduction_serial(const ReductionConfig& config) {
  const std::vector<float> in = reduction_make_input(config);
  double sum = 0;
  for (const float v : in) sum += static_cast<double>(v);
  return sum;
}

}  // namespace hplrepro::benchsuite
