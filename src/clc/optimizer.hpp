#ifndef HPLREPRO_CLC_OPTIMIZER_HPP
#define HPLREPRO_CLC_OPTIMIZER_HPP

/// \file optimizer.hpp
/// Bytecode optimization pipeline, run between codegen and the VM.
///
/// Passes (iterated to a fixpoint, then fused):
///  * constant folding + propagation — evaluates operations whose operands
///    are compile-time constants with the VM's exact semantics (fold.hpp)
///    and propagates constants through slots within a basic block;
///  * algebraic simplification — x+0, x*1, x&-1, x<<0, float-safe x*1.0f /
///    x-0.0f, strength reduction x*2^k -> x<<k (and unsigned /,% by 2^k);
///  * dead-code elimination — unreachable blocks, jumps to the next
///    instruction, constant branches, cancelled push/pop chains;
///  * dead-store elimination — stores to slots never loaded anywhere in the
///    function become pops (and usually cancel away entirely);
///  * peephole fusion — PtrAdd+Load -> LIdx, PtrAdd+Store -> SIdx,
///    Mul+Add -> Mad superinstructions (bit-identical, two roundings).
///
/// Every transformation is semantics-preserving down to the bit level; the
/// O0-vs-O2 differential harness in tests/clc/optimizer_diff_test.cpp holds
/// the pipeline to that standard.

#include <cstdint>
#include <string>
#include <vector>

#include "clc/bytecode.hpp"

namespace hplrepro::clc {

/// Optimization level. O0 leaves the bytecode exactly as codegen emitted
/// it; O2 runs the full pipeline. (OpenCL build options map -cl-opt-disable
/// and -O0 to O0; the default is O2, like a real driver.)
enum class OptLevel : std::uint8_t { O0, O2 };

/// Per-function before/after counters.
struct FunctionOptStats {
  std::string name;
  bool is_kernel = false;
  std::size_t instrs_before = 0;
  std::size_t instrs_after = 0;
  std::uint64_t constants_folded = 0;
  std::uint64_t algebraic_simplified = 0;
  std::uint64_t dead_removed = 0;
  std::uint64_t instrs_fused = 0;
};

/// What the optimizer did to a module; clsim keeps this per program so
/// callers can inspect static reductions (the VM's ExecStats show the
/// dynamic ones).
struct OptReport {
  OptLevel level = OptLevel::O0;
  std::vector<FunctionOptStats> functions;

  /// Human-readable per-function summary (build-log style).
  std::string summary() const;
};

/// Optimizes every function of the module in place. At O0 this is a no-op
/// that still returns a (trivial) report.
OptReport optimize_module(Module& module, OptLevel level);

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_OPTIMIZER_HPP
