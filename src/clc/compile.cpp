#include "clc/compile.hpp"

#include "clc/codegen.hpp"
#include "clc/lexer.hpp"
#include "clc/parser.hpp"
#include "clc/preprocessor.hpp"
#include "clc/sema.hpp"

namespace hplrepro::clc {

CompileResult compile(std::string_view source) {
  DiagnosticSink diags;

  PreprocessResult preprocessed = preprocess(source, diags);
  if (diags.has_errors()) throw CompileError(diags.log());

  Lexer lexer(preprocessed.text, diags);
  std::vector<Token> tokens = lexer.lex_all();
  if (diags.has_errors()) throw CompileError(diags.log());

  tokens = expand_macros(std::move(tokens), preprocessed.macros, diags);
  if (diags.has_errors()) throw CompileError(diags.log());

  Parser parser(std::move(tokens), diags);
  TranslationUnit unit = parser.parse();
  if (diags.has_errors()) throw CompileError(diags.log());

  Sema sema(unit, diags);
  sema.run();
  if (diags.has_errors()) throw CompileError(diags.log());

  CompileResult result;
  result.module = generate_bytecode(unit);
  result.build_log = diags.log();
  return result;
}

}  // namespace hplrepro::clc
