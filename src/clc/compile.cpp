#include "clc/compile.hpp"

#include "clc/codegen.hpp"
#include "clc/wgloops.hpp"
#include "clc/lexer.hpp"
#include "clc/parser.hpp"
#include "clc/preprocessor.hpp"
#include "clc/sema.hpp"

namespace hplrepro::clc {

bool parse_build_options(std::string_view options, CompileOptions& out,
                         std::string& error) {
  std::size_t pos = 0;
  while (pos < options.size()) {
    while (pos < options.size() &&
           (options[pos] == ' ' || options[pos] == '\t')) {
      ++pos;
    }
    std::size_t end = pos;
    while (end < options.size() && options[end] != ' ' &&
           options[end] != '\t') {
      ++end;
    }
    if (end == pos) break;
    const std::string_view tok = options.substr(pos, end - pos);
    pos = end;
    if (tok == "-cl-opt-disable" || tok == "-O0") {
      out.opt_level = OptLevel::O0;
    } else if (tok == "-O1" || tok == "-O2" || tok == "-O3") {
      out.opt_level = OptLevel::O2;
    } else if (tok == "-cl-mad-enable" || tok == "-w") {
      // accepted, no effect (mad fusion is bit-exact and on at O2)
    } else if (tok == "-cl-interp=stack") {
      out.interp = InterpMode::Stack;
    } else if (tok == "-cl-interp=threaded") {
      out.interp = InterpMode::Threaded;
    } else if (tok == "-cl-wg-loops" || tok == "-cl-wg-loops=on") {
      out.wg_loops = true;
    } else if (tok == "-cl-wg-loops=off") {
      out.wg_loops = false;
    } else if (tok == "-cl-fusion" || tok == "-cl-fusion=on") {
      out.fusion = true;
    } else if (tok == "-cl-fusion=off") {
      out.fusion = false;
    } else {
      error = "unrecognized build option '" + std::string(tok) + "'";
      return false;
    }
  }
  return true;
}

CompileResult compile(std::string_view source, const CompileOptions& options) {
  DiagnosticSink diags;

  PreprocessResult preprocessed = preprocess(source, diags);
  if (diags.has_errors()) throw CompileError(diags.log());

  Lexer lexer(preprocessed.text, diags);
  std::vector<Token> tokens = lexer.lex_all();
  if (diags.has_errors()) throw CompileError(diags.log());

  tokens = expand_macros(std::move(tokens), preprocessed.macros, diags);
  if (diags.has_errors()) throw CompileError(diags.log());

  Parser parser(std::move(tokens), diags);
  TranslationUnit unit = parser.parse();
  if (diags.has_errors()) throw CompileError(diags.log());

  Sema sema(unit, diags);
  sema.run();
  if (diags.has_errors()) throw CompileError(diags.log());

  CompileResult result;
  result.module = generate_bytecode(unit);
  result.opt_report = optimize_module(result.module, options.opt_level);
  result.build_log = diags.log();
  if (options.interp == InterpMode::Threaded) {
    // Lower the optimized stack bytecode to the register form executed by
    // the direct-threaded interpreter. A lowering failure is not a build
    // error: the module simply stays stack-only and the executor falls
    // back to the stack interpreter.
    std::string note = lower_module(result.module);
    if (!note.empty()) {
      if (!result.build_log.empty()) result.build_log += '\n';
      result.build_log += note;
    } else if (options.wg_loops) {
      // Work-group compilation: region/liveness analysis over the register
      // form so eligible kernels run as work-item loops (WorkGroupVM).
      analyze_wg_loops(result.module);
    }
  }
  return result;
}

}  // namespace hplrepro::clc
