#include "clc/vm.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "clc/builtins.hpp"
#include "clc/fold.hpp"

namespace hplrepro::clc {

namespace {

// op_class_of is shared with the lowering pass (bytecode.cpp) so the
// block-level accounting of the register interpreter matches this loop's
// per-instruction counting exactly.
struct OpClassTable {
  OpClass cls[256];
  OpClassTable() {
    for (int i = 0; i < 256; ++i) cls[i] = OpClass::Control;
    for (int i = 0; i < kOpCount; ++i) {
      cls[i] = op_class_of(static_cast<Op>(i));
    }
  }
};
const OpClassTable kOpClass;

// checked_trunc_i64 / checked_trunc_u64 live in fold.hpp so the optimizer
// folds float->int conversions with exactly the VM's semantics.

double apply_math_builtin_d(Builtin id, const double* a) {
  switch (id) {
    case Builtin::Sqrt: return std::sqrt(a[0]);
    case Builtin::Rsqrt: return 1.0 / std::sqrt(a[0]);
    case Builtin::Fabs: return std::fabs(a[0]);
    case Builtin::Exp: return std::exp(a[0]);
    case Builtin::Exp2: return std::exp2(a[0]);
    case Builtin::Log: return std::log(a[0]);
    case Builtin::Log2: return std::log2(a[0]);
    case Builtin::Log10: return std::log10(a[0]);
    case Builtin::Sin: return std::sin(a[0]);
    case Builtin::Cos: return std::cos(a[0]);
    case Builtin::Tan: return std::tan(a[0]);
    case Builtin::Asin: return std::asin(a[0]);
    case Builtin::Acos: return std::acos(a[0]);
    case Builtin::Atan: return std::atan(a[0]);
    case Builtin::Floor: return std::floor(a[0]);
    case Builtin::Ceil: return std::ceil(a[0]);
    case Builtin::Trunc: return std::trunc(a[0]);
    case Builtin::Round: return std::round(a[0]);
    case Builtin::Pow: return std::pow(a[0], a[1]);
    case Builtin::Atan2: return std::atan2(a[0], a[1]);
    case Builtin::Fmod: return std::fmod(a[0], a[1]);
    case Builtin::Fmin: return std::fmin(a[0], a[1]);
    case Builtin::Fmax: return std::fmax(a[0], a[1]);
    case Builtin::Hypot: return std::hypot(a[0], a[1]);
    case Builtin::Fma: return std::fma(a[0], a[1], a[2]);
    case Builtin::Mad: return a[0] * a[1] + a[2];
    case Builtin::Min: return std::fmin(a[0], a[1]);
    case Builtin::Max: return std::fmax(a[0], a[1]);
    case Builtin::Clamp: return std::fmin(std::fmax(a[0], a[1]), a[2]);
    default:
      throw InternalError("apply_math_builtin_d: bad id");
  }
}

float apply_math_builtin_f(Builtin id, const float* a) {
  switch (id) {
    case Builtin::Sqrt: return std::sqrt(a[0]);
    case Builtin::Rsqrt: return 1.0f / std::sqrt(a[0]);
    case Builtin::Fabs: return std::fabs(a[0]);
    case Builtin::Exp: return std::exp(a[0]);
    case Builtin::Exp2: return std::exp2(a[0]);
    case Builtin::Log: return std::log(a[0]);
    case Builtin::Log2: return std::log2(a[0]);
    case Builtin::Log10: return std::log10(a[0]);
    case Builtin::Sin: return std::sin(a[0]);
    case Builtin::Cos: return std::cos(a[0]);
    case Builtin::Tan: return std::tan(a[0]);
    case Builtin::Asin: return std::asin(a[0]);
    case Builtin::Acos: return std::acos(a[0]);
    case Builtin::Atan: return std::atan(a[0]);
    case Builtin::Floor: return std::floor(a[0]);
    case Builtin::Ceil: return std::ceil(a[0]);
    case Builtin::Trunc: return std::trunc(a[0]);
    case Builtin::Round: return std::round(a[0]);
    case Builtin::Pow: return std::pow(a[0], a[1]);
    case Builtin::Atan2: return std::atan2(a[0], a[1]);
    case Builtin::Fmod: return std::fmod(a[0], a[1]);
    case Builtin::Fmin: return std::fmin(a[0], a[1]);
    case Builtin::Fmax: return std::fmax(a[0], a[1]);
    case Builtin::Hypot: return std::hypot(a[0], a[1]);
    case Builtin::Fma: return std::fma(a[0], a[1], a[2]);
    case Builtin::Mad: return a[0] * a[1] + a[2];
    case Builtin::Min: return std::fmin(a[0], a[1]);
    case Builtin::Max: return std::fmax(a[0], a[1]);
    case Builtin::Clamp: return std::fmin(std::fmax(a[0], a[1]), a[2]);
    default:
      throw InternalError("apply_math_builtin_f: bad id");
  }
}

// is_transcendental lives in builtins.cpp (shared with the lowering pass).

}  // namespace

void WorkItemVM::reset(const Module& module, const CompiledFunction& kernel,
                       std::span<const Value> args) {
  if (args.size() != kernel.params.size()) {
    throw InternalError("WorkItemVM::reset: argument count mismatch");
  }
  module_ = &module;
  stack_.clear();
  stack_.reserve(64);
  frames_.clear();
  frames_.push_back(Frame{&kernel, 0, 0, 0});
  slots_.assign(static_cast<std::size_t>(kernel.num_slots), Value{});
  for (std::size_t i = 0; i < args.size(); ++i) slots_[i] = args[i];
  private_arena_.assign(kernel.private_bytes, std::byte{0});
  barrier_flags_ = 0;
}

RunStatus WorkItemVM::run(const MemoryEnv& mem, const LaunchInfo& launch,
                          const WorkItemInfo& item, ExecStats& stats,
                          MemTracker* tracker) {
  std::uint64_t fuel = fuel_;

  // Local aliases for the hot loop.
  auto trap = [](const char* what) -> void { throw TrapError(what); };

  auto push = [&](Value v) { stack_.push_back(v); };
  auto pop = [&]() -> Value {
    Value v = stack_.back();
    stack_.pop_back();
    return v;
  };
  auto top = [&]() -> Value& { return stack_.back(); };

  // Resolves a pointer to host memory, bounds-checked.
  auto resolve = [&](std::uint64_t ptr, std::size_t size) -> std::byte* {
    const std::uint64_t offset = pointer_offset(ptr);
    switch (pointer_space(ptr)) {
      case PtrSpace::Global:
      case PtrSpace::Constant: {
        const std::uint64_t buffer = pointer_buffer(ptr);
        if (buffer >= mem.buffers.size()) trap("bad buffer index");
        auto span = mem.buffers[buffer];
        if (offset + size > span.size()) trap("global access out of bounds");
        return span.data() + offset;
      }
      case PtrSpace::Local:
        if (offset + size > mem.local.size()) {
          trap("local access out of bounds");
        }
        return mem.local.data() + offset;
      case PtrSpace::Private:
        if (offset + size > private_arena_.size()) {
          trap("private access out of bounds");
        }
        return private_arena_.data() + offset;
    }
    trap("bad pointer space");
    return nullptr;
  };

  // Accounts a memory access in the stats and coalescing tracker.
  auto note_access = [&](std::uint64_t ptr, std::uint32_t size, bool store,
                         std::uint32_t pc_key) {
    switch (pointer_space(ptr)) {
      case PtrSpace::Global:
      case PtrSpace::Constant:
        if (store) {
          stats.global_store_bytes += size;
        } else {
          stats.global_load_bytes += size;
        }
        ++stats.global_accesses;
        if (tracker) {
          tracker->global_access(pc_key, item.linear_in_group,
                                 pointer_buffer(ptr), pointer_offset(ptr),
                                 size, store);
        }
        break;
      case PtrSpace::Local:
        stats.local_bytes += size;
        ++stats.local_accesses;
        break;
      case PtrSpace::Private:
        stats.private_bytes += size;
        break;
    }
  };

  while (!frames_.empty()) {
    Frame& frame = frames_.back();
    const CompiledFunction& fn = *frame.fn;
    if (frame.pc >= fn.code.size()) {
      // Fell off the end of a void function.
      frames_.pop_back();
      continue;
    }
    const Instr instr = fn.code[frame.pc];
    const std::uint32_t pc_key =
        (static_cast<std::uint32_t>(frame.fn - module_->functions.data())
         << 20) |
        static_cast<std::uint32_t>(frame.pc);
    ++frame.pc;

    if (fuel-- == 0) trap("instruction budget exhausted (infinite loop?)");

    switch (kOpClass.cls[static_cast<int>(instr.op)]) {
      case OpClass::IntAlu: ++stats.int_ops; break;
      case OpClass::FloatAlu: ++stats.float_ops; break;
      case OpClass::DoubleAlu: ++stats.double_ops; break;
      default: ++stats.control_ops; break;  // memory adjusted in note_access
    }

    switch (instr.op) {
      case Op::Nop:
        break;
      case Op::PushI: {
        Value v;
        v.i64 = instr.imm;
        push(v);
        break;
      }
      case Op::PushF: {
        Value v;
        v.f32 = std::bit_cast<float>(static_cast<std::uint32_t>(instr.imm));
        push(v);
        break;
      }
      case Op::PushD: {
        Value v;
        v.f64 = std::bit_cast<double>(instr.imm);
        push(v);
        break;
      }
      case Op::Dup:
        push(stack_.back());
        break;
      case Op::Pop:
        stack_.pop_back();
        break;
      case Op::Swap:
        std::swap(stack_[stack_.size() - 1], stack_[stack_.size() - 2]);
        break;
      case Op::LoadSlot:
        push(slots_[frame.slot_base + static_cast<std::size_t>(instr.a)]);
        break;
      case Op::StoreSlot:
        slots_[frame.slot_base + static_cast<std::size_t>(instr.a)] = pop();
        break;
      case Op::PtrAdd: {
        const std::int64_t index = pop().i64;
        top().u64 = pointer_add(top().u64, index * instr.a);
        break;
      }
      case Op::LocalPtr: {
        Value v;
        v.u64 = make_pointer(PtrSpace::Local, 0,
                             static_cast<std::uint64_t>(instr.imm));
        push(v);
        break;
      }
      case Op::PrivatePtr: {
        Value v;
        v.u64 = make_pointer(
            PtrSpace::Private, 0,
            frame.priv_base + static_cast<std::uint64_t>(instr.imm));
        push(v);
        break;
      }

#define HPLREPRO_LOAD_CASE(OPNAME, CTYPE, FIELD, EXT)                       \
  case Op::OPNAME: {                                                        \
    const std::uint64_t ptr = pop().u64;                                    \
    note_access(ptr, sizeof(CTYPE), false, pc_key);                         \
    CTYPE raw;                                                              \
    std::memcpy(&raw, resolve(ptr, sizeof(CTYPE)), sizeof(CTYPE));          \
    Value v;                                                                \
    v.FIELD = EXT(raw);                                                     \
    push(v);                                                                \
    break;                                                                  \
  }
      HPLREPRO_LOAD_CASE(LoadI8, std::int8_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LOAD_CASE(LoadU8, std::uint8_t, u64, static_cast<std::uint64_t>)
      HPLREPRO_LOAD_CASE(LoadI16, std::int16_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LOAD_CASE(LoadU16, std::uint16_t, u64, static_cast<std::uint64_t>)
      HPLREPRO_LOAD_CASE(LoadI32, std::int32_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LOAD_CASE(LoadU32, std::uint32_t, u64, static_cast<std::uint64_t>)
      HPLREPRO_LOAD_CASE(LoadI64, std::int64_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LOAD_CASE(LoadF32, float, f32, )
      HPLREPRO_LOAD_CASE(LoadF64, double, f64, )
#undef HPLREPRO_LOAD_CASE

#define HPLREPRO_STORE_CASE(OPNAME, CTYPE, FIELD)                           \
  case Op::OPNAME: {                                                        \
    const Value v = pop();                                                  \
    const std::uint64_t ptr = pop().u64;                                    \
    note_access(ptr, sizeof(CTYPE), true, pc_key);                          \
    const CTYPE raw = static_cast<CTYPE>(v.FIELD);                          \
    std::memcpy(resolve(ptr, sizeof(CTYPE)), &raw, sizeof(CTYPE));          \
    break;                                                                  \
  }
      HPLREPRO_STORE_CASE(StoreI8, std::int8_t, i64)
      HPLREPRO_STORE_CASE(StoreI16, std::int16_t, i64)
      HPLREPRO_STORE_CASE(StoreI32, std::int32_t, i64)
      HPLREPRO_STORE_CASE(StoreI64, std::int64_t, i64)
      HPLREPRO_STORE_CASE(StoreF32, float, f32)
      HPLREPRO_STORE_CASE(StoreF64, double, f64)
#undef HPLREPRO_STORE_CASE

#define HPLREPRO_BIN_CASE(OPNAME, FIELD, EXPR)                              \
  case Op::OPNAME: {                                                        \
    const Value b = pop();                                                  \
    Value& a = top();                                                       \
    a.FIELD = (EXPR);                                                       \
    break;                                                                  \
  }
      HPLREPRO_BIN_CASE(AddI, i64, a.i64 + b.i64)
      HPLREPRO_BIN_CASE(SubI, i64, a.i64 - b.i64)
      HPLREPRO_BIN_CASE(MulI, i64, a.i64 * b.i64)
      HPLREPRO_BIN_CASE(DivI, i64, b.i64 == 0 ? 0 : (a.i64 == INT64_MIN && b.i64 == -1 ? a.i64 : a.i64 / b.i64))
      HPLREPRO_BIN_CASE(DivU, u64, b.u64 == 0 ? 0 : a.u64 / b.u64)
      HPLREPRO_BIN_CASE(RemI, i64, b.i64 == 0 ? 0 : (a.i64 == INT64_MIN && b.i64 == -1 ? 0 : a.i64 % b.i64))
      HPLREPRO_BIN_CASE(RemU, u64, b.u64 == 0 ? 0 : a.u64 % b.u64)
      HPLREPRO_BIN_CASE(AndI, u64, a.u64 & b.u64)
      HPLREPRO_BIN_CASE(OrI, u64, a.u64 | b.u64)
      HPLREPRO_BIN_CASE(XorI, u64, a.u64 ^ b.u64)
      HPLREPRO_BIN_CASE(ShlI, u64, a.u64 << (b.u64 & 63))
      HPLREPRO_BIN_CASE(ShrI, i64, a.i64 >> (b.u64 & 63))
      HPLREPRO_BIN_CASE(ShrU, u64, a.u64 >> (b.u64 & 63))
      HPLREPRO_BIN_CASE(AddF, f32, a.f32 + b.f32)
      HPLREPRO_BIN_CASE(SubF, f32, a.f32 - b.f32)
      HPLREPRO_BIN_CASE(MulF, f32, a.f32 * b.f32)
      HPLREPRO_BIN_CASE(DivF, f32, a.f32 / b.f32)
      HPLREPRO_BIN_CASE(AddD, f64, a.f64 + b.f64)
      HPLREPRO_BIN_CASE(SubD, f64, a.f64 - b.f64)
      HPLREPRO_BIN_CASE(MulD, f64, a.f64 * b.f64)
      HPLREPRO_BIN_CASE(DivD, f64, a.f64 / b.f64)
      HPLREPRO_BIN_CASE(EqI, i64, a.i64 == b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(NeI, i64, a.i64 != b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LtI, i64, a.i64 < b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LeI, i64, a.i64 <= b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GtI, i64, a.i64 > b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GeI, i64, a.i64 >= b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LtU, i64, a.u64 < b.u64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LeU, i64, a.u64 <= b.u64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GtU, i64, a.u64 > b.u64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GeU, i64, a.u64 >= b.u64 ? 1 : 0)
      HPLREPRO_BIN_CASE(EqF, i64, a.f32 == b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(NeF, i64, a.f32 != b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(LtF, i64, a.f32 < b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(LeF, i64, a.f32 <= b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(GtF, i64, a.f32 > b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(GeF, i64, a.f32 >= b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(EqD, i64, a.f64 == b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(NeD, i64, a.f64 != b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LtD, i64, a.f64 < b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LeD, i64, a.f64 <= b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GtD, i64, a.f64 > b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GeD, i64, a.f64 >= b.f64 ? 1 : 0)
#undef HPLREPRO_BIN_CASE

      case Op::NegI: top().i64 = -top().i64; break;
      case Op::NotI: top().u64 = ~top().u64; break;
      case Op::NegF: top().f32 = -top().f32; break;
      case Op::NegD: top().f64 = -top().f64; break;
      case Op::LNot: top().i64 = top().i64 == 0 ? 1 : 0; break;
      case Op::Bool: top().i64 = top().i64 != 0 ? 1 : 0; break;

      case Op::Sext8: top().i64 = static_cast<std::int8_t>(top().i64); break;
      case Op::Sext16: top().i64 = static_cast<std::int16_t>(top().i64); break;
      case Op::Sext32: top().i64 = static_cast<std::int32_t>(top().i64); break;
      case Op::Zext8: top().u64 &= 0xFFull; break;
      case Op::Zext16: top().u64 &= 0xFFFFull; break;
      case Op::Zext32: top().u64 &= 0xFFFFFFFFull; break;
      case Op::Zext1: top().u64 &= 1ull; break;

      case Op::I2F: top().f32 = static_cast<float>(top().i64); break;
      case Op::I2D: top().f64 = static_cast<double>(top().i64); break;
      case Op::U2F: top().f32 = static_cast<float>(top().u64); break;
      case Op::U2D: top().f64 = static_cast<double>(top().u64); break;
      case Op::F2I: top().i64 = checked_trunc_i64(top().f32); break;
      case Op::D2I: top().i64 = checked_trunc_i64(top().f64); break;
      case Op::F2U: top().u64 = checked_trunc_u64(top().f32); break;
      case Op::D2U: top().u64 = checked_trunc_u64(top().f64); break;
      case Op::F2D: top().f64 = static_cast<double>(top().f32); break;
      case Op::D2F: top().f32 = static_cast<float>(top().f64); break;

      case Op::Jmp:
        frame.pc = static_cast<std::size_t>(instr.a);
        break;
      case Op::JmpIfZero:
        if (pop().i64 == 0) frame.pc = static_cast<std::size_t>(instr.a);
        break;
      case Op::JmpIfNonZero:
        if (pop().i64 != 0) frame.pc = static_cast<std::size_t>(instr.a);
        break;

      case Op::Call: {
        const CompiledFunction& callee =
            module_->functions[static_cast<std::size_t>(instr.a)];
        const std::size_t nargs = callee.params.size();
        if (frames_.size() >= 64) trap("call stack overflow");
        Frame next;
        next.fn = &callee;
        next.pc = 0;
        next.slot_base = slots_.size();
        next.priv_base = frame.priv_base + fn.private_bytes;
        slots_.resize(next.slot_base +
                      static_cast<std::size_t>(callee.num_slots));
        if (private_arena_.size() < next.priv_base + callee.private_bytes) {
          private_arena_.resize(next.priv_base + callee.private_bytes);
        }
        for (std::size_t i = 0; i < nargs; ++i) {
          slots_[next.slot_base + nargs - 1 - i] = pop();
        }
        frames_.push_back(next);
        break;
      }
      case Op::Ret: {
        // Return value stays on the operand stack for the caller.
        slots_.resize(frame.slot_base);
        frames_.pop_back();
        break;
      }
      case Op::RetVoid:
        slots_.resize(frame.slot_base);
        frames_.pop_back();
        break;

      case Op::BarrierOp: {
        barrier_flags_ = pop().u64;
        ++stats.barriers_executed;
        return RunStatus::Barrier;
      }

      case Op::WorkItemFn: {
        const auto id = static_cast<Builtin>(instr.a);
        const std::uint64_t dim = pop().u64;
        const std::size_t d = dim < 3 ? static_cast<std::size_t>(dim) : 0;
        Value v;
        switch (id) {
          case Builtin::GetWorkDim:
            v.u64 = static_cast<std::uint64_t>(launch.work_dim);
            break;
          case Builtin::GetGlobalId: v.u64 = item.global_id[d]; break;
          case Builtin::GetLocalId: v.u64 = item.local_id[d]; break;
          case Builtin::GetGroupId: v.u64 = item.group_id[d]; break;
          case Builtin::GetGlobalSize: v.u64 = launch.global_size[d]; break;
          case Builtin::GetLocalSize: v.u64 = launch.local_size[d]; break;
          case Builtin::GetNumGroups: v.u64 = launch.num_groups[d]; break;
          default:
            trap("bad work-item function");
            v.u64 = 0;
        }
        push(v);
        break;
      }

      case Op::BuiltinOp: {
        const auto id = static_cast<Builtin>(instr.a);
        const BuiltinInfo& info = builtin_info(id);
        const int arity = info.arity;
        if (is_transcendental(id)) {
          ++stats.special_ops;
        } else if (instr.imm == 1) {
          ++stats.float_ops;
        } else if (instr.imm == 2) {
          ++stats.double_ops;
        } else {
          ++stats.int_ops;
        }
        switch (instr.imm) {
          case 1: {  // f32
            float a[3] = {0, 0, 0};
            for (int i = arity - 1; i >= 0; --i) a[i] = pop().f32;
            Value v;
            v.f32 = apply_math_builtin_f(id, a);
            push(v);
            break;
          }
          case 2: {  // f64
            double a[3] = {0, 0, 0};
            for (int i = arity - 1; i >= 0; --i) a[i] = pop().f64;
            Value v;
            v.f64 = apply_math_builtin_d(id, a);
            push(v);
            break;
          }
          case 0: {  // signed integer
            std::int64_t a[3] = {0, 0, 0};
            for (int i = arity - 1; i >= 0; --i) a[i] = pop().i64;
            Value v;
            switch (id) {
              case Builtin::Min: v.i64 = a[0] < a[1] ? a[0] : a[1]; break;
              case Builtin::Max: v.i64 = a[0] > a[1] ? a[0] : a[1]; break;
              case Builtin::Abs: v.i64 = a[0] < 0 ? -a[0] : a[0]; break;
              case Builtin::Clamp:
                v.i64 = a[0] < a[1] ? a[1] : (a[0] > a[2] ? a[2] : a[0]);
                break;
              default:
                trap("bad integer builtin");
                v.i64 = 0;
            }
            push(v);
            break;
          }
          default: {  // unsigned integer
            std::uint64_t a[3] = {0, 0, 0};
            for (int i = arity - 1; i >= 0; --i) a[i] = pop().u64;
            Value v;
            switch (id) {
              case Builtin::Min: v.u64 = a[0] < a[1] ? a[0] : a[1]; break;
              case Builtin::Max: v.u64 = a[0] > a[1] ? a[0] : a[1]; break;
              case Builtin::Abs: v.u64 = a[0]; break;
              case Builtin::Clamp:
                v.u64 = a[0] < a[1] ? a[1] : (a[0] > a[2] ? a[2] : a[0]);
                break;
              default:
                trap("bad unsigned builtin");
                v.u64 = 0;
            }
            push(v);
            break;
          }
        }
        break;
      }

#define HPLREPRO_LIDX_CASE(OPNAME, CTYPE, FIELD, EXT)                       \
  case Op::OPNAME: {                                                        \
    const std::int64_t index = pop().i64;                                   \
    const std::uint64_t ptr = pointer_add(pop().u64, index * instr.a);      \
    note_access(ptr, sizeof(CTYPE), false, pc_key);                         \
    CTYPE raw;                                                              \
    std::memcpy(&raw, resolve(ptr, sizeof(CTYPE)), sizeof(CTYPE));          \
    Value v;                                                                \
    v.FIELD = EXT(raw);                                                     \
    push(v);                                                                \
    ++stats.fused_ops;                                                      \
    break;                                                                  \
  }
      HPLREPRO_LIDX_CASE(LIdxI8, std::int8_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LIDX_CASE(LIdxU8, std::uint8_t, u64,
                         static_cast<std::uint64_t>)
      HPLREPRO_LIDX_CASE(LIdxI16, std::int16_t, i64,
                         static_cast<std::int64_t>)
      HPLREPRO_LIDX_CASE(LIdxU16, std::uint16_t, u64,
                         static_cast<std::uint64_t>)
      HPLREPRO_LIDX_CASE(LIdxI32, std::int32_t, i64,
                         static_cast<std::int64_t>)
      HPLREPRO_LIDX_CASE(LIdxU32, std::uint32_t, u64,
                         static_cast<std::uint64_t>)
      HPLREPRO_LIDX_CASE(LIdxI64, std::int64_t, i64,
                         static_cast<std::int64_t>)
      HPLREPRO_LIDX_CASE(LIdxF32, float, f32, )
      HPLREPRO_LIDX_CASE(LIdxF64, double, f64, )
#undef HPLREPRO_LIDX_CASE

#define HPLREPRO_SIDX_CASE(OPNAME, CTYPE, FIELD)                            \
  case Op::OPNAME: {                                                        \
    const Value v = pop();                                                  \
    const std::int64_t index = pop().i64;                                   \
    const std::uint64_t ptr = pointer_add(pop().u64, index * instr.a);      \
    note_access(ptr, sizeof(CTYPE), true, pc_key);                          \
    const CTYPE raw = static_cast<CTYPE>(v.FIELD);                          \
    std::memcpy(resolve(ptr, sizeof(CTYPE)), &raw, sizeof(CTYPE));          \
    ++stats.fused_ops;                                                      \
    break;                                                                  \
  }
      HPLREPRO_SIDX_CASE(SIdxI8, std::int8_t, i64)
      HPLREPRO_SIDX_CASE(SIdxI16, std::int16_t, i64)
      HPLREPRO_SIDX_CASE(SIdxI32, std::int32_t, i64)
      HPLREPRO_SIDX_CASE(SIdxI64, std::int64_t, i64)
      HPLREPRO_SIDX_CASE(SIdxF32, float, f32)
      HPLREPRO_SIDX_CASE(SIdxF64, double, f64)
#undef HPLREPRO_SIDX_CASE

      // Fused multiply-add: product then sum, two roundings, exactly the
      // unfused pair (see bytecode.hpp for the operand-order encoding).
      case Op::MadI: {
        if (instr.a == 0) {
          const Value z = pop();
          const Value y = pop();
          Value& x = top();
          x.i64 = x.i64 * y.i64 + z.i64;
        } else {
          const Value y = pop();
          const Value x = pop();
          Value& z = top();
          z.i64 = z.i64 + x.i64 * y.i64;
        }
        ++stats.fused_ops;
        break;
      }
      case Op::MadF: {
        // Product and sum as separate statements: must round twice, like
        // the unfused MulF; AddF pair (no FMA contraction).
        if (instr.a == 0) {
          const Value z = pop();
          const Value y = pop();
          Value& x = top();
          const float t = x.f32 * y.f32;
          x.f32 = t + z.f32;
        } else {
          const Value y = pop();
          const Value x = pop();
          Value& z = top();
          const float t = x.f32 * y.f32;
          z.f32 = z.f32 + t;
        }
        ++stats.fused_ops;
        break;
      }
      case Op::MadD: {
        if (instr.a == 0) {
          const Value z = pop();
          const Value y = pop();
          Value& x = top();
          const double t = x.f64 * y.f64;
          x.f64 = t + z.f64;
        } else {
          const Value y = pop();
          const Value x = pop();
          Value& z = top();
          const double t = x.f64 * y.f64;
          z.f64 = z.f64 + t;
        }
        ++stats.fused_ops;
        break;
      }
    }
  }

  return RunStatus::Done;
}

// --- Register interpreter ---------------------------------------------------

// Direct-threaded dispatch (labels as values) under GCC/Clang; define
// HPLREPRO_VM_FORCE_SWITCH for the portable switch loop. The semantic
// oracle is the stack interpreter above, selected per build with
// -cl-interp=stack.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(HPLREPRO_VM_FORCE_SWITCH)
#define HPLREPRO_VM_COMPUTED_GOTO 1
#else
#define HPLREPRO_VM_COMPUTED_GOTO 0
#endif

void RegItemVM::reset(const Module& module, const CompiledFunction& kernel,
                      std::span<const Value> args) {
  if (!module.has_reg_form()) {
    throw InternalError("RegItemVM::reset: module has no register form");
  }
  if (args.size() != kernel.params.size()) {
    throw InternalError("RegItemVM::reset: argument count mismatch");
  }
  module_ = &module;
  const auto index =
      static_cast<std::size_t>(&kernel - module.functions.data());
  const RegFunction& fn = module.reg_functions[index];
  frames_.clear();
  frames_.push_back(Frame{&fn, 0, kNoRet, 0, 0});
  regs_.assign(fn.num_regs, Value{});
  for (std::size_t i = 0; i < args.size(); ++i) regs_[i] = args[i];
  private_arena_.assign(fn.private_bytes, std::byte{0});
  barrier_flags_ = 0;
  pending_block_ = 0;
}

RunStatus RegItemVM::run(const MemoryEnv& mem, const LaunchInfo& launch,
                         const WorkItemInfo& item, ExecStats& stats,
                         MemTracker* tracker) {
  std::uint64_t fuel = fuel_;
  Frame* fr = &frames_.back();
  const RegFunction* fn = fr->fn;
  const RegInstr* code = fn->code.data();
  Value* R = regs_.data() + fr->base;
  std::uint32_t pc = 0;
  const RegInstr* in = nullptr;

  auto trap = [](const char* what) -> void { throw TrapError(what); };

  // Identical to the stack interpreter's resolve/note_access, so both
  // paths produce the same traps and the same memory accounting.
  auto resolve = [&](std::uint64_t ptr, std::size_t size) -> std::byte* {
    const std::uint64_t offset = pointer_offset(ptr);
    switch (pointer_space(ptr)) {
      case PtrSpace::Global:
      case PtrSpace::Constant: {
        const std::uint64_t buffer = pointer_buffer(ptr);
        if (buffer >= mem.buffers.size()) trap("bad buffer index");
        auto span = mem.buffers[buffer];
        if (offset + size > span.size()) trap("global access out of bounds");
        return span.data() + offset;
      }
      case PtrSpace::Local:
        if (offset + size > mem.local.size()) {
          trap("local access out of bounds");
        }
        return mem.local.data() + offset;
      case PtrSpace::Private:
        if (offset + size > private_arena_.size()) {
          trap("private access out of bounds");
        }
        return private_arena_.data() + offset;
    }
    trap("bad pointer space");
    return nullptr;
  };

  auto note_access = [&](std::uint64_t ptr, std::uint32_t size, bool store,
                         std::uint32_t pc_key) {
    switch (pointer_space(ptr)) {
      case PtrSpace::Global:
      case PtrSpace::Constant:
        if (store) {
          stats.global_store_bytes += size;
        } else {
          stats.global_load_bytes += size;
        }
        ++stats.global_accesses;
        if (tracker) {
          tracker->global_access(pc_key, item.linear_in_group,
                                 pointer_buffer(ptr), pointer_offset(ptr),
                                 size, store);
        }
        break;
      case PtrSpace::Local:
        stats.local_bytes += size;
        ++stats.local_accesses;
        break;
      case PtrSpace::Private:
        stats.private_bytes += size;
        break;
    }
  };

  // Block-level accounting: one histogram bump and one fuel burn per block
  // entry, precomputed at lowering time. Summed over a run this equals the
  // stack interpreter's per-instruction counting exactly.
  auto enter_block = [&](std::uint32_t b) {
    const RegBlock& blk = fn->blocks[b];
    stats.control_ops += blk.control_ops;
    stats.int_ops += blk.int_ops;
    stats.float_ops += blk.float_ops;
    stats.double_ops += blk.double_ops;
    stats.special_ops += blk.special_ops;
    stats.fused_ops += blk.fused_ops;
    if (fuel < blk.fuel) {
      trap("instruction budget exhausted (infinite loop?)");
    }
    fuel -= blk.fuel;
    pc = blk.start;
  };

  // Kernel entry accounts block 0; resumption after a barrier accounts the
  // barrier's resume block.
  enter_block(pending_block_);

#if HPLREPRO_VM_COMPUTED_GOTO
  static const void* const kLabels[] = {
#define HPLREPRO_VM_LABEL(name) &&L_##name,
      HPLREPRO_REG_OPS(HPLREPRO_VM_LABEL)
#undef HPLREPRO_VM_LABEL
  };
#define VM_CASE(name) L_##name:
#define VM_NEXT                                   \
  in = code + pc;                                 \
  ++pc;                                           \
  goto* kLabels[static_cast<int>(in->op)];
  VM_NEXT
#else
#define VM_CASE(name) case RegOp::name:
#define VM_NEXT break;
  for (;;) {
    in = code + pc;
    ++pc;
    switch (in->op) {
#endif

  VM_CASE(Const) { R[in->dst].i64 = in->imm; }
  VM_NEXT

  VM_CASE(Mov) { R[in->dst] = R[in->a]; }
  VM_NEXT

  VM_CASE(PrivPtr) {
    R[in->dst].u64 =
        make_pointer(PtrSpace::Private, 0,
                     fr->priv_base + static_cast<std::uint64_t>(in->imm));
  }
  VM_NEXT

  VM_CASE(PtrAdd) {
    R[in->dst].u64 = pointer_add(R[in->a].u64, R[in->b].i64 * in->imm);
  }
  VM_NEXT

#define HPLREPRO_RLOAD(NAME, CTYPE, FIELD, EXT)                             \
  VM_CASE(NAME) {                                                           \
    const std::uint64_t ptr = R[in->a].u64;                                 \
    note_access(ptr, sizeof(CTYPE), false,                                  \
                static_cast<std::uint32_t>(in->aux));                       \
    CTYPE raw;                                                              \
    std::memcpy(&raw, resolve(ptr, sizeof(CTYPE)), sizeof(CTYPE));          \
    R[in->dst].FIELD = EXT(raw);                                            \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RLOAD(LoadI8, std::int8_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLOAD(LoadU8, std::uint8_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLOAD(LoadI16, std::int16_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLOAD(LoadU16, std::uint16_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLOAD(LoadI32, std::int32_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLOAD(LoadU32, std::uint32_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLOAD(LoadI64, std::int64_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLOAD(LoadF32, float, f32, )
  HPLREPRO_RLOAD(LoadF64, double, f64, )
#undef HPLREPRO_RLOAD

#define HPLREPRO_RSTORE(NAME, CTYPE, FIELD)                                 \
  VM_CASE(NAME) {                                                           \
    const std::uint64_t ptr = R[in->a].u64;                                 \
    note_access(ptr, sizeof(CTYPE), true,                                   \
                static_cast<std::uint32_t>(in->aux));                       \
    const CTYPE raw = static_cast<CTYPE>(R[in->b].FIELD);                   \
    std::memcpy(resolve(ptr, sizeof(CTYPE)), &raw, sizeof(CTYPE));          \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RSTORE(StoreI8, std::int8_t, i64)
  HPLREPRO_RSTORE(StoreI16, std::int16_t, i64)
  HPLREPRO_RSTORE(StoreI32, std::int32_t, i64)
  HPLREPRO_RSTORE(StoreI64, std::int64_t, i64)
  HPLREPRO_RSTORE(StoreF32, float, f32)
  HPLREPRO_RSTORE(StoreF64, double, f64)
#undef HPLREPRO_RSTORE

#define HPLREPRO_RLIDX(NAME, CTYPE, FIELD, EXT)                             \
  VM_CASE(NAME) {                                                           \
    const std::uint64_t ptr =                                               \
        pointer_add(R[in->a].u64, R[in->b].i64 * in->imm);                  \
    note_access(ptr, sizeof(CTYPE), false,                                  \
                static_cast<std::uint32_t>(in->aux));                       \
    CTYPE raw;                                                              \
    std::memcpy(&raw, resolve(ptr, sizeof(CTYPE)), sizeof(CTYPE));          \
    R[in->dst].FIELD = EXT(raw);                                            \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RLIDX(LIdxI8, std::int8_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLIDX(LIdxU8, std::uint8_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLIDX(LIdxI16, std::int16_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLIDX(LIdxU16, std::uint16_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLIDX(LIdxI32, std::int32_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLIDX(LIdxU32, std::uint32_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLIDX(LIdxI64, std::int64_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLIDX(LIdxF32, float, f32, )
  HPLREPRO_RLIDX(LIdxF64, double, f64, )
#undef HPLREPRO_RLIDX

#define HPLREPRO_RSIDX(NAME, CTYPE, FIELD)                                  \
  VM_CASE(NAME) {                                                           \
    const std::uint64_t ptr =                                               \
        pointer_add(R[in->a].u64, R[in->b].i64 * in->imm);                  \
    note_access(ptr, sizeof(CTYPE), true,                                   \
                static_cast<std::uint32_t>(in->aux));                       \
    const CTYPE raw = static_cast<CTYPE>(R[in->c].FIELD);                   \
    std::memcpy(resolve(ptr, sizeof(CTYPE)), &raw, sizeof(CTYPE));          \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RSIDX(SIdxI8, std::int8_t, i64)
  HPLREPRO_RSIDX(SIdxI16, std::int16_t, i64)
  HPLREPRO_RSIDX(SIdxI32, std::int32_t, i64)
  HPLREPRO_RSIDX(SIdxI64, std::int64_t, i64)
  HPLREPRO_RSIDX(SIdxF32, float, f32)
  HPLREPRO_RSIDX(SIdxF64, double, f64)
#undef HPLREPRO_RSIDX

#define HPLREPRO_RBIN(NAME, FIELD, EXPR)                                    \
  VM_CASE(NAME) {                                                           \
    const Value a = R[in->a];                                               \
    const Value b = R[in->b];                                               \
    R[in->dst].FIELD = (EXPR);                                              \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RBIN(AddI, i64, a.i64 + b.i64)
  HPLREPRO_RBIN(SubI, i64, a.i64 - b.i64)
  HPLREPRO_RBIN(MulI, i64, a.i64 * b.i64)
  HPLREPRO_RBIN(DivI, i64, b.i64 == 0 ? 0 : (a.i64 == INT64_MIN && b.i64 == -1 ? a.i64 : a.i64 / b.i64))
  HPLREPRO_RBIN(DivU, u64, b.u64 == 0 ? 0 : a.u64 / b.u64)
  HPLREPRO_RBIN(RemI, i64, b.i64 == 0 ? 0 : (a.i64 == INT64_MIN && b.i64 == -1 ? 0 : a.i64 % b.i64))
  HPLREPRO_RBIN(RemU, u64, b.u64 == 0 ? 0 : a.u64 % b.u64)
  HPLREPRO_RBIN(AndI, u64, a.u64 & b.u64)
  HPLREPRO_RBIN(OrI, u64, a.u64 | b.u64)
  HPLREPRO_RBIN(XorI, u64, a.u64 ^ b.u64)
  HPLREPRO_RBIN(ShlI, u64, a.u64 << (b.u64 & 63))
  HPLREPRO_RBIN(ShrI, i64, a.i64 >> (b.u64 & 63))
  HPLREPRO_RBIN(ShrU, u64, a.u64 >> (b.u64 & 63))
  HPLREPRO_RBIN(AddF, f32, a.f32 + b.f32)
  HPLREPRO_RBIN(SubF, f32, a.f32 - b.f32)
  HPLREPRO_RBIN(MulF, f32, a.f32 * b.f32)
  HPLREPRO_RBIN(DivF, f32, a.f32 / b.f32)
  HPLREPRO_RBIN(AddD, f64, a.f64 + b.f64)
  HPLREPRO_RBIN(SubD, f64, a.f64 - b.f64)
  HPLREPRO_RBIN(MulD, f64, a.f64 * b.f64)
  HPLREPRO_RBIN(DivD, f64, a.f64 / b.f64)
  HPLREPRO_RBIN(EqI, i64, a.i64 == b.i64 ? 1 : 0)
  HPLREPRO_RBIN(NeI, i64, a.i64 != b.i64 ? 1 : 0)
  HPLREPRO_RBIN(LtI, i64, a.i64 < b.i64 ? 1 : 0)
  HPLREPRO_RBIN(LeI, i64, a.i64 <= b.i64 ? 1 : 0)
  HPLREPRO_RBIN(GtI, i64, a.i64 > b.i64 ? 1 : 0)
  HPLREPRO_RBIN(GeI, i64, a.i64 >= b.i64 ? 1 : 0)
  HPLREPRO_RBIN(LtU, i64, a.u64 < b.u64 ? 1 : 0)
  HPLREPRO_RBIN(LeU, i64, a.u64 <= b.u64 ? 1 : 0)
  HPLREPRO_RBIN(GtU, i64, a.u64 > b.u64 ? 1 : 0)
  HPLREPRO_RBIN(GeU, i64, a.u64 >= b.u64 ? 1 : 0)
  HPLREPRO_RBIN(EqF, i64, a.f32 == b.f32 ? 1 : 0)
  HPLREPRO_RBIN(NeF, i64, a.f32 != b.f32 ? 1 : 0)
  HPLREPRO_RBIN(LtF, i64, a.f32 < b.f32 ? 1 : 0)
  HPLREPRO_RBIN(LeF, i64, a.f32 <= b.f32 ? 1 : 0)
  HPLREPRO_RBIN(GtF, i64, a.f32 > b.f32 ? 1 : 0)
  HPLREPRO_RBIN(GeF, i64, a.f32 >= b.f32 ? 1 : 0)
  HPLREPRO_RBIN(EqD, i64, a.f64 == b.f64 ? 1 : 0)
  HPLREPRO_RBIN(NeD, i64, a.f64 != b.f64 ? 1 : 0)
  HPLREPRO_RBIN(LtD, i64, a.f64 < b.f64 ? 1 : 0)
  HPLREPRO_RBIN(LeD, i64, a.f64 <= b.f64 ? 1 : 0)
  HPLREPRO_RBIN(GtD, i64, a.f64 > b.f64 ? 1 : 0)
  HPLREPRO_RBIN(GeD, i64, a.f64 >= b.f64 ? 1 : 0)
#undef HPLREPRO_RBIN

#define HPLREPRO_RUN1(NAME, STMT)                                           \
  VM_CASE(NAME) { STMT; }                                                   \
  VM_NEXT
  HPLREPRO_RUN1(NegI, R[in->dst].i64 = -R[in->a].i64)
  HPLREPRO_RUN1(NotI, R[in->dst].u64 = ~R[in->a].u64)
  HPLREPRO_RUN1(NegF, R[in->dst].f32 = -R[in->a].f32)
  HPLREPRO_RUN1(NegD, R[in->dst].f64 = -R[in->a].f64)
  HPLREPRO_RUN1(LNot, R[in->dst].i64 = R[in->a].i64 == 0 ? 1 : 0)
  HPLREPRO_RUN1(Bool, R[in->dst].i64 = R[in->a].i64 != 0 ? 1 : 0)
  HPLREPRO_RUN1(Sext8,
                R[in->dst].i64 = static_cast<std::int8_t>(R[in->a].i64))
  HPLREPRO_RUN1(Sext16,
                R[in->dst].i64 = static_cast<std::int16_t>(R[in->a].i64))
  HPLREPRO_RUN1(Sext32,
                R[in->dst].i64 = static_cast<std::int32_t>(R[in->a].i64))
  HPLREPRO_RUN1(Zext8, R[in->dst].u64 = R[in->a].u64 & 0xFFull)
  HPLREPRO_RUN1(Zext16, R[in->dst].u64 = R[in->a].u64 & 0xFFFFull)
  HPLREPRO_RUN1(Zext32, R[in->dst].u64 = R[in->a].u64 & 0xFFFFFFFFull)
  HPLREPRO_RUN1(Zext1, R[in->dst].u64 = R[in->a].u64 & 1ull)
  HPLREPRO_RUN1(I2F, R[in->dst].f32 = static_cast<float>(R[in->a].i64))
  HPLREPRO_RUN1(I2D, R[in->dst].f64 = static_cast<double>(R[in->a].i64))
  HPLREPRO_RUN1(U2F, R[in->dst].f32 = static_cast<float>(R[in->a].u64))
  HPLREPRO_RUN1(U2D, R[in->dst].f64 = static_cast<double>(R[in->a].u64))
  HPLREPRO_RUN1(F2I, R[in->dst].i64 = checked_trunc_i64(R[in->a].f32))
  HPLREPRO_RUN1(D2I, R[in->dst].i64 = checked_trunc_i64(R[in->a].f64))
  HPLREPRO_RUN1(F2U, R[in->dst].u64 = checked_trunc_u64(R[in->a].f32))
  HPLREPRO_RUN1(D2U, R[in->dst].u64 = checked_trunc_u64(R[in->a].f64))
  HPLREPRO_RUN1(F2D, R[in->dst].f64 = static_cast<double>(R[in->a].f32))
  HPLREPRO_RUN1(D2F, R[in->dst].f32 = static_cast<float>(R[in->a].f64))
#undef HPLREPRO_RUN1

  VM_CASE(MadI) {
    // Integer add commutes, so the operand-order bit is irrelevant here.
    R[in->dst].i64 = R[in->a].i64 * R[in->b].i64 + R[in->c].i64;
  }
  VM_NEXT

  VM_CASE(MadF) {
    // Two roundings, addend order per the encoding — bit-identical with
    // the stack interpreter's MadF.
    const float t = R[in->a].f32 * R[in->b].f32;
    const float z = R[in->c].f32;
    R[in->dst].f32 = in->aux == 0 ? t + z : z + t;
  }
  VM_NEXT

  VM_CASE(MadD) {
    const double t = R[in->a].f64 * R[in->b].f64;
    const double z = R[in->c].f64;
    R[in->dst].f64 = in->aux == 0 ? t + z : z + t;
  }
  VM_NEXT

  VM_CASE(Br) { enter_block(static_cast<std::uint32_t>(in->aux)); }
  VM_NEXT

  VM_CASE(BrIf) {
    enter_block(R[in->a].i64 != 0 ? in->dst
                                  : static_cast<std::uint32_t>(in->aux));
  }
  VM_NEXT

  VM_CASE(Call) {
    if (frames_.size() >= 64) trap("call stack overflow");
    const RegFunction& callee =
        module_->reg_functions[static_cast<std::size_t>(in->aux)];
    fr->pc = pc;
    Frame next;
    next.fn = &callee;
    next.ret_reg = in->b ? static_cast<std::uint32_t>(fr->base + in->dst)
                         : kNoRet;
    next.base = regs_.size();
    next.priv_base = fr->priv_base + fn->private_bytes;
    const std::size_t abase = fr->base + in->a;
    // resize value-initializes the new registers (callee locals are zero,
    // like the stack interpreter's fresh slots).
    regs_.resize(next.base + callee.num_regs);
    for (std::size_t i = 0; i < callee.num_params; ++i) {
      regs_[next.base + i] = regs_[abase + i];
    }
    if (private_arena_.size() < next.priv_base + callee.private_bytes) {
      private_arena_.resize(next.priv_base + callee.private_bytes);
    }
    frames_.push_back(next);
    fr = &frames_.back();
    fn = &callee;
    code = fn->code.data();
    R = regs_.data() + fr->base;
    enter_block(0);
  }
  VM_NEXT

  VM_CASE(Ret) {
    const Value result = R[in->a];
    const std::uint32_t rr = fr->ret_reg;
    regs_.resize(fr->base);
    frames_.pop_back();
    if (frames_.empty()) return RunStatus::Done;
    fr = &frames_.back();
    fn = fr->fn;
    code = fn->code.data();
    R = regs_.data() + fr->base;
    pc = fr->pc;
    if (rr != kNoRet) regs_[rr] = result;
  }
  VM_NEXT

  VM_CASE(RetVoid) {
    regs_.resize(fr->base);
    frames_.pop_back();
    if (frames_.empty()) return RunStatus::Done;
    fr = &frames_.back();
    fn = fr->fn;
    code = fn->code.data();
    R = regs_.data() + fr->base;
    pc = fr->pc;
  }
  VM_NEXT

  VM_CASE(Barrier) {
    barrier_flags_ = R[in->a].u64;
    ++stats.barriers_executed;
    // Suspend: the register file (regs_/frames_) is the saved state; the
    // resume block is accounted on the next run() call.
    pending_block_ = static_cast<std::uint32_t>(in->aux);
    return RunStatus::Barrier;
  }

  VM_CASE(WorkItem) {
    const auto id = static_cast<Builtin>(in->aux);
    const std::uint64_t dim = R[in->a].u64;
    const std::size_t d = dim < 3 ? static_cast<std::size_t>(dim) : 0;
    std::uint64_t v = 0;
    switch (id) {
      case Builtin::GetWorkDim:
        v = static_cast<std::uint64_t>(launch.work_dim);
        break;
      case Builtin::GetGlobalId: v = item.global_id[d]; break;
      case Builtin::GetLocalId: v = item.local_id[d]; break;
      case Builtin::GetGroupId: v = item.group_id[d]; break;
      case Builtin::GetGlobalSize: v = launch.global_size[d]; break;
      case Builtin::GetLocalSize: v = launch.local_size[d]; break;
      case Builtin::GetNumGroups: v = launch.num_groups[d]; break;
      default:
        trap("bad work-item function");
    }
    R[in->dst].u64 = v;
  }
  VM_NEXT

  VM_CASE(BuiltinFn) {
    const auto id = static_cast<Builtin>(in->aux);
    const int arity = in->b;
    const Value* args = &R[in->a];
    switch (in->c) {
      case 1: {  // f32
        float a[3] = {0, 0, 0};
        for (int i = 0; i < arity; ++i) a[i] = args[i].f32;
        R[in->dst].f32 = apply_math_builtin_f(id, a);
        break;
      }
      case 2: {  // f64
        double a[3] = {0, 0, 0};
        for (int i = 0; i < arity; ++i) a[i] = args[i].f64;
        R[in->dst].f64 = apply_math_builtin_d(id, a);
        break;
      }
      case 0: {  // signed integer
        std::int64_t a[3] = {0, 0, 0};
        for (int i = 0; i < arity; ++i) a[i] = args[i].i64;
        std::int64_t v = 0;
        switch (id) {
          case Builtin::Min: v = a[0] < a[1] ? a[0] : a[1]; break;
          case Builtin::Max: v = a[0] > a[1] ? a[0] : a[1]; break;
          case Builtin::Abs: v = a[0] < 0 ? -a[0] : a[0]; break;
          case Builtin::Clamp:
            v = a[0] < a[1] ? a[1] : (a[0] > a[2] ? a[2] : a[0]);
            break;
          default:
            trap("bad integer builtin");
        }
        R[in->dst].i64 = v;
        break;
      }
      default: {  // unsigned integer
        std::uint64_t a[3] = {0, 0, 0};
        for (int i = 0; i < arity; ++i) a[i] = args[i].u64;
        std::uint64_t v = 0;
        switch (id) {
          case Builtin::Min: v = a[0] < a[1] ? a[0] : a[1]; break;
          case Builtin::Max: v = a[0] > a[1] ? a[0] : a[1]; break;
          case Builtin::Abs: v = a[0]; break;
          case Builtin::Clamp:
            v = a[0] < a[1] ? a[1] : (a[0] > a[2] ? a[2] : a[0]);
            break;
          default:
            trap("bad unsigned builtin");
        }
        R[in->dst].u64 = v;
        break;
      }
    }
  }
  VM_NEXT

#if !HPLREPRO_VM_COMPUTED_GOTO
      default:
        throw InternalError("RegItemVM: bad opcode");
    }
  }
#endif
#undef VM_CASE
#undef VM_NEXT
}

}  // namespace hplrepro::clc
