#include "clc/vm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "clc/builtins.hpp"
#include "clc/fold.hpp"

namespace hplrepro::clc {

namespace {

// op_class_of is shared with the lowering pass (bytecode.cpp) so the
// block-level accounting of the register interpreter matches this loop's
// per-instruction counting exactly.
struct OpClassTable {
  OpClass cls[256];
  OpClassTable() {
    for (int i = 0; i < 256; ++i) cls[i] = OpClass::Control;
    for (int i = 0; i < kOpCount; ++i) {
      cls[i] = op_class_of(static_cast<Op>(i));
    }
  }
};
const OpClassTable kOpClass;

// checked_trunc_i64 / checked_trunc_u64 live in fold.hpp so the optimizer
// folds float->int conversions with exactly the VM's semantics.

double apply_math_builtin_d(Builtin id, const double* a) {
  switch (id) {
    case Builtin::Sqrt: return std::sqrt(a[0]);
    case Builtin::Rsqrt: return 1.0 / std::sqrt(a[0]);
    case Builtin::Fabs: return std::fabs(a[0]);
    case Builtin::Exp: return std::exp(a[0]);
    case Builtin::Exp2: return std::exp2(a[0]);
    case Builtin::Log: return std::log(a[0]);
    case Builtin::Log2: return std::log2(a[0]);
    case Builtin::Log10: return std::log10(a[0]);
    case Builtin::Sin: return std::sin(a[0]);
    case Builtin::Cos: return std::cos(a[0]);
    case Builtin::Tan: return std::tan(a[0]);
    case Builtin::Asin: return std::asin(a[0]);
    case Builtin::Acos: return std::acos(a[0]);
    case Builtin::Atan: return std::atan(a[0]);
    case Builtin::Floor: return std::floor(a[0]);
    case Builtin::Ceil: return std::ceil(a[0]);
    case Builtin::Trunc: return std::trunc(a[0]);
    case Builtin::Round: return std::round(a[0]);
    case Builtin::Pow: return std::pow(a[0], a[1]);
    case Builtin::Atan2: return std::atan2(a[0], a[1]);
    case Builtin::Fmod: return std::fmod(a[0], a[1]);
    case Builtin::Fmin: return std::fmin(a[0], a[1]);
    case Builtin::Fmax: return std::fmax(a[0], a[1]);
    case Builtin::Hypot: return std::hypot(a[0], a[1]);
    case Builtin::Fma: return std::fma(a[0], a[1], a[2]);
    case Builtin::Mad: return a[0] * a[1] + a[2];
    case Builtin::Min: return std::fmin(a[0], a[1]);
    case Builtin::Max: return std::fmax(a[0], a[1]);
    case Builtin::Clamp: return std::fmin(std::fmax(a[0], a[1]), a[2]);
    default:
      throw InternalError("apply_math_builtin_d: bad id");
  }
}

float apply_math_builtin_f(Builtin id, const float* a) {
  switch (id) {
    case Builtin::Sqrt: return std::sqrt(a[0]);
    case Builtin::Rsqrt: return 1.0f / std::sqrt(a[0]);
    case Builtin::Fabs: return std::fabs(a[0]);
    case Builtin::Exp: return std::exp(a[0]);
    case Builtin::Exp2: return std::exp2(a[0]);
    case Builtin::Log: return std::log(a[0]);
    case Builtin::Log2: return std::log2(a[0]);
    case Builtin::Log10: return std::log10(a[0]);
    case Builtin::Sin: return std::sin(a[0]);
    case Builtin::Cos: return std::cos(a[0]);
    case Builtin::Tan: return std::tan(a[0]);
    case Builtin::Asin: return std::asin(a[0]);
    case Builtin::Acos: return std::acos(a[0]);
    case Builtin::Atan: return std::atan(a[0]);
    case Builtin::Floor: return std::floor(a[0]);
    case Builtin::Ceil: return std::ceil(a[0]);
    case Builtin::Trunc: return std::trunc(a[0]);
    case Builtin::Round: return std::round(a[0]);
    case Builtin::Pow: return std::pow(a[0], a[1]);
    case Builtin::Atan2: return std::atan2(a[0], a[1]);
    case Builtin::Fmod: return std::fmod(a[0], a[1]);
    case Builtin::Fmin: return std::fmin(a[0], a[1]);
    case Builtin::Fmax: return std::fmax(a[0], a[1]);
    case Builtin::Hypot: return std::hypot(a[0], a[1]);
    case Builtin::Fma: return std::fma(a[0], a[1], a[2]);
    case Builtin::Mad: return a[0] * a[1] + a[2];
    case Builtin::Min: return std::fmin(a[0], a[1]);
    case Builtin::Max: return std::fmax(a[0], a[1]);
    case Builtin::Clamp: return std::fmin(std::fmax(a[0], a[1]), a[2]);
    default:
      throw InternalError("apply_math_builtin_f: bad id");
  }
}

// is_transcendental lives in builtins.cpp (shared with the lowering pass).

}  // namespace

void WorkItemVM::reset(const Module& module, const CompiledFunction& kernel,
                       std::span<const Value> args) {
  if (args.size() != kernel.params.size()) {
    throw InternalError("WorkItemVM::reset: argument count mismatch");
  }
  module_ = &module;
  stack_.clear();
  stack_.reserve(64);
  frames_.clear();
  frames_.push_back(Frame{&kernel, 0, 0, 0});
  slots_.assign(static_cast<std::size_t>(kernel.num_slots), Value{});
  for (std::size_t i = 0; i < args.size(); ++i) slots_[i] = args[i];
  private_arena_.assign(kernel.private_bytes, std::byte{0});
  barrier_flags_ = 0;
}

RunStatus WorkItemVM::run(const MemoryEnv& mem, const LaunchInfo& launch,
                          const WorkItemInfo& item, ExecStats& stats,
                          MemTracker* tracker) {
  std::uint64_t fuel = fuel_;

  // Local aliases for the hot loop.
  auto trap = [](const char* what) -> void { throw TrapError(what); };

  auto push = [&](Value v) { stack_.push_back(v); };
  auto pop = [&]() -> Value {
    Value v = stack_.back();
    stack_.pop_back();
    return v;
  };
  auto top = [&]() -> Value& { return stack_.back(); };

  // Resolves a pointer to host memory, bounds-checked.
  auto resolve = [&](std::uint64_t ptr, std::size_t size) -> std::byte* {
    const std::uint64_t offset = pointer_offset(ptr);
    switch (pointer_space(ptr)) {
      case PtrSpace::Global:
      case PtrSpace::Constant: {
        const std::uint64_t buffer = pointer_buffer(ptr);
        if (buffer >= mem.buffers.size()) trap("bad buffer index");
        auto span = mem.buffers[buffer];
        if (offset + size > span.size()) trap("global access out of bounds");
        return span.data() + offset;
      }
      case PtrSpace::Local:
        if (offset + size > mem.local.size()) {
          trap("local access out of bounds");
        }
        return mem.local.data() + offset;
      case PtrSpace::Private:
        if (offset + size > private_arena_.size()) {
          trap("private access out of bounds");
        }
        return private_arena_.data() + offset;
    }
    trap("bad pointer space");
    return nullptr;
  };

  // Accounts a memory access in the stats and coalescing tracker.
  auto note_access = [&](std::uint64_t ptr, std::uint32_t size, bool store,
                         std::uint32_t pc_key) {
    switch (pointer_space(ptr)) {
      case PtrSpace::Global:
      case PtrSpace::Constant:
        if (store) {
          stats.global_store_bytes += size;
        } else {
          stats.global_load_bytes += size;
        }
        ++stats.global_accesses;
        if (tracker) {
          tracker->global_access(pc_key, item.linear_in_group,
                                 pointer_buffer(ptr), pointer_offset(ptr),
                                 size, store);
        }
        break;
      case PtrSpace::Local:
        stats.local_bytes += size;
        ++stats.local_accesses;
        break;
      case PtrSpace::Private:
        stats.private_bytes += size;
        break;
    }
  };

  while (!frames_.empty()) {
    Frame& frame = frames_.back();
    const CompiledFunction& fn = *frame.fn;
    if (frame.pc >= fn.code.size()) {
      // Fell off the end of a void function.
      frames_.pop_back();
      continue;
    }
    const Instr instr = fn.code[frame.pc];
    const std::uint32_t pc_key =
        (static_cast<std::uint32_t>(frame.fn - module_->functions.data())
         << 20) |
        static_cast<std::uint32_t>(frame.pc);
    ++frame.pc;

    if (fuel-- == 0) trap("instruction budget exhausted (infinite loop?)");

    switch (kOpClass.cls[static_cast<int>(instr.op)]) {
      case OpClass::IntAlu: ++stats.int_ops; break;
      case OpClass::FloatAlu: ++stats.float_ops; break;
      case OpClass::DoubleAlu: ++stats.double_ops; break;
      default: ++stats.control_ops; break;  // memory adjusted in note_access
    }

    switch (instr.op) {
      case Op::Nop:
        break;
      case Op::PushI: {
        Value v;
        v.i64 = instr.imm;
        push(v);
        break;
      }
      case Op::PushF: {
        Value v;
        v.f32 = std::bit_cast<float>(static_cast<std::uint32_t>(instr.imm));
        push(v);
        break;
      }
      case Op::PushD: {
        Value v;
        v.f64 = std::bit_cast<double>(instr.imm);
        push(v);
        break;
      }
      case Op::Dup:
        push(stack_.back());
        break;
      case Op::Pop:
        stack_.pop_back();
        break;
      case Op::Swap:
        std::swap(stack_[stack_.size() - 1], stack_[stack_.size() - 2]);
        break;
      case Op::LoadSlot:
        push(slots_[frame.slot_base + static_cast<std::size_t>(instr.a)]);
        break;
      case Op::StoreSlot:
        slots_[frame.slot_base + static_cast<std::size_t>(instr.a)] = pop();
        break;
      case Op::PtrAdd: {
        const std::int64_t index = pop().i64;
        top().u64 = pointer_add(top().u64, index * instr.a);
        break;
      }
      case Op::LocalPtr: {
        Value v;
        v.u64 = make_pointer(PtrSpace::Local, 0,
                             static_cast<std::uint64_t>(instr.imm));
        push(v);
        break;
      }
      case Op::PrivatePtr: {
        Value v;
        v.u64 = make_pointer(
            PtrSpace::Private, 0,
            frame.priv_base + static_cast<std::uint64_t>(instr.imm));
        push(v);
        break;
      }

#define HPLREPRO_LOAD_CASE(OPNAME, CTYPE, FIELD, EXT)                       \
  case Op::OPNAME: {                                                        \
    const std::uint64_t ptr = pop().u64;                                    \
    note_access(ptr, sizeof(CTYPE), false, pc_key);                         \
    CTYPE raw;                                                              \
    std::memcpy(&raw, resolve(ptr, sizeof(CTYPE)), sizeof(CTYPE));          \
    Value v;                                                                \
    v.FIELD = EXT(raw);                                                     \
    push(v);                                                                \
    break;                                                                  \
  }
      HPLREPRO_LOAD_CASE(LoadI8, std::int8_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LOAD_CASE(LoadU8, std::uint8_t, u64, static_cast<std::uint64_t>)
      HPLREPRO_LOAD_CASE(LoadI16, std::int16_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LOAD_CASE(LoadU16, std::uint16_t, u64, static_cast<std::uint64_t>)
      HPLREPRO_LOAD_CASE(LoadI32, std::int32_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LOAD_CASE(LoadU32, std::uint32_t, u64, static_cast<std::uint64_t>)
      HPLREPRO_LOAD_CASE(LoadI64, std::int64_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LOAD_CASE(LoadF32, float, f32, )
      HPLREPRO_LOAD_CASE(LoadF64, double, f64, )
#undef HPLREPRO_LOAD_CASE

#define HPLREPRO_STORE_CASE(OPNAME, CTYPE, FIELD)                           \
  case Op::OPNAME: {                                                        \
    const Value v = pop();                                                  \
    const std::uint64_t ptr = pop().u64;                                    \
    note_access(ptr, sizeof(CTYPE), true, pc_key);                          \
    const CTYPE raw = static_cast<CTYPE>(v.FIELD);                          \
    std::memcpy(resolve(ptr, sizeof(CTYPE)), &raw, sizeof(CTYPE));          \
    break;                                                                  \
  }
      HPLREPRO_STORE_CASE(StoreI8, std::int8_t, i64)
      HPLREPRO_STORE_CASE(StoreI16, std::int16_t, i64)
      HPLREPRO_STORE_CASE(StoreI32, std::int32_t, i64)
      HPLREPRO_STORE_CASE(StoreI64, std::int64_t, i64)
      HPLREPRO_STORE_CASE(StoreF32, float, f32)
      HPLREPRO_STORE_CASE(StoreF64, double, f64)
#undef HPLREPRO_STORE_CASE

#define HPLREPRO_BIN_CASE(OPNAME, FIELD, EXPR)                              \
  case Op::OPNAME: {                                                        \
    const Value b = pop();                                                  \
    Value& a = top();                                                       \
    a.FIELD = (EXPR);                                                       \
    break;                                                                  \
  }
      HPLREPRO_BIN_CASE(AddI, i64, a.i64 + b.i64)
      HPLREPRO_BIN_CASE(SubI, i64, a.i64 - b.i64)
      HPLREPRO_BIN_CASE(MulI, i64, a.i64 * b.i64)
      HPLREPRO_BIN_CASE(DivI, i64, b.i64 == 0 ? 0 : (a.i64 == INT64_MIN && b.i64 == -1 ? a.i64 : a.i64 / b.i64))
      HPLREPRO_BIN_CASE(DivU, u64, b.u64 == 0 ? 0 : a.u64 / b.u64)
      HPLREPRO_BIN_CASE(RemI, i64, b.i64 == 0 ? 0 : (a.i64 == INT64_MIN && b.i64 == -1 ? 0 : a.i64 % b.i64))
      HPLREPRO_BIN_CASE(RemU, u64, b.u64 == 0 ? 0 : a.u64 % b.u64)
      HPLREPRO_BIN_CASE(AndI, u64, a.u64 & b.u64)
      HPLREPRO_BIN_CASE(OrI, u64, a.u64 | b.u64)
      HPLREPRO_BIN_CASE(XorI, u64, a.u64 ^ b.u64)
      HPLREPRO_BIN_CASE(ShlI, u64, a.u64 << (b.u64 & 63))
      HPLREPRO_BIN_CASE(ShrI, i64, a.i64 >> (b.u64 & 63))
      HPLREPRO_BIN_CASE(ShrU, u64, a.u64 >> (b.u64 & 63))
      HPLREPRO_BIN_CASE(AddF, f32, a.f32 + b.f32)
      HPLREPRO_BIN_CASE(SubF, f32, a.f32 - b.f32)
      HPLREPRO_BIN_CASE(MulF, f32, a.f32 * b.f32)
      HPLREPRO_BIN_CASE(DivF, f32, a.f32 / b.f32)
      HPLREPRO_BIN_CASE(AddD, f64, a.f64 + b.f64)
      HPLREPRO_BIN_CASE(SubD, f64, a.f64 - b.f64)
      HPLREPRO_BIN_CASE(MulD, f64, a.f64 * b.f64)
      HPLREPRO_BIN_CASE(DivD, f64, a.f64 / b.f64)
      HPLREPRO_BIN_CASE(EqI, i64, a.i64 == b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(NeI, i64, a.i64 != b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LtI, i64, a.i64 < b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LeI, i64, a.i64 <= b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GtI, i64, a.i64 > b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GeI, i64, a.i64 >= b.i64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LtU, i64, a.u64 < b.u64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LeU, i64, a.u64 <= b.u64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GtU, i64, a.u64 > b.u64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GeU, i64, a.u64 >= b.u64 ? 1 : 0)
      HPLREPRO_BIN_CASE(EqF, i64, a.f32 == b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(NeF, i64, a.f32 != b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(LtF, i64, a.f32 < b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(LeF, i64, a.f32 <= b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(GtF, i64, a.f32 > b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(GeF, i64, a.f32 >= b.f32 ? 1 : 0)
      HPLREPRO_BIN_CASE(EqD, i64, a.f64 == b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(NeD, i64, a.f64 != b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LtD, i64, a.f64 < b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(LeD, i64, a.f64 <= b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GtD, i64, a.f64 > b.f64 ? 1 : 0)
      HPLREPRO_BIN_CASE(GeD, i64, a.f64 >= b.f64 ? 1 : 0)
#undef HPLREPRO_BIN_CASE

      case Op::NegI: top().i64 = -top().i64; break;
      case Op::NotI: top().u64 = ~top().u64; break;
      case Op::NegF: top().f32 = -top().f32; break;
      case Op::NegD: top().f64 = -top().f64; break;
      case Op::LNot: top().i64 = top().i64 == 0 ? 1 : 0; break;
      case Op::Bool: top().i64 = top().i64 != 0 ? 1 : 0; break;

      case Op::Sext8: top().i64 = static_cast<std::int8_t>(top().i64); break;
      case Op::Sext16: top().i64 = static_cast<std::int16_t>(top().i64); break;
      case Op::Sext32: top().i64 = static_cast<std::int32_t>(top().i64); break;
      case Op::Zext8: top().u64 &= 0xFFull; break;
      case Op::Zext16: top().u64 &= 0xFFFFull; break;
      case Op::Zext32: top().u64 &= 0xFFFFFFFFull; break;
      case Op::Zext1: top().u64 &= 1ull; break;

      case Op::I2F: top().f32 = static_cast<float>(top().i64); break;
      case Op::I2D: top().f64 = static_cast<double>(top().i64); break;
      case Op::U2F: top().f32 = static_cast<float>(top().u64); break;
      case Op::U2D: top().f64 = static_cast<double>(top().u64); break;
      case Op::F2I: top().i64 = checked_trunc_i64(top().f32); break;
      case Op::D2I: top().i64 = checked_trunc_i64(top().f64); break;
      case Op::F2U: top().u64 = checked_trunc_u64(top().f32); break;
      case Op::D2U: top().u64 = checked_trunc_u64(top().f64); break;
      case Op::F2D: top().f64 = static_cast<double>(top().f32); break;
      case Op::D2F: top().f32 = static_cast<float>(top().f64); break;

      case Op::Jmp:
        frame.pc = static_cast<std::size_t>(instr.a);
        break;
      case Op::JmpIfZero:
        if (pop().i64 == 0) frame.pc = static_cast<std::size_t>(instr.a);
        break;
      case Op::JmpIfNonZero:
        if (pop().i64 != 0) frame.pc = static_cast<std::size_t>(instr.a);
        break;

      case Op::Call: {
        const CompiledFunction& callee =
            module_->functions[static_cast<std::size_t>(instr.a)];
        const std::size_t nargs = callee.params.size();
        if (frames_.size() >= 64) trap("call stack overflow");
        Frame next;
        next.fn = &callee;
        next.pc = 0;
        next.slot_base = slots_.size();
        next.priv_base = frame.priv_base + fn.private_bytes;
        slots_.resize(next.slot_base +
                      static_cast<std::size_t>(callee.num_slots));
        if (private_arena_.size() < next.priv_base + callee.private_bytes) {
          private_arena_.resize(next.priv_base + callee.private_bytes);
        }
        for (std::size_t i = 0; i < nargs; ++i) {
          slots_[next.slot_base + nargs - 1 - i] = pop();
        }
        frames_.push_back(next);
        break;
      }
      case Op::Ret: {
        // Return value stays on the operand stack for the caller.
        slots_.resize(frame.slot_base);
        frames_.pop_back();
        break;
      }
      case Op::RetVoid:
        slots_.resize(frame.slot_base);
        frames_.pop_back();
        break;

      case Op::BarrierOp: {
        barrier_flags_ = pop().u64;
        ++stats.barriers_executed;
        return RunStatus::Barrier;
      }

      case Op::WorkItemFn: {
        const auto id = static_cast<Builtin>(instr.a);
        const std::uint64_t dim = pop().u64;
        const std::size_t d = dim < 3 ? static_cast<std::size_t>(dim) : 0;
        Value v;
        switch (id) {
          case Builtin::GetWorkDim:
            v.u64 = static_cast<std::uint64_t>(launch.work_dim);
            break;
          case Builtin::GetGlobalId: v.u64 = item.global_id[d]; break;
          case Builtin::GetLocalId: v.u64 = item.local_id[d]; break;
          case Builtin::GetGroupId: v.u64 = item.group_id[d]; break;
          case Builtin::GetGlobalSize: v.u64 = launch.global_size[d]; break;
          case Builtin::GetLocalSize: v.u64 = launch.local_size[d]; break;
          case Builtin::GetNumGroups: v.u64 = launch.num_groups[d]; break;
          default:
            trap("bad work-item function");
            v.u64 = 0;
        }
        push(v);
        break;
      }

      case Op::BuiltinOp: {
        const auto id = static_cast<Builtin>(instr.a);
        const BuiltinInfo& info = builtin_info(id);
        const int arity = info.arity;
        if (is_transcendental(id)) {
          ++stats.special_ops;
        } else if (instr.imm == 1) {
          ++stats.float_ops;
        } else if (instr.imm == 2) {
          ++stats.double_ops;
        } else {
          ++stats.int_ops;
        }
        switch (instr.imm) {
          case 1: {  // f32
            float a[3] = {0, 0, 0};
            for (int i = arity - 1; i >= 0; --i) a[i] = pop().f32;
            Value v;
            v.f32 = apply_math_builtin_f(id, a);
            push(v);
            break;
          }
          case 2: {  // f64
            double a[3] = {0, 0, 0};
            for (int i = arity - 1; i >= 0; --i) a[i] = pop().f64;
            Value v;
            v.f64 = apply_math_builtin_d(id, a);
            push(v);
            break;
          }
          case 0: {  // signed integer
            std::int64_t a[3] = {0, 0, 0};
            for (int i = arity - 1; i >= 0; --i) a[i] = pop().i64;
            Value v;
            switch (id) {
              case Builtin::Min: v.i64 = a[0] < a[1] ? a[0] : a[1]; break;
              case Builtin::Max: v.i64 = a[0] > a[1] ? a[0] : a[1]; break;
              case Builtin::Abs: v.i64 = a[0] < 0 ? -a[0] : a[0]; break;
              case Builtin::Clamp:
                v.i64 = a[0] < a[1] ? a[1] : (a[0] > a[2] ? a[2] : a[0]);
                break;
              default:
                trap("bad integer builtin");
                v.i64 = 0;
            }
            push(v);
            break;
          }
          default: {  // unsigned integer
            std::uint64_t a[3] = {0, 0, 0};
            for (int i = arity - 1; i >= 0; --i) a[i] = pop().u64;
            Value v;
            switch (id) {
              case Builtin::Min: v.u64 = a[0] < a[1] ? a[0] : a[1]; break;
              case Builtin::Max: v.u64 = a[0] > a[1] ? a[0] : a[1]; break;
              case Builtin::Abs: v.u64 = a[0]; break;
              case Builtin::Clamp:
                v.u64 = a[0] < a[1] ? a[1] : (a[0] > a[2] ? a[2] : a[0]);
                break;
              default:
                trap("bad unsigned builtin");
                v.u64 = 0;
            }
            push(v);
            break;
          }
        }
        break;
      }

#define HPLREPRO_LIDX_CASE(OPNAME, CTYPE, FIELD, EXT)                       \
  case Op::OPNAME: {                                                        \
    const std::int64_t index = pop().i64;                                   \
    const std::uint64_t ptr = pointer_add(pop().u64, index * instr.a);      \
    note_access(ptr, sizeof(CTYPE), false, pc_key);                         \
    CTYPE raw;                                                              \
    std::memcpy(&raw, resolve(ptr, sizeof(CTYPE)), sizeof(CTYPE));          \
    Value v;                                                                \
    v.FIELD = EXT(raw);                                                     \
    push(v);                                                                \
    ++stats.fused_ops;                                                      \
    break;                                                                  \
  }
      HPLREPRO_LIDX_CASE(LIdxI8, std::int8_t, i64, static_cast<std::int64_t>)
      HPLREPRO_LIDX_CASE(LIdxU8, std::uint8_t, u64,
                         static_cast<std::uint64_t>)
      HPLREPRO_LIDX_CASE(LIdxI16, std::int16_t, i64,
                         static_cast<std::int64_t>)
      HPLREPRO_LIDX_CASE(LIdxU16, std::uint16_t, u64,
                         static_cast<std::uint64_t>)
      HPLREPRO_LIDX_CASE(LIdxI32, std::int32_t, i64,
                         static_cast<std::int64_t>)
      HPLREPRO_LIDX_CASE(LIdxU32, std::uint32_t, u64,
                         static_cast<std::uint64_t>)
      HPLREPRO_LIDX_CASE(LIdxI64, std::int64_t, i64,
                         static_cast<std::int64_t>)
      HPLREPRO_LIDX_CASE(LIdxF32, float, f32, )
      HPLREPRO_LIDX_CASE(LIdxF64, double, f64, )
#undef HPLREPRO_LIDX_CASE

#define HPLREPRO_SIDX_CASE(OPNAME, CTYPE, FIELD)                            \
  case Op::OPNAME: {                                                        \
    const Value v = pop();                                                  \
    const std::int64_t index = pop().i64;                                   \
    const std::uint64_t ptr = pointer_add(pop().u64, index * instr.a);      \
    note_access(ptr, sizeof(CTYPE), true, pc_key);                          \
    const CTYPE raw = static_cast<CTYPE>(v.FIELD);                          \
    std::memcpy(resolve(ptr, sizeof(CTYPE)), &raw, sizeof(CTYPE));          \
    ++stats.fused_ops;                                                      \
    break;                                                                  \
  }
      HPLREPRO_SIDX_CASE(SIdxI8, std::int8_t, i64)
      HPLREPRO_SIDX_CASE(SIdxI16, std::int16_t, i64)
      HPLREPRO_SIDX_CASE(SIdxI32, std::int32_t, i64)
      HPLREPRO_SIDX_CASE(SIdxI64, std::int64_t, i64)
      HPLREPRO_SIDX_CASE(SIdxF32, float, f32)
      HPLREPRO_SIDX_CASE(SIdxF64, double, f64)
#undef HPLREPRO_SIDX_CASE

      // Fused multiply-add: product then sum, two roundings, exactly the
      // unfused pair (see bytecode.hpp for the operand-order encoding).
      case Op::MadI: {
        if (instr.a == 0) {
          const Value z = pop();
          const Value y = pop();
          Value& x = top();
          x.i64 = x.i64 * y.i64 + z.i64;
        } else {
          const Value y = pop();
          const Value x = pop();
          Value& z = top();
          z.i64 = z.i64 + x.i64 * y.i64;
        }
        ++stats.fused_ops;
        break;
      }
      case Op::MadF: {
        // Product and sum as separate statements: must round twice, like
        // the unfused MulF; AddF pair (no FMA contraction).
        if (instr.a == 0) {
          const Value z = pop();
          const Value y = pop();
          Value& x = top();
          const float t = x.f32 * y.f32;
          x.f32 = t + z.f32;
        } else {
          const Value y = pop();
          const Value x = pop();
          Value& z = top();
          const float t = x.f32 * y.f32;
          z.f32 = z.f32 + t;
        }
        ++stats.fused_ops;
        break;
      }
      case Op::MadD: {
        if (instr.a == 0) {
          const Value z = pop();
          const Value y = pop();
          Value& x = top();
          const double t = x.f64 * y.f64;
          x.f64 = t + z.f64;
        } else {
          const Value y = pop();
          const Value x = pop();
          Value& z = top();
          const double t = x.f64 * y.f64;
          z.f64 = z.f64 + t;
        }
        ++stats.fused_ops;
        break;
      }
    }
  }

  return RunStatus::Done;
}

// --- Register interpreter ---------------------------------------------------

// Direct-threaded dispatch (labels as values) under GCC/Clang; define
// HPLREPRO_VM_FORCE_SWITCH for the portable switch loop. The semantic
// oracle is the stack interpreter above, selected per build with
// -cl-interp=stack.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(HPLREPRO_VM_FORCE_SWITCH)
#define HPLREPRO_VM_COMPUTED_GOTO 1
#else
#define HPLREPRO_VM_COMPUTED_GOTO 0
#endif

void RegItemVM::reset(const Module& module, const CompiledFunction& kernel,
                      std::span<const Value> args) {
  if (!module.has_reg_form()) {
    throw InternalError("RegItemVM::reset: module has no register form");
  }
  if (args.size() != kernel.params.size()) {
    throw InternalError("RegItemVM::reset: argument count mismatch");
  }
  module_ = &module;
  const auto index =
      static_cast<std::size_t>(&kernel - module.functions.data());
  const RegFunction& fn = module.reg_functions[index];
  frames_.clear();
  frames_.push_back(RegFrame{&fn, 0, kRegNoRet, 0, 0});
  regs_.assign(fn.num_regs, Value{});
  for (std::size_t i = 0; i < args.size(); ++i) regs_[i] = args[i];
  private_arena_.assign(fn.private_bytes, std::byte{0});
  barrier_flags_ = 0;
  pending_block_ = 0;
}

// One dispatch loop, two execution shapes. RegRunner::run is the body of
// both register interpreters (see the comment on the definition below).
struct RegRunner {
  template <class VM>
  static RunStatus run(VM& vm, const MemoryEnv& mem, const LaunchInfo& launch,
                       const WorkItemInfo* items, ExecStats& stats,
                       MemTracker* tracker);
};

// RegRunner::run is the body of both register interpreters:
//   - VM = RegItemVM: one work-item per activation; barriers suspend
//     (return RunStatus::Barrier) exactly as before.
//   - VM = WorkGroupVM: pocl-style work-item loops — every item of the
//     group executes on this one activation; a barrier saves the item's
//     cross-region live registers to its spill row and the loop advances
//     to the next item instead of suspending.
// All mode-specific code sits in `if constexpr (kWG)` branches, so each
// instantiation only touches the members its VM actually has.
template <class VM>
RunStatus RegRunner::run(VM& vm, const MemoryEnv& mem,
                         const LaunchInfo& launch, const WorkItemInfo* items,
                         ExecStats& stats, MemTracker* tracker) {
  constexpr bool kWG = std::is_same_v<VM, WorkGroupVM>;

  std::uint64_t fuel = vm.fuel_;
  RegFrame* fr = &vm.frames_.back();
  const RegFunction* fn = fr->fn;
  const RegInstr* code = fn->code.data();
  Value* R = vm.regs_.data() + fr->base;
  std::uint32_t pc = 0;
  const RegInstr* in = nullptr;

  // Which work-item is executing: fixed in item mode, the loop cursor in
  // wg mode (wg_advance below rebinds item/priv/R when switching items).
  const WorkItemInfo* item = items;
  std::vector<std::byte>* priv = nullptr;
  [[maybe_unused]] std::size_t cur = static_cast<std::size_t>(-1);
  if constexpr (!kWG) priv = &vm.private_arena_;

  auto trap = [](const char* what) -> void { throw TrapError(what); };

  // Identical to the stack interpreter's resolve/note_access, so both
  // paths produce the same traps and the same memory accounting.
  auto resolve = [&](std::uint64_t ptr, std::size_t size) -> std::byte* {
    const std::uint64_t offset = pointer_offset(ptr);
    switch (pointer_space(ptr)) {
      case PtrSpace::Global:
      case PtrSpace::Constant: {
        const std::uint64_t buffer = pointer_buffer(ptr);
        if (buffer >= mem.buffers.size()) trap("bad buffer index");
        auto span = mem.buffers[buffer];
        if (offset + size > span.size()) trap("global access out of bounds");
        return span.data() + offset;
      }
      case PtrSpace::Local:
        if (offset + size > mem.local.size()) {
          trap("local access out of bounds");
        }
        return mem.local.data() + offset;
      case PtrSpace::Private:
        if (offset + size > priv->size()) {
          trap("private access out of bounds");
        }
        return priv->data() + offset;
    }
    trap("bad pointer space");
    return nullptr;
  };

  auto note_access = [&](std::uint64_t ptr, std::uint32_t size, bool store,
                         std::uint32_t pc_key) {
    switch (pointer_space(ptr)) {
      case PtrSpace::Global:
      case PtrSpace::Constant:
        if (store) {
          stats.global_store_bytes += size;
        } else {
          stats.global_load_bytes += size;
        }
        ++stats.global_accesses;
        if (tracker) {
          tracker->global_access(pc_key, item->linear_in_group,
                                 pointer_buffer(ptr), pointer_offset(ptr),
                                 size, store);
        }
        break;
      case PtrSpace::Local:
        stats.local_bytes += size;
        ++stats.local_accesses;
        break;
      case PtrSpace::Private:
        stats.private_bytes += size;
        break;
    }
  };

  // Block-level accounting: one histogram bump and one fuel burn per block
  // entry, precomputed at lowering time. Summed over a run this equals the
  // stack interpreter's per-instruction counting exactly.
  auto enter_block = [&](std::uint32_t b) {
    const RegBlock& blk = fn->blocks[b];
    stats.control_ops += blk.control_ops;
    stats.int_ops += blk.int_ops;
    stats.float_ops += blk.float_ops;
    stats.double_ops += blk.double_ops;
    stats.special_ops += blk.special_ops;
    stats.fused_ops += blk.fused_ops;
    if (fuel < blk.fuel) {
      trap("instruction budget exhausted (infinite loop?)");
    }
    fuel -= blk.fuel;
    pc = blk.start;
  };

  // wg mode only: advance the work-item loop to the next unfinished item
  // and enter its pending region — restore its spill row into the shared
  // register file, reset the per-item fuel budget (each item-region entry
  // gets the full budget, exactly like a per-item run() call), account the
  // region's entry block. Returns false when no unfinished item remains
  // past the cursor, i.e. the current phase is over. Only called at frame
  // depth 1 (eligible kernels have no barriers inside callees), so the
  // kernel frame's register window starts at vm.regs_[0].
  auto wg_advance = [&]() -> bool {
    if constexpr (kWG) {
      const std::size_t n = vm.group_items_;
      std::size_t i = cur + 1;  // first call: cur == size_t(-1) wraps to 0
      while (i < n && vm.done_[i]) ++i;
      if (i >= n) return false;
      cur = i;
      item = items + cur;
      priv = &vm.privs_[cur];
      // fr/fn/code/R still address the kernel frame: Call/Ret rebind them
      // on every push/pop and barriers only occur at frame depth 1.
      const auto blk = vm.pending_[cur];
      const auto span = vm.restore_by_block_[blk];
      const auto* pairs = vm.spill_pairs_.data() + span.begin;
      // A fresh item (pending block 0) restores from the argument image; a
      // resumed one from the spill columns its barrier save wrote.
      const Value* src = blk == 0
                             ? vm.spill_init_.data()
                             : vm.spills_.data() + cur * vm.spill_stride_;
      for (std::uint32_t k = 0; k < span.len; ++k) {
        R[pairs[k].first] = src[pairs[k].second];
      }
      fuel = vm.fuel_;
      ++vm.regions_executed_;
      enter_block(blk);
      return true;
    } else {
      return false;
    }
  };

  // Kernel entry accounts block 0; resumption after a barrier accounts the
  // barrier's resume block. In wg mode the first wg_advance picks the
  // phase's first unfinished item.
  if constexpr (kWG) {
    if (!wg_advance()) return RunStatus::Done;
  } else {
    enter_block(vm.pending_block_);
  }

#if HPLREPRO_VM_COMPUTED_GOTO
  static const void* const kLabels[] = {
#define HPLREPRO_VM_LABEL(name) &&L_##name,
      HPLREPRO_REG_OPS(HPLREPRO_VM_LABEL)
#undef HPLREPRO_VM_LABEL
  };
#define VM_CASE(name) L_##name:
#define VM_NEXT                                   \
  in = code + pc;                                 \
  ++pc;                                           \
  goto* kLabels[static_cast<int>(in->op)];
  VM_NEXT
#else
#define VM_CASE(name) case RegOp::name:
#define VM_NEXT break;
  for (;;) {
    in = code + pc;
    ++pc;
    switch (in->op) {
#endif

  VM_CASE(Const) { R[in->dst].i64 = in->imm; }
  VM_NEXT

  VM_CASE(Mov) { R[in->dst] = R[in->a]; }
  VM_NEXT

  VM_CASE(PrivPtr) {
    R[in->dst].u64 =
        make_pointer(PtrSpace::Private, 0,
                     fr->priv_base + static_cast<std::uint64_t>(in->imm));
  }
  VM_NEXT

  VM_CASE(PtrAdd) {
    R[in->dst].u64 = pointer_add(R[in->a].u64, R[in->b].i64 * in->imm);
  }
  VM_NEXT

#define HPLREPRO_RLOAD(NAME, CTYPE, FIELD, EXT)                             \
  VM_CASE(NAME) {                                                           \
    const std::uint64_t ptr = R[in->a].u64;                                 \
    note_access(ptr, sizeof(CTYPE), false,                                  \
                static_cast<std::uint32_t>(in->aux));                       \
    CTYPE raw;                                                              \
    std::memcpy(&raw, resolve(ptr, sizeof(CTYPE)), sizeof(CTYPE));          \
    R[in->dst].FIELD = EXT(raw);                                            \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RLOAD(LoadI8, std::int8_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLOAD(LoadU8, std::uint8_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLOAD(LoadI16, std::int16_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLOAD(LoadU16, std::uint16_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLOAD(LoadI32, std::int32_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLOAD(LoadU32, std::uint32_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLOAD(LoadI64, std::int64_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLOAD(LoadF32, float, f32, )
  HPLREPRO_RLOAD(LoadF64, double, f64, )
#undef HPLREPRO_RLOAD

#define HPLREPRO_RSTORE(NAME, CTYPE, FIELD)                                 \
  VM_CASE(NAME) {                                                           \
    const std::uint64_t ptr = R[in->a].u64;                                 \
    note_access(ptr, sizeof(CTYPE), true,                                   \
                static_cast<std::uint32_t>(in->aux));                       \
    const CTYPE raw = static_cast<CTYPE>(R[in->b].FIELD);                   \
    std::memcpy(resolve(ptr, sizeof(CTYPE)), &raw, sizeof(CTYPE));          \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RSTORE(StoreI8, std::int8_t, i64)
  HPLREPRO_RSTORE(StoreI16, std::int16_t, i64)
  HPLREPRO_RSTORE(StoreI32, std::int32_t, i64)
  HPLREPRO_RSTORE(StoreI64, std::int64_t, i64)
  HPLREPRO_RSTORE(StoreF32, float, f32)
  HPLREPRO_RSTORE(StoreF64, double, f64)
#undef HPLREPRO_RSTORE

#define HPLREPRO_RLIDX(NAME, CTYPE, FIELD, EXT)                             \
  VM_CASE(NAME) {                                                           \
    const std::uint64_t ptr =                                               \
        pointer_add(R[in->a].u64, R[in->b].i64 * in->imm);                  \
    note_access(ptr, sizeof(CTYPE), false,                                  \
                static_cast<std::uint32_t>(in->aux));                       \
    CTYPE raw;                                                              \
    std::memcpy(&raw, resolve(ptr, sizeof(CTYPE)), sizeof(CTYPE));          \
    R[in->dst].FIELD = EXT(raw);                                            \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RLIDX(LIdxI8, std::int8_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLIDX(LIdxU8, std::uint8_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLIDX(LIdxI16, std::int16_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLIDX(LIdxU16, std::uint16_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLIDX(LIdxI32, std::int32_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLIDX(LIdxU32, std::uint32_t, u64, static_cast<std::uint64_t>)
  HPLREPRO_RLIDX(LIdxI64, std::int64_t, i64, static_cast<std::int64_t>)
  HPLREPRO_RLIDX(LIdxF32, float, f32, )
  HPLREPRO_RLIDX(LIdxF64, double, f64, )
#undef HPLREPRO_RLIDX

#define HPLREPRO_RSIDX(NAME, CTYPE, FIELD)                                  \
  VM_CASE(NAME) {                                                           \
    const std::uint64_t ptr =                                               \
        pointer_add(R[in->a].u64, R[in->b].i64 * in->imm);                  \
    note_access(ptr, sizeof(CTYPE), true,                                   \
                static_cast<std::uint32_t>(in->aux));                       \
    const CTYPE raw = static_cast<CTYPE>(R[in->c].FIELD);                   \
    std::memcpy(resolve(ptr, sizeof(CTYPE)), &raw, sizeof(CTYPE));          \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RSIDX(SIdxI8, std::int8_t, i64)
  HPLREPRO_RSIDX(SIdxI16, std::int16_t, i64)
  HPLREPRO_RSIDX(SIdxI32, std::int32_t, i64)
  HPLREPRO_RSIDX(SIdxI64, std::int64_t, i64)
  HPLREPRO_RSIDX(SIdxF32, float, f32)
  HPLREPRO_RSIDX(SIdxF64, double, f64)
#undef HPLREPRO_RSIDX

#define HPLREPRO_RBIN(NAME, FIELD, EXPR)                                    \
  VM_CASE(NAME) {                                                           \
    const Value a = R[in->a];                                               \
    const Value b = R[in->b];                                               \
    R[in->dst].FIELD = (EXPR);                                              \
  }                                                                         \
  VM_NEXT
  HPLREPRO_RBIN(AddI, i64, a.i64 + b.i64)
  HPLREPRO_RBIN(SubI, i64, a.i64 - b.i64)
  HPLREPRO_RBIN(MulI, i64, a.i64 * b.i64)
  HPLREPRO_RBIN(DivI, i64, b.i64 == 0 ? 0 : (a.i64 == INT64_MIN && b.i64 == -1 ? a.i64 : a.i64 / b.i64))
  HPLREPRO_RBIN(DivU, u64, b.u64 == 0 ? 0 : a.u64 / b.u64)
  HPLREPRO_RBIN(RemI, i64, b.i64 == 0 ? 0 : (a.i64 == INT64_MIN && b.i64 == -1 ? 0 : a.i64 % b.i64))
  HPLREPRO_RBIN(RemU, u64, b.u64 == 0 ? 0 : a.u64 % b.u64)
  HPLREPRO_RBIN(AndI, u64, a.u64 & b.u64)
  HPLREPRO_RBIN(OrI, u64, a.u64 | b.u64)
  HPLREPRO_RBIN(XorI, u64, a.u64 ^ b.u64)
  HPLREPRO_RBIN(ShlI, u64, a.u64 << (b.u64 & 63))
  HPLREPRO_RBIN(ShrI, i64, a.i64 >> (b.u64 & 63))
  HPLREPRO_RBIN(ShrU, u64, a.u64 >> (b.u64 & 63))
  HPLREPRO_RBIN(AddF, f32, a.f32 + b.f32)
  HPLREPRO_RBIN(SubF, f32, a.f32 - b.f32)
  HPLREPRO_RBIN(MulF, f32, a.f32 * b.f32)
  HPLREPRO_RBIN(DivF, f32, a.f32 / b.f32)
  HPLREPRO_RBIN(AddD, f64, a.f64 + b.f64)
  HPLREPRO_RBIN(SubD, f64, a.f64 - b.f64)
  HPLREPRO_RBIN(MulD, f64, a.f64 * b.f64)
  HPLREPRO_RBIN(DivD, f64, a.f64 / b.f64)
  HPLREPRO_RBIN(EqI, i64, a.i64 == b.i64 ? 1 : 0)
  HPLREPRO_RBIN(NeI, i64, a.i64 != b.i64 ? 1 : 0)
  HPLREPRO_RBIN(LtI, i64, a.i64 < b.i64 ? 1 : 0)
  HPLREPRO_RBIN(LeI, i64, a.i64 <= b.i64 ? 1 : 0)
  HPLREPRO_RBIN(GtI, i64, a.i64 > b.i64 ? 1 : 0)
  HPLREPRO_RBIN(GeI, i64, a.i64 >= b.i64 ? 1 : 0)
  HPLREPRO_RBIN(LtU, i64, a.u64 < b.u64 ? 1 : 0)
  HPLREPRO_RBIN(LeU, i64, a.u64 <= b.u64 ? 1 : 0)
  HPLREPRO_RBIN(GtU, i64, a.u64 > b.u64 ? 1 : 0)
  HPLREPRO_RBIN(GeU, i64, a.u64 >= b.u64 ? 1 : 0)
  HPLREPRO_RBIN(EqF, i64, a.f32 == b.f32 ? 1 : 0)
  HPLREPRO_RBIN(NeF, i64, a.f32 != b.f32 ? 1 : 0)
  HPLREPRO_RBIN(LtF, i64, a.f32 < b.f32 ? 1 : 0)
  HPLREPRO_RBIN(LeF, i64, a.f32 <= b.f32 ? 1 : 0)
  HPLREPRO_RBIN(GtF, i64, a.f32 > b.f32 ? 1 : 0)
  HPLREPRO_RBIN(GeF, i64, a.f32 >= b.f32 ? 1 : 0)
  HPLREPRO_RBIN(EqD, i64, a.f64 == b.f64 ? 1 : 0)
  HPLREPRO_RBIN(NeD, i64, a.f64 != b.f64 ? 1 : 0)
  HPLREPRO_RBIN(LtD, i64, a.f64 < b.f64 ? 1 : 0)
  HPLREPRO_RBIN(LeD, i64, a.f64 <= b.f64 ? 1 : 0)
  HPLREPRO_RBIN(GtD, i64, a.f64 > b.f64 ? 1 : 0)
  HPLREPRO_RBIN(GeD, i64, a.f64 >= b.f64 ? 1 : 0)
#undef HPLREPRO_RBIN

#define HPLREPRO_RUN1(NAME, STMT)                                           \
  VM_CASE(NAME) { STMT; }                                                   \
  VM_NEXT
  HPLREPRO_RUN1(NegI, R[in->dst].i64 = -R[in->a].i64)
  HPLREPRO_RUN1(NotI, R[in->dst].u64 = ~R[in->a].u64)
  HPLREPRO_RUN1(NegF, R[in->dst].f32 = -R[in->a].f32)
  HPLREPRO_RUN1(NegD, R[in->dst].f64 = -R[in->a].f64)
  HPLREPRO_RUN1(LNot, R[in->dst].i64 = R[in->a].i64 == 0 ? 1 : 0)
  HPLREPRO_RUN1(Bool, R[in->dst].i64 = R[in->a].i64 != 0 ? 1 : 0)
  HPLREPRO_RUN1(Sext8,
                R[in->dst].i64 = static_cast<std::int8_t>(R[in->a].i64))
  HPLREPRO_RUN1(Sext16,
                R[in->dst].i64 = static_cast<std::int16_t>(R[in->a].i64))
  HPLREPRO_RUN1(Sext32,
                R[in->dst].i64 = static_cast<std::int32_t>(R[in->a].i64))
  HPLREPRO_RUN1(Zext8, R[in->dst].u64 = R[in->a].u64 & 0xFFull)
  HPLREPRO_RUN1(Zext16, R[in->dst].u64 = R[in->a].u64 & 0xFFFFull)
  HPLREPRO_RUN1(Zext32, R[in->dst].u64 = R[in->a].u64 & 0xFFFFFFFFull)
  HPLREPRO_RUN1(Zext1, R[in->dst].u64 = R[in->a].u64 & 1ull)
  HPLREPRO_RUN1(I2F, R[in->dst].f32 = static_cast<float>(R[in->a].i64))
  HPLREPRO_RUN1(I2D, R[in->dst].f64 = static_cast<double>(R[in->a].i64))
  HPLREPRO_RUN1(U2F, R[in->dst].f32 = static_cast<float>(R[in->a].u64))
  HPLREPRO_RUN1(U2D, R[in->dst].f64 = static_cast<double>(R[in->a].u64))
  HPLREPRO_RUN1(F2I, R[in->dst].i64 = checked_trunc_i64(R[in->a].f32))
  HPLREPRO_RUN1(D2I, R[in->dst].i64 = checked_trunc_i64(R[in->a].f64))
  HPLREPRO_RUN1(F2U, R[in->dst].u64 = checked_trunc_u64(R[in->a].f32))
  HPLREPRO_RUN1(D2U, R[in->dst].u64 = checked_trunc_u64(R[in->a].f64))
  HPLREPRO_RUN1(F2D, R[in->dst].f64 = static_cast<double>(R[in->a].f32))
  HPLREPRO_RUN1(D2F, R[in->dst].f32 = static_cast<float>(R[in->a].f64))
#undef HPLREPRO_RUN1

  VM_CASE(MadI) {
    // Integer add commutes, so the operand-order bit is irrelevant here.
    R[in->dst].i64 = R[in->a].i64 * R[in->b].i64 + R[in->c].i64;
  }
  VM_NEXT

  VM_CASE(MadF) {
    // Two roundings, addend order per the encoding — bit-identical with
    // the stack interpreter's MadF.
    const float t = R[in->a].f32 * R[in->b].f32;
    const float z = R[in->c].f32;
    R[in->dst].f32 = in->aux == 0 ? t + z : z + t;
  }
  VM_NEXT

  VM_CASE(MadD) {
    const double t = R[in->a].f64 * R[in->b].f64;
    const double z = R[in->c].f64;
    R[in->dst].f64 = in->aux == 0 ? t + z : z + t;
  }
  VM_NEXT

  VM_CASE(Br) { enter_block(static_cast<std::uint32_t>(in->aux)); }
  VM_NEXT

  VM_CASE(BrIf) {
    enter_block(R[in->a].i64 != 0 ? in->dst
                                  : static_cast<std::uint32_t>(in->aux));
  }
  VM_NEXT

  VM_CASE(Call) {
    if (vm.frames_.size() >= 64) trap("call stack overflow");
    const RegFunction& callee =
        vm.module_->reg_functions[static_cast<std::size_t>(in->aux)];
    fr->pc = pc;
    RegFrame next;
    next.fn = &callee;
    next.ret_reg = in->b ? static_cast<std::uint32_t>(fr->base + in->dst)
                         : kRegNoRet;
    next.base = vm.regs_.size();
    next.priv_base = fr->priv_base + fn->private_bytes;
    const std::size_t abase = fr->base + in->a;
    // resize value-initializes the new registers (callee locals are zero,
    // like the stack interpreter's fresh slots).
    vm.regs_.resize(next.base + callee.num_regs);
    for (std::size_t i = 0; i < callee.num_params; ++i) {
      vm.regs_[next.base + i] = vm.regs_[abase + i];
    }
    if (priv->size() < next.priv_base + callee.private_bytes) {
      priv->resize(next.priv_base + callee.private_bytes);
    }
    vm.frames_.push_back(next);
    fr = &vm.frames_.back();
    fn = &callee;
    code = fn->code.data();
    R = vm.regs_.data() + fr->base;
    enter_block(0);
  }
  VM_NEXT

  VM_CASE(Ret) {
    bool handled = false;
    if constexpr (kWG) {
      if (vm.frames_.size() == 1) {
        // Kernel-level return: this item is finished. Keep the shared
        // kernel frame and move the loop to the next unfinished item.
        vm.done_[cur] = 1;
        ++vm.done_count_;
        ++vm.phase_finished_;
        if (!wg_advance()) return RunStatus::Done;
        handled = true;
      }
    }
    if (!handled) {
      const Value result = R[in->a];
      const std::uint32_t rr = fr->ret_reg;
      vm.regs_.resize(fr->base);
      vm.frames_.pop_back();
      if (vm.frames_.empty()) return RunStatus::Done;
      fr = &vm.frames_.back();
      fn = fr->fn;
      code = fn->code.data();
      R = vm.regs_.data() + fr->base;
      pc = fr->pc;
      if (rr != kRegNoRet) vm.regs_[rr] = result;
    }
  }
  VM_NEXT

  VM_CASE(RetVoid) {
    bool handled = false;
    if constexpr (kWG) {
      if (vm.frames_.size() == 1) {
        vm.done_[cur] = 1;
        ++vm.done_count_;
        ++vm.phase_finished_;
        if (!wg_advance()) return RunStatus::Done;
        handled = true;
      }
    }
    if (!handled) {
      vm.regs_.resize(fr->base);
      vm.frames_.pop_back();
      if (vm.frames_.empty()) return RunStatus::Done;
      fr = &vm.frames_.back();
      fn = fr->fn;
      code = fn->code.data();
      R = vm.regs_.data() + fr->base;
      pc = fr->pc;
    }
  }
  VM_NEXT

  VM_CASE(Barrier) {
    vm.barrier_flags_ = R[in->a].u64;
    ++stats.barriers_executed;
    if constexpr (kWG) {
      // A barrier the front end did not record would have made the kernel
      // ineligible; mirror the item-mode fast path's trap just in case.
      if (!vm.uses_barrier_) {
        trap("kernel reached a barrier not seen at compile time");
      }
      // Save the resume block's save list — the live registers a region
      // reaching this barrier may have modified; the rest already sit in
      // their spill columns — park the item there, run the next item.
      const auto resume = static_cast<std::uint32_t>(in->aux);
      const auto span = vm.save_by_block_[resume];
      const auto* pairs = vm.spill_pairs_.data() + span.begin;
      Value* row = vm.spills_.data() + cur * vm.spill_stride_;
      for (std::uint32_t k = 0; k < span.len; ++k) {
        row[pairs[k].second] = R[pairs[k].first];
      }
      vm.pending_[cur] = resume;
      ++vm.phase_at_barrier_;
      if (!wg_advance()) return RunStatus::Barrier;
    } else {
      // Suspend: the register file (regs_/frames_) is the saved state; the
      // resume block is accounted on the next run() call.
      vm.pending_block_ = static_cast<std::uint32_t>(in->aux);
      return RunStatus::Barrier;
    }
  }
  VM_NEXT

  VM_CASE(WorkItem) {
    const auto id = static_cast<Builtin>(in->aux);
    const std::uint64_t dim = R[in->a].u64;
    const std::size_t d = dim < 3 ? static_cast<std::size_t>(dim) : 0;
    std::uint64_t v = 0;
    switch (id) {
      case Builtin::GetWorkDim:
        v = static_cast<std::uint64_t>(launch.work_dim);
        break;
      case Builtin::GetGlobalId: v = item->global_id[d]; break;
      case Builtin::GetLocalId: v = item->local_id[d]; break;
      case Builtin::GetGroupId: v = item->group_id[d]; break;
      case Builtin::GetGlobalSize: v = launch.global_size[d]; break;
      case Builtin::GetLocalSize: v = launch.local_size[d]; break;
      case Builtin::GetNumGroups: v = launch.num_groups[d]; break;
      default:
        trap("bad work-item function");
    }
    R[in->dst].u64 = v;
  }
  VM_NEXT

  VM_CASE(BuiltinFn) {
    const auto id = static_cast<Builtin>(in->aux);
    const int arity = in->b;
    const Value* args = &R[in->a];
    switch (in->c) {
      case 1: {  // f32
        float a[3] = {0, 0, 0};
        for (int i = 0; i < arity; ++i) a[i] = args[i].f32;
        R[in->dst].f32 = apply_math_builtin_f(id, a);
        break;
      }
      case 2: {  // f64
        double a[3] = {0, 0, 0};
        for (int i = 0; i < arity; ++i) a[i] = args[i].f64;
        R[in->dst].f64 = apply_math_builtin_d(id, a);
        break;
      }
      case 0: {  // signed integer
        std::int64_t a[3] = {0, 0, 0};
        for (int i = 0; i < arity; ++i) a[i] = args[i].i64;
        std::int64_t v = 0;
        switch (id) {
          case Builtin::Min: v = a[0] < a[1] ? a[0] : a[1]; break;
          case Builtin::Max: v = a[0] > a[1] ? a[0] : a[1]; break;
          case Builtin::Abs: v = a[0] < 0 ? -a[0] : a[0]; break;
          case Builtin::Clamp:
            v = a[0] < a[1] ? a[1] : (a[0] > a[2] ? a[2] : a[0]);
            break;
          default:
            trap("bad integer builtin");
        }
        R[in->dst].i64 = v;
        break;
      }
      default: {  // unsigned integer
        std::uint64_t a[3] = {0, 0, 0};
        for (int i = 0; i < arity; ++i) a[i] = args[i].u64;
        std::uint64_t v = 0;
        switch (id) {
          case Builtin::Min: v = a[0] < a[1] ? a[0] : a[1]; break;
          case Builtin::Max: v = a[0] > a[1] ? a[0] : a[1]; break;
          case Builtin::Abs: v = a[0]; break;
          case Builtin::Clamp:
            v = a[0] < a[1] ? a[1] : (a[0] > a[2] ? a[2] : a[0]);
            break;
          default:
            trap("bad unsigned builtin");
        }
        R[in->dst].u64 = v;
        break;
      }
    }
  }
  VM_NEXT

#if !HPLREPRO_VM_COMPUTED_GOTO
      default:
        throw InternalError("RegItemVM: bad opcode");
    }
  }
#endif
#undef VM_CASE
#undef VM_NEXT
}

RunStatus RegItemVM::run(const MemoryEnv& mem, const LaunchInfo& launch,
                         const WorkItemInfo& item, ExecStats& stats,
                         MemTracker* tracker) {
  return RegRunner::run(*this, mem, launch, &item, stats, tracker);
}

// --- Work-group execution mode ----------------------------------------------

void WorkGroupVM::prepare(const Module& module, const CompiledFunction& kernel,
                          std::span<const Value> args,
                          std::size_t group_items) {
  if (!module.has_wg_form()) {
    throw InternalError("WorkGroupVM::prepare: module has no wg form");
  }
  if (args.size() != kernel.params.size()) {
    throw InternalError("WorkGroupVM::prepare: argument count mismatch");
  }
  module_ = &module;
  const auto index =
      static_cast<std::size_t>(&kernel - module.functions.data());
  if (!module.wg_info[index].eligible) {
    throw InternalError("WorkGroupVM::prepare: kernel not wg-eligible");
  }
  kernel_fn_ = &module.reg_functions[index];
  wg_ = &module.wg_info[index];
  uses_barrier_ = kernel.uses_barrier;
  kernel_priv_bytes_ = kernel_fn_->private_bytes;
  group_items_ = group_items;

  args_.assign(args.begin(), args.end());

  // Per-item spill row template: parameter registers get the launch
  // arguments (parameters occupy registers 0..num_params-1), everything
  // else starts zeroed, matching RegItemVM::reset's fresh register file.
  const std::size_t live_n = wg_->live_regs.size();
  spill_init_.assign(live_n, Value{});
  for (std::size_t k = 0; k < live_n; ++k) {
    const std::uint16_t r = wg_->live_regs[k];
    if (r < args.size()) spill_init_[k] = args[r];
  }
  spills_.resize(group_items * live_n);
  spill_stride_ = live_n;
  privs_.resize(group_items);
  pending_.assign(group_items, 0);
  done_.assign(group_items, 0);

  // Flatten the per-entry restore/save lists into per-block spans over one
  // contiguous pair array (see vm.hpp). Non-entry blocks keep empty spans;
  // they are never looked up.
  const std::size_t nblocks = kernel_fn_->blocks.size();
  spill_pairs_.clear();
  restore_by_block_.assign(nblocks, SpillSpan{});
  save_by_block_.assign(nblocks, SpillSpan{});
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::int32_t e = wg_->entry_index[b];
    if (e < 0) continue;
    const auto& restore = wg_->entry_lists[static_cast<std::size_t>(e)];
    restore_by_block_[b].begin = static_cast<std::uint32_t>(
        spill_pairs_.size());
    restore_by_block_[b].len = static_cast<std::uint32_t>(restore.size());
    spill_pairs_.insert(spill_pairs_.end(), restore.begin(), restore.end());
    const auto& save = wg_->save_lists[static_cast<std::size_t>(e)];
    save_by_block_[b].begin = static_cast<std::uint32_t>(spill_pairs_.size());
    save_by_block_[b].len = static_cast<std::uint32_t>(save.size());
    spill_pairs_.insert(spill_pairs_.end(), save.begin(), save.end());
  }
}

void WorkGroupVM::run_group(const MemoryEnv& mem, const LaunchInfo& launch,
                            const WorkItemInfo* items, ExecStats& stats,
                            MemTracker* tracker) {
  const RegFunction& fn = *kernel_fn_;
  frames_.clear();
  frames_.push_back(RegFrame{&fn, 0, kRegNoRet, 0, 0});
  regs_.assign(fn.num_regs, Value{});
  // Uniform registers — the ones no instruction writes — keep these values
  // for every item of the group: arguments in the parameter registers,
  // zeros elsewhere. Item-varying parameters are re-restored per item from
  // the spill-row argument image, which is harmless.
  const std::size_t nparams =
      std::min<std::size_t>(fn.num_params, args_.size());
  for (std::size_t r = 0; r < nparams; ++r) regs_[r] = args_[r];

  // Spill rows need no initialization: pending block 0 restores from the
  // argument image, and every later restore reads columns its barrier save
  // wrote within this group run.
  std::fill(done_.begin(), done_.end(), char{0});
  std::fill(pending_.begin(), pending_.end(), std::uint32_t{0});
  for (std::size_t i = 0; i < group_items_; ++i) {
    privs_[i].assign(kernel_priv_bytes_, std::byte{0});
  }
  done_count_ = 0;
  barrier_flags_ = 0;

  // One RegRunner phase runs every unfinished item up to its next barrier
  // (or exit). Items finishing in a phase where others reached a barrier
  // is the divergent-barrier condition — same trap as the item-mode group
  // scheduler in clsim.
  while (done_count_ < group_items_) {
    phase_finished_ = 0;
    phase_at_barrier_ = 0;
    RegRunner::run(*this, mem, launch, items, stats, tracker);
    if (phase_at_barrier_ != 0 && phase_finished_ != 0) {
      throw TrapError(
          "divergent barrier: some work-items exited while others wait at a "
          "barrier");
    }
  }
  loop_trips_ += group_items_;
}

}  // namespace hplrepro::clc
