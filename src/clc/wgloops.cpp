#include "clc/wgloops.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace hplrepro::clc {

namespace {

bool op_between(RegOp op, RegOp lo, RegOp hi) {
  return static_cast<int>(op) >= static_cast<int>(lo) &&
         static_cast<int>(op) <= static_cast<int>(hi);
}

/// Calls `use` for every register the instruction reads. Mirrors the
/// operand conventions documented on RegInstr (bytecode.hpp) and the
/// dispatch cases in vm.cpp.
template <class UseFn>
void for_each_use(const Module& module, const RegInstr& in, UseFn use) {
  const RegOp op = in.op;
  if (op == RegOp::Const || op == RegOp::PrivPtr || op == RegOp::Br ||
      op == RegOp::RetVoid) {
    return;
  }
  if (op == RegOp::Mov || op == RegOp::WorkItem || op == RegOp::BrIf ||
      op == RegOp::Ret || op == RegOp::Barrier ||
      op_between(op, RegOp::LoadI8, RegOp::LoadF64) ||
      op_between(op, RegOp::NegI, RegOp::D2F)) {
    use(in.a);
    return;
  }
  if (op == RegOp::PtrAdd ||
      op_between(op, RegOp::StoreI8, RegOp::StoreF64) ||
      op_between(op, RegOp::LIdxI8, RegOp::LIdxF64) ||
      op_between(op, RegOp::AddI, RegOp::GeD)) {
    use(in.a);
    use(in.b);
    return;
  }
  if (op_between(op, RegOp::SIdxI8, RegOp::SIdxF64) ||
      op_between(op, RegOp::MadI, RegOp::MadD)) {
    use(in.a);
    use(in.b);
    use(in.c);
    return;
  }
  if (op == RegOp::Call) {
    const RegFunction& callee =
        module.reg_functions[static_cast<std::size_t>(in.aux)];
    for (std::size_t i = 0; i < callee.num_params; ++i) {
      use(static_cast<std::uint16_t>(in.a + i));
    }
    return;
  }
  if (op == RegOp::BuiltinFn) {
    for (int i = 0; i < in.b; ++i) {
      use(static_cast<std::uint16_t>(in.a + i));
    }
    return;
  }
}

/// The register the instruction writes, or -1.
int def_reg(const RegInstr& in) {
  const RegOp op = in.op;
  if (op == RegOp::Const || op == RegOp::Mov || op == RegOp::PrivPtr ||
      op == RegOp::PtrAdd || op == RegOp::WorkItem ||
      op == RegOp::BuiltinFn ||
      op_between(op, RegOp::LoadI8, RegOp::LoadF64) ||
      op_between(op, RegOp::LIdxI8, RegOp::LIdxF64) ||
      op_between(op, RegOp::AddI, RegOp::GeD) ||
      op_between(op, RegOp::NegI, RegOp::D2F) ||
      op_between(op, RegOp::MadI, RegOp::MadD)) {
    return in.dst;
  }
  if (op == RegOp::Call && in.b != 0) {
    return in.dst;
  }
  return -1;
}

bool is_terminator(RegOp op) {
  return op == RegOp::Br || op == RegOp::BrIf || op == RegOp::Ret ||
         op == RegOp::RetVoid || op == RegOp::Barrier;
}

/// Does this function's own code contain a barrier instruction?
bool has_direct_barrier(const RegFunction& fn) {
  for (const RegInstr& in : fn.code) {
    if (in.op == RegOp::Barrier) return true;
  }
  return false;
}

/// True iff any function transitively callable from `root` (excluding the
/// root itself) contains a barrier. The work-item loop runs calls entirely
/// inside one region, so a barrier inside a callee cannot be a region
/// split point.
bool callee_has_barrier(const Module& module, std::size_t root) {
  std::vector<char> visited(module.reg_functions.size(), 0);
  std::vector<std::size_t> stack{root};
  visited[root] = 1;
  bool first = true;
  while (!stack.empty()) {
    const std::size_t f = stack.back();
    stack.pop_back();
    const RegFunction& fn = module.reg_functions[f];
    if (!first && has_direct_barrier(fn)) return true;
    first = false;
    for (const RegInstr& in : fn.code) {
      if (in.op != RegOp::Call) continue;
      const auto callee = static_cast<std::size_t>(in.aux);
      if (callee >= module.reg_functions.size()) return true;  // malformed
      if (!visited[callee]) {
        visited[callee] = 1;
        if (has_direct_barrier(module.reg_functions[callee])) return true;
        stack.push_back(callee);
      }
    }
  }
  return false;
}

/// Dense per-block register set.
struct RegSet {
  std::vector<std::uint64_t> words;

  explicit RegSet(std::size_t nregs) : words((nregs + 63) / 64, 0) {}
  void set(std::size_t r) { words[r / 64] |= 1ull << (r % 64); }
  void clear(std::size_t r) { words[r / 64] &= ~(1ull << (r % 64)); }
  bool test(std::size_t r) const {
    return (words[r / 64] >> (r % 64)) & 1u;
  }
  /// this |= (other & ~mask); returns true if this changed.
  bool or_minus(const RegSet& other, const RegSet& mask) {
    bool changed = false;
    for (std::size_t w = 0; w < words.size(); ++w) {
      const std::uint64_t add = other.words[w] & ~mask.words[w];
      if (add & ~words[w]) changed = true;
      words[w] |= add;
    }
    return changed;
  }
  bool or_with(const RegSet& other) {
    bool changed = false;
    for (std::size_t w = 0; w < words.size(); ++w) {
      if (other.words[w] & ~words[w]) changed = true;
      words[w] |= other.words[w];
    }
    return changed;
  }
};

WgInfo analyze_kernel(const Module& module, std::size_t index) {
  WgInfo info;
  const RegFunction& fn = module.reg_functions[index];
  if (fn.blocks.empty() || fn.code.empty()) return info;
  if (callee_has_barrier(module, index)) return info;
  // Defensive: a barrier the front end did not record means the executor
  // would take the fast path and trap; keep per-item semantics for it.
  if (has_direct_barrier(fn) && !module.functions[index].uses_barrier) {
    return info;
  }

  const std::size_t nblocks = fn.blocks.size();
  const std::size_t nregs = fn.num_regs;

  // Block instruction ranges and successors from the explicit terminators
  // lower_module emits (every block ends in Br/BrIf/Ret/RetVoid/Barrier).
  std::vector<std::vector<std::uint32_t>> succ(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::uint32_t begin = fn.blocks[b].start;
    const std::uint32_t end = b + 1 < nblocks
                                  ? fn.blocks[b + 1].start
                                  : static_cast<std::uint32_t>(fn.code.size());
    if (end <= begin || end > fn.code.size()) return info;  // malformed
    const RegInstr& term = fn.code[end - 1];
    if (!is_terminator(term.op)) return info;  // malformed
    switch (term.op) {
      case RegOp::Br:
      case RegOp::Barrier:
        succ[b].push_back(static_cast<std::uint32_t>(term.aux));
        break;
      case RegOp::BrIf:
        succ[b].push_back(term.dst);
        succ[b].push_back(static_cast<std::uint32_t>(term.aux));
        break;
      default:  // Ret / RetVoid
        break;
    }
    for (const std::uint32_t s : succ[b]) {
      if (s >= nblocks) return info;  // malformed
    }
  }

  // Per-block use (read before any write, forward scan) and def sets.
  std::vector<RegSet> use_set(nblocks, RegSet(nregs));
  std::vector<RegSet> def_set(nblocks, RegSet(nregs));
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::uint32_t begin = fn.blocks[b].start;
    const std::uint32_t end = b + 1 < nblocks
                                  ? fn.blocks[b + 1].start
                                  : static_cast<std::uint32_t>(fn.code.size());
    for (std::uint32_t i = begin; i < end; ++i) {
      const RegInstr& in = fn.code[i];
      for_each_use(module, in, [&](std::uint16_t r) {
        if (r < nregs && !def_set[b].test(r)) use_set[b].set(r);
      });
      const int d = def_reg(in);
      if (d >= 0 && static_cast<std::size_t>(d) < nregs) {
        def_set[b].set(static_cast<std::size_t>(d));
      }
    }
  }

  // Backward worklist liveness to a fixpoint:
  //   live_out[b] = U live_in[s],  live_in[b] = use[b] | (live_out[b] - def[b])
  std::vector<RegSet> live_in(nblocks, RegSet(nregs));
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = nblocks; bi-- > 0;) {
      RegSet out(nregs);
      for (const std::uint32_t s : succ[bi]) out.or_with(live_in[s]);
      if (live_in[bi].or_minus(out, def_set[bi])) changed = true;
      if (live_in[bi].or_with(use_set[bi])) changed = true;
    }
  }

  // Region entries: block 0 (kernel entry, also each item's first region)
  // plus every barrier's resume block. The spill set is the union of the
  // registers live at any of them — restored per item at region entry,
  // saved at every barrier.
  RegSet live_union(nregs);
  live_union.or_with(live_in[0]);
  std::uint32_t regions = 1;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::uint32_t end = b + 1 < nblocks
                                  ? fn.blocks[b + 1].start
                                  : static_cast<std::uint32_t>(fn.code.size());
    const RegInstr& term = fn.code[end - 1];
    if (term.op == RegOp::Barrier) {
      // The VM treats pending block 0 as "fresh item" (restore from the
      // argument image); lower_module never resumes at the entry block, so
      // a kernel that somehow does is left on the per-item path.
      if (term.aux == 0) return info;
      ++regions;
      live_union.or_with(live_in[static_cast<std::size_t>(term.aux)]);
    }
  }

  info.eligible = true;
  info.region_count = regions;

  // Registers no instruction ever writes hold the same value for every
  // item all launch long — kernel arguments (parameters occupy registers
  // 0..num_params-1) and never-assigned zeros. The VM installs them once
  // per group; they need no spill slots.
  RegSet uniform(nregs);
  for (std::size_t r = 0; r < nregs; ++r) uniform.set(r);
  for (const RegInstr& in : fn.code) {
    const int d = def_reg(in);
    if (d >= 0 && static_cast<std::size_t>(d) < nregs) {
      uniform.clear(static_cast<std::size_t>(d));
    }
  }

  std::vector<std::uint16_t> column(nregs, 0);
  for (std::size_t r = 0; r < nregs; ++r) {
    if (live_union.test(r) && !uniform.test(r)) {
      column[r] = static_cast<std::uint16_t>(info.live_regs.size());
      info.live_regs.push_back(static_cast<std::uint16_t>(r));
    }
  }

  const auto block_end = [&](std::size_t b) {
    return b + 1 < nblocks ? fn.blocks[b + 1].start
                           : static_cast<std::uint32_t>(fn.code.size());
  };
  const auto is_barrier_block = [&](std::size_t b) {
    return fn.code[block_end(b) - 1].op == RegOp::Barrier;
  };

  // Region entries: block 0 plus every barrier resume block.
  info.entry_index.assign(nblocks, -1);
  std::vector<std::size_t> entries;
  const auto add_entry = [&](std::size_t b) {
    if (info.entry_index[b] >= 0) return;
    info.entry_index[b] = static_cast<std::int32_t>(entries.size());
    entries.push_back(b);
  };
  add_entry(0);
  for (std::size_t b = 0; b < nblocks; ++b) {
    if (is_barrier_block(b)) {
      add_entry(static_cast<std::size_t>(fn.code[block_end(b) - 1].aux));
    }
  }

  // What a barrier resuming at entry A must save: registers *defined* in
  // some region that reaches such a barrier (walk each region — blocks
  // reachable from its entry without crossing a barrier — and credit its
  // defs to every resume block its barriers target). Region 0 contributes
  // everything it keeps live as well, because its items' spill rows are
  // still unwritten (entry 0 restores from the argument image instead).
  std::vector<RegSet> save_set(entries.size(), RegSet(nregs));
  for (const std::size_t entry : entries) {
    RegSet defs(nregs);
    std::vector<std::size_t> resumes;
    std::vector<char> visited(nblocks, 0);
    std::vector<std::size_t> stack{entry};
    visited[entry] = 1;
    while (!stack.empty()) {
      const std::size_t b = stack.back();
      stack.pop_back();
      defs.or_with(def_set[b]);
      if (is_barrier_block(b)) {
        resumes.push_back(
            static_cast<std::size_t>(fn.code[block_end(b) - 1].aux));
        continue;  // the region ends at the barrier
      }
      for (const std::uint32_t s : succ[b]) {
        if (!visited[s]) {
          visited[s] = 1;
          stack.push_back(s);
        }
      }
    }
    if (entry == 0) defs.or_with(live_in[0]);
    for (const std::size_t a : resumes) {
      save_set[static_cast<std::size_t>(info.entry_index[a])].or_with(defs);
    }
  }

  // Emit the (register, column) lists: restore = the item-varying
  // registers live into the entry; save = the subset a resuming barrier
  // must write back.
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const std::size_t b = entries[e];
    std::vector<std::pair<std::uint16_t, std::uint16_t>> restore;
    std::vector<std::pair<std::uint16_t, std::uint16_t>> save;
    for (std::size_t r = 0; r < nregs; ++r) {
      if (!live_in[b].test(r) || uniform.test(r)) continue;
      restore.emplace_back(static_cast<std::uint16_t>(r), column[r]);
      if (save_set[e].test(r)) {
        save.emplace_back(static_cast<std::uint16_t>(r), column[r]);
      }
    }
    info.entry_lists.push_back(std::move(restore));
    info.save_lists.push_back(std::move(save));
  }
  return info;
}

}  // namespace

void analyze_wg_loops(Module& module) {
  if (!module.has_reg_form()) return;
  module.wg_info.clear();
  module.wg_info.reserve(module.functions.size());
  for (std::size_t i = 0; i < module.functions.size(); ++i) {
    if (module.functions[i].is_kernel) {
      module.wg_info.push_back(analyze_kernel(module, i));
    } else {
      module.wg_info.emplace_back();  // helpers run inside a region
    }
  }
}

}  // namespace hplrepro::clc
