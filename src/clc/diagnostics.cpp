#include "clc/diagnostics.hpp"

#include <sstream>

namespace hplrepro::clc {

std::string Diagnostic::to_string() const {
  std::ostringstream oss;
  oss << line << ':' << column << ": "
      << (severity == Severity::Error ? "error: " : "warning: ") << message;
  return oss.str();
}

void DiagnosticSink::error(int line, int column, std::string message) {
  entries_.push_back({Severity::Error, line, column, std::move(message)});
  ++error_count_;
}

void DiagnosticSink::warning(int line, int column, std::string message) {
  entries_.push_back({Severity::Warning, line, column, std::move(message)});
}

std::string DiagnosticSink::log() const {
  std::ostringstream oss;
  for (const auto& d : entries_) oss << d.to_string() << '\n';
  return oss.str();
}

}  // namespace hplrepro::clc
