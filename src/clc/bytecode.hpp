#ifndef HPLREPRO_CLC_BYTECODE_HPP
#define HPLREPRO_CLC_BYTECODE_HPP

/// \file bytecode.hpp
/// The clc bytecode: a typed stack machine that the VM interprets.
///
/// Design notes:
///  * One 8-byte Value slot type; opcodes are statically typed (AddI vs
///    AddF vs AddD), so values carry no runtime tags.
///  * Integer arithmetic happens in 64 bits; the compiler re-normalises
///    (sign/zero-extends) after operations whose result type is narrower.
///  * Pointers are encoded in a u64: [63:62] address space, [61:48] buffer
///    index (global/constant), [47:0] byte offset. Local offsets are
///    relative to the work-group's local arena, private offsets to the
///    work-item's private arena.
///  * `Barrier` suspends the work-item; the group scheduler resumes it once
///    every item in the group has reached the barrier.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "clc/types.hpp"

namespace hplrepro::clc {

union Value {
  std::int64_t i64;
  std::uint64_t u64;
  double f64;
  float f32;
};
static_assert(sizeof(Value) == 8);

// --- Pointer encoding -------------------------------------------------------

enum class PtrSpace : std::uint64_t {
  Private = 0,
  Global = 1,
  Local = 2,
  Constant = 3,
};

inline constexpr int kPtrSpaceShift = 62;
inline constexpr int kPtrBufferShift = 48;
inline constexpr std::uint64_t kPtrOffsetMask = (1ull << 48) - 1;
inline constexpr std::uint64_t kPtrBufferMask = (1ull << 14) - 1;

inline std::uint64_t make_pointer(PtrSpace space, std::uint64_t buffer,
                                  std::uint64_t offset) {
  return (static_cast<std::uint64_t>(space) << kPtrSpaceShift) |
         ((buffer & kPtrBufferMask) << kPtrBufferShift) |
         (offset & kPtrOffsetMask);
}

inline PtrSpace pointer_space(std::uint64_t p) {
  return static_cast<PtrSpace>(p >> kPtrSpaceShift);
}
inline std::uint64_t pointer_buffer(std::uint64_t p) {
  return (p >> kPtrBufferShift) & kPtrBufferMask;
}
inline std::uint64_t pointer_offset(std::uint64_t p) {
  return p & kPtrOffsetMask;
}
/// Pointer arithmetic only touches the offset field.
inline std::uint64_t pointer_add(std::uint64_t p, std::int64_t bytes) {
  const std::uint64_t off =
      (pointer_offset(p) + static_cast<std::uint64_t>(bytes)) & kPtrOffsetMask;
  return (p & ~kPtrOffsetMask) | off;
}

// --- Opcodes ----------------------------------------------------------------

enum class Op : std::uint8_t {
  Nop,
  // Stack / constants
  PushI,   // imm: int64 constant
  PushF,   // imm: float bits (low 32)
  PushD,   // imm: double bits
  Dup,
  Pop,
  Swap,
  // Slots
  LoadSlot,   // a: slot index
  StoreSlot,  // a: slot index (pops value)
  // Pointers
  PtrAdd,      // a: element size; pops index(i64), ptr -> ptr + index*size
  LocalPtr,    // imm: offset in the group's local arena
  PrivatePtr,  // imm: frame-relative offset in the private arena
  // Memory (typed). Loads pop a pointer and push the value; stores pop a
  // value then a pointer.
  LoadI8, LoadU8, LoadI16, LoadU16, LoadI32, LoadU32, LoadI64, LoadF32, LoadF64,
  StoreI8, StoreI16, StoreI32, StoreI64, StoreF32, StoreF64,
  // Integer arithmetic (64-bit)
  AddI, SubI, MulI, DivI, DivU, RemI, RemU, NegI,
  AndI, OrI, XorI, ShlI, ShrI, ShrU, NotI,
  // Width renormalisation after narrow arithmetic
  Sext8, Sext16, Sext32, Zext8, Zext16, Zext32, Zext1,
  // Float (f32) arithmetic
  AddF, SubF, MulF, DivF, NegF,
  // Double (f64) arithmetic
  AddD, SubD, MulD, DivD, NegD,
  // Comparisons -> i64 0/1
  EqI, NeI, LtI, LeI, GtI, GeI, LtU, LeU, GtU, GeU,
  EqF, NeF, LtF, LeF, GtF, GeF,
  EqD, NeD, LtD, LeD, GtD, GeD,
  LNot,  // logical not of i64
  Bool,  // normalise i64 to 0/1
  // Conversions
  I2F, I2D, U2F, U2D, F2I, D2I, F2U, D2U, F2D, D2F,
  // Control flow
  Jmp,          // a: target pc
  JmpIfZero,    // a: target pc (pops i64)
  JmpIfNonZero, // a: target pc (pops i64)
  Call,         // a: function index (args on stack, left to right)
  Ret,          // pops return value
  RetVoid,
  // OpenCL specials
  BarrierOp,  // imm: fence flags; suspends until group sync
  BuiltinOp,  // a: builtin id; imm: operand scalar class (0 int, 1 f32, 2 f64)
  WorkItemFn, // a: builtin id; pops dimension, pushes size_t value
  // Superinstructions, emitted only by the optimizer (see optimizer.hpp).
  // Fused index+load: a = element size; pops index then pointer, pushes
  // the value at ptr + index*size. One dynamic op instead of two.
  LIdxI8, LIdxU8, LIdxI16, LIdxU16, LIdxI32, LIdxU32, LIdxI64,
  LIdxF32, LIdxF64,
  // Fused index+store: a = element size; pops value, index, pointer.
  SIdxI8, SIdxI16, SIdxI32, SIdxI64, SIdxF32, SIdxF64,
  // Fused multiply-add. Computes the product and then the sum as two
  // separate roundings (no FMA contraction), so results stay bit-identical
  // with the unfused MUL/ADD pair. a encodes the operand order:
  //   a = 0: pops z, y, x -> (x*y) + z   (from MUL; push; ADD)
  //   a = 1: pops y, x, z -> z + (x*y)   (from MUL; ADD)
  MadI, MadF, MadD,
};

/// Total number of opcodes (for dispatch/classification tables).
inline constexpr int kOpCount = static_cast<int>(Op::MadD) + 1;

const char* op_name(Op op);

/// Classification used by the instruction counters / timing model.
enum class OpClass : std::uint8_t {
  Control,   // jumps, calls, stack shuffling, conversions
  IntAlu,
  FloatAlu,
  DoubleAlu,
  GlobalMem,   // global/constant loads+stores (classified at run time)
  LocalMem,
  SpecialFn,   // transcendental builtins
};

struct Instr {
  Op op = Op::Nop;
  std::int32_t a = 0;
  std::int64_t imm = 0;
};

struct ParamInfo {
  std::string name;
  Type type;
};

struct CompiledFunction {
  std::string name;
  bool is_kernel = false;
  std::vector<ParamInfo> params;
  std::vector<Instr> code;
  int num_slots = 0;
  std::uint64_t private_bytes = 0;
  std::uint64_t local_bytes = 0;  // meaningful for kernels
  bool uses_barrier = false;      // transitively
  bool uses_double = false;       // transitively
};

// --- Register form ----------------------------------------------------------
//
// At build time the optimized stack code of every function is lowered into
// a register-coded form: a stack-simulation pass maps each operand-stack
// position to a virtual register (registers 0..num_slots-1 double as the
// function's slots, so LoadSlot/StoreSlot mostly disappear into register
// renaming), and control flow becomes explicit basic blocks. The register
// interpreter (RegItemVM, vm.hpp) executes this form with direct-threaded
// dispatch and accounts ExecStats once per block entry from the histograms
// precomputed here — by construction those histograms sum to exactly what
// the stack interpreter would have counted per instruction.

// X-macro over the register opcodes; keeps the computed-goto label table in
// vm.cpp in enum order by construction.
#define HPLREPRO_REG_OPS(X)                                                   \
  X(Const) X(Mov) X(PrivPtr) X(PtrAdd)                                        \
  X(LoadI8) X(LoadU8) X(LoadI16) X(LoadU16) X(LoadI32) X(LoadU32)             \
  X(LoadI64) X(LoadF32) X(LoadF64)                                            \
  X(StoreI8) X(StoreI16) X(StoreI32) X(StoreI64) X(StoreF32) X(StoreF64)      \
  X(LIdxI8) X(LIdxU8) X(LIdxI16) X(LIdxU16) X(LIdxI32) X(LIdxU32)             \
  X(LIdxI64) X(LIdxF32) X(LIdxF64)                                            \
  X(SIdxI8) X(SIdxI16) X(SIdxI32) X(SIdxI64) X(SIdxF32) X(SIdxF64)            \
  X(AddI) X(SubI) X(MulI) X(DivI) X(DivU) X(RemI) X(RemU)                     \
  X(AndI) X(OrI) X(XorI) X(ShlI) X(ShrI) X(ShrU)                              \
  X(AddF) X(SubF) X(MulF) X(DivF) X(AddD) X(SubD) X(MulD) X(DivD)             \
  X(EqI) X(NeI) X(LtI) X(LeI) X(GtI) X(GeI) X(LtU) X(LeU) X(GtU) X(GeU)       \
  X(EqF) X(NeF) X(LtF) X(LeF) X(GtF) X(GeF)                                   \
  X(EqD) X(NeD) X(LtD) X(LeD) X(GtD) X(GeD)                                   \
  X(NegI) X(NotI) X(NegF) X(NegD) X(LNot) X(Bool)                             \
  X(Sext8) X(Sext16) X(Sext32) X(Zext8) X(Zext16) X(Zext32) X(Zext1)          \
  X(I2F) X(I2D) X(U2F) X(U2D) X(F2I) X(D2I) X(F2U) X(D2U) X(F2D) X(D2F)       \
  X(MadI) X(MadF) X(MadD)                                                     \
  X(Br) X(BrIf) X(Call) X(Ret) X(RetVoid)                                     \
  X(Barrier) X(WorkItem) X(BuiltinFn)

enum class RegOp : std::uint8_t {
#define HPLREPRO_REG_ENUM(name) name,
  HPLREPRO_REG_OPS(HPLREPRO_REG_ENUM)
#undef HPLREPRO_REG_ENUM
};

inline constexpr int kRegOpCount = static_cast<int>(RegOp::BuiltinFn) + 1;

const char* reg_op_name(RegOp op);

/// One register instruction. Operand conventions:
///   dst       result register (BrIf: block taken when the condition is
///             nonzero; SIdx/Store: unused)
///   a, b, c   source registers (BuiltinFn: a = first of `b` contiguous
///             args, c = scalar class; Mad: a*b with addend c)
///   aux       block id (Br, BrIf's zero path, Barrier's resume point),
///             callee index (Call), builtin id (WorkItem/BuiltinFn),
///             pc_key (memory ops), operand order (Mad)
///   imm       64-bit immediate (Const: the Value bits; PtrAdd/LIdx/SIdx:
///             element size)
struct RegInstr {
  RegOp op = RegOp::Const;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t c = 0;
  std::int32_t aux = 0;
  std::int64_t imm = 0;
};
static_assert(sizeof(RegInstr) == 24);

/// A basic block of register code plus its precomputed accounting: the
/// OpClass histogram and fuel cost of the ORIGINAL stack instructions the
/// block was lowered from. The register interpreter bumps ExecStats and
/// burns fuel once per block entry; summed over a run this reproduces the
/// stack interpreter's per-instruction counting exactly.
struct RegBlock {
  std::uint32_t start = 0;  // first instruction index in RegFunction::code
  std::uint32_t fuel = 0;   // stack-instruction count (fuel burned on entry)
  std::uint32_t control_ops = 0;
  std::uint32_t int_ops = 0;
  std::uint32_t float_ops = 0;
  std::uint32_t double_ops = 0;
  std::uint32_t special_ops = 0;
  std::uint32_t fused_ops = 0;
};

/// Register-coded form of one CompiledFunction. Registers 0..num_params-1
/// hold the arguments on entry; the remaining registers are zeroed.
struct RegFunction {
  std::uint16_t num_regs = 0;
  std::uint16_t num_params = 0;
  std::uint64_t private_bytes = 0;
  std::vector<RegInstr> code;
  std::vector<RegBlock> blocks;
};

/// Work-group compilation metadata for one kernel (pocl-style work-item
/// loops): the register code is split at barriers into regions, and the
/// registers live across any region boundary get per-item spill slots so
/// a whole group can run on one shared activation. Produced by
/// analyze_wg_loops (wgloops.hpp) when -cl-wg-loops is on.
struct WgInfo {
  /// A kernel is eligible when every barrier sits in its own top-level
  /// code (no barrier reachable through a Call) and its block structure is
  /// well formed. Ineligible kernels fall back to per-item activations.
  bool eligible = false;
  /// Number of barrier-delimited regions (resume points): 1 for
  /// barrier-free kernels, barriers + 1 otherwise.
  std::uint32_t region_count = 0;
  /// Sorted union of the item-varying registers live at any region entry
  /// (block 0 and every barrier resume block). Only these get per-item
  /// spill slots; everything else lives in the shared file. Registers
  /// never written by any instruction (kernel arguments and
  /// never-assigned zeros) are uniform across the group — they are
  /// installed once per group and excluded from all spill traffic. A
  /// register's position in this vector is its spill column.
  std::vector<std::uint16_t> live_regs;
  /// Per-block index into `entry_lists`/`save_lists`, -1 for blocks that
  /// are not region entries. Block 0 and every barrier resume block get
  /// an entry.
  std::vector<std::int32_t> entry_index;
  /// (register, spill column) restore list per region entry: the
  /// item-varying registers live into that block. The VM restores this
  /// list when an item enters the region.
  std::vector<std::vector<std::pair<std::uint16_t, std::uint16_t>>>
      entry_lists;
  /// (register, spill column) save list per region entry B: the subset of
  /// B's restore list a barrier resuming at B must write back — registers
  /// defined in some region that reaches such a barrier. Values carried
  /// unmodified across a barrier already sit in their spill columns (the
  /// save that first materialised them wrote the row, and restores don't
  /// dirty it), so they are skipped.
  std::vector<std::vector<std::pair<std::uint16_t, std::uint16_t>>>
      save_lists;
};

/// A compiled translation unit plus its entry-point table.
struct Module {
  std::vector<CompiledFunction> functions;
  std::map<std::string, int> by_name;

  /// Register form of every function, parallel to `functions`. Filled by
  /// lower_module (-cl-interp=threaded, the default); empty when the module
  /// runs on the stack interpreter.
  std::vector<RegFunction> reg_functions;

  /// Work-group compilation metadata, parallel to `functions`. Filled by
  /// analyze_wg_loops (-cl-wg-loops, on by default under threaded); empty
  /// when work-item loops are disabled or the module is stack-only.
  std::vector<WgInfo> wg_info;

  const CompiledFunction* find(const std::string& name) const {
    auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : &functions[it->second];
  }

  bool has_reg_form() const {
    return !functions.empty() && reg_functions.size() == functions.size();
  }

  bool has_wg_form() const {
    return has_reg_form() && wg_info.size() == functions.size();
  }

  std::vector<std::string> kernel_names() const {
    std::vector<std::string> names;
    for (const auto& f : functions) {
      if (f.is_kernel) names.push_back(f.name);
    }
    return names;
  }
};

/// Human-readable disassembly (tests and debugging).
std::string disassemble(const CompiledFunction& fn);

/// Static OpClass of an opcode (memory ops report GlobalMem; the VM refines
/// by address space at run time). Shared by the interpreters and the
/// lowering pass so both accounting schemes agree instruction by
/// instruction.
OpClass op_class_of(Op op);

/// Lowers every function of `module` into register form, filling
/// `module.reg_functions` (parallel to `module.functions`). Returns an
/// empty string on success. On failure (a function the stack-simulation
/// pass cannot handle) clears `reg_functions` — the module then runs on
/// the stack interpreter — and returns a note for the build log.
std::string lower_module(Module& module);

/// Human-readable disassembly of the register form.
std::string disassemble_reg(const RegFunction& fn);

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_BYTECODE_HPP
