#include "clc/sema.hpp"

#include <functional>
#include <unordered_map>

#include "clc/builtins.hpp"
#include "support/error.hpp"

namespace hplrepro::clc {

namespace {

std::uint64_t align_up(std::uint64_t value, std::uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

/// Pointer conversion rule: same pointee and address space; constness may
/// be added but never dropped (C's qualification conversion).
bool pointer_convertible(const Type& from, const Type& to) {
  return from.pointer && to.pointer && from.scalar == to.scalar &&
         from.space == to.space &&
         (to.const_qualified || !from.const_qualified);
}

}  // namespace

Sema::Sema(TranslationUnit& unit, DiagnosticSink& diags)
    : unit_(unit), diags_(diags) {}

void Sema::run() {
  // Function name table; duplicates are errors.
  std::unordered_map<std::string, int> by_name;
  for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
    auto& fn = *unit_.functions[i];
    if (by_name.count(fn.name)) {
      diags_.error(fn.line, fn.column,
                   "redefinition of function '" + fn.name + "'");
    }
    if (find_builtin(fn.name)) {
      diags_.error(fn.line, fn.column,
                   "'" + fn.name + "' shadows an OpenCL builtin");
    }
    by_name.emplace(fn.name, static_cast<int>(i));
  }

  call_edges_.assign(unit_.functions.size(), {});
  for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
    analyze_function(*unit_.functions[i], static_cast<int>(i));
  }
  if (!diags_.has_errors()) check_no_recursion();
}

void Sema::analyze_function(FunctionDecl& fn, int index) {
  current_fn_ = &fn;
  current_fn_index_ = index;
  loop_depth_ = 0;
  fn.num_slots = 0;
  fn.private_bytes = 0;
  fn.local_bytes = 0;

  scopes_.clear();
  scopes_.emplace_back();

  for (auto& p : fn.params) {
    p->is_param = true;
    p->slot = fn.num_slots++;
    if (p->type.scalar == Scalar::Void && !p->type.pointer) {
      diags_.error(p->line, p->column, "parameter cannot have void type");
    }
    if (p->type.scalar == Scalar::Double ||
        (p->type.pointer && p->type.scalar == Scalar::Double)) {
      fn.uses_double = true;
    }
    // Non-kernel functions accept pointers too (passed through from the
    // kernel); nothing extra to assign.
    for (VarDecl* prev : scopes_.back()) {
      if (prev->name == p->name) {
        diags_.error(p->line, p->column,
                     "duplicate parameter name '" + p->name + "'");
      }
    }
    scopes_.back().push_back(p.get());
  }

  if (fn.body) analyze_stmt(*fn.body);
  current_fn_ = nullptr;
  current_fn_index_ = -1;
}

void Sema::declare_var(VarDecl& decl) {
  for (VarDecl* prev : scopes_.back()) {
    if (prev->name == decl.name) {
      diags_.error(decl.line, decl.column,
                   "redeclaration of '" + decl.name + "' in the same scope");
    }
  }

  if (decl.type.scalar == Scalar::Void) {
    diags_.error(decl.line, decl.column, "variable cannot have void type");
  }
  if (decl.type.scalar == Scalar::Double) current_fn_->uses_double = true;

  if (decl.array_size > 0) {
    // Arrays live in an arena; the variable's slot holds the base pointer,
    // materialised at frame entry by the VM (cheap: one setup per decl).
    const std::uint64_t elem = scalar_size(decl.type.scalar);
    const std::uint64_t bytes = elem * decl.array_size;
    if (decl.space == AddressSpace::Local) {
      if (!current_fn_->is_kernel) {
        diags_.error(decl.line, decl.column,
                     "__local variables are only allowed in kernels");
      }
      current_fn_->local_bytes = align_up(current_fn_->local_bytes, 8);
      decl.arena_offset = current_fn_->local_bytes;
      current_fn_->local_bytes += bytes;
    } else if (decl.space == AddressSpace::Constant) {
      diags_.error(decl.line, decl.column,
                   "__constant arrays must be kernel arguments");
    } else {
      decl.space = AddressSpace::Private;
      current_fn_->private_bytes = align_up(current_fn_->private_bytes, 8);
      decl.arena_offset = current_fn_->private_bytes;
      current_fn_->private_bytes += bytes;
    }
  } else if (decl.space == AddressSpace::Local) {
    diags_.error(decl.line, decl.column,
                 "__local scalar variables are not supported; use an array");
  }

  decl.slot = current_fn_->num_slots++;

  if (decl.init) {
    const Type init_type = analyze_expr(*decl.init);
    if (!init_type.is_void()) {
      if (decl.type.pointer) {
        if (!pointer_convertible(init_type, decl.type)) {
          diags_.error(decl.line, decl.column,
                       "cannot initialise pointer from " +
                           init_type.to_string());
        }
      } else if (!init_type.is_arithmetic()) {
        diags_.error(decl.line, decl.column,
                     "cannot initialise " + decl.type.to_string() + " from " +
                         init_type.to_string());
      }
    }
  }

  scopes_.back().push_back(&decl);
}

void Sema::analyze_stmt(Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::Compound:
      scopes_.emplace_back();
      for (auto& s : stmt.body) analyze_stmt(*s);
      scopes_.pop_back();
      break;
    case StmtKind::Decl:
      for (auto& d : stmt.decls) declare_var(*d);
      break;
    case StmtKind::ExprStmt:
      analyze_expr(*stmt.expr);
      break;
    case StmtKind::If: {
      const Type cond = analyze_expr(*stmt.expr);
      if (!cond.is_arithmetic() && !cond.is_void()) {
        diags_.error(stmt.line, stmt.column,
                     "if condition must be scalar, got " + cond.to_string());
      }
      analyze_stmt(*stmt.then_branch);
      if (stmt.else_branch) analyze_stmt(*stmt.else_branch);
      break;
    }
    case StmtKind::For: {
      scopes_.emplace_back();  // for-init declarations scope to the loop
      if (stmt.init) analyze_stmt(*stmt.init);
      if (stmt.expr) analyze_expr(*stmt.expr);
      if (stmt.step) analyze_expr(*stmt.step);
      ++loop_depth_;
      analyze_stmt(*stmt.then_branch);
      --loop_depth_;
      scopes_.pop_back();
      break;
    }
    case StmtKind::While:
    case StmtKind::DoWhile: {
      analyze_expr(*stmt.expr);
      ++loop_depth_;
      analyze_stmt(*stmt.then_branch);
      --loop_depth_;
      break;
    }
    case StmtKind::Return: {
      const Type want = current_fn_->return_type;
      if (stmt.expr) {
        const Type got = analyze_expr(*stmt.expr);
        if (want.is_void()) {
          diags_.error(stmt.line, stmt.column,
                       "void function returns a value");
        } else if (!got.is_arithmetic() && !got.is_void()) {
          diags_.error(stmt.line, stmt.column,
                       "cannot return " + got.to_string());
        }
      } else if (!want.is_void()) {
        diags_.error(stmt.line, stmt.column,
                     "non-void function returns without a value");
      }
      break;
    }
    case StmtKind::Break:
      if (loop_depth_ == 0) {
        diags_.error(stmt.line, stmt.column, "break outside of a loop");
      }
      break;
    case StmtKind::Continue:
      if (loop_depth_ == 0) {
        diags_.error(stmt.line, stmt.column, "continue outside of a loop");
      }
      break;
    case StmtKind::Empty:
      break;
  }
}

Type Sema::error(const Expr& expr, const std::string& message) {
  diags_.error(expr.line, expr.column, message);
  return Type::void_type();
}

Type Sema::analyze_expr(Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
      // Parser already set expr.type.
      return expr.type;
    case ExprKind::VarRef:
      return analyze_var_ref(expr);
    case ExprKind::Unary:
      return analyze_unary(expr);
    case ExprKind::Binary:
      return analyze_binary(expr);
    case ExprKind::Assign:
      return analyze_assign(expr);
    case ExprKind::Conditional:
      return analyze_conditional(expr);
    case ExprKind::Call:
      return analyze_call(expr);
    case ExprKind::Index:
      return analyze_index(expr);
    case ExprKind::Cast:
      return analyze_cast(expr);
  }
  throw InternalError("analyze_expr: bad kind");
}

Type Sema::analyze_var_ref(Expr& expr) {
  for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
    for (auto decl = scope->rbegin(); decl != scope->rend(); ++decl) {
      if ((*decl)->name == expr.name) {
        expr.decl = *decl;
        if ((*decl)->array_size > 0) {
          // Array designator decays to a pointer rvalue.
          expr.type = Type::pointer_to((*decl)->type.scalar, (*decl)->space,
                                       (*decl)->type.const_qualified);
          expr.is_lvalue = false;
        } else {
          expr.type = (*decl)->type;
          expr.is_lvalue = !(*decl)->type.const_qualified ||
                           (*decl)->type.pointer;
          // Plain (non-pointer) const scalars are not assignable:
          if (!(*decl)->type.pointer && (*decl)->type.const_qualified) {
            expr.is_lvalue = false;
          } else {
            expr.is_lvalue = true;
          }
        }
        return expr.type;
      }
    }
  }
  if (auto constant = predefined_constant(expr.name)) {
    expr.kind = ExprKind::IntLit;
    expr.int_value = *constant;
    expr.type = Type::scalar_type(Scalar::UInt);
    return expr.type;
  }
  return error(expr, "use of undeclared identifier '" + expr.name + "'");
}

Type Sema::analyze_unary(Expr& expr) {
  const Type operand = analyze_expr(*expr.lhs);
  if (operand.is_void()) return operand;

  switch (expr.unary_op) {
    case UnaryOp::Plus:
    case UnaryOp::Neg:
      if (!operand.is_arithmetic()) {
        return error(expr, "unary +/- requires an arithmetic operand");
      }
      expr.type = Type::scalar_type(promote(operand.scalar));
      return expr.type;
    case UnaryOp::Not:
      if (!operand.is_arithmetic()) {
        return error(expr, "'!' requires a scalar operand");
      }
      expr.type = Type::scalar_type(Scalar::Int);
      return expr.type;
    case UnaryOp::BitNot:
      if (!operand.is_integer()) {
        return error(expr, "'~' requires an integer operand");
      }
      expr.type = Type::scalar_type(promote(operand.scalar));
      return expr.type;
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      if (!expr.lhs->is_lvalue) {
        return error(expr, "increment/decrement requires an lvalue");
      }
      if (!operand.is_arithmetic()) {
        return error(expr, "increment/decrement requires arithmetic type");
      }
      expr.type = operand;
      return expr.type;
  }
  throw InternalError("analyze_unary: bad op");
}

Type Sema::analyze_binary(Expr& expr) {
  const Type lt = analyze_expr(*expr.lhs);
  const Type rt = analyze_expr(*expr.rhs);
  if (lt.is_void() || rt.is_void()) return Type::void_type();

  const BinaryOp op = expr.binary_op;

  // Pointer arithmetic: ptr + int / ptr - int.
  if ((op == BinaryOp::Add || op == BinaryOp::Sub) &&
      (lt.pointer || rt.pointer)) {
    const Type& ptr = lt.pointer ? lt : rt;
    const Type& idx = lt.pointer ? rt : lt;
    if (rt.pointer && op == BinaryOp::Sub && lt.pointer) {
      return error(expr, "pointer difference is not supported");
    }
    if (!idx.is_integer()) {
      return error(expr, "pointer arithmetic requires an integer operand");
    }
    if (op == BinaryOp::Sub && rt.pointer) {
      return error(expr, "cannot subtract a pointer from an integer");
    }
    expr.type = ptr;
    return expr.type;
  }

  switch (op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
      if (!lt.is_arithmetic() || !rt.is_arithmetic()) {
        return error(expr, "arithmetic operator requires arithmetic operands");
      }
      expr.type = Type::scalar_type(arithmetic_result(lt.scalar, rt.scalar));
      return expr.type;
    case BinaryOp::Rem:
    case BinaryOp::And:
    case BinaryOp::Or:
    case BinaryOp::Xor:
      if (!lt.is_integer() || !rt.is_integer()) {
        return error(expr, "integer operator requires integer operands");
      }
      expr.type = Type::scalar_type(arithmetic_result(lt.scalar, rt.scalar));
      return expr.type;
    case BinaryOp::Shl:
    case BinaryOp::Shr:
      if (!lt.is_integer() || !rt.is_integer()) {
        return error(expr, "shift requires integer operands");
      }
      expr.type = Type::scalar_type(promote(lt.scalar));
      return expr.type;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (lt.pointer && rt.pointer) {
        if (op != BinaryOp::Eq && op != BinaryOp::Ne) {
          return error(expr, "only ==/!= are supported on pointers");
        }
      } else if (!lt.is_arithmetic() || !rt.is_arithmetic()) {
        return error(expr, "comparison requires arithmetic operands");
      }
      expr.type = Type::scalar_type(Scalar::Int);
      return expr.type;
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      if (!lt.is_arithmetic() || !rt.is_arithmetic()) {
        return error(expr, "logical operator requires scalar operands");
      }
      expr.type = Type::scalar_type(Scalar::Int);
      return expr.type;
  }
  throw InternalError("analyze_binary: bad op");
}

Type Sema::analyze_assign(Expr& expr) {
  const Type lt = analyze_expr(*expr.lhs);
  const Type rt = analyze_expr(*expr.rhs);
  if (lt.is_void() || rt.is_void()) return Type::void_type();

  if (!expr.lhs->is_lvalue) {
    return error(expr, "left side of assignment is not assignable");
  }
  if (lt.pointer) {
    if (expr.assign_op != AssignOp::None) {
      return error(expr, "compound assignment on pointers is not supported");
    }
    if (!pointer_convertible(rt, lt)) {
      return error(expr, "cannot assign " + rt.to_string() + " to " +
                             lt.to_string());
    }
  } else {
    if (!rt.is_arithmetic() && !rt.pointer) {
      return error(expr, "cannot assign " + rt.to_string());
    }
    if (rt.pointer) {
      return error(expr, "cannot assign a pointer to a scalar");
    }
    if (expr.assign_op != AssignOp::None) {
      // Compound: validate the implied binary operation.
      const bool int_only =
          expr.assign_op == AssignOp::Rem || expr.assign_op == AssignOp::And ||
          expr.assign_op == AssignOp::Or || expr.assign_op == AssignOp::Xor ||
          expr.assign_op == AssignOp::Shl || expr.assign_op == AssignOp::Shr;
      if (int_only && (!lt.is_integer() || !rt.is_integer())) {
        return error(expr, "compound integer assignment on non-integers");
      }
    }
  }
  expr.type = lt;
  expr.type.const_qualified = false;
  return expr.type;
}

Type Sema::analyze_conditional(Expr& expr) {
  const Type ct = analyze_expr(*expr.lhs);
  const Type tt = analyze_expr(*expr.rhs);
  const Type ft = analyze_expr(*expr.third);
  if (ct.is_void() || tt.is_void() || ft.is_void()) return Type::void_type();
  if (!ct.is_arithmetic()) {
    return error(expr, "?: condition must be scalar");
  }
  if (tt.pointer || ft.pointer) {
    if (tt != ft) return error(expr, "?: branch types do not match");
    expr.type = tt;
  } else {
    expr.type = Type::scalar_type(arithmetic_result(tt.scalar, ft.scalar));
  }
  return expr.type;
}

Type Sema::analyze_call(Expr& expr) {
  // Builtins take priority; user code may not shadow them (checked in run).
  if (auto builtin = find_builtin(expr.name)) {
    if (static_cast<int>(expr.args.size()) != builtin->arity) {
      return error(expr, "'" + expr.name + "' expects " +
                             std::to_string(builtin->arity) + " argument(s)");
    }
    expr.callee_builtin = static_cast<int>(builtin->id);

    Scalar common = Scalar::Int;
    bool first = true;
    for (auto& arg : expr.args) {
      const Type at = analyze_expr(*arg);
      if (at.is_void()) return Type::void_type();
      if (!at.is_arithmetic()) {
        return error(expr, "builtin '" + expr.name +
                               "' requires arithmetic arguments");
      }
      common = first ? promote(at.scalar)
                     : arithmetic_result(common, at.scalar);
      first = false;
    }

    switch (builtin->kind) {
      case BuiltinKind::WorkItem:
        expr.type = Type::scalar_type(Scalar::ULong);  // size_t
        return expr.type;
      case BuiltinKind::Barrier:
        if (current_fn_) current_fn_->uses_barrier = true;
        expr.type = Type::void_type();
        return Type::scalar_type(Scalar::Void);
      case BuiltinKind::MathFp:
        if (!is_floating(common)) common = Scalar::Float;
        if (common == Scalar::Double) current_fn_->uses_double = true;
        expr.type = Type::scalar_type(common);
        return expr.type;
      case BuiltinKind::Common:
        expr.type = Type::scalar_type(common);
        return expr.type;
      case BuiltinKind::IntOnly:
        if (!is_integer(common)) {
          return error(expr, "'" + expr.name + "' requires integer arguments");
        }
        expr.type = Type::scalar_type(common);
        return expr.type;
    }
    throw InternalError("analyze_call: bad builtin kind");
  }

  // User function.
  int index = -1;
  for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
    if (unit_.functions[i]->name == expr.name) {
      index = static_cast<int>(i);
      break;
    }
  }
  if (index < 0) {
    return error(expr, "call to undeclared function '" + expr.name + "'");
  }
  FunctionDecl& callee = *unit_.functions[index];
  if (callee.is_kernel) {
    return error(expr, "kernels cannot be called from device code");
  }
  if (expr.args.size() != callee.params.size()) {
    return error(expr, "'" + expr.name + "' expects " +
                           std::to_string(callee.params.size()) +
                           " argument(s), got " +
                           std::to_string(expr.args.size()));
  }
  for (std::size_t i = 0; i < expr.args.size(); ++i) {
    const Type at = analyze_expr(*expr.args[i]);
    const Type& pt = callee.params[i]->type;
    if (at.is_void()) return Type::void_type();
    if (pt.pointer) {
      if (!pointer_convertible(at, pt)) {
        return error(expr, "argument " + std::to_string(i + 1) + " of '" +
                               expr.name + "': cannot pass " + at.to_string() +
                               " as " + pt.to_string());
      }
    } else if (!at.is_arithmetic()) {
      return error(expr, "argument " + std::to_string(i + 1) + " of '" +
                             expr.name + "' must be arithmetic");
    }
  }
  expr.callee_function = index;
  if (current_fn_index_ >= 0) {
    call_edges_[static_cast<std::size_t>(current_fn_index_)].push_back(index);
  }
  expr.type = callee.return_type;
  return expr.type;
}

Type Sema::analyze_index(Expr& expr) {
  const Type base = analyze_expr(*expr.lhs);
  const Type idx = analyze_expr(*expr.rhs);
  if (base.is_void() || idx.is_void()) return Type::void_type();
  if (!base.pointer) {
    return error(expr, "subscripted value is not a pointer or array");
  }
  if (!idx.is_integer()) {
    return error(expr, "array index must be an integer");
  }
  expr.type = Type::scalar_type(base.scalar);
  expr.is_lvalue = !base.const_qualified &&
                   base.space != AddressSpace::Constant;
  return expr.type;
}

Type Sema::analyze_cast(Expr& expr) {
  const Type from = analyze_expr(*expr.lhs);
  if (from.is_void()) return Type::void_type();
  const Type to = expr.type;
  if (to.pointer) {
    if (!from.pointer) {
      return error(expr, "cannot cast non-pointer to pointer");
    }
    if (from.space != to.space) {
      return error(expr, "cannot cast across address spaces");
    }
  } else if (!from.is_arithmetic()) {
    return error(expr, "cannot cast " + from.to_string() + " to " +
                           to.to_string());
  }
  return expr.type;
}

void Sema::check_no_recursion() {
  // DFS cycle detection over the call graph. OpenCL C forbids recursion and
  // the VM depends on bounded call depth per work-item.
  enum class Mark : std::uint8_t { White, Grey, Black };
  std::vector<Mark> marks(unit_.functions.size(), Mark::White);

  std::function<bool(std::size_t)> visit = [&](std::size_t node) {
    marks[node] = Mark::Grey;
    for (int next : call_edges_[node]) {
      const auto n = static_cast<std::size_t>(next);
      if (marks[n] == Mark::Grey) return false;
      if (marks[n] == Mark::White && !visit(n)) return false;
    }
    marks[node] = Mark::Black;
    return true;
  };

  for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
    if (marks[i] == Mark::White && !visit(i)) {
      const auto& fn = *unit_.functions[i];
      diags_.error(fn.line, fn.column,
                   "recursion detected involving '" + fn.name +
                       "'; OpenCL C forbids recursive calls");
      return;
    }
  }

  // Propagate uses_barrier / uses_double transitively (callee -> caller).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
      for (int callee : call_edges_[i]) {
        auto& caller_fn = *unit_.functions[i];
        auto& callee_fn = *unit_.functions[static_cast<std::size_t>(callee)];
        if (callee_fn.uses_barrier && !caller_fn.uses_barrier) {
          caller_fn.uses_barrier = true;
          changed = true;
        }
        if (callee_fn.uses_double && !caller_fn.uses_double) {
          caller_fn.uses_double = true;
          changed = true;
        }
      }
    }
  }
}

}  // namespace hplrepro::clc
