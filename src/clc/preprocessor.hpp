#ifndef HPLREPRO_CLC_PREPROCESSOR_HPP
#define HPLREPRO_CLC_PREPROCESSOR_HPP

/// \file preprocessor.hpp
/// Minimal OpenCL C preprocessor: object-like `#define NAME tokens`,
/// `#undef`, and `#pragma` (ignored). This covers what real-world kernel
/// strings use for tile sizes and constants. Function-like macros and
/// conditional compilation are diagnosed as unsupported.

#include <string>
#include <string_view>
#include <vector>

#include "clc/diagnostics.hpp"
#include "clc/token.hpp"

namespace hplrepro::clc {

/// Strips preprocessor directives from `source` (keeping line numbering
/// intact) and returns the macro table. Diagnoses malformed directives.
struct MacroDef {
  std::string name;
  std::string replacement;  // raw token text
};

struct PreprocessResult {
  std::string text;              // source with directive lines blanked
  std::vector<MacroDef> macros;  // in definition order
};

PreprocessResult preprocess(std::string_view source, DiagnosticSink& diags);

/// Expands object-like macros in a token stream. Nested macros are
/// supported up to a fixed depth (cycle guard).
std::vector<Token> expand_macros(std::vector<Token> tokens,
                                 const std::vector<MacroDef>& macros,
                                 DiagnosticSink& diags);

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_PREPROCESSOR_HPP
