#include "clc/bytecode.hpp"

#include <sstream>

namespace hplrepro::clc {

const char* op_name(Op op) {
  switch (op) {
    case Op::Nop: return "nop";
    case Op::PushI: return "push.i";
    case Op::PushF: return "push.f";
    case Op::PushD: return "push.d";
    case Op::Dup: return "dup";
    case Op::Pop: return "pop";
    case Op::Swap: return "swap";
    case Op::LoadSlot: return "load.slot";
    case Op::StoreSlot: return "store.slot";
    case Op::PtrAdd: return "ptr.add";
    case Op::LocalPtr: return "ptr.local";
    case Op::PrivatePtr: return "ptr.private";
    case Op::LoadI8: return "load.i8";
    case Op::LoadU8: return "load.u8";
    case Op::LoadI16: return "load.i16";
    case Op::LoadU16: return "load.u16";
    case Op::LoadI32: return "load.i32";
    case Op::LoadU32: return "load.u32";
    case Op::LoadI64: return "load.i64";
    case Op::LoadF32: return "load.f32";
    case Op::LoadF64: return "load.f64";
    case Op::StoreI8: return "store.i8";
    case Op::StoreI16: return "store.i16";
    case Op::StoreI32: return "store.i32";
    case Op::StoreI64: return "store.i64";
    case Op::StoreF32: return "store.f32";
    case Op::StoreF64: return "store.f64";
    case Op::AddI: return "add.i";
    case Op::SubI: return "sub.i";
    case Op::MulI: return "mul.i";
    case Op::DivI: return "div.i";
    case Op::DivU: return "div.u";
    case Op::RemI: return "rem.i";
    case Op::RemU: return "rem.u";
    case Op::NegI: return "neg.i";
    case Op::AndI: return "and.i";
    case Op::OrI: return "or.i";
    case Op::XorI: return "xor.i";
    case Op::ShlI: return "shl.i";
    case Op::ShrI: return "shr.i";
    case Op::ShrU: return "shr.u";
    case Op::NotI: return "not.i";
    case Op::Sext8: return "sext.8";
    case Op::Sext16: return "sext.16";
    case Op::Sext32: return "sext.32";
    case Op::Zext8: return "zext.8";
    case Op::Zext16: return "zext.16";
    case Op::Zext32: return "zext.32";
    case Op::Zext1: return "zext.1";
    case Op::AddF: return "add.f";
    case Op::SubF: return "sub.f";
    case Op::MulF: return "mul.f";
    case Op::DivF: return "div.f";
    case Op::NegF: return "neg.f";
    case Op::AddD: return "add.d";
    case Op::SubD: return "sub.d";
    case Op::MulD: return "mul.d";
    case Op::DivD: return "div.d";
    case Op::NegD: return "neg.d";
    case Op::EqI: return "eq.i";
    case Op::NeI: return "ne.i";
    case Op::LtI: return "lt.i";
    case Op::LeI: return "le.i";
    case Op::GtI: return "gt.i";
    case Op::GeI: return "ge.i";
    case Op::LtU: return "lt.u";
    case Op::LeU: return "le.u";
    case Op::GtU: return "gt.u";
    case Op::GeU: return "ge.u";
    case Op::EqF: return "eq.f";
    case Op::NeF: return "ne.f";
    case Op::LtF: return "lt.f";
    case Op::LeF: return "le.f";
    case Op::GtF: return "gt.f";
    case Op::GeF: return "ge.f";
    case Op::EqD: return "eq.d";
    case Op::NeD: return "ne.d";
    case Op::LtD: return "lt.d";
    case Op::LeD: return "le.d";
    case Op::GtD: return "gt.d";
    case Op::GeD: return "ge.d";
    case Op::LNot: return "lnot";
    case Op::Bool: return "bool";
    case Op::I2F: return "cvt.i2f";
    case Op::I2D: return "cvt.i2d";
    case Op::U2F: return "cvt.u2f";
    case Op::U2D: return "cvt.u2d";
    case Op::F2I: return "cvt.f2i";
    case Op::D2I: return "cvt.d2i";
    case Op::F2U: return "cvt.f2u";
    case Op::D2U: return "cvt.d2u";
    case Op::F2D: return "cvt.f2d";
    case Op::D2F: return "cvt.d2f";
    case Op::Jmp: return "jmp";
    case Op::JmpIfZero: return "jz";
    case Op::JmpIfNonZero: return "jnz";
    case Op::Call: return "call";
    case Op::Ret: return "ret";
    case Op::RetVoid: return "ret.void";
    case Op::BarrierOp: return "barrier";
    case Op::BuiltinOp: return "builtin";
    case Op::WorkItemFn: return "workitem";
    case Op::LIdxI8: return "lidx.i8";
    case Op::LIdxU8: return "lidx.u8";
    case Op::LIdxI16: return "lidx.i16";
    case Op::LIdxU16: return "lidx.u16";
    case Op::LIdxI32: return "lidx.i32";
    case Op::LIdxU32: return "lidx.u32";
    case Op::LIdxI64: return "lidx.i64";
    case Op::LIdxF32: return "lidx.f32";
    case Op::LIdxF64: return "lidx.f64";
    case Op::SIdxI8: return "sidx.i8";
    case Op::SIdxI16: return "sidx.i16";
    case Op::SIdxI32: return "sidx.i32";
    case Op::SIdxI64: return "sidx.i64";
    case Op::SIdxF32: return "sidx.f32";
    case Op::SIdxF64: return "sidx.f64";
    case Op::MadI: return "mad.i";
    case Op::MadF: return "mad.f";
    case Op::MadD: return "mad.d";
  }
  return "?";
}

std::string disassemble(const CompiledFunction& fn) {
  std::ostringstream oss;
  oss << (fn.is_kernel ? "kernel " : "function ") << fn.name << " (slots="
      << fn.num_slots << ", private=" << fn.private_bytes
      << "B, local=" << fn.local_bytes << "B)\n";
  for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
    const Instr& in = fn.code[pc];
    oss << "  " << pc << ": " << op_name(in.op);
    switch (in.op) {
      case Op::PushI:
      case Op::LocalPtr:
      case Op::PrivatePtr:
        oss << ' ' << in.imm;
        break;
      case Op::PushF:
      case Op::PushD:
        oss << " <bits:" << in.imm << '>';
        break;
      case Op::LoadSlot:
      case Op::StoreSlot:
      case Op::PtrAdd:
      case Op::Jmp:
      case Op::JmpIfZero:
      case Op::JmpIfNonZero:
      case Op::Call:
      case Op::BuiltinOp:
      case Op::WorkItemFn:
      case Op::LIdxI8:
      case Op::LIdxU8:
      case Op::LIdxI16:
      case Op::LIdxU16:
      case Op::LIdxI32:
      case Op::LIdxU32:
      case Op::LIdxI64:
      case Op::LIdxF32:
      case Op::LIdxF64:
      case Op::SIdxI8:
      case Op::SIdxI16:
      case Op::SIdxI32:
      case Op::SIdxI64:
      case Op::SIdxF32:
      case Op::SIdxF64:
      case Op::MadI:
      case Op::MadF:
      case Op::MadD:
        oss << ' ' << in.a;
        break;
      default:
        break;
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace hplrepro::clc
