#include "clc/bytecode.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "clc/builtins.hpp"
#include "support/error.hpp"

namespace hplrepro::clc {

const char* op_name(Op op) {
  switch (op) {
    case Op::Nop: return "nop";
    case Op::PushI: return "push.i";
    case Op::PushF: return "push.f";
    case Op::PushD: return "push.d";
    case Op::Dup: return "dup";
    case Op::Pop: return "pop";
    case Op::Swap: return "swap";
    case Op::LoadSlot: return "load.slot";
    case Op::StoreSlot: return "store.slot";
    case Op::PtrAdd: return "ptr.add";
    case Op::LocalPtr: return "ptr.local";
    case Op::PrivatePtr: return "ptr.private";
    case Op::LoadI8: return "load.i8";
    case Op::LoadU8: return "load.u8";
    case Op::LoadI16: return "load.i16";
    case Op::LoadU16: return "load.u16";
    case Op::LoadI32: return "load.i32";
    case Op::LoadU32: return "load.u32";
    case Op::LoadI64: return "load.i64";
    case Op::LoadF32: return "load.f32";
    case Op::LoadF64: return "load.f64";
    case Op::StoreI8: return "store.i8";
    case Op::StoreI16: return "store.i16";
    case Op::StoreI32: return "store.i32";
    case Op::StoreI64: return "store.i64";
    case Op::StoreF32: return "store.f32";
    case Op::StoreF64: return "store.f64";
    case Op::AddI: return "add.i";
    case Op::SubI: return "sub.i";
    case Op::MulI: return "mul.i";
    case Op::DivI: return "div.i";
    case Op::DivU: return "div.u";
    case Op::RemI: return "rem.i";
    case Op::RemU: return "rem.u";
    case Op::NegI: return "neg.i";
    case Op::AndI: return "and.i";
    case Op::OrI: return "or.i";
    case Op::XorI: return "xor.i";
    case Op::ShlI: return "shl.i";
    case Op::ShrI: return "shr.i";
    case Op::ShrU: return "shr.u";
    case Op::NotI: return "not.i";
    case Op::Sext8: return "sext.8";
    case Op::Sext16: return "sext.16";
    case Op::Sext32: return "sext.32";
    case Op::Zext8: return "zext.8";
    case Op::Zext16: return "zext.16";
    case Op::Zext32: return "zext.32";
    case Op::Zext1: return "zext.1";
    case Op::AddF: return "add.f";
    case Op::SubF: return "sub.f";
    case Op::MulF: return "mul.f";
    case Op::DivF: return "div.f";
    case Op::NegF: return "neg.f";
    case Op::AddD: return "add.d";
    case Op::SubD: return "sub.d";
    case Op::MulD: return "mul.d";
    case Op::DivD: return "div.d";
    case Op::NegD: return "neg.d";
    case Op::EqI: return "eq.i";
    case Op::NeI: return "ne.i";
    case Op::LtI: return "lt.i";
    case Op::LeI: return "le.i";
    case Op::GtI: return "gt.i";
    case Op::GeI: return "ge.i";
    case Op::LtU: return "lt.u";
    case Op::LeU: return "le.u";
    case Op::GtU: return "gt.u";
    case Op::GeU: return "ge.u";
    case Op::EqF: return "eq.f";
    case Op::NeF: return "ne.f";
    case Op::LtF: return "lt.f";
    case Op::LeF: return "le.f";
    case Op::GtF: return "gt.f";
    case Op::GeF: return "ge.f";
    case Op::EqD: return "eq.d";
    case Op::NeD: return "ne.d";
    case Op::LtD: return "lt.d";
    case Op::LeD: return "le.d";
    case Op::GtD: return "gt.d";
    case Op::GeD: return "ge.d";
    case Op::LNot: return "lnot";
    case Op::Bool: return "bool";
    case Op::I2F: return "cvt.i2f";
    case Op::I2D: return "cvt.i2d";
    case Op::U2F: return "cvt.u2f";
    case Op::U2D: return "cvt.u2d";
    case Op::F2I: return "cvt.f2i";
    case Op::D2I: return "cvt.d2i";
    case Op::F2U: return "cvt.f2u";
    case Op::D2U: return "cvt.d2u";
    case Op::F2D: return "cvt.f2d";
    case Op::D2F: return "cvt.d2f";
    case Op::Jmp: return "jmp";
    case Op::JmpIfZero: return "jz";
    case Op::JmpIfNonZero: return "jnz";
    case Op::Call: return "call";
    case Op::Ret: return "ret";
    case Op::RetVoid: return "ret.void";
    case Op::BarrierOp: return "barrier";
    case Op::BuiltinOp: return "builtin";
    case Op::WorkItemFn: return "workitem";
    case Op::LIdxI8: return "lidx.i8";
    case Op::LIdxU8: return "lidx.u8";
    case Op::LIdxI16: return "lidx.i16";
    case Op::LIdxU16: return "lidx.u16";
    case Op::LIdxI32: return "lidx.i32";
    case Op::LIdxU32: return "lidx.u32";
    case Op::LIdxI64: return "lidx.i64";
    case Op::LIdxF32: return "lidx.f32";
    case Op::LIdxF64: return "lidx.f64";
    case Op::SIdxI8: return "sidx.i8";
    case Op::SIdxI16: return "sidx.i16";
    case Op::SIdxI32: return "sidx.i32";
    case Op::SIdxI64: return "sidx.i64";
    case Op::SIdxF32: return "sidx.f32";
    case Op::SIdxF64: return "sidx.f64";
    case Op::MadI: return "mad.i";
    case Op::MadF: return "mad.f";
    case Op::MadD: return "mad.d";
  }
  return "?";
}

std::string disassemble(const CompiledFunction& fn) {
  std::ostringstream oss;
  oss << (fn.is_kernel ? "kernel " : "function ") << fn.name << " (slots="
      << fn.num_slots << ", private=" << fn.private_bytes
      << "B, local=" << fn.local_bytes << "B)\n";
  for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
    const Instr& in = fn.code[pc];
    oss << "  " << pc << ": " << op_name(in.op);
    switch (in.op) {
      case Op::PushI:
      case Op::LocalPtr:
      case Op::PrivatePtr:
        oss << ' ' << in.imm;
        break;
      case Op::PushF:
      case Op::PushD:
        oss << " <bits:" << in.imm << '>';
        break;
      case Op::LoadSlot:
      case Op::StoreSlot:
      case Op::PtrAdd:
      case Op::Jmp:
      case Op::JmpIfZero:
      case Op::JmpIfNonZero:
      case Op::Call:
      case Op::BuiltinOp:
      case Op::WorkItemFn:
      case Op::LIdxI8:
      case Op::LIdxU8:
      case Op::LIdxI16:
      case Op::LIdxU16:
      case Op::LIdxI32:
      case Op::LIdxU32:
      case Op::LIdxI64:
      case Op::LIdxF32:
      case Op::LIdxF64:
      case Op::SIdxI8:
      case Op::SIdxI16:
      case Op::SIdxI32:
      case Op::SIdxI64:
      case Op::SIdxF32:
      case Op::SIdxF64:
      case Op::MadI:
      case Op::MadF:
      case Op::MadD:
        oss << ' ' << in.a;
        break;
      default:
        break;
    }
    oss << '\n';
  }
  return oss.str();
}

OpClass op_class_of(Op op) {
  switch (op) {
    case Op::AddI: case Op::SubI: case Op::MulI: case Op::DivI: case Op::DivU:
    case Op::RemI: case Op::RemU: case Op::NegI: case Op::AndI: case Op::OrI:
    case Op::XorI: case Op::ShlI: case Op::ShrI: case Op::ShrU: case Op::NotI:
    case Op::EqI: case Op::NeI: case Op::LtI: case Op::LeI: case Op::GtI:
    case Op::GeI: case Op::LtU: case Op::LeU: case Op::GtU: case Op::GeU:
    case Op::PtrAdd:
      return OpClass::IntAlu;
    case Op::AddF: case Op::SubF: case Op::MulF: case Op::DivF: case Op::NegF:
    case Op::EqF: case Op::NeF: case Op::LtF: case Op::LeF: case Op::GtF:
    case Op::GeF:
      return OpClass::FloatAlu;
    case Op::AddD: case Op::SubD: case Op::MulD: case Op::DivD: case Op::NegD:
    case Op::EqD: case Op::NeD: case Op::LtD: case Op::LeD: case Op::GtD:
    case Op::GeD:
      return OpClass::DoubleAlu;
    case Op::MadI:
      return OpClass::IntAlu;
    case Op::MadF:
      return OpClass::FloatAlu;
    case Op::MadD:
      return OpClass::DoubleAlu;
    case Op::LoadI8: case Op::LoadU8: case Op::LoadI16: case Op::LoadU16:
    case Op::LoadI32: case Op::LoadU32: case Op::LoadI64: case Op::LoadF32:
    case Op::LoadF64: case Op::StoreI8: case Op::StoreI16: case Op::StoreI32:
    case Op::StoreI64: case Op::StoreF32: case Op::StoreF64:
    case Op::LIdxI8: case Op::LIdxU8: case Op::LIdxI16: case Op::LIdxU16:
    case Op::LIdxI32: case Op::LIdxU32: case Op::LIdxI64: case Op::LIdxF32:
    case Op::LIdxF64: case Op::SIdxI8: case Op::SIdxI16: case Op::SIdxI32:
    case Op::SIdxI64: case Op::SIdxF32: case Op::SIdxF64:
      return OpClass::GlobalMem;  // refined at run time by address space
    default:
      return OpClass::Control;
  }
}

const char* reg_op_name(RegOp op) {
  switch (op) {
#define HPLREPRO_REG_NAME(name) \
  case RegOp::name:             \
    return #name;
    HPLREPRO_REG_OPS(HPLREPRO_REG_NAME)
#undef HPLREPRO_REG_NAME
  }
  return "?";
}

std::string disassemble_reg(const RegFunction& fn) {
  std::ostringstream oss;
  oss << "regfn (regs=" << fn.num_regs << ", params=" << fn.num_params
      << ", private=" << fn.private_bytes << "B)\n";
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const RegBlock& blk = fn.blocks[b];
    oss << " block " << b << " @" << blk.start << " (fuel=" << blk.fuel
        << ")\n";
    const std::uint32_t end = b + 1 < fn.blocks.size()
                                  ? fn.blocks[b + 1].start
                                  : static_cast<std::uint32_t>(fn.code.size());
    for (std::uint32_t i = blk.start; i < end; ++i) {
      const RegInstr& in = fn.code[i];
      oss << "  " << i << ": " << reg_op_name(in.op) << " d=" << in.dst
          << " a=" << in.a << " b=" << in.b << " c=" << in.c
          << " aux=" << in.aux << " imm=" << in.imm << '\n';
    }
  }
  return oss.str();
}

// --- Lowering: stack form -> register form ----------------------------------

namespace {

bool is_jump_op(Op op) {
  return op == Op::Jmp || op == Op::JmpIfZero || op == Op::JmpIfNonZero;
}
bool is_terminator_op(Op op) {
  return is_jump_op(op) || op == Op::Ret || op == Op::RetVoid ||
         op == Op::BarrierOp;
}
bool in_range(Op op, Op lo, Op hi) { return op >= lo && op <= hi; }

/// Net operand-stack effect of one stack instruction: values popped and
/// pushed. Mirrors the VM's semantics op by op.
struct StackEffect {
  int pops = 0;
  int pushes = 0;
};

StackEffect stack_effect_of(const Instr& in, const Module& module,
                            const std::vector<char>& returns_value) {
  switch (in.op) {
    case Op::Nop: return {0, 0};
    case Op::PushI: case Op::PushF: case Op::PushD:
    case Op::LoadSlot: case Op::LocalPtr: case Op::PrivatePtr:
      return {0, 1};
    case Op::Dup: return {1, 2};
    case Op::Swap: return {2, 2};
    case Op::Pop: case Op::StoreSlot: return {1, 0};
    case Op::PtrAdd: return {2, 1};
    case Op::Jmp: return {0, 0};
    case Op::JmpIfZero: case Op::JmpIfNonZero: return {1, 0};
    case Op::Call: {
      const auto& callee = module.functions[static_cast<std::size_t>(in.a)];
      const int nargs = static_cast<int>(callee.params.size());
      return {nargs, returns_value[static_cast<std::size_t>(in.a)] ? 1 : 0};
    }
    case Op::Ret: return {1, 0};
    case Op::RetVoid: return {0, 0};
    case Op::BarrierOp: return {1, 0};
    case Op::WorkItemFn: return {1, 1};
    case Op::BuiltinOp:
      return {builtin_info(static_cast<Builtin>(in.a)).arity, 1};
    case Op::MadI: case Op::MadF: case Op::MadD: return {3, 1};
    default:
      if (in_range(in.op, Op::LoadI8, Op::LoadF64)) return {1, 1};
      if (in_range(in.op, Op::StoreI8, Op::StoreF64)) return {2, 0};
      if (in_range(in.op, Op::LIdxI8, Op::LIdxF64)) return {2, 1};
      if (in_range(in.op, Op::SIdxI8, Op::SIdxF64)) return {3, 0};
      switch (in.op) {
        case Op::NegI: case Op::NotI: case Op::NegF: case Op::NegD:
        case Op::LNot: case Op::Bool:
        case Op::Sext8: case Op::Sext16: case Op::Sext32:
        case Op::Zext8: case Op::Zext16: case Op::Zext32: case Op::Zext1:
        case Op::I2F: case Op::I2D: case Op::U2F: case Op::U2D:
        case Op::F2I: case Op::D2I: case Op::F2U: case Op::D2U:
        case Op::F2D: case Op::D2F:
          return {1, 1};
        default:
          // Everything else is a binary ALU/compare op.
          return {2, 1};
      }
  }
}

/// Maps a stack opcode with a direct register counterpart (same semantics,
/// operands in registers) to its RegOp. Ops needing special handling
/// (stack shuffling, control flow, calls...) are dispatched explicitly in
/// the lowering loop and never reach this table.
RegOp direct_reg_op(Op op) {
  switch (op) {
#define HPLREPRO_DIRECT(name) \
  case Op::name:              \
    return RegOp::name;
    HPLREPRO_DIRECT(LoadI8) HPLREPRO_DIRECT(LoadU8) HPLREPRO_DIRECT(LoadI16)
    HPLREPRO_DIRECT(LoadU16) HPLREPRO_DIRECT(LoadI32) HPLREPRO_DIRECT(LoadU32)
    HPLREPRO_DIRECT(LoadI64) HPLREPRO_DIRECT(LoadF32) HPLREPRO_DIRECT(LoadF64)
    HPLREPRO_DIRECT(StoreI8) HPLREPRO_DIRECT(StoreI16)
    HPLREPRO_DIRECT(StoreI32) HPLREPRO_DIRECT(StoreI64)
    HPLREPRO_DIRECT(StoreF32) HPLREPRO_DIRECT(StoreF64)
    HPLREPRO_DIRECT(LIdxI8) HPLREPRO_DIRECT(LIdxU8) HPLREPRO_DIRECT(LIdxI16)
    HPLREPRO_DIRECT(LIdxU16) HPLREPRO_DIRECT(LIdxI32) HPLREPRO_DIRECT(LIdxU32)
    HPLREPRO_DIRECT(LIdxI64) HPLREPRO_DIRECT(LIdxF32) HPLREPRO_DIRECT(LIdxF64)
    HPLREPRO_DIRECT(SIdxI8) HPLREPRO_DIRECT(SIdxI16) HPLREPRO_DIRECT(SIdxI32)
    HPLREPRO_DIRECT(SIdxI64) HPLREPRO_DIRECT(SIdxF32)
    HPLREPRO_DIRECT(SIdxF64)
    HPLREPRO_DIRECT(AddI) HPLREPRO_DIRECT(SubI) HPLREPRO_DIRECT(MulI)
    HPLREPRO_DIRECT(DivI) HPLREPRO_DIRECT(DivU) HPLREPRO_DIRECT(RemI)
    HPLREPRO_DIRECT(RemU) HPLREPRO_DIRECT(AndI) HPLREPRO_DIRECT(OrI)
    HPLREPRO_DIRECT(XorI) HPLREPRO_DIRECT(ShlI) HPLREPRO_DIRECT(ShrI)
    HPLREPRO_DIRECT(ShrU)
    HPLREPRO_DIRECT(AddF) HPLREPRO_DIRECT(SubF) HPLREPRO_DIRECT(MulF)
    HPLREPRO_DIRECT(DivF) HPLREPRO_DIRECT(AddD) HPLREPRO_DIRECT(SubD)
    HPLREPRO_DIRECT(MulD) HPLREPRO_DIRECT(DivD)
    HPLREPRO_DIRECT(EqI) HPLREPRO_DIRECT(NeI) HPLREPRO_DIRECT(LtI)
    HPLREPRO_DIRECT(LeI) HPLREPRO_DIRECT(GtI) HPLREPRO_DIRECT(GeI)
    HPLREPRO_DIRECT(LtU) HPLREPRO_DIRECT(LeU) HPLREPRO_DIRECT(GtU)
    HPLREPRO_DIRECT(GeU)
    HPLREPRO_DIRECT(EqF) HPLREPRO_DIRECT(NeF) HPLREPRO_DIRECT(LtF)
    HPLREPRO_DIRECT(LeF) HPLREPRO_DIRECT(GtF) HPLREPRO_DIRECT(GeF)
    HPLREPRO_DIRECT(EqD) HPLREPRO_DIRECT(NeD) HPLREPRO_DIRECT(LtD)
    HPLREPRO_DIRECT(LeD) HPLREPRO_DIRECT(GtD) HPLREPRO_DIRECT(GeD)
    HPLREPRO_DIRECT(NegI) HPLREPRO_DIRECT(NotI) HPLREPRO_DIRECT(NegF)
    HPLREPRO_DIRECT(NegD) HPLREPRO_DIRECT(LNot) HPLREPRO_DIRECT(Bool)
    HPLREPRO_DIRECT(Sext8) HPLREPRO_DIRECT(Sext16) HPLREPRO_DIRECT(Sext32)
    HPLREPRO_DIRECT(Zext8) HPLREPRO_DIRECT(Zext16) HPLREPRO_DIRECT(Zext32)
    HPLREPRO_DIRECT(Zext1)
    HPLREPRO_DIRECT(I2F) HPLREPRO_DIRECT(I2D) HPLREPRO_DIRECT(U2F)
    HPLREPRO_DIRECT(U2D) HPLREPRO_DIRECT(F2I) HPLREPRO_DIRECT(D2I)
    HPLREPRO_DIRECT(F2U) HPLREPRO_DIRECT(D2U) HPLREPRO_DIRECT(F2D)
    HPLREPRO_DIRECT(D2F)
    HPLREPRO_DIRECT(MadI) HPLREPRO_DIRECT(MadF) HPLREPRO_DIRECT(MadD)
#undef HPLREPRO_DIRECT
    default:
      throw InternalError("direct_reg_op: not a direct opcode");
  }
}

/// Lowers one function. Throws LowerFailure (below) on shapes the stack
/// simulation cannot express; the caller then falls back to the stack
/// interpreter for the whole module.
struct LowerFailure {
  std::string why;
};

class FunctionLowerer {
public:
  FunctionLowerer(const Module& module, int fn_index,
                  const std::vector<char>& returns_value)
      : module_(module),
        fn_(module.functions[static_cast<std::size_t>(fn_index)]),
        fn_index_(fn_index),
        returns_value_(returns_value),
        num_slots_(fn_.num_slots) {}

  RegFunction lower() {
    find_leaders();
    number_blocks();
    infer_depths();
    out_.num_params = static_cast<std::uint16_t>(fn_.params.size());
    out_.private_bytes = fn_.private_bytes;
    emit_blocks();
    const std::size_t num_regs =
        static_cast<std::size_t>(num_slots_) + max_depth_ + 1;
    if (num_regs > 0xFFFF) fail("function needs too many registers");
    out_.num_regs = static_cast<std::uint16_t>(num_regs);
    return std::move(out_);
  }

private:
  [[noreturn]] void fail(const std::string& why) const {
    throw LowerFailure{fn_.name + ": " + why};
  }

  // --- Block structure ------------------------------------------------------

  void find_leaders() {
    const std::size_t n = fn_.code.size();
    leaders_.assign(n + 1, 0);
    leaders_[0] = 1;
    leaders_[n] = 1;  // synthetic exit block (jump-to-end / fall-off-end)
    for (std::size_t pc = 0; pc < n; ++pc) {
      const Instr& in = fn_.code[pc];
      if (is_jump_op(in.op)) {
        const auto target = static_cast<std::size_t>(in.a);
        if (target > n) fail("jump target out of range");
        leaders_[target] = 1;
      }
      if (is_terminator_op(in.op) && pc + 1 <= n) leaders_[pc + 1] = 1;
    }
  }

  void number_blocks() {
    const std::size_t n = fn_.code.size();
    block_of_pc_.assign(n + 1, -1);
    int id = -1;
    for (std::size_t pc = 0; pc <= n; ++pc) {
      if (leaders_[pc]) {
        ++id;
        block_starts_.push_back(pc);
      }
      block_of_pc_[pc] = id;
    }
    num_blocks_ = id + 1;
    exit_block_ = block_of_pc_[n];
    if (num_blocks_ > 0xFFFF) fail("function has too many basic blocks");
  }

  /// End pc (exclusive) of block `b` in the stack code.
  std::size_t block_end(int b) const {
    return b + 1 < num_blocks_ ? block_starts_[static_cast<std::size_t>(b) + 1]
                               : fn_.code.size();
  }

  // Worklist dataflow: operand-stack depth at each block entry. The stack
  // machine is statically typed per path, and codegen only merges paths at
  // equal depth (e.g. `&&`/`||` join at depth 1), so a conflicting depth
  // means code we cannot lower.
  void infer_depths() {
    depth_in_.assign(static_cast<std::size_t>(num_blocks_), -1);
    depth_in_[0] = 0;
    std::deque<int> work{0};
    auto join = [&](int block, int depth) {
      if (block == exit_block_) return;  // exit ignores leftover depth
      int& have = depth_in_[static_cast<std::size_t>(block)];
      if (have < 0) {
        have = depth;
        work.push_back(block);
      } else if (have != depth) {
        fail("operand-stack depth mismatch at block join");
      }
    };
    while (!work.empty()) {
      const int b = work.front();
      work.pop_front();
      int depth = depth_in_[static_cast<std::size_t>(b)];
      max_depth_ = std::max(max_depth_, depth);
      const std::size_t end = block_end(b);
      bool terminated = false;
      for (std::size_t pc = block_starts_[static_cast<std::size_t>(b)];
           pc < end; ++pc) {
        const Instr& in = fn_.code[pc];
        const StackEffect eff = stack_effect_of(in, module_, returns_value_);
        if (depth < eff.pops) fail("operand-stack underflow");
        depth += eff.pushes - eff.pops;
        max_depth_ = std::max(max_depth_, depth + eff.pops);
        switch (in.op) {
          case Op::Jmp:
            join(block_of_pc_[static_cast<std::size_t>(in.a)], depth);
            terminated = true;
            break;
          case Op::JmpIfZero:
          case Op::JmpIfNonZero:
            join(block_of_pc_[static_cast<std::size_t>(in.a)], depth);
            join(block_of_pc_[pc + 1], depth);
            terminated = true;
            break;
          case Op::Ret:
          case Op::RetVoid:
            terminated = true;
            break;
          case Op::BarrierOp:
            join(block_of_pc_[pc + 1], depth);
            terminated = true;
            break;
          default:
            break;
        }
        if (terminated) break;
      }
      if (!terminated) {
        // Fallthrough into the next leader (or off the end of the code).
        join(block_of_pc_[end], depth);
      }
    }
  }

  // --- Emission -------------------------------------------------------------
  //
  // During emission the abstract operand stack is a vector of register
  // descriptors, one per stack position p. Invariant: st_[p] is either a
  // slot register (< num_slots: position p aliases that slot, saving the
  // LoadSlot copy) or position p's own "home" register (num_slots + p).
  // Home registers are positional, so materializing the stack (before
  // branches/calls) only ever copies slot registers into home registers —
  // no parallel-copy cycles can arise.

  std::uint16_t home(int pos) const {
    return static_cast<std::uint16_t>(num_slots_ + pos);
  }
  std::uint16_t scratch() const {
    return static_cast<std::uint16_t>(num_slots_ + max_depth_);
  }
  bool is_slot_reg(std::uint16_t r) const {
    return r < static_cast<std::uint16_t>(num_slots_);
  }

  void emit(RegOp op, std::uint16_t dst = 0, std::uint16_t a = 0,
            std::uint16_t b = 0, std::uint16_t c = 0, std::int32_t aux = 0,
            std::int64_t imm = 0) {
    out_.code.push_back(RegInstr{op, dst, a, b, c, aux, imm});
  }

  void mov(std::uint16_t dst, std::uint16_t src) {
    if (dst != src) emit(RegOp::Mov, dst, src);
  }

  int depth() const { return static_cast<int>(st_.size()); }

  std::uint16_t pop_src() {
    const std::uint16_t r = st_.back();
    st_.pop_back();
    return r;
  }

  /// Copies every slot-aliasing position into its home register. After
  /// this the stack is position-addressable (branch joins, call argument
  /// windows).
  void materialize_all() {
    for (int p = 0; p < depth(); ++p) {
      if (st_[static_cast<std::size_t>(p)] != home(p)) {
        mov(home(p), st_[static_cast<std::size_t>(p)]);
        st_[static_cast<std::size_t>(p)] = home(p);
      }
    }
  }

  std::int32_t pc_key_at(std::size_t pc) const {
    return static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(fn_index_) << 20) |
        static_cast<std::uint32_t>(pc));
  }

  std::int32_t branch_block(std::size_t target_pc) const {
    return block_of_pc_[target_pc];
  }

  void emit_blocks() {
    out_.blocks.assign(static_cast<std::size_t>(num_blocks_), RegBlock{});
    for (int b = 0; b < num_blocks_; ++b) {
      RegBlock& blk = out_.blocks[static_cast<std::size_t>(b)];
      blk.start = static_cast<std::uint32_t>(out_.code.size());
      if (b == exit_block_) {
        // Synthetic exit: fell off the end of a void function.
        emit(RegOp::RetVoid);
        continue;
      }
      if (depth_in_[static_cast<std::size_t>(b)] < 0) {
        // Unreachable block: nothing can branch here (branches only come
        // from reachable code); keep an empty placeholder.
        emit(RegOp::RetVoid);
        continue;
      }
      emit_block(b, blk);
    }
  }

  void emit_block(int b, RegBlock& blk) {
    st_.clear();
    for (int p = 0; p < depth_in_[static_cast<std::size_t>(b)]; ++p) {
      st_.push_back(home(p));
    }
    const std::size_t end = block_end(b);
    bool terminated = false;
    for (std::size_t pc = block_starts_[static_cast<std::size_t>(b)];
         pc < end && !terminated; ++pc) {
      const Instr& in = fn_.code[pc];
      account(in, blk);
      terminated = lower_instr(in, pc);
    }
    if (!terminated) {
      // Explicit fallthrough branch: every block entry passes through
      // enter_block() so accounting stays uniform.
      materialize_all();
      emit(RegOp::Br, 0, 0, 0, 0, branch_block(end));
    }
  }

  /// Adds one stack instruction to the block's histogram, replicating the
  /// stack interpreter's counting exactly: one bump from the static
  /// OpClass (memory ops fall into Control there), an extra bump for
  /// BuiltinOp's operand class, fused_ops for superinstructions.
  void account(const Instr& in, RegBlock& blk) {
    blk.fuel += 1;
    switch (op_class_of(in.op)) {
      case OpClass::IntAlu: ++blk.int_ops; break;
      case OpClass::FloatAlu: ++blk.float_ops; break;
      case OpClass::DoubleAlu: ++blk.double_ops; break;
      default: ++blk.control_ops; break;
    }
    if (in.op == Op::BuiltinOp) {
      if (is_transcendental(static_cast<Builtin>(in.a))) {
        ++blk.special_ops;
      } else if (in.imm == 1) {
        ++blk.float_ops;
      } else if (in.imm == 2) {
        ++blk.double_ops;
      } else {
        ++blk.int_ops;
      }
    }
    if (in_range(in.op, Op::LIdxI8, Op::SIdxF64) || in.op == Op::MadI ||
        in.op == Op::MadF || in.op == Op::MadD) {
      ++blk.fused_ops;
    }
  }

  /// Lowers one stack instruction; returns true if it terminated the block.
  bool lower_instr(const Instr& in, std::size_t pc) {
    switch (in.op) {
      case Op::Nop:
        return false;

      case Op::PushI: {
        const std::uint16_t dst = home(depth());
        emit(RegOp::Const, dst, 0, 0, 0, 0, in.imm);
        st_.push_back(dst);
        return false;
      }
      case Op::PushF: {
        // Low 32 bits are the float's bits; upper bytes zero (never read).
        const std::uint16_t dst = home(depth());
        emit(RegOp::Const, dst, 0, 0, 0, 0,
             static_cast<std::int64_t>(
                 static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.imm))));
        st_.push_back(dst);
        return false;
      }
      case Op::PushD: {
        const std::uint16_t dst = home(depth());
        emit(RegOp::Const, dst, 0, 0, 0, 0, in.imm);
        st_.push_back(dst);
        return false;
      }
      case Op::LocalPtr: {
        const std::uint16_t dst = home(depth());
        emit(RegOp::Const, dst, 0, 0, 0, 0,
             static_cast<std::int64_t>(make_pointer(
                 PtrSpace::Local, 0, static_cast<std::uint64_t>(in.imm))));
        st_.push_back(dst);
        return false;
      }
      case Op::PrivatePtr: {
        const std::uint16_t dst = home(depth());
        emit(RegOp::PrivPtr, dst, 0, 0, 0, 0, in.imm);
        st_.push_back(dst);
        return false;
      }

      case Op::Dup: {
        const std::uint16_t src = st_.back();
        if (is_slot_reg(src)) {
          st_.push_back(src);  // both positions alias the slot
        } else {
          const std::uint16_t dst = home(depth());
          mov(dst, src);
          st_.push_back(dst);
        }
        return false;
      }
      case Op::Pop:
        st_.pop_back();
        return false;
      case Op::Swap: {
        const int d = depth();
        std::uint16_t& x = st_[static_cast<std::size_t>(d) - 2];
        std::uint16_t& y = st_[static_cast<std::size_t>(d) - 1];
        const bool x_home = !is_slot_reg(x);
        const bool y_home = !is_slot_reg(y);
        if (x_home && y_home) {
          mov(scratch(), x);
          mov(x, y);
          mov(y, scratch());
        } else if (x_home) {
          mov(home(d - 1), x);  // x's value moves up to position d-1
          const std::uint16_t old_y = y;
          y = home(d - 1);
          x = old_y;
        } else if (y_home) {
          mov(home(d - 2), y);  // y's value moves down to position d-2
          const std::uint16_t old_x = x;
          x = home(d - 2);
          y = old_x;
        } else {
          std::swap(x, y);  // both are slot aliases: pure renaming
        }
        return false;
      }

      case Op::LoadSlot: {
        st_.push_back(static_cast<std::uint16_t>(in.a));
        return false;
      }
      case Op::StoreSlot: {
        const std::uint16_t slot = static_cast<std::uint16_t>(in.a);
        const std::uint16_t src = pop_src();
        // Positions still aliasing this slot keep its current value.
        for (int p = 0; p < depth(); ++p) {
          if (st_[static_cast<std::size_t>(p)] == slot) {
            mov(home(p), slot);
            st_[static_cast<std::size_t>(p)] = home(p);
          }
        }
        mov(slot, src);
        return false;
      }

      case Op::PtrAdd: {
        const std::uint16_t index = pop_src();
        const std::uint16_t ptr = pop_src();
        const std::uint16_t dst = home(depth());
        emit(RegOp::PtrAdd, dst, ptr, index, 0, 0, in.a);
        st_.push_back(dst);
        return false;
      }

      case Op::Jmp:
        materialize_all();
        emit(RegOp::Br, 0, 0, 0, 0,
             branch_block(static_cast<std::size_t>(in.a)));
        return true;
      case Op::JmpIfZero: {
        const std::uint16_t cond = pop_src();
        materialize_all();  // writes only home regs below the condition
        emit(RegOp::BrIf,
             static_cast<std::uint16_t>(branch_block(pc + 1)), cond, 0, 0,
             branch_block(static_cast<std::size_t>(in.a)));
        return true;
      }
      case Op::JmpIfNonZero: {
        const std::uint16_t cond = pop_src();
        materialize_all();
        emit(RegOp::BrIf,
             static_cast<std::uint16_t>(
                 branch_block(static_cast<std::size_t>(in.a))),
             cond, 0, 0, branch_block(pc + 1));
        return true;
      }

      case Op::Call: {
        const auto& callee = module_.functions[static_cast<std::size_t>(in.a)];
        const int nargs = static_cast<int>(callee.params.size());
        materialize_all();  // args land contiguous at home(d-nargs..d-1)
        for (int i = 0; i < nargs; ++i) st_.pop_back();
        const std::uint16_t base = home(depth());
        const bool rets = returns_value_[static_cast<std::size_t>(in.a)] != 0;
        emit(RegOp::Call, base, base, rets ? 1 : 0, 0, in.a);
        if (rets) st_.push_back(base);
        return false;
      }
      case Op::Ret: {
        const std::uint16_t src = pop_src();
        emit(RegOp::Ret, 0, src);
        return true;
      }
      case Op::RetVoid:
        emit(RegOp::RetVoid);
        return true;

      case Op::BarrierOp: {
        const std::uint16_t flags = pop_src();
        materialize_all();
        emit(RegOp::Barrier, 0, flags, 0, 0, branch_block(pc + 1));
        return true;
      }

      case Op::WorkItemFn: {
        const std::uint16_t dim = pop_src();
        const std::uint16_t dst = home(depth());
        emit(RegOp::WorkItem, dst, dim, 0, 0, in.a);
        st_.push_back(dst);
        return false;
      }

      case Op::BuiltinOp: {
        const auto id = static_cast<Builtin>(in.a);
        const int arity = builtin_info(id).arity;
        const int d = depth();
        // Arguments must be contiguous registers: materialize them.
        for (int i = 0; i < arity; ++i) {
          const int p = d - arity + i;
          if (st_[static_cast<std::size_t>(p)] != home(p)) {
            mov(home(p), st_[static_cast<std::size_t>(p)]);
            st_[static_cast<std::size_t>(p)] = home(p);
          }
        }
        for (int i = 0; i < arity; ++i) st_.pop_back();
        const std::uint16_t base = home(depth());
        emit(RegOp::BuiltinFn, base, base, static_cast<std::uint16_t>(arity),
             static_cast<std::uint16_t>(in.imm), in.a);
        st_.push_back(base);
        return false;
      }

      case Op::MadI:
      case Op::MadF:
      case Op::MadD: {
        // a=0: stack is x, y, z (z on top), result (x*y)+z.
        // a=1: stack is z, x, y (y on top), result z+(x*y).
        std::uint16_t x, y, z;
        if (in.a == 0) {
          z = pop_src();
          y = pop_src();
          x = pop_src();
        } else {
          y = pop_src();
          x = pop_src();
          z = pop_src();
        }
        const std::uint16_t dst = home(depth());
        emit(direct_reg_op(in.op), dst, x, y, z, in.a);
        st_.push_back(dst);
        return false;
      }

      default: {
        const StackEffect eff = stack_effect_of(in, module_, returns_value_);
        if (in_range(in.op, Op::LoadI8, Op::LoadF64)) {
          const std::uint16_t ptr = pop_src();
          const std::uint16_t dst = home(depth());
          emit(direct_reg_op(in.op), dst, ptr, 0, 0, pc_key_at(pc));
          st_.push_back(dst);
        } else if (in_range(in.op, Op::StoreI8, Op::StoreF64)) {
          const std::uint16_t value = pop_src();
          const std::uint16_t ptr = pop_src();
          emit(direct_reg_op(in.op), 0, ptr, value, 0, pc_key_at(pc));
        } else if (in_range(in.op, Op::LIdxI8, Op::LIdxF64)) {
          const std::uint16_t index = pop_src();
          const std::uint16_t ptr = pop_src();
          const std::uint16_t dst = home(depth());
          emit(direct_reg_op(in.op), dst, ptr, index, 0, pc_key_at(pc), in.a);
          st_.push_back(dst);
        } else if (in_range(in.op, Op::SIdxI8, Op::SIdxF64)) {
          const std::uint16_t value = pop_src();
          const std::uint16_t index = pop_src();
          const std::uint16_t ptr = pop_src();
          emit(direct_reg_op(in.op), 0, ptr, index, value, pc_key_at(pc),
               in.a);
        } else if (eff.pops == 2 && eff.pushes == 1) {
          const std::uint16_t rhs = pop_src();
          const std::uint16_t lhs = pop_src();
          const std::uint16_t dst = home(depth());
          emit(direct_reg_op(in.op), dst, lhs, rhs);
          st_.push_back(dst);
        } else if (eff.pops == 1 && eff.pushes == 1) {
          const std::uint16_t src = pop_src();
          const std::uint16_t dst = home(depth());
          emit(direct_reg_op(in.op), dst, src);
          st_.push_back(dst);
        } else {
          fail("unhandled opcode in lowering");
        }
        return false;
      }
    }
  }

  const Module& module_;
  const CompiledFunction& fn_;
  int fn_index_;
  const std::vector<char>& returns_value_;
  RegFunction out_;
  std::vector<char> leaders_;
  std::vector<int> block_of_pc_;
  std::vector<std::size_t> block_starts_;
  std::vector<int> depth_in_;
  std::vector<std::uint16_t> st_;
  int num_blocks_ = 0;
  int exit_block_ = 0;
  int num_slots_ = 0;
  int max_depth_ = 0;
};

}  // namespace

std::string lower_module(Module& module) {
  // Whether each function leaves a value on the stack when called (scan
  // for Op::Ret; functions are single-exit per kind, matching the VM's
  // Call/Ret protocol).
  std::vector<char> returns_value(module.functions.size(), 0);
  for (std::size_t i = 0; i < module.functions.size(); ++i) {
    for (const Instr& in : module.functions[i].code) {
      if (in.op == Op::Ret) {
        returns_value[i] = 1;
        break;
      }
    }
  }

  module.reg_functions.clear();
  try {
    for (std::size_t i = 0; i < module.functions.size(); ++i) {
      FunctionLowerer lowerer(module, static_cast<int>(i), returns_value);
      module.reg_functions.push_back(lowerer.lower());
    }
  } catch (const LowerFailure& failure) {
    module.reg_functions.clear();
    return "note: register lowering failed (" + failure.why +
           "); falling back to the stack interpreter";
  }
  return "";
}

}  // namespace hplrepro::clc
