#include "clc/optimizer.hpp"

#include <bit>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "clc/builtins.hpp"
#include "clc/fold.hpp"

namespace hplrepro::clc {

namespace {

constexpr int kNoProducer = -1;

bool is_jump(Op op) {
  return op == Op::Jmp || op == Op::JmpIfZero || op == Op::JmpIfNonZero;
}

bool is_compare(Op op) { return op >= Op::EqI && op <= Op::GeD; }

bool is_binary(Op op) {
  switch (op) {
    case Op::AddI: case Op::SubI: case Op::MulI: case Op::DivI: case Op::DivU:
    case Op::RemI: case Op::RemU: case Op::AndI: case Op::OrI: case Op::XorI:
    case Op::ShlI: case Op::ShrI: case Op::ShrU:
    case Op::AddF: case Op::SubF: case Op::MulF: case Op::DivF:
    case Op::AddD: case Op::SubD: case Op::MulD: case Op::DivD:
      return true;
    default:
      return is_compare(op);
  }
}

bool is_unary(Op op) {
  switch (op) {
    case Op::NegI: case Op::NotI: case Op::NegF: case Op::NegD:
    case Op::LNot: case Op::Bool:
      return true;
    default:
      // Width renormalisation and conversions are contiguous ranges.
      return (op >= Op::Sext8 && op <= Op::Zext1) ||
             (op >= Op::I2F && op <= Op::D2F);
  }
}

bool is_ext(Op op) { return op >= Op::Sext8 && op <= Op::Zext1; }
bool is_load(Op op) { return op >= Op::LoadI8 && op <= Op::LoadF64; }
bool is_store(Op op) { return op >= Op::StoreI8 && op <= Op::StoreF64; }

Op lidx_for(Op load) {
  return static_cast<Op>(static_cast<int>(Op::LIdxI8) +
                         (static_cast<int>(load) -
                          static_cast<int>(Op::LoadI8)));
}

Op sidx_for(Op store) {
  return static_cast<Op>(static_cast<int>(Op::SIdxI8) +
                         (static_cast<int>(store) -
                          static_cast<int>(Op::StoreI8)));
}

/// Static stack effect; `pure` means no side effect beyond the stack (so
/// the instruction may be deleted when its result is dead).
struct Effect {
  int pops = 0;
  int pushes = 0;
  bool pure = false;
};

Effect effect_of(const Instr& in) {
  switch (in.op) {
    case Op::Nop: return {0, 0, true};
    case Op::PushI: case Op::PushF: case Op::PushD:
    case Op::LoadSlot: case Op::LocalPtr: case Op::PrivatePtr:
      return {0, 1, true};
    case Op::Dup: return {1, 2, true};
    case Op::Swap: return {2, 2, true};
    case Op::Pop: return {1, 0, true};
    case Op::PtrAdd: return {2, 1, true};
    case Op::WorkItemFn: return {1, 1, true};
    case Op::BuiltinOp:
      return {builtin_info(static_cast<Builtin>(in.a)).arity, 1, true};
    case Op::MadI: case Op::MadF: case Op::MadD: return {3, 1, true};
    default:
      if (is_load(in.op)) return {1, 1, true};
      if (is_binary(in.op)) return {2, 1, true};
      if (is_unary(in.op)) return {1, 1, true};
      if (in.op >= Op::LIdxI8 && in.op <= Op::LIdxF64) return {2, 1, true};
      return {0, 0, false};  // stores, slots, control, barrier: not pure
  }
}

/// Abstract value on the symbolic operand stack.
struct AbsVal {
  FoldKind kind = FoldKind::None;  // constant scalar, if known
  Value v{};
  bool is_ptr = false;             // constant local/private arena pointer
  PtrSpace space = PtrSpace::Private;
  std::int64_t ptr_imm = 0;        // the LocalPtr/PrivatePtr immediate
  bool is_bool = false;            // value known to be 0 or 1
  // Index of the single pure push instruction that produced this value, or
  // kNoProducer when the producer can't be deleted (shared via Dup, from
  // another block, or not a plain push).
  int producer = kNoProducer;
};

Instr make_push(const Folded& f) {
  switch (f.kind) {
    case FoldKind::F32:
      return {Op::PushF, 0,
              static_cast<std::int64_t>(std::bit_cast<std::uint32_t>(f.v.f32))};
    case FoldKind::F64:
      return {Op::PushD, 0, std::bit_cast<std::int64_t>(f.v.f64)};
    default:
      return {Op::PushI, 0, f.v.i64};
  }
}

/// Optimizes one function's bytecode in place.
class FunctionOptimizer {
 public:
  FunctionOptimizer(const Module& module, CompiledFunction& fn,
                    const std::vector<char>& returns_value,
                    FunctionOptStats& stats)
      : module_(module), fn_(fn), returns_value_(returns_value),
        stats_(stats) {}

  void run() {
    // Clean-up passes to a fixpoint (bounded defensively), then fusion.
    for (int round = 0; round < 32; ++round) {
      bool changed = false;
      changed |= fold_pass();
      changed |= cancel_pass();
      changed |= dead_store_pass();
      changed |= dce_pass();
      if (!changed) break;
    }
    fuse_pass();
  }

 private:
  // Block leaders: entry point plus every jump target and every instruction
  // following a jump or return. leaders[n] is allowed (jump to end).
  std::vector<char> compute_leaders() const {
    const auto& code = fn_.code;
    std::vector<char> leaders(code.size() + 1, 0);
    if (!leaders.empty()) leaders[0] = 1;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const Op op = code[i].op;
      if (is_jump(op)) {
        const auto t = static_cast<std::size_t>(code[i].a);
        if (t < leaders.size()) leaders[t] = 1;
        if (i + 1 < leaders.size()) leaders[i + 1] = 1;
      } else if (op == Op::Ret || op == Op::RetVoid) {
        if (i + 1 < leaders.size()) leaders[i + 1] = 1;
      }
    }
    return leaders;
  }

  /// Removes instructions marked dead and remaps jump targets. A target in
  /// a deleted range lands on the first surviving instruction after it,
  /// which is exactly where execution would have ended up.
  bool compact(std::vector<char>& dead) {
    auto& code = fn_.code;
    const std::size_t n = code.size();
    std::vector<std::int32_t> newpos(n + 1, 0);
    std::int32_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      newpos[i] = k;
      if (!dead[i]) ++k;
    }
    newpos[n] = k;
    if (static_cast<std::size_t>(k) == n) return false;
    std::vector<Instr> out;
    out.reserve(static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < n; ++i) {
      if (dead[i]) continue;
      Instr in = code[i];
      if (is_jump(in.op)) {
        const auto t = static_cast<std::size_t>(in.a);
        in.a = newpos[t <= n ? t : n];
      }
      out.push_back(in);
    }
    code = std::move(out);
    return true;
  }

  // --- Constant folding / propagation / algebraic simplification ---------

  bool fold_pass() {
    auto& code = fn_.code;
    const std::size_t n = code.size();
    const std::vector<char> leaders = compute_leaders();
    std::vector<char> dead(n, 0);
    bool changed = false;

    std::vector<AbsVal> st;           // symbolic suffix of the operand stack
    std::map<std::int32_t, AbsVal> slot_consts;  // per-block slot constants

    auto reset = [&] {
      st.clear();
      slot_consts.clear();
    };
    auto pop_abs = [&]() -> AbsVal {
      if (st.empty()) return AbsVal{};  // value from before this block
      AbsVal e = st.back();
      st.pop_back();
      return e;
    };
    auto push_unknown = [&](bool boolish = false) {
      AbsVal e;
      e.is_bool = boolish;
      st.push_back(e);
    };
    auto push_const = [&](const Folded& f, int producer) {
      AbsVal e;
      e.kind = f.kind;
      e.v = f.v;
      e.producer = producer;
      e.is_bool = f.kind == FoldKind::I64 && (f.v.i64 == 0 || f.v.i64 == 1);
      st.push_back(e);
    };
    auto mark_dead = [&](int idx) {
      if (idx >= 0) {
        dead[static_cast<std::size_t>(idx)] = 1;
        changed = true;
      }
    };
    // True when the entry is the given integer constant and its push can be
    // deleted.
    auto is_ci = [](const AbsVal& e, std::int64_t x) {
      return e.kind == FoldKind::I64 && e.v.i64 == x &&
             e.producer != kNoProducer;
    };
    auto is_cf_bits = [](const AbsVal& e, std::uint32_t bits) {
      return e.kind == FoldKind::F32 &&
             std::bit_cast<std::uint32_t>(e.v.f32) == bits &&
             e.producer != kNoProducer;
    };
    auto is_cd_bits = [](const AbsVal& e, std::uint64_t bits) {
      return e.kind == FoldKind::F64 &&
             std::bit_cast<std::uint64_t>(e.v.f64) == bits &&
             e.producer != kNoProducer;
    };

    for (std::size_t i = 0; i < n; ++i) {
      if (leaders[i]) reset();
      if (dead[i]) continue;
      Instr& in = code[i];
      const int self = static_cast<int>(i);
      switch (in.op) {
        case Op::Nop:
          dead[i] = 1;
          ++stats_.dead_removed;
          changed = true;
          break;
        case Op::PushI: {
          AbsVal e;
          e.kind = FoldKind::I64;
          e.v.i64 = in.imm;
          e.is_bool = in.imm == 0 || in.imm == 1;
          e.producer = self;
          st.push_back(e);
          break;
        }
        case Op::PushF: {
          AbsVal e;
          e.kind = FoldKind::F32;
          e.v.f32 =
              std::bit_cast<float>(static_cast<std::uint32_t>(in.imm));
          e.producer = self;
          st.push_back(e);
          break;
        }
        case Op::PushD: {
          AbsVal e;
          e.kind = FoldKind::F64;
          e.v.f64 = std::bit_cast<double>(in.imm);
          e.producer = self;
          st.push_back(e);
          break;
        }
        case Op::LocalPtr:
        case Op::PrivatePtr: {
          AbsVal e;
          e.is_ptr = true;
          e.space =
              in.op == Op::LocalPtr ? PtrSpace::Local : PtrSpace::Private;
          e.ptr_imm = in.imm;
          e.producer = self;
          st.push_back(e);
          break;
        }
        case Op::Dup: {
          if (!st.empty()) {
            // Two entries now share one producer; pin the original so a
            // later fold can't delete an instruction the copy depends on.
            st.back().producer = kNoProducer;
            AbsVal copy = st.back();
            copy.producer = self;  // deleting the Dup removes only the copy
            st.push_back(copy);
          } else {
            push_unknown();
          }
          break;
        }
        case Op::Swap: {
          AbsVal b = pop_abs();
          AbsVal a = pop_abs();
          a.producer = kNoProducer;
          b.producer = kNoProducer;
          st.push_back(b);
          st.push_back(a);
          break;
        }
        case Op::Pop: {
          const AbsVal e = pop_abs();
          if (e.producer != kNoProducer) {
            mark_dead(e.producer);
            dead[i] = 1;
            ++stats_.dead_removed;
          }
          break;
        }
        case Op::LoadSlot: {
          auto it = slot_consts.find(in.a);
          if (it != slot_consts.end()) {
            const AbsVal& c = it->second;
            if (c.is_ptr) {
              in = {c.space == PtrSpace::Local ? Op::LocalPtr
                                               : Op::PrivatePtr,
                    0, c.ptr_imm};
            } else {
              Folded f{c.kind, c.v};
              in = make_push(f);
            }
            AbsVal e = c;
            e.producer = self;
            st.push_back(e);
            ++stats_.constants_folded;
            changed = true;
          } else {
            AbsVal e;
            e.producer = self;  // unknown value, but a deletable pure push
            st.push_back(e);
          }
          break;
        }
        case Op::StoreSlot: {
          AbsVal e = pop_abs();
          e.producer = kNoProducer;
          if (e.kind != FoldKind::None || e.is_ptr) {
            slot_consts[in.a] = e;
          } else {
            slot_consts.erase(in.a);
          }
          break;
        }
        case Op::PtrAdd: {
          const AbsVal idx = pop_abs();
          const AbsVal ptr = pop_abs();
          if (is_ci(idx, 0)) {
            // ptr + 0: drop the index push and the add.
            mark_dead(idx.producer);
            dead[i] = 1;
            ++stats_.algebraic_simplified;
            changed = true;
            st.push_back(ptr);
            break;
          }
          if (idx.kind == FoldKind::I64 && idx.producer != kNoProducer &&
              ptr.is_ptr && ptr.producer != kNoProducer) {
            // Fold the constant offset into the arena-pointer immediate
            // (equal mod 2^48, which is what pointer_add computes).
            const std::int64_t delta = idx.v.i64 * in.a;
            mark_dead(idx.producer);
            mark_dead(ptr.producer);
            in = {ptr.space == PtrSpace::Local ? Op::LocalPtr
                                               : Op::PrivatePtr,
                  0, ptr.ptr_imm + delta};
            AbsVal e = ptr;
            e.ptr_imm = ptr.ptr_imm + delta;
            e.producer = self;
            st.push_back(e);
            ++stats_.constants_folded;
            changed = true;
            break;
          }
          push_unknown();
          break;
        }
        case Op::Jmp:
          reset();
          break;
        case Op::JmpIfZero:
        case Op::JmpIfNonZero: {
          const AbsVal c = pop_abs();
          if (c.kind == FoldKind::I64 && c.producer != kNoProducer) {
            const bool taken = in.op == Op::JmpIfZero ? c.v.i64 == 0
                                                      : c.v.i64 != 0;
            mark_dead(c.producer);
            if (taken) {
              in.op = Op::Jmp;
              reset();
            } else {
              dead[i] = 1;
            }
            ++stats_.constants_folded;
            changed = true;
          }
          break;
        }
        case Op::Call: {
          const auto& callee =
              module_.functions[static_cast<std::size_t>(in.a)];
          for (std::size_t p = 0; p < callee.params.size(); ++p) pop_abs();
          // Slots are frame-local, so slot constants survive the call.
          if (returns_value_[static_cast<std::size_t>(in.a)]) {
            push_unknown();
          }
          break;
        }
        case Op::Ret:
          pop_abs();
          reset();
          break;
        case Op::RetVoid:
          reset();
          break;
        case Op::BarrierOp:
          pop_abs();  // fence flags
          break;
        case Op::WorkItemFn:
          pop_abs();
          push_unknown();
          break;
        case Op::BuiltinOp: {
          const int arity = builtin_info(static_cast<Builtin>(in.a)).arity;
          for (int p = 0; p < arity; ++p) pop_abs();
          push_unknown();
          break;
        }
        default: {
          if (is_binary(in.op)) {
            const AbsVal b = pop_abs();
            const AbsVal a = pop_abs();
            if (a.kind != FoldKind::None && b.kind != FoldKind::None &&
                a.producer != kNoProducer && b.producer != kNoProducer) {
              const Folded f = fold_binary(in.op, a.kind, a.v, b.kind, b.v);
              if (f.kind != FoldKind::None) {
                mark_dead(a.producer);
                mark_dead(b.producer);
                in = make_push(f);
                push_const(f, self);
                ++stats_.constants_folded;
                changed = true;
                break;
              }
            }
            if (try_algebraic(in, i, a, b, dead, changed, is_ci, is_cf_bits,
                              is_cd_bits, st)) {
              break;
            }
            push_unknown(is_compare(in.op));
            break;
          }
          if (is_unary(in.op)) {
            const AbsVal a = pop_abs();
            if (a.kind != FoldKind::None && a.producer != kNoProducer) {
              const Folded f = fold_unary(in.op, a.kind, a.v);
              if (f.kind != FoldKind::None) {
                mark_dead(a.producer);
                in = make_push(f);
                push_const(f, self);
                ++stats_.constants_folded;
                changed = true;
                break;
              }
            }
            // Renormalising a value already known to be 0/1 is a no-op
            // (compare;Bool, LNot;Zext1, bool;Sext32, ...).
            if (a.is_bool && (in.op == Op::Bool || is_ext(in.op))) {
              dead[i] = 1;
              ++stats_.algebraic_simplified;
              changed = true;
              st.push_back(a);
              break;
            }
            push_unknown(in.op == Op::LNot || in.op == Op::Bool);
            break;
          }
          if (is_load(in.op)) {
            pop_abs();
            push_unknown();
            break;
          }
          if (is_store(in.op)) {
            pop_abs();
            pop_abs();
            break;
          }
          // Superinstructions (only present if a fused function is
          // re-optimized) and anything unrecognised: generic effect.
          {
            const Effect e = effect_of(in);
            for (int p = 0; p < e.pops; ++p) pop_abs();
            for (int p = 0; p < e.pushes; ++p) push_unknown();
          }
          break;
        }
      }
    }

    bool removed = false;
    for (std::size_t i = 0; i < n; ++i) removed |= dead[i] != 0;
    if (removed) compact(dead);
    return changed;
  }

  /// Identity/absorption rules and strength reduction for one binary op
  /// with at least one constant operand. `b` is the top operand. Returns
  /// true (and pushes the result entry) when a rule applied.
  template <typename CI, typename CF, typename CD>
  bool try_algebraic(Instr& in, std::size_t i, const AbsVal& a,
                     const AbsVal& b, std::vector<char>& dead, bool& changed,
                     const CI& is_ci, const CF& is_cf_bits,
                     const CD& is_cd_bits, std::vector<AbsVal>& st) {
    auto& code = fn_.code;
    // Deletes the op and the constant operand's push, keeping `keep`.
    auto keep_with = [&](const AbsVal& keep, const AbsVal& drop) {
      dead[static_cast<std::size_t>(drop.producer)] = 1;
      dead[i] = 1;
      ++stats_.algebraic_simplified;
      changed = true;
      st.push_back(keep);
      return true;
    };
    // Replaces op and both operand pushes with a single constant.
    auto to_const = [&](std::int64_t value) {
      if (a.producer == kNoProducer || b.producer == kNoProducer) {
        return false;
      }
      dead[static_cast<std::size_t>(a.producer)] = 1;
      dead[static_cast<std::size_t>(b.producer)] = 1;
      Folded f;
      f.kind = FoldKind::I64;
      f.v.i64 = value;
      in = make_push(f);
      AbsVal e;
      e.kind = FoldKind::I64;
      e.v.i64 = value;
      e.is_bool = value == 0 || value == 1;
      e.producer = static_cast<int>(i);
      st.push_back(e);
      ++stats_.algebraic_simplified;
      changed = true;
      return true;
    };
    // Strength reduction: rewrite the constant's push to the shift/mask
    // operand and this op to a cheaper one. Needs the producer to be a
    // PushI we can edit.
    auto reduce = [&](const AbsVal& cst, std::int64_t new_imm, Op new_op) {
      if (cst.producer == kNoProducer ||
          code[static_cast<std::size_t>(cst.producer)].op != Op::PushI) {
        return false;
      }
      code[static_cast<std::size_t>(cst.producer)].imm = new_imm;
      in.op = new_op;
      in.a = 0;
      in.imm = 0;
      st.emplace_back();  // result unknown
      ++stats_.algebraic_simplified;
      changed = true;
      return true;
    };
    auto pow2_log = [](std::int64_t v) -> int {
      const auto u = static_cast<std::uint64_t>(v);
      if (v > 1 && (u & (u - 1)) == 0) return std::countr_zero(u);
      return -1;
    };

    switch (in.op) {
      case Op::AddI:
        if (is_ci(b, 0)) return keep_with(a, b);
        if (is_ci(a, 0)) return keep_with(b, a);
        return false;
      case Op::SubI:
        if (is_ci(b, 0)) return keep_with(a, b);
        return false;
      case Op::MulI: {
        if (is_ci(b, 1)) return keep_with(a, b);
        if (is_ci(a, 1)) return keep_with(b, a);
        if (is_ci(b, 0)) return to_const(0);
        if (is_ci(a, 0)) return to_const(0);
        if (b.kind == FoldKind::I64) {
          const int k = pow2_log(b.v.i64);
          if (k > 0 && reduce(b, k, Op::ShlI)) return true;
        }
        return false;
      }
      case Op::DivI:
        if (is_ci(b, 1)) return keep_with(a, b);
        return false;
      case Op::DivU: {
        if (is_ci(b, 1)) return keep_with(a, b);
        if (b.kind == FoldKind::I64) {
          const int k = pow2_log(b.v.i64);
          if (k > 0 && reduce(b, k, Op::ShrU)) return true;
        }
        return false;
      }
      case Op::RemI:
        if (is_ci(b, 1)) return to_const(0);
        return false;
      case Op::RemU: {
        if (is_ci(b, 1)) return to_const(0);
        if (b.kind == FoldKind::I64) {
          const int k = pow2_log(b.v.i64);
          if (k > 0 && reduce(b, b.v.i64 - 1, Op::AndI)) return true;
        }
        return false;
      }
      case Op::AndI:
        if (is_ci(b, -1)) return keep_with(a, b);
        if (is_ci(a, -1)) return keep_with(b, a);
        if (is_ci(b, 0)) return to_const(0);
        if (is_ci(a, 0)) return to_const(0);
        return false;
      case Op::OrI:
      case Op::XorI:
        if (is_ci(b, 0)) return keep_with(a, b);
        if (is_ci(a, 0)) return keep_with(b, a);
        return false;
      case Op::ShlI:
      case Op::ShrI:
      case Op::ShrU:
        if (is_ci(b, 0)) return keep_with(a, b);
        return false;
      // Float/double identities must be bit-exact for every input,
      // including -0.0, infinities and NaN payloads: x*1.0, x/1.0 and
      // x-(+0.0) are; x+0.0 is NOT (-0.0 + 0.0 = +0.0), though x+(-0.0) is.
      case Op::MulF:
        if (is_cf_bits(b, 0x3F800000u)) return keep_with(a, b);  // * 1.0f
        if (is_cf_bits(a, 0x3F800000u)) return keep_with(b, a);
        return false;
      case Op::DivF:
        if (is_cf_bits(b, 0x3F800000u)) return keep_with(a, b);  // / 1.0f
        return false;
      case Op::SubF:
        if (is_cf_bits(b, 0x00000000u)) return keep_with(a, b);  // - +0.0f
        return false;
      case Op::AddF:
        if (is_cf_bits(b, 0x80000000u)) return keep_with(a, b);  // + -0.0f
        return false;
      case Op::MulD:
        if (is_cd_bits(b, 0x3FF0000000000000ull)) return keep_with(a, b);
        if (is_cd_bits(a, 0x3FF0000000000000ull)) return keep_with(b, a);
        return false;
      case Op::DivD:
        if (is_cd_bits(b, 0x3FF0000000000000ull)) return keep_with(a, b);
        return false;
      case Op::SubD:
        if (is_cd_bits(b, 0x0000000000000000ull)) return keep_with(a, b);
        return false;
      case Op::AddD:
        if (is_cd_bits(b, 0x8000000000000000ull)) return keep_with(a, b);
        return false;
      default:
        return false;
    }
  }

  // --- Push/pop cancellation ----------------------------------------------

  /// Cancels `X; Pop` pairs where X is pure: the pair either disappears or
  /// degrades into pops of X's own operands. One change per scan, then
  /// compact; the pass-manager loop reaches the fixpoint.
  bool cancel_pass() {
    bool any = false;
    for (;;) {
      auto& code = fn_.code;
      const std::vector<char> leaders = compute_leaders();
      bool applied = false;
      for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i + 1].op != Op::Pop || leaders[i + 1]) continue;
        const Effect e = effect_of(code[i]);
        if (!e.pure) continue;
        bool drop_x = false;
        bool drop_pop = false;
        if (code[i].op == Op::Dup) {
          drop_x = drop_pop = true;  // Dup; Pop is a net no-op
        } else if (e.pushes == 1 && e.pops == 0) {
          drop_x = drop_pop = true;
        } else if (e.pushes == 1 && e.pops == 1) {
          drop_x = true;  // the Pop now consumes X's operand
        } else if (e.pushes == 1 && e.pops == 2) {
          code[i] = {Op::Pop, 0, 0};  // two pops consume X's operands
          ++stats_.dead_removed;
        } else {
          continue;
        }
        if (drop_x) {
          std::vector<char> dead(code.size(), 0);
          dead[i] = 1;
          ++stats_.dead_removed;
          if (drop_pop) {
            dead[i + 1] = 1;
            ++stats_.dead_removed;
          }
          compact(dead);
        }
        applied = true;
        any = true;
        break;
      }
      if (!applied) return any;
    }
  }

  // --- Dead-store elimination ---------------------------------------------

  /// A store to a slot no instruction in the function ever loads is dead;
  /// it becomes a Pop, which then cancels with its producer.
  bool dead_store_pass() {
    auto& code = fn_.code;
    std::vector<char> loaded;
    loaded.assign(static_cast<std::size_t>(fn_.num_slots) + 1, 0);
    for (const Instr& in : code) {
      if (in.op == Op::LoadSlot &&
          static_cast<std::size_t>(in.a) < loaded.size()) {
        loaded[static_cast<std::size_t>(in.a)] = 1;
      }
    }
    bool changed = false;
    for (Instr& in : code) {
      if (in.op == Op::StoreSlot &&
          static_cast<std::size_t>(in.a) < loaded.size() &&
          !loaded[static_cast<std::size_t>(in.a)]) {
        in = {Op::Pop, 0, 0};
        ++stats_.dead_removed;
        changed = true;
      }
    }
    return changed;
  }

  // --- Dead-code elimination ----------------------------------------------

  bool dce_pass() {
    auto& code = fn_.code;
    const std::size_t n = code.size();
    if (n == 0) return false;
    const std::vector<char> leaders = compute_leaders();

    // Enumerate blocks and find each instruction's block.
    std::vector<std::size_t> block_start;
    std::vector<std::size_t> block_of(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (leaders[i]) block_start.push_back(i);
      block_of[i] = block_start.size() - 1;
    }

    // Reachability over the block graph.
    std::vector<char> reachable(block_start.size(), 0);
    std::vector<std::size_t> work{0};
    reachable[0] = 1;
    auto visit = [&](std::size_t target_instr) {
      if (target_instr >= n) return;  // jump to end: falls off, returns
      const std::size_t b = block_of[target_instr];
      if (!reachable[b]) {
        reachable[b] = 1;
        work.push_back(b);
      }
    };
    while (!work.empty()) {
      const std::size_t b = work.back();
      work.pop_back();
      const std::size_t end =
          b + 1 < block_start.size() ? block_start[b + 1] : n;
      const Instr& last = code[end - 1];
      if (last.op == Op::Jmp) {
        visit(static_cast<std::size_t>(last.a));
      } else if (last.op == Op::JmpIfZero || last.op == Op::JmpIfNonZero) {
        visit(static_cast<std::size_t>(last.a));
        visit(end);
      } else if (last.op == Op::Ret || last.op == Op::RetVoid) {
        // no successors
      } else {
        visit(end);
      }
    }

    std::vector<char> dead(n, 0);
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!reachable[block_of[i]]) {
        dead[i] = 1;
        ++stats_.dead_removed;
        changed = true;
      }
    }
    // A jump whose target is the next live instruction is a no-op (a
    // conditional one still has to pop its condition).
    for (std::size_t i = 0; i < n; ++i) {
      if (dead[i] || !is_jump(code[i].op)) continue;
      const auto target = static_cast<std::size_t>(code[i].a);
      if (target <= i) continue;
      bool falls_through = true;
      for (std::size_t j = i + 1; j < target && j < n; ++j) {
        if (!dead[j]) {
          falls_through = false;
          break;
        }
      }
      if (!falls_through) continue;
      if (code[i].op == Op::Jmp) {
        dead[i] = 1;
        ++stats_.dead_removed;
      } else {
        code[i] = {Op::Pop, 0, 0};
      }
      changed = true;
    }
    if (changed) compact(dead);
    return changed;
  }

  // --- Peephole fusion ----------------------------------------------------

  /// Fuses adjacent patterns into superinstructions. The fused instruction
  /// always sits at the *end* of its pattern and subsumes the deleted
  /// prefix, so a jump into the pattern start still lands on code with the
  /// exact original meaning.
  void fuse_pass() {
    for (;;) {
      auto& code = fn_.code;
      const std::vector<char> leaders = compute_leaders();
      bool applied = false;
      for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        const Op op = code[i].op;
        const Op next = code[i + 1].op;
        const bool have2 = i + 2 < code.size();
        const Effect ne = effect_of(code[i + 1]);
        const bool next_is_push = ne.pure && ne.pops == 0 && ne.pushes == 1;
        bool matched = true;

        // PtrAdd; Load -> LIdx
        if (op == Op::PtrAdd && !leaders[i + 1] && is_load(next)) {
          code[i + 1] = {lidx_for(next), code[i].a, 0};
        }
        // PtrAdd; push; Store -> push; SIdx
        else if (op == Op::PtrAdd && have2 && !leaders[i + 1] &&
                 !leaders[i + 2] && is_store(code[i + 2].op) &&
                 next_is_push) {
          code[i + 2] = {sidx_for(code[i + 2].op), code[i].a, 0};
        }
        // Mul; Add -> Mad (a=1: z + x*y)
        else if (op == Op::MulI && next == Op::AddI && !leaders[i + 1]) {
          code[i + 1] = {Op::MadI, 1, 0};
        } else if (op == Op::MulF && next == Op::AddF && !leaders[i + 1]) {
          code[i + 1] = {Op::MadF, 1, 0};
        } else if (op == Op::MulD && next == Op::AddD && !leaders[i + 1]) {
          code[i + 1] = {Op::MadD, 1, 0};
        }
        // Mul; push; Add -> push; Mad (a=0: x*y + z)
        else if (op == Op::MulI && have2 && !leaders[i + 1] &&
                 !leaders[i + 2] && code[i + 2].op == Op::AddI &&
                 (next == Op::PushI || next == Op::LoadSlot)) {
          code[i + 2] = {Op::MadI, 0, 0};
        } else if (op == Op::MulF && have2 && !leaders[i + 1] &&
                   !leaders[i + 2] && code[i + 2].op == Op::AddF &&
                   (next == Op::PushF || next == Op::LoadSlot)) {
          code[i + 2] = {Op::MadF, 0, 0};
        } else if (op == Op::MulD && have2 && !leaders[i + 1] &&
                   !leaders[i + 2] && code[i + 2].op == Op::AddD &&
                   (next == Op::PushD || next == Op::LoadSlot)) {
          code[i + 2] = {Op::MadD, 0, 0};
        } else {
          matched = false;
        }
        if (!matched) continue;

        std::vector<char> dead(code.size(), 0);
        dead[i] = 1;  // the pattern head; its effect moved into the tail
        ++stats_.instrs_fused;
        compact(dead);
        applied = true;
        break;
      }
      if (!applied) return;
    }
  }

  const Module& module_;
  CompiledFunction& fn_;
  const std::vector<char>& returns_value_;
  FunctionOptStats& stats_;
};

}  // namespace

std::string OptReport::summary() const {
  std::ostringstream oss;
  oss << "optimization level: " << (level == OptLevel::O2 ? "O2" : "O0")
      << '\n';
  for (const FunctionOptStats& f : functions) {
    oss << "  " << (f.is_kernel ? "kernel " : "function ") << f.name << ": "
        << f.instrs_before << " -> " << f.instrs_after << " instrs ("
        << f.constants_folded << " folded, " << f.algebraic_simplified
        << " simplified, " << f.dead_removed << " dead, " << f.instrs_fused
        << " fused)\n";
  }
  return oss.str();
}

OptReport optimize_module(Module& module, OptLevel level) {
  OptReport report;
  report.level = level;
  std::vector<char> returns_value(module.functions.size(), 0);
  for (std::size_t i = 0; i < module.functions.size(); ++i) {
    for (const Instr& in : module.functions[i].code) {
      if (in.op == Op::Ret) {
        returns_value[i] = 1;
        break;
      }
    }
  }
  for (CompiledFunction& fn : module.functions) {
    FunctionOptStats fs;
    fs.name = fn.name;
    fs.is_kernel = fn.is_kernel;
    fs.instrs_before = fn.code.size();
    if (level == OptLevel::O2) {
      FunctionOptimizer opt(module, fn, returns_value, fs);
      opt.run();
    }
    fs.instrs_after = fn.code.size();
    report.functions.push_back(std::move(fs));
  }
  return report;
}

}  // namespace hplrepro::clc
