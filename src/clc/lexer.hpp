#ifndef HPLREPRO_CLC_LEXER_HPP
#define HPLREPRO_CLC_LEXER_HPP

/// \file lexer.hpp
/// Hand-written lexer for the OpenCL C subset. Handles line and block
/// comments, integer literals (decimal/hex/octal with u/l suffixes) and
/// floating literals (with exponents and the f suffix).

#include <string>
#include <string_view>
#include <vector>

#include "clc/diagnostics.hpp"
#include "clc/token.hpp"

namespace hplrepro::clc {

class Lexer {
public:
  Lexer(std::string_view source, DiagnosticSink& diags);

  /// Lexes the entire input. The returned stream always ends with Tok::End.
  std::vector<Token> lex_all();

private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_whitespace_and_comments();
  Token make(Tok kind) const;
  Token lex_number();
  Token lex_identifier_or_keyword();

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int tok_line_ = 1;
  int tok_column_ = 1;
  DiagnosticSink& diags_;
};

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_LEXER_HPP
