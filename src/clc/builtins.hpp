#ifndef HPLREPRO_CLC_BUILTINS_HPP
#define HPLREPRO_CLC_BUILTINS_HPP

/// \file builtins.hpp
/// Registry of the OpenCL C built-in functions the clc compiler supports:
/// work-item identification, barriers, and the math/common/integer
/// functions used by HPL's code generator and the benchmark kernels.

#include <cstdint>
#include <optional>
#include <string_view>

#include "clc/types.hpp"

namespace hplrepro::clc {

enum class Builtin : std::uint16_t {
  // Work-item functions (arg: dimension index; returns size_t)
  GetWorkDim,
  GetGlobalId,
  GetLocalId,
  GetGroupId,
  GetGlobalSize,
  GetLocalSize,
  GetNumGroups,

  // Synchronisation
  Barrier,

  // Math (float/double generic; arity 1 unless noted)
  Sqrt,
  Rsqrt,
  Fabs,
  Exp,
  Exp2,
  Log,
  Log2,
  Log10,
  Sin,
  Cos,
  Tan,
  Asin,
  Acos,
  Atan,
  Floor,
  Ceil,
  Trunc,
  Round,
  Pow,    // arity 2
  Atan2,  // arity 2
  Fmod,   // arity 2
  Fmin,   // arity 2
  Fmax,   // arity 2
  Hypot,  // arity 2
  Fma,    // arity 3
  Mad,    // arity 3

  // Integer / common (generic over arithmetic types)
  Min,    // arity 2
  Max,    // arity 2
  Abs,    // arity 1, integer
  Clamp,  // arity 3

  Count_,
};

enum class BuiltinKind : std::uint8_t {
  WorkItem,  // (uint) -> size_t
  Barrier,   // (flags) -> void
  MathFp,    // float/double generic
  Common,    // generic over arithmetic types (min/max/clamp)
  IntOnly,   // integer types only (abs)
};

struct BuiltinInfo {
  Builtin id;
  BuiltinKind kind;
  std::string_view name;
  int arity;
};

/// Looks up a builtin by source name ("sqrt", "get_global_id", ...).
std::optional<BuiltinInfo> find_builtin(std::string_view name);

const BuiltinInfo& builtin_info(Builtin id);

/// True for the math builtins the timing model counts as special-function
/// ops (transcendentals); false for the cheap ones (fabs, min/max, mad,
/// rounding) that count as ordinary ALU ops.
bool is_transcendental(Builtin id);

/// Named constants predefined by the OpenCL C environment (barrier flags).
/// Returns the value if `name` is one of them.
std::optional<std::uint64_t> predefined_constant(std::string_view name);

/// Barrier flag bits (values match what predefined_constant returns).
inline constexpr std::uint64_t kClkLocalMemFence = 1;
inline constexpr std::uint64_t kClkGlobalMemFence = 2;

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_BUILTINS_HPP
