#ifndef HPLREPRO_CLC_FOLD_HPP
#define HPLREPRO_CLC_FOLD_HPP

/// \file fold.hpp
/// Compile-time evaluation of bytecode operations on constant operands.
///
/// The optimizer and the VM must agree bit-for-bit: a kernel compiled at
/// -O2 has to produce exactly the output of the same kernel interpreted at
/// -O0. Every expression here is therefore the same C++ expression the VM
/// dispatch loop evaluates (see vm.cpp), including the defined-everywhere
/// semantics clc gives to division by zero, INT64_MIN / -1, over-wide shift
/// counts and float->int truncation.

#include <cmath>
#include <cstdint>

#include <bit>

#include "clc/bytecode.hpp"

namespace hplrepro::clc {

/// Scalar class of a constant the optimizer tracks. Integer values of every
/// width live in I64, normalised exactly as the VM keeps them on its stack.
enum class FoldKind : std::uint8_t { None, I64, F32, F64 };

/// Result of a fold attempt; kind == None means "not foldable".
struct Folded {
  FoldKind kind = FoldKind::None;
  Value v{};
};

/// Saturating float->signed truncation (the VM's F2I/D2I semantics).
inline std::int64_t checked_trunc_i64(double v) {
  if (std::isnan(v)) return 0;
  if (v >= 9.2233720368547758e18) return INT64_MAX;
  if (v <= -9.2233720368547758e18) return INT64_MIN;
  return static_cast<std::int64_t>(v);
}

/// Saturating float->unsigned truncation (the VM's F2U/D2U semantics).
inline std::uint64_t checked_trunc_u64(double v) {
  if (std::isnan(v) || v <= 0) return 0;
  if (v >= 1.8446744073709552e19) return UINT64_MAX;
  return static_cast<std::uint64_t>(v);
}

/// Folds a binary operation over two constants. Returns kind == None when
/// the op is not a foldable binary op or the operand kinds don't match.
inline Folded fold_binary(Op op, FoldKind ka, const Value& a, FoldKind kb,
                          const Value& b) {
  Folded out;
#define HPLREPRO_FOLD_BIN(OPNAME, REQ, RES, FIELD, EXPR) \
  case Op::OPNAME:                                       \
    if (ka != FoldKind::REQ || kb != FoldKind::REQ) return out; \
    out.kind = FoldKind::RES;                            \
    out.v.FIELD = (EXPR);                                \
    return out;
  switch (op) {
    HPLREPRO_FOLD_BIN(AddI, I64, I64, i64, a.i64 + b.i64)
    HPLREPRO_FOLD_BIN(SubI, I64, I64, i64, a.i64 - b.i64)
    HPLREPRO_FOLD_BIN(MulI, I64, I64, i64, a.i64 * b.i64)
    HPLREPRO_FOLD_BIN(DivI, I64, I64, i64,
                      b.i64 == 0 ? 0
                                 : (a.i64 == INT64_MIN && b.i64 == -1
                                        ? a.i64
                                        : a.i64 / b.i64))
    HPLREPRO_FOLD_BIN(DivU, I64, I64, u64, b.u64 == 0 ? 0 : a.u64 / b.u64)
    HPLREPRO_FOLD_BIN(RemI, I64, I64, i64,
                      b.i64 == 0 ? 0
                                 : (a.i64 == INT64_MIN && b.i64 == -1
                                        ? 0
                                        : a.i64 % b.i64))
    HPLREPRO_FOLD_BIN(RemU, I64, I64, u64, b.u64 == 0 ? 0 : a.u64 % b.u64)
    HPLREPRO_FOLD_BIN(AndI, I64, I64, u64, a.u64 & b.u64)
    HPLREPRO_FOLD_BIN(OrI, I64, I64, u64, a.u64 | b.u64)
    HPLREPRO_FOLD_BIN(XorI, I64, I64, u64, a.u64 ^ b.u64)
    HPLREPRO_FOLD_BIN(ShlI, I64, I64, u64, a.u64 << (b.u64 & 63))
    HPLREPRO_FOLD_BIN(ShrI, I64, I64, i64, a.i64 >> (b.u64 & 63))
    HPLREPRO_FOLD_BIN(ShrU, I64, I64, u64, a.u64 >> (b.u64 & 63))
    HPLREPRO_FOLD_BIN(AddF, F32, F32, f32, a.f32 + b.f32)
    HPLREPRO_FOLD_BIN(SubF, F32, F32, f32, a.f32 - b.f32)
    HPLREPRO_FOLD_BIN(MulF, F32, F32, f32, a.f32 * b.f32)
    HPLREPRO_FOLD_BIN(DivF, F32, F32, f32, a.f32 / b.f32)
    HPLREPRO_FOLD_BIN(AddD, F64, F64, f64, a.f64 + b.f64)
    HPLREPRO_FOLD_BIN(SubD, F64, F64, f64, a.f64 - b.f64)
    HPLREPRO_FOLD_BIN(MulD, F64, F64, f64, a.f64 * b.f64)
    HPLREPRO_FOLD_BIN(DivD, F64, F64, f64, a.f64 / b.f64)
    HPLREPRO_FOLD_BIN(EqI, I64, I64, i64, a.i64 == b.i64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(NeI, I64, I64, i64, a.i64 != b.i64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(LtI, I64, I64, i64, a.i64 < b.i64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(LeI, I64, I64, i64, a.i64 <= b.i64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(GtI, I64, I64, i64, a.i64 > b.i64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(GeI, I64, I64, i64, a.i64 >= b.i64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(LtU, I64, I64, i64, a.u64 < b.u64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(LeU, I64, I64, i64, a.u64 <= b.u64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(GtU, I64, I64, i64, a.u64 > b.u64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(GeU, I64, I64, i64, a.u64 >= b.u64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(EqF, F32, I64, i64, a.f32 == b.f32 ? 1 : 0)
    HPLREPRO_FOLD_BIN(NeF, F32, I64, i64, a.f32 != b.f32 ? 1 : 0)
    HPLREPRO_FOLD_BIN(LtF, F32, I64, i64, a.f32 < b.f32 ? 1 : 0)
    HPLREPRO_FOLD_BIN(LeF, F32, I64, i64, a.f32 <= b.f32 ? 1 : 0)
    HPLREPRO_FOLD_BIN(GtF, F32, I64, i64, a.f32 > b.f32 ? 1 : 0)
    HPLREPRO_FOLD_BIN(GeF, F32, I64, i64, a.f32 >= b.f32 ? 1 : 0)
    HPLREPRO_FOLD_BIN(EqD, F64, I64, i64, a.f64 == b.f64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(NeD, F64, I64, i64, a.f64 != b.f64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(LtD, F64, I64, i64, a.f64 < b.f64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(LeD, F64, I64, i64, a.f64 <= b.f64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(GtD, F64, I64, i64, a.f64 > b.f64 ? 1 : 0)
    HPLREPRO_FOLD_BIN(GeD, F64, I64, i64, a.f64 >= b.f64 ? 1 : 0)
    default:
      return out;
  }
#undef HPLREPRO_FOLD_BIN
}

/// Folds a unary operation (negation, logical ops, width renormalisation,
/// conversions) over one constant.
inline Folded fold_unary(Op op, FoldKind ka, const Value& a) {
  Folded out;
#define HPLREPRO_FOLD_UN(OPNAME, REQ, RES, FIELD, EXPR) \
  case Op::OPNAME:                                      \
    if (ka != FoldKind::REQ) return out;                \
    out.kind = FoldKind::RES;                           \
    out.v.FIELD = (EXPR);                               \
    return out;
  switch (op) {
    HPLREPRO_FOLD_UN(NegI, I64, I64, i64, -a.i64)
    HPLREPRO_FOLD_UN(NotI, I64, I64, u64, ~a.u64)
    HPLREPRO_FOLD_UN(NegF, F32, F32, f32, -a.f32)
    HPLREPRO_FOLD_UN(NegD, F64, F64, f64, -a.f64)
    HPLREPRO_FOLD_UN(LNot, I64, I64, i64, a.i64 == 0 ? 1 : 0)
    HPLREPRO_FOLD_UN(Bool, I64, I64, i64, a.i64 != 0 ? 1 : 0)
    HPLREPRO_FOLD_UN(Sext8, I64, I64, i64, static_cast<std::int8_t>(a.i64))
    HPLREPRO_FOLD_UN(Sext16, I64, I64, i64, static_cast<std::int16_t>(a.i64))
    HPLREPRO_FOLD_UN(Sext32, I64, I64, i64, static_cast<std::int32_t>(a.i64))
    HPLREPRO_FOLD_UN(Zext8, I64, I64, u64, a.u64 & 0xFFull)
    HPLREPRO_FOLD_UN(Zext16, I64, I64, u64, a.u64 & 0xFFFFull)
    HPLREPRO_FOLD_UN(Zext32, I64, I64, u64, a.u64 & 0xFFFFFFFFull)
    HPLREPRO_FOLD_UN(Zext1, I64, I64, u64, a.u64 & 1ull)
    HPLREPRO_FOLD_UN(I2F, I64, F32, f32, static_cast<float>(a.i64))
    HPLREPRO_FOLD_UN(I2D, I64, F64, f64, static_cast<double>(a.i64))
    HPLREPRO_FOLD_UN(U2F, I64, F32, f32, static_cast<float>(a.u64))
    HPLREPRO_FOLD_UN(U2D, I64, F64, f64, static_cast<double>(a.u64))
    HPLREPRO_FOLD_UN(F2I, F32, I64, i64, checked_trunc_i64(a.f32))
    HPLREPRO_FOLD_UN(D2I, F64, I64, i64, checked_trunc_i64(a.f64))
    HPLREPRO_FOLD_UN(F2U, F32, I64, u64, checked_trunc_u64(a.f32))
    HPLREPRO_FOLD_UN(D2U, F64, I64, u64, checked_trunc_u64(a.f64))
    HPLREPRO_FOLD_UN(F2D, F32, F64, f64, static_cast<double>(a.f32))
    HPLREPRO_FOLD_UN(D2F, F64, F32, f32, static_cast<float>(a.f64))
    default:
      return out;
  }
#undef HPLREPRO_FOLD_UN
}

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_FOLD_HPP
