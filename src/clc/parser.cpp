#include "clc/parser.hpp"

#include <optional>

namespace hplrepro::clc {

namespace {

/// Exception used internally for panic-mode recovery; never escapes parse().
struct ParseAbort {};

/// Binary operator precedence (higher binds tighter). Assignment and ?: are
/// handled separately.
struct OpInfo {
  BinaryOp op;
  int precedence;
};

std::optional<OpInfo> binary_op_info(Tok t) {
  switch (t) {
    case Tok::Star: return OpInfo{BinaryOp::Mul, 10};
    case Tok::Slash: return OpInfo{BinaryOp::Div, 10};
    case Tok::Percent: return OpInfo{BinaryOp::Rem, 10};
    case Tok::Plus: return OpInfo{BinaryOp::Add, 9};
    case Tok::Minus: return OpInfo{BinaryOp::Sub, 9};
    case Tok::Shl: return OpInfo{BinaryOp::Shl, 8};
    case Tok::Shr: return OpInfo{BinaryOp::Shr, 8};
    case Tok::Less: return OpInfo{BinaryOp::Lt, 7};
    case Tok::LessEq: return OpInfo{BinaryOp::Le, 7};
    case Tok::Greater: return OpInfo{BinaryOp::Gt, 7};
    case Tok::GreaterEq: return OpInfo{BinaryOp::Ge, 7};
    case Tok::EqEq: return OpInfo{BinaryOp::Eq, 6};
    case Tok::BangEq: return OpInfo{BinaryOp::Ne, 6};
    case Tok::Amp: return OpInfo{BinaryOp::And, 5};
    case Tok::Caret: return OpInfo{BinaryOp::Xor, 4};
    case Tok::Pipe: return OpInfo{BinaryOp::Or, 3};
    case Tok::AmpAmp: return OpInfo{BinaryOp::LogicalAnd, 2};
    case Tok::PipePipe: return OpInfo{BinaryOp::LogicalOr, 1};
    default: return std::nullopt;
  }
}

std::optional<AssignOp> assign_op_of(Tok t) {
  switch (t) {
    case Tok::Assign: return AssignOp::None;
    case Tok::PlusAssign: return AssignOp::Add;
    case Tok::MinusAssign: return AssignOp::Sub;
    case Tok::StarAssign: return AssignOp::Mul;
    case Tok::SlashAssign: return AssignOp::Div;
    case Tok::PercentAssign: return AssignOp::Rem;
    case Tok::AmpAssign: return AssignOp::And;
    case Tok::PipeAssign: return AssignOp::Or;
    case Tok::CaretAssign: return AssignOp::Xor;
    case Tok::ShlAssign: return AssignOp::Shl;
    case Tok::ShrAssign: return AssignOp::Shr;
    default: return std::nullopt;
  }
}

std::optional<AddressSpace> address_space_of(Tok t) {
  switch (t) {
    case Tok::KwGlobal: return AddressSpace::Global;
    case Tok::KwLocal: return AddressSpace::Local;
    case Tok::KwConstant: return AddressSpace::Constant;
    case Tok::KwPrivate: return AddressSpace::Private;
    default: return std::nullopt;
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, DiagnosticSink& diags)
    : tokens_(std::move(tokens)), diags_(diags) {}

const Token& Parser::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::check(Tok kind) const { return peek().kind == kind; }

bool Parser::accept(Tok kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(Tok kind, const char* context) {
  if (!check(kind)) {
    fail(peek(), std::string("expected ") + tok_name(kind) + " " + context +
                     ", found " + tok_name(peek().kind));
  }
  return advance();
}

void Parser::fail(const Token& at, const std::string& message) {
  diags_.error(at.line, at.column, message);
  throw ParseAbort{};
}

bool Parser::token_is_scalar_type(Tok t) const {
  switch (t) {
    case Tok::KwVoid:
    case Tok::KwBool:
    case Tok::KwChar:
    case Tok::KwUChar:
    case Tok::KwShort:
    case Tok::KwUShort:
    case Tok::KwInt:
    case Tok::KwUInt:
    case Tok::KwLong:
    case Tok::KwULong:
    case Tok::KwFloat:
    case Tok::KwDouble:
    case Tok::KwSizeT:
      return true;
    default:
      return false;
  }
}

bool Parser::at_type_start(int ahead) const {
  const Tok t = peek(ahead).kind;
  return token_is_scalar_type(t) || t == Tok::KwConst ||
         address_space_of(t).has_value();
}

Scalar Parser::parse_scalar_type() {
  const Token& t = advance();
  switch (t.kind) {
    case Tok::KwVoid: return Scalar::Void;
    case Tok::KwBool: return Scalar::Bool;
    case Tok::KwChar: return Scalar::Char;
    case Tok::KwUChar: return Scalar::UChar;
    case Tok::KwShort: return Scalar::Short;
    case Tok::KwUShort: return Scalar::UShort;
    case Tok::KwInt: return Scalar::Int;
    case Tok::KwUInt:
      // 'unsigned' may be followed by a base type: unsigned int/char/...
      if (check(Tok::KwInt)) { advance(); return Scalar::UInt; }
      if (check(Tok::KwChar)) { advance(); return Scalar::UChar; }
      if (check(Tok::KwShort)) { advance(); return Scalar::UShort; }
      if (check(Tok::KwLong)) { advance(); return Scalar::ULong; }
      return Scalar::UInt;
    case Tok::KwLong: return Scalar::Long;
    case Tok::KwULong: return Scalar::ULong;
    case Tok::KwFloat: return Scalar::Float;
    case Tok::KwDouble: return Scalar::Double;
    case Tok::KwSizeT: return Scalar::ULong;
    default:
      fail(t, std::string("expected a type, found ") + tok_name(t.kind));
  }
}

ExprPtr Parser::make_expr(ExprKind kind, const Token& at) const {
  auto e = std::make_unique<Expr>(kind);
  e->line = at.line;
  e->column = at.column;
  return e;
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

std::unique_ptr<VarDecl> Parser::parse_param() {
  auto decl = std::make_unique<VarDecl>();
  decl->line = peek().line;
  decl->column = peek().column;
  decl->is_param = true;

  AddressSpace space = AddressSpace::Private;
  bool saw_space = false;
  bool is_const = false;
  for (;;) {
    if (auto s = address_space_of(peek().kind)) {
      space = *s;
      saw_space = true;
      advance();
    } else if (accept(Tok::KwConst)) {
      is_const = true;
    } else {
      break;
    }
  }

  const Scalar scalar = parse_scalar_type();
  if (accept(Tok::KwConst)) is_const = true;

  if (accept(Tok::Star)) {
    if (!saw_space) space = AddressSpace::Global;
    decl->type = Type::pointer_to(scalar, space, is_const);
    if (accept(Tok::KwConst)) decl->type.const_qualified = true;
  } else {
    if (saw_space && space != AddressSpace::Private) {
      fail(peek(), "only pointer parameters may have an address space");
    }
    decl->type = Type::scalar_type(scalar);
  }

  const Token& name = expect(Tok::Identifier, "in parameter declaration");
  decl->name = name.text;
  return decl;
}

std::unique_ptr<FunctionDecl> Parser::parse_function() {
  auto fn = std::make_unique<FunctionDecl>();
  fn->line = peek().line;
  fn->column = peek().column;
  fn->is_kernel = accept(Tok::KwKernel);

  const Scalar ret = parse_scalar_type();
  fn->return_type = Type::scalar_type(ret);
  if (fn->is_kernel && ret != Scalar::Void) {
    diags_.error(fn->line, fn->column, "kernel functions must return void");
  }

  const Token& name = expect(Tok::Identifier, "in function declaration");
  fn->name = name.text;

  expect(Tok::LParen, "after function name");
  if (!check(Tok::RParen)) {
    if (check(Tok::KwVoid) && peek(1).kind == Tok::RParen) {
      advance();  // f(void)
    } else {
      fn->params.push_back(parse_param());
      while (accept(Tok::Comma)) fn->params.push_back(parse_param());
    }
  }
  expect(Tok::RParen, "after parameter list");

  fn->body = parse_compound();
  return fn;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parse_compound() {
  const Token& open = expect(Tok::LBrace, "to open a block");
  auto stmt = std::make_unique<Stmt>(StmtKind::Compound);
  stmt->line = open.line;
  stmt->column = open.column;
  while (!check(Tok::RBrace) && !check(Tok::End)) {
    stmt->body.push_back(parse_statement());
  }
  expect(Tok::RBrace, "to close a block");
  return stmt;
}

StmtPtr Parser::parse_decl_statement() {
  auto stmt = std::make_unique<Stmt>(StmtKind::Decl);
  stmt->line = peek().line;
  stmt->column = peek().column;

  AddressSpace space = AddressSpace::Private;
  bool is_const = false;
  for (;;) {
    if (auto s = address_space_of(peek().kind)) {
      space = *s;
      advance();
    } else if (accept(Tok::KwConst)) {
      is_const = true;
    } else {
      break;
    }
  }

  const Scalar scalar = parse_scalar_type();
  if (accept(Tok::KwConst)) is_const = true;

  do {
    auto decl = std::make_unique<VarDecl>();
    decl->line = peek().line;
    decl->column = peek().column;
    decl->space = space;

    const bool is_pointer = accept(Tok::Star);
    const Token& name = expect(Tok::Identifier, "in variable declaration");
    decl->name = name.text;

    if (accept(Tok::LBracket)) {
      // Array declaration: the extent must be an integer constant; full
      // constant folding happens in sema. Store the expression via init?
      // No: extents are restricted to literal constants here, which is all
      // that generated code and the baseline kernels use.
      const Token& size = expect(Tok::IntLiteral, "as array extent");
      decl->array_size = size.int_value;
      if (decl->array_size == 0) {
        diags_.error(size.line, size.column, "array extent must be nonzero");
      }
      expect(Tok::RBracket, "after array extent");
      decl->type = Type::scalar_type(scalar);
      decl->type.const_qualified = is_const;
      if (is_pointer) {
        fail(name, "arrays of pointers are not supported");
      }
    } else if (is_pointer) {
      decl->type = Type::pointer_to(scalar, space, is_const);
    } else {
      decl->type = Type::scalar_type(scalar);
      decl->type.const_qualified = is_const;
      if (space == AddressSpace::Constant) {
        diags_.error(decl->line, decl->column,
                     "__constant variables must be kernel arguments");
      }
    }

    if (accept(Tok::Assign)) {
      decl->init = parse_assignment();
      if (decl->array_size != 0) {
        diags_.error(decl->line, decl->column,
                     "array initializers are not supported");
      }
    }
    stmt->decls.push_back(std::move(decl));
  } while (accept(Tok::Comma));

  expect(Tok::Semicolon, "after declaration");
  return stmt;
}

StmtPtr Parser::parse_if() {
  const Token& kw = advance();  // 'if'
  auto stmt = std::make_unique<Stmt>(StmtKind::If);
  stmt->line = kw.line;
  stmt->column = kw.column;
  expect(Tok::LParen, "after 'if'");
  stmt->expr = parse_expression();
  expect(Tok::RParen, "after if condition");
  stmt->then_branch = parse_statement();
  if (accept(Tok::KwElse)) stmt->else_branch = parse_statement();
  return stmt;
}

StmtPtr Parser::parse_for() {
  const Token& kw = advance();  // 'for'
  auto stmt = std::make_unique<Stmt>(StmtKind::For);
  stmt->line = kw.line;
  stmt->column = kw.column;
  expect(Tok::LParen, "after 'for'");

  if (accept(Tok::Semicolon)) {
    // no init
  } else if (at_type_start()) {
    stmt->init = parse_decl_statement();
  } else {
    auto init = std::make_unique<Stmt>(StmtKind::ExprStmt);
    init->line = peek().line;
    init->column = peek().column;
    init->expr = parse_expression();
    stmt->init = std::move(init);
    expect(Tok::Semicolon, "after for-init");
  }

  if (!check(Tok::Semicolon)) stmt->expr = parse_expression();
  expect(Tok::Semicolon, "after for-condition");

  if (!check(Tok::RParen)) stmt->step = parse_expression();
  expect(Tok::RParen, "after for-step");

  stmt->then_branch = parse_statement();
  return stmt;
}

StmtPtr Parser::parse_while() {
  const Token& kw = advance();  // 'while'
  auto stmt = std::make_unique<Stmt>(StmtKind::While);
  stmt->line = kw.line;
  stmt->column = kw.column;
  expect(Tok::LParen, "after 'while'");
  stmt->expr = parse_expression();
  expect(Tok::RParen, "after while condition");
  stmt->then_branch = parse_statement();
  return stmt;
}

StmtPtr Parser::parse_do_while() {
  const Token& kw = advance();  // 'do'
  auto stmt = std::make_unique<Stmt>(StmtKind::DoWhile);
  stmt->line = kw.line;
  stmt->column = kw.column;
  stmt->then_branch = parse_statement();
  if (!accept(Tok::KwWhile)) {
    fail(peek(), "expected 'while' after do-body");
  }
  expect(Tok::LParen, "after 'while'");
  stmt->expr = parse_expression();
  expect(Tok::RParen, "after do-while condition");
  expect(Tok::Semicolon, "after do-while");
  return stmt;
}

StmtPtr Parser::parse_statement() {
  switch (peek().kind) {
    case Tok::LBrace:
      return parse_compound();
    case Tok::KwIf:
      return parse_if();
    case Tok::KwFor:
      return parse_for();
    case Tok::KwWhile:
      return parse_while();
    case Tok::KwDo:
      return parse_do_while();
    case Tok::KwReturn: {
      const Token& kw = advance();
      auto stmt = std::make_unique<Stmt>(StmtKind::Return);
      stmt->line = kw.line;
      stmt->column = kw.column;
      if (!check(Tok::Semicolon)) stmt->expr = parse_expression();
      expect(Tok::Semicolon, "after return");
      return stmt;
    }
    case Tok::KwBreak: {
      const Token& kw = advance();
      auto stmt = std::make_unique<Stmt>(StmtKind::Break);
      stmt->line = kw.line;
      stmt->column = kw.column;
      expect(Tok::Semicolon, "after break");
      return stmt;
    }
    case Tok::KwContinue: {
      const Token& kw = advance();
      auto stmt = std::make_unique<Stmt>(StmtKind::Continue);
      stmt->line = kw.line;
      stmt->column = kw.column;
      expect(Tok::Semicolon, "after continue");
      return stmt;
    }
    case Tok::Semicolon: {
      const Token& kw = advance();
      auto stmt = std::make_unique<Stmt>(StmtKind::Empty);
      stmt->line = kw.line;
      stmt->column = kw.column;
      return stmt;
    }
    default:
      if (at_type_start()) return parse_decl_statement();
      auto stmt = std::make_unique<Stmt>(StmtKind::ExprStmt);
      stmt->line = peek().line;
      stmt->column = peek().column;
      stmt->expr = parse_expression();
      expect(Tok::Semicolon, "after expression statement");
      return stmt;
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expression() { return parse_assignment(); }

ExprPtr Parser::parse_assignment() {
  ExprPtr lhs = parse_conditional();
  if (auto op = assign_op_of(peek().kind)) {
    const Token& tok = advance();
    auto e = make_expr(ExprKind::Assign, tok);
    e->assign_op = *op;
    e->lhs = std::move(lhs);
    e->rhs = parse_assignment();  // right-associative
    return e;
  }
  return lhs;
}

ExprPtr Parser::parse_conditional() {
  ExprPtr cond = parse_binary(1);
  if (!check(Tok::Question)) return cond;
  const Token& tok = advance();
  auto e = make_expr(ExprKind::Conditional, tok);
  e->lhs = std::move(cond);
  e->rhs = parse_assignment();
  expect(Tok::Colon, "in conditional expression");
  e->third = parse_conditional();
  return e;
}

ExprPtr Parser::parse_binary(int min_precedence) {
  ExprPtr lhs = parse_unary();
  for (;;) {
    const auto info = binary_op_info(peek().kind);
    if (!info || info->precedence < min_precedence) return lhs;
    const Token& tok = advance();
    ExprPtr rhs = parse_binary(info->precedence + 1);
    auto e = make_expr(ExprKind::Binary, tok);
    e->binary_op = info->op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    lhs = std::move(e);
  }
}

ExprPtr Parser::parse_unary() {
  const Token& tok = peek();
  switch (tok.kind) {
    case Tok::Plus: {
      advance();
      auto e = make_expr(ExprKind::Unary, tok);
      e->unary_op = UnaryOp::Plus;
      e->lhs = parse_unary();
      return e;
    }
    case Tok::Minus: {
      advance();
      auto e = make_expr(ExprKind::Unary, tok);
      e->unary_op = UnaryOp::Neg;
      e->lhs = parse_unary();
      return e;
    }
    case Tok::Bang: {
      advance();
      auto e = make_expr(ExprKind::Unary, tok);
      e->unary_op = UnaryOp::Not;
      e->lhs = parse_unary();
      return e;
    }
    case Tok::Tilde: {
      advance();
      auto e = make_expr(ExprKind::Unary, tok);
      e->unary_op = UnaryOp::BitNot;
      e->lhs = parse_unary();
      return e;
    }
    case Tok::PlusPlus:
    case Tok::MinusMinus: {
      advance();
      auto e = make_expr(ExprKind::Unary, tok);
      e->unary_op =
          tok.kind == Tok::PlusPlus ? UnaryOp::PreInc : UnaryOp::PreDec;
      e->lhs = parse_unary();
      return e;
    }
    case Tok::LParen:
      // Cast if '(' is followed by a type.
      if (at_type_start(1)) {
        advance();  // '('
        AddressSpace space = AddressSpace::Private;
        bool saw_space = false;
        bool is_const = false;
        for (;;) {
          if (auto s = address_space_of(peek().kind)) {
            space = *s;
            saw_space = true;
            advance();
          } else if (accept(Tok::KwConst)) {
            is_const = true;
          } else {
            break;
          }
        }
        const Scalar scalar = parse_scalar_type();
        auto e = make_expr(ExprKind::Cast, tok);
        if (accept(Tok::Star)) {
          if (!saw_space) space = AddressSpace::Global;
          e->type = Type::pointer_to(scalar, space, is_const);
        } else {
          e->type = Type::scalar_type(scalar);
        }
        expect(Tok::RParen, "after cast type");
        e->lhs = parse_unary();
        return e;
      }
      return parse_postfix();
    default:
      return parse_postfix();
  }
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  for (;;) {
    const Token& tok = peek();
    if (accept(Tok::LBracket)) {
      auto idx = make_expr(ExprKind::Index, tok);
      idx->lhs = std::move(e);
      idx->rhs = parse_expression();
      expect(Tok::RBracket, "after array index");
      e = std::move(idx);
    } else if (check(Tok::PlusPlus) || check(Tok::MinusMinus)) {
      advance();
      auto post = make_expr(ExprKind::Unary, tok);
      post->unary_op =
          tok.kind == Tok::PlusPlus ? UnaryOp::PostInc : UnaryOp::PostDec;
      post->lhs = std::move(e);
      e = std::move(post);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parse_primary() {
  const Token& tok = peek();
  switch (tok.kind) {
    case Tok::IntLiteral: {
      advance();
      auto e = make_expr(ExprKind::IntLit, tok);
      e->int_value = tok.int_value;
      Scalar s = Scalar::Int;
      if (tok.is_long_suffix) {
        s = tok.is_unsigned_suffix ? Scalar::ULong : Scalar::Long;
      } else if (tok.is_unsigned_suffix) {
        s = Scalar::UInt;
      } else if (tok.int_value > 0x7FFFFFFFull) {
        s = tok.int_value > 0x7FFFFFFFFFFFFFFFull ? Scalar::ULong
                                                  : Scalar::Long;
      }
      e->type = Type::scalar_type(s);
      return e;
    }
    case Tok::FloatLiteral: {
      advance();
      auto e = make_expr(ExprKind::FloatLit, tok);
      e->float_value = tok.float_value;
      e->type = Type::scalar_type(tok.is_float_suffix ? Scalar::Float
                                                      : Scalar::Double);
      return e;
    }
    case Tok::KwTrue:
    case Tok::KwFalse: {
      advance();
      auto e = make_expr(ExprKind::IntLit, tok);
      e->int_value = tok.kind == Tok::KwTrue ? 1 : 0;
      e->type = Type::scalar_type(Scalar::Bool);
      return e;
    }
    case Tok::Identifier: {
      advance();
      if (check(Tok::LParen)) {
        advance();
        auto call = make_expr(ExprKind::Call, tok);
        call->name = tok.text;
        if (!check(Tok::RParen)) {
          call->args.push_back(parse_assignment());
          while (accept(Tok::Comma)) call->args.push_back(parse_assignment());
        }
        expect(Tok::RParen, "after call arguments");
        return call;
      }
      auto e = make_expr(ExprKind::VarRef, tok);
      e->name = tok.text;
      return e;
    }
    case Tok::LParen: {
      advance();
      ExprPtr inner = parse_expression();
      expect(Tok::RParen, "after parenthesized expression");
      return inner;
    }
    default:
      fail(tok, std::string("expected an expression, found ") +
                    tok_name(tok.kind));
  }
}

TranslationUnit Parser::parse() {
  TranslationUnit unit;
  while (!check(Tok::End)) {
    const std::size_t before = pos_;
    try {
      unit.functions.push_back(parse_function());
    } catch (const ParseAbort&) {
      // Panic: skip to the next plausible function start (a '}' followed by
      // a kernel/type keyword, or end of input).
      if (pos_ == before) advance();
      int depth = 0;
      while (!check(Tok::End)) {
        if (check(Tok::LBrace)) ++depth;
        if (check(Tok::RBrace)) {
          advance();
          if (--depth <= 0) break;
          continue;
        }
        advance();
      }
    }
  }
  return unit;
}

}  // namespace hplrepro::clc
