#include "clc/codegen.hpp"

#include <bit>
#include <cstring>

#include "clc/builtins.hpp"
#include "support/error.hpp"

namespace hplrepro::clc {

namespace {

/// Operand class encodings for BuiltinOp.imm.
enum : std::int64_t { kClsInt = 0, kClsF32 = 1, kClsF64 = 2, kClsUInt = 3 };

class FunctionCodegen {
public:
  FunctionCodegen(const TranslationUnit& unit, const FunctionDecl& fn)
      : unit_(unit), fn_(fn) {
    out_.name = fn.name;
    out_.is_kernel = fn.is_kernel;
    out_.num_slots = fn.num_slots;
    out_.private_bytes = fn.private_bytes;
    out_.local_bytes = fn.local_bytes;
    out_.uses_barrier = fn.uses_barrier;
    out_.uses_double = fn.uses_double;
    for (const auto& p : fn.params) {
      out_.params.push_back(ParamInfo{p->name, p->type});
    }
    next_scratch_ = fn.num_slots;
    max_slots_ = fn.num_slots;
  }

  CompiledFunction run() {
    gen_stmt(*fn_.body);
    emit(Op::RetVoid);
    out_.num_slots = max_slots_;
    return std::move(out_);
  }

private:
  // --- Emission helpers -----------------------------------------------------

  std::size_t emit(Op op, std::int32_t a = 0, std::int64_t imm = 0) {
    out_.code.push_back(Instr{op, a, imm});
    return out_.code.size() - 1;
  }

  std::size_t here() const { return out_.code.size(); }

  void patch(std::size_t instr, std::size_t target) {
    out_.code[instr].a = static_cast<std::int32_t>(target);
  }

  int scratch_push() {
    const int slot = next_scratch_++;
    if (next_scratch_ > max_slots_) max_slots_ = next_scratch_;
    return slot;
  }
  void scratch_pop() { --next_scratch_; }

  // --- Type plumbing ----------------------------------------------------------

  static bool is_f32(const Type& t) { return !t.pointer && t.scalar == Scalar::Float; }
  static bool is_f64(const Type& t) { return !t.pointer && t.scalar == Scalar::Double; }

  /// Re-normalises the 64-bit top-of-stack to the width/signedness of `s`.
  void renorm(Scalar s) {
    switch (s) {
      case Scalar::Bool: emit(Op::Bool); break;
      case Scalar::Char: emit(Op::Sext8); break;
      case Scalar::UChar: emit(Op::Zext8); break;
      case Scalar::Short: emit(Op::Sext16); break;
      case Scalar::UShort: emit(Op::Zext16); break;
      case Scalar::Int: emit(Op::Sext32); break;
      case Scalar::UInt: emit(Op::Zext32); break;
      case Scalar::Long:
      case Scalar::ULong: break;
      default: throw InternalError("renorm: non-integer scalar");
    }
  }

  /// Emits a conversion of the top of stack from scalar `from` to `to`.
  void convert(Scalar from, Scalar to) {
    if (from == to) return;
    const bool ff = is_floating(from), tf = is_floating(to);
    if (!ff && !tf) {
      renorm(to);
      return;
    }
    if (!ff && tf) {
      const Op op = is_unsigned_integer(from)
                        ? (to == Scalar::Float ? Op::U2F : Op::U2D)
                        : (to == Scalar::Float ? Op::I2F : Op::I2D);
      emit(op);
      return;
    }
    if (ff && !tf) {
      const Op op = is_unsigned_integer(to)
                        ? (from == Scalar::Float ? Op::F2U : Op::D2U)
                        : (from == Scalar::Float ? Op::F2I : Op::D2I);
      emit(op);
      renorm(to);
      return;
    }
    emit(from == Scalar::Float ? Op::F2D : Op::D2F);
  }

  void convert(const Type& from, const Type& to) {
    if (from.pointer || to.pointer) return;  // pointer identity casts only
    convert(from.scalar, to.scalar);
  }

  static std::int64_t float_bits(float f) {
    return static_cast<std::int64_t>(std::bit_cast<std::uint32_t>(f));
  }
  static std::int64_t double_bits(double d) {
    return std::bit_cast<std::int64_t>(d);
  }

  void push_constant_one(Scalar s) {
    if (s == Scalar::Float) {
      emit(Op::PushF, 0, float_bits(1.0f));
    } else if (s == Scalar::Double) {
      emit(Op::PushD, 0, double_bits(1.0));
    } else {
      emit(Op::PushI, 0, 1);
    }
  }

  // --- Typed operation selection ---------------------------------------------

  void emit_arith(BinaryOp op, Scalar s) {
    const bool u = is_unsigned_integer(s);
    if (is_floating(s)) {
      const bool d = s == Scalar::Double;
      switch (op) {
        case BinaryOp::Add: emit(d ? Op::AddD : Op::AddF); return;
        case BinaryOp::Sub: emit(d ? Op::SubD : Op::SubF); return;
        case BinaryOp::Mul: emit(d ? Op::MulD : Op::MulF); return;
        case BinaryOp::Div: emit(d ? Op::DivD : Op::DivF); return;
        default: throw InternalError("emit_arith: float op");
      }
    }
    switch (op) {
      case BinaryOp::Add: emit(Op::AddI); break;
      case BinaryOp::Sub: emit(Op::SubI); break;
      case BinaryOp::Mul: emit(Op::MulI); break;
      case BinaryOp::Div: emit(u ? Op::DivU : Op::DivI); break;
      case BinaryOp::Rem: emit(u ? Op::RemU : Op::RemI); break;
      case BinaryOp::And: emit(Op::AndI); break;
      case BinaryOp::Or: emit(Op::OrI); break;
      case BinaryOp::Xor: emit(Op::XorI); break;
      case BinaryOp::Shl: emit(Op::ShlI); break;
      case BinaryOp::Shr: emit(u ? Op::ShrU : Op::ShrI); break;
      default: throw InternalError("emit_arith: bad int op");
    }
    renorm(s);
  }

  void emit_compare(BinaryOp op, Scalar s) {
    if (s == Scalar::Float) {
      switch (op) {
        case BinaryOp::Eq: emit(Op::EqF); return;
        case BinaryOp::Ne: emit(Op::NeF); return;
        case BinaryOp::Lt: emit(Op::LtF); return;
        case BinaryOp::Le: emit(Op::LeF); return;
        case BinaryOp::Gt: emit(Op::GtF); return;
        case BinaryOp::Ge: emit(Op::GeF); return;
        default: break;
      }
    } else if (s == Scalar::Double) {
      switch (op) {
        case BinaryOp::Eq: emit(Op::EqD); return;
        case BinaryOp::Ne: emit(Op::NeD); return;
        case BinaryOp::Lt: emit(Op::LtD); return;
        case BinaryOp::Le: emit(Op::LeD); return;
        case BinaryOp::Gt: emit(Op::GtD); return;
        case BinaryOp::Ge: emit(Op::GeD); return;
        default: break;
      }
    } else {
      const bool u = is_unsigned_integer(s);
      switch (op) {
        case BinaryOp::Eq: emit(Op::EqI); return;
        case BinaryOp::Ne: emit(Op::NeI); return;
        case BinaryOp::Lt: emit(u ? Op::LtU : Op::LtI); return;
        case BinaryOp::Le: emit(u ? Op::LeU : Op::LeI); return;
        case BinaryOp::Gt: emit(u ? Op::GtU : Op::GtI); return;
        case BinaryOp::Ge: emit(u ? Op::GeU : Op::GeI); return;
        default: break;
      }
    }
    throw InternalError("emit_compare: bad op");
  }

  static Op load_op(Scalar s) {
    switch (s) {
      case Scalar::Bool:
      case Scalar::UChar: return Op::LoadU8;
      case Scalar::Char: return Op::LoadI8;
      case Scalar::Short: return Op::LoadI16;
      case Scalar::UShort: return Op::LoadU16;
      case Scalar::Int: return Op::LoadI32;
      case Scalar::UInt: return Op::LoadU32;
      case Scalar::Long:
      case Scalar::ULong: return Op::LoadI64;
      case Scalar::Float: return Op::LoadF32;
      case Scalar::Double: return Op::LoadF64;
      default: throw InternalError("load_op: bad scalar");
    }
  }

  static Op store_op(Scalar s) {
    switch (s) {
      case Scalar::Bool:
      case Scalar::UChar:
      case Scalar::Char: return Op::StoreI8;
      case Scalar::Short:
      case Scalar::UShort: return Op::StoreI16;
      case Scalar::Int:
      case Scalar::UInt: return Op::StoreI32;
      case Scalar::Long:
      case Scalar::ULong: return Op::StoreI64;
      case Scalar::Float: return Op::StoreF32;
      case Scalar::Double: return Op::StoreF64;
      default: throw InternalError("store_op: bad scalar");
    }
  }

  // --- Expressions ------------------------------------------------------------

  /// Generates `expr`, leaving its value on the stack iff `want_value`.
  /// Returns true iff a value was left on the stack.
  bool gen_expr(const Expr& expr, bool want_value = true) {
    switch (expr.kind) {
      case ExprKind::IntLit: {
        if (!want_value) return false;
        // Literal values of unsigned 32-bit type keep their zero-extended
        // form; signed ones sign-extend.
        std::int64_t v = static_cast<std::int64_t>(expr.int_value);
        if (expr.type.scalar == Scalar::Int) {
          v = static_cast<std::int32_t>(expr.int_value);
        } else if (expr.type.scalar == Scalar::UInt) {
          v = static_cast<std::int64_t>(expr.int_value & 0xFFFFFFFFull);
        }
        emit(Op::PushI, 0, v);
        return true;
      }
      case ExprKind::FloatLit:
        if (!want_value) return false;
        if (expr.type.scalar == Scalar::Float) {
          emit(Op::PushF, 0, float_bits(static_cast<float>(expr.float_value)));
        } else {
          emit(Op::PushD, 0, double_bits(expr.float_value));
        }
        return true;
      case ExprKind::VarRef: {
        if (!want_value) return false;
        const VarDecl& decl = *expr.decl;
        if (decl.array_size > 0) {
          if (decl.space == AddressSpace::Local) {
            emit(Op::LocalPtr, 0,
                 static_cast<std::int64_t>(decl.arena_offset));
          } else {
            emit(Op::PrivatePtr, 0,
                 static_cast<std::int64_t>(decl.arena_offset));
          }
        } else {
          emit(Op::LoadSlot, decl.slot);
        }
        return true;
      }
      case ExprKind::Unary:
        return gen_unary(expr, want_value);
      case ExprKind::Binary:
        return gen_binary(expr, want_value);
      case ExprKind::Assign:
        return gen_assign(expr, want_value);
      case ExprKind::Conditional:
        return gen_conditional(expr, want_value);
      case ExprKind::Call:
        return gen_call(expr, want_value);
      case ExprKind::Index: {
        gen_lvalue_pointer(expr);
        emit(load_op(expr.type.scalar));
        if (!want_value) {
          emit(Op::Pop);
          return false;
        }
        return true;
      }
      case ExprKind::Cast: {
        gen_expr(*expr.lhs, true);
        convert(expr.lhs->type, expr.type);
        if (!want_value) {
          emit(Op::Pop);
          return false;
        }
        return true;
      }
    }
    throw InternalError("gen_expr: bad kind");
  }

  /// Leaves a pointer to the element denoted by an Index expression.
  void gen_lvalue_pointer(const Expr& index_expr) {
    gen_expr(*index_expr.lhs, true);  // base pointer
    gen_expr(*index_expr.rhs, true);  // index (any integer, already 64-bit)
    emit(Op::PtrAdd,
         static_cast<std::int32_t>(scalar_size(index_expr.type.scalar)));
  }

  bool gen_unary(const Expr& expr, bool want_value) {
    switch (expr.unary_op) {
      case UnaryOp::Plus: {
        const bool pushed = gen_expr(*expr.lhs, want_value);
        if (pushed) convert(expr.lhs->type, expr.type);
        return pushed;
      }
      case UnaryOp::Neg: {
        gen_expr(*expr.lhs, true);
        convert(expr.lhs->type, expr.type);
        if (is_f32(expr.type)) {
          emit(Op::NegF);
        } else if (is_f64(expr.type)) {
          emit(Op::NegD);
        } else {
          emit(Op::NegI);
          renorm(expr.type.scalar);
        }
        if (!want_value) { emit(Op::Pop); return false; }
        return true;
      }
      case UnaryOp::Not: {
        gen_expr(*expr.lhs, true);
        gen_truth(expr.lhs->type);
        emit(Op::LNot);
        if (!want_value) { emit(Op::Pop); return false; }
        return true;
      }
      case UnaryOp::BitNot: {
        gen_expr(*expr.lhs, true);
        convert(expr.lhs->type.scalar, expr.type.scalar);
        emit(Op::NotI);
        renorm(expr.type.scalar);
        if (!want_value) { emit(Op::Pop); return false; }
        return true;
      }
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec:
        return gen_incdec(expr, want_value);
    }
    throw InternalError("gen_unary: bad op");
  }

  /// Converts the top-of-stack of the given type into an i64 truth value
  /// (nonzero -> 1). Floats compare against zero.
  void gen_truth(const Type& t) {
    if (t.pointer) { emit(Op::Bool); return; }
    if (t.scalar == Scalar::Float) {
      emit(Op::PushF, 0, float_bits(0.0f));
      emit(Op::NeF);
    } else if (t.scalar == Scalar::Double) {
      emit(Op::PushD, 0, double_bits(0.0));
      emit(Op::NeD);
    } else {
      emit(Op::Bool);
    }
  }

  bool gen_incdec(const Expr& expr, bool want_value) {
    const bool is_post = expr.unary_op == UnaryOp::PostInc ||
                         expr.unary_op == UnaryOp::PostDec;
    const bool is_inc = expr.unary_op == UnaryOp::PreInc ||
                        expr.unary_op == UnaryOp::PostInc;
    const Expr& target = *expr.lhs;
    const Scalar s = expr.type.scalar;

    auto apply_delta = [&] {
      push_constant_one(s);
      emit_arith(is_inc ? BinaryOp::Add : BinaryOp::Sub, s);
    };

    if (target.kind == ExprKind::VarRef) {
      const int slot = target.decl->slot;
      emit(Op::LoadSlot, slot);
      if (is_post && want_value) emit(Op::Dup);
      apply_delta();
      if (!is_post && want_value) emit(Op::Dup);
      emit(Op::StoreSlot, slot);
      return want_value;
    }

    // Memory lvalue.
    const int sp = scratch_push();
    gen_lvalue_pointer(target);
    emit(Op::StoreSlot, sp);
    emit(Op::LoadSlot, sp);
    emit(load_op(s));
    if (is_post && want_value) emit(Op::Dup);
    apply_delta();
    if (!is_post && want_value) emit(Op::Dup);
    emit(Op::LoadSlot, sp);
    emit(Op::Swap);
    emit(store_op(s));
    scratch_pop();
    return want_value;
  }

  bool gen_binary(const Expr& expr, bool want_value) {
    const BinaryOp op = expr.binary_op;

    if (op == BinaryOp::LogicalAnd || op == BinaryOp::LogicalOr) {
      // Short-circuit; result is int 0/1.
      gen_expr(*expr.lhs, true);
      gen_truth(expr.lhs->type);
      emit(Op::Dup);
      const std::size_t jump = emit(
          op == BinaryOp::LogicalAnd ? Op::JmpIfZero : Op::JmpIfNonZero, -1);
      emit(Op::Pop);
      gen_expr(*expr.rhs, true);
      gen_truth(expr.rhs->type);
      patch(jump, here());
      if (!want_value) { emit(Op::Pop); return false; }
      return true;
    }

    // Pointer arithmetic.
    if (expr.type.pointer) {
      const Expr& ptr = expr.lhs->type.pointer ? *expr.lhs : *expr.rhs;
      const Expr& idx = expr.lhs->type.pointer ? *expr.rhs : *expr.lhs;
      gen_expr(ptr, true);
      gen_expr(idx, true);
      if (op == BinaryOp::Sub) {
        emit(Op::NegI);
      }
      emit(Op::PtrAdd,
           static_cast<std::int32_t>(scalar_size(expr.type.scalar)));
      if (!want_value) { emit(Op::Pop); return false; }
      return true;
    }

    const bool is_compare = op == BinaryOp::Lt || op == BinaryOp::Le ||
                            op == BinaryOp::Gt || op == BinaryOp::Ge ||
                            op == BinaryOp::Eq || op == BinaryOp::Ne;

    if (is_compare && expr.lhs->type.pointer) {
      gen_expr(*expr.lhs, true);
      gen_expr(*expr.rhs, true);
      emit(op == BinaryOp::Eq ? Op::EqI : Op::NeI);
      if (!want_value) { emit(Op::Pop); return false; }
      return true;
    }

    Scalar common;
    if (is_compare) {
      common = arithmetic_result(expr.lhs->type.scalar, expr.rhs->type.scalar);
    } else if (op == BinaryOp::Shl || op == BinaryOp::Shr) {
      common = expr.type.scalar;  // shift: promoted LHS type
    } else {
      common = expr.type.scalar;
    }

    gen_expr(*expr.lhs, true);
    convert(expr.lhs->type.scalar, common);
    gen_expr(*expr.rhs, true);
    if (op == BinaryOp::Shl || op == BinaryOp::Shr) {
      // Shift count stays integral; no conversion to LHS type required.
    } else {
      convert(expr.rhs->type.scalar, common);
    }

    if (is_compare) {
      emit_compare(op, common);
    } else {
      emit_arith(op, common);
    }
    if (!want_value) { emit(Op::Pop); return false; }
    return true;
  }

  bool gen_assign(const Expr& expr, bool want_value) {
    const Expr& lhs = *expr.lhs;
    const Type lhs_type = lhs.type;

    // Map AssignOp to the corresponding BinaryOp for compound forms.
    auto compound_op = [&]() -> BinaryOp {
      switch (expr.assign_op) {
        case AssignOp::Add: return BinaryOp::Add;
        case AssignOp::Sub: return BinaryOp::Sub;
        case AssignOp::Mul: return BinaryOp::Mul;
        case AssignOp::Div: return BinaryOp::Div;
        case AssignOp::Rem: return BinaryOp::Rem;
        case AssignOp::And: return BinaryOp::And;
        case AssignOp::Or: return BinaryOp::Or;
        case AssignOp::Xor: return BinaryOp::Xor;
        case AssignOp::Shl: return BinaryOp::Shl;
        case AssignOp::Shr: return BinaryOp::Shr;
        case AssignOp::None: break;
      }
      throw InternalError("compound_op: none");
    };

    if (lhs.kind == ExprKind::VarRef) {
      const int slot = lhs.decl->slot;
      if (expr.assign_op == AssignOp::None) {
        gen_expr(*expr.rhs, true);
        convert(expr.rhs->type, lhs_type);
      } else {
        const BinaryOp bop = compound_op();
        const Scalar common = (bop == BinaryOp::Shl || bop == BinaryOp::Shr)
                                  ? promote(lhs_type.scalar)
                                  : arithmetic_result(lhs_type.scalar,
                                                      expr.rhs->type.scalar);
        emit(Op::LoadSlot, slot);
        convert(lhs_type.scalar, common);
        gen_expr(*expr.rhs, true);
        if (bop != BinaryOp::Shl && bop != BinaryOp::Shr) {
          convert(expr.rhs->type.scalar, common);
        }
        emit_arith(bop, common);
        convert(common, lhs_type.scalar);
      }
      if (want_value) emit(Op::Dup);
      emit(Op::StoreSlot, slot);
      return want_value;
    }

    if (lhs.kind != ExprKind::Index) {
      throw InternalError("gen_assign: unsupported lvalue");
    }

    const Scalar elem = lhs_type.scalar;
    if (expr.assign_op == AssignOp::None) {
      gen_lvalue_pointer(lhs);
      gen_expr(*expr.rhs, true);
      convert(expr.rhs->type, lhs_type);
      if (!want_value) {
        emit(store_op(elem));
        return false;
      }
      const int sv = scratch_push();
      emit(Op::StoreSlot, sv);
      emit(Op::LoadSlot, sv);
      emit(store_op(elem));
      emit(Op::LoadSlot, sv);
      scratch_pop();
      return true;
    }

    // Compound assignment to memory.
    const BinaryOp bop = compound_op();
    const Scalar common = (bop == BinaryOp::Shl || bop == BinaryOp::Shr)
                              ? promote(elem)
                              : arithmetic_result(elem, expr.rhs->type.scalar);
    gen_lvalue_pointer(lhs);
    emit(Op::Dup);
    emit(load_op(elem));
    convert(elem, common);
    gen_expr(*expr.rhs, true);
    if (bop != BinaryOp::Shl && bop != BinaryOp::Shr) {
      convert(expr.rhs->type.scalar, common);
    }
    emit_arith(bop, common);
    convert(common, elem);
    if (!want_value) {
      emit(store_op(elem));
      return false;
    }
    const int sv = scratch_push();
    emit(Op::StoreSlot, sv);
    emit(Op::LoadSlot, sv);
    emit(store_op(elem));
    emit(Op::LoadSlot, sv);
    scratch_pop();
    return true;
  }

  bool gen_conditional(const Expr& expr, bool want_value) {
    gen_expr(*expr.lhs, true);
    gen_truth(expr.lhs->type);
    const std::size_t jump_else = emit(Op::JmpIfZero, -1);
    gen_expr(*expr.rhs, true);
    convert(expr.rhs->type, expr.type);
    const std::size_t jump_end = emit(Op::Jmp, -1);
    patch(jump_else, here());
    gen_expr(*expr.third, true);
    convert(expr.third->type, expr.type);
    patch(jump_end, here());
    if (!want_value) { emit(Op::Pop); return false; }
    return true;
  }

  bool gen_call(const Expr& expr, bool want_value) {
    if (expr.callee_builtin >= 0) {
      return gen_builtin_call(expr, want_value);
    }

    const FunctionDecl& callee =
        *unit_.functions[static_cast<std::size_t>(expr.callee_function)];
    for (std::size_t i = 0; i < expr.args.size(); ++i) {
      gen_expr(*expr.args[i], true);
      convert(expr.args[i]->type, callee.params[i]->type);
    }
    emit(Op::Call, expr.callee_function);
    if (callee.return_type.is_void()) return false;
    if (!want_value) { emit(Op::Pop); return false; }
    return true;
  }

  bool gen_builtin_call(const Expr& expr, bool want_value) {
    const auto id = static_cast<Builtin>(expr.callee_builtin);
    const BuiltinInfo& info = builtin_info(id);

    switch (info.kind) {
      case BuiltinKind::WorkItem: {
        if (info.arity == 1) {
          gen_expr(*expr.args[0], true);
        } else {
          emit(Op::PushI, 0, 0);  // get_work_dim: dummy operand
        }
        emit(Op::WorkItemFn, expr.callee_builtin);
        if (!want_value) { emit(Op::Pop); return false; }
        return true;
      }
      case BuiltinKind::Barrier: {
        gen_expr(*expr.args[0], true);
        emit(Op::BarrierOp);
        return false;
      }
      case BuiltinKind::MathFp: {
        const Scalar common = expr.type.scalar;
        for (const auto& arg : expr.args) {
          gen_expr(*arg, true);
          convert(arg->type.scalar, common);
        }
        emit(Op::BuiltinOp, expr.callee_builtin,
             common == Scalar::Double ? kClsF64 : kClsF32);
        if (!want_value) { emit(Op::Pop); return false; }
        return true;
      }
      case BuiltinKind::Common:
      case BuiltinKind::IntOnly: {
        const Scalar common = expr.type.scalar;
        for (const auto& arg : expr.args) {
          gen_expr(*arg, true);
          convert(arg->type.scalar, common);
        }
        std::int64_t cls = kClsInt;
        if (common == Scalar::Float) cls = kClsF32;
        else if (common == Scalar::Double) cls = kClsF64;
        else if (is_unsigned_integer(common)) cls = kClsUInt;
        emit(Op::BuiltinOp, expr.callee_builtin, cls);
        renormalize_builtin_result(common);
        if (!want_value) { emit(Op::Pop); return false; }
        return true;
      }
    }
    throw InternalError("gen_builtin_call: bad kind");
  }

  void renormalize_builtin_result(Scalar s) {
    if (is_integer(s)) renorm(s);
  }

  // --- Statements -------------------------------------------------------------

  void gen_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Compound:
        for (const auto& s : stmt.body) gen_stmt(*s);
        return;
      case StmtKind::Decl:
        for (const auto& d : stmt.decls) {
          if (d->init) {
            gen_expr(*d->init, true);
            convert(d->init->type, d->type);
            emit(Op::StoreSlot, d->slot);
          }
        }
        return;
      case StmtKind::ExprStmt:
        gen_expr(*stmt.expr, false);
        return;
      case StmtKind::If: {
        gen_expr(*stmt.expr, true);
        gen_truth(stmt.expr->type);
        const std::size_t jump_else = emit(Op::JmpIfZero, -1);
        gen_stmt(*stmt.then_branch);
        if (stmt.else_branch) {
          const std::size_t jump_end = emit(Op::Jmp, -1);
          patch(jump_else, here());
          gen_stmt(*stmt.else_branch);
          patch(jump_end, here());
        } else {
          patch(jump_else, here());
        }
        return;
      }
      case StmtKind::While: {
        const std::size_t top = here();
        gen_expr(*stmt.expr, true);
        gen_truth(stmt.expr->type);
        const std::size_t jump_out = emit(Op::JmpIfZero, -1);
        loop_stack_.push_back({top, {}});
        gen_stmt(*stmt.then_branch);
        emit(Op::Jmp, static_cast<std::int32_t>(top));
        patch(jump_out, here());
        finish_loop();
        return;
      }
      case StmtKind::DoWhile: {
        const std::size_t top = here();
        // continue in a do-while jumps to the condition check; collect and
        // patch below.
        loop_stack_.push_back({std::size_t(-1), {}});
        gen_stmt(*stmt.then_branch);
        const std::size_t cond_pos = here();
        gen_expr(*stmt.expr, true);
        gen_truth(stmt.expr->type);
        emit(Op::JmpIfNonZero, static_cast<std::int32_t>(top));
        finish_loop(cond_pos);
        return;
      }
      case StmtKind::For: {
        if (stmt.init) gen_stmt(*stmt.init);
        const std::size_t top = here();
        std::size_t jump_out = std::size_t(-1);
        if (stmt.expr) {
          gen_expr(*stmt.expr, true);
          gen_truth(stmt.expr->type);
          jump_out = emit(Op::JmpIfZero, -1);
        }
        loop_stack_.push_back({std::size_t(-1), {}});
        gen_stmt(*stmt.then_branch);
        const std::size_t step_pos = here();
        if (stmt.step) gen_expr(*stmt.step, false);
        emit(Op::Jmp, static_cast<std::int32_t>(top));
        if (jump_out != std::size_t(-1)) patch(jump_out, here());
        finish_loop(step_pos);
        return;
      }
      case StmtKind::Return:
        if (stmt.expr) {
          gen_expr(*stmt.expr, true);
          convert(stmt.expr->type, fn_.return_type);
          emit(Op::Ret);
        } else {
          emit(Op::RetVoid);
        }
        return;
      case StmtKind::Break:
        loop_stack_.back().break_jumps.push_back(emit(Op::Jmp, -1));
        return;
      case StmtKind::Continue: {
        auto& loop = loop_stack_.back();
        if (loop.continue_target != std::size_t(-1)) {
          emit(Op::Jmp, static_cast<std::int32_t>(loop.continue_target));
        } else {
          loop.continue_jumps.push_back(emit(Op::Jmp, -1));
        }
        return;
      }
      case StmtKind::Empty:
        return;
    }
    throw InternalError("gen_stmt: bad kind");
  }

  struct LoopContext {
    std::size_t continue_target;  // -1 if deferred (for/do-while)
    std::vector<std::size_t> break_jumps;
    std::vector<std::size_t> continue_jumps;

    LoopContext(std::size_t target, std::vector<std::size_t> breaks)
        : continue_target(target), break_jumps(std::move(breaks)) {}
  };

  /// Pops the loop context, patching break jumps to `here()` and deferred
  /// continue jumps to `continue_pos` (if provided).
  void finish_loop(std::size_t continue_pos = std::size_t(-1)) {
    LoopContext loop = std::move(loop_stack_.back());
    loop_stack_.pop_back();
    for (const std::size_t j : loop.break_jumps) patch(j, here());
    for (const std::size_t j : loop.continue_jumps) {
      if (continue_pos == std::size_t(-1)) {
        throw InternalError("finish_loop: unpatched continue");
      }
      patch(j, continue_pos);
    }
  }

  const TranslationUnit& unit_;
  const FunctionDecl& fn_;
  CompiledFunction out_;
  int next_scratch_ = 0;
  int max_slots_ = 0;
  std::vector<LoopContext> loop_stack_;
};

}  // namespace

Module generate_bytecode(const TranslationUnit& unit) {
  Module module;
  for (const auto& fn : unit.functions) {
    FunctionCodegen gen(unit, *fn);
    module.functions.push_back(gen.run());
    module.by_name.emplace(fn->name,
                           static_cast<int>(module.functions.size() - 1));
  }
  return module;
}

}  // namespace hplrepro::clc
