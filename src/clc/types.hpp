#ifndef HPLREPRO_CLC_TYPES_HPP
#define HPLREPRO_CLC_TYPES_HPP

/// \file types.hpp
/// The clc type system: OpenCL C scalar types, address spaces and pointers.
///
/// The subset implemented is the sterile core of OpenCL C 1.x that HPL's
/// code generator emits and that the hand-written baseline kernels use:
/// scalar types, pointers qualified with an address space, and fixed-size
/// arrays (which appear only on declarations, not as first-class values).
/// Vector types (float4, ...) and images are out of scope.

#include <cstdint>
#include <string>

namespace hplrepro::clc {

enum class Scalar : std::uint8_t {
  Void,
  Bool,
  Char,
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  Float,
  Double,
};

enum class AddressSpace : std::uint8_t {
  Private,   // default for function-scope variables
  Global,    // __global
  Local,     // __local
  Constant,  // __constant
};

/// Size in bytes of a scalar object (OpenCL C sizes: long is 64-bit).
std::size_t scalar_size(Scalar s);

bool is_integer(Scalar s);
bool is_signed_integer(Scalar s);
bool is_unsigned_integer(Scalar s);
bool is_floating(Scalar s);

/// Integer conversion rank as in C; used for usual arithmetic conversions.
int scalar_rank(Scalar s);

const char* scalar_name(Scalar s);

/// A clc type: a scalar, or a pointer to a scalar in some address space.
struct Type {
  Scalar scalar = Scalar::Void;
  bool pointer = false;
  AddressSpace space = AddressSpace::Private;  // pointee space if pointer
  bool const_qualified = false;                // pointee constness if pointer

  static Type void_type() { return {}; }
  static Type scalar_type(Scalar s) { return Type{s, false, AddressSpace::Private, false}; }
  static Type pointer_to(Scalar s, AddressSpace space, bool is_const = false) {
    return Type{s, true, space, is_const};
  }

  bool is_void() const { return !pointer && scalar == Scalar::Void; }
  bool is_arithmetic() const { return !pointer && scalar != Scalar::Void; }
  bool is_integer() const { return !pointer && clc::is_integer(scalar); }
  bool is_floating() const { return !pointer && clc::is_floating(scalar); }

  friend bool operator==(const Type& a, const Type& b) {
    return a.scalar == b.scalar && a.pointer == b.pointer &&
           (!a.pointer || (a.space == b.space &&
                           a.const_qualified == b.const_qualified));
  }
  friend bool operator!=(const Type& a, const Type& b) { return !(a == b); }

  std::string to_string() const;
};

/// Result type of a binary arithmetic expression per the usual arithmetic
/// conversions (C99 6.3.1.8, which OpenCL C inherits).
Scalar arithmetic_result(Scalar a, Scalar b);

/// Scalar type an operand of type `s` is promoted to (integer promotion).
Scalar promote(Scalar s);

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_TYPES_HPP
