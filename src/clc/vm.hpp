#ifndef HPLREPRO_CLC_VM_HPP
#define HPLREPRO_CLC_VM_HPP

/// \file vm.hpp
/// The clc virtual machine: executes one work-item of a compiled kernel.
///
/// A work-item is a resumable activation: its operand stack, call frames
/// and private arena are plain data members, so executing `barrier()`
/// simply returns control to the caller (the clsim group scheduler) with
/// RunStatus::Barrier; calling run() again resumes after the barrier once
/// the whole group has arrived. No OS threads or fibers are involved.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "clc/bytecode.hpp"
#include "clc/stats.hpp"
#include "support/error.hpp"

namespace hplrepro::clc {

/// Thrown when a kernel performs an invalid operation at run time
/// (out-of-bounds access, stack overflow, exhausted fuel, ...).
class TrapError : public Error {
public:
  explicit TrapError(const std::string& what) : Error("kernel trap: " + what) {}
};

struct LaunchInfo {
  int work_dim = 1;
  std::uint64_t global_size[3] = {1, 1, 1};
  std::uint64_t local_size[3] = {1, 1, 1};
  std::uint64_t num_groups[3] = {1, 1, 1};
};

struct WorkItemInfo {
  std::uint64_t global_id[3] = {0, 0, 0};
  std::uint64_t local_id[3] = {0, 0, 0};
  std::uint64_t group_id[3] = {0, 0, 0};
  std::uint64_t linear_in_group = 0;  // used by the coalescing tracker
};

/// Memory environment shared by the work-items of one launch/group.
struct MemoryEnv {
  /// Buffer table for Global/Constant pointers (index = PtrSpace buffer id).
  std::span<std::span<std::byte>> buffers;
  /// This group's __local arena.
  std::span<std::byte> local;
};

/// Observer for global-memory accesses, used for coalescing analysis.
/// `pc_key` identifies the memory instruction (function index << 20 | pc).
class MemTracker {
public:
  virtual ~MemTracker() = default;
  virtual void global_access(std::uint32_t pc_key, std::uint64_t item_linear,
                             std::uint64_t buffer, std::uint64_t offset,
                             std::uint32_t size, bool is_store) = 0;
};

enum class RunStatus { Done, Barrier };

class WorkItemVM {
public:
  /// Prepares the VM to execute `kernel` from `module` with the given
  /// argument values (scalars or encoded pointers), one per parameter.
  void reset(const Module& module, const CompiledFunction& kernel,
             std::span<const Value> args);

  /// Runs until the kernel finishes (Done) or suspends at a barrier
  /// (Barrier). Resumable: call again after a Barrier return.
  RunStatus run(const MemoryEnv& mem, const LaunchInfo& launch,
                const WorkItemInfo& item, ExecStats& stats,
                MemTracker* tracker);

  /// Flags of the barrier that suspended the item (valid after Barrier).
  std::uint64_t barrier_flags() const { return barrier_flags_; }

  /// Upper bound on dynamic instructions per run() call; a trap fires when
  /// exceeded (guards against infinite loops in user kernels).
  void set_fuel(std::uint64_t fuel) { fuel_ = fuel; }

private:
  struct Frame {
    const CompiledFunction* fn = nullptr;
    std::size_t pc = 0;
    std::size_t slot_base = 0;
    std::size_t priv_base = 0;
  };

  const Module* module_ = nullptr;
  std::vector<Value> stack_;
  std::vector<Frame> frames_;
  std::vector<Value> slots_;
  std::vector<std::byte> private_arena_;
  std::uint64_t barrier_flags_ = 0;
  std::uint64_t fuel_ = 1ull << 62;
};

/// Sentinel "no return register" for RegFrame::ret_reg.
inline constexpr std::uint32_t kRegNoRet = 0xFFFFFFFFu;

/// A call frame of the register interpreters (RegItemVM / WorkGroupVM).
struct RegFrame {
  const RegFunction* fn = nullptr;
  std::uint32_t pc = 0;        // saved across calls; live in run()'s locals
  std::uint32_t ret_reg = kRegNoRet;  // absolute index into regs_, or kRegNoRet
  std::size_t base = 0;        // this frame's register window in regs_
  std::size_t priv_base = 0;
};

/// The shared direct-threaded dispatch loop behind RegItemVM (one
/// activation per work-item) and WorkGroupVM (one activation per group,
/// pocl-style work-item loops). Defined in vm.cpp.
struct RegRunner;

/// Executes the register form (Module::reg_functions) produced by
/// lower_module with a direct-threaded dispatch loop (computed goto under
/// GCC/Clang; define HPLREPRO_VM_FORCE_SWITCH to get the portable switch
/// loop). Drop-in equivalent of WorkItemVM: bit-identical results,
/// identical ExecStats (accounted per basic block from the histograms
/// precomputed at lowering time), identical trap messages, and the same
/// barrier suspend/resume protocol — a suspended item is just the saved
/// register file plus the block cursor to resume at.
class RegItemVM {
public:
  void reset(const Module& module, const CompiledFunction& kernel,
             std::span<const Value> args);

  RunStatus run(const MemoryEnv& mem, const LaunchInfo& launch,
                const WorkItemInfo& item, ExecStats& stats,
                MemTracker* tracker);

  std::uint64_t barrier_flags() const { return barrier_flags_; }
  void set_fuel(std::uint64_t fuel) { fuel_ = fuel; }

private:
  friend struct RegRunner;

  const Module* module_ = nullptr;
  std::vector<Value> regs_;
  std::vector<RegFrame> frames_;
  std::vector<std::byte> private_arena_;
  std::uint64_t barrier_flags_ = 0;
  std::uint64_t fuel_ = 1ull << 62;
  std::uint32_t pending_block_ = 0;  // block to account+enter on next run()
};

/// Work-group execution mode (the -cl-wg-loops tentpole): runs all items
/// of a work-group on ONE activation by looping each barrier-delimited
/// region over the group — no per-item reset(), no per-item register
/// files, no suspend/resume machinery. Per-item state is reduced to the
/// spill rows of the registers live across region boundaries (WgInfo,
/// computed at build time by analyze_wg_loops) plus a private arena for
/// kernels that use private memory.
///
/// Fuel and ExecStats accounting stay field-identical to RegItemVM: the
/// fuel budget is debited per item per region (each item-region entry
/// resets the local budget, exactly like a per-item run() call), and the
/// block histograms are accounted per entered block as before.
class WorkGroupVM {
public:
  /// Binds the VM to a kernel (must be wg-eligible per module.wg_info) and
  /// its launch arguments for groups of `group_items` work-items. Called
  /// once per launch chunk; run_group reuses all scratch across groups.
  void prepare(const Module& module, const CompiledFunction& kernel,
               std::span<const Value> args, std::size_t group_items);

  /// Runs one whole work-group to completion. `items` must point at
  /// group_items WorkItemInfo entries. Throws TrapError on kernel traps,
  /// including the divergent-barrier condition (a region exit taken by
  /// some items while others reached a barrier).
  void run_group(const MemoryEnv& mem, const LaunchInfo& launch,
                 const WorkItemInfo* items, ExecStats& stats,
                 MemTracker* tracker);

  void set_fuel(std::uint64_t fuel) { fuel_ = fuel; }

  /// One trip per work-item run through the region loops; accumulated over
  /// every group this VM executed (the vm.wg_loop_trips metric).
  std::uint64_t loop_trips() const { return loop_trips_; }
  /// Item-region executions: loop_trips plus one per barrier resumption
  /// (the vm.regions metric).
  std::uint64_t regions_executed() const { return regions_executed_; }

private:
  friend struct RegRunner;

  const Module* module_ = nullptr;
  const RegFunction* kernel_fn_ = nullptr;
  const WgInfo* wg_ = nullptr;
  bool uses_barrier_ = false;
  std::uint64_t kernel_priv_bytes_ = 0;
  std::size_t group_items_ = 0;

  std::vector<Value> regs_;       // ONE shared register file for the group
  std::vector<RegFrame> frames_;
  std::vector<Value> args_;        // launch arguments, installed per group
  std::vector<Value> spill_init_;  // per-item row template: args/zeros
  std::vector<Value> spills_;      // group_items x live_regs rows
  std::size_t spill_stride_ = 0;   // row width (= wg_->live_regs.size())

  // WgInfo's per-entry restore/save lists flattened by prepare() into one
  // contiguous pair array with per-block spans, so the region-switch hot
  // path does a single indexed load instead of chasing entry_index into a
  // vector of vectors.
  struct SpillSpan {
    std::uint32_t begin = 0;
    std::uint32_t len = 0;
  };
  std::vector<std::pair<std::uint16_t, std::uint16_t>> spill_pairs_;
  std::vector<SpillSpan> restore_by_block_;
  std::vector<SpillSpan> save_by_block_;
  std::vector<std::vector<std::byte>> privs_;  // per-item private arenas
  std::vector<std::uint32_t> pending_;  // per-item resume block
  std::vector<char> done_;
  std::uint64_t barrier_flags_ = 0;
  std::uint64_t fuel_ = 1ull << 62;

  // Phase bookkeeping for the divergent-barrier trap.
  std::size_t done_count_ = 0;
  std::size_t phase_finished_ = 0;
  std::size_t phase_at_barrier_ = 0;

  std::uint64_t loop_trips_ = 0;
  std::uint64_t regions_executed_ = 0;
};

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_VM_HPP
