#ifndef HPLREPRO_CLC_SEMA_HPP
#define HPLREPRO_CLC_SEMA_HPP

/// \file sema.hpp
/// Semantic analysis for the OpenCL C subset: name resolution, type
/// checking and annotation, storage assignment (frame slots and local /
/// private arena offsets), call resolution (user functions and builtins),
/// and whole-program checks (no recursion, __local only in kernels).

#include <vector>

#include "clc/ast.hpp"
#include "clc/diagnostics.hpp"

namespace hplrepro::clc {

class Sema {
public:
  Sema(TranslationUnit& unit, DiagnosticSink& diags);

  /// Runs all checks; diagnostics are reported into the sink.
  void run();

private:
  struct Scope;

  void analyze_function(FunctionDecl& fn, int index);
  void analyze_stmt(Stmt& stmt);
  void declare_var(VarDecl& decl);

  /// Type-checks an expression tree; annotates type/is_lvalue. Returns the
  /// result type (Void on error, after reporting).
  Type analyze_expr(Expr& expr);
  Type analyze_var_ref(Expr& expr);
  Type analyze_unary(Expr& expr);
  Type analyze_binary(Expr& expr);
  Type analyze_assign(Expr& expr);
  Type analyze_conditional(Expr& expr);
  Type analyze_call(Expr& expr);
  Type analyze_index(Expr& expr);
  Type analyze_cast(Expr& expr);

  /// Reports an error at the expression's location and returns Void.
  Type error(const Expr& expr, const std::string& message);

  bool check_convertible(const Expr& value, const Type& to,
                         const char* context);

  void check_no_recursion();

  TranslationUnit& unit_;
  DiagnosticSink& diags_;

  FunctionDecl* current_fn_ = nullptr;
  int current_fn_index_ = -1;
  int loop_depth_ = 0;

  std::vector<std::vector<VarDecl*>> scopes_;
  std::vector<std::vector<int>> call_edges_;  // caller index -> callee indices
};

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_SEMA_HPP
