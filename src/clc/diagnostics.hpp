#ifndef HPLREPRO_CLC_DIAGNOSTICS_HPP
#define HPLREPRO_CLC_DIAGNOSTICS_HPP

/// \file diagnostics.hpp
/// Diagnostic collection for the clc compiler. A build produces a list of
/// diagnostics (the OpenCL "build log"); any error-severity entry makes the
/// build fail with CompileError, mirroring clBuildProgram semantics.

#include <string>
#include <vector>

#include "support/error.hpp"

namespace hplrepro::clc {

enum class Severity { Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  int line = 0;
  int column = 0;
  std::string message;

  std::string to_string() const;
};

class DiagnosticSink {
public:
  void error(int line, int column, std::string message);
  void warning(int line, int column, std::string message);

  bool has_errors() const { return error_count_ > 0; }
  const std::vector<Diagnostic>& entries() const { return entries_; }

  /// Formats all entries, one per line — the "build log".
  std::string log() const;

private:
  std::vector<Diagnostic> entries_;
  int error_count_ = 0;
};

/// Thrown by clc::compile when the source has errors. Carries the build log.
class CompileError : public Error {
public:
  explicit CompileError(std::string log)
      : Error("clc compile failed:\n" + log), log_(std::move(log)) {}

  const std::string& build_log() const { return log_; }

private:
  std::string log_;
};

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_DIAGNOSTICS_HPP
