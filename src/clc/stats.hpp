#ifndef HPLREPRO_CLC_STATS_HPP
#define HPLREPRO_CLC_STATS_HPP

/// \file stats.hpp
/// Dynamic execution statistics gathered by the VM. The clsim timing model
/// turns these counters into simulated device time.

#include <cstdint>

namespace hplrepro::clc {

struct ExecStats {
  // Dynamic instruction counts by class.
  std::uint64_t control_ops = 0;
  std::uint64_t int_ops = 0;
  std::uint64_t float_ops = 0;
  std::uint64_t double_ops = 0;
  std::uint64_t special_ops = 0;  // transcendental builtins
  // Optimizer superinstructions executed (LIdx*/SIdx*/Mad*). Each one also
  // counts once in its op class above; this tracks how much of the dynamic
  // stream ran fused (each fused op replaces at least two unfused ops).
  std::uint64_t fused_ops = 0;

  // Memory traffic.
  std::uint64_t global_load_bytes = 0;
  std::uint64_t global_store_bytes = 0;
  std::uint64_t global_accesses = 0;
  std::uint64_t global_transactions = 0;  // after coalescing analysis
  std::uint64_t local_bytes = 0;
  std::uint64_t local_accesses = 0;
  std::uint64_t private_bytes = 0;

  // Structure.
  std::uint64_t barriers_executed = 0;  // one per item per barrier
  std::uint64_t items = 0;
  std::uint64_t groups = 0;

  std::uint64_t total_ops() const {
    return control_ops + int_ops + float_ops + double_ops + special_ops;
  }

  ExecStats& operator+=(const ExecStats& o) {
    control_ops += o.control_ops;
    int_ops += o.int_ops;
    float_ops += o.float_ops;
    double_ops += o.double_ops;
    special_ops += o.special_ops;
    fused_ops += o.fused_ops;
    global_load_bytes += o.global_load_bytes;
    global_store_bytes += o.global_store_bytes;
    global_accesses += o.global_accesses;
    global_transactions += o.global_transactions;
    local_bytes += o.local_bytes;
    local_accesses += o.local_accesses;
    private_bytes += o.private_bytes;
    barriers_executed += o.barriers_executed;
    items += o.items;
    groups += o.groups;
    return *this;
  }
};

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_STATS_HPP
