#include "clc/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace hplrepro::clc {

namespace {

const std::unordered_map<std::string_view, Tok>& keyword_table() {
  static const std::unordered_map<std::string_view, Tok> table = {
      {"void", Tok::KwVoid},       {"bool", Tok::KwBool},
      {"char", Tok::KwChar},       {"uchar", Tok::KwUChar},
      {"short", Tok::KwShort},     {"ushort", Tok::KwUShort},
      {"int", Tok::KwInt},         {"uint", Tok::KwUInt},
      {"long", Tok::KwLong},       {"ulong", Tok::KwULong},
      {"float", Tok::KwFloat},     {"double", Tok::KwDouble},
      {"size_t", Tok::KwSizeT},    {"unsigned", Tok::KwUInt},
      {"if", Tok::KwIf},           {"else", Tok::KwElse},
      {"for", Tok::KwFor},         {"while", Tok::KwWhile},
      {"do", Tok::KwDo},           {"return", Tok::KwReturn},
      {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
      {"const", Tok::KwConst},
      {"__kernel", Tok::KwKernel}, {"kernel", Tok::KwKernel},
      {"__global", Tok::KwGlobal}, {"global", Tok::KwGlobal},
      {"__local", Tok::KwLocal},   {"local", Tok::KwLocal},
      {"__constant", Tok::KwConstant}, {"constant", Tok::KwConstant},
      {"__private", Tok::KwPrivate},   {"private", Tok::KwPrivate},
      {"true", Tok::KwTrue},       {"false", Tok::KwFalse},
  };
  return table;
}

}  // namespace

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "<end of input>";
    case Tok::Identifier: return "identifier";
    case Tok::IntLiteral: return "integer literal";
    case Tok::FloatLiteral: return "floating literal";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semicolon: return "';'";
    case Tok::Question: return "'?'";
    case Tok::Colon: return "':'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::Bang: return "'!'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::Less: return "'<'";
    case Tok::Greater: return "'>'";
    case Tok::LessEq: return "'<='";
    case Tok::GreaterEq: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::BangEq: return "'!='";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::PercentAssign: return "'%='";
    case Tok::AmpAssign: return "'&='";
    case Tok::PipeAssign: return "'|='";
    case Tok::CaretAssign: return "'^='";
    case Tok::ShlAssign: return "'<<='";
    case Tok::ShrAssign: return "'>>='";
    case Tok::PlusPlus: return "'++'";
    case Tok::MinusMinus: return "'--'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwBool: return "'bool'";
    case Tok::KwChar: return "'char'";
    case Tok::KwUChar: return "'uchar'";
    case Tok::KwShort: return "'short'";
    case Tok::KwUShort: return "'ushort'";
    case Tok::KwInt: return "'int'";
    case Tok::KwUInt: return "'uint'";
    case Tok::KwLong: return "'long'";
    case Tok::KwULong: return "'ulong'";
    case Tok::KwFloat: return "'float'";
    case Tok::KwDouble: return "'double'";
    case Tok::KwSizeT: return "'size_t'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwFor: return "'for'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwDo: return "'do'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::KwConst: return "'const'";
    case Tok::KwKernel: return "'__kernel'";
    case Tok::KwGlobal: return "'__global'";
    case Tok::KwLocal: return "'__local'";
    case Tok::KwConstant: return "'__constant'";
    case Tok::KwPrivate: return "'__private'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
  }
  return "<?>";
}

Lexer::Lexer(std::string_view source, DiagnosticSink& diags)
    : src_(source), diags_(diags) {}

char Lexer::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
  const char c = peek();
  if (c == '\0') return c;
  ++pos_;
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_whitespace_and_comments() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_.error(line_, column_, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::make(Tok kind) const {
  Token t;
  t.kind = kind;
  t.line = tok_line_;
  t.column = tok_column_;
  return t;
}

Token Lexer::lex_identifier_or_keyword() {
  const std::size_t start = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    advance();
  }
  const std::string_view text = src_.substr(start, pos_ - start);
  const auto& keywords = keyword_table();
  if (auto it = keywords.find(text); it != keywords.end()) {
    return make(it->second);
  }
  Token t = make(Tok::Identifier);
  t.text = std::string(text);
  return t;
}

Token Lexer::lex_number() {
  const std::size_t start = pos_;
  bool is_float = false;
  bool is_hex = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    is_hex = true;
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek()))) advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '.') {
      is_float = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      const char sign = peek(1);
      if (std::isdigit(static_cast<unsigned char>(sign)) ||
          ((sign == '+' || sign == '-') &&
           std::isdigit(static_cast<unsigned char>(peek(2))))) {
        is_float = true;
        advance();  // e
        if (peek() == '+' || peek() == '-') advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
    }
  }

  const std::string body(src_.substr(start, pos_ - start));

  if (is_float) {
    Token t = make(Tok::FloatLiteral);
    t.float_value = std::strtod(body.c_str(), nullptr);
    if (peek() == 'f' || peek() == 'F') {
      advance();
      t.is_float_suffix = true;
    }
    return t;
  }

  Token t = make(Tok::IntLiteral);
  t.int_value = std::strtoull(body.c_str(), nullptr, is_hex ? 16 : 10);
  for (;;) {
    if (peek() == 'u' || peek() == 'U') {
      advance();
      t.is_unsigned_suffix = true;
    } else if (peek() == 'l' || peek() == 'L') {
      advance();
      t.is_long_suffix = true;
    } else {
      break;
    }
  }
  return t;
}

Token Lexer::next() {
  skip_whitespace_and_comments();
  tok_line_ = line_;
  tok_column_ = column_;

  const char c = peek();
  if (c == '\0') return make(Tok::End);

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return lex_identifier_or_keyword();
  }
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    return lex_number();
  }

  advance();
  switch (c) {
    case '(': return make(Tok::LParen);
    case ')': return make(Tok::RParen);
    case '{': return make(Tok::LBrace);
    case '}': return make(Tok::RBrace);
    case '[': return make(Tok::LBracket);
    case ']': return make(Tok::RBracket);
    case ',': return make(Tok::Comma);
    case ';': return make(Tok::Semicolon);
    case '?': return make(Tok::Question);
    case ':': return make(Tok::Colon);
    case '~': return make(Tok::Tilde);
    case '+':
      if (match('+')) return make(Tok::PlusPlus);
      if (match('=')) return make(Tok::PlusAssign);
      return make(Tok::Plus);
    case '-':
      if (match('-')) return make(Tok::MinusMinus);
      if (match('=')) return make(Tok::MinusAssign);
      return make(Tok::Minus);
    case '*':
      return match('=') ? make(Tok::StarAssign) : make(Tok::Star);
    case '/':
      return match('=') ? make(Tok::SlashAssign) : make(Tok::Slash);
    case '%':
      return match('=') ? make(Tok::PercentAssign) : make(Tok::Percent);
    case '^':
      return match('=') ? make(Tok::CaretAssign) : make(Tok::Caret);
    case '!':
      return match('=') ? make(Tok::BangEq) : make(Tok::Bang);
    case '=':
      return match('=') ? make(Tok::EqEq) : make(Tok::Assign);
    case '&':
      if (match('&')) return make(Tok::AmpAmp);
      if (match('=')) return make(Tok::AmpAssign);
      return make(Tok::Amp);
    case '|':
      if (match('|')) return make(Tok::PipePipe);
      if (match('=')) return make(Tok::PipeAssign);
      return make(Tok::Pipe);
    case '<':
      if (match('<')) return match('=') ? make(Tok::ShlAssign) : make(Tok::Shl);
      if (match('=')) return make(Tok::LessEq);
      return make(Tok::Less);
    case '>':
      if (match('>')) return match('=') ? make(Tok::ShrAssign) : make(Tok::Shr);
      if (match('=')) return make(Tok::GreaterEq);
      return make(Tok::Greater);
    default:
      diags_.error(tok_line_, tok_column_,
                   std::string("unexpected character '") + c + "'");
      return next();
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    const bool done = t.kind == Tok::End;
    out.push_back(std::move(t));
    if (done) return out;
  }
}

}  // namespace hplrepro::clc
