#include "clc/types.hpp"

#include "support/error.hpp"

namespace hplrepro::clc {

std::size_t scalar_size(Scalar s) {
  switch (s) {
    case Scalar::Void: return 0;
    case Scalar::Bool: return 1;
    case Scalar::Char:
    case Scalar::UChar: return 1;
    case Scalar::Short:
    case Scalar::UShort: return 2;
    case Scalar::Int:
    case Scalar::UInt: return 4;
    case Scalar::Long:
    case Scalar::ULong: return 8;
    case Scalar::Float: return 4;
    case Scalar::Double: return 8;
  }
  throw InternalError("scalar_size: bad scalar");
}

bool is_integer(Scalar s) {
  switch (s) {
    case Scalar::Bool:
    case Scalar::Char:
    case Scalar::UChar:
    case Scalar::Short:
    case Scalar::UShort:
    case Scalar::Int:
    case Scalar::UInt:
    case Scalar::Long:
    case Scalar::ULong:
      return true;
    default:
      return false;
  }
}

bool is_signed_integer(Scalar s) {
  switch (s) {
    case Scalar::Char:
    case Scalar::Short:
    case Scalar::Int:
    case Scalar::Long:
      return true;
    default:
      return false;
  }
}

bool is_unsigned_integer(Scalar s) {
  return is_integer(s) && !is_signed_integer(s) && s != Scalar::Bool;
}

bool is_floating(Scalar s) {
  return s == Scalar::Float || s == Scalar::Double;
}

int scalar_rank(Scalar s) {
  switch (s) {
    case Scalar::Bool: return 0;
    case Scalar::Char:
    case Scalar::UChar: return 1;
    case Scalar::Short:
    case Scalar::UShort: return 2;
    case Scalar::Int:
    case Scalar::UInt: return 3;
    case Scalar::Long:
    case Scalar::ULong: return 4;
    case Scalar::Float: return 5;
    case Scalar::Double: return 6;
    case Scalar::Void: return -1;
  }
  throw InternalError("scalar_rank: bad scalar");
}

const char* scalar_name(Scalar s) {
  switch (s) {
    case Scalar::Void: return "void";
    case Scalar::Bool: return "bool";
    case Scalar::Char: return "char";
    case Scalar::UChar: return "uchar";
    case Scalar::Short: return "short";
    case Scalar::UShort: return "ushort";
    case Scalar::Int: return "int";
    case Scalar::UInt: return "uint";
    case Scalar::Long: return "long";
    case Scalar::ULong: return "ulong";
    case Scalar::Float: return "float";
    case Scalar::Double: return "double";
  }
  return "?";
}

std::string Type::to_string() const {
  std::string out;
  if (pointer) {
    switch (space) {
      case AddressSpace::Private: out += "__private "; break;
      case AddressSpace::Global: out += "__global "; break;
      case AddressSpace::Local: out += "__local "; break;
      case AddressSpace::Constant: out += "__constant "; break;
    }
    if (const_qualified) out += "const ";
  }
  out += scalar_name(scalar);
  if (pointer) out += "*";
  return out;
}

Scalar promote(Scalar s) {
  // bool/char/short (and unsigned variants) promote to int; int fits all
  // their values so the promoted type is always signed int.
  switch (s) {
    case Scalar::Bool:
    case Scalar::Char:
    case Scalar::UChar:
    case Scalar::Short:
    case Scalar::UShort:
      return Scalar::Int;
    default:
      return s;
  }
}

Scalar arithmetic_result(Scalar a, Scalar b) {
  if (a == Scalar::Double || b == Scalar::Double) return Scalar::Double;
  if (a == Scalar::Float || b == Scalar::Float) return Scalar::Float;
  a = promote(a);
  b = promote(b);
  if (a == b) return a;
  const bool sa = is_signed_integer(a), sb = is_signed_integer(b);
  if (sa == sb) return scalar_rank(a) >= scalar_rank(b) ? a : b;
  const Scalar u = sa ? b : a;  // the unsigned one
  const Scalar s = sa ? a : b;  // the signed one
  if (scalar_rank(u) >= scalar_rank(s)) return u;
  // Signed type has higher rank. It can represent all values of the
  // unsigned type only when strictly wider (int vs uint etc. -> here rank
  // comparison already covers it because widths are tied to rank).
  return s;
}

}  // namespace hplrepro::clc
