#include "clc/builtins.hpp"

#include <array>
#include <unordered_map>

#include "support/error.hpp"

namespace hplrepro::clc {

namespace {

constexpr std::array kBuiltins = {
    BuiltinInfo{Builtin::GetWorkDim, BuiltinKind::WorkItem, "get_work_dim", 0},
    BuiltinInfo{Builtin::GetGlobalId, BuiltinKind::WorkItem, "get_global_id", 1},
    BuiltinInfo{Builtin::GetLocalId, BuiltinKind::WorkItem, "get_local_id", 1},
    BuiltinInfo{Builtin::GetGroupId, BuiltinKind::WorkItem, "get_group_id", 1},
    BuiltinInfo{Builtin::GetGlobalSize, BuiltinKind::WorkItem, "get_global_size", 1},
    BuiltinInfo{Builtin::GetLocalSize, BuiltinKind::WorkItem, "get_local_size", 1},
    BuiltinInfo{Builtin::GetNumGroups, BuiltinKind::WorkItem, "get_num_groups", 1},
    BuiltinInfo{Builtin::Barrier, BuiltinKind::Barrier, "barrier", 1},
    BuiltinInfo{Builtin::Sqrt, BuiltinKind::MathFp, "sqrt", 1},
    BuiltinInfo{Builtin::Rsqrt, BuiltinKind::MathFp, "rsqrt", 1},
    BuiltinInfo{Builtin::Fabs, BuiltinKind::MathFp, "fabs", 1},
    BuiltinInfo{Builtin::Exp, BuiltinKind::MathFp, "exp", 1},
    BuiltinInfo{Builtin::Exp2, BuiltinKind::MathFp, "exp2", 1},
    BuiltinInfo{Builtin::Log, BuiltinKind::MathFp, "log", 1},
    BuiltinInfo{Builtin::Log2, BuiltinKind::MathFp, "log2", 1},
    BuiltinInfo{Builtin::Log10, BuiltinKind::MathFp, "log10", 1},
    BuiltinInfo{Builtin::Sin, BuiltinKind::MathFp, "sin", 1},
    BuiltinInfo{Builtin::Cos, BuiltinKind::MathFp, "cos", 1},
    BuiltinInfo{Builtin::Tan, BuiltinKind::MathFp, "tan", 1},
    BuiltinInfo{Builtin::Asin, BuiltinKind::MathFp, "asin", 1},
    BuiltinInfo{Builtin::Acos, BuiltinKind::MathFp, "acos", 1},
    BuiltinInfo{Builtin::Atan, BuiltinKind::MathFp, "atan", 1},
    BuiltinInfo{Builtin::Floor, BuiltinKind::MathFp, "floor", 1},
    BuiltinInfo{Builtin::Ceil, BuiltinKind::MathFp, "ceil", 1},
    BuiltinInfo{Builtin::Trunc, BuiltinKind::MathFp, "trunc", 1},
    BuiltinInfo{Builtin::Round, BuiltinKind::MathFp, "round", 1},
    BuiltinInfo{Builtin::Pow, BuiltinKind::MathFp, "pow", 2},
    BuiltinInfo{Builtin::Atan2, BuiltinKind::MathFp, "atan2", 2},
    BuiltinInfo{Builtin::Fmod, BuiltinKind::MathFp, "fmod", 2},
    BuiltinInfo{Builtin::Fmin, BuiltinKind::MathFp, "fmin", 2},
    BuiltinInfo{Builtin::Fmax, BuiltinKind::MathFp, "fmax", 2},
    BuiltinInfo{Builtin::Hypot, BuiltinKind::MathFp, "hypot", 2},
    BuiltinInfo{Builtin::Fma, BuiltinKind::MathFp, "fma", 3},
    BuiltinInfo{Builtin::Mad, BuiltinKind::MathFp, "mad", 3},
    BuiltinInfo{Builtin::Min, BuiltinKind::Common, "min", 2},
    BuiltinInfo{Builtin::Max, BuiltinKind::Common, "max", 2},
    BuiltinInfo{Builtin::Abs, BuiltinKind::IntOnly, "abs", 1},
    BuiltinInfo{Builtin::Clamp, BuiltinKind::Common, "clamp", 3},
};

static_assert(kBuiltins.size() == static_cast<std::size_t>(Builtin::Count_));

const std::unordered_map<std::string_view, const BuiltinInfo*>& name_table() {
  static const auto table = [] {
    std::unordered_map<std::string_view, const BuiltinInfo*> t;
    for (const auto& b : kBuiltins) t.emplace(b.name, &b);
    return t;
  }();
  return table;
}

}  // namespace

std::optional<BuiltinInfo> find_builtin(std::string_view name) {
  const auto& table = name_table();
  if (auto it = table.find(name); it != table.end()) return *it->second;
  return std::nullopt;
}

const BuiltinInfo& builtin_info(Builtin id) {
  const auto index = static_cast<std::size_t>(id);
  if (index >= kBuiltins.size()) throw InternalError("builtin_info: bad id");
  return kBuiltins[index];
}

bool is_transcendental(Builtin id) {
  switch (id) {
    case Builtin::Fabs:
    case Builtin::Fmin:
    case Builtin::Fmax:
    case Builtin::Fma:
    case Builtin::Mad:
    case Builtin::Floor:
    case Builtin::Ceil:
    case Builtin::Trunc:
    case Builtin::Round:
    case Builtin::Min:
    case Builtin::Max:
    case Builtin::Abs:
    case Builtin::Clamp:
      return false;
    default:
      return true;
  }
}

std::optional<std::uint64_t> predefined_constant(std::string_view name) {
  if (name == "CLK_LOCAL_MEM_FENCE") return kClkLocalMemFence;
  if (name == "CLK_GLOBAL_MEM_FENCE") return kClkGlobalMemFence;
  return std::nullopt;
}

}  // namespace hplrepro::clc
