#ifndef HPLREPRO_CLC_COMPILE_HPP
#define HPLREPRO_CLC_COMPILE_HPP

/// \file compile.hpp
/// Top-level clc entry point: source text in, executable Module out.

#include <string>
#include <string_view>

#include "clc/bytecode.hpp"
#include "clc/diagnostics.hpp"

namespace hplrepro::clc {

struct CompileResult {
  Module module;
  std::string build_log;  // warnings (and errors when not throwing)
};

/// Compiles OpenCL C source to bytecode.
/// \throws CompileError (with the build log) if the source has errors.
CompileResult compile(std::string_view source);

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_COMPILE_HPP
