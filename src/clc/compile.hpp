#ifndef HPLREPRO_CLC_COMPILE_HPP
#define HPLREPRO_CLC_COMPILE_HPP

/// \file compile.hpp
/// Top-level clc entry point: source text in, executable Module out.

#include <string>
#include <string_view>

#include "clc/bytecode.hpp"
#include "clc/diagnostics.hpp"
#include "clc/optimizer.hpp"

namespace hplrepro::clc {

/// Which interpreter executes the kernel: the stack bytecode directly, or
/// the register form lowered from it at build time and run by the
/// direct-threaded dispatch loop (same results, same stats, faster).
enum class InterpMode : std::uint8_t { Stack, Threaded };

/// Compilation knobs, settable through OpenCL-style build options.
struct CompileOptions {
  OptLevel opt_level = OptLevel::O2;  // real drivers optimize by default
  InterpMode interp = InterpMode::Threaded;
  /// Work-group compilation (pocl-style work-item loops): split kernels at
  /// barriers and run each region as a loop over the group on one shared
  /// activation. Only meaningful under InterpMode::Threaded; on by default.
  bool wg_loops = true;
  /// Lazy-DAG kernel fusion in the HPL front-end (map-map/map-reduce
  /// rewrites before launch). Parsed here so the option travels with the
  /// other build knobs; clc::compile itself ignores it — the HPL runtime
  /// applies it to its eval DAG. On by default.
  bool fusion = true;
};

/// Parses a clBuildProgram-style options string ("-cl-opt-disable -w ...").
/// Recognised: -cl-opt-disable / -O0 (disable the optimizer), -O1/-O2/-O3
/// (enable it; all map to the full pipeline), -cl-mad-enable (accepted; mad
/// fusion is bit-exact here so it is always on at O2), -w (ignored),
/// -cl-interp=stack|threaded (pick the interpreter; default threaded),
/// -cl-wg-loops[=on|off] (work-item loops; default on under threaded),
/// -cl-fusion[=on|off] (HPL eval-DAG kernel fusion; default on).
/// Returns false and sets `error` on the first unrecognised option.
bool parse_build_options(std::string_view options, CompileOptions& out,
                         std::string& error);

struct CompileResult {
  Module module;
  std::string build_log;  // warnings (and errors when not throwing)
  OptReport opt_report;   // what the optimizer did (level O0: nothing)
};

/// Compiles OpenCL C source to bytecode and optimizes it per `options`.
/// \throws CompileError (with the build log) if the source has errors.
CompileResult compile(std::string_view source,
                      const CompileOptions& options = {});

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_COMPILE_HPP
