#ifndef HPLREPRO_CLC_WGLOOPS_HPP
#define HPLREPRO_CLC_WGLOOPS_HPP

/// \file wgloops.hpp
/// Work-group compilation analysis (pocl-style work-item loops).
///
/// A kernel's register code is conceptually split at every `barrier()`
/// into regions; the work-group VM (WorkGroupVM, vm.hpp) then runs each
/// region as a loop over all items of a group on one shared activation
/// instead of one suspendable activation per item. For that to be sound,
/// the only per-item state the loop has to carry across a region boundary
/// is the set of registers live at a region entry — everything else is
/// either written before read inside the region (shared file is fine) or
/// lives in the item's private arena.
///
/// This pass computes, per kernel:
///   * eligibility (all barriers in top-level kernel code, well-formed
///     blocks; ineligible kernels keep per-item activations),
///   * the region count (resume points: block 0 + each barrier's resume
///     block),
///   * the live-register union over all region entries — the per-item
///     spill set.
///
/// Classic backward dataflow liveness over the basic blocks produced by
/// lower_module; runs at build time, after register lowering.

#include "clc/bytecode.hpp"

namespace hplrepro::clc {

/// Fills `module.wg_info` (parallel to `module.functions`) from the
/// register form. Requires module.has_reg_form(); a module without it is
/// left untouched. Non-kernel functions and ineligible kernels get a
/// default (ineligible) entry — the executor falls back to per-item VMs
/// for those.
void analyze_wg_loops(Module& module);

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_WGLOOPS_HPP
