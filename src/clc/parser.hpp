#ifndef HPLREPRO_CLC_PARSER_HPP
#define HPLREPRO_CLC_PARSER_HPP

/// \file parser.hpp
/// Recursive-descent parser for the OpenCL C subset.

#include <vector>

#include "clc/ast.hpp"
#include "clc/diagnostics.hpp"
#include "clc/token.hpp"

namespace hplrepro::clc {

class Parser {
public:
  Parser(std::vector<Token> tokens, DiagnosticSink& diags);

  /// Parses a translation unit. On syntax errors, diagnostics are recorded
  /// and a best-effort partial tree is returned; the caller must check
  /// diags.has_errors() before using it.
  TranslationUnit parse();

private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(Tok kind) const;
  bool accept(Tok kind);
  const Token& expect(Tok kind, const char* context);
  [[noreturn]] void fail(const Token& at, const std::string& message);

  bool at_type_start(int ahead = 0) const;
  bool token_is_scalar_type(Tok t) const;
  Scalar parse_scalar_type();

  std::unique_ptr<FunctionDecl> parse_function();
  std::unique_ptr<VarDecl> parse_param();
  StmtPtr parse_statement();
  StmtPtr parse_compound();
  StmtPtr parse_decl_statement();
  StmtPtr parse_if();
  StmtPtr parse_for();
  StmtPtr parse_while();
  StmtPtr parse_do_while();

  ExprPtr parse_expression();       // comma not supported at top level
  ExprPtr parse_assignment();
  ExprPtr parse_conditional();
  ExprPtr parse_binary(int min_precedence);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  ExprPtr make_expr(ExprKind kind, const Token& at) const;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticSink& diags_;
};

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_PARSER_HPP
