#ifndef HPLREPRO_CLC_AST_HPP
#define HPLREPRO_CLC_AST_HPP

/// \file ast.hpp
/// Abstract syntax tree for the OpenCL C subset. The parser builds it, the
/// semantic analyser annotates types and symbols in place, and the bytecode
/// generator consumes it.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clc/types.hpp"

namespace hplrepro::clc {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// A declared variable or parameter, owned by its enclosing function (or
/// by a DeclStmt). Sema fills in storage assignment.
struct VarDecl {
  std::string name;
  Type type;                   // element type if array_size > 0
  std::uint64_t array_size = 0;  // 0 = plain scalar/pointer variable
  AddressSpace space = AddressSpace::Private;  // storage space for arrays
  ExprPtr init;                // optional initializer (scalars only)
  int line = 0;
  int column = 0;

  // --- Assigned by sema ---
  bool is_param = false;
  int param_index = -1;
  int slot = -1;            // frame slot (scalars, pointers, array base ptr)
  std::uint64_t arena_offset = 0;  // offset in local/private arena (arrays)
};

enum class ExprKind : std::uint8_t {
  IntLit,
  FloatLit,
  VarRef,
  Unary,
  Binary,
  Assign,
  Conditional,
  Call,
  Index,
  Cast,
};

enum class UnaryOp : std::uint8_t {
  Plus, Neg, Not, BitNot, PreInc, PreDec, PostInc, PostDec,
};

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
  LogicalAnd, LogicalOr,
};

/// For Assign: which compound operation, if any.
enum class AssignOp : std::uint8_t {
  None, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
};

struct Expr {
  ExprKind kind;
  int line = 0;
  int column = 0;

  // Literals
  std::uint64_t int_value = 0;
  double float_value = 0.0;

  // VarRef
  std::string name;
  VarDecl* decl = nullptr;  // resolved by sema (null for builtin variables)

  // Unary / Binary / Assign / Conditional / Index / Cast
  UnaryOp unary_op = UnaryOp::Plus;
  BinaryOp binary_op = BinaryOp::Add;
  AssignOp assign_op = AssignOp::None;
  ExprPtr lhs;   // also: operand (unary), base (index), condition (?:)
  ExprPtr rhs;   // also: index (index), then-branch (?:)
  ExprPtr third; // else-branch (?:)

  // Call
  std::vector<ExprPtr> args;
  int callee_function = -1;  // resolved user function index
  int callee_builtin = -1;   // resolved builtin id

  // Cast target is stored in `type`.

  // --- Assigned by sema ---
  Type type;       // result type of the expression
  bool is_lvalue = false;

  explicit Expr(ExprKind k) : kind(k) {}
};

enum class StmtKind : std::uint8_t {
  Compound,
  Decl,
  ExprStmt,
  If,
  For,
  While,
  DoWhile,
  Return,
  Break,
  Continue,
  Empty,
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  int column = 0;

  std::vector<StmtPtr> body;            // Compound
  std::vector<std::unique_ptr<VarDecl>> decls;  // Decl
  ExprPtr expr;       // ExprStmt / Return value / If-For-While-DoWhile cond
  StmtPtr init;       // For
  ExprPtr step;       // For
  StmtPtr then_branch;  // If / loop body
  StmtPtr else_branch;  // If

  explicit Stmt(StmtKind k) : kind(k) {}
};

/// A function definition (kernel or helper).
struct FunctionDecl {
  std::string name;
  Type return_type;
  bool is_kernel = false;
  std::vector<std::unique_ptr<VarDecl>> params;
  StmtPtr body;
  int line = 0;
  int column = 0;

  // --- Assigned by sema / codegen ---
  int num_slots = 0;               // frame size in value slots
  std::uint64_t private_bytes = 0; // private arena bytes for this frame
  std::uint64_t local_bytes = 0;   // __local arena bytes (kernel-wide)
  bool uses_barrier = false;
  bool uses_double = false;
};

/// A whole translation unit.
struct TranslationUnit {
  std::vector<std::unique_ptr<FunctionDecl>> functions;
};

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_AST_HPP
