#ifndef HPLREPRO_CLC_TOKEN_HPP
#define HPLREPRO_CLC_TOKEN_HPP

/// \file token.hpp
/// Token kinds produced by the clc lexer.

#include <cstdint>
#include <string>

namespace hplrepro::clc {

enum class Tok : std::uint8_t {
  End,
  Identifier,
  IntLiteral,    // value in Token::int_value; unsigned/long suffix flags set
  FloatLiteral,  // value in Token::float_value; is_float_suffix for 'f'

  // Punctuation / operators
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Question, Colon,
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr,
  Less, Greater, LessEq, GreaterEq, EqEq, BangEq,
  AmpAmp, PipePipe,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
  PlusPlus, MinusMinus,

  // Keywords
  KwVoid, KwBool, KwChar, KwUChar, KwShort, KwUShort, KwInt, KwUInt,
  KwLong, KwULong, KwFloat, KwDouble, KwSizeT,
  KwIf, KwElse, KwFor, KwWhile, KwDo, KwReturn, KwBreak, KwContinue,
  KwConst, KwKernel, KwGlobal, KwLocal, KwConstant, KwPrivate,
  KwTrue, KwFalse,
};

const char* tok_name(Tok t);

struct Token {
  Tok kind = Tok::End;
  std::string text;        // identifier spelling (identifiers only)
  std::uint64_t int_value = 0;
  double float_value = 0.0;
  bool is_unsigned_suffix = false;
  bool is_long_suffix = false;
  bool is_float_suffix = false;
  int line = 0;
  int column = 0;
};

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_TOKEN_HPP
