#include "clc/preprocessor.hpp"

#include <unordered_map>

#include "clc/lexer.hpp"
#include "support/strings.hpp"

namespace hplrepro::clc {

PreprocessResult preprocess(std::string_view source, DiagnosticSink& diags) {
  PreprocessResult result;
  result.text.reserve(source.size());

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    const std::string_view line =
        source.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                         : eol - pos);
    ++line_no;

    const std::string_view trimmed = hplrepro::trim(line);
    if (!trimmed.empty() && trimmed.front() == '#') {
      const std::string_view directive = hplrepro::trim(trimmed.substr(1));
      if (hplrepro::starts_with(directive, "define")) {
        std::string_view rest = hplrepro::trim(directive.substr(6));
        // Name = leading identifier characters.
        std::size_t name_end = 0;
        while (name_end < rest.size() &&
               (std::isalnum(static_cast<unsigned char>(rest[name_end])) ||
                rest[name_end] == '_')) {
          ++name_end;
        }
        if (name_end == 0) {
          diags.error(line_no, 1, "#define requires a macro name");
        } else if (name_end < rest.size() && rest[name_end] == '(') {
          diags.error(line_no, 1,
                      "function-like macros are not supported by clc");
        } else {
          MacroDef def;
          def.name = std::string(rest.substr(0, name_end));
          def.replacement =
              std::string(hplrepro::trim(rest.substr(name_end)));
          result.macros.push_back(std::move(def));
        }
      } else if (hplrepro::starts_with(directive, "undef")) {
        const std::string name(hplrepro::trim(directive.substr(5)));
        std::erase_if(result.macros,
                      [&](const MacroDef& m) { return m.name == name; });
      } else if (hplrepro::starts_with(directive, "pragma")) {
        // Ignored (e.g. "#pragma OPENCL EXTENSION cl_khr_fp64 : enable").
      } else {
        diags.error(line_no, 1,
                    "unsupported preprocessor directive: " +
                        std::string(directive.substr(0, 16)));
      }
      // Blank the directive line, preserving line numbers.
    } else {
      result.text.append(line);
    }
    result.text.push_back('\n');

    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return result;
}

std::vector<Token> expand_macros(std::vector<Token> tokens,
                                 const std::vector<MacroDef>& macros,
                                 DiagnosticSink& diags) {
  if (macros.empty()) return tokens;

  std::unordered_map<std::string, std::vector<Token>> table;
  for (const auto& macro : macros) {
    DiagnosticSink scratch;
    Lexer lexer(macro.replacement, scratch);
    std::vector<Token> body = lexer.lex_all();
    body.pop_back();  // strip End
    if (scratch.has_errors()) {
      diags.error(0, 0, "invalid #define body for '" + macro.name + "'");
      continue;
    }
    table[macro.name] = std::move(body);
  }

  // Iteratively expand until fixpoint (nested object-like macros), with a
  // depth guard against cycles like "#define A B" / "#define B A".
  for (int depth = 0; depth < 16; ++depth) {
    bool changed = false;
    std::vector<Token> out;
    out.reserve(tokens.size());
    for (auto& token : tokens) {
      if (token.kind == Tok::Identifier) {
        auto it = table.find(token.text);
        if (it != table.end()) {
          for (Token t : it->second) {
            t.line = token.line;
            t.column = token.column;
            out.push_back(std::move(t));
          }
          changed = true;
          continue;
        }
      }
      out.push_back(std::move(token));
    }
    tokens = std::move(out);
    if (!changed) return tokens;
  }
  diags.error(0, 0, "macro expansion did not terminate (recursive #define?)");
  return tokens;
}

}  // namespace hplrepro::clc
