#ifndef HPLREPRO_CLC_CODEGEN_HPP
#define HPLREPRO_CLC_CODEGEN_HPP

/// \file codegen.hpp
/// Bytecode generation from the type-annotated AST. Must only run after
/// Sema succeeded; it assumes all invariants Sema establishes.
///
/// Stack invariant: every integer value on the operand stack is correctly
/// sign- or zero-extended to 64 bits according to its static type; f32
/// values live in Value::f32, f64 in Value::f64. The generator re-normalises
/// after any operation whose result type is narrower than 64 bits, which
/// gives C's wraparound semantics for 32-bit and narrower arithmetic.

#include "clc/ast.hpp"
#include "clc/bytecode.hpp"

namespace hplrepro::clc {

/// Compiles the translation unit into a Module.
Module generate_bytecode(const TranslationUnit& unit);

}  // namespace hplrepro::clc

#endif  // HPLREPRO_CLC_CODEGEN_HPP
