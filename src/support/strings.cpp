#include "support/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace hplrepro {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int digits) {
  std::ostringstream oss;
  oss.precision(digits);
  oss << value;
  return oss.str();
}

namespace {

// Shortest-round-trip style literal: try increasing precision until the
// printed form parses back to the same value.
std::string round_trip_literal(double value, int max_digits, bool is_float) {
  if (std::isnan(value)) return "nan(\"\")";
  if (std::isinf(value)) return value > 0 ? "(1.0/0.0)" : "(-1.0/0.0)";
  char buf[64];
  for (int prec = 1; prec <= max_digits; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, value);
    const double parsed = std::strtod(buf, nullptr);
    if ((is_float && static_cast<float>(parsed) ==
                         static_cast<float>(value)) ||
        (!is_float && parsed == value)) {
      break;
    }
  }
  std::string text = buf;
  // Ensure the token reads as a floating literal, not an integer.
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  return text;
}

}  // namespace

std::string double_literal(double value) {
  return round_trip_literal(value, 17, /*is_float=*/false);
}

std::string float_literal(float value) {
  return round_trip_literal(value, 9, /*is_float=*/true) + "f";
}

}  // namespace hplrepro
