#ifndef HPLREPRO_SUPPORT_STRINGS_HPP
#define HPLREPRO_SUPPORT_STRINGS_HPP

/// \file strings.hpp
/// Small string utilities shared by the clc diagnostics, HPL code generator
/// and the benchmark table printers.

#include <string>
#include <string_view>
#include <vector>

namespace hplrepro {

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at every occurrence of `sep` (keeps empty fields).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("12.5", "0.00321", "257").
std::string format_double(double value, int digits = 4);

/// Renders a C literal for a double that round-trips exactly and is valid
/// OpenCL C source (always contains a '.', 'e', or inf/nan spelling).
std::string double_literal(double value);
std::string float_literal(float value);

}  // namespace hplrepro

#endif  // HPLREPRO_SUPPORT_STRINGS_HPP
