#ifndef HPLREPRO_SUPPORT_TRACE_HPP
#define HPLREPRO_SUPPORT_TRACE_HPP

/// \file trace.hpp
/// Structured tracing for the whole stack: HPL eval stages, clsim queue
/// commands and VM launches record spans into one process-wide collector
/// that exports Chrome trace-event JSON (open in chrome://tracing or
/// https://ui.perfetto.dev).
///
/// Two clocks coexist:
///   * host spans (pid "host") carry real wall-clock timestamps measured
///     from a process-local epoch;
///   * simulated spans (pid "sim") carry timestamps on a device's
///     simulated timeline, so transfer/kernel overlap and per-command
///     queued/start/end are visible next to the host activity that
///     triggered them.
///
/// The layer is inert unless enabled: `enabled()` is a single relaxed
/// atomic load, `Span` construction bails out immediately, and nothing
/// allocates. Enabling happens either programmatically (`trace_to`) or via
/// the `HPL_TRACE=<path>` environment variable, which also arranges for
/// the trace to be written at process exit. Defining
/// `HPLREPRO_TRACE_DISABLED` compiles spans out entirely.
///
/// All recording APIs are thread-safe (the executor's pool threads may
/// record concurrently with the main thread).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hplrepro::trace {

/// Key/value pairs attached to an event. Values are stored pre-rendered
/// as JSON fragments (numbers bare, strings quoted and escaped).
struct Args {
  std::vector<std::pair<std::string, std::string>> kv;

  Args& num(std::string_view key, double value);
  Args& num(std::string_view key, std::uint64_t value);
  Args& str(std::string_view key, std::string_view value);
};

/// One recorded complete ("X") event.
struct EventRecord {
  std::string name;
  std::string cat;
  std::string track;     // rendered as the Chrome-trace thread name
  bool simulated = false;  // false: host wall clock; true: simulated clock
  double ts_us = 0;
  double dur_us = 0;
  Args args;
};

/// Whether the collector is recording. A relaxed atomic load; safe (and
/// cheap) to call on hot paths. The first call reads HPL_TRACE from the
/// environment.
bool enabled();

/// Turns recording on or off without touching the output path.
void set_enabled(bool on);

/// Enables recording and arranges for the trace to be written to `path`
/// when `write_pending()` runs (explicitly or at process exit).
void trace_to(const std::string& path);

/// The output path set via trace_to / HPL_TRACE ("" if none).
std::string output_path();

/// Drops all recorded events and counters (tests).
void reset();

/// Number of events recorded so far.
std::size_t event_count();

/// Copies out all recorded events (report generation, tests).
std::vector<EventRecord> snapshot();

/// Records a complete event with explicit timestamps. Used for simulated
/// tracks where the caller owns the clock; host-side code normally uses
/// Span instead. No-op when disabled.
void record(EventRecord event);

/// Microseconds of host wall-clock since the process trace epoch.
double now_us();

/// Writes everything recorded so far as Chrome trace-event JSON.
/// Returns false (without throwing) if the file cannot be opened.
bool write_chrome_trace(const std::string& path);

/// Writes to the configured output path, if any (idempotent per content;
/// called automatically at exit when HPL_TRACE / trace_to set a path).
void write_pending();

#ifndef HPLREPRO_TRACE_DISABLED

/// RAII span over a host-side stage. Records one complete event on the
/// calling thread's track when destroyed. Construction is a no-op when
/// tracing is disabled.
class Span {
public:
  Span(const char* name, const char* cat);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  Span& arg(const char* key, double value);
  Span& arg(const char* key, std::uint64_t value);
  Span& arg(const char* key, std::string_view value);

private:
  const char* name_;
  const char* cat_;
  double start_us_ = 0;
  bool active_ = false;
  Args args_;
};

#else  // HPLREPRO_TRACE_DISABLED: spans compile to nothing.

class Span {
public:
  Span(const char*, const char*) {}
  bool active() const { return false; }
  Span& arg(const char*, double) { return *this; }
  Span& arg(const char*, std::uint64_t) { return *this; }
  Span& arg(const char*, std::string_view) { return *this; }
};

#endif  // HPLREPRO_TRACE_DISABLED

}  // namespace hplrepro::trace

#endif  // HPLREPRO_SUPPORT_TRACE_HPP
