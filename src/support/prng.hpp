#ifndef HPLREPRO_SUPPORT_PRNG_HPP
#define HPLREPRO_SUPPORT_PRNG_HPP

/// \file prng.hpp
/// Deterministic pseudo-random generators used by workload generators.
///
/// SplitMix64 seeds test/benchmark data reproducibly. NasLcg is the linear
/// congruential generator specified by the NAS Parallel Benchmarks
/// (x_{k+1} = a * x_k mod 2^46, a = 5^13), which the EP benchmark requires:
/// EP's validation constants only hold for this exact generator.

#include <cstdint>

namespace hplrepro {

/// SplitMix64: tiny, high-quality, splittable 64-bit generator.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

private:
  std::uint64_t state_;
};

/// The NAS Parallel Benchmarks pseudo-random generator (NPB 2.3 randlc).
/// State and results are doubles holding 46-bit integers, exactly as the
/// benchmark specification defines, so EP reproduces NAS's reference sums.
class NasLcg {
public:
  static constexpr double kDefaultSeed = 271828183.0;
  static constexpr double kA = 1220703125.0;  // 5^13

  explicit NasLcg(double seed = kDefaultSeed) : x_(seed) {}

  /// Advances the state once and returns a uniform double in (0, 1).
  double randlc() { return randlc_step(x_, kA); }

  /// Returns the current raw 46-bit state.
  double state() const { return x_; }
  void set_state(double x) { x_ = x; }

  /// Computes a^exponent mod 2^46 times seed, i.e. jumps the stream ahead
  /// by `exponent` steps. Used by EP to give every parallel chunk its own
  /// independent substream, as the NAS reference code does.
  static double skip_ahead(double seed, std::uint64_t exponent) {
    double t = kA;
    double x = seed;
    // Square-and-multiply on the multiplier.
    for (std::uint64_t e = exponent; e != 0; e >>= 1) {
      if (e & 1) (void)randlc_step(x, t);
      double t2 = t;
      (void)randlc_step(t2, t);
      t = t2;
    }
    return x;
  }

  /// One step of the NAS LCG: x = a*x mod 2^46, returned scaled to (0,1).
  /// Implemented with the double-double split from the NPB reference
  /// sources so results match bit for bit on IEEE-754 hardware.
  static double randlc_step(double& x, double a) {
    constexpr double r23 = 0x1.0p-23, t23 = 0x1.0p23;
    constexpr double r46 = 0x1.0p-46, t46 = 0x1.0p46;

    const double t1a = r23 * a;
    const double a1 = static_cast<double>(static_cast<long long>(t1a));
    const double a2 = a - t23 * a1;

    const double t1x = r23 * x;
    const double x1 = static_cast<double>(static_cast<long long>(t1x));
    const double x2 = x - t23 * x1;

    const double t1 = a1 * x2 + a2 * x1;
    const double t2 = static_cast<double>(static_cast<long long>(r23 * t1));
    const double z = t1 - t23 * t2;
    const double t3 = t23 * z + a2 * x2;
    const double t4 = static_cast<double>(static_cast<long long>(r46 * t3));
    x = t3 - t46 * t4;
    return r46 * x;
  }

private:
  double x_;
};

}  // namespace hplrepro

#endif  // HPLREPRO_SUPPORT_PRNG_HPP
