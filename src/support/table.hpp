#ifndef HPLREPRO_SUPPORT_TABLE_HPP
#define HPLREPRO_SUPPORT_TABLE_HPP

/// \file table.hpp
/// Aligned plain-text table printer used by the benchmark harness so every
/// bench binary prints its paper table/figure in the same format.

#include <iosfwd>
#include <string>
#include <vector>

namespace hplrepro {

class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment; numeric-looking cells right-align.
  void print(std::ostream& os) const;
  std::string to_string() const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hplrepro

#endif  // HPLREPRO_SUPPORT_TABLE_HPP
