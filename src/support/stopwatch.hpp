#ifndef HPLREPRO_SUPPORT_STOPWATCH_HPP
#define HPLREPRO_SUPPORT_STOPWATCH_HPP

/// \file stopwatch.hpp
/// Wall-clock stopwatch used to measure the *host-side* cost of HPL and of
/// the OpenCL-style baselines (kernel capture, code generation, clc builds,
/// argument marshalling). Device execution time is simulated, not measured;
/// see clsim::TimingModel.
///
/// Every duration in the stack — stopwatches, trace spans, event
/// timestamps, metrics histograms — is measured on MonotonicClock below
/// (std::chrono::steady_clock), never system_clock: durations must not
/// jump when the wall clock is adjusted. The static_assert keeps the
/// invariant from regressing silently.

#include <chrono>

namespace hplrepro {

/// The one clock used for all durations in this codebase.
using MonotonicClock = std::chrono::steady_clock;
static_assert(MonotonicClock::is_steady,
              "duration measurements require a steady (monotonic) clock");

class Stopwatch {
public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

private:
  using Clock = MonotonicClock;
  Clock::time_point start_;
};

}  // namespace hplrepro

#endif  // HPLREPRO_SUPPORT_STOPWATCH_HPP
