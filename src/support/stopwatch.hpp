#ifndef HPLREPRO_SUPPORT_STOPWATCH_HPP
#define HPLREPRO_SUPPORT_STOPWATCH_HPP

/// \file stopwatch.hpp
/// Wall-clock stopwatch used to measure the *host-side* cost of HPL and of
/// the OpenCL-style baselines (kernel capture, code generation, clc builds,
/// argument marshalling). Device execution time is simulated, not measured;
/// see clsim::TimingModel.

#include <chrono>

namespace hplrepro {

class Stopwatch {
public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hplrepro

#endif  // HPLREPRO_SUPPORT_STOPWATCH_HPP
