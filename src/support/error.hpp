#ifndef HPLREPRO_SUPPORT_ERROR_HPP
#define HPLREPRO_SUPPORT_ERROR_HPP

/// \file error.hpp
/// Exception hierarchy shared by every layer of the repository.
///
/// Each subsystem throws a subclass so callers can distinguish, e.g., a
/// compile error in generated OpenCL C (clc::CompileError) from a misuse of
/// the runtime API (clsim::RuntimeError) without string matching.

#include <stdexcept>
#include <string>

namespace hplrepro {

/// Root of the project's exception hierarchy.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a public API is called with arguments that violate its
/// contract (bad sizes, null data, out-of-range dimensions, ...).
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated. Seeing this exception is
/// always a bug in this library, never a user error.
class InternalError : public Error {
public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

}  // namespace hplrepro

#endif  // HPLREPRO_SUPPORT_ERROR_HPP
