#include "support/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define HPLREPRO_FLIGHT_TSC 1
#endif

namespace hplrepro::metrics {

namespace {

// Flight-mark timestamp source. On x86-64 this is the raw TSC — a dozen
// cycles, no vDSO call — which is monotonic and core-synchronized on every
// CPU with invariant TSC (all hardware this simulator targets). Elsewhere
// it falls back to steady-clock ticks. Either way the unit is opaque here:
// the dump converts ticks to trace µs against a calibration anchor taken
// at collector construction, so the hot path never does epoch math.
std::int64_t flight_now_ticks() {
#ifdef HPLREPRO_FLIGHT_TSC
  return static_cast<std::int64_t>(__rdtsc());
#else
  return MonotonicClock::now().time_since_epoch().count();
#endif
}

// --- Thread identity ---------------------------------------------------------

int thread_index() {
  static std::atomic<int> next{0};
  thread_local int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

// --- Flight recorder state ---------------------------------------------------

// A ring slot, exactly one cache line. Labels are copied, not pointed to:
// some spans are named from transient strings (the VM names its span
// after the kernel), and the ring outlives them. Every field is a relaxed
// atomic so a ring has a single lock-free writer (its thread) while
// flight_dump_once reads all rings concurrently; a slot being overwritten
// during a dump yields a mixed entry, which is acceptable for a
// best-effort post-mortem.
struct alignas(64) FlightRaw {
  static constexpr std::size_t kNameWords = 4;  // 32 label bytes
  static constexpr std::size_t kCatWords = 2;   // 16 label bytes
  std::array<std::atomic<std::uint64_t>, kNameWords> name{};
  std::array<std::atomic<std::uint64_t>, kCatWords> cat{};
  // Raw flight_now_ticks() ticks shifted left once, begin/end phase in
  // bit 0 (one store instead of two; the tick LSB is far below clock
  // resolution). Converted to trace µs at dump time.
  std::atomic<std::int64_t> ts_phase{0};
};
static_assert(sizeof(FlightRaw) == 64);

/// Packs a NUL-terminated label into words, truncating. Stops at the first
/// word that holds the terminator (a zero byte inside the word marks the
/// end for load_label), so short labels — the common case — touch one or
/// two words instead of all of them, leaving later words stale.
void store_label(std::atomic<std::uint64_t>* words, std::size_t word_count,
                 const char* src) {
  bool done = src == nullptr;
  for (std::size_t w = 0; w < word_count; ++w) {
    std::uint64_t packed = 0;
    bool full = true;
    for (std::size_t b = 0; b < 8; ++b) {
      const char ch = done ? '\0' : src[w * 8 + b];
      if (ch == '\0') {
        done = true;
        full = false;
      } else {
        packed |= static_cast<std::uint64_t>(static_cast<unsigned char>(ch))
                  << (b * 8);
      }
    }
    words[w].store(packed, std::memory_order_relaxed);
    if (!full) return;
  }
}

/// Unpacks a label written by store_label (bounded, never overreads).
std::string load_label(const std::atomic<std::uint64_t>* words,
                       std::size_t word_count) {
  std::string out;
  for (std::size_t w = 0; w < word_count; ++w) {
    const std::uint64_t packed = words[w].load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < 8; ++b) {
      const char ch = static_cast<char>((packed >> (b * 8)) & 0xff);
      if (ch == '\0') return out;
      out += ch;
    }
  }
  return out;
}

struct FlightRing {
  int thread_id = 0;
  // Total entries ever written. Written only by the owning thread
  // (release after the slot's fields), read by the dumper (acquire).
  std::atomic<std::uint64_t> head{0};
  std::array<FlightRaw, kFlightRingCapacity> entries{};
};

// --- The collector -----------------------------------------------------------

struct Collector {
  std::atomic<bool> enabled{false};

  std::mutex mu;  // registry, path
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::pair<std::unique_ptr<Histogram>, std::string>,
           std::less<>>
      histograms;
  std::string path;
  bool atexit_registered = false;

  static constexpr std::size_t kMaxRecentPaths = 512;
  std::mutex cp_mu;
  std::deque<CriticalPath> recent_paths;
  CriticalPathTotals cp_totals;

  std::mutex flight_mu;  // ring registry + retained dump
  std::vector<std::unique_ptr<FlightRing>> rings;
  std::atomic<bool> flight_dumped{false};
  std::atomic<std::uint64_t> flight_dumps{0};
  FlightDump flight_last;
  // Calibration anchor for flight timestamps: a (ticks, trace-µs) pair
  // taken at construction — before any mark can be recorded, since rings
  // register through collector(). The dump takes a second pair and maps
  // ticks to µs linearly between them.
  std::int64_t flight_anchor_ticks = 0;
  double flight_anchor_us = 0;

  Collector() {
    flight_anchor_ticks = flight_now_ticks();
    flight_anchor_us = trace::now_us();
    if (const char* env = std::getenv("HPL_METRICS");
        env != nullptr && env[0] != '\0') {
      set_path(env);
      enabled.store(true, std::memory_order_relaxed);
    }
  }

  // Caller must NOT hold mu.
  void set_path(const std::string& p) {
    std::lock_guard<std::mutex> lock(mu);
    path = p;
    if (!p.empty() && !atexit_registered) {
      atexit_registered = true;
      std::atexit(&write_pending);
    }
  }
};

Collector& collector() {
  // Intentionally leaked: write_pending runs from atexit and queue worker
  // threads may record until static destruction; a destroyed collector
  // would leave both reading freed state.
  static Collector* instance = new Collector();
  return *instance;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

// --- Interval arithmetic for critical-path attribution -----------------------

struct Interval {
  double a = 0;
  double b = 0;
  double length() const { return b > a ? b - a : 0; }
};

/// Sorted, disjoint union of the input intervals (empty ones dropped).
std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::vector<Interval> out;
  std::sort(v.begin(), v.end(),
            [](const Interval& x, const Interval& y) { return x.a < y.a; });
  for (const Interval& iv : v) {
    if (iv.length() <= 0) continue;
    if (!out.empty() && iv.a <= out.back().b) {
      out.back().b = std::max(out.back().b, iv.b);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

double total_length(const std::vector<Interval>& v) {
  double sum = 0;
  for (const Interval& iv : v) sum += iv.length();
  return sum;
}

/// Length of x ∩ (∪ merged).
double overlap_length(const Interval& x, const std::vector<Interval>& merged) {
  double sum = 0;
  for (const Interval& iv : merged) {
    const double a = std::max(x.a, iv.a);
    const double b = std::min(x.b, iv.b);
    if (b > a) sum += b - a;
  }
  return sum;
}

}  // namespace

// --- Enable gate -------------------------------------------------------------

bool enabled() {
  return collector().enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  collector().enabled.store(on, std::memory_order_relaxed);
}

void metrics_to(const std::string& path) {
  Collector& c = collector();
  c.set_path(path);
  c.enabled.store(true, std::memory_order_relaxed);
}

std::string output_path() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.path;
}

void reset() {
  Collector& c = collector();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    for (auto& [name, counter] : c.counters) counter->reset();
    for (auto& [name, gauge] : c.gauges) gauge->reset();
    for (auto& [name, hist] : c.histograms) hist.first->reset();
  }
  std::lock_guard<std::mutex> lock(c.cp_mu);
  c.recent_paths.clear();
  c.cp_totals = CriticalPathTotals{};
}

// --- Counter -----------------------------------------------------------------

void Counter::add_always(std::uint64_t n) {
  cells_[static_cast<std::size_t>(thread_index()) % kStripes].v.fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const Cell& cell : cells_) sum += cell.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
}

// --- Gauge -------------------------------------------------------------------

void Gauge::bump_max(std::int64_t candidate) {
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void Gauge::set(std::int64_t v) {
  value_.store(v, std::memory_order_relaxed);
  bump_max(v);
}

void Gauge::add(std::int64_t delta) {
  const std::int64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  bump_max(now);
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --- Histogram ---------------------------------------------------------------

struct Histogram::Shard {
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{UINT64_MAX};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
};

Histogram::~Histogram() {
  for (auto& slot : shards_) delete slot.load(std::memory_order_acquire);
}

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubCount) return static_cast<std::size_t>(value);
  if (value >= (1ull << kMaxBits)) value = (1ull << kMaxBits) - 1;
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBits;
  return static_cast<std::size_t>(kSubCount) +
         static_cast<std::size_t>(msb - kSubBits) * kSubCount +
         static_cast<std::size_t>((value >> shift) - kSubCount);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  if (index < kSubCount) return index;
  const std::size_t octave = (index - kSubCount) / kSubCount;
  const std::size_t pos = (index - kSubCount) % kSubCount;
  return (kSubCount + pos) << octave;
}

std::uint64_t Histogram::bucket_width(std::size_t index) {
  if (index < kSubCount) return 1;
  return 1ull << ((index - kSubCount) / kSubCount);
}

Histogram::Shard& Histogram::local_shard() {
  const std::size_t slot =
      static_cast<std::size_t>(thread_index()) % kMaxShards;
  Shard* shard = shards_[slot].load(std::memory_order_acquire);
  if (shard == nullptr) {
    auto* fresh = new Shard();
    if (shards_[slot].compare_exchange_strong(shard, fresh,
                                              std::memory_order_acq_rel)) {
      shard = fresh;
    } else {
      delete fresh;  // another thread on the same slot won the race
    }
  }
  return *shard;
}

void Histogram::record_always(std::uint64_t value) {
  Shard& s = local_shard();
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = s.min.load(std::memory_order_relaxed);
  while (value < seen && !s.min.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = s.max.load(std::memory_order_relaxed);
  while (value > seen && !s.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  s.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& slot : shards_) {
    Shard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    shard->sum.store(0, std::memory_order_relaxed);
    shard->min.store(UINT64_MAX, std::memory_order_relaxed);
    shard->max.store(0, std::memory_order_relaxed);
    for (auto& b : shard->buckets) b.store(0, std::memory_order_relaxed);
  }
}

/// Snapshot-side merge across shards (friend of Histogram).
struct HistogramMerge {
  static HistogramSnapshot merge(const Histogram& h, const std::string& name,
                                 const std::string& unit) {
    HistogramSnapshot out;
    out.name = name;
    out.unit = unit;
    std::vector<std::uint64_t> merged(Histogram::kBucketCount, 0);
    std::uint64_t min = UINT64_MAX;
    for (const auto& slot : h.shards_) {
      const Histogram::Shard* shard = slot.load(std::memory_order_acquire);
      if (shard == nullptr) continue;
      out.sum +=
          static_cast<double>(shard->sum.load(std::memory_order_relaxed));
      min = std::min(min, shard->min.load(std::memory_order_relaxed));
      out.max = std::max(out.max, shard->max.load(std::memory_order_relaxed));
      for (std::size_t i = 0; i < merged.size(); ++i) {
        merged[i] += shard->buckets[i].load(std::memory_order_relaxed);
      }
    }
    // Count derives from the buckets so "bucket counts sum to the sample
    // count" holds by construction, even for a mid-recording snapshot.
    for (std::size_t i = 0; i < merged.size(); ++i) {
      if (merged[i] == 0) continue;
      out.count += merged[i];
      out.buckets.emplace_back(Histogram::bucket_lower(i), merged[i]);
    }
    out.min = (out.count == 0) ? 0 : min;
    out.mean = out.count == 0 ? 0 : out.sum / static_cast<double>(out.count);
    out.p50 = out.quantile(0.50);
    out.p90 = out.quantile(0.90);
    out.p99 = out.quantile(0.99);
    out.p999 = out.quantile(0.999);
    return out;
  }
};

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (const auto& [lower, n] : buckets) {
    cumulative += n;
    if (cumulative >= target) {
      const std::uint64_t width =
          Histogram::bucket_width(Histogram::bucket_index(lower));
      return static_cast<double>(lower) + static_cast<double>(width) / 2.0;
    }
  }
  return static_cast<double>(buckets.back().first);
}

// --- Registry ----------------------------------------------------------------

Counter& counter(std::string_view name) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.counters.find(name);
  if (it == c.counters.end()) {
    it = c.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.gauges.find(name);
  if (it == c.gauges.end()) {
    it = c.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view name, std::string_view unit) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.histograms.find(name);
  if (it == c.histograms.end()) {
    it = c.histograms
             .emplace(std::string(name),
                      std::make_pair(std::make_unique<Histogram>(),
                                     std::string(unit)))
             .first;
  }
  return *it->second.first;
}

// --- Critical path -----------------------------------------------------------

CriticalPath attribute_critical_path(const CriticalPathInput& input) {
  CriticalPath out;
  out.kernel = input.kernel;
  out.device = input.device;
  out.capture_us = input.capture_us;
  out.codegen_us = input.codegen_us;
  out.build_us = input.build_us;
  out.marshal_us = input.marshal_us;

  const double start = input.start_us;
  const double done = std::max(input.done_us, start);
  out.total_us = done - start;

  auto clip = [&](double a, double b) {
    return Interval{std::clamp(a, start, done), std::clamp(b, start, done)};
  };

  const Interval kernel = clip(input.kernel_start_us, input.kernel_end_us);
  out.kernel_us = kernel.length();

  std::vector<Interval> transfers;
  transfers.reserve(input.transfer_windows.size());
  for (const auto& [a, b] : input.transfer_windows) {
    const Interval iv = clip(a, b);
    if (iv.length() > 0) transfers.push_back(iv);
  }
  transfers = merge_intervals(std::move(transfers));
  out.transfer_us =
      total_length(transfers) - overlap_length(kernel, transfers);

  // Everything any command covered, for the host-prep subtraction.
  std::vector<Interval> covered = transfers;
  covered.push_back(kernel);
  covered = merge_intervals(std::move(covered));

  const Interval host = clip(start, input.enqueue_us);
  out.host_prep_us = host.length() - overlap_length(host, covered);

  out.queue_wait_us = std::max(
      0.0, out.total_us - out.kernel_us - out.transfer_us - out.host_prep_us);
  return out;
}

void record_critical_path(const CriticalPathInput& input) {
  if (!enabled()) return;
  CriticalPath entry = attribute_critical_path(input);
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.cp_mu);
  c.cp_totals.evals += 1;
  c.cp_totals.total_us += entry.total_us;
  c.cp_totals.host_prep_us += entry.host_prep_us;
  c.cp_totals.queue_wait_us += entry.queue_wait_us;
  c.cp_totals.transfer_us += entry.transfer_us;
  c.cp_totals.kernel_us += entry.kernel_us;
  c.recent_paths.push_back(std::move(entry));
  if (c.recent_paths.size() > Collector::kMaxRecentPaths) {
    c.recent_paths.pop_front();
  }
}

// --- Snapshot & export -------------------------------------------------------

Snapshot snapshot() {
  Collector& c = collector();
  Snapshot out;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    out.counters.reserve(c.counters.size());
    for (const auto& [name, counter] : c.counters) {
      out.counters.push_back({name, counter->value()});
    }
    out.gauges.reserve(c.gauges.size());
    for (const auto& [name, gauge] : c.gauges) {
      out.gauges.push_back({name, gauge->value(), gauge->max_value()});
    }
    out.histograms.reserve(c.histograms.size());
    for (const auto& [name, hist] : c.histograms) {
      out.histograms.push_back(
          HistogramMerge::merge(*hist.first, name, hist.second));
    }
  }
  {
    std::lock_guard<std::mutex> lock(c.cp_mu);
    out.critical_path_totals = c.cp_totals;
    out.critical_paths.assign(c.recent_paths.begin(), c.recent_paths.end());
  }
  out.flight = flight_last_dump();
  return out;
}

std::string to_json(const Snapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"hplrepro-metrics-v1\",\n";

  os << "  \"counters\": [";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(snap.counters[i].name)
       << "\", \"value\": " << snap.counters[i].value << "}";
  }
  os << "\n  ],\n";

  os << "  \"gauges\": [";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(snap.gauges[i].name)
       << "\", \"value\": " << snap.gauges[i].value
       << ", \"max\": " << snap.gauges[i].max << "}";
  }
  os << "\n  ],\n";

  os << "  \"histograms\": [";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(h.name) << "\", \"unit\": \"" << json_escape(h.unit)
       << "\", \"count\": " << h.count
       << ", \"sum\": " << json_number(h.sum) << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"mean\": " << json_number(h.mean)
       << ", \"p50\": " << json_number(h.p50)
       << ", \"p90\": " << json_number(h.p90)
       << ", \"p99\": " << json_number(h.p99)
       << ", \"p999\": " << json_number(h.p999) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) os << ", ";
      os << "{\"lo\": " << h.buckets[b].first
         << ", \"count\": " << h.buckets[b].second << "}";
    }
    os << "]}";
  }
  os << "\n  ],\n";

  const CriticalPathTotals& t = snap.critical_path_totals;
  os << "  \"critical_path\": {\n    \"evals\": " << t.evals
     << ",\n    \"totals\": {\"total_us\": " << json_number(t.total_us)
     << ", \"host_prep_us\": " << json_number(t.host_prep_us)
     << ", \"queue_wait_us\": " << json_number(t.queue_wait_us)
     << ", \"transfer_us\": " << json_number(t.transfer_us)
     << ", \"kernel_us\": " << json_number(t.kernel_us)
     << "},\n    \"recent\": [";
  for (std::size_t i = 0; i < snap.critical_paths.size(); ++i) {
    const CriticalPath& p = snap.critical_paths[i];
    os << (i == 0 ? "\n" : ",\n") << "      {\"kernel\": \""
       << json_escape(p.kernel) << "\", \"device\": \""
       << json_escape(p.device)
       << "\", \"total_us\": " << json_number(p.total_us)
       << ", \"host_prep_us\": " << json_number(p.host_prep_us)
       << ", \"queue_wait_us\": " << json_number(p.queue_wait_us)
       << ", \"transfer_us\": " << json_number(p.transfer_us)
       << ", \"kernel_us\": " << json_number(p.kernel_us)
       << ", \"capture_us\": " << json_number(p.capture_us)
       << ", \"codegen_us\": " << json_number(p.codegen_us)
       << ", \"build_us\": " << json_number(p.build_us)
       << ", \"marshal_us\": " << json_number(p.marshal_us) << "}";
  }
  os << "\n    ]\n  },\n";

  os << "  \"flight_recorder\": {\"dumped\": "
     << (snap.flight.dumped ? "true" : "false") << ", \"reason\": \""
     << json_escape(snap.flight.reason) << "\", \"entries\": [";
  for (std::size_t i = 0; i < snap.flight.entries.size(); ++i) {
    const FlightDumpEntry& e = snap.flight.entries[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"thread\": " << e.thread
       << ", \"seq\": " << e.seq << ", \"name\": \"" << json_escape(e.name)
       << "\", \"cat\": \"" << json_escape(e.cat) << "\", \"phase\": \""
       << (e.begin ? "B" : "E") << "\", \"ts_us\": " << json_number(e.ts_us)
       << "}";
  }
  os << "\n  ]}\n}\n";
  return os.str();
}

namespace {

std::string fmt_ns_as_ms(double ns) { return format_double(ns / 1e6, 4); }

std::string fmt_share(double part, double total) {
  return total > 0 ? format_double(part / total * 100.0, 3) + "%" : "-";
}

}  // namespace

std::string report(const Snapshot& snap) {
  std::ostringstream os;
  os << "=== HPL metrics report ===\n";

  if (!snap.counters.empty()) {
    os << "\nCounters:\n";
    Table table({"counter", "value"});
    for (const auto& c : snap.counters) {
      table.add_row({c.name, std::to_string(c.value)});
    }
    table.print(os);
  }

  if (!snap.gauges.empty()) {
    os << "\nGauges:\n";
    Table table({"gauge", "value", "max"});
    for (const auto& g : snap.gauges) {
      table.add_row(
          {g.name, std::to_string(g.value), std::to_string(g.max)});
    }
    table.print(os);
  }

  if (!snap.histograms.empty()) {
    os << "\nLatency histograms (ms):\n";
    Table table({"histogram", "count", "mean", "p50", "p90", "p99", "p99.9",
                 "max"});
    for (const auto& h : snap.histograms) {
      if (h.count == 0) {
        table.add_row({h.name, "0", "-", "-", "-", "-", "-", "-"});
        continue;
      }
      table.add_row({h.name, std::to_string(h.count), fmt_ns_as_ms(h.mean),
                     fmt_ns_as_ms(h.p50), fmt_ns_as_ms(h.p90),
                     fmt_ns_as_ms(h.p99), fmt_ns_as_ms(h.p999),
                     fmt_ns_as_ms(static_cast<double>(h.max))});
    }
    table.print(os);
  }

  const CriticalPathTotals& t = snap.critical_path_totals;
  os << "\nCritical path over " << t.evals << " evals:\n";
  Table table({"segment", "time (ms)", "share"});
  table.add_row({"host prep", format_double(t.host_prep_us / 1e3, 4),
                 fmt_share(t.host_prep_us, t.total_us)});
  table.add_row({"queue wait", format_double(t.queue_wait_us / 1e3, 4),
                 fmt_share(t.queue_wait_us, t.total_us)});
  table.add_row({"transfer", format_double(t.transfer_us / 1e3, 4),
                 fmt_share(t.transfer_us, t.total_us)});
  table.add_row({"kernel", format_double(t.kernel_us / 1e3, 4),
                 fmt_share(t.kernel_us, t.total_us)});
  table.add_row({"total", format_double(t.total_us / 1e3, 4),
                 t.total_us > 0 ? "100%" : "-"});
  table.print(os);

  if (snap.flight.dumped) {
    os << "\nFlight recorder: dumped (" << snap.flight.reason << ", "
       << snap.flight.entries.size() << " entries)\n";
  }
  return os.str();
}

bool write_json(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json(snapshot());
  return os.good();
}

void write_pending() {
  const std::string path = output_path();
  if (!path.empty()) write_json(path);
}

// --- Flight recorder ---------------------------------------------------------

namespace {

FlightRing& local_ring() {
  thread_local FlightRing* ring = nullptr;
  if (ring == nullptr) {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.flight_mu);
    c.rings.push_back(std::make_unique<FlightRing>());
    ring = c.rings.back().get();
    ring->thread_id = thread_index();
  }
  return *ring;
}

}  // namespace

void flight_record(const char* name, const char* cat, bool begin) {
  FlightRing& ring = local_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  FlightRaw& slot = ring.entries[head % kFlightRingCapacity];
  store_label(slot.name.data(), FlightRaw::kNameWords, name);
  store_label(slot.cat.data(), FlightRaw::kCatWords, cat);
  slot.ts_phase.store((flight_now_ticks() << 1) |
                          static_cast<std::int64_t>(begin),
                      std::memory_order_relaxed);
  ring.head.store(head + 1, std::memory_order_release);
}

void flight_dump_once(const char* reason) {
  Collector& c = collector();
  if (c.flight_dumped.exchange(true, std::memory_order_acq_rel)) return;

  FlightDump dump;
  dump.dumped = true;
  dump.reason = reason == nullptr ? "" : reason;
  // Second calibration pair: together with the construction-time anchor
  // it gives the tick rate, and ticks map to µs linearly from here. The
  // guard keeps the rate finite if the dump fires absurdly early.
  const std::int64_t now_ticks = flight_now_ticks();
  const double now_us = trace::now_us();
  const double ticks_per_us =
      static_cast<double>(now_ticks - c.flight_anchor_ticks) /
      std::max(now_us - c.flight_anchor_us, 1.0);
  {
    std::lock_guard<std::mutex> registry_lock(c.flight_mu);
    for (const auto& ring : c.rings) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t kept =
          std::min<std::uint64_t>(head, kFlightRingCapacity);
      for (std::uint64_t i = head - kept; i < head; ++i) {
        const FlightRaw& raw = ring->entries[i % kFlightRingCapacity];
        FlightDumpEntry entry;
        entry.thread = ring->thread_id;
        entry.seq = i;  // per-thread position; cross-thread order is ts_us
        entry.name = load_label(raw.name.data(), FlightRaw::kNameWords);
        entry.cat = load_label(raw.cat.data(), FlightRaw::kCatWords);
        const std::int64_t ts_phase =
            raw.ts_phase.load(std::memory_order_relaxed);
        entry.begin = (ts_phase & 1) != 0;
        const std::int64_t ticks = ts_phase >> 1;
        entry.ts_us = now_us - static_cast<double>(now_ticks - ticks) /
                                   std::max(ticks_per_us, 1e-9);
        dump.entries.push_back(std::move(entry));
      }
    }
  }
  // The marks share one monotonic clock, so the timestamp is the global
  // order (per-thread seq breaks the rare tie).
  std::sort(dump.entries.begin(), dump.entries.end(),
            [](const FlightDumpEntry& a, const FlightDumpEntry& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.seq < b.seq;
            });

  std::fprintf(stderr,
               "=== HPL flight recorder dump (%s): %zu recent span marks ===\n",
               dump.reason.c_str(), dump.entries.size());
  for (const FlightDumpEntry& e : dump.entries) {
    std::fprintf(stderr, "  [t%d #%" PRIu64 "] %s %s/%s @ %.3f us\n",
                 e.thread, e.seq, e.begin ? "B" : "E", e.cat.c_str(),
                 e.name.c_str(), e.ts_us);
  }
  std::fprintf(stderr, "=== end flight recorder dump ===\n");

  {
    std::lock_guard<std::mutex> lock(c.flight_mu);
    c.flight_last = std::move(dump);
  }
  c.flight_dumps.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t flight_dump_count() {
  return collector().flight_dumps.load(std::memory_order_relaxed);
}

FlightDump flight_last_dump() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.flight_mu);
  return c.flight_last;
}

void flight_reset_for_test() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.flight_mu);
  for (const auto& ring : c.rings) {
    ring->head.store(0, std::memory_order_release);
  }
  c.flight_last = FlightDump{};
  c.flight_dumped.store(false, std::memory_order_release);
  c.flight_dumps.store(0, std::memory_order_relaxed);
}

}  // namespace hplrepro::metrics
