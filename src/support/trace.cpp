#include "support/trace.hpp"

#include "support/metrics.hpp"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "support/stopwatch.hpp"

namespace hplrepro::trace {

namespace {

using Clock = hplrepro::MonotonicClock;  // steady: see stopwatch.hpp

struct Collector {
  std::mutex mu;
  std::atomic<bool> enabled{false};
  std::string path;
  std::vector<EventRecord> events;
  Clock::time_point epoch = Clock::now();
  bool atexit_registered = false;
  int next_thread_track = 0;

  Collector() {
    if (const char* env = std::getenv("HPL_TRACE");
        env != nullptr && env[0] != '\0') {
      set_path(env);
      enabled.store(true, std::memory_order_relaxed);
    }
  }

  // Caller must NOT hold mu.
  void set_path(const std::string& p) {
    std::lock_guard<std::mutex> lock(mu);
    path = p;
    if (!p.empty() && !atexit_registered) {
      atexit_registered = true;
      std::atexit(&write_pending);
    }
  }
};

Collector& collector() {
  // Intentionally leaked: write_pending runs from atexit, which would
  // otherwise race static destruction of the collector (the destructor is
  // registered mid-construction, before the atexit hook, so it would run
  // *first* and write_pending would read freed state).
  static Collector* instance = new Collector();
  return *instance;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Track name for the calling thread ("host" for the first one seen, so
/// single-threaded traces read naturally).
std::string thread_track() {
  static thread_local std::string track;
  if (track.empty()) {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    const int n = c.next_thread_track++;
    track = n == 0 ? "host" : "host worker " + std::to_string(n);
  }
  return track;
}

}  // namespace

Args& Args::num(std::string_view key, double value) {
  kv.emplace_back(std::string(key), json_number(value));
  return *this;
}

Args& Args::num(std::string_view key, std::uint64_t value) {
  kv.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

Args& Args::str(std::string_view key, std::string_view value) {
  kv.emplace_back(std::string(key), "\"" + json_escape(value) + "\"");
  return *this;
}

bool enabled() {
  return collector().enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  collector().enabled.store(on, std::memory_order_relaxed);
}

void trace_to(const std::string& path) {
  Collector& c = collector();
  c.set_path(path);
  c.enabled.store(true, std::memory_order_relaxed);
}

std::string output_path() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.path;
}

void reset() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.events.clear();
  c.epoch = Clock::now();
}

std::size_t event_count() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.events.size();
}

std::vector<EventRecord> snapshot() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.events;
}

void record(EventRecord event) {
  Collector& c = collector();
  if (!c.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(c.mu);
  c.events.push_back(std::move(event));
}

double now_us() {
  Collector& c = collector();
  return std::chrono::duration<double, std::micro>(Clock::now() - c.epoch)
      .count();
}

bool write_chrome_trace(const std::string& path) {
  const std::vector<EventRecord> events = snapshot();

  std::ofstream os(path);
  if (!os) return false;

  // pid 1 = host wall clock, pid 2 = simulated device timelines; tids are
  // assigned per track name in order of first appearance.
  std::map<std::pair<int, std::string>, int> tids;
  auto tid_for = [&](const EventRecord& ev) {
    const int pid = ev.simulated ? 2 : 1;
    auto [it, fresh] =
        tids.emplace(std::make_pair(pid, ev.track),
                     static_cast<int>(tids.size()) + 1);
    (void)fresh;
    return it->second;
  };
  for (const auto& ev : events) tid_for(ev);

  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << R"j({"ph":"M","pid":1,"tid":0,"name":"process_name",)j"
     << R"j("args":{"name":"host (wall clock)"}})j";
  sep();
  os << R"j({"ph":"M","pid":2,"tid":0,"name":"process_name",)j"
     << R"j("args":{"name":"simulated device timelines"}})j";
  for (const auto& [key, tid] : tids) {
    sep();
    os << R"({"ph":"M","pid":)" << key.first << R"(,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":")"
       << json_escape(key.second) << "\"}}";
  }

  for (const auto& ev : events) {
    sep();
    os << R"({"name":")" << json_escape(ev.name) << R"(","cat":")"
       << json_escape(ev.cat) << R"(","ph":"X","pid":)"
       << (ev.simulated ? 2 : 1) << R"(,"tid":)" << tid_for(ev)
       << R"(,"ts":)" << json_number(ev.ts_us) << R"(,"dur":)"
       << json_number(ev.dur_us);
    if (!ev.args.kv.empty()) {
      os << R"(,"args":{)";
      for (std::size_t i = 0; i < ev.args.kv.size(); ++i) {
        if (i != 0) os << ",";
        os << "\"" << json_escape(ev.args.kv[i].first)
           << "\":" << ev.args.kv[i].second;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.good();
}

void write_pending() {
  const std::string path = output_path();
  if (!path.empty()) write_chrome_trace(path);
}

#ifndef HPLREPRO_TRACE_DISABLED

Span::Span(const char* name, const char* cat) : name_(name), cat_(cat) {
  // The flight recorder sees every span even when tracing is off: it is
  // the post-mortem context for kernel traps in otherwise-silent runs.
  metrics::flight_record(name, cat, /*begin=*/true);
  if (!enabled()) return;
  active_ = true;
  start_us_ = now_us();
}

Span::~Span() {
  metrics::flight_record(name_, cat_, /*begin=*/false);
  if (!active_) return;
  EventRecord ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.track = thread_track();
  ev.simulated = false;
  ev.ts_us = start_us_;
  ev.dur_us = now_us() - start_us_;
  ev.args = std::move(args_);
  record(std::move(ev));
}

Span& Span::arg(const char* key, double value) {
  if (active_) args_.num(key, value);
  return *this;
}

Span& Span::arg(const char* key, std::uint64_t value) {
  if (active_) args_.num(key, value);
  return *this;
}

Span& Span::arg(const char* key, std::string_view value) {
  if (active_) args_.str(key, value);
  return *this;
}

#endif  // HPLREPRO_TRACE_DISABLED

}  // namespace hplrepro::trace
