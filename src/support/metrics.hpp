#ifndef HPLREPRO_SUPPORT_METRICS_HPP
#define HPLREPRO_SUPPORT_METRICS_HPP

/// \file metrics.hpp
/// Quantitative runtime metrics for the whole stack: a process-wide
/// registry of counters, gauges and log-bucketed (HDR-style) latency
/// histograms. Where trace spans (support/trace.hpp) answer "what happened
/// once", this layer answers "what is the distribution under thousands of
/// evals": p50/p90/p99/p99.9 eval latency, per-queue command dwell times,
/// cache hit rates, VM throughput.
///
/// Recording is designed for hot paths under concurrency:
///   * every record() on a histogram lands in a per-thread *shard* (a
///     plain array of relaxed atomics), so threads never contend on a
///     lock or a shared cache line; shards are merged only on snapshot();
///   * counters stripe their cells the same way; gauges are single
///     atomics (they are updated once per command, not per sample);
///   * the whole layer is inert unless enabled: `enabled()` is one
///     relaxed atomic load, and every record path bails out first thing.
///
/// Enabling happens programmatically (`set_enabled` / `metrics_to`) or via
/// the `HPL_METRICS=<path>` environment variable, which also arranges for
/// the metrics JSON (schema "hplrepro-metrics-v1") to be written at
/// process exit.
///
/// Two analysis components ride on the same substrate:
///   * a **flight recorder**: a fixed-size per-thread ring buffer of the
///     most recent span begin/end marks, always on (even with metrics and
///     tracing disabled), dumped exactly once to stderr when a kernel trap
///     or deferred CL error surfaces, and embedded in the metrics JSON;
///   * a **critical-path analyzer**: `record_critical_path` partitions a
///     completed eval's latency window into host-prep / queue-wait /
///     transfer / kernel segments from the event graph's host-clock
///     windows, so the segments sum exactly to the eval latency.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hplrepro::metrics {

// --- Enable gate -------------------------------------------------------------

/// Whether metrics recording is on. A relaxed atomic load; safe and cheap
/// on hot paths. The first call reads HPL_METRICS from the environment.
bool enabled();

/// Turns recording on or off without touching the output path.
void set_enabled(bool on);

/// Enables recording and arranges for the metrics JSON to be written to
/// `path` at process exit (same as running with HPL_METRICS=<path>).
void metrics_to(const std::string& path);

/// The output path set via metrics_to / HPL_METRICS ("" if none).
std::string output_path();

/// Zeroes every registered metric and the critical-path log (tests,
/// benchmark phase boundaries). Registrations themselves are kept.
void reset();

// --- Metric types ------------------------------------------------------------

/// A monotonically increasing counter. add() stripes over per-thread
/// cells so concurrent increments do not share a cache line.
class Counter {
public:
  static constexpr int kStripes = 16;

  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    add_always(n);
  }
  /// Unconditional variant for call sites that pre-check enabled().
  void add_always(std::uint64_t n);
  std::uint64_t value() const;
  void reset();

private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_{};
};

/// An instantaneous value (queue depth, utilization %) with a high-water
/// mark. Updated per command, not per sample, so a single atomic is fine.
class Gauge {
public:
  void set(std::int64_t v);
  void add(std::int64_t delta);
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  void reset();

private:
  void bump_max(std::int64_t candidate);
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// A log-bucketed (HDR-style) histogram of non-negative integer samples
/// (nanoseconds by convention). Buckets are exact below 2^kSubBits and
/// then 2^kSubBits sub-buckets per power of two, so the relative bucket
/// width — and therefore the quantile error — is bounded by 2^-kSubBits
/// (3.125%). Values at or above 2^kMaxBits clamp into the last bucket.
class Histogram {
public:
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;  // 32
  static constexpr int kMaxBits = 42;  // ~73 min in ns
  static constexpr std::size_t kBucketCount =
      kSubCount + static_cast<std::size_t>(kMaxBits - kSubBits) * kSubCount;

  /// Bucket index for a sample value.
  static std::size_t bucket_index(std::uint64_t value);
  /// Inclusive lower bound of bucket `index`.
  static std::uint64_t bucket_lower(std::size_t index);
  /// Width of bucket `index` (upper bound is lower + width).
  static std::uint64_t bucket_width(std::size_t index);

  Histogram() = default;
  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) {
    if (!enabled()) return;
    record_always(value);
  }
  /// Records a duration in seconds as nanoseconds.
  void record_seconds(double seconds) {
    if (!enabled()) return;
    if (seconds < 0) seconds = 0;
    record_always(static_cast<std::uint64_t>(seconds * 1e9));
  }
  void record_always(std::uint64_t value);

  void reset();

private:
  friend struct HistogramMerge;
  struct Shard;
  Shard& local_shard();

  static constexpr int kMaxShards = 256;
  std::array<std::atomic<Shard*>, kMaxShards> shards_{};
};

// --- Registry ----------------------------------------------------------------

/// Looks up (or registers) a metric by name. References are stable for the
/// process lifetime; hot call sites should cache them:
///
///   static auto& hits = metrics::counter("hpl.cache.hit");
///   hits.add();
///
/// Histogram samples are nanoseconds unless `unit` says otherwise.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::string_view unit = "ns");

// --- Critical path -----------------------------------------------------------

/// Raw facts about one completed eval, all on the host trace clock
/// (trace::now_us microseconds): the eval's start, the kernel enqueue, the
/// completion instant, the kernel command's execution window, and the
/// execution windows of the coherence transfers the eval enqueued.
struct CriticalPathInput {
  std::string kernel;
  std::string device;
  double start_us = 0;    // eval() entered
  double enqueue_us = 0;  // kernel command enqueued
  double done_us = 0;     // kernel command completed
  double kernel_start_us = 0;
  double kernel_end_us = 0;
  std::vector<std::pair<double, double>> transfer_windows;
  // Informational host sub-timings (they overlap the transfer windows in
  // async mode, so they are reported but not part of the partition).
  double capture_us = 0;
  double codegen_us = 0;
  double build_us = 0;
  double marshal_us = 0;
};

/// One attributed eval: the latency window [start, done] partitioned into
/// four disjoint segments that sum exactly to total_us. Priority when
/// windows overlap: kernel > transfer > host-prep; whatever no window
/// covers is queue-wait (worker pickup delay, dependency waits, and — in
/// async mode — time the host had already moved on).
struct CriticalPath {
  std::string kernel;
  std::string device;
  double total_us = 0;
  double host_prep_us = 0;   // [start, enqueue] not covered by any command
  double queue_wait_us = 0;  // gaps: nothing ran, nothing host-side pending
  double transfer_us = 0;    // coherence transfer execution windows
  double kernel_us = 0;      // kernel command execution window
  double capture_us = 0;     // informational sub-timings (see input)
  double codegen_us = 0;
  double build_us = 0;
  double marshal_us = 0;
};

/// Pure attribution (no recording); exposed for tests.
CriticalPath attribute_critical_path(const CriticalPathInput& input);

/// Attributes and stores the entry: bounded recent list plus running
/// aggregate sums. No-op when metrics are disabled.
void record_critical_path(const CriticalPathInput& input);

struct CriticalPathTotals {
  std::uint64_t evals = 0;
  double total_us = 0;
  double host_prep_us = 0;
  double queue_wait_us = 0;
  double transfer_us = 0;
  double kernel_us = 0;
};

// --- Snapshot & export -------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string unit;
  std::uint64_t count = 0;
  double sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0;  // 0 when count == 0 (never NaN)
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double p999 = 0;
  /// Non-empty buckets only, ascending: (lower bound, count).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  /// Smallest bucket-representative value v with CDF(v) >= q.
  double quantile(double q) const;
};

struct FlightDumpEntry {
  int thread = 0;
  std::uint64_t seq = 0;  // position in its thread's ring (per-thread order)
  std::string name;
  std::string cat;
  bool begin = false;
  double ts_us = 0;
};

struct FlightDump {
  bool dumped = false;
  std::string reason;
  std::vector<FlightDumpEntry> entries;  // ascending ts_us (timeline order)
};

struct Snapshot {
  std::vector<CounterSnapshot> counters;   // sorted by name
  std::vector<GaugeSnapshot> gauges;       // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name
  CriticalPathTotals critical_path_totals;
  std::vector<CriticalPath> critical_paths;  // recent, bounded
  FlightDump flight;
};

/// Merges every shard and returns a consistent copy of all metrics.
Snapshot snapshot();

/// Renders the snapshot as the "hplrepro-metrics-v1" JSON document.
std::string to_json(const Snapshot& snap);

/// Human-readable tables (counters, gauges, histogram quantiles, critical
/// path decomposition). Guaranteed free of nan/inf even when nothing ran.
std::string report(const Snapshot& snap);

/// snapshot() + to_json() to `path`. Returns false (without throwing) if
/// the file cannot be opened.
bool write_json(const std::string& path);

/// Writes to the configured output path, if any (called automatically at
/// exit when HPL_METRICS / metrics_to set a path).
void write_pending();

// --- Flight recorder ---------------------------------------------------------

/// Appends a begin/end mark for span `name` to the calling thread's ring
/// buffer. Always on — this must stay cheap: a raw TSC stamp and one
/// lock-free cache-line ring write (~40 ns), no mutex, no vDSO call.
/// `name` and `cat` are copied (truncated to a few dozen bytes), so
/// transient strings are fine.
void flight_record(const char* name, const char* cat, bool begin);

/// Ring capacity per thread (recent spans kept for the post-mortem).
/// 128 one-cache-line slots = 8 KiB per thread: deep enough for ~20
/// evals of history, small enough that the always-on recording does not
/// evict the workload's L1 working set.
inline constexpr std::size_t kFlightRingCapacity = 128;

/// Dumps every thread's ring to stderr, once per process: the first call
/// wins, later calls are no-ops. The dump is also retained for snapshot()
/// so it lands in the metrics JSON. Called by the command queue when a
/// command fails (kernel trap / deferred CL error).
void flight_dump_once(const char* reason);

/// How many dumps have actually been written (0 or 1 unless reset).
std::uint64_t flight_dump_count();

/// The retained dump ({} if none happened yet).
FlightDump flight_last_dump();

/// Clears rings, the retained dump and the dump-once latch (tests).
void flight_reset_for_test();

}  // namespace hplrepro::metrics

#endif  // HPLREPRO_SUPPORT_METRICS_HPP
