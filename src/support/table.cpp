#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace hplrepro {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  bool any_digit = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      any_digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '+' && c != '-' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return any_digit;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw InvalidArgument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw InvalidArgument("Table: row arity " + std::to_string(row.size()) +
                          " != header arity " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      os << "  ";
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace hplrepro
