#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace hplrepro {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

namespace {

// State shared between the caller and helper tasks. Held by shared_ptr so a
// helper that wakes up late (after the caller already observed completion
// and returned) still touches live memory.
struct ParallelForState {
  std::size_t count = 0;
  std::size_t chunk = 1;
  std::function<void(std::size_t, std::size_t)> body;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> pending_chunks{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  void run_chunks() {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (pending_chunks.fetch_sub(1) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for_chunked(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;

  auto state = std::make_shared<ParallelForState>();
  state->count = count;
  state->body = body;

  // Over-decompose ~4x relative to the worker count so that uneven
  // work-group costs (e.g. spmv rows with varying populations) still
  // balance, while keeping per-chunk dispatch overhead negligible.
  const std::size_t workers = size() + 1;  // pool workers + calling thread
  const std::size_t target_chunks = std::min(count, workers * 4);
  state->chunk = (count + target_chunks - 1) / target_chunks;
  state->pending_chunks = (count + state->chunk - 1) / state->chunk;

  const std::size_t helpers =
      std::min<std::size_t>(size(), state->pending_chunks.load());
  for (std::size_t i = 0; i < helpers; ++i) {
    enqueue([state] { state->run_chunks(); });
  }
  state->run_chunks();

  {
    std::unique_lock lock(state->done_mutex);
    state->done_cv.wait(lock,
                        [&] { return state->pending_chunks.load() == 0; });
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

// --- SerialWorker ------------------------------------------------------------

SerialWorker::SerialWorker() {
  // Started in the body, not the init list: every member the loop touches
  // must be fully constructed before the thread can observe it.
  thread_ = std::thread([this] { loop(); });
}

SerialWorker::~SerialWorker() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
}

void SerialWorker::post(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void SerialWorker::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && !busy_; });
}

void SerialWorker::loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      busy_ = true;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace hplrepro
