#ifndef HPLREPRO_SUPPORT_THREAD_POOL_HPP
#define HPLREPRO_SUPPORT_THREAD_POOL_HPP

/// \file thread_pool.hpp
/// A fixed-size work-stealing-free thread pool with a blocking parallel-for.
///
/// The clsim device executor schedules OpenCL work-groups over this pool.
/// The pool is deliberately simple: one shared queue, condition-variable
/// wakeups, and a `parallel_for` that partitions an index range into
/// contiguous chunks. Work-groups are coarse enough (hundreds to thousands
/// of VM instructions each) that queue contention is negligible.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hplrepro {

class ThreadPool {
public:
  /// Creates a pool with `num_threads` workers. `num_threads == 0` selects
  /// `std::thread::hardware_concurrency()` (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs `body(i)` for every i in [0, count), distributing contiguous
  /// chunks across the workers, and blocks until all iterations complete.
  /// The calling thread participates. Exceptions thrown by `body` are
  /// captured and the first one is rethrown on the caller after all
  /// workers drain.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// As `parallel_for` but hands each worker a chunk [begin, end) so the
  /// body can keep per-chunk state (e.g. a VM instance) alive across
  /// iterations.
  void parallel_for_chunked(
      std::size_t count,
      const std::function<void(std::size_t begin, std::size_t end)>& body);

private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// A single dedicated thread draining a FIFO task queue.
///
/// clsim gives every CommandQueue one SerialWorker: tasks posted to it run
/// strictly in post order (the OpenCL in-order queue contract) while the
/// posting thread returns immediately. Heavy per-task parallelism still
/// comes from the shared ThreadPool — the worker only serialises command
/// dispatch, it does not execute work-groups itself.
class SerialWorker {
public:
  SerialWorker();
  /// Drains every task already posted, then joins the thread.
  ~SerialWorker();

  SerialWorker(const SerialWorker&) = delete;
  SerialWorker& operator=(const SerialWorker&) = delete;

  /// Appends `task` to the queue and returns without waiting. Tasks must
  /// not throw; wrap fallible work and capture the error out-of-band.
  void post(std::function<void()> task);

  /// Blocks until every task posted before this call has finished.
  void drain();

private:
  void loop();

  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;  // worker wakeups
  std::condition_variable idle_cv_;  // drain() wakeups
  bool stopping_ = false;
  bool busy_ = false;
  // Last member: the worker must start after, and die before, all state
  // it touches.
  std::thread thread_;
};

}  // namespace hplrepro

#endif  // HPLREPRO_SUPPORT_THREAD_POOL_HPP
