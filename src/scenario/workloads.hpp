#ifndef HPLREPRO_SCENARIO_WORKLOADS_HPP
#define HPLREPRO_SCENARIO_WORKLOADS_HPP

/// \file workloads.hpp
/// The workload registry behind the scenario grader: one entry per
/// benchsuite workload, normalizing every result to a vector<double> so
/// the grader can diff, hash and tolerance-check uniformly. Each entry
/// also declares the exact launch count and rough flop/byte totals the
/// perf-envelope grade is derived from.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hpl/runtime.hpp"

namespace hplrepro::scenario {

struct Workload {
  std::string name;
  bool needs_double = false;  // skip on devices without fp64 (EP)
  double abs_tol = 1e-6;
  double rel_tol = 1e-6;

  /// Runs the HPL variant at `size` on `device`; result normalized to
  /// doubles (float payloads convert exactly, so hashes stay bit-stable).
  std::function<std::vector<double>(const std::string& size, HPL::Device)>
      run;
  /// Serial reference at `size`, normalized the same way.
  std::function<std::vector<double>(const std::string& size)> reference;
  /// Exact kernel launches one run performs.
  std::function<std::uint64_t(const std::string& size)> expected_launches;
  /// Rough total simple-op and global-byte counts (roofline inputs; the
  /// envelope applies a wide slack factor, so order of magnitude is what
  /// matters).
  std::function<double(const std::string& size)> flops;
  std::function<double(const std::string& size)> bytes;
};

/// The registry, in run order: ep, floyd, transpose, spmv, reduction,
/// blur, sobel, jacobi.
const std::vector<Workload>& workloads();

/// A deliberately broken blur: the kernel runs the Wrap policy while the
/// reference uses Clamp. Used only by the grader's self-test.
Workload sabotage_workload();

}  // namespace hplrepro::scenario

#endif  // HPLREPRO_SCENARIO_WORKLOADS_HPP
