#include "scenario/workloads.hpp"

#include "benchsuite/ep.hpp"
#include "benchsuite/floyd.hpp"
#include "benchsuite/reduction.hpp"
#include "benchsuite/spmv.hpp"
#include "benchsuite/stencil.hpp"
#include "benchsuite/transpose.hpp"
#include "support/error.hpp"

namespace hplrepro::scenario {

namespace bs = hplrepro::benchsuite;

namespace {

void require_size(const std::string& size) {
  if (size != "small" && size != "large") {
    throw hplrepro::InvalidArgument("unknown scenario size '" + size + "'");
  }
}

std::vector<double> widen(const std::vector<float>& v) {
  return std::vector<double>(v.begin(), v.end());
}

// --- Per-size configs --------------------------------------------------------

bs::EpConfig ep_config(const std::string& size) {
  require_size(size);
  bs::EpConfig c;
  c.pairs = size == "small" ? 1 << 10 : 1 << 12;
  c.chunk = 32;
  c.local_size = 32;
  return c;
}

bs::FloydConfig floyd_config(const std::string& size) {
  require_size(size);
  bs::FloydConfig c;
  c.nodes = size == "small" ? 32 : 64;
  c.tile = 16;
  return c;
}

bs::TransposeConfig transpose_config(const std::string& size) {
  require_size(size);
  bs::TransposeConfig c;
  c.rows = size == "small" ? 64 : 256;
  c.cols = size == "small" ? 32 : 128;
  return c;
}

bs::SpmvConfig spmv_config(const std::string& size) {
  require_size(size);
  bs::SpmvConfig c;
  c.rows = size == "small" ? 96 : 256;
  c.density = 0.05;
  c.threads_per_row = 8;
  return c;
}

bs::ReductionConfig reduction_config(const std::string& size) {
  require_size(size);
  bs::ReductionConfig c;
  c.elements = size == "small" ? 1 << 12 : 1 << 16;
  c.groups = size == "small" ? 8 : 16;
  c.local_size = 64;
  return c;
}

bs::StencilConfig stencil_config(const std::string& size) {
  require_size(size);
  bs::StencilConfig c;
  c.width = size == "small" ? 48 : 160;
  c.height = size == "small" ? 36 : 120;
  c.iterations = size == "small" ? 3 : 6;
  return c;
}

std::vector<double> ep_flatten(const bs::EpResult& r) {
  std::vector<double> out;
  out.reserve(13);
  out.push_back(static_cast<double>(r.accepted));
  for (const auto q : r.q) out.push_back(static_cast<double>(q));
  out.push_back(r.sx);
  out.push_back(r.sy);
  return out;
}

}  // namespace

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> registry = [] {
    std::vector<Workload> w;

    {
      Workload ep;
      ep.name = "ep";
      ep.needs_double = true;
      ep.abs_tol = 1e-9;
      ep.rel_tol = 1e-9;
      ep.run = [](const std::string& size, HPL::Device device) {
        return ep_flatten(bs::ep_hpl(ep_config(size), device).result);
      };
      ep.reference = [](const std::string& size) {
        return ep_flatten(bs::ep_serial(ep_config(size)));
      };
      ep.expected_launches = [](const std::string&) { return 1ull; };
      ep.flops = [](const std::string& size) {
        // ~60 flops per pair (two LCG steps + acceptance test), with the
        // transcendental path weighted in.
        return 60.0 * static_cast<double>(ep_config(size).pairs);
      };
      ep.bytes = [](const std::string& size) {
        const auto c = ep_config(size);
        return static_cast<double>(c.items()) * (8.0 * 3 + 10 * 4);
      };
      w.push_back(std::move(ep));
    }

    {
      Workload floyd;
      floyd.name = "floyd";
      floyd.abs_tol = 1e-5;
      floyd.rel_tol = 1e-6;
      floyd.run = [](const std::string& size, HPL::Device device) {
        return widen(bs::floyd_hpl(floyd_config(size), device).distances);
      };
      floyd.reference = [](const std::string& size) {
        return widen(bs::floyd_serial(floyd_config(size)));
      };
      floyd.expected_launches = [](const std::string& size) {
        return static_cast<std::uint64_t>(floyd_config(size).nodes);
      };
      floyd.flops = [](const std::string& size) {
        const double n = static_cast<double>(floyd_config(size).nodes);
        return 3.0 * n * n * n;
      };
      floyd.bytes = [](const std::string& size) {
        const double n = static_cast<double>(floyd_config(size).nodes);
        return 4.0 * n * n * n;  // ~4 accesses x 4 B per pass element... /4
      };
      w.push_back(std::move(floyd));
    }

    {
      Workload transpose;
      transpose.name = "transpose";
      transpose.abs_tol = 0;  // pure data movement: bit-exact
      transpose.rel_tol = 0;
      transpose.run = [](const std::string& size, HPL::Device device) {
        return widen(bs::transpose_hpl(transpose_config(size), device).output);
      };
      transpose.reference = [](const std::string& size) {
        return widen(bs::transpose_serial(transpose_config(size)));
      };
      transpose.expected_launches = [](const std::string&) { return 1ull; };
      transpose.flops = [](const std::string& size) {
        const auto c = transpose_config(size);
        return static_cast<double>(c.rows * c.cols);
      };
      transpose.bytes = [](const std::string& size) {
        const auto c = transpose_config(size);
        return 8.0 * static_cast<double>(c.rows * c.cols);
      };
      w.push_back(std::move(transpose));
    }

    {
      Workload spmv;
      spmv.name = "spmv";
      spmv.abs_tol = 1e-4;
      spmv.rel_tol = 1e-4;
      spmv.run = [](const std::string& size, HPL::Device device) {
        return widen(bs::spmv_hpl(spmv_config(size), device).output);
      };
      spmv.reference = [](const std::string& size) {
        return widen(bs::spmv_serial(spmv_config(size)));
      };
      spmv.expected_launches = [](const std::string&) { return 1ull; };
      spmv.flops = [](const std::string& size) {
        const auto c = spmv_config(size);
        const double nnz =
            static_cast<double>(c.rows) * static_cast<double>(c.rows) *
            c.density;
        return 2.0 * nnz;
      };
      spmv.bytes = [](const std::string& size) {
        const auto c = spmv_config(size);
        const double nnz =
            static_cast<double>(c.rows) * static_cast<double>(c.rows) *
            c.density;
        return 16.0 * nnz;
      };
      w.push_back(std::move(spmv));
    }

    {
      Workload reduction;
      reduction.name = "reduction";
      reduction.abs_tol = 0.05;
      reduction.rel_tol = 1e-4;
      reduction.run = [](const std::string& size, HPL::Device device) {
        return std::vector<double>{
            bs::reduction_hpl(reduction_config(size), device).sum};
      };
      reduction.reference = [](const std::string& size) {
        return std::vector<double>{bs::reduction_serial(reduction_config(size))};
      };
      reduction.expected_launches = [](const std::string&) { return 1ull; };
      reduction.flops = [](const std::string& size) {
        return static_cast<double>(reduction_config(size).elements);
      };
      reduction.bytes = [](const std::string& size) {
        return 4.0 * static_cast<double>(reduction_config(size).elements);
      };
      w.push_back(std::move(reduction));
    }

    {
      Workload blur;
      blur.name = "blur";
      blur.run = [](const std::string& size, HPL::Device device) {
        return widen(bs::blur_hpl(stencil_config(size), device).output);
      };
      blur.reference = [](const std::string& size) {
        return widen(bs::blur_serial(stencil_config(size)));
      };
      blur.expected_launches = [](const std::string&) { return 1ull; };
      blur.flops = [](const std::string& size) {
        return 30.0 * static_cast<double>(stencil_config(size).pixels());
      };
      blur.bytes = [](const std::string& size) {
        return 40.0 * static_cast<double>(stencil_config(size).pixels());
      };
      w.push_back(std::move(blur));
    }

    {
      Workload sobel;
      sobel.name = "sobel";
      sobel.abs_tol = 1e-5;
      sobel.rel_tol = 1e-5;
      sobel.run = [](const std::string& size, HPL::Device device) {
        return widen(bs::sobel_hpl(stencil_config(size), device).output);
      };
      sobel.reference = [](const std::string& size) {
        return widen(bs::sobel_serial(stencil_config(size)));
      };
      sobel.expected_launches = [](const std::string&) { return 1ull; };
      sobel.flops = [](const std::string& size) {
        return 25.0 * static_cast<double>(stencil_config(size).pixels());
      };
      sobel.bytes = [](const std::string& size) {
        return 36.0 * static_cast<double>(stencil_config(size).pixels());
      };
      w.push_back(std::move(sobel));
    }

    {
      Workload jacobi;
      jacobi.name = "jacobi";
      jacobi.run = [](const std::string& size, HPL::Device device) {
        return widen(bs::jacobi_hpl(stencil_config(size), device).output);
      };
      jacobi.reference = [](const std::string& size) {
        return widen(bs::jacobi_serial(stencil_config(size)));
      };
      jacobi.expected_launches = [](const std::string& size) {
        return static_cast<std::uint64_t>(stencil_config(size).iterations);
      };
      jacobi.flops = [](const std::string& size) {
        const auto c = stencil_config(size);
        return 8.0 * static_cast<double>(c.pixels()) * c.iterations;
      };
      jacobi.bytes = [](const std::string& size) {
        const auto c = stencil_config(size);
        return 12.0 * static_cast<double>(c.pixels()) * c.iterations;
      };
      w.push_back(std::move(jacobi));
    }

    return w;
  }();
  return registry;
}

Workload sabotage_workload() {
  Workload broken;
  broken.name = "blur_sabotage";
  broken.run = [](const std::string& size, HPL::Device device) {
    bs::StencilConfig c = stencil_config(size);
    c.edge = bs::EdgePolicy::Wrap;  // the deliberate bug
    return widen(bs::blur_hpl(c, device).output);
  };
  broken.reference = [](const std::string& size) {
    bs::StencilConfig c = stencil_config(size);
    c.edge = bs::EdgePolicy::Clamp;  // what the reference expects
    return widen(bs::blur_serial(c));
  };
  broken.expected_launches = [](const std::string&) { return 1ull; };
  broken.flops = [](const std::string& size) {
    return 30.0 * static_cast<double>(stencil_config(size).pixels());
  };
  broken.bytes = [](const std::string& size) {
    return 40.0 * static_cast<double>(stencil_config(size).pixels());
  };
  return broken;
}

}  // namespace hplrepro::scenario
