#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "benchsuite/reduction.hpp"
#include "benchsuite/stencil.hpp"
#include "benchsuite/transpose.hpp"
#include "clsim/runtime.hpp"
#include "coexec/coexec.hpp"
#include "hpl/fusion.hpp"
#include "hpl/patterns.hpp"
#include "hpl/runtime.hpp"
#include "hpl/trace.hpp"
#include "scenario/workloads.hpp"
#include "support/error.hpp"

namespace hplrepro::scenario {

namespace {

/// Slack factor of the roofline envelope. Wide on purpose: the envelope
/// exists to catch order-of-magnitude timing-model regressions, not to
/// re-derive the model.
constexpr double kRooflineSlack = 64.0;

const char* device_needle(const std::string& label) {
  return label == "CPU" ? "Xeon" : label.c_str();
}

clsim::Device clsim_device(const std::string& label) {
  auto dev = clsim::Platform::get().device_by_name(device_needle(label));
  if (!dev) {
    throw hplrepro::InvalidArgument("unknown scenario device '" + label +
                                    "'");
  }
  return *dev;
}

HPL::Device hpl_device(const std::string& label) {
  auto dev = HPL::Device::by_name(device_needle(label));
  if (!dev) {
    throw hplrepro::InvalidArgument("unknown scenario device '" + label +
                                    "'");
  }
  return *dev;
}

std::uint64_t fnv1a(const std::vector<double>& values) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const double v : values) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (bits >> shift) & 0xffu;
      hash *= 0x100000001b3ull;
    }
  }
  return hash;
}

std::string fail(const char* rule, const std::string& detail) {
  return std::string(rule) + ": " + detail;
}

/// Runs one workload in one cell and applies the per-run grade rules
/// (correctness, profile reconciliation, perf envelope). Cross-variant
/// identity is graded by run_sweep over the collected hashes.
WorkloadGrade grade_one(const Workload& workload, const Cell& cell,
                        const std::vector<double>& reference) {
  WorkloadGrade grade;
  grade.workload = workload.name;

  const clsim::DeviceSpec& spec = clsim_device(cell.device).spec();
  if (workload.needs_double && !spec.supports_double) {
    grade.skipped = true;
    grade.skip_reason = "device has no double support";
    return grade;
  }

  // Cell configuration. The explicit purge makes cache accounting
  // deterministic: the first eval of the run is the one and only miss.
  clsim::set_async_enabled(cell.async);
  HPL::set_kernel_build_options(cell.build_options());
  HPL::purge_kernel_cache();
  HPL::reset_profile();

  const std::vector<double> got = workload.run(cell.size, hpl_device(cell.device));
  const HPL::ProfileSnapshot profile = HPL::profile();
  const std::vector<HPL::KernelProfile> kernels = HPL::kernel_profiles();

  // --- Grade 1: numeric correctness against the serial reference -----------
  if (got.size() != reference.size()) {
    grade.failures.push_back(fail(
        "correctness", "output has " + std::to_string(got.size()) +
                           " elements, reference has " +
                           std::to_string(reference.size())));
  } else {
    double worst_err = 0, worst_tol = 0;
    bool correct = true;
    for (std::size_t i = 0; i < got.size(); ++i) {
      const double err = std::fabs(got[i] - reference[i]);
      const double tol =
          workload.abs_tol + workload.rel_tol * std::fabs(reference[i]);
      if (err > worst_err) {
        worst_err = err;
        worst_tol = tol;
      }
      if (!(err <= tol)) correct = false;  // catches NaN too
    }
    grade.max_error = worst_err;
    grade.tolerance = worst_tol;
    if (!correct) {
      std::ostringstream msg;
      msg << "worst |ref-got| " << worst_err << " exceeds tolerance "
          << worst_tol;
      grade.failures.push_back(fail("correctness", msg.str()));
    }
  }
  grade.output_hash = fnv1a(got);

  // --- Grade 2: profile reconciliation --------------------------------------
  grade.launches = profile.kernel_launches;
  grade.cache_hits = profile.kernel_cache_hits;
  grade.cache_misses = profile.kernel_cache_misses;
  grade.kernel_sim_seconds = profile.kernel_sim_seconds;
  for (const auto& k : kernels) {
    grade.launch_sim_seconds += k.sim.launch_s;
    grade.global_bytes += k.global_bytes;
    grade.ops += k.ops;
  }

  const std::uint64_t expected = workload.expected_launches(cell.size);
  if (grade.launches != expected) {
    grade.failures.push_back(
        fail("profile", "expected " + std::to_string(expected) +
                            " launches, profiled " +
                            std::to_string(grade.launches)));
  }
  if (grade.cache_hits + grade.cache_misses != grade.launches) {
    grade.failures.push_back(fail(
        "profile", "cache hits " + std::to_string(grade.cache_hits) +
                       " + misses " + std::to_string(grade.cache_misses) +
                       " != launches " + std::to_string(grade.launches)));
  }
  if (grade.cache_misses != 1) {
    grade.failures.push_back(
        fail("profile", "expected exactly 1 cache miss after a purge, got " +
                            std::to_string(grade.cache_misses)));
  }
  if (grade.ops == 0 || grade.global_bytes == 0) {
    grade.failures.push_back(
        fail("profile", "kernel registry recorded no ops or bytes"));
  }

  // --- Grade 3: perf envelope -----------------------------------------------
  const double launch_overhead_s = spec.launch_overhead_us * 1e-6;
  const double expected_launch_s =
      static_cast<double>(grade.launches) * launch_overhead_s;
  if (std::fabs(grade.launch_sim_seconds - expected_launch_s) >
      1e-9 * expected_launch_s + 1e-15) {
    std::ostringstream msg;
    msg << "launch overhead " << grade.launch_sim_seconds << " s, expected "
        << expected_launch_s << " s";
    grade.failures.push_back(fail("envelope", msg.str()));
  }

  const double peak_ops =
      static_cast<double>(spec.compute_units) * spec.clock_ghz * 1e9 *
      spec.ipc;
  const double t_comp = workload.flops(cell.size) / peak_ops;
  const double t_mem =
      workload.bytes(cell.size) / (spec.global_bandwidth_gbs * 1e9);
  grade.roofline_lower = std::max(t_comp, t_mem) / kRooflineSlack;
  grade.roofline_upper = kRooflineSlack * (t_comp + t_mem) +
                         8.0 * static_cast<double>(grade.launches) *
                             launch_overhead_s +
                         1e-3;
  if (grade.kernel_sim_seconds < grade.roofline_lower ||
      grade.kernel_sim_seconds > grade.roofline_upper) {
    std::ostringstream msg;
    msg << "simulated kernel time " << grade.kernel_sim_seconds
        << " s outside roofline [" << grade.roofline_lower << ", "
        << grade.roofline_upper << "]";
    grade.failures.push_back(fail("envelope", msg.str()));
  }

  return grade;
}

/// Saves and restores the process-global runtime configuration the sweep
/// mutates, so callers (tests, benches) see their own settings again.
class ConfigGuard {
public:
  ConfigGuard()
      : async_(clsim::async_enabled()),
        options_(HPL::kernel_build_options()),
        fusion_(HPL::fusion_enabled()) {}
  ~ConfigGuard() {
    clsim::set_async_enabled(async_);
    HPL::set_kernel_build_options(options_);
    // The restored options may carry no -cl-fusion token, which leaves the
    // runtime toggle wherever the last cell put it; restore it explicitly.
    HPL::set_fusion_enabled(fusion_);
    HPL::purge_kernel_cache();
    HPL::reset_profile();
  }

private:
  bool async_;
  std::string options_;
  bool fusion_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Axes Axes::full() { return Axes{}; }

Axes Axes::reduced() {
  Axes axes;
  axes.sizes = {"small"};
  return axes;
}

std::string Cell::label() const {
  return device + "/" + (async ? "async" : "sync") + "/" + interp + "/" +
         opt + "/" + size + "/" + (fusion ? "fused" : "nofuse");
}

std::string Cell::build_options() const {
  const std::string fusion_token =
      std::string(" -cl-fusion=") + (fusion ? "on" : "off");
  if (interp == "threaded-wg-off") {
    return opt + " -cl-interp=threaded -cl-wg-loops=off" + fusion_token;
  }
  return opt + " -cl-interp=" + interp + fusion_token;
}

bool CellReport::passed() const {
  for (const auto& g : grades) {
    if (!g.skipped && !g.failures.empty()) return false;
  }
  return true;
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const auto& w : workloads()) names.push_back(w.name);
  return names;
}

SweepReport run_sweep(const Axes& axes) {
  ConfigGuard guard;
  SweepReport report;
  report.axes = axes;

  // Serial references are variant-independent: compute once per
  // (workload, size).
  std::map<std::string, std::vector<double>> references;
  const auto reference_for = [&](const Workload& w, const std::string& size)
      -> const std::vector<double>& {
    const std::string key = w.name + "|" + size;
    auto it = references.find(key);
    if (it == references.end()) {
      it = references.emplace(key, w.reference(size)).first;
    }
    return it->second;
  };

  // Observations for the cross-variant identity grades.
  struct Observation {
    std::string cell_label;
    WorkloadGrade grade;
  };
  std::map<std::string, std::vector<Observation>> sync_interp_groups;
  std::map<std::string, std::vector<Observation>> opt_groups;

  for (const auto& device : axes.devices) {
    for (const auto& size : axes.sizes) {
      for (const auto& opt : axes.opts) {
        for (const auto& interp : axes.interps) {
          for (const bool async : axes.async_modes) {
            for (const bool fusion : axes.fusion_modes) {
              Cell cell{device, async, interp, opt, size, fusion};
              CellReport cell_report;
              cell_report.cell = cell;
              for (const auto& workload : workloads()) {
                WorkloadGrade grade =
                    grade_one(workload, cell, reference_for(workload, size));
                if (grade.skipped) {
                  ++report.skipped;
                } else {
                  ++report.graded;
                  if (grade.failures.empty()) {
                    ++report.passed;
                  } else {
                    ++report.failed;
                  }
                  // Fusion mode deliberately stays OUT of both group keys:
                  // the benchsuite kernels are fusion-ineligible, so the
                  // lazy DAG must be observationally neutral — fused and
                  // unfused cells land in the same identity group.
                  const std::string run_key =
                      device + "|" + size + "|" + workload.name;
                  sync_interp_groups[run_key + "|" + opt].push_back(
                      {cell.label(), grade});
                  opt_groups[run_key].push_back({cell.label(), grade});
                }
                cell_report.grades.push_back(std::move(grade));
              }
              report.cells.push_back(std::move(cell_report));
            }
          }
        }
      }
    }
  }

  // Identity across the sync × interpreter variants of one
  // (device, opt, size, workload): bit-identical outputs and identical
  // profiled work. The interpreter and the sync mode are execution
  // details; nothing observable may depend on them.
  for (const auto& [key, group] : sync_interp_groups) {
    const Observation& base = group.front();
    for (const Observation& other : group) {
      const auto& a = base.grade;
      const auto& b = other.grade;
      if (a.output_hash != b.output_hash) {
        report.identity_failures.push_back(
            key + ": output of " + other.cell_label +
            " differs from " + base.cell_label);
      }
      if (std::fabs(a.kernel_sim_seconds - b.kernel_sim_seconds) >
          1e-12 * std::fabs(a.kernel_sim_seconds)) {
        report.identity_failures.push_back(
            key + ": simulated time of " + other.cell_label + " (" +
            std::to_string(b.kernel_sim_seconds) + ") differs from " +
            base.cell_label + " (" +
            std::to_string(a.kernel_sim_seconds) + ")");
      }
      if (a.launches != b.launches || a.cache_hits != b.cache_hits ||
          a.cache_misses != b.cache_misses || a.ops != b.ops ||
          a.global_bytes != b.global_bytes) {
        report.identity_failures.push_back(
            key + ": profiled work of " + other.cell_label +
            " differs from " + base.cell_label);
      }
    }
  }

  // Identity across -O0/-O2 (and everything else) of one
  // (device, size, workload): the optimizer contract — outputs stay
  // bit-identical; only time and op counts may change.
  for (const auto& [key, group] : opt_groups) {
    const Observation& base = group.front();
    for (const Observation& other : group) {
      if (base.grade.output_hash != other.grade.output_hash) {
        report.identity_failures.push_back(
            key + ": output of " + other.cell_label +
            " differs from " + base.cell_label + " (optimizer contract)");
      }
    }
  }

  return report;
}

namespace {

/// Device sets of the coexec axis: the asymmetric GPU pair, optionally
/// plus the host CPU.
std::vector<HPL::Device> coexec_device_set(int n) {
  std::vector<HPL::Device> ds{hpl_device("Tesla"), hpl_device("Quadro")};
  if (n >= 3) ds.push_back(HPL::Device::cpu_device());
  return ds;
}

/// Runs one coexec-axis workload and returns its output signature.
/// An empty device set runs single-device on Tesla (the reference).
/// Every workload issues exactly ONE eval, so the profile counters of a
/// co-executed run reconcile against coexec::last_dispatch() alone.
std::vector<double> coexec_run(const std::string& name,
                               const std::vector<HPL::Device>& devs,
                               hplrepro::coexec::Policy policy) {
  namespace bs = hplrepro::benchsuite;
  const HPL::Device single = hpl_device("Tesla");
  const auto widen = [](const std::vector<float>& v) {
    return std::vector<double>(v.begin(), v.end());
  };
  if (name == "reduction") {
    bs::ReductionConfig cfg;
    cfg.elements = 1 << 16;
    cfg.groups = 64;
    cfg.local_size = 128;
    cfg.coexec_devices = devs;
    cfg.coexec_policy = policy;
    return {bs::reduction_hpl(cfg, single).sum};
  }
  if (name == "transpose") {
    bs::TransposeConfig cfg;
    cfg.rows = 128;
    cfg.cols = 128;
    cfg.coexec_devices = devs;
    cfg.coexec_policy = policy;
    return widen(bs::transpose_hpl(cfg, single).output);
  }
  if (name == "jacobi") {
    bs::StencilConfig cfg;
    cfg.width = 96;
    cfg.height = 96;
    cfg.iterations = 1;
    cfg.coexec_devices = devs;
    cfg.coexec_policy = policy;
    return widen(bs::jacobi_hpl(cfg, single).output);
  }
  throw hplrepro::InvalidArgument("unknown coexec workload '" + name + "'");
}

}  // namespace

std::vector<CoexecGrade> run_coexec_axis() {
  namespace coexec = hplrepro::coexec;
  const char* kWorkloads[] = {"reduction", "transpose", "jacobi"};
  const coexec::Policy kPolicies[] = {
      coexec::Policy::Static, coexec::Policy::Dynamic,
      coexec::Policy::Guided};

  std::vector<CoexecGrade> grades;
  for (const char* workload : kWorkloads) {
    // Single-device reference signature (bit-identity baseline).
    HPL::purge_kernel_cache();
    HPL::reset_profile();
    const std::vector<double> reference =
        coexec_run(workload, {}, coexec::Policy::Static);

    for (const int nset : {2, 3}) {
      const std::vector<HPL::Device> devs = coexec_device_set(nset);
      for (const coexec::Policy policy : kPolicies) {
        CoexecGrade grade;
        grade.workload = workload;
        grade.policy = coexec::policy_name(policy);
        grade.device_count = nset;

        HPL::purge_kernel_cache();
        HPL::reset_profile();
        const std::vector<double> split =
            coexec_run(workload, devs, policy);
        const coexec::DispatchResult plan = coexec::last_dispatch();
        const HPL::ProfileSnapshot prof = HPL::profile();
        grade.chunks = plan.chunks.size();
        grade.launches = prof.kernel_launches;
        grade.cache_hits = prof.kernel_cache_hits;
        grade.cache_misses = prof.kernel_cache_misses;

        if (split != reference) {
          grade.failures.push_back(fail(
              "coexec-identity",
              "split result differs from the single-device run"));
        }

        // Plan sanity: >= 2 chunks covering [0, total) exactly once.
        if (plan.chunks.size() < 2) {
          grade.failures.push_back(fail(
              "coexec-plan", "co-executed NDRange produced " +
                                 std::to_string(plan.chunks.size()) +
                                 " chunk(s)"));
        }
        std::vector<coexec::Chunk> sorted = plan.chunks;
        std::sort(sorted.begin(), sorted.end(),
                  [](const coexec::Chunk& a, const coexec::Chunk& b) {
                    return a.begin < b.begin;
                  });
        std::size_t cursor = 0;
        bool contiguous = true;
        for (const coexec::Chunk& chunk : sorted) {
          contiguous = contiguous && chunk.begin == cursor &&
                       chunk.count > 0;
          cursor += chunk.count;
        }
        if (!contiguous || cursor != plan.total) {
          grade.failures.push_back(fail(
              "coexec-plan", "chunks do not cover the range exactly"));
        }

        // Profile reconciliation: each chunk is one mini-eval.
        if (grade.launches != grade.chunks) {
          grade.failures.push_back(fail(
              "coexec-profile",
              "launches " + std::to_string(grade.launches) +
                  " != plan chunks " + std::to_string(grade.chunks)));
        }
        if (grade.cache_hits + grade.cache_misses != grade.launches) {
          grade.failures.push_back(fail(
              "coexec-profile",
              "hits " + std::to_string(grade.cache_hits) + " + misses " +
                  std::to_string(grade.cache_misses) + " != launches " +
                  std::to_string(grade.launches)));
        }
        std::set<int> slots;
        for (const coexec::Chunk& chunk : plan.chunks) {
          slots.insert(chunk.slot);
        }
        if (grade.cache_misses != slots.size()) {
          grade.failures.push_back(fail(
              "coexec-profile",
              "misses " + std::to_string(grade.cache_misses) +
                  " != devices that received work (" +
                  std::to_string(slots.size()) + ")"));
        }
        grades.push_back(std::move(grade));
      }
    }
  }
  return grades;
}

namespace {

// The kernel body below needs HPL's expression operators in scope.
using namespace HPL;

/// The fusion-ineligible control: two statements, so no rewrite rule may
/// touch it — the fused run must be launch-for-launch the unfused run.
void fusion_control_kernel(HPL::Array<float, 1> out, HPL::Array<float, 1> in) {
  out[HPL::idx] = in[HPL::idx] * 2.0f;
  out[HPL::idx] = out[HPL::idx] + 1.0f;
}

/// The programs of the fusion axis: chains of single-statement pattern
/// kernels (what the rewrite rules fire on) plus the control. Each returns
/// its observable output; reading it is the forcing point that flushes the
/// DAG in fused mode.
struct FusionProgram {
  const char* name;
  bool chained;  // expected to fuse
  std::vector<double> (*run)();
};

std::vector<double> fusion_read_back(HPL::Array<float, 1>& a) {
  std::vector<double> out(a.length());
  for (std::size_t i = 0; i < a.length(); ++i) out[i] = a.get(i);
  return out;
}

constexpr std::size_t kFusionN = 2048;

const FusionProgram kFusionPrograms[] = {
    // fill + iota + scale + add: two producer chains meeting in one
    // consumer — the whole program folds into a single map kernel.
    {"map_chain", true,
     [] {
       HPL::Array<float, 1> b(kFusionN), t(kFusionN), out(kFusionN);
       HPL::fill(b, 3.0f);
       HPL::iota(t);
       HPL::scale(t, 2.0f);
       HPL::add(out, t, b);
       return fusion_read_back(out);
     }},
    // A map feeding the grid-stride reduction: one pass over the data.
    {"map_reduce", true,
     [] {
       HPL::Array<float, 1> a(kFusionN);
       HPL::fill(a, 2.5f);
       return std::vector<double>{
           static_cast<double>(HPL::reduce_sum(a))};
     }},
    // Two independent producers inlined into dot()'s reduction loop.
    {"dot_chain", true,
     [] {
       HPL::Array<float, 1> a(kFusionN), b(kFusionN);
       HPL::iota(a);
       HPL::fill(b, 0.5f);
       return std::vector<double>{static_cast<double>(HPL::dot(a, b))};
     }},
    // The first fill is fully overwritten before anyone reads it: dead.
    {"dead_temp", true,
     [] {
       HPL::Array<float, 1> t(kFusionN);
       HPL::fill(t, 1.0f);
       HPL::fill(t, 2.0f);
       return fusion_read_back(t);
     }},
    // Multi-statement kernels: the rewriter must keep its hands off.
    {"control_multi_statement", false,
     [] {
       HPL::Array<float, 1> in(kFusionN), out(kFusionN);
       for (std::size_t i = 0; i < kFusionN; ++i) {
         in(i) = static_cast<float>(i % 7);
       }
       HPL::eval(fusion_control_kernel)(out, in);
       HPL::eval(fusion_control_kernel)(in, out);
       return fusion_read_back(in);
     }},
};

}  // namespace

std::vector<FusionGrade> run_fusion_axis() {
  ConfigGuard guard;
  std::vector<FusionGrade> grades;
  for (const FusionProgram& program : kFusionPrograms) {
    FusionGrade grade;
    grade.program = program.name;
    grade.chained = program.chained;

    struct Observation {
      std::vector<double> output;
      std::uint64_t launches = 0;
      std::uint64_t bytes = 0;
      double sim_seconds = 0;
    };
    const auto observe = [&](bool fused) {
      HPL::set_fusion_enabled(fused);
      HPL::purge_kernel_cache();
      HPL::reset_profile();
      Observation obs;
      obs.output = program.run();
      const HPL::ProfileSnapshot prof = HPL::profile();
      obs.launches = prof.kernel_launches;
      obs.sim_seconds = prof.kernel_sim_seconds;
      for (const auto& k : HPL::kernel_profiles()) {
        obs.bytes += k.global_bytes;
      }
      if (prof.kernel_cache_hits + prof.kernel_cache_misses !=
          prof.kernel_launches) {
        grade.failures.push_back(fail(
            "fusion-profile",
            std::string(fused ? "fused" : "unfused") + " run: hits " +
                std::to_string(prof.kernel_cache_hits) + " + misses " +
                std::to_string(prof.kernel_cache_misses) + " != launches " +
                std::to_string(prof.kernel_launches)));
      }
      return obs;
    };
    const Observation unfused = observe(false);
    const Observation fused = observe(true);

    grade.unfused_launches = unfused.launches;
    grade.fused_launches = fused.launches;
    grade.unfused_bytes = unfused.bytes;
    grade.fused_bytes = fused.bytes;
    grade.unfused_sim_seconds = unfused.sim_seconds;
    grade.fused_sim_seconds = fused.sim_seconds;
    grade.bit_identical = unfused.output == fused.output;

    if (!grade.bit_identical) {
      grade.failures.push_back(fail(
          "fusion-identity", "fused output differs from the unfused run"));
    }
    if (fused.launches > unfused.launches) {
      grade.failures.push_back(fail(
          "fusion-delta", "fused run launched MORE kernels (" +
                              std::to_string(fused.launches) + " > " +
                              std::to_string(unfused.launches) + ")"));
    } else {
      grade.launches_saved = unfused.launches - fused.launches;
    }
    if (program.chained) {
      if (grade.launches_saved == 0) {
        grade.failures.push_back(fail(
            "fusion-delta", "chained program saved no launches (" +
                                std::to_string(unfused.launches) +
                                " unfused)"));
      }
      if (fused.bytes >= unfused.bytes) {
        grade.failures.push_back(fail(
            "fusion-traffic",
            "fused traffic " + std::to_string(fused.bytes) +
                " B is not below unfused " + std::to_string(unfused.bytes) +
                " B"));
      }
    } else {
      if (fused.launches != unfused.launches ||
          fused.bytes != unfused.bytes) {
        grade.failures.push_back(fail(
            "fusion-control",
            "rewriter touched a fusion-ineligible program (launches " +
                std::to_string(unfused.launches) + " -> " +
                std::to_string(fused.launches) + ", bytes " +
                std::to_string(unfused.bytes) + " -> " +
                std::to_string(fused.bytes) + ")"));
      }
    }
    grades.push_back(std::move(grade));
  }
  return grades;
}

bool grader_catches_sabotage() {
  ConfigGuard guard;
  const Workload broken = sabotage_workload();
  const Cell cell{"Tesla", true, "stack", "-O2", "small"};
  const WorkloadGrade grade =
      grade_one(broken, cell, broken.reference(cell.size));
  if (grade.skipped) return false;
  // Exactly the correctness rule must fire: the sabotaged kernel is a
  // perfectly healthy blur as far as profile and envelope are concerned.
  bool correctness_failed = false;
  for (const auto& f : grade.failures) {
    if (f.rfind("correctness", 0) == 0) {
      correctness_failed = true;
    } else {
      return false;  // a non-correctness rule misfired
    }
  }
  return correctness_failed;
}

std::string report_json(const SweepReport& report, int sabotage_caught,
                        const std::vector<CoexecGrade>* coexec,
                        const std::vector<FusionGrade>* fusion) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"hplrepro-scenario-v1\",\n";

  const auto string_list = [&](const std::vector<std::string>& items) {
    std::ostringstream list;
    for (std::size_t i = 0; i < items.size(); ++i) {
      list << (i ? ", " : "") << '"' << json_escape(items[i]) << '"';
    }
    return list.str();
  };

  out << "  \"axes\": {\n";
  out << "    \"devices\": [" << string_list(report.axes.devices) << "],\n";
  out << "    \"async\": [";
  for (std::size_t i = 0; i < report.axes.async_modes.size(); ++i) {
    out << (i ? ", " : "") << (report.axes.async_modes[i] ? "true" : "false");
  }
  out << "],\n";
  out << "    \"interps\": [" << string_list(report.axes.interps) << "],\n";
  out << "    \"opts\": [" << string_list(report.axes.opts) << "],\n";
  out << "    \"fusion\": [";
  for (std::size_t i = 0; i < report.axes.fusion_modes.size(); ++i) {
    out << (i ? ", " : "")
        << (report.axes.fusion_modes[i] ? "true" : "false");
  }
  out << "],\n";
  out << "    \"sizes\": [" << string_list(report.axes.sizes) << "]\n";
  out << "  },\n";

  out << "  \"cells\": [\n";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const CellReport& cell = report.cells[c];
    out << "    {\"cell\": \"" << json_escape(cell.cell.label()) << "\", "
        << "\"build_options\": \""
        << json_escape(cell.cell.build_options()) << "\", "
        << "\"passed\": " << (cell.passed() ? "true" : "false")
        << ", \"workloads\": [\n";
    for (std::size_t w = 0; w < cell.grades.size(); ++w) {
      const WorkloadGrade& g = cell.grades[w];
      out << "      {\"name\": \"" << json_escape(g.workload) << "\", ";
      if (g.skipped) {
        out << "\"status\": \"skip\", \"reason\": \""
            << json_escape(g.skip_reason) << "\"}";
      } else {
        out << "\"status\": \"" << (g.failures.empty() ? "pass" : "fail")
            << "\", \"max_error\": " << g.max_error
            << ", \"tolerance\": " << g.tolerance
            << ", \"output_hash\": \"" << std::hex << g.output_hash
            << std::dec << "\""
            << ", \"launches\": " << g.launches
            << ", \"cache_hits\": " << g.cache_hits
            << ", \"cache_misses\": " << g.cache_misses
            << ", \"ops\": " << g.ops
            << ", \"global_bytes\": " << g.global_bytes
            << ", \"kernel_sim_seconds\": " << g.kernel_sim_seconds
            << ", \"launch_sim_seconds\": " << g.launch_sim_seconds
            << ", \"roofline\": [" << g.roofline_lower << ", "
            << g.roofline_upper << "]"
            << ", \"failures\": [" << string_list(g.failures) << "]}";
      }
      out << (w + 1 < cell.grades.size() ? ",\n" : "\n");
    }
    out << "    ]}" << (c + 1 < report.cells.size() ? ",\n" : "\n");
  }
  out << "  ],\n";

  out << "  \"identity_failures\": [" << string_list(report.identity_failures)
      << "],\n";

  std::size_t coexec_failed = 0;
  if (coexec != nullptr) {
    out << "  \"coexec\": [\n";
    for (std::size_t g = 0; g < coexec->size(); ++g) {
      const CoexecGrade& grade = (*coexec)[g];
      if (!grade.passed()) ++coexec_failed;
      out << "    {\"workload\": \"" << json_escape(grade.workload)
          << "\", \"policy\": \"" << json_escape(grade.policy)
          << "\", \"devices\": " << grade.device_count
          << ", \"chunks\": " << grade.chunks
          << ", \"launches\": " << grade.launches
          << ", \"cache_hits\": " << grade.cache_hits
          << ", \"cache_misses\": " << grade.cache_misses
          << ", \"status\": \"" << (grade.passed() ? "pass" : "fail")
          << "\", \"failures\": [" << string_list(grade.failures) << "]}"
          << (g + 1 < coexec->size() ? ",\n" : "\n");
    }
    out << "  ],\n";
  }

  std::size_t fusion_failed = 0;
  if (fusion != nullptr) {
    out << "  \"fusion\": [\n";
    for (std::size_t g = 0; g < fusion->size(); ++g) {
      const FusionGrade& grade = (*fusion)[g];
      if (!grade.passed()) ++fusion_failed;
      out << "    {\"program\": \"" << json_escape(grade.program)
          << "\", \"chained\": " << (grade.chained ? "true" : "false")
          << ", \"unfused_launches\": " << grade.unfused_launches
          << ", \"fused_launches\": " << grade.fused_launches
          << ", \"launches_saved\": " << grade.launches_saved
          << ", \"unfused_bytes\": " << grade.unfused_bytes
          << ", \"fused_bytes\": " << grade.fused_bytes
          << ", \"unfused_sim_seconds\": " << grade.unfused_sim_seconds
          << ", \"fused_sim_seconds\": " << grade.fused_sim_seconds
          << ", \"bit_identical\": "
          << (grade.bit_identical ? "true" : "false")
          << ", \"status\": \"" << (grade.passed() ? "pass" : "fail")
          << "\", \"failures\": [" << string_list(grade.failures) << "]}"
          << (g + 1 < fusion->size() ? ",\n" : "\n");
    }
    out << "  ],\n";
  }

  if (sabotage_caught >= 0) {
    out << "  \"self_test\": {\"sabotage_caught\": "
        << (sabotage_caught ? "true" : "false") << "},\n";
  }
  const bool ok = report.ok() && coexec_failed == 0 && fusion_failed == 0;
  out << "  \"summary\": {\"cells\": " << report.cells.size()
      << ", \"graded\": " << report.graded
      << ", \"passed\": " << report.passed
      << ", \"failed\": " << report.failed
      << ", \"skipped\": " << report.skipped
      << ", \"identity_failures\": " << report.identity_failures.size();
  if (coexec != nullptr) {
    out << ", \"coexec_graded\": " << coexec->size()
        << ", \"coexec_failed\": " << coexec_failed;
  }
  if (fusion != nullptr) {
    out << ", \"fusion_graded\": " << fusion->size()
        << ", \"fusion_failed\": " << fusion_failed;
  }
  out << ", \"ok\": " << (ok ? "true" : "false") << "}\n";
  out << "}\n";
  return out.str();
}

}  // namespace hplrepro::scenario
