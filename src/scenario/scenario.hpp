#ifndef HPLREPRO_SCENARIO_SCENARIO_HPP
#define HPLREPRO_SCENARIO_SCENARIO_HPP

/// \file scenario.hpp
/// Grader-style scenario matrix (ROADMAP item 5; cf. the lc3tools grader):
/// enumerates every configuration the runtime actually exposes —
///
///   device {CPU, Tesla, Quadro} × sync {HPL_SYNC=0,1} ×
///   interpreter {-cl-interp=stack, threaded, threaded -cl-wg-loops=off} ×
///   opt {-O0,-O2} × fusion {-cl-fusion=on,off} × size
///
/// — runs every benchsuite workload (the five paper benchmarks plus the
/// stencil family) through each cell, and grades three things per run:
///
///   1. *Correctness*: the HPL result matches the serial reference within
///      the workload's declared tolerance.
///   2. *Profile identity*: cache hits + misses == launches, launches ==
///      the workload's declared count, and — across the sync × interpreter
///      variants of one (device, opt, size) — bit-identical outputs and
///      identical simulated time, ops and bytes. Outputs are additionally
///      bit-identical across -O0/-O2 (the optimizer contract).
///   3. *Perf envelope*: simulated kernel time within generous roofline
///      bounds derived from the workload's declared flop/byte counts and
///      the device spec, and launch overhead exactly launches × spec.
///
/// The grader is self-testing: grader_catches_sabotage() runs a blur whose
/// edge policy deliberately disagrees with its reference and reports
/// whether the correctness grade catches it.

#include <cstdint>
#include <string>
#include <vector>

namespace hplrepro::scenario {

/// The matrix axes. `async_modes` uses the HPL_SYNC convention of the
/// runtime: true = asynchronous pipeline (HPL_SYNC=0), false = forced
/// synchronous (HPL_SYNC=1).
struct Axes {
  std::vector<std::string> devices = {"CPU", "Tesla", "Quadro"};
  std::vector<bool> async_modes = {true, false};
  /// "threaded-wg-off" is the register interpreter with the work-group
  /// loop pass disabled: it must be observationally identical to
  /// "threaded", which the profile-identity grade enforces.
  std::vector<std::string> interps = {"stack", "threaded", "threaded-wg-off"};
  std::vector<std::string> opts = {"-O0", "-O2"};
  /// Lazy-DAG kernel fusion on/off (the "-cl-fusion" build option). The
  /// benchsuite kernels are all fusion-ineligible (multi-statement), so
  /// this axis grades *observational neutrality*: recording evals on the
  /// DAG and launching them at forcing points must change nothing a cell
  /// can see. The fused-vs-unfused deltas live in run_fusion_axis().
  std::vector<bool> fusion_modes = {true, false};
  std::vector<std::string> sizes = {"small", "large"};

  /// The full matrix: 3 × 2 × 3 × 2 × 2 × 2 = 144 cells.
  static Axes full();
  /// The reduced matrix for ctest/CI: small sizes only (72 cells).
  static Axes reduced();

  std::size_t cell_count() const {
    return devices.size() * async_modes.size() * interps.size() *
           opts.size() * fusion_modes.size() * sizes.size();
  }
};

/// One point of the matrix.
struct Cell {
  std::string device;
  bool async = true;
  std::string interp;
  std::string opt;
  std::string size;
  bool fusion = true;

  /// "Tesla/async/stack/-O2/small/fused" — stable id used in reports.
  std::string label() const;
  /// The clBuildProgram-style options string the cell runs under.
  std::string build_options() const;
};

/// The grade of one workload in one cell. An empty `failures` is a pass.
struct WorkloadGrade {
  std::string workload;
  bool skipped = false;       // device lacks a capability (EP w/o doubles)
  std::string skip_reason;

  // Correctness observations.
  std::uint64_t output_hash = 0;  // FNV-1a over the normalized output
  double max_error = 0;           // worst |ref - got|
  double tolerance = 0;           // hybrid bound at the worst element

  // Profile observations.
  std::uint64_t launches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t global_bytes = 0;
  std::uint64_t ops = 0;
  double kernel_sim_seconds = 0;
  double launch_sim_seconds = 0;

  // Perf envelope actually applied.
  double roofline_lower = 0;
  double roofline_upper = 0;

  std::vector<std::string> failures;
  bool passed() const { return !skipped && failures.empty(); }
};

struct CellReport {
  Cell cell;
  std::vector<WorkloadGrade> grades;
  bool passed() const;
};

struct SweepReport {
  Axes axes;
  std::vector<CellReport> cells;
  /// Cross-variant identity violations (sync × interp × opt groups).
  std::vector<std::string> identity_failures;
  std::size_t graded = 0;
  std::size_t passed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;

  bool ok() const { return failed == 0 && identity_failures.empty(); }
};

/// One grade of the co-execution axis: a workload NDRange split across a
/// device set under one scheduling policy, checked bit-identical against
/// the single-device run and reconciled against the dispatcher's chunk
/// plan (launches == chunks, hits + misses == launches, misses == devices
/// that actually received work, contiguous exact coverage).
struct CoexecGrade {
  std::string workload;       // reduction / transpose / jacobi
  std::string policy;         // static / dynamic / guided
  int device_count = 2;       // size of the device set
  std::uint64_t chunks = 0;
  std::uint64_t launches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::vector<std::string> failures;
  bool passed() const { return failures.empty(); }
};

/// Runs the co-execution axis: {reduction, transpose, jacobi} x
/// {static, dynamic, guided} x device sets {2: Tesla+Quadro,
/// 3: +host CPU} — 18 grades.
std::vector<CoexecGrade> run_coexec_axis();

/// One grade of the fusion axis: a chained pattern program (the kernels
/// the rewrite rules actually fire on) run unfused and fused, checked
/// bit-identical, profile-reconciled (hits + misses == launches in both
/// modes), and graded on its deltas: a chained program must save launches
/// and global-memory traffic; a control program (multi-statement kernels)
/// must be untouched by the rewriter.
struct FusionGrade {
  std::string program;
  bool chained = true;  // expected to fuse; false = ineligible control
  std::uint64_t unfused_launches = 0;
  std::uint64_t fused_launches = 0;
  std::uint64_t launches_saved = 0;
  std::uint64_t unfused_bytes = 0;  // global-memory traffic (kernel registry)
  std::uint64_t fused_bytes = 0;
  double unfused_sim_seconds = 0;
  double fused_sim_seconds = 0;
  bool bit_identical = false;
  std::vector<std::string> failures;
  bool passed() const { return failures.empty(); }
};

/// Runs the fusion axis: chained pattern programs (map chains, map→reduce,
/// two producers→dot, a dead temporary) plus a fusion-ineligible control,
/// each run unfused then fused.
std::vector<FusionGrade> run_fusion_axis();

/// The workloads the sweep grades, in run order: the five paper benchmarks
/// plus blur, sobel and jacobi.
std::vector<std::string> workload_names();

/// Runs the whole matrix. Restores async mode and build options on exit.
SweepReport run_sweep(const Axes& axes);

/// Self-test: grades a blur whose kernel runs a different boundary policy
/// than its reference; returns true iff the grader flags the mismatch
/// (and no legitimate grade rule is what caught it — only correctness).
bool grader_catches_sabotage();

/// Renders the report as JSON (schema "hplrepro-scenario-v1").
/// `sabotage_caught` < 0 omits the self-test block, else 0/1. When
/// `coexec` (resp. `fusion`) is non-null its grades are embedded as a
/// top-level "coexec" (resp. "fusion") array and any failures are folded
/// into summary.ok.
std::string report_json(const SweepReport& report, int sabotage_caught = -1,
                        const std::vector<CoexecGrade>* coexec = nullptr,
                        const std::vector<FusionGrade>* fusion = nullptr);

}  // namespace hplrepro::scenario

#endif  // HPLREPRO_SCENARIO_SCENARIO_HPP
