#include "clsim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <type_traits>

#include "clsim/coalescing.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace hplrepro::clsim {

using clc::ExecStats;
using clc::LaunchInfo;
using clc::MemoryEnv;
using clc::RegItemVM;
using clc::RunStatus;
using clc::WorkGroupVM;
using clc::WorkItemInfo;
using clc::WorkItemVM;

namespace {
// Tests adjust the budget while benchmark launches may be in flight on pool
// threads; atomic (relaxed — it is a plain tuning knob, not a
// synchronisation point) keeps that race benign. Each launch snapshots the
// value once and hands it to its group runners.
std::atomic<std::uint64_t> g_work_item_fuel{1ull << 33};  // ~8.6e9 ops/item
}

void set_work_item_fuel(std::uint64_t fuel) {
  g_work_item_fuel.store(fuel, std::memory_order_relaxed);
}
std::uint64_t work_item_fuel() {
  return g_work_item_fuel.load(std::memory_order_relaxed);
}

namespace {

std::vector<std::size_t> divisors_up_to(std::size_t n, std::size_t cap) {
  std::vector<std::size_t> out;
  for (std::size_t d = 1; d <= n && d <= cap; ++d) {
    if (n % d == 0) out.push_back(d);
  }
  return out;
}

}  // namespace

NDRange choose_local_range(const NDRange& global, std::size_t max_group) {
  NDRange local;
  local.dims = global.dims;
  // Enumerate divisor combinations and keep the one that (a) maximizes the
  // smallest per-dimension extent, then (b) maximizes total group size,
  // then (c) minimizes the max/min spread. Greedy largest-first factoring
  // would hand all 256 items to dimension 0 (256x1 strips for a 512x512
  // global); balanced divisors keep groups square-ish, which matters once
  // co-execution chunking shrinks the split dimension.
  std::vector<std::size_t> divs[3];
  for (int d = 0; d < global.dims; ++d) {
    divs[d] = divisors_up_to(global.sizes[d], max_group);
  }
  for (int d = global.dims; d < 3; ++d) divs[d] = {1};

  std::size_t best[3] = {1, 1, 1};
  std::size_t best_min = 0, best_total = 0, best_spread = ~std::size_t{0};
  for (std::size_t a : divs[0]) {
    for (std::size_t b : divs[1]) {
      if (a * b > max_group) break;  // divisors ascend
      for (std::size_t c : divs[2]) {
        const std::size_t total = a * b * c;
        if (total > max_group) break;
        std::size_t lo = a, hi = a;
        if (global.dims > 1) { lo = std::min(lo, b); hi = std::max(hi, b); }
        if (global.dims > 2) { lo = std::min(lo, c); hi = std::max(hi, c); }
        const std::size_t spread = hi - lo;
        const bool better =
            lo > best_min ||
            (lo == best_min &&
             (total > best_total ||
              (total == best_total && spread < best_spread)));
        if (better) {
          best[0] = a;
          best[1] = b;
          best[2] = c;
          best_min = lo;
          best_total = total;
          best_spread = spread;
        }
      }
    }
  }
  for (int d = 0; d < 3; ++d) local.sizes[d] = best[d];
  return local;
}

namespace {

struct GroupGrid {
  std::size_t counts[3];
  std::size_t total() const { return counts[0] * counts[1] * counts[2]; }
};

/// Runs all work-items of one work-group to completion, honouring
/// barriers. Reuses the caller's VM pool, local arena and phase-tracking
/// scratch across groups. `VM` is WorkItemVM (stack form), RegItemVM
/// (register form) — both expose the same reset/run/set_fuel protocol —
/// or WorkGroupVM, which executes the whole group itself via work-item
/// loops (one prepare per chunk, one run_group call per group).
template <class VM>
class GroupRunner {
public:
  static constexpr bool kIsWG = std::is_same_v<VM, WorkGroupVM>;

  GroupRunner(const clc::Module& module, const clc::CompiledFunction& kernel,
              std::span<const clc::Value> args,
              std::span<std::span<std::byte>> buffers,
              const LaunchInfo& launch, const DeviceSpec& device,
              std::uint64_t extra_local_bytes, std::uint64_t fuel)
      : module_(module),
        kernel_(kernel),
        args_(args),
        buffers_(buffers),
        launch_(launch),
        tracker_(device.warp_size, device.segment_bytes),
        use_tracker_(device.models_coalescing) {
    local_arena_.resize(kernel.local_bytes + extra_local_bytes);
    group_items_ = launch.local_size[0] * launch.local_size[1] *
                   launch.local_size[2];
    if constexpr (kIsWG) {
      // One activation runs the whole group as work-item loops; barriers
      // are handled inside run_group, so no per-item VMs or phase flags.
      vms_.resize(1);
      vms_[0].prepare(module, kernel, args, group_items_);
    } else {
      if (!kernel.uses_barrier) {
        vms_.resize(1);
      } else {
        vms_.resize(group_items_);
        done_.resize(group_items_);
      }
    }
    for (VM& vm : vms_) vm.set_fuel(fuel);
    items_.resize(group_items_);
  }

  /// Work-item loop trips / item-region executions accumulated by this
  /// runner's VM (wg mode only; zero otherwise). Feed the vm.wg_loop_trips
  /// and vm.regions metrics.
  std::uint64_t wg_loop_trips() const {
    if constexpr (kIsWG) {
      return vms_[0].loop_trips();
    } else {
      return 0;
    }
  }
  std::uint64_t wg_regions() const {
    if constexpr (kIsWG) {
      return vms_[0].regions_executed();
    } else {
      return 0;
    }
  }

  void run_group(std::size_t gx, std::size_t gy, std::size_t gz,
                 ExecStats& stats) {
    // Zero only the statically declared __local range. Dynamic __local
    // (extra_local_bytes, set per launch like clSetKernelArg with a size)
    // is uninitialised on real devices; leaving it untouched is still
    // deterministic across interpreters because every mode performs the
    // identical store sequence before any read.
    if (kernel_.local_bytes != 0) {
      std::fill_n(local_arena_.begin(), kernel_.local_bytes, std::byte{0});
    }
    MemoryEnv mem{buffers_, std::span<std::byte>(local_arena_)};
    clc::MemTracker* tracker = use_tracker_ ? &tracker_ : nullptr;

    // Precompute per-item identifiers.
    std::size_t linear = 0;
    for (std::size_t lz = 0; lz < launch_.local_size[2]; ++lz) {
      for (std::size_t ly = 0; ly < launch_.local_size[1]; ++ly) {
        for (std::size_t lx = 0; lx < launch_.local_size[0]; ++lx) {
          WorkItemInfo& item = items_[linear];
          item.local_id[0] = lx;
          item.local_id[1] = ly;
          item.local_id[2] = lz;
          item.group_id[0] = gx;
          item.group_id[1] = gy;
          item.group_id[2] = gz;
          item.global_id[0] = gx * launch_.local_size[0] + lx;
          item.global_id[1] = gy * launch_.local_size[1] + ly;
          item.global_id[2] = gz * launch_.local_size[2] + lz;
          item.linear_in_group = linear;
          ++linear;
        }
      }
    }

    if constexpr (kIsWG) {
      // Work-group mode: the VM loops every item of the group over each
      // barrier-delimited region on one activation; barrier phasing and
      // the divergent-barrier trap live inside run_group.
      vms_[0].run_group(mem, launch_, items_.data(), stats, tracker);
    } else if (!kernel_.uses_barrier) {
      // Fast path: one VM reused; every item runs to completion.
      VM& vm = vms_[0];
      for (std::size_t i = 0; i < group_items_; ++i) {
        vm.reset(module_, kernel_, args_);
        const RunStatus status =
            vm.run(mem, launch_, items_[i], stats, tracker);
        if (status != RunStatus::Done) {
          throw clc::TrapError(
              "kernel reached a barrier not seen at compile time");
        }
      }
    } else {
      // Barrier-capable path: all items live simultaneously; execute in
      // phases delimited by barriers.
      for (std::size_t i = 0; i < group_items_; ++i) {
        vms_[i].reset(module_, kernel_, args_);
      }
      std::size_t done_count = 0;
      std::fill(done_.begin(), done_.end(), char{0});
      while (done_count < group_items_) {
        std::size_t finished_this_phase = 0;
        std::size_t at_barrier = 0;
        for (std::size_t i = 0; i < group_items_; ++i) {
          if (done_[i]) continue;
          const RunStatus status =
              vms_[i].run(mem, launch_, items_[i], stats, tracker);
          if (status == RunStatus::Done) {
            done_[i] = 1;
            ++done_count;
            ++finished_this_phase;
          } else {
            ++at_barrier;
          }
        }
        // OpenCL requires that if any item of a group reaches a barrier,
        // every item reaches it. Mixed outcomes within one phase mean the
        // program would deadlock on real hardware; report it instead of
        // silently releasing the barrier.
        if (at_barrier != 0 && finished_this_phase != 0) {
          throw clc::TrapError(
              "divergent barrier: some work-items exited while others wait "
              "at a barrier");
        }
      }
    }

    stats.items += group_items_;
    stats.groups += 1;
    if (use_tracker_) {
      stats.global_transactions += tracker_.finish();
    }
  }

private:
  const clc::Module& module_;
  const clc::CompiledFunction& kernel_;
  std::span<const clc::Value> args_;
  std::span<std::span<std::byte>> buffers_;
  const LaunchInfo& launch_;
  CoalescingTracker tracker_;
  bool use_tracker_;
  std::vector<std::byte> local_arena_;
  std::vector<VM> vms_;
  std::vector<WorkItemInfo> items_;
  std::vector<char> done_;  // per-item phase flag, reused across groups
  std::size_t group_items_ = 0;
};

}  // namespace

void validate_launch(const clc::CompiledFunction& kernel,
                     const NDRange& global, const NDRange& local,
                     const DeviceSpec& device,
                     std::uint64_t extra_local_bytes) {
  if (global.dims != local.dims) {
    throw InvalidArgument("global and local ranges must have equal rank");
  }
  for (int d = 0; d < 3; ++d) {
    if (local.sizes[d] == 0 || global.sizes[d] % local.sizes[d] != 0) {
      throw InvalidArgument(
          "local size must evenly divide global size in every dimension");
    }
  }
  if (kernel.uses_double && !device.supports_double) {
    throw InvalidArgument("device '" + device.name +
                          "' does not support double precision");
  }
  if (kernel.local_bytes + extra_local_bytes > device.local_mem_bytes) {
    throw InvalidArgument("kernel needs more __local memory than device '" +
                          device.name + "' provides");
  }
}

LaunchResult execute_ndrange(const clc::Module& module,
                             const clc::CompiledFunction& kernel,
                             std::span<const clc::Value> args,
                             std::span<std::span<std::byte>> buffers,
                             const NDRange& global, const NDRange& local,
                             const DeviceSpec& device,
                             hplrepro::ThreadPool& pool,
                             std::uint64_t extra_local_bytes,
                             const LaunchSlice* slice) {
  hplrepro::Stopwatch wall;
  trace::Span span(kernel.name.c_str(), "vm");

  validate_launch(kernel, global, local, device, extra_local_bytes);
  LaunchInfo launch;
  launch.work_dim = global.dims;
  // The LaunchInfo always describes the FULL launch — work-items in a
  // sliced launch must see the same get_global_size/get_num_groups as the
  // unsplit launch. Only the iteration grid below is narrowed.
  GroupGrid grid{};
  for (int d = 0; d < 3; ++d) {
    launch.global_size[d] = global.sizes[d];
    launch.local_size[d] = local.sizes[d];
    launch.num_groups[d] = global.sizes[d] / local.sizes[d];
    grid.counts[d] = launch.num_groups[d];
  }

  std::size_t group_offset[3] = {0, 0, 0};
  if (slice != nullptr) {
    if (slice->dim < 0 || slice->dim >= global.dims) {
      throw InvalidArgument("launch slice dimension out of range");
    }
    if (slice->group_count == 0 ||
        slice->group_begin + slice->group_count >
            launch.num_groups[slice->dim]) {
      throw InvalidArgument("launch slice exceeds the group grid");
    }
    grid.counts[slice->dim] = slice->group_count;
    group_offset[slice->dim] = slice->group_begin;
  }

  const std::size_t total_groups = grid.total();

  ExecStats total_stats;
  std::mutex stats_mutex;
  std::uint64_t wg_trips = 0;    // work-item loop trips (wg mode only)
  std::uint64_t wg_regions = 0;  // item-region executions (wg mode only)
  const std::uint64_t fuel = work_item_fuel();  // one snapshot per launch

  auto run_with = [&](auto vm_tag) {
    using VM = typename decltype(vm_tag)::type;
    pool.parallel_for_chunked(
        total_groups, [&](std::size_t begin, std::size_t end) {
          GroupRunner<VM> runner(module, kernel, args, buffers, launch,
                                 device, extra_local_bytes, fuel);
          ExecStats chunk_stats;
          for (std::size_t g = begin; g < end; ++g) {
            const std::size_t gx =
                g % grid.counts[0] + group_offset[0];
            const std::size_t gy =
                (g / grid.counts[0]) % grid.counts[1] + group_offset[1];
            const std::size_t gz =
                g / (grid.counts[0] * grid.counts[1]) + group_offset[2];
            runner.run_group(gx, gy, gz, chunk_stats);
          }
          std::lock_guard lock(stats_mutex);
          total_stats += chunk_stats;
          wg_trips += runner.wg_loop_trips();
          wg_regions += runner.wg_regions();
        });
  };
  // Modules built with -cl-interp=threaded carry the register form; run it
  // with the direct-threaded VM — in work-group mode (work-item loops) when
  // the build's -cl-wg-loops analysis marked this kernel eligible, else one
  // item per activation. Stack-only modules (or lowering fallback) use the
  // reference stack interpreter.
  const auto kernel_index =
      static_cast<std::size_t>(&kernel - module.functions.data());
  const bool use_wg =
      module.has_wg_form() && module.wg_info[kernel_index].eligible;
  if (use_wg) {
    run_with(std::type_identity<WorkGroupVM>{});
  } else if (module.has_reg_form()) {
    run_with(std::type_identity<RegItemVM>{});
  } else {
    run_with(std::type_identity<WorkItemVM>{});
  }

  LaunchResult result;
  result.stats = total_stats;
  result.timing = simulate_kernel_time(total_stats, device);
  result.wall_seconds = wall.seconds();
  if (metrics::enabled()) {
    static auto& launches = metrics::counter("vm.launches");
    static auto& ops = metrics::counter("vm.ops");
    static auto& fused = metrics::counter("vm.fused_ops");
    static auto& items = metrics::counter("vm.items");
    static auto& groups = metrics::counter("vm.groups");
    static auto& global_bytes = metrics::counter("vm.global_bytes");
    static auto& barriers = metrics::counter("vm.barriers");
    static auto& wg_launches = metrics::counter("vm.wg_launches");
    static auto& wg_loop_trips = metrics::counter("vm.wg_loop_trips");
    static auto& regions = metrics::counter("vm.regions");
    static auto& launch_wall =
        metrics::histogram("vm.launch.wall_ns");
    launches.add_always(1);
    ops.add_always(total_stats.total_ops());
    fused.add_always(total_stats.fused_ops);
    items.add_always(total_stats.items);
    groups.add_always(total_stats.groups);
    global_bytes.add_always(total_stats.global_load_bytes +
                            total_stats.global_store_bytes);
    barriers.add_always(total_stats.barriers_executed);
    wg_launches.add_always(use_wg ? 1 : 0);
    wg_loop_trips.add_always(wg_trips);
    regions.add_always(wg_regions);
    launch_wall.record_seconds(result.wall_seconds);
  }
  span.arg("device", device.name)
      .arg("groups", total_stats.groups)
      .arg("items", total_stats.items)
      .arg("ops", total_stats.total_ops())
      .arg("sim_ms", result.timing.total_s * 1e3);
  return result;
}

}  // namespace hplrepro::clsim
