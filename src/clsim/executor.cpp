#include "clsim/executor.hpp"

#include <mutex>

#include "clsim/coalescing.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace hplrepro::clsim {

using clc::ExecStats;
using clc::LaunchInfo;
using clc::MemoryEnv;
using clc::RunStatus;
using clc::WorkItemInfo;
using clc::WorkItemVM;

namespace {
std::uint64_t g_work_item_fuel = 1ull << 33;  // ~8.6e9 ops per item
}

void set_work_item_fuel(std::uint64_t fuel) { g_work_item_fuel = fuel; }
std::uint64_t work_item_fuel() { return g_work_item_fuel; }

NDRange choose_local_range(const NDRange& global, std::size_t max_group) {
  NDRange local;
  local.dims = global.dims;
  std::size_t budget = max_group;
  for (int d = 0; d < global.dims; ++d) {
    std::size_t pick = 1;
    for (std::size_t candidate = budget; candidate >= 1; --candidate) {
      if (global.sizes[d] % candidate == 0) {
        pick = candidate;
        break;
      }
    }
    local.sizes[d] = pick;
    budget = std::max<std::size_t>(1, budget / pick);
  }
  return local;
}

namespace {

struct GroupGrid {
  std::size_t counts[3];
  std::size_t total() const { return counts[0] * counts[1] * counts[2]; }
};

/// Runs all work-items of one work-group to completion, honouring
/// barriers. Reuses the caller's VM pool and local arena.
class GroupRunner {
public:
  GroupRunner(const clc::Module& module, const clc::CompiledFunction& kernel,
              std::span<const clc::Value> args,
              std::span<std::span<std::byte>> buffers,
              const LaunchInfo& launch, const DeviceSpec& device,
              std::uint64_t extra_local_bytes)
      : module_(module),
        kernel_(kernel),
        args_(args),
        buffers_(buffers),
        launch_(launch),
        tracker_(device.warp_size, device.segment_bytes),
        use_tracker_(device.models_coalescing) {
    local_arena_.resize(kernel.local_bytes + extra_local_bytes);
    group_items_ = launch.local_size[0] * launch.local_size[1] *
                   launch.local_size[2];
    if (!kernel.uses_barrier) {
      vms_.resize(1);
    } else {
      vms_.resize(group_items_);
    }
    items_.resize(group_items_);
  }

  void run_group(std::size_t gx, std::size_t gy, std::size_t gz,
                 ExecStats& stats) {
    std::fill(local_arena_.begin(), local_arena_.end(), std::byte{0});
    MemoryEnv mem{buffers_, std::span<std::byte>(local_arena_)};
    clc::MemTracker* tracker = use_tracker_ ? &tracker_ : nullptr;

    // Precompute per-item identifiers.
    std::size_t linear = 0;
    for (std::size_t lz = 0; lz < launch_.local_size[2]; ++lz) {
      for (std::size_t ly = 0; ly < launch_.local_size[1]; ++ly) {
        for (std::size_t lx = 0; lx < launch_.local_size[0]; ++lx) {
          WorkItemInfo& item = items_[linear];
          item.local_id[0] = lx;
          item.local_id[1] = ly;
          item.local_id[2] = lz;
          item.group_id[0] = gx;
          item.group_id[1] = gy;
          item.group_id[2] = gz;
          item.global_id[0] = gx * launch_.local_size[0] + lx;
          item.global_id[1] = gy * launch_.local_size[1] + ly;
          item.global_id[2] = gz * launch_.local_size[2] + lz;
          item.linear_in_group = linear;
          ++linear;
        }
      }
    }

    if (!kernel_.uses_barrier) {
      // Fast path: one VM reused; every item runs to completion.
      WorkItemVM& vm = vms_[0];
      vm.set_fuel(work_item_fuel());
      for (std::size_t i = 0; i < group_items_; ++i) {
        vm.reset(module_, kernel_, args_);
        const RunStatus status =
            vm.run(mem, launch_, items_[i], stats, tracker);
        if (status != RunStatus::Done) {
          throw clc::TrapError(
              "kernel reached a barrier not seen at compile time");
        }
      }
    } else {
      // Barrier-capable path: all items live simultaneously; execute in
      // phases delimited by barriers.
      for (std::size_t i = 0; i < group_items_; ++i) {
        vms_[i].set_fuel(work_item_fuel());
        vms_[i].reset(module_, kernel_, args_);
      }
      std::size_t done_count = 0;
      std::vector<bool> done(group_items_, false);
      while (done_count < group_items_) {
        std::size_t finished_this_phase = 0;
        std::size_t at_barrier = 0;
        for (std::size_t i = 0; i < group_items_; ++i) {
          if (done[i]) continue;
          const RunStatus status =
              vms_[i].run(mem, launch_, items_[i], stats, tracker);
          if (status == RunStatus::Done) {
            done[i] = true;
            ++done_count;
            ++finished_this_phase;
          } else {
            ++at_barrier;
          }
        }
        // OpenCL requires that if any item of a group reaches a barrier,
        // every item reaches it. Mixed outcomes within one phase mean the
        // program would deadlock on real hardware; report it instead of
        // silently releasing the barrier.
        if (at_barrier != 0 && finished_this_phase != 0) {
          throw clc::TrapError(
              "divergent barrier: some work-items exited while others wait "
              "at a barrier");
        }
      }
    }

    stats.items += group_items_;
    stats.groups += 1;
    if (use_tracker_) {
      stats.global_transactions += tracker_.finish();
    }
  }

private:
  const clc::Module& module_;
  const clc::CompiledFunction& kernel_;
  std::span<const clc::Value> args_;
  std::span<std::span<std::byte>> buffers_;
  const LaunchInfo& launch_;
  CoalescingTracker tracker_;
  bool use_tracker_;
  std::vector<std::byte> local_arena_;
  std::vector<WorkItemVM> vms_;
  std::vector<WorkItemInfo> items_;
  std::size_t group_items_ = 0;
};

}  // namespace

LaunchResult execute_ndrange(const clc::Module& module,
                             const clc::CompiledFunction& kernel,
                             std::span<const clc::Value> args,
                             std::span<std::span<std::byte>> buffers,
                             const NDRange& global, const NDRange& local,
                             const DeviceSpec& device,
                             hplrepro::ThreadPool& pool,
                             std::uint64_t extra_local_bytes) {
  hplrepro::Stopwatch wall;
  trace::Span span(kernel.name.c_str(), "vm");

  if (global.dims != local.dims) {
    throw InvalidArgument("global and local ranges must have equal rank");
  }
  LaunchInfo launch;
  launch.work_dim = global.dims;
  GroupGrid grid{};
  for (int d = 0; d < 3; ++d) {
    launch.global_size[d] = global.sizes[d];
    launch.local_size[d] = local.sizes[d];
    if (local.sizes[d] == 0 || global.sizes[d] % local.sizes[d] != 0) {
      throw InvalidArgument(
          "local size must evenly divide global size in every dimension");
    }
    launch.num_groups[d] = global.sizes[d] / local.sizes[d];
    grid.counts[d] = launch.num_groups[d];
  }
  if (kernel.uses_double && !device.supports_double) {
    throw InvalidArgument("device '" + device.name +
                          "' does not support double precision");
  }
  if (kernel.local_bytes + extra_local_bytes > device.local_mem_bytes) {
    throw InvalidArgument("kernel needs more __local memory than device '" +
                          device.name + "' provides");
  }

  const std::size_t total_groups = grid.total();

  ExecStats total_stats;
  std::mutex stats_mutex;

  pool.parallel_for_chunked(
      total_groups, [&](std::size_t begin, std::size_t end) {
        GroupRunner runner(module, kernel, args, buffers, launch, device,
                           extra_local_bytes);
        ExecStats chunk_stats;
        for (std::size_t g = begin; g < end; ++g) {
          const std::size_t gx = g % grid.counts[0];
          const std::size_t gy = (g / grid.counts[0]) % grid.counts[1];
          const std::size_t gz = g / (grid.counts[0] * grid.counts[1]);
          runner.run_group(gx, gy, gz, chunk_stats);
        }
        std::lock_guard lock(stats_mutex);
        total_stats += chunk_stats;
      });

  LaunchResult result;
  result.stats = total_stats;
  result.timing = simulate_kernel_time(total_stats, device);
  result.wall_seconds = wall.seconds();
  span.arg("device", device.name)
      .arg("groups", total_stats.groups)
      .arg("items", total_stats.items)
      .arg("ops", total_stats.total_ops())
      .arg("sim_ms", result.timing.total_s * 1e3);
  return result;
}

}  // namespace hplrepro::clsim
