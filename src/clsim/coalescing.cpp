#include "clsim/coalescing.hpp"

#include <algorithm>

namespace hplrepro::clsim {

void CoalescingTracker::global_access(std::uint32_t pc_key,
                                      std::uint64_t item_linear,
                                      std::uint64_t buffer,
                                      std::uint64_t offset, std::uint32_t size,
                                      bool /*is_store*/) {
  PerInstr& state = instrs_[pc_key];
  const std::uint64_t warp = item_linear / warp_size_;
  if (warp != state.warp) {
    transactions_ += state.segments.size();
    state.segments.clear();
    state.warp = warp;
  }

  // Tag segments with the buffer id in the top bits so accesses to two
  // different buffers never merge.
  const std::uint64_t first = (buffer << 50) | (offset / segment_bytes_);
  const std::uint64_t last =
      (buffer << 50) | ((offset + size - 1) / segment_bytes_);
  for (std::uint64_t seg = first; seg <= last; ++seg) {
    if (std::find(state.segments.begin(), state.segments.end(), seg) ==
        state.segments.end()) {
      state.segments.push_back(seg);
    }
  }
}

std::uint64_t CoalescingTracker::finish() {
  for (auto& [key, state] : instrs_) {
    transactions_ += state.segments.size();
    state.segments.clear();
    state.warp = UINT64_MAX;
  }
  const std::uint64_t result = transactions_;
  transactions_ = 0;
  return result;
}

void CoalescingTracker::reset() {
  instrs_.clear();
  transactions_ = 0;
}

}  // namespace hplrepro::clsim
