#ifndef HPLREPRO_CLSIM_EXECUTOR_HPP
#define HPLREPRO_CLSIM_EXECUTOR_HPP

/// \file executor.hpp
/// NDRange executor: runs every work-group of a kernel launch over a host
/// thread pool, with work-items inside a group executed as resumable VM
/// activations so barriers have real semantics.

#include <cstddef>
#include <span>
#include <vector>

#include "clc/bytecode.hpp"
#include "clc/stats.hpp"
#include "clc/vm.hpp"
#include "clsim/device.hpp"
#include "clsim/timing.hpp"
#include "support/thread_pool.hpp"

namespace hplrepro::clsim {

/// An N-dimensional range (OpenCL NDRange).
struct NDRange {
  int dims = 1;
  std::size_t sizes[3] = {1, 1, 1};

  NDRange() = default;
  explicit NDRange(std::size_t x) : dims(1), sizes{x, 1, 1} {}
  NDRange(std::size_t x, std::size_t y) : dims(2), sizes{x, y, 1} {}
  NDRange(std::size_t x, std::size_t y, std::size_t z)
      : dims(3), sizes{x, y, z} {}

  std::size_t total() const { return sizes[0] * sizes[1] * sizes[2]; }
};

/// Picks a local range whose sizes divide `global` evenly; used when the
/// client does not specify one (OpenCL's NULL local_work_size).
NDRange choose_local_range(const NDRange& global,
                           std::size_t max_group = 256);

/// Per-work-item dynamic instruction budget between barriers. Kernels that
/// exceed it trap (guards the host against runaway device loops). The
/// default is large enough for any realistic kernel; tests lower it.
void set_work_item_fuel(std::uint64_t fuel);
std::uint64_t work_item_fuel();

struct LaunchResult {
  clc::ExecStats stats;
  TimingBreakdown timing;
  double wall_seconds = 0;  // host wall-clock spent simulating
};

/// Validates launch geometry and device-capability constraints, throwing
/// InvalidArgument exactly as execute_ndrange would. The command queue
/// calls this at enqueue time so geometry errors surface synchronously
/// even though execution is deferred to the queue's worker thread.
void validate_launch(const clc::CompiledFunction& kernel,
                     const NDRange& global, const NDRange& local,
                     const DeviceSpec& device,
                     std::uint64_t extra_local_bytes = 0);

/// Executes `kernel` over the given ranges. `args` must hold one Value per
/// kernel parameter (scalars, or pointers encoded with buffer-table
/// indices — including Local-space pointers into the per-group arena for
/// dynamically sized __local arguments); `buffers` is the buffer table
/// those pointers index. `extra_local_bytes` extends every group's local
/// arena beyond the kernel's statically declared __local arrays.
LaunchResult execute_ndrange(const clc::Module& module,
                             const clc::CompiledFunction& kernel,
                             std::span<const clc::Value> args,
                             std::span<std::span<std::byte>> buffers,
                             const NDRange& global, const NDRange& local,
                             const DeviceSpec& device,
                             hplrepro::ThreadPool& pool,
                             std::uint64_t extra_local_bytes = 0);

}  // namespace hplrepro::clsim

#endif  // HPLREPRO_CLSIM_EXECUTOR_HPP
