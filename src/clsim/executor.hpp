#ifndef HPLREPRO_CLSIM_EXECUTOR_HPP
#define HPLREPRO_CLSIM_EXECUTOR_HPP

/// \file executor.hpp
/// NDRange executor: runs every work-group of a kernel launch over a host
/// thread pool, with work-items inside a group executed as resumable VM
/// activations so barriers have real semantics.

#include <cstddef>
#include <span>
#include <vector>

#include "clc/bytecode.hpp"
#include "clc/stats.hpp"
#include "clc/vm.hpp"
#include "clsim/device.hpp"
#include "clsim/timing.hpp"
#include "support/thread_pool.hpp"

namespace hplrepro::clsim {

/// An N-dimensional range (OpenCL NDRange).
struct NDRange {
  int dims = 1;
  std::size_t sizes[3] = {1, 1, 1};

  NDRange() = default;
  explicit NDRange(std::size_t x) : dims(1), sizes{x, 1, 1} {}
  NDRange(std::size_t x, std::size_t y) : dims(2), sizes{x, y, 1} {}
  NDRange(std::size_t x, std::size_t y, std::size_t z)
      : dims(3), sizes{x, y, z} {}

  std::size_t total() const { return sizes[0] * sizes[1] * sizes[2]; }
};

/// Picks a local range whose sizes divide `global` evenly; used when the
/// client does not specify one (OpenCL's NULL local_work_size). Divisors
/// are chosen to be balanced across dimensions (maximize the smallest
/// per-dimension extent under the group budget, then total group size)
/// rather than greedily factoring dimension 0 first, which degenerates to
/// 256x1 strips for square 2-D globals.
NDRange choose_local_range(const NDRange& global,
                           std::size_t max_group = 256);

/// A contiguous run of work-groups along one NDRange dimension. Used by
/// the co-execution scheduler to launch a slice of a kernel's group grid
/// on one device while keeping the work-items' view of the launch (global
/// sizes, group counts) identical to the unsplit launch.
struct LaunchSlice {
  int dim = 0;                   // dimension being partitioned
  std::size_t group_begin = 0;   // first group index along `dim`
  std::size_t group_count = 0;   // number of groups along `dim`
};

/// Per-work-item dynamic instruction budget between barriers. Kernels that
/// exceed it trap (guards the host against runaway device loops). The
/// default is large enough for any realistic kernel; tests lower it.
void set_work_item_fuel(std::uint64_t fuel);
std::uint64_t work_item_fuel();

struct LaunchResult {
  clc::ExecStats stats;
  TimingBreakdown timing;
  double wall_seconds = 0;  // host wall-clock spent simulating
};

/// Validates launch geometry and device-capability constraints, throwing
/// InvalidArgument exactly as execute_ndrange would. The command queue
/// calls this at enqueue time so geometry errors surface synchronously
/// even though execution is deferred to the queue's worker thread.
void validate_launch(const clc::CompiledFunction& kernel,
                     const NDRange& global, const NDRange& local,
                     const DeviceSpec& device,
                     std::uint64_t extra_local_bytes = 0);

/// Executes `kernel` over the given ranges. `args` must hold one Value per
/// kernel parameter (scalars, or pointers encoded with buffer-table
/// indices — including Local-space pointers into the per-group arena for
/// dynamically sized __local arguments); `buffers` is the buffer table
/// those pointers index. `extra_local_bytes` extends every group's local
/// arena beyond the kernel's statically declared __local arrays. When
/// `slice` is non-null only that run of groups executes, but work-items
/// still observe the full launch geometry (get_global_size /
/// get_num_groups return the unsplit values), so grid-stride kernels
/// remain bit-identical under co-execution splits.
LaunchResult execute_ndrange(const clc::Module& module,
                             const clc::CompiledFunction& kernel,
                             std::span<const clc::Value> args,
                             std::span<std::span<std::byte>> buffers,
                             const NDRange& global, const NDRange& local,
                             const DeviceSpec& device,
                             hplrepro::ThreadPool& pool,
                             std::uint64_t extra_local_bytes = 0,
                             const LaunchSlice* slice = nullptr);

}  // namespace hplrepro::clsim

#endif  // HPLREPRO_CLSIM_EXECUTOR_HPP
