#ifndef HPLREPRO_CLSIM_COALESCING_HPP
#define HPLREPRO_CLSIM_COALESCING_HPP

/// \file coalescing.hpp
/// Warp-level memory coalescing analysis.
///
/// GPUs service the global-memory accesses of a warp in units of aligned
/// segments (32 B on Fermi). When the 32 lanes of a warp touch consecutive
/// addresses, a 128 B request needs only 4 segments; a random gather needs
/// up to 32. This tracker replays that bookkeeping: for every memory
/// instruction (identified by pc_key) it collects the segments touched by
/// the current warp and counts one transaction per distinct segment.
///
/// Work-items of a group run sequentially in the simulator, so the tracker
/// keys the "current warp" on item_linear / warp_size and flushes when a
/// new warp starts issuing from the same instruction.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "clc/vm.hpp"

namespace hplrepro::clsim {

class CoalescingTracker final : public clc::MemTracker {
public:
  explicit CoalescingTracker(unsigned warp_size, unsigned segment_bytes)
      : warp_size_(warp_size == 0 ? 1 : warp_size),
        segment_bytes_(segment_bytes == 0 ? 32 : segment_bytes) {}

  void global_access(std::uint32_t pc_key, std::uint64_t item_linear,
                     std::uint64_t buffer, std::uint64_t offset,
                     std::uint32_t size, bool is_store) override;

  /// Flushes pending warps and returns the transaction count since the
  /// last reset.
  std::uint64_t finish();

  /// Clears all state (reuse across groups).
  void reset();

private:
  struct PerInstr {
    std::uint64_t warp = UINT64_MAX;
    // Segments touched by the current warp at this instruction. Accesses
    // are usually strided, so a small vector with linear scan beats a set.
    std::vector<std::uint64_t> segments;
  };

  unsigned warp_size_;
  unsigned segment_bytes_;
  std::unordered_map<std::uint32_t, PerInstr> instrs_;
  std::uint64_t transactions_ = 0;
};

}  // namespace hplrepro::clsim

#endif  // HPLREPRO_CLSIM_COALESCING_HPP
