#include "clsim/cl_api.hpp"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "clc/vm.hpp"
#include "clsim/runtime.hpp"

namespace clsim = hplrepro::clsim;

// Handle bodies. Each wraps the corresponding RAII clsim object plus a
// reference count, so the C API's retain/release semantics hold.

struct _cl_platform_id {
  // Singleton; nothing to store.
};

struct _cl_device_id {
  clsim::Device device;
};

struct _cl_context {
  std::unique_ptr<clsim::Context> context;
  cl_device_id device = nullptr;
  int refs = 1;
};

struct _cl_command_queue {
  std::unique_ptr<clsim::CommandQueue> queue;
  int refs = 1;
};

struct _cl_mem {
  std::unique_ptr<clsim::Buffer> buffer;
  int refs = 1;
};

struct _cl_program {
  std::unique_ptr<clsim::Program> program;
  cl_context context = nullptr;
  int refs = 1;
};

struct _cl_kernel {
  std::unique_ptr<clsim::Kernel> kernel;
  int refs = 1;
};

struct _cl_event {
  clsim::Event event;  // shared handle onto the command's state
  int refs = 1;
};

namespace {

_cl_platform_id g_platform;

/// Device handles are interned so repeated queries return stable ids.
std::vector<std::unique_ptr<_cl_device_id>>& device_handles() {
  static std::vector<std::unique_ptr<_cl_device_id>> handles;
  return handles;
}

cl_device_id intern_device(const clsim::Device& device) {
  for (auto& h : device_handles()) {
    if (h->device == device) return h.get();
  }
  device_handles().push_back(
      std::make_unique<_cl_device_id>(_cl_device_id{device}));
  return device_handles().back().get();
}

template <typename Handle>
cl_int release(Handle handle, cl_int bad_code) {
  if (handle == nullptr) return bad_code;
  if (--handle->refs == 0) delete handle;
  return CL_SUCCESS;
}

cl_int set_error(cl_int* errcode_ret, cl_int code) {
  if (errcode_ret != nullptr) *errcode_ret = code;
  return code;
}

/// Converts a (num_events, wait_list) pair into clsim events. Returns
/// false when the pair is malformed (CL_INVALID_EVENT_WAIT_LIST).
bool collect_wait_list(cl_uint num_events, const cl_event* wait_list,
                       std::vector<clsim::Event>& out) {
  if ((num_events == 0) != (wait_list == nullptr)) return false;
  for (cl_uint i = 0; i < num_events; ++i) {
    if (wait_list[i] == nullptr) return false;
    out.push_back(wait_list[i]->event);
  }
  return true;
}

/// Completes an enqueue: optionally blocks, optionally returns a handle.
cl_int finish_enqueue(clsim::CommandQueue& queue, clsim::Event ev,
                      cl_bool blocking, cl_event* event_out) {
  static auto& enqueues = hplrepro::metrics::counter("clapi.enqueues");
  enqueues.add();
  if (blocking == CL_TRUE) {
    try {
      ev.wait();
    } catch (const hplrepro::Error&) {
      // The failure is being reported to the caller right here; consume
      // the queue's sticky copy so the next clFinish does not report the
      // same error a second time.
      queue.consume_error(ev);
      static auto& deferred =
          hplrepro::metrics::counter("clapi.deferred_errors");
      deferred.add();
      return CL_OUT_OF_RESOURCES;  // deferred execution error
    }
  }
  if (event_out != nullptr) {
    *event_out = new _cl_event{std::move(ev), 1};
  }
  return CL_SUCCESS;
}

bool kernel_param_is_float(cl_kernel kernel, cl_uint index) {
  const hplrepro::clc::Type& type = kernel->kernel->param_type(index);
  return !type.pointer && (type.scalar == hplrepro::clc::Scalar::Float ||
                           type.scalar == hplrepro::clc::Scalar::Double);
}

}  // namespace

// --- Platform / device -----------------------------------------------------

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                        cl_uint* num_platforms) {
  if (platforms == nullptr && num_platforms == nullptr) {
    return CL_INVALID_VALUE;
  }
  if (platforms != nullptr) {
    if (num_entries == 0) return CL_INVALID_VALUE;
    platforms[0] = &g_platform;
  }
  if (num_platforms != nullptr) *num_platforms = 1;
  return CL_SUCCESS;
}

cl_int clGetDeviceIDs(cl_platform_id platform, cl_device_type device_type,
                      cl_uint num_entries, cl_device_id* devices,
                      cl_uint* num_devices) {
  if (platform != &g_platform) return CL_INVALID_VALUE;
  std::vector<cl_device_id> matching;
  for (const auto& device : clsim::Platform::get().devices()) {
    const bool is_cpu = device.type() == clsim::DeviceType::Cpu;
    const bool wanted = (device_type & CL_DEVICE_TYPE_ALL) == CL_DEVICE_TYPE_ALL ||
                        (is_cpu && (device_type & CL_DEVICE_TYPE_CPU)) ||
                        (!is_cpu && (device_type & CL_DEVICE_TYPE_GPU));
    if (wanted) matching.push_back(intern_device(device));
  }
  if (matching.empty()) return CL_DEVICE_NOT_FOUND;
  if (devices != nullptr) {
    if (num_entries == 0) return CL_INVALID_VALUE;
    const cl_uint count =
        std::min<cl_uint>(num_entries, static_cast<cl_uint>(matching.size()));
    for (cl_uint i = 0; i < count; ++i) devices[i] = matching[i];
  }
  if (num_devices != nullptr) {
    *num_devices = static_cast<cl_uint>(matching.size());
  }
  return CL_SUCCESS;
}

cl_int clGetDeviceInfo(cl_device_id device, cl_device_info param_name,
                       std::size_t param_value_size, void* param_value,
                       std::size_t* param_value_size_ret) {
  if (device == nullptr) return CL_INVALID_DEVICE;
  if (param_name != CL_DEVICE_NAME) return CL_INVALID_VALUE;
  const std::string& name = device->device.name();
  if (param_value != nullptr) {
    if (param_value_size < name.size() + 1) return CL_INVALID_VALUE;
    std::memcpy(param_value, name.c_str(), name.size() + 1);
  }
  if (param_value_size_ret != nullptr) {
    *param_value_size_ret = name.size() + 1;
  }
  return CL_SUCCESS;
}

// --- Context / queue --------------------------------------------------------

cl_context clCreateContext(const void* /*properties*/, cl_uint num_devices,
                           const cl_device_id* devices, void* /*pfn_notify*/,
                           void* /*user_data*/, cl_int* errcode_ret) {
  if (num_devices != 1 || devices == nullptr || devices[0] == nullptr) {
    set_error(errcode_ret, CL_INVALID_DEVICE);
    return nullptr;
  }
  auto* handle = new _cl_context;
  handle->context = std::make_unique<clsim::Context>(devices[0]->device);
  handle->device = devices[0];
  set_error(errcode_ret, CL_SUCCESS);
  return handle;
}

cl_command_queue clCreateCommandQueue(cl_context context,
                                      cl_device_id device,
                                      cl_bitfield /*properties*/,
                                      cl_int* errcode_ret) {
  if (context == nullptr) {
    set_error(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (device == nullptr || device != context->device) {
    set_error(errcode_ret, CL_INVALID_DEVICE);
    return nullptr;
  }
  auto* handle = new _cl_command_queue;
  handle->queue = std::make_unique<clsim::CommandQueue>(*context->context);
  set_error(errcode_ret, CL_SUCCESS);
  return handle;
}

// --- Memory objects -----------------------------------------------------------

cl_mem clCreateBuffer(cl_context context, cl_mem_flags flags,
                      std::size_t size, void* host_ptr, cl_int* errcode_ret) {
  if (context == nullptr) {
    set_error(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if ((flags & CL_MEM_COPY_HOST_PTR) != 0 && host_ptr == nullptr) {
    set_error(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  clsim::MemFlags mem_flags = clsim::MemFlags::ReadWrite;
  if (flags & CL_MEM_READ_ONLY) mem_flags = clsim::MemFlags::ReadOnly;
  if (flags & CL_MEM_WRITE_ONLY) mem_flags = clsim::MemFlags::WriteOnly;
  auto* handle = new _cl_mem;
  try {
    handle->buffer =
        std::make_unique<clsim::Buffer>(*context->context, size, mem_flags);
  } catch (const clsim::RuntimeError&) {
    delete handle;
    set_error(errcode_ret, CL_INVALID_BUFFER_SIZE);
    return nullptr;
  }
  if (flags & CL_MEM_COPY_HOST_PTR) {
    std::memcpy(handle->buffer->raw(), host_ptr, size);
  }
  set_error(errcode_ret, CL_SUCCESS);
  return handle;
}

// --- Programs / kernels ----------------------------------------------------------

cl_program clCreateProgramWithSource(cl_context context, cl_uint count,
                                     const char** strings,
                                     const std::size_t* lengths,
                                     cl_int* errcode_ret) {
  if (context == nullptr) {
    set_error(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (count == 0 || strings == nullptr) {
    set_error(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  std::string source;
  for (cl_uint i = 0; i < count; ++i) {
    if (strings[i] == nullptr) {
      set_error(errcode_ret, CL_INVALID_VALUE);
      return nullptr;
    }
    if (lengths != nullptr && lengths[i] != 0) {
      source.append(strings[i], lengths[i]);
    } else {
      source.append(strings[i]);
    }
  }
  auto* handle = new _cl_program;
  handle->program =
      std::make_unique<clsim::Program>(*context->context, std::move(source));
  handle->context = context;
  set_error(errcode_ret, CL_SUCCESS);
  return handle;
}

cl_int clBuildProgram(cl_program program, cl_uint /*num_devices*/,
                      const cl_device_id* /*device_list*/,
                      const char* options, void* /*pfn_notify*/,
                      void* /*user_data*/) {
  if (program == nullptr) return CL_INVALID_PROGRAM;
  const std::string opts = options != nullptr ? options : "";
  {
    hplrepro::clc::CompileOptions parsed;
    std::string error;
    if (!hplrepro::clc::parse_build_options(opts, parsed, error)) {
      return CL_INVALID_BUILD_OPTIONS;
    }
  }
  try {
    program->program->build(opts);
  } catch (const clsim::RuntimeError&) {
    return CL_BUILD_PROGRAM_FAILURE;
  }
  return CL_SUCCESS;
}

cl_int clGetProgramBuildInfo(cl_program program, cl_device_id /*device*/,
                             cl_program_build_info param_name,
                             std::size_t param_value_size, void* param_value,
                             std::size_t* param_value_size_ret) {
  if (program == nullptr) return CL_INVALID_PROGRAM;
  if (param_name != CL_PROGRAM_BUILD_LOG) return CL_INVALID_VALUE;
  const std::string& log = program->program->build_log();
  if (param_value != nullptr) {
    if (param_value_size < log.size() + 1) return CL_INVALID_VALUE;
    std::memcpy(param_value, log.c_str(), log.size() + 1);
  }
  if (param_value_size_ret != nullptr) {
    *param_value_size_ret = log.size() + 1;
  }
  return CL_SUCCESS;
}

cl_kernel clCreateKernel(cl_program program, const char* kernel_name,
                         cl_int* errcode_ret) {
  if (program == nullptr) {
    set_error(errcode_ret, CL_INVALID_PROGRAM);
    return nullptr;
  }
  if (kernel_name == nullptr) {
    set_error(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  if (!program->program->built()) {
    set_error(errcode_ret, CL_INVALID_PROGRAM_EXECUTABLE);
    return nullptr;
  }
  auto* handle = new _cl_kernel;
  try {
    handle->kernel =
        std::make_unique<clsim::Kernel>(*program->program, kernel_name);
  } catch (const clsim::RuntimeError&) {
    delete handle;
    set_error(errcode_ret, CL_INVALID_KERNEL_NAME);
    return nullptr;
  }
  set_error(errcode_ret, CL_SUCCESS);
  return handle;
}

cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index,
                      std::size_t arg_size, const void* arg_value) {
  if (kernel == nullptr) return CL_INVALID_KERNEL;
  if (arg_value == nullptr) {
    // OpenCL: a NULL value with a nonzero size declares a dynamically
    // sized __local argument.
    if (arg_size == 0) return CL_INVALID_ARG_SIZE;
    try {
      kernel->kernel->set_arg_local(arg_index, arg_size);
    } catch (const clsim::RuntimeError&) {
      return CL_INVALID_ARG_VALUE;
    }
    return CL_SUCCESS;
  }
  try {
    if (arg_size == sizeof(cl_mem)) {
      // Could be a buffer handle; OpenCL disambiguates by parameter type.
      cl_mem mem = nullptr;
      std::memcpy(&mem, arg_value, sizeof(cl_mem));
      // Heuristic-free approach: try the buffer path first; if the kernel
      // parameter is a scalar of size 8, fall through to the scalar path.
      if (mem != nullptr && mem->buffer != nullptr) {
        try {
          kernel->kernel->set_arg(arg_index, *mem->buffer);
          return CL_SUCCESS;
        } catch (const clsim::RuntimeError&) {
          // Parameter is not a pointer: treat the bytes as a scalar below.
        }
      }
    }
    switch (arg_size) {
      case 1: {
        std::int8_t v;
        std::memcpy(&v, arg_value, 1);
        kernel->kernel->set_arg(arg_index, static_cast<std::int32_t>(v));
        break;
      }
      case 2: {
        std::int16_t v;
        std::memcpy(&v, arg_value, 2);
        kernel->kernel->set_arg(arg_index, static_cast<std::int32_t>(v));
        break;
      }
      case 4: {
        // Could be int or float; set both representations and let the
        // runtime pick based on the declared parameter type.
        float f;
        std::int32_t i;
        std::memcpy(&f, arg_value, 4);
        std::memcpy(&i, arg_value, 4);
        if (kernel_param_is_float(kernel, arg_index)) {
          kernel->kernel->set_arg(arg_index, f);
        } else {
          kernel->kernel->set_arg(arg_index, i);
        }
        break;
      }
      case 8: {
        double d;
        std::int64_t i;
        std::memcpy(&d, arg_value, 8);
        std::memcpy(&i, arg_value, 8);
        if (kernel_param_is_float(kernel, arg_index)) {
          kernel->kernel->set_arg(arg_index, d);
        } else {
          kernel->kernel->set_arg(arg_index, i);
        }
        break;
      }
      default:
        return CL_INVALID_ARG_SIZE;
    }
  } catch (const clsim::RuntimeError&) {
    return CL_INVALID_ARG_INDEX;
  }
  return CL_SUCCESS;
}

// --- Command execution --------------------------------------------------------------

cl_int clEnqueueWriteBuffer(cl_command_queue queue, cl_mem buffer,
                            cl_bool blocking_write, std::size_t offset,
                            std::size_t size, const void* ptr,
                            cl_uint num_events, const cl_event* wait_list,
                            cl_event* event) {
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (buffer == nullptr) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr) return CL_INVALID_VALUE;
  std::vector<clsim::Event> deps;
  if (!collect_wait_list(num_events, wait_list, deps)) {
    return CL_INVALID_EVENT_WAIT_LIST;
  }
  clsim::Event ev;
  try {
    ev = queue->queue->enqueue_write_buffer(*buffer->buffer, ptr, size,
                                            offset, std::move(deps));
  } catch (const clsim::RuntimeError&) {
    return CL_INVALID_VALUE;
  } catch (const hplrepro::Error&) {
    // Synchronous mode drains the queue inside the enqueue; a deferred
    // error (e.g. a failed wait-list dependency) surfaces here and gets
    // the same code the async path reports from blocking waits/clFinish.
    return CL_OUT_OF_RESOURCES;
  }
  return finish_enqueue(*queue->queue, std::move(ev), blocking_write, event);
}

cl_int clEnqueueReadBuffer(cl_command_queue queue, cl_mem buffer,
                           cl_bool blocking_read, std::size_t offset,
                           std::size_t size, void* ptr, cl_uint num_events,
                           const cl_event* wait_list, cl_event* event) {
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (buffer == nullptr) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr) return CL_INVALID_VALUE;
  std::vector<clsim::Event> deps;
  if (!collect_wait_list(num_events, wait_list, deps)) {
    return CL_INVALID_EVENT_WAIT_LIST;
  }
  clsim::Event ev;
  try {
    ev = queue->queue->enqueue_read_buffer(*buffer->buffer, ptr, size,
                                           offset, std::move(deps));
  } catch (const clsim::RuntimeError&) {
    return CL_INVALID_VALUE;
  } catch (const hplrepro::Error&) {
    return CL_OUT_OF_RESOURCES;  // deferred error surfaced by sync mode
  }
  return finish_enqueue(*queue->queue, std::move(ev), blocking_read, event);
}

cl_int clEnqueueNDRangeKernel(cl_command_queue queue, cl_kernel kernel,
                              cl_uint work_dim,
                              const std::size_t* global_work_offset,
                              const std::size_t* global_work_size,
                              const std::size_t* local_work_size,
                              cl_uint num_events, const cl_event* wait_list,
                              cl_event* event) {
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (kernel == nullptr) return CL_INVALID_KERNEL;
  if (work_dim < 1 || work_dim > 3) return CL_INVALID_WORK_DIMENSION;
  if (global_work_offset != nullptr) return CL_INVALID_VALUE;  // unsupported
  if (global_work_size == nullptr) return CL_INVALID_VALUE;

  clsim::NDRange global;
  global.dims = static_cast<int>(work_dim);
  for (cl_uint d = 0; d < work_dim; ++d) {
    // OpenCL 1.x: a zero-sized dimension is an enqueue error, caught here
    // before the command reaches the (possibly asynchronous) queue.
    if (global_work_size[d] == 0) return CL_INVALID_GLOBAL_WORK_SIZE;
    global.sizes[d] = global_work_size[d];
  }

  std::optional<clsim::NDRange> local;
  if (local_work_size != nullptr) {
    clsim::NDRange l;
    l.dims = static_cast<int>(work_dim);
    for (cl_uint d = 0; d < work_dim; ++d) l.sizes[d] = local_work_size[d];
    local = l;
  }
  std::vector<clsim::Event> deps;
  if (!collect_wait_list(num_events, wait_list, deps)) {
    return CL_INVALID_EVENT_WAIT_LIST;
  }
  clsim::Event ev;
  try {
    ev = queue->queue->enqueue_ndrange_kernel(*kernel->kernel, global, local,
                                              std::move(deps));
  } catch (const hplrepro::clc::TrapError&) {
    // Deferred execution error surfaced at enqueue by synchronous mode
    // (HPL_SYNC=1 drains the queue inside the enqueue). Same code as the
    // async path reports from clFinish/blocking waits.
    return CL_OUT_OF_RESOURCES;
  } catch (const hplrepro::Error&) {
    return CL_INVALID_WORK_GROUP_SIZE;  // enqueue-time validation failure
  }
  return finish_enqueue(*queue->queue, std::move(ev), CL_FALSE, event);
}

cl_int clWaitForEvents(cl_uint num_events, const cl_event* event_list) {
  if (num_events == 0 || event_list == nullptr) return CL_INVALID_VALUE;
  for (cl_uint i = 0; i < num_events; ++i) {
    if (event_list[i] == nullptr) return CL_INVALID_EVENT;
  }
  cl_int status = CL_SUCCESS;
  for (cl_uint i = 0; i < num_events; ++i) {
    try {
      event_list[i]->event.wait();
    } catch (const hplrepro::Error&) {
      status = CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
    }
  }
  return status;
}

cl_int clGetEventInfo(cl_event event, cl_event_info param_name,
                      std::size_t param_value_size, void* param_value,
                      std::size_t* param_value_size_ret) {
  if (event == nullptr) return CL_INVALID_EVENT;
  if (param_name != CL_EVENT_COMMAND_EXECUTION_STATUS) {
    return CL_INVALID_VALUE;
  }
  cl_int status = CL_QUEUED;
  switch (event->event.status()) {
    case clsim::Event::Status::Queued: status = CL_QUEUED; break;
    case clsim::Event::Status::Submitted: status = CL_SUBMITTED; break;
    case clsim::Event::Status::Running: status = CL_RUNNING; break;
    case clsim::Event::Status::Complete: status = CL_COMPLETE; break;
  }
  if (param_value != nullptr) {
    if (param_value_size < sizeof(cl_int)) return CL_INVALID_VALUE;
    std::memcpy(param_value, &status, sizeof(cl_int));
  }
  if (param_value_size_ret != nullptr) {
    *param_value_size_ret = sizeof(cl_int);
  }
  return CL_SUCCESS;
}

cl_int clFinish(cl_command_queue queue) {
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  try {
    queue->queue->finish();
  } catch (const hplrepro::Error&) {
    static auto& deferred =
        hplrepro::metrics::counter("clapi.deferred_errors");
    deferred.add();
    return CL_OUT_OF_RESOURCES;  // a queued command failed to execute
  }
  return CL_SUCCESS;
}

// --- Reference counting ----------------------------------------------------------------

cl_int clRetainMemObject(cl_mem mem) {
  if (mem == nullptr) return CL_INVALID_MEM_OBJECT;
  ++mem->refs;
  return CL_SUCCESS;
}

cl_int clReleaseMemObject(cl_mem mem) {
  return release(mem, CL_INVALID_MEM_OBJECT);
}
cl_int clRetainEvent(cl_event event) {
  if (event == nullptr) return CL_INVALID_EVENT;
  ++event->refs;
  return CL_SUCCESS;
}
cl_int clReleaseEvent(cl_event event) {
  return release(event, CL_INVALID_EVENT);
}
cl_int clReleaseKernel(cl_kernel kernel) {
  return release(kernel, CL_INVALID_KERNEL);
}
cl_int clReleaseProgram(cl_program program) {
  return release(program, CL_INVALID_PROGRAM);
}
cl_int clReleaseCommandQueue(cl_command_queue queue) {
  return release(queue, CL_INVALID_COMMAND_QUEUE);
}
cl_int clReleaseContext(cl_context context) {
  return release(context, CL_INVALID_CONTEXT);
}

// --- Simulator access ---------------------------------------------------------------------

namespace hplrepro::clsim {

CommandQueue& cl_api_queue(cl_command_queue queue) { return *queue->queue; }

cl_device_id cl_api_device(const Device& device) {
  return intern_device(device);
}

}  // namespace hplrepro::clsim
