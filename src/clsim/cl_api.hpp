#ifndef HPLREPRO_CLSIM_CL_API_HPP
#define HPLREPRO_CLSIM_CL_API_HPP

/// \file cl_api.hpp
/// A C-style OpenCL 1.x host API over the clsim runtime.
///
/// The paper's baseline benchmarks are ordinary OpenCL C programs: they
/// call clGetPlatformIDs / clCreateBuffer / clSetKernelArg / ... and check
/// an error code after every call. This header reproduces that API surface
/// (names, call shapes, error codes, manual retain/release) on top of the
/// simulated runtime, so the OpenCL-style benchmark versions in this
/// repository are written exactly the way hand-written OpenCL is — which
/// is what makes the Table I SLOC comparison meaningful.
///
/// Only the entry points the benchmarks need are provided; they follow the
/// OpenCL 1.2 signatures closely (sans the naming prefix `cl` -> `clsim`
/// namespace is NOT used: the functions are global, as in OpenCL).

#include <cstddef>
#include <cstdint>

// --- Scalar typedefs (as in CL/cl.h) -----------------------------------------

using cl_int = std::int32_t;
using cl_uint = std::uint32_t;
using cl_ulong = std::uint64_t;
using cl_bool = std::uint32_t;
using cl_bitfield = std::uint64_t;
using cl_device_type = cl_bitfield;
using cl_mem_flags = cl_bitfield;
using cl_program_build_info = cl_uint;
using cl_device_info = cl_uint;
using cl_event_info = cl_uint;

// --- Opaque handles -----------------------------------------------------------

struct _cl_platform_id;
struct _cl_device_id;
struct _cl_context;
struct _cl_command_queue;
struct _cl_mem;
struct _cl_program;
struct _cl_kernel;
struct _cl_event;

using cl_platform_id = _cl_platform_id*;
using cl_device_id = _cl_device_id*;
using cl_context = _cl_context*;
using cl_command_queue = _cl_command_queue*;
using cl_mem = _cl_mem*;
using cl_program = _cl_program*;
using cl_kernel = _cl_kernel*;
using cl_event = _cl_event*;

// --- Error codes ----------------------------------------------------------------

inline constexpr cl_int CL_SUCCESS = 0;
inline constexpr cl_int CL_DEVICE_NOT_FOUND = -1;
inline constexpr cl_int CL_OUT_OF_RESOURCES = -5;
inline constexpr cl_int CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST = -14;
inline constexpr cl_int CL_BUILD_PROGRAM_FAILURE = -11;
inline constexpr cl_int CL_INVALID_VALUE = -30;
inline constexpr cl_int CL_INVALID_DEVICE = -33;
inline constexpr cl_int CL_INVALID_CONTEXT = -34;
inline constexpr cl_int CL_INVALID_COMMAND_QUEUE = -36;
inline constexpr cl_int CL_INVALID_MEM_OBJECT = -38;
inline constexpr cl_int CL_INVALID_BINARY = -42;
inline constexpr cl_int CL_INVALID_BUILD_OPTIONS = -43;
inline constexpr cl_int CL_INVALID_PROGRAM = -44;
inline constexpr cl_int CL_INVALID_PROGRAM_EXECUTABLE = -45;
inline constexpr cl_int CL_INVALID_KERNEL_NAME = -46;
inline constexpr cl_int CL_INVALID_KERNEL = -48;
inline constexpr cl_int CL_INVALID_ARG_INDEX = -49;
inline constexpr cl_int CL_INVALID_ARG_VALUE = -50;
inline constexpr cl_int CL_INVALID_ARG_SIZE = -51;
inline constexpr cl_int CL_INVALID_KERNEL_ARGS = -52;
inline constexpr cl_int CL_INVALID_WORK_DIMENSION = -53;
inline constexpr cl_int CL_INVALID_WORK_GROUP_SIZE = -54;
inline constexpr cl_int CL_INVALID_EVENT_WAIT_LIST = -57;
inline constexpr cl_int CL_INVALID_EVENT = -58;
inline constexpr cl_int CL_INVALID_BUFFER_SIZE = -61;
inline constexpr cl_int CL_INVALID_GLOBAL_WORK_SIZE = -63;

// --- Enumerations ---------------------------------------------------------------

inline constexpr cl_device_type CL_DEVICE_TYPE_CPU = 1u << 1;
inline constexpr cl_device_type CL_DEVICE_TYPE_GPU = 1u << 2;
inline constexpr cl_device_type CL_DEVICE_TYPE_ALL = 0xFFFFFFFF;

inline constexpr cl_mem_flags CL_MEM_READ_WRITE = 1u << 0;
inline constexpr cl_mem_flags CL_MEM_WRITE_ONLY = 1u << 1;
inline constexpr cl_mem_flags CL_MEM_READ_ONLY = 1u << 2;
inline constexpr cl_mem_flags CL_MEM_COPY_HOST_PTR = 1u << 5;

inline constexpr cl_bool CL_FALSE = 0;
inline constexpr cl_bool CL_TRUE = 1;

inline constexpr cl_program_build_info CL_PROGRAM_BUILD_LOG = 0x1183;
inline constexpr cl_device_info CL_DEVICE_NAME = 0x102B;
inline constexpr cl_event_info CL_EVENT_COMMAND_EXECUTION_STATUS = 0x11D3;

// Command execution status (clGetEventInfo); ordered as in CL/cl.h, where
// a status numerically <= CL_COMPLETE means the command has finished.
inline constexpr cl_int CL_COMPLETE = 0x0;
inline constexpr cl_int CL_RUNNING = 0x1;
inline constexpr cl_int CL_SUBMITTED = 0x2;
inline constexpr cl_int CL_QUEUED = 0x3;

// --- Platform / device ------------------------------------------------------------

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                        cl_uint* num_platforms);

cl_int clGetDeviceIDs(cl_platform_id platform, cl_device_type device_type,
                      cl_uint num_entries, cl_device_id* devices,
                      cl_uint* num_devices);

cl_int clGetDeviceInfo(cl_device_id device, cl_device_info param_name,
                       std::size_t param_value_size, void* param_value,
                       std::size_t* param_value_size_ret);

// --- Context / queue ----------------------------------------------------------------

cl_context clCreateContext(const void* properties, cl_uint num_devices,
                           const cl_device_id* devices, void* pfn_notify,
                           void* user_data, cl_int* errcode_ret);

cl_command_queue clCreateCommandQueue(cl_context context,
                                      cl_device_id device,
                                      cl_bitfield properties,
                                      cl_int* errcode_ret);

// --- Memory objects ---------------------------------------------------------------------

cl_mem clCreateBuffer(cl_context context, cl_mem_flags flags,
                      std::size_t size, void* host_ptr, cl_int* errcode_ret);

// --- Programs / kernels --------------------------------------------------------------------

cl_program clCreateProgramWithSource(cl_context context, cl_uint count,
                                     const char** strings,
                                     const std::size_t* lengths,
                                     cl_int* errcode_ret);

cl_int clBuildProgram(cl_program program, cl_uint num_devices,
                      const cl_device_id* device_list, const char* options,
                      void* pfn_notify, void* user_data);

cl_int clGetProgramBuildInfo(cl_program program, cl_device_id device,
                             cl_program_build_info param_name,
                             std::size_t param_value_size, void* param_value,
                             std::size_t* param_value_size_ret);

cl_kernel clCreateKernel(cl_program program, const char* kernel_name,
                         cl_int* errcode_ret);

/// As in OpenCL: buffers are passed as (sizeof(cl_mem), &mem); scalars as
/// (sizeof(T), &value) where T matches the kernel parameter type.
cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index,
                      std::size_t arg_size, const void* arg_value);

// --- Command execution ------------------------------------------------------------------------

/// Commands are enqueued asynchronously, as in real OpenCL: the enqueue
/// returns once the command is queued, and completion is observed through
/// the blocking_{read,write} flags, the returned event, clWaitForEvents,
/// or clFinish.
cl_int clEnqueueWriteBuffer(cl_command_queue queue, cl_mem buffer,
                            cl_bool blocking_write, std::size_t offset,
                            std::size_t size, const void* ptr,
                            cl_uint num_events, const cl_event* wait_list,
                            cl_event* event);

cl_int clEnqueueReadBuffer(cl_command_queue queue, cl_mem buffer,
                           cl_bool blocking_read, std::size_t offset,
                           std::size_t size, void* ptr, cl_uint num_events,
                           const cl_event* wait_list, cl_event* event);

cl_int clEnqueueNDRangeKernel(cl_command_queue queue, cl_kernel kernel,
                              cl_uint work_dim,
                              const std::size_t* global_work_offset,
                              const std::size_t* global_work_size,
                              const std::size_t* local_work_size,
                              cl_uint num_events, const cl_event* wait_list,
                              cl_event* event);

/// Blocks until every listed event's command has completed.
cl_int clWaitForEvents(cl_uint num_events, const cl_event* event_list);

/// Only CL_EVENT_COMMAND_EXECUTION_STATUS is supported.
cl_int clGetEventInfo(cl_event event, cl_event_info param_name,
                      std::size_t param_value_size, void* param_value,
                      std::size_t* param_value_size_ret);

/// Blocks until every command enqueued on `queue` has completed.
cl_int clFinish(cl_command_queue queue);

// --- Reference counting ---------------------------------------------------------------------------

cl_int clRetainMemObject(cl_mem mem);
cl_int clReleaseMemObject(cl_mem mem);
cl_int clRetainEvent(cl_event event);
cl_int clReleaseEvent(cl_event event);
cl_int clReleaseKernel(cl_kernel kernel);
cl_int clReleaseProgram(cl_program program);
cl_int clReleaseCommandQueue(cl_command_queue queue);
cl_int clReleaseContext(cl_context context);

// --- Simulator access (not part of OpenCL) ------------------------------------------------

namespace hplrepro::clsim {
class CommandQueue;
class Device;

/// The underlying simulated queue (for the benchmark harness timers).
CommandQueue& cl_api_queue(cl_command_queue queue);

/// Device handle for a given simulated device (so the baselines can pick
/// the Tesla / Quadro / Xeon explicitly, as the paper's setups do).
cl_device_id cl_api_device(const Device& device);

}  // namespace hplrepro::clsim

#endif  // HPLREPRO_CLSIM_CL_API_HPP
