#ifndef HPLREPRO_CLSIM_TIMING_HPP
#define HPLREPRO_CLSIM_TIMING_HPP

/// \file timing.hpp
/// Roofline-style timing model: converts the VM's dynamic execution
/// statistics into simulated device seconds.
///
/// kernel time = max(compute, global memory, local memory)
///             + barrier cost + launch overhead
///
/// where
///   compute  = weighted_ops / (compute_units * clock * ipc)
///   global   = coalesced ? transactions * segment / bandwidth
///                        : raw bytes / bandwidth
///   local    = local bytes / local bandwidth
///
/// Weighted ops charge transcendentals `special_op_cycles` and doubles
/// 1/double_rate. This deliberately simple model reproduces the *shape* of
/// the paper's speedups: compute-bound kernels scale with core count,
/// streaming kernels with bandwidth, and gather-heavy kernels pay the
/// coalescing amplification.

#include "clc/stats.hpp"
#include "clsim/device.hpp"

namespace hplrepro::clsim {

struct TimingBreakdown {
  double compute_s = 0;
  double global_mem_s = 0;
  double local_mem_s = 0;
  double barrier_s = 0;
  double launch_s = 0;
  double total_s = 0;

  /// Componentwise accumulation (the profiler registry aggregates the
  /// breakdowns of every launch of a kernel).
  TimingBreakdown& operator+=(const TimingBreakdown& o) {
    compute_s += o.compute_s;
    global_mem_s += o.global_mem_s;
    local_mem_s += o.local_mem_s;
    barrier_s += o.barrier_s;
    launch_s += o.launch_s;
    total_s += o.total_s;
    return *this;
  }
};

/// Simulated execution time of one kernel launch.
TimingBreakdown simulate_kernel_time(const clc::ExecStats& stats,
                                     const DeviceSpec& device);

/// Simulated time of a host<->device transfer of `bytes`.
double simulate_transfer_time(std::uint64_t bytes, const DeviceSpec& device);

}  // namespace hplrepro::clsim

#endif  // HPLREPRO_CLSIM_TIMING_HPP
