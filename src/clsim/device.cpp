#include "clsim/device.hpp"

namespace hplrepro::clsim {

DeviceSpec tesla_c2050() {
  DeviceSpec d;
  d.name = "SimTesla C2050";
  d.type = DeviceType::Gpu;
  d.compute_units = 448;
  d.clock_ghz = 1.15;
  d.ipc = 1.0;
  d.special_op_cycles = 8;   // SFU-assisted transcendentals
  d.double_rate = 0.5;       // Fermi: FP64 at half FP32 rate
  d.supports_double = true;
  d.global_bandwidth_gbs = 144.0;
  d.local_bandwidth_gbs = 1030.0;  // shared memory aggregate
  d.models_coalescing = true;
  d.warp_size = 32;
  d.segment_bytes = 32;
  d.global_mem_bytes = 6ull << 30;
  d.local_mem_bytes = 48 * 1024;
  d.launch_overhead_us = 7.0;
  d.barrier_cycles = 32;
  d.transfer_bandwidth_gbs = 5.6;
  d.transfer_latency_us = 10.0;
  return d;
}

DeviceSpec quadro_fx380() {
  DeviceSpec d;
  d.name = "SimQuadro FX380";
  d.type = DeviceType::Gpu;
  d.compute_units = 16;
  d.clock_ghz = 0.70;
  d.ipc = 1.0;
  d.special_op_cycles = 16;
  d.double_rate = 0.0;  // unused
  d.supports_double = false;
  d.global_bandwidth_gbs = 22.4;
  d.local_bandwidth_gbs = 120.0;
  d.models_coalescing = true;
  d.warp_size = 32;
  d.segment_bytes = 32;
  d.global_mem_bytes = 256ull << 20;
  d.local_mem_bytes = 16 * 1024;
  d.launch_overhead_us = 9.0;
  d.barrier_cycles = 48;
  d.transfer_bandwidth_gbs = 3.0;
  d.transfer_latency_us = 12.0;
  return d;
}

DeviceSpec xeon_host() {
  DeviceSpec d;
  d.name = "SimXeon E5506 (1 core)";
  d.type = DeviceType::Cpu;
  d.compute_units = 1;
  d.clock_ghz = 2.13;
  d.ipc = 2.0;                // superscalar core on simple loop bodies
  d.special_op_cycles = 150;  // libm log/sqrt/exp on Nehalem: ~100-200 cyc
  d.double_rate = 1.0;       // SSE doubles at full rate
  d.supports_double = true;
  d.global_bandwidth_gbs = 8.0;  // single-thread effective stream bandwidth
  d.local_bandwidth_gbs = 40.0;  // __local degenerates to L1-resident data
  d.models_coalescing = false;   // caches hide access granularity
  d.hides_memory_latency = false;  // one core: no threads to overlap with
  d.warp_size = 1;
  d.segment_bytes = 64;
  d.global_mem_bytes = 12ull << 30;
  d.local_mem_bytes = 48 * 1024;
  d.launch_overhead_us = 0.2;  // plain function call, no driver in the way
  d.barrier_cycles = 8;
  d.transfer_bandwidth_gbs = 12.0;  // memcpy within host RAM
  d.transfer_latency_us = 0.1;
  return d;
}

}  // namespace hplrepro::clsim
