#ifndef HPLREPRO_CLSIM_DEVICE_HPP
#define HPLREPRO_CLSIM_DEVICE_HPP

/// \file device.hpp
/// Simulated device descriptions. A DeviceSpec carries both functional
/// properties (double support, memory sizes) and the parameters of the
/// roofline timing model that converts VM execution statistics into
/// simulated device seconds.
///
/// The catalog instantiates the three devices of the paper's evaluation:
///   * Tesla C2050  — 448 thread processors @ 1.15 GHz, 144 GB/s, 6 GB
///   * Quadro FX 380 — 16 thread processors @ 0.70 GHz, no double support
///   * the Xeon host — one 2.13 GHz core used for the serial CPU baseline

#include <cstdint>
#include <string>

namespace hplrepro::clsim {

enum class DeviceType { Cpu, Gpu };

struct DeviceSpec {
  std::string name;
  DeviceType type = DeviceType::Gpu;

  // --- Compute model ---
  unsigned compute_units = 1;     // scalar processors running work-items
  double clock_ghz = 1.0;
  double ipc = 1.0;               // sustained simple-ops per cycle per core
  double special_op_cycles = 8;   // cycles per transcendental (sqrt/log/...)
  double double_rate = 1.0;       // double throughput relative to float
  bool supports_double = true;

  // --- Memory model ---
  double global_bandwidth_gbs = 100.0;
  double local_bandwidth_gbs = 1000.0;   // on-chip scratchpad
  bool models_coalescing = true;         // GPUs: pay per 32 B segment
  // GPUs keep thousands of work-items in flight, so memory traffic
  // overlaps with compute (roofline max). A single CPU core has no such
  // thread-level latency hiding: compute and memory time add up.
  bool hides_memory_latency = true;
  unsigned warp_size = 32;
  unsigned segment_bytes = 32;
  std::uint64_t global_mem_bytes = 1ull << 30;
  std::uint64_t local_mem_bytes = 48 * 1024;  // per work-group

  // --- Launch / synchronisation costs ---
  double launch_overhead_us = 6.0;  // per NDRange enqueue
  double barrier_cycles = 32;       // per work-item barrier crossing

  // --- Host <-> device transfers ---
  double transfer_bandwidth_gbs = 5.6;  // PCIe gen2 x16 effective
  double transfer_latency_us = 10.0;
};

/// Tesla C2050/C2070 as described in the paper's Section V-B.
DeviceSpec tesla_c2050();

/// Quadro FX 380 as described in Section V-C (no double precision).
DeviceSpec quadro_fx380();

/// One core of the paper's 2.13 GHz Xeon host; the serial CPU baseline.
DeviceSpec xeon_host();

}  // namespace hplrepro::clsim

#endif  // HPLREPRO_CLSIM_DEVICE_HPP
